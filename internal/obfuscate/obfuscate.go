// Package obfuscate rewrites EVM bytecode with semantics-preserving
// instruction substitutions, the attack the paper's §7 anticipates: "a
// typical obfuscation technique is replacing the instruction sequence for
// accessing parameters ... with a different instruction sequence with the
// same semantics".
//
// Three levels are provided, chosen to probe different layers of SigRec:
//
//   - LevelNoise inserts inert instruction pairs between the load and its
//     mask. It breaks adjacency-based pattern matchers (the Eveem-class
//     heuristics) but not semantics-based inference.
//   - LevelShiftMask replaces AND masks with equivalent SHL/SHR (or
//     SHR/SHL) round trips. SigRec's generalized mask rules recognize the
//     equivalent semantics.
//   - LevelModMask replaces low AND masks with MOD by 2^(8m), an
//     equivalence SigRec does not model -- the open limitation the paper
//     concedes for future work.
//
// Rewrites change instruction offsets, so jump targets are remapped: the
// rewriter tracks old-to-new JUMPDEST positions and patches every PUSH2
// whose immediate named an old JUMPDEST. This matches the code the
// in-repo compilers emit (all jump targets are PUSH2); foreign bytecode
// with computed jumps is rejected.
package obfuscate

import (
	"errors"
	"fmt"
	"math/rand"

	"sigrec/internal/evm"
)

// Level selects the rewrite aggressiveness.
type Level int

// Obfuscation levels.
const (
	// LevelNoise inserts inert pairs (PUSH 0; POP and DUP1; POP).
	LevelNoise Level = iota + 1
	// LevelShiftMask rewrites AND masks into shift round trips.
	LevelShiftMask
	// LevelModMask rewrites low AND masks into MOD by a power of 256.
	LevelModMask
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNoise:
		return "noise"
	case LevelShiftMask:
		return "shift-mask"
	case LevelModMask:
		return "mod-mask"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ErrUnsupported reports bytecode the rewriter cannot safely transform.
var ErrUnsupported = errors.New("obfuscate: unsupported bytecode shape")

// Obfuscate rewrites the bytecode at the given level. The result is
// semantically equivalent on every input (verified by differential tests).
func Obfuscate(code []byte, level Level, seed int64) ([]byte, error) {
	program := evm.Disassemble(code)
	r := rand.New(rand.NewSource(seed))

	// Pass 1: build the rewritten instruction stream, remembering (a) the
	// new offset of every old instruction and (b) patch sites for PUSH2
	// jump immediates.
	var out []byte
	newPos := make(map[uint64]uint64, len(program.Instructions))
	type patchSite struct {
		outOff uint64 // offset of the 2 immediate bytes in out
		oldPC  uint64 // old target
	}
	var patches []patchSite

	emit := func(bs ...byte) { out = append(out, bs...) }
	ins := program.Instructions
	for i := 0; i < len(ins); i++ {
		cur := ins[i]
		newPos[cur.PC] = uint64(len(out))

		// Mask rewrites consume the PUSH+AND pair.
		if level == LevelShiftMask || level == LevelModMask {
			if i+1 < len(ins) && ins[i+1].Op == evm.AND && cur.Op.IsPush() {
				if m, lowOK := lowMaskBytes(cur.ArgBytes); lowOK && m < 32 {
					if level == LevelShiftMask {
						emitShiftRoundTrip(&out, 256-8*m, false)
					} else {
						emitModMask(&out, m)
					}
					newPos[ins[i+1].PC] = uint64(len(out)) - 1
					i++ // swallow the AND
					continue
				}
				if m, highOK := highMaskBytes(cur.ArgBytes); highOK && level == LevelShiftMask {
					emitShiftRoundTrip(&out, 256-8*m, true)
					newPos[ins[i+1].PC] = uint64(len(out)) - 1
					i++
					continue
				}
			}
		}

		switch {
		case cur.Op == evm.PUSH2:
			// Potential jump-target immediate: copy and record for patching.
			emit(byte(evm.PUSH2))
			patches = append(patches, patchSite{
				outOff: uint64(len(out)),
				oldPC:  uint64(cur.ArgBytes[0])<<8 | uint64(cur.ArgBytes[1]),
			})
			emit(cur.ArgBytes...)
		case cur.Op.IsPush():
			emit(byte(cur.Op))
			emit(cur.ArgBytes...)
		default:
			emit(byte(cur.Op))
		}

		// Noise after value-producing instructions (never between a PUSH2
		// and its JUMP/JUMPI consumer, which must stay adjacent only for
		// readability -- semantics tolerate separation, but keep it tidy).
		if level == LevelNoise && cur.Op == evm.CALLDATALOAD && r.Intn(2) == 0 {
			// An inert stack round trip between the load and its mask.
			emit(byte(evm.DUP1), byte(evm.POP))
			emit(byte(evm.PUSH1), 0x00, byte(evm.POP))
		}
	}

	// Pass 2: patch PUSH2 immediates that named old JUMPDEST positions.
	for _, p := range patches {
		idx, ok := program.IndexOf(p.oldPC)
		if !ok || program.Instructions[idx].Op != evm.JUMPDEST {
			continue // a data constant, not a jump target
		}
		np, ok := newPos[p.oldPC]
		if !ok {
			return nil, fmt.Errorf("%w: lost jump target %#x", ErrUnsupported, p.oldPC)
		}
		if np > 0xffff {
			return nil, fmt.Errorf("%w: rewritten target %#x exceeds PUSH2", ErrUnsupported, np)
		}
		out[p.outOff] = byte(np >> 8)
		out[p.outOff+1] = byte(np)
	}
	return out, nil
}

// emitShiftRoundTrip emits the mask-equivalent shift pair for a value on
// the stack top: (v<<s)>>s for low masks, (v>>s)<<s for high masks.
func emitShiftRoundTrip(out *[]byte, shift int, high bool) {
	push := func() {
		if shift < 256 {
			*out = append(*out, byte(evm.PUSH2), byte(shift>>8), byte(shift))
		}
	}
	first, second := evm.SHL, evm.SHR
	if high {
		first, second = evm.SHR, evm.SHL
	}
	push()
	*out = append(*out, byte(first))
	push()
	*out = append(*out, byte(second))
}

// emitModMask emits v % 2^(8m) for a value on the stack top.
func emitModMask(out *[]byte, m int) {
	// PUSH(2^(8m)) = 0x01 followed by m zero bytes.
	imm := make([]byte, m+1)
	imm[0] = 0x01
	op, _ := evm.PushOp(len(imm))
	*out = append(*out, byte(op))
	*out = append(*out, imm...)
	// Stack: [v, 2^(8m)]; MOD computes top % second = 2^(8m) % v -- wrong
	// order, so swap first.
	*out = append(*out, byte(evm.SWAP1), byte(evm.MOD))
}

func lowMaskBytes(raw []byte) (int, bool) {
	if len(raw) == 0 || len(raw) > 32 {
		return 0, false
	}
	for _, b := range raw {
		if b != 0xff {
			return 0, false
		}
	}
	return len(raw), true
}

func highMaskBytes(raw []byte) (int, bool) {
	if len(raw) != 32 {
		return 0, false
	}
	n := 0
	for n < 32 && raw[n] == 0xff {
		n++
	}
	if n == 0 || n == 32 {
		return 0, false
	}
	for _, b := range raw[n:] {
		if b != 0 {
			return 0, false
		}
	}
	return n, true
}
