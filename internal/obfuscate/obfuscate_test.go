package obfuscate

import (
	"bytes"
	"math/rand"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/evm"
	"sigrec/internal/solc"
)

func compile(t *testing.T, sigStr string, mode solc.Mode) ([]byte, abi.Signature) {
	t.Helper()
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		t.Fatal(err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: mode}}},
		solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	return code, sig
}

// TestSemanticsPreserved is the differential check: the obfuscated contract
// must behave identically to the original on random valid inputs --
// identical storage effects, identical revert behavior.
func TestSemanticsPreserved(t *testing.T) {
	sigs := []string{
		"f(uint8)", "f(uint32,address)", "f(bytes4)", "f(bool,uint256)",
		"f(uint256[])", "f(bytes)", "f(uint8[3])", "f(int64)",
	}
	for _, sigStr := range sigs {
		for _, mode := range []solc.Mode{solc.Public, solc.External} {
			code, sig := compile(t, sigStr, mode)
			for _, level := range []Level{LevelNoise, LevelShiftMask, LevelModMask} {
				obf, err := Obfuscate(code, level, 7)
				if err != nil {
					t.Fatalf("%s %s %s: %v", sigStr, mode, level, err)
				}
				if bytes.Equal(obf, code) && level != LevelModMask {
					// ModMask may be a no-op for mask-free signatures.
					if sigStr == "f(uint8)" {
						t.Errorf("%s %s: obfuscation was a no-op", sigStr, level)
					}
				}
				r := rand.New(rand.NewSource(99))
				for trial := 0; trial < 5; trial++ {
					vals := make([]abi.Value, len(sig.Inputs))
					for i, ty := range sig.Inputs {
						vals[i] = abi.RandomValue(r, ty)
					}
					data, err := abi.EncodeCall(sig, vals)
					if err != nil {
						t.Fatal(err)
					}
					origIn := evm.NewInterpreter(code)
					obfIn := evm.NewInterpreter(obf)
					origRes := origIn.Execute(evm.CallContext{CallData: data})
					obfRes := obfIn.Execute(evm.CallContext{CallData: data})
					if origRes.Reverted != obfRes.Reverted {
						t.Fatalf("%s %s %s: revert divergence (%v vs %v / %v)",
							sigStr, mode, level, origRes.Reverted, obfRes.Reverted, obfRes.Err)
					}
					origStore := origIn.Storage()
					obfStore := obfIn.Storage()
					if len(origStore) != len(obfStore) {
						t.Fatalf("%s %s %s: storage size diverged", sigStr, mode, level)
					}
					for k, v := range origStore {
						if !obfStore[k].Eq(v) {
							t.Fatalf("%s %s %s: storage[%v] %v vs %v",
								sigStr, mode, level, k, v, obfStore[k])
						}
					}
				}
			}
		}
	}
}

// TestShiftMaskStillRecovered: the generalized mask rules must see through
// the shift-round-trip rewriting.
func TestShiftMaskStillRecovered(t *testing.T) {
	for _, sigStr := range []string{"f(uint8)", "f(uint32,address)", "f(bytes4)"} {
		code, sig := compile(t, sigStr, solc.External)
		obf, err := Obfuscate(code, LevelShiftMask, 3)
		if err != nil {
			t.Fatal(err)
		}
		rec, _ := core.RecoverFunction(obf, sig.Selector())
		got := abi.Signature{Name: "f", Inputs: rec.Inputs}
		if !got.EqualTypes(sig) {
			t.Errorf("%s under shift-mask: recovered %s", sigStr, got.TypeList())
		}
	}
}

// TestNoiseDoesNotAffectSigRec: inert instruction insertion must not move
// semantics-based inference.
func TestNoiseDoesNotAffectSigRec(t *testing.T) {
	for _, sigStr := range []string{"f(uint8)", "f(bytes)", "f(uint256[])"} {
		code, sig := compile(t, sigStr, solc.External)
		obf, err := Obfuscate(code, LevelNoise, 5)
		if err != nil {
			t.Fatal(err)
		}
		rec, _ := core.RecoverFunction(obf, sig.Selector())
		got := abi.Signature{Name: "f", Inputs: rec.Inputs}
		if !got.EqualTypes(sig) {
			t.Errorf("%s under noise: recovered %s", sigStr, got.TypeList())
		}
	}
}

// TestModMaskDefeatsFineRules pins the documented limitation: MOD-based
// masking is not recognized, so uint8 degrades to uint256.
func TestModMaskDefeatsFineRules(t *testing.T) {
	code, sig := compile(t, "f(uint8)", solc.External)
	obf, err := Obfuscate(code, LevelModMask, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := core.RecoverFunction(obf, sig.Selector())
	if len(rec.Inputs) != 1 {
		t.Fatalf("recovered %d params", len(rec.Inputs))
	}
	if rec.Inputs[0].Kind == abi.KindUint && rec.Inputs[0].Bits == 8 {
		t.Error("mod-mask was unexpectedly seen through (update EXPERIMENTS.md)")
	}
}

// TestJumpTargetRemap verifies control flow survives offset shifts.
func TestJumpTargetRemap(t *testing.T) {
	code, sig := compile(t, "f(uint256[3])", solc.External) // loops: many jumps
	obf, err := Obfuscate(code, LevelNoise, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(obf) == len(code) {
		t.Skip("no noise inserted at this seed")
	}
	r := rand.New(rand.NewSource(1))
	vals := []abi.Value{abi.RandomValue(r, sig.Inputs[0])}
	data, _ := abi.EncodeCall(sig, vals)
	res := evm.NewInterpreter(obf).Execute(evm.CallContext{CallData: data})
	if res.Reverted {
		t.Fatalf("obfuscated loop contract reverted: %v", res.Err)
	}
}
