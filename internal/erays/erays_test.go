package erays

import (
	"strings"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/solc"
)

func compile(t *testing.T, sigStr string, mode solc.Mode) []byte {
	t.Helper()
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		t.Fatal(err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: mode}}},
		solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestLiftBasicShape(t *testing.T) {
	code := compile(t, "f(uint8,address)", solc.External)
	l := Lift(code)
	text := l.String()
	if !strings.Contains(text, "calldataload(") {
		t.Error("lifting lost calldata loads")
	}
	if !strings.Contains(text, "storage[") {
		t.Error("lifting lost storage writes")
	}
	if !strings.Contains(text, "goto") && !strings.Contains(text, "if ") {
		t.Error("lifting lost control flow")
	}
	// Registers must be defined before use in straight-line code.
	if strings.Contains(text, "= calldataload(s") {
		t.Log(text)
	}
}

func TestLiftClassifiesParamAccess(t *testing.T) {
	code := compile(t, "f(uint8)", solc.External)
	l := Lift(code)
	var paramLines int
	for _, ln := range l.Lines {
		if ln.Kind == LineParamAccess {
			paramLines++
		}
	}
	if paramLines < 2 { // the load and the mask at least
		t.Errorf("only %d parameter-access lines", paramLines)
	}
}

func TestEnhanceAddsTypesAndNames(t *testing.T) {
	code := compile(t, "f(uint8,address)", solc.External)
	rec, err := core.Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	enh := Enhance(code, rec)
	if len(enh.Headers) != 1 {
		t.Fatalf("headers: %v", enh.Headers)
	}
	h := enh.Headers[0]
	if !strings.Contains(h, "uint8 arg1") || !strings.Contains(h, "address arg2") {
		t.Errorf("header = %q", h)
	}
	if enh.Metrics.AddedTypes != 2 {
		t.Errorf("added types = %d", enh.Metrics.AddedTypes)
	}
	if enh.Metrics.AddedNames < 2 {
		t.Errorf("added names = %d", enh.Metrics.AddedNames)
	}
	if enh.Metrics.RemovedLines == 0 {
		t.Error("no boilerplate removed")
	}
	text := enh.Listing.String()
	if !strings.Contains(text, "= arg1") {
		t.Errorf("no named assignment in output:\n%s", text)
	}
}

func TestEnhanceNamesNumFields(t *testing.T) {
	code := compile(t, "f(uint256[])", solc.External)
	rec, err := core.Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	enh := Enhance(code, rec)
	if enh.Metrics.AddedNums == 0 {
		t.Errorf("no num fields named; listing:\n%s", enh.Listing.String())
	}
}

func TestEnhanceShrinksListing(t *testing.T) {
	code := compile(t, "f(uint8[3],bytes)", solc.Public)
	rec, err := core.Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	base := Lift(code)
	enh := Enhance(code, rec)
	if len(enh.Listing.Lines) >= len(base.Lines) {
		t.Errorf("enhanced listing not smaller: %d vs %d",
			len(enh.Listing.Lines), len(base.Lines))
	}
}

func TestLiftEmptyCode(t *testing.T) {
	l := Lift(nil)
	if len(l.Lines) != 0 {
		t.Error("empty code should lift to nothing")
	}
}

// TestEnhanceInlinesHeaders: the typed header appears inline above each
// function's body label in a multi-function contract.
func TestEnhanceInlinesHeaders(t *testing.T) {
	var fns []solc.Function
	for _, s := range []string{"alpha(uint8)", "beta(address,bool)"} {
		sig, _ := abi.ParseSignature(s)
		fns = append(fns, solc.Function{Sig: sig, Mode: solc.External})
	}
	code, err := solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	enh := Enhance(code, rec)
	text := enh.Listing.String()
	if !strings.Contains(text, "// function") {
		t.Fatalf("no inline headers:\n%s", text)
	}
	if !strings.Contains(text, "uint8 arg1") || !strings.Contains(text, "address arg1, bool arg2") {
		t.Errorf("headers incomplete:\n%s", text)
	}
	// Each header precedes its loc_ label.
	lines := strings.Split(text, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, "// function") {
			if i+1 >= len(lines) || !strings.Contains(lines[i+1], "loc_") {
				t.Errorf("header not directly above a label: %q then %q", ln, lines[i+1])
			}
		}
	}
}
