// Package erays implements a register-based IR lifter for EVM bytecode in
// the style of the Erays reverse-engineering tool, plus Erays+ (paper
// §6.3): the same lifting enhanced with SigRec's recovered function
// signatures -- typed parameter names replace anonymous registers, offset
// and num field loads get symbolic names, and compiler-generated
// parameter-access boilerplate is collapsed into simple assignments.
package erays

import (
	"fmt"
	"strings"

	"sigrec/internal/core"
	"sigrec/internal/evm"
)

// LineKind classifies IR lines for the enhancement pass.
type LineKind int

// Line kinds.
const (
	// LineNormal is ordinary program logic.
	LineNormal LineKind = iota + 1
	// LineParamAccess is compiler-generated parameter-access code
	// (call-data loads, copies, masks, and the arithmetic feeding them).
	LineParamAccess
	// LineControl is a jump or label.
	LineControl
)

// Line is one register-based IR statement.
type Line struct {
	PC   uint64
	Text string
	Kind LineKind
	// HeadOffset is the constant call-data offset for direct loads (0 when
	// not applicable).
	HeadOffset uint64
	// Def is the register this line defines ("" for stores/jumps).
	Def string
}

// Listing is a lifted contract.
type Listing struct {
	Lines []Line
}

// String renders the listing.
func (l *Listing) String() string {
	var b strings.Builder
	for _, ln := range l.Lines {
		fmt.Fprintf(&b, "%05x: %s\n", ln.PC, ln.Text)
	}
	return b.String()
}

// Lift converts bytecode to register-based IR. The conversion is a linear
// stack-to-register pass: each value-producing instruction defines a fresh
// register, and stack manipulation disappears into register references --
// the same presentation Erays produces.
func Lift(code []byte) *Listing {
	program := evm.Disassemble(code)
	out := &Listing{}
	var stack []string
	regSeq := 0
	phantomSeq := 0
	tainted := make(map[string]bool) // registers derived from the call data

	fresh := func() string {
		regSeq++
		return fmt.Sprintf("v%d", regSeq)
	}
	pop := func() string {
		if len(stack) == 0 {
			phantomSeq++
			return fmt.Sprintf("s%d", phantomSeq)
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return top
	}
	push := func(r string) { stack = append(stack, r) }
	emit := func(ln Line) { out.Lines = append(out.Lines, ln) }

	for _, ins := range program.Instructions {
		op := ins.Op
		switch {
		case op.IsPush():
			push("0x" + strings.TrimLeft(fmt.Sprintf("%x", ins.ArgBytes), "0") + zeroIfEmpty(ins.ArgBytes))
		case op.IsDup():
			n := int(op-evm.DUP1) + 1
			if len(stack) >= n {
				push(stack[len(stack)-n])
			} else {
				push(pop())
			}
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if len(stack) > n {
				top := len(stack) - 1
				stack[top], stack[top-n] = stack[top-n], stack[top]
			}
		case op == evm.JUMPDEST:
			stack = stack[:0] // block boundary: registers do not flow across
			emit(Line{PC: ins.PC, Text: fmt.Sprintf("loc_%x:", ins.PC), Kind: LineControl})
		case op == evm.JUMP:
			dst := pop()
			emit(Line{PC: ins.PC, Text: "goto " + dst, Kind: LineControl})
		case op == evm.JUMPI:
			dst, cond := pop(), pop()
			emit(Line{PC: ins.PC, Text: fmt.Sprintf("if %s goto %s", cond, dst), Kind: LineControl})
		case op == evm.CALLDATALOAD:
			off := pop()
			def := fresh()
			tainted[def] = true
			ln := Line{
				PC:   ins.PC,
				Text: fmt.Sprintf("%s = calldataload(%s)", def, off),
				Kind: LineParamAccess,
				Def:  def,
			}
			if v, ok := parseHex(off); ok {
				ln.HeadOffset = v
			}
			emit(ln)
			push(def)
		case op == evm.CALLDATACOPY:
			dst, src, n := pop(), pop(), pop()
			emit(Line{
				PC:   ins.PC,
				Text: fmt.Sprintf("calldatacopy(%s, %s, %s)", dst, src, n),
				Kind: LineParamAccess,
			})
		case op == evm.MSTORE:
			addr, val := pop(), pop()
			kind := LineNormal
			if tainted[val] {
				kind = LineParamAccess
			}
			emit(Line{PC: ins.PC, Text: fmt.Sprintf("mem[%s] = %s", addr, val), Kind: kind})
		case op == evm.MLOAD:
			addr := pop()
			def := fresh()
			emit(Line{PC: ins.PC, Text: fmt.Sprintf("%s = mem[%s]", def, addr), Def: def})
			push(def)
		case op == evm.SSTORE:
			key, val := pop(), pop()
			emit(Line{PC: ins.PC, Text: fmt.Sprintf("storage[%s] = %s", key, val)})
		case op == evm.SLOAD:
			key := pop()
			def := fresh()
			emit(Line{PC: ins.PC, Text: fmt.Sprintf("%s = storage[%s]", def, key), Def: def})
			push(def)
		case op == evm.STOP:
			emit(Line{PC: ins.PC, Text: "stop", Kind: LineControl})
		case op == evm.RETURN:
			off, n := pop(), pop()
			emit(Line{PC: ins.PC, Text: fmt.Sprintf("return mem[%s..+%s]", off, n), Kind: LineControl})
		case op == evm.REVERT:
			pop()
			pop()
			emit(Line{PC: ins.PC, Text: "revert", Kind: LineControl})
		case op == evm.POP:
			pop()
		default:
			pops := op.StackPops()
			args := make([]string, pops)
			taint := false
			for i := 0; i < pops; i++ {
				args[i] = pop()
				if tainted[args[i]] {
					taint = true
				}
			}
			if op.StackPushes() == 0 {
				emit(Line{PC: ins.PC, Text: fmt.Sprintf("%s(%s)", strings.ToLower(op.String()), strings.Join(args, ", "))})
				continue
			}
			def := fresh()
			kind := LineNormal
			if taint && isMaskOp(op) {
				kind = LineParamAccess
				tainted[def] = true
			} else if taint {
				tainted[def] = true
			}
			emit(Line{
				PC:   ins.PC,
				Text: fmt.Sprintf("%s = %s(%s)", def, strings.ToLower(op.String()), strings.Join(args, ", ")),
				Kind: kind,
				Def:  def,
			})
			push(def)
		}
	}
	return out
}

func isMaskOp(op evm.Op) bool {
	switch op {
	case evm.AND, evm.SIGNEXTEND, evm.ISZERO, evm.DIV, evm.MUL, evm.ADD, evm.BYTE:
		return true
	default:
		return false
	}
}

func zeroIfEmpty(b []byte) string {
	for _, x := range b {
		if x != 0 {
			return ""
		}
	}
	return "0"
}

func parseHex(s string) (uint64, bool) {
	if !strings.HasPrefix(s, "0x") {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "0x%x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// Metrics quantify the readability improvement of Erays+ over Erays (the
// paper's §6.3 measurements).
type Metrics struct {
	// AddedTypes counts parameter types added to function headers.
	AddedTypes int
	// AddedNames counts registers renamed to argN.
	AddedNames int
	// AddedNums counts num-field loads renamed to num(argN).
	AddedNums int
	// RemovedLines counts collapsed parameter-access lines.
	RemovedLines int
}

// Enhanced is the Erays+ output.
type Enhanced struct {
	Listing *Listing
	Headers []string
	Metrics Metrics
	Renamed map[string]string
}

// Enhance applies recovered signatures to a lifted listing: headers with
// typed parameters, argN names for head loads, num(argN) for length loads,
// and removal of the mask/copy boilerplate.
func Enhance(code []byte, recovery core.Result) *Enhanced {
	base := Lift(code)
	enh := &Enhanced{Renamed: make(map[string]string)}

	// Head-offset -> parameter name, from the recovered layouts.
	argAt := make(map[uint64]string)
	headerBySel := make(map[string]string, len(recovery.Functions))
	for _, f := range recovery.Functions {
		parts := make([]string, len(f.Inputs))
		head := uint64(4)
		for i, t := range f.Inputs {
			name := fmt.Sprintf("arg%d", i+1)
			parts[i] = t.Display() + " " + name
			argAt[head] = name
			head += uint64(t.HeadSize())
			enh.Metrics.AddedTypes++
		}
		header := fmt.Sprintf("function %s(%s)", f.Selector.Hex(), strings.Join(parts, ", "))
		enh.Headers = append(enh.Headers, header)
		headerBySel[f.Selector.Hex()] = header
	}
	// Body-entry PCs from the dispatcher's PUSH4 id / PUSH2 target pairs,
	// so headers land inline above each function's label.
	headerAtPC := bodyHeaders(code, headerBySel)

	// Pass 1: propagate argument aliases through registers and memory
	// slots, so indirect loads (num fields reached via saved offsets) can
	// be named.
	regArg := make(map[string]string) // register -> argN it carries/derives
	memArg := make(map[string]string) // memory-slot text -> argN
	argOf := func(operand string) string {
		if a, ok := regArg[operand]; ok {
			return a
		}
		return ""
	}
	for _, ln := range base.Lines {
		switch {
		case ln.Kind == LineParamAccess && ln.HeadOffset >= 4 && ln.Def != "":
			if name, ok := argAt[ln.HeadOffset]; ok {
				regArg[ln.Def] = name
			}
		case strings.HasPrefix(ln.Text, "mem["):
			// "mem[ADDR] = VAL"
			if addr, val, ok := splitMemStore(ln.Text); ok {
				if a := argOf(val); a != "" {
					memArg[addr] = a
				}
			}
		case ln.Def != "" && strings.Contains(ln.Text, "= mem["):
			if addr, ok := memLoadAddr(ln.Text); ok {
				if a, hit := memArg[addr]; hit {
					regArg[ln.Def] = a
				}
			}
		case ln.Def != "":
			// Arithmetic over an arg-derived register stays derived.
			for reg, a := range regArg {
				if containsOperand(ln.Text, reg) {
					regArg[ln.Def] = a
					break
				}
			}
		}
	}

	out := &Listing{}
	for _, ln := range base.Lines {
		if ln.Kind == LineControl {
			if h, ok := headerAtPC[ln.PC]; ok {
				out.Lines = append(out.Lines, Line{PC: ln.PC, Text: "// " + h, Kind: LineControl})
			}
		}
		switch {
		case ln.Kind == LineParamAccess && ln.HeadOffset >= 4:
			if name, ok := argAt[ln.HeadOffset]; ok {
				// Direct head load becomes a named assignment.
				out.Lines = append(out.Lines, Line{
					PC:   ln.PC,
					Text: fmt.Sprintf("%s = %s", ln.Def, name),
					Kind: LineNormal,
					Def:  ln.Def,
				})
				enh.Renamed[ln.Def] = name
				enh.Metrics.AddedNames++
				continue
			}
			out.Lines = append(out.Lines, ln)
		case ln.Kind == LineParamAccess && ln.Def != "" && strings.Contains(ln.Text, "calldataload("):
			// Indirect load: an offset or num field of an argument.
			operand := ln.Text[strings.Index(ln.Text, "calldataload(")+len("calldataload(") : len(ln.Text)-1]
			if a := argOf(operand); a != "" {
				out.Lines = append(out.Lines, Line{
					PC:   ln.PC,
					Text: fmt.Sprintf("%s = num(%s)", ln.Def, a),
					Kind: LineNormal,
					Def:  ln.Def,
				})
				enh.Renamed[ln.Def] = "num(" + a + ")"
				enh.Metrics.AddedNums++
				continue
			}
			enh.Metrics.RemovedLines++
		case ln.Kind == LineParamAccess:
			// Mask/copy boilerplate disappears: its effect is already in
			// the typed header.
			enh.Metrics.RemovedLines++
		default:
			out.Lines = append(out.Lines, ln)
		}
	}
	enh.Listing = out
	return enh
}

// bodyHeaders maps function-body entry PCs to their recovered headers by
// scanning the dispatcher's PUSH4 id / EQ / PUSH2 target pattern.
func bodyHeaders(code []byte, headerBySel map[string]string) map[uint64]string {
	out := make(map[uint64]string)
	ins := evm.Disassemble(code).Instructions
	for i := 0; i+2 < len(ins); i++ {
		if ins[i].Op != evm.PUSH4 || ins[i+1].Op != evm.EQ || ins[i+2].Op != evm.PUSH2 {
			continue
		}
		sel := fmt.Sprintf("0x%x", ins[i].ArgBytes)
		if h, ok := headerBySel[sel]; ok {
			if target, okT := ins[i+2].Arg.Uint64(); okT {
				out[target] = h
			}
		}
	}
	return out
}

// splitMemStore parses "mem[ADDR] = VAL".
func splitMemStore(text string) (addr, val string, ok bool) {
	rest, found := strings.CutPrefix(text, "mem[")
	if !found {
		return "", "", false
	}
	i := strings.Index(rest, "] = ")
	if i < 0 {
		return "", "", false
	}
	return rest[:i], rest[i+4:], true
}

// memLoadAddr parses "DEF = mem[ADDR]".
func memLoadAddr(text string) (string, bool) {
	i := strings.Index(text, "= mem[")
	if i < 0 || !strings.HasSuffix(text, "]") {
		return "", false
	}
	return text[i+6 : len(text)-1], true
}

// containsOperand reports whether the register appears as an operand token.
func containsOperand(text, reg string) bool {
	idx := strings.Index(text, "= ")
	if idx < 0 {
		return false
	}
	rhs := text[idx+2:]
	for _, sep := range []string{"(", ", ", " "} {
		rhs = strings.ReplaceAll(rhs, sep, ",")
	}
	rhs = strings.ReplaceAll(rhs, ")", ",")
	for _, tok := range strings.Split(rhs, ",") {
		if tok == reg {
			return true
		}
	}
	return false
}
