package store

import (
	"os"
	"testing"
)

// FuzzStoreCorruption opens stores over arbitrarily damaged segment files.
// The invariants, whatever the damage: Open never panics and never errors
// on mere data corruption, Load never serves a result that differs from
// what was written for that key (crc + validating decode make corruption
// either invisible or a miss, never a lie), and the reopened store accepts
// appends.
func FuzzStoreCorruption(f *testing.F) {
	// Seed with mutations around record boundaries: truncations, single
	// byte flips, and a zeroed span.
	f.Add(int64(10), uint8(0), uint32(0))
	f.Add(int64(200), uint8(1), uint32(0xff))
	f.Add(int64(41), uint8(2), uint32(7))
	f.Fuzz(func(t *testing.T, pos int64, mode uint8, val uint32) {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		const n = 4
		want := make(map[[32]byte]string, n)
		for i := 0; i < n; i++ {
			res := sampleResult(i)
			if err := s.Save(sampleKey(i), res, nil); err != nil {
				t.Fatal(err)
			}
			want[sampleKey(i)] = render(res, nil)
		}
		seg := segmentPath(dir, s.active.id)
		s.Close()

		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		size := fi.Size()
		if size == 0 {
			t.Fatal("empty segment")
		}
		pos %= size
		if pos < 0 {
			pos += size
		}
		switch mode % 3 {
		case 0: // truncate at pos
			if err := os.Truncate(seg, pos); err != nil {
				t.Fatal(err)
			}
		case 1: // flip a byte at pos
			fh, err := os.OpenFile(seg, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			var b [1]byte
			if _, err := fh.ReadAt(b[:], pos); err == nil {
				b[0] ^= byte(val) | 1
				if _, err := fh.WriteAt(b[:], pos); err != nil {
					t.Fatal(err)
				}
			}
			fh.Close()
		case 2: // zero a span starting at pos
			span := int64(val%64) + 1
			if pos+span > size {
				span = size - pos
			}
			fh, err := os.OpenFile(seg, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fh.WriteAt(make([]byte, span), pos); err != nil {
				t.Fatal(err)
			}
			fh.Close()
		}

		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open over damaged segment errored: %v", err)
		}
		defer s2.Close()
		for key, wantRender := range want {
			res, rerr, ok := s2.Load(key)
			if !ok {
				continue // damage may legitimately eat any record
			}
			if got := render(res, rerr); got != wantRender {
				t.Fatalf("corruption served a wrong result for %x:\ngot:\n%s\nwant:\n%s", key[:4], got, wantRender)
			}
		}
		// Whatever survived, the store must still be writable and replayable.
		if err := s2.Save(sampleKey(99), sampleResult(99), nil); err != nil {
			t.Fatalf("append after damage: %v", err)
		}
		s2.Close()
		s3, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		if _, _, ok := s3.Load(sampleKey(99)); !ok {
			t.Fatal("append after damage lost on reopen")
		}
		s3.Close()
	})
}
