package store

import (
	"encoding/json"
	"fmt"

	"sigrec/internal/abi"
	"sigrec/internal/core"
)

// The payload is JSON of a compact DTO: parameter types travel as their
// canonical strings and are re-parsed on load, so the on-disk format is
// decoupled from abi.Type's in-memory shape and every loaded type has been
// through the validating parser (a corrupt-but-crc-valid payload cannot
// smuggle a malformed type into the pipeline).

type fnPayload struct {
	Selector   string   `json:"s"`
	Types      []string `json:"t,omitempty"`
	ParamRules [][]int  `json:"r,omitempty"`
	Language   int      `json:"l,omitempty"`
	Truncated  bool     `json:"x,omitempty"`
}

type resultPayload struct {
	Functions []fnPayload `json:"f,omitempty"`
	Rules     []uint64    `json:"rules,omitempty"`
	Truncated bool        `json:"trunc,omitempty"`
}

func encodeResult(res core.Result) ([]byte, error) {
	p := resultPayload{Truncated: res.Truncated}
	for r := 1; r <= core.NumRules; r++ {
		if res.Rules[r] != 0 {
			p.Rules = res.Rules[:]
			break
		}
	}
	for _, f := range res.Functions {
		fp := fnPayload{
			Selector:  f.Selector.Hex(),
			Language:  int(f.Language),
			Truncated: f.Truncated,
		}
		for _, t := range f.Inputs {
			fp.Types = append(fp.Types, t.String())
		}
		for _, rules := range f.ParamRules {
			ids := make([]int, len(rules))
			for i, r := range rules {
				ids[i] = int(r)
			}
			fp.ParamRules = append(fp.ParamRules, ids)
		}
		p.Functions = append(p.Functions, fp)
	}
	b, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return b, nil
}

func decodeResult(b []byte) (core.Result, error) {
	var p resultPayload
	if err := json.Unmarshal(b, &p); err != nil {
		return core.Result{}, fmt.Errorf("store: decode: %w", err)
	}
	res := core.Result{Truncated: p.Truncated}
	if len(p.Rules) > 0 {
		if len(p.Rules) != len(res.Rules) {
			return core.Result{}, fmt.Errorf("store: decode: %d rule slots, want %d", len(p.Rules), len(res.Rules))
		}
		copy(res.Rules[:], p.Rules)
	}
	for _, fp := range p.Functions {
		sel, err := parseSelector(fp.Selector)
		if err != nil {
			return core.Result{}, err
		}
		fn := core.RecoveredFunction{
			Selector:  sel,
			Language:  core.Language(fp.Language),
			Truncated: fp.Truncated,
		}
		for _, ts := range fp.Types {
			t, err := abi.ParseType(ts)
			if err != nil {
				return core.Result{}, fmt.Errorf("store: decode type %q: %w", ts, err)
			}
			fn.Inputs = append(fn.Inputs, t)
		}
		for _, ids := range fp.ParamRules {
			rules := make([]core.RuleID, len(ids))
			for i, id := range ids {
				if id < 1 || id > core.NumRules {
					return core.Result{}, fmt.Errorf("store: decode: rule id %d out of range", id)
				}
				rules[i] = core.RuleID(id)
			}
			fn.ParamRules = append(fn.ParamRules, rules)
		}
		res.Functions = append(res.Functions, fn)
	}
	return res, nil
}

func parseSelector(s string) (abi.Selector, error) {
	var sel abi.Selector
	if len(s) != 10 || s[:2] != "0x" {
		return sel, fmt.Errorf("store: decode: bad selector %q", s)
	}
	for i := 0; i < 4; i++ {
		hi, ok1 := hexNibble(s[2+2*i])
		lo, ok2 := hexNibble(s[3+2*i])
		if !ok1 || !ok2 {
			return sel, fmt.Errorf("store: decode: bad selector %q", s)
		}
		sel[i] = hi<<4 | lo
	}
	return sel, nil
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}
