// Package store is the disk tier of the recovery result cache: an
// append-only segmented record log with a keccak256-keyed in-memory index,
// pread (ReadAt) lookups, crc-checked records, torn-tail truncation on
// open, and size-triggered compaction.
//
// The on-disk layout is a directory of numbered segment files:
//
//	seg-00000001.log
//	seg-00000002.log
//	...
//
// Each segment starts with an 8-byte magic + 4-byte version header and
// then holds back-to-back records:
//
//	key[32] | flags[1] | payloadLen uint32 LE | crc32 uint32 LE | payload
//
// The crc (IEEE) covers key, flags, payloadLen, and payload, so any header
// or body corruption is detected, never served. A key appearing in more
// than one record resolves to the latest occurrence in segment/offset
// order, which makes overwrites and crash-interrupted compaction (old and
// new copies both on disk) safe: replay order picks the newest copy and
// compaction garbage is just dead bytes.
//
// Crash safety on open: the final segment may end in a torn record from a
// crashed writer — the tail after the last complete, crc-valid record is
// truncated away. A crc-mismatching record in the interior is skipped
// (counted in Stats.CorruptSkipped) when its length field still lands on a
// plausible record boundary; otherwise the remainder of that segment is
// treated as torn.
//
// Writes are buffered through the OS page cache without per-record fsync:
// the store is a cache, so losing the last few appends on power failure
// costs recomputation, not correctness.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sigrec/internal/core"
)

const (
	magic         = "SIGRECS1"
	headerLen     = len(magic) + 4 // magic + version
	version       = 1
	recHeaderLen  = 32 + 1 + 4 + 4 // key + flags + payloadLen + crc
	maxPayloadLen = 16 << 20       // sanity bound: no record payload exceeds 16 MiB

	// flagErrNoFunctions marks a cached ErrNoFunctions outcome (the only
	// error the cacheability policy persists).
	flagErrNoFunctions = 1 << 0
)

// Options tunes segment rotation and compaction.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it grows past this
	// size. <= 0 selects 8 MiB.
	MaxSegmentBytes int64
	// CompactMinDeadBytes arms compaction only once at least this many
	// dead (overwritten or skipped) bytes have accumulated. <= 0 selects
	// 1 MiB.
	CompactMinDeadBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.CompactMinDeadBytes <= 0 {
		o.CompactMinDeadBytes = 1 << 20
	}
	return o
}

// Stats is a point-in-time view of the store's health counters.
type Stats struct {
	// Records is the number of live (indexed) keys.
	Records int
	// Segments is the number of on-disk segment files.
	Segments int
	// LiveBytes / DeadBytes partition the on-disk record bytes into
	// reachable-from-index and garbage.
	LiveBytes int64
	DeadBytes int64
	// CorruptSkipped counts crc-mismatching records skipped during opens.
	CorruptSkipped uint64
	// TornTruncated counts torn tails truncated away during opens.
	TornTruncated uint64
	// Compactions counts completed compaction passes.
	Compactions uint64
}

// recLoc locates one live record: which segment, the offset of the record
// header, and the full record length.
type recLoc struct {
	seg    uint64
	off    int64
	length int64
	flags  byte
}

// segment is one open segment file.
type segment struct {
	id   uint64
	f    *os.File
	size int64
}

// Store is the disk-backed result store. All methods are safe for
// concurrent use. Store implements core.ResultStore.
type Store struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	segments map[uint64]*segment
	active   *segment // highest-numbered segment; appends go here
	index    map[[32]byte]recLoc
	live     int64
	dead     int64

	corruptSkipped uint64
	tornTruncated  uint64
	compactions    uint64
}

var _ core.ResultStore = (*Store)(nil)

// Open opens (creating if needed) the store rooted at dir, replaying every
// segment to rebuild the index, truncating any torn tail, and skipping
// crc-corrupt records.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		segments: make(map[uint64]*segment),
		index:    make(map[[32]byte]recLoc),
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := s.openSegment(id); err != nil {
			s.Close()
			return nil, err
		}
	}
	if s.active == nil {
		if err := s.newSegment(1); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// segmentIDs lists the segment numbers present in dir, ascending.
func segmentIDs(dir string) ([]uint64, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	var ids []uint64
	for _, n := range names {
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(n), "seg-%08d.log", &id); err == nil && id > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func segmentPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.log", id))
}

// newSegment creates and activates an empty segment with the given id.
// Caller holds mu (or is single-threaded during Open).
func (s *Store) newSegment(id uint64) error {
	f, err := os.OpenFile(segmentPath(s.dir, id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, f: f, size: int64(headerLen)}
	s.segments[id] = seg
	s.active = seg
	return nil
}

// openSegment opens an existing segment, replays its records into the
// index, and truncates a torn tail. Single-threaded (Open only).
func (s *Store) openSegment(id uint64) error {
	f, err := os.OpenFile(segmentPath(s.dir, id), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: id, f: f}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	var hdr [headerLen]byte
	if n, err := f.ReadAt(hdr[:], 0); n < headerLen || string(hdr[:len(magic)]) != magic ||
		binary.LittleEndian.Uint32(hdr[len(magic):]) != version {
		// A segment too short for its header, or with a foreign header, is
		// unusable in full: treat everything as torn and reinitialize it.
		_ = err
		s.tornTruncated++
		if terr := s.reinitSegment(f); terr != nil {
			f.Close()
			return terr
		}
		seg.size = int64(headerLen)
		s.segments[id] = seg
		s.active = seg
		return nil
	}
	good := int64(headerLen) // end of the last complete, valid record
	off := int64(headerLen)
	var rh [recHeaderLen]byte
	for off+int64(recHeaderLen) <= size {
		if _, err := f.ReadAt(rh[:], off); err != nil {
			break
		}
		payloadLen := int64(binary.LittleEndian.Uint32(rh[33:37]))
		wantCRC := binary.LittleEndian.Uint32(rh[37:41])
		recLen := int64(recHeaderLen) + payloadLen
		if payloadLen > maxPayloadLen || off+recLen > size {
			// Length field implausible or record runs past EOF: torn tail.
			break
		}
		payload := make([]byte, payloadLen)
		if _, err := f.ReadAt(payload, off+int64(recHeaderLen)); err != nil {
			break
		}
		if recordCRC(rh[:37], payload) != wantCRC {
			// Interior corruption with a plausible length: skip just this
			// record and keep replaying from the next boundary.
			s.corruptSkipped++
			s.dead += recLen
			off += recLen
			good = off
			continue
		}
		var key [32]byte
		copy(key[:], rh[:32])
		loc := recLoc{seg: id, off: off, length: recLen, flags: rh[32]}
		if prev, ok := s.index[key]; ok {
			s.dead += prev.length
			s.live -= prev.length
		}
		s.index[key] = loc
		s.live += recLen
		off += recLen
		good = off
	}
	if good < size {
		s.tornTruncated++
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	seg.size = good
	s.segments[id] = seg
	s.active = seg
	return nil
}

// reinitSegment rewrites a segment file down to a bare valid header.
func (s *Store) reinitSegment(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// recordCRC covers the record header through payloadLen plus the payload,
// so corruption anywhere in the record is detected.
func recordCRC(headerPrefix, payload []byte) uint32 {
	c := crc32.ChecksumIEEE(headerPrefix)
	return crc32.Update(c, crc32.IEEETable, payload)
}

// Load returns the stored outcome for a key. The bool reports presence;
// the inner error is the persisted recovery error (nil or
// core.ErrNoFunctions), mirroring the memory cache's (Result, error)
// entries.
func (s *Store) Load(key [32]byte) (core.Result, error, bool) {
	s.mu.RLock()
	loc, ok := s.index[key]
	var seg *segment
	if ok {
		seg = s.segments[loc.seg]
	}
	s.mu.RUnlock()
	if !ok || seg == nil {
		return core.Result{}, nil, false
	}
	buf := make([]byte, loc.length)
	if _, err := seg.f.ReadAt(buf, loc.off); err != nil {
		return core.Result{}, nil, false
	}
	// Re-verify the crc on every read: the index was built at open time
	// and the file may have been damaged since.
	wantCRC := binary.LittleEndian.Uint32(buf[37:41])
	if recordCRC(buf[:37], buf[recHeaderLen:]) != wantCRC {
		return core.Result{}, nil, false
	}
	res, err := decodeResult(buf[recHeaderLen:])
	if err != nil {
		return core.Result{}, nil, false
	}
	var rerr error
	if buf[32]&flagErrNoFunctions != 0 {
		rerr = core.ErrNoFunctions
	}
	return res, rerr, true
}

// Save appends an outcome for key, replacing any prior record for the same
// key in the index (the old bytes become dead and are reclaimed by
// compaction). Only nil and core.ErrNoFunctions outcomes are accepted,
// matching the memory cache's cacheability policy.
func (s *Store) Save(key [32]byte, res core.Result, rerr error) error {
	var flags byte
	switch {
	case rerr == nil:
	case errors.Is(rerr, core.ErrNoFunctions):
		flags |= flagErrNoFunctions
	default:
		return fmt.Errorf("store: outcome with error %q is not persistable", rerr)
	}
	payload, err := encodeResult(res)
	if err != nil {
		return err
	}
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("store: payload %d bytes exceeds limit", len(payload))
	}
	rec := make([]byte, recHeaderLen+len(payload))
	copy(rec[:32], key[:])
	rec[32] = flags
	binary.LittleEndian.PutUint32(rec[33:37], uint32(len(payload)))
	copy(rec[recHeaderLen:], payload)
	binary.LittleEndian.PutUint32(rec[37:41], recordCRC(rec[:37], payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active.size >= s.opts.MaxSegmentBytes {
		if err := s.newSegment(s.active.id + 1); err != nil {
			return err
		}
	}
	seg := s.active
	off := seg.size
	if _, err := seg.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	seg.size += int64(len(rec))
	if prev, ok := s.index[key]; ok {
		s.dead += prev.length
		s.live -= prev.length
	}
	s.index[key] = recLoc{seg: seg.id, off: off, length: int64(len(rec)), flags: flags}
	s.live += int64(len(rec))
	if s.dead >= s.opts.CompactMinDeadBytes && s.dead > s.live {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites every live record into a fresh segment and
// deletes the old ones. Crash-safe without temp files: the new segment has
// a higher number than every old one, and replay resolves duplicate keys
// to the latest segment/offset — a crash after the new segment is written
// but before the old ones are unlinked only leaves dead bytes behind.
func (s *Store) compactLocked() error {
	oldIDs := make([]uint64, 0, len(s.segments))
	for id := range s.segments {
		oldIDs = append(oldIDs, id)
	}
	if err := s.newSegment(s.active.id + 1); err != nil {
		return err
	}
	dst := s.active
	// Copy live records in deterministic (segment, offset) order.
	type kv struct {
		key [32]byte
		loc recLoc
	}
	lives := make([]kv, 0, len(s.index))
	for k, loc := range s.index {
		lives = append(lives, kv{k, loc})
	}
	sort.Slice(lives, func(i, j int) bool {
		if lives[i].loc.seg != lives[j].loc.seg {
			return lives[i].loc.seg < lives[j].loc.seg
		}
		return lives[i].loc.off < lives[j].loc.off
	})
	for _, e := range lives {
		src := s.segments[e.loc.seg]
		buf := make([]byte, e.loc.length)
		if _, err := src.f.ReadAt(buf, e.loc.off); err != nil {
			return fmt.Errorf("store: compact read: %w", err)
		}
		off := dst.size
		if _, err := dst.f.WriteAt(buf, off); err != nil {
			return fmt.Errorf("store: compact write: %w", err)
		}
		dst.size += e.loc.length
		s.index[e.key] = recLoc{seg: dst.id, off: off, length: e.loc.length, flags: e.loc.flags}
	}
	// The compacted segment must be durable before the sources disappear.
	if err := dst.f.Sync(); err != nil {
		return fmt.Errorf("store: compact sync: %w", err)
	}
	for _, id := range oldIDs {
		seg := s.segments[id]
		seg.f.Close()
		if err := os.Remove(segmentPath(s.dir, id)); err != nil {
			return fmt.Errorf("store: compact unlink: %w", err)
		}
		delete(s.segments, id)
	}
	s.dead = 0
	s.compactions++
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats returns the store's health counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:        len(s.index),
		Segments:       len(s.segments),
		LiveBytes:      s.live,
		DeadBytes:      s.dead,
		CorruptSkipped: s.corruptSkipped,
		TornTruncated:  s.tornTruncated,
		Compactions:    s.compactions,
	}
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	if err := s.active.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Keys calls fn for every live key until fn returns false. The snapshot is
// taken under the read lock; fn runs outside it.
func (s *Store) Keys(fn func(key [32]byte) bool) {
	s.mu.RLock()
	keys := make([][32]byte, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	for _, k := range keys {
		if !fn(k) {
			return
		}
	}
}

// Close syncs and closes every segment. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, seg := range s.segments {
		if err := seg.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.segments = map[uint64]*segment{}
	s.active = nil
	if firstErr != nil {
		return fmt.Errorf("store: close: %w", firstErr)
	}
	return nil
}
