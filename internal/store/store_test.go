package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/core"
)

// sampleResult builds a distinct, structurally rich Result for key i.
func sampleResult(i int) core.Result {
	mustType := func(s string) abi.Type {
		t, err := abi.ParseType(s)
		if err != nil {
			panic(err)
		}
		return t
	}
	var sel abi.Selector
	binary.BigEndian.PutUint32(sel[:], uint32(i))
	res := core.Result{
		Functions: []core.RecoveredFunction{{
			Selector:   sel,
			Inputs:     []abi.Type{mustType("uint256"), mustType("bytes"), mustType("address[3]")},
			ParamRules: [][]core.RuleID{{1, 4}, {9}, {12, 13}},
			Language:   core.LangSolidity,
		}},
	}
	res.Rules[1] = uint64(i + 1)
	res.Rules[9] = 2
	return res
}

func sampleKey(i int) [32]byte {
	var k [32]byte
	binary.BigEndian.PutUint64(k[:8], uint64(i))
	k[31] = 0xa5
	return k
}

// render flattens everything observable from a Result for comparison.
func render(res core.Result, rerr error) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "trunc=%v rules=%v err=%v\n", res.Truncated, res.Rules, rerr)
	for _, f := range res.Functions {
		fmt.Fprintf(&b, "%s %s lang=%v trunc=%v rules=%v\n",
			f.Selector.Hex(), f.TypeList(), f.Language, f.Truncated, f.ParamRules)
	}
	return b.String()
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		var rerr error
		if i%7 == 0 {
			rerr = core.ErrNoFunctions
		}
		if err := s.Save(sampleKey(i), sampleResult(i), rerr); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	check := func(s *Store, phase string) {
		t.Helper()
		if s.Len() != n {
			t.Fatalf("%s: Len = %d, want %d", phase, s.Len(), n)
		}
		for i := 0; i < n; i++ {
			var wantErr error
			if i%7 == 0 {
				wantErr = core.ErrNoFunctions
			}
			res, rerr, ok := s.Load(sampleKey(i))
			if !ok {
				t.Fatalf("%s: key %d missing", phase, i)
			}
			if got, want := render(res, rerr), render(sampleResult(i), wantErr); got != want {
				t.Fatalf("%s: key %d mismatch\ngot:\n%s\nwant:\n%s", phase, i, got, want)
			}
		}
		if _, _, ok := s.Load(sampleKey(n + 1)); ok {
			t.Fatalf("%s: phantom key present", phase)
		}
	}
	check(s, "before reopen")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2, "after reopen")
	if st := s2.Stats(); st.CorruptSkipped != 0 || st.TornTruncated != 0 {
		t.Fatalf("clean reopen reported damage: %+v", st)
	}
}

func TestStoreOverwriteTakesLatest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := sampleKey(1)
	if err := s.Save(key, sampleResult(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(key, sampleResult(2), nil); err != nil {
		t.Fatal(err)
	}
	res, _, ok := s.Load(key)
	if !ok || res.Functions[0].Selector != sampleResult(2).Functions[0].Selector {
		t.Fatalf("latest write not served: ok=%v res=%+v", ok, res)
	}
	if st := s.Stats(); st.DeadBytes == 0 {
		t.Fatal("overwrite accounted no dead bytes")
	}
	s.Close()
	// Replay must also resolve to the latest occurrence.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, _, ok = s2.Load(key)
	if !ok || res.Functions[0].Selector != sampleResult(2).Functions[0].Selector {
		t.Fatal("replay did not keep the latest record")
	}
}

// TestStoreTornTailTruncated cuts the final record short at every possible
// byte boundary: reopening must drop exactly the torn record, keep every
// earlier one, and leave a file that appends cleanly.
func TestStoreTornTailTruncated(t *testing.T) {
	build := func(t *testing.T, dir string) (segPath string, wholeLen, lastRecOff int64) {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := s.Save(sampleKey(i), sampleResult(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		if st.Segments != 1 {
			t.Fatalf("expected 1 segment, got %d", st.Segments)
		}
		loc := s.index[sampleKey(2)]
		segPath = segmentPath(dir, loc.seg)
		wholeLen = s.active.size
		lastRecOff = loc.off
		s.Close()
		return
	}
	segPath, wholeLen, lastOff := build(t, t.TempDir())
	for cut := lastOff + 1; cut < wholeLen; cut += 7 {
		dir := t.TempDir()
		copySegment(t, segPath, dir)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(segPath)), cut); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if s.Len() != 2 {
			t.Fatalf("cut=%d: Len = %d, want 2 (torn record dropped)", cut, s.Len())
		}
		if st := s.Stats(); st.TornTruncated != 1 {
			t.Fatalf("cut=%d: TornTruncated = %d, want 1", cut, st.TornTruncated)
		}
		for i := 0; i < 2; i++ {
			if _, _, ok := s.Load(sampleKey(i)); !ok {
				t.Fatalf("cut=%d: intact record %d lost", cut, i)
			}
		}
		// The truncated store must accept appends and survive a reopen.
		if err := s.Save(sampleKey(9), sampleResult(9), nil); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		s.Close()
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if s2.Len() != 3 {
			t.Fatalf("cut=%d: reopen Len = %d, want 3", cut, s2.Len())
		}
		if st := s2.Stats(); st.TornTruncated != 0 || st.CorruptSkipped != 0 {
			t.Fatalf("cut=%d: reopen after repair reported damage: %+v", cut, st)
		}
		s2.Close()
	}
}

// TestStoreCorruptRecordSkipped flips payload bytes of an interior record:
// the reopen must skip exactly that record, count it, and serve the rest.
func TestStoreCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Save(sampleKey(i), sampleResult(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	mid := s.index[sampleKey(1)]
	path := segmentPath(dir, mid.seg)
	s.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte of the middle record.
	if _, err := f.WriteAt([]byte{0xff}, mid.off+int64(recHeaderLen)+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
	if st := s2.Stats(); st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1: %+v", st.CorruptSkipped, st)
	}
	if _, _, ok := s2.Load(sampleKey(1)); ok {
		t.Fatal("corrupt record served")
	}
	for _, i := range []int{0, 2} {
		if _, _, ok := s2.Load(sampleKey(i)); !ok {
			t.Fatalf("record %d after corruption lost", i)
		}
	}
}

// TestStoreRotationAndCompaction drives rotation via a tiny segment cap,
// then overwrites enough to trigger compaction; the live set must survive
// with fewer on-disk bytes and a reopen must agree.
func TestStoreRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 2048, CompactMinDeadBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for round := 0; round < 4; round++ {
		for i := 0; i < n; i++ {
			if err := s.Save(sampleKey(i), sampleResult(i*10+round), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after heavy overwrite: %+v", st)
	}
	if st.Records != n {
		t.Fatalf("Records = %d, want %d", st.Records, n)
	}
	for i := 0; i < n; i++ {
		res, _, ok := s.Load(sampleKey(i))
		if !ok {
			t.Fatalf("key %d lost after compaction", i)
		}
		want := sampleResult(i*10 + 3)
		if render(res, nil) != render(want, nil) {
			t.Fatalf("key %d: stale value after compaction", i)
		}
	}
	s.Close()
	s2, err := Open(dir, Options{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopen Len = %d, want %d", s2.Len(), n)
	}
}

// TestStoreConcurrent hammers Save/Load from many goroutines; run under
// -race this is the store's concurrency audit.
func TestStoreConcurrent(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxSegmentBytes: 4096, CompactMinDeadBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := sampleKey(i % 10)
				if err := s.Save(k, sampleResult(i%10), nil); err != nil {
					t.Errorf("save: %v", err)
					return
				}
				if res, _, ok := s.Load(k); ok && len(res.Functions) == 0 {
					t.Error("load returned empty result for saved key")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
}

func copySegment(t *testing.T, src, dstDir string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dstDir, filepath.Base(src)), b, 0o644); err != nil {
		t.Fatal(err)
	}
}
