package eventlog

import (
	"strings"
	"testing"
)

// TestTraceView pins the offline trace join: only recovery events with
// the exact trace id are kept, ordering is by time then seq, and the
// request/extent summaries describe the filtered set.
func TestTraceView(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	events := []Event{
		// The hedge (s2's log) finished before the primary was cancelled.
		{Seq: 9, TS: 1_500, DurUS: 300, RequestID: "client-7.2", TraceID: tid, Functions: 2},
		{Seq: 4, TS: 2_000, DurUS: 900, RequestID: "client-7.1", TraceID: tid, Error: "context canceled"},
		// Same microsecond: seq breaks the tie.
		{Seq: 2, TS: 1_500, DurUS: 100, RequestID: "client-7.2", TraceID: tid, Cache: "hit"},
		// Noise: another trace, an untraced event, an aux record.
		{Seq: 5, TS: 1_600, DurUS: 10, RequestID: "other", TraceID: "ffffffffffffffffffffffffffffffff"},
		{Seq: 6, TS: 1_700, DurUS: 10, RequestID: "plain"},
		{Seq: 7, TS: 1_800, Kind: "flight_recorder", TraceID: tid},
	}

	rep := TraceView(events, tid)
	if len(rep.Events) != 3 {
		t.Fatalf("events in trace = %d, want 3", len(rep.Events))
	}
	if rep.Events[0].Seq != 2 || rep.Events[1].Seq != 9 || rep.Events[2].Seq != 4 {
		t.Fatalf("order = %d,%d,%d, want 2,9,4", rep.Events[0].Seq, rep.Events[1].Seq, rep.Events[2].Seq)
	}
	if rep.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (primary + hedge)", rep.Requests)
	}
	// Extent: earliest start is seq 4 (2000-900=1100), latest end 2000.
	if rep.SpanUS != 900 {
		t.Fatalf("span = %dus, want 900", rep.SpanUS)
	}

	var buf strings.Builder
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{tid, "client-7.1", "client-7.2", "error: context canceled", "cache: hit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text view missing %q:\n%s", want, out)
		}
	}

	empty := TraceView(events, "00000000000000000000000000000001")
	if len(empty.Events) != 0 || empty.SpanUS != 0 {
		t.Fatalf("empty trace = %+v", empty)
	}
}
