package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Segments returns the on-disk segments for an event log base path,
// oldest first: path.N ... path.2, path.1, then the active path itself.
// Missing segments (including a missing active file when only rotations
// remain) are skipped; an empty slice means no log exists at all.
func Segments(path string) []string {
	type seg struct {
		n int // 0 = active file, higher = older
		p string
	}
	var segs []seg
	if _, err := os.Stat(path); err == nil {
		segs = append(segs, seg{0, path})
	}
	dir := path + "."
	for i := 1; ; i++ {
		p := dir + strconv.Itoa(i)
		if _, err := os.Stat(p); err != nil {
			break
		}
		segs = append(segs, seg{i, p})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].n > segs[b].n })
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.p
	}
	return out
}

// ReadFile decodes recovery events from one NDJSON segment. Auxiliary
// records (Kind != "") and malformed lines are skipped — a torn final
// line from a crashed writer must not poison the rest of the analysis.
// skipped reports how many non-empty lines were not decodable.
func ReadFile(path string) (events []Event, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	ev, sk, err := readAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("eventlog: %s: %w", path, err)
	}
	return ev, sk, nil
}

func readAll(r io.Reader) (events []Event, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if json.Unmarshal([]byte(line), &ev) != nil {
			skipped++
			continue
		}
		if ev.Kind != "" {
			continue
		}
		events = append(events, ev)
	}
	return events, skipped, sc.Err()
}

// ReadLog reads every segment of an event log (rotated plus active),
// oldest first, concatenating their recovery events. paths may name the
// active file or any single segment; rotation siblings of each named base
// are expanded automatically, and explicit ".N" segment paths are read
// as-is.
func ReadLog(path string) (events []Event, skipped int, err error) {
	segs := Segments(path)
	if len(segs) == 0 {
		// Maybe the caller named a rotated segment directly.
		if _, serr := os.Stat(path); serr != nil {
			return nil, 0, fmt.Errorf("eventlog: no segments at %s", path)
		}
		segs = []string{path}
	}
	for _, p := range segs {
		ev, sk, rerr := ReadFile(p)
		if rerr != nil {
			return events, skipped, rerr
		}
		events = append(events, ev...)
		skipped += sk
	}
	return events, skipped, nil
}
