package eventlog

import (
	"sync/atomic"
)

// sampler implements tail-based sampling: the keep/drop decision is made
// after the recovery finished, with its outcome in hand (Dapper-style
// tail sampling, decided per event rather than per trace tree).
//
// Policy, in order:
//
//  1. Errors and truncations are always kept — the rare events an
//     incident review needs are never sampled away, and their log totals
//     stay exact.
//  2. The slow tail is always kept: any event at or above a decaying
//     duration threshold. The threshold self-tunes — it rises toward the
//     duration of each slow event it admits and decays on each fast one —
//     so it tracks (approximately) the slowest percentile of the recent
//     stream regardless of the workload's absolute speed.
//  3. The fast bulk is sampled probabilistically at the configured rate
//     (rate >= 1 keeps everything, making the log lossless).
type sampler struct {
	// rate is the keep probability for the fast bulk.
	rate float64
	// thresholdUS is the decaying slow threshold. Events at or above it
	// are kept unconditionally.
	thresholdUS atomic.Int64
	// rng is a splitmix-style counter-based generator: cheap, lock-free,
	// and deterministic enough for sampling (not cryptographic).
	rng atomic.Uint64
}

// Threshold rise/decay shift factors. A slow event pulls the threshold
// 1/8 of the way up toward its duration; a fast event decays it by
// 1/1024. At equilibrium roughly decayShift-riseShift ≈ 7 bits of the
// stream (~1/128 of events) land above the threshold — the "slowest
// percentile" retained besides the probabilistic bulk.
const (
	riseShift  = 3
	decayShift = 10
)

func newSampler(rate float64, seed uint64) *sampler {
	s := &sampler{rate: rate}
	s.rng.Store(seed)
	return s
}

// keep decides whether the finished event enters the log, and returns the
// class that kept it ("outcome", "slow", "bulk") or "" when sampled out.
func (s *sampler) keep(e *Event) (bool, string) {
	if e.Error != "" || e.Truncated {
		return true, "outcome"
	}
	th := s.thresholdUS.Load()
	if e.DurUS >= th {
		// Slow tail: admit and pull the threshold up toward this duration.
		// A racing update loses at most one adjustment step; precision is
		// not required here.
		s.thresholdUS.Store(th + (e.DurUS-th)>>riseShift + 1)
		return true, "slow"
	}
	// Fast bulk: decay the threshold so it keeps tracking the stream,
	// then sample at the configured rate.
	if dec := th >> decayShift; dec > 0 {
		s.thresholdUS.Store(th - dec)
	}
	if s.rate >= 1 {
		return true, "bulk"
	}
	if s.rate <= 0 {
		return false, ""
	}
	if s.randFloat() < s.rate {
		return true, "bulk"
	}
	return false, ""
}

// randFloat returns a uniform float64 in [0,1) from a splitmix64 step.
func (s *sampler) randFloat() float64 {
	x := s.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// thresholdNow reports the current slow threshold, for tests and the
// writer's metrics gauge.
func (s *sampler) thresholdNow() int64 { return s.thresholdUS.Load() }
