package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sigrec/internal/telemetry"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultMaxBytes    = 64 << 20
	DefaultMaxSegments = 8
	DefaultQueueSize   = 1024
	DefaultTailSize    = 128
)

// Config sizes a Writer. Only Path is required.
type Config struct {
	// Path is the active log segment. Rotated segments live beside it as
	// Path.1 (most recent) through Path.N (oldest).
	Path string
	// MaxBytes rotates the active segment once it exceeds this size
	// (<= 0 selects DefaultMaxBytes).
	MaxBytes int64
	// MaxSegments bounds the rotated segments kept; the oldest is deleted
	// on rotation (<= 0 selects DefaultMaxSegments).
	MaxSegments int
	// SampleRate is the keep probability for fast, successful recoveries
	// (errors, truncations, and the slow tail are always kept). <= 0
	// selects 1 — a lossless log.
	SampleRate float64
	// QueueSize bounds events buffered between Emit and the writer
	// goroutine; beyond it events are dropped and counted, never blocking
	// the recovery path (<= 0 selects DefaultQueueSize).
	QueueSize int
	// TailSize bounds the in-memory ring of recent encoded events served
	// at GET /debug/events (<= 0 selects DefaultTailSize).
	TailSize int
	// Registry, when non-nil, receives the writer's self-metrics
	// (emitted/sampled-out/dropped/written counters, rotation and byte
	// counters, queue depth and slow-threshold gauges).
	Registry *telemetry.Registry
}

// Writer is the durable event sink: Emit enqueues (never blocks), a
// single background goroutine encodes, writes, and rotates, and Close
// drains the queue, flushes, and fsyncs. Safe for concurrent Emit.
type Writer struct {
	cfg     Config
	sampler *sampler

	mu     sync.RWMutex // guards closed + the channel send lifecycle
	closed bool
	ch     chan *Event

	seq  atomic.Uint64
	done chan struct{}

	// tail is a ring of the most recent encoded lines (without trailing
	// newline), guarded by tailMu; tailNext is the next write slot.
	tailMu   sync.Mutex
	tail     [][]byte
	tailNext int
	tailLen  int

	// werr remembers the first write error (the writer keeps consuming so
	// Emit never blocks, but the log is declared broken).
	werr atomic.Pointer[error]

	mEmitted    *telemetry.Counter
	mSampledOut *telemetry.Counter
	mDropped    *telemetry.Counter
	mWritten    *telemetry.Counter
	mBytes      *telemetry.Counter
	mRotations  *telemetry.Counter
	mErrors     *telemetry.Counter
	mQueueDepth *telemetry.Gauge
	mThreshold  *telemetry.Gauge
}

// New opens (appending) the active segment and starts the writer
// goroutine.
func New(cfg Config) (*Writer, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("eventlog: Config.Path is required")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = DefaultMaxSegments
	}
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.TailSize <= 0 {
		cfg.TailSize = DefaultTailSize
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry() // metrics still work, just unexposed
	}
	f, size, err := openSegment(cfg.Path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		cfg:     cfg,
		sampler: newSampler(cfg.SampleRate, uint64(time.Now().UnixNano())),
		ch:      make(chan *Event, cfg.QueueSize),
		done:    make(chan struct{}),
		tail:    make([][]byte, cfg.TailSize),

		mEmitted:    reg.Counter("sigrec_events_emitted_total"),
		mSampledOut: reg.Counter("sigrec_events_sampled_out_total"),
		mDropped:    reg.Counter("sigrec_events_dropped_total"),
		mWritten:    reg.Counter("sigrec_events_written_total"),
		mBytes:      reg.Counter("sigrec_eventlog_bytes_written_total"),
		mRotations:  reg.Counter("sigrec_eventlog_rotations_total"),
		mErrors:     reg.Counter("sigrec_eventlog_errors_total"),
		mQueueDepth: reg.Gauge("sigrec_eventlog_queue_depth"),
		mThreshold:  reg.Gauge("sigrec_eventlog_slow_threshold_microseconds"),
	}
	go w.loop(f, size)
	return w, nil
}

// openSegment opens the active segment for appending and reports its
// current size, so a restarted process continues where it left off.
func openSegment(path string) (*os.File, int64, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, 0, fmt.Errorf("eventlog: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("eventlog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("eventlog: %w", err)
	}
	size := st.Size()
	// A SIGKILLed writer can leave a torn final line (a bufio flush landed
	// mid-record). Appending straight after it would weld the next event
	// onto the fragment, corrupting a good record too. Terminate the torn
	// line so the damage stays confined to the fragment — readers skip one
	// undecodable line instead of two.
	if size > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, size-1); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("eventlog: %w", err)
		}
		if tail[0] != '\n' {
			n, err := f.Write([]byte{'\n'})
			if err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("eventlog: repair torn tail: %w", err)
			}
			size += int64(n)
		}
	}
	return f, size, nil
}

// Emit offers one finished recovery event to the log. It never blocks:
// the event is sampled, stamped, and enqueued; when the queue is full it
// is dropped and counted. Emit returns the assigned sequence number, or 0
// when the event was sampled out or dropped (so callers only advertise
// event_seq for events that will actually appear in the log).
func (w *Writer) Emit(ev *Event) uint64 {
	if w == nil || ev == nil {
		return 0
	}
	w.mEmitted.Inc()
	ev.Finalize()
	keep, _ := w.sampler.keep(ev)
	w.mThreshold.Set(w.sampler.thresholdNow())
	if !keep {
		w.mSampledOut.Inc()
		return 0
	}
	ev.Seq = w.seq.Add(1)
	ev.TS = time.Now().UnixMicro()
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		w.mDropped.Inc()
		return 0
	}
	select {
	case w.ch <- ev:
		w.mQueueDepth.Set(int64(len(w.ch)))
		return ev.Seq
	default:
		w.mDropped.Inc()
		return 0
	}
}

// EmitAux appends an auxiliary record — a non-recovery line such as the
// flight-recorder dump on drain — as {"seq":…,"ts":…,"kind":kind,"data":v}.
// Aux records bypass sampling and share the event sequence space; readers
// skip them unless asked for kind.
func (w *Writer) EmitAux(kind string, v any) uint64 {
	if w == nil {
		return 0
	}
	data, err := json.Marshal(v)
	if err != nil {
		w.mErrors.Inc()
		return 0
	}
	ev := &Event{Kind: kind, auxData: data}
	ev.Seq = w.seq.Add(1)
	ev.TS = time.Now().UnixMicro()
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		w.mDropped.Inc()
		return 0
	}
	select {
	case w.ch <- ev:
		return ev.Seq
	default:
		w.mDropped.Inc()
		return 0
	}
}

// Sync is a durability barrier: it blocks until every event admitted to
// the queue before the call is flushed and fsynced to the active segment,
// then reports the log's error state. Callers persisting a progress
// cursor (the chain scanner's checkpoint) call Sync first, so the cursor
// never claims events that a crash could still lose. Unlike Emit, Sync
// blocks when the queue is full — a barrier that could be dropped would
// be no barrier at all. Nil-safe; returns the first write error, if any.
func (w *Writer) Sync() error {
	if w == nil {
		return nil
	}
	ch := make(chan error, 1)
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		return w.Err()
	}
	w.ch <- &Event{syncCh: ch}
	w.mu.RUnlock()
	return <-ch
}

// Err reports the first write error, if any. The writer keeps draining
// after an error (Emit must never block the recovery path), so this is
// how operators learn the log went bad.
func (w *Writer) Err() error {
	if p := w.werr.Load(); p != nil {
		return *p
	}
	return nil
}

// Close drains every queued event, flushes, fsyncs, and closes the active
// segment. Emits after Close are dropped (and counted). Safe to call
// once; the fsync-on-drain is what makes SIGTERM ordering safe — by the
// time the process exits, every admitted event is on disk.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return w.Err()
	}
	w.closed = true
	close(w.ch)
	w.mu.Unlock()
	<-w.done
	return w.Err()
}

// loop is the writer goroutine: encode, append, rotate, and on channel
// close flush + fsync.
func (w *Writer) loop(f *os.File, size int64) {
	defer close(w.done)
	bw := bufio.NewWriterSize(f, 64<<10)
	fail := func(err error) {
		if w.werr.Load() == nil {
			w.werr.Store(&err)
		}
		w.mErrors.Inc()
	}
	for ev := range w.ch {
		w.mQueueDepth.Set(int64(len(w.ch)))
		if ev.syncCh != nil {
			if err := bw.Flush(); err != nil {
				fail(err)
			} else if err := f.Sync(); err != nil {
				fail(err)
			}
			ev.syncCh <- w.Err()
			continue
		}
		line, err := encodeLine(ev)
		if err != nil {
			fail(err)
			continue
		}
		if _, err := bw.Write(line); err != nil {
			fail(err)
			continue
		}
		w.pushTail(line)
		w.mWritten.Inc()
		w.mBytes.Add(uint64(len(line)))
		size += int64(len(line))
		if size >= w.cfg.MaxBytes {
			if err := bw.Flush(); err != nil {
				fail(err)
			}
			f.Close()
			if err := rotate(w.cfg.Path, w.cfg.MaxSegments); err != nil {
				fail(err)
			}
			w.mRotations.Inc()
			nf, nsize, err := openSegment(w.cfg.Path)
			if err != nil {
				// Could not reopen: keep draining so Emit never blocks, but
				// the log is broken from here.
				fail(err)
				for ev := range w.ch {
					if ev.syncCh != nil {
						ev.syncCh <- w.Err()
						continue
					}
					w.mDropped.Inc()
				}
				return
			}
			f, size = nf, nsize
			bw.Reset(f)
		}
		// Idle flush: when the queue has drained, push the buffer to the
		// kernel before blocking on the next event. Under load the flush
		// amortizes over whole bursts; when quiet it bounds what a crash
		// (SIGKILL, OOM) can lose to the events still in the channel —
		// which is what lets a cluster reconcile a killed shard's log
		// against router request ids instead of guessing at a lost tail.
		if len(w.ch) == 0 {
			if err := bw.Flush(); err != nil {
				fail(err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
	if err := f.Sync(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

// encodeLine renders one NDJSON line (with trailing newline). Aux records
// splice their pre-marshaled payload under "data".
func encodeLine(ev *Event) ([]byte, error) {
	if ev.auxData != nil {
		line := []byte(`{"seq":` + strconv.FormatUint(ev.Seq, 10) +
			`,"ts":` + strconv.FormatInt(ev.TS, 10) +
			`,"kind":`)
		kindJSON, err := json.Marshal(ev.Kind)
		if err != nil {
			return nil, err
		}
		line = append(line, kindJSON...)
		line = append(line, `,"data":`...)
		line = append(line, ev.auxData...)
		line = append(line, '}', '\n')
		return line, nil
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// pushTail records the line in the recent-events ring (copying: the
// caller's buffer is reused).
func (w *Writer) pushTail(line []byte) {
	cp := make([]byte, len(line))
	copy(cp, line)
	w.tailMu.Lock()
	w.tail[w.tailNext] = cp
	w.tailNext = (w.tailNext + 1) % len(w.tail)
	if w.tailLen < len(w.tail) {
		w.tailLen++
	}
	w.tailMu.Unlock()
}

// Tail returns up to n of the most recently written lines, oldest first,
// each including its trailing newline. Nil-safe.
func (w *Writer) Tail(n int) [][]byte {
	if w == nil || n <= 0 {
		return nil
	}
	w.tailMu.Lock()
	defer w.tailMu.Unlock()
	if n > w.tailLen {
		n = w.tailLen
	}
	out := make([][]byte, 0, n)
	for i := w.tailLen - n; i < w.tailLen; i++ {
		idx := (w.tailNext - w.tailLen + i + 2*len(w.tail)) % len(w.tail)
		out = append(out, w.tail[idx])
	}
	return out
}

// rotate shifts path -> path.1 -> path.2 ... dropping the oldest past
// maxSegments.
func rotate(path string, maxSegments int) error {
	os.Remove(path + "." + strconv.Itoa(maxSegments))
	for i := maxSegments - 1; i >= 1; i-- {
		from := path + "." + strconv.Itoa(i)
		if _, err := os.Stat(from); err != nil {
			continue
		}
		if err := os.Rename(from, path+"."+strconv.Itoa(i+1)); err != nil {
			return fmt.Errorf("eventlog: rotate: %w", err)
		}
	}
	if err := os.Rename(path, path+".1"); err != nil {
		return fmt.Errorf("eventlog: rotate: %w", err)
	}
	return nil
}
