package eventlog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Sync must make every previously admitted event durable without closing
// the writer: the active segment, read from a different fd mid-flight,
// contains all of them.
func TestWriterSyncBarrier(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")
	w, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 100
	admitted := 0
	for i := 0; i < n; i++ {
		if w.Emit(&Event{DurUS: int64(i + 1)}) != 0 {
			admitted++
		}
	}
	if admitted != n {
		t.Fatalf("only %d/%d events admitted", admitted, n)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	if lines != n {
		t.Fatalf("after Sync the segment holds %d lines, want %d", lines, n)
	}
	// Barriers are reusable and cheap when idle.
	if err := w.Sync(); err != nil {
		t.Fatalf("idle sync: %v", err)
	}
}

func TestWriterSyncNilAndClosed(t *testing.T) {
	var w *Writer
	if err := w.Sync(); err != nil {
		t.Fatalf("nil sync: %v", err)
	}
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w2, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatalf("sync after close: %v", err)
	}
}

// A segment left with a torn final line (SIGKILL mid-flush) must be
// repaired on reopen so appended events stay decodable: exactly the
// fragment is lost, nothing after it.
func TestOpenSegmentRepairsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(&Event{RequestID: "before-crash"})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: chop the (complete) file mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	w2.Emit(&Event{RequestID: "after-restart"})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want exactly the torn fragment (1)", skipped)
	}
	if len(events) != 1 || events[0].RequestID != "after-restart" {
		t.Fatalf("events = %+v, want the one post-restart event", events)
	}
}
