package eventlog

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Report is the offline aggregation of an event-log replay — the same
// questions /metrics answers live, plus the ones only per-event data can
// answer (top-K slowest with ids, per-rule latency attribution).
type Report struct {
	// Events is the recovery-event count analyzed (aux records excluded);
	// SkippedLines counts undecodable lines (e.g. a torn final write).
	Events       int `json:"events"`
	SkippedLines int `json:"skipped_lines,omitempty"`

	// Errors and Truncated mirror the sigrec_recover_errors_total and
	// sigrec_truncated_total counters; CacheHits counts events answered by
	// the pipeline result cache; Functions sums recovered signatures.
	Errors    int   `json:"errors"`
	Truncated int   `json:"truncated"`
	CacheHits int   `json:"cache_hits"`
	Functions int64 `json:"functions"`
	Selectors int64 `json:"selectors"`
	Paths     int64 `json:"paths"`
	Steps     int64 `json:"steps"`

	// TruncCauses breaks truncations down by budget ("deadline", "steps",
	// "paths", "path-steps").
	TruncCauses map[string]int `json:"trunc_causes,omitempty"`

	// RuleFires is the corpus-wide rule-fire vector (Fig. 19 shape).
	RuleFires map[string]uint64 `json:"rule_fires,omitempty"`

	// LatencyBuckets mirrors the paper's Fig. 17 presentation: recovery
	// counts under 1ms, 1-10ms, 10-100ms, and at or over 100ms.
	LatencyBuckets Buckets `json:"latency_buckets"`

	// Quantiles are exact order statistics over the replayed events (the
	// offline log affords exactness; /metrics approximates).
	Quantiles LatencyQuantiles `json:"latency_quantiles"`

	// Phases aggregates the per-phase duration columns.
	Phases []PhaseStat `json:"phases,omitempty"`

	// Rules attributes latency and exploration effort per rule: over the
	// events in which a rule fired at least once, its total fires and the
	// mean duration/steps of those events.
	Rules []RuleStat `json:"rules,omitempty"`

	// Slowest is the top-K slowest recoveries, with the ids needed to pull
	// their full line back out of the log or join to traces.
	Slowest []SlowEntry `json:"slowest,omitempty"`
}

// Buckets is the Fig. 17-style latency histogram.
type Buckets struct {
	Under1ms  int `json:"under_1ms"`
	To10ms    int `json:"1_to_10ms"`
	To100ms   int `json:"10_to_100ms"`
	Over100ms int `json:"over_100ms"`
}

// LatencyQuantiles holds exact whole-recovery latency order statistics in
// microseconds.
type LatencyQuantiles struct {
	P50 int64 `json:"p50_us"`
	P90 int64 `json:"p90_us"`
	P95 int64 `json:"p95_us"`
	P99 int64 `json:"p99_us"`
	Max int64 `json:"max_us"`
}

// PhaseStat aggregates one pipeline phase across the replay.
type PhaseStat struct {
	Name  string `json:"name"`
	SumUS int64  `json:"sum_us"`
	P95US int64  `json:"p95_us"`
}

// RuleStat attributes effort to one inference rule.
type RuleStat struct {
	Rule string `json:"rule"`
	// Fires is the total fire count; Events the number of recoveries in
	// which the rule fired at least once.
	Fires  uint64 `json:"fires"`
	Events int    `json:"events"`
	// MeanDurUS / MeanSteps average over those recoveries.
	MeanDurUS int64 `json:"mean_dur_us"`
	MeanSteps int64 `json:"mean_steps"`
}

// SlowEntry identifies one slow recovery.
type SlowEntry struct {
	Seq        uint64 `json:"seq"`
	RequestID  string `json:"request_id,omitempty"`
	DurUS      int64  `json:"dur_us"`
	Selectors  int    `json:"selectors"`
	Steps      int64  `json:"steps"`
	Truncated  bool   `json:"truncated,omitempty"`
	TruncCause string `json:"trunc_cause,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Analyze aggregates a replayed event stream into a Report. topK bounds
// the slowest table (<= 0 selects 10).
func Analyze(events []Event, topK int) *Report {
	if topK <= 0 {
		topK = 10
	}
	r := &Report{
		Events:      len(events),
		TruncCauses: map[string]int{},
		RuleFires:   map[string]uint64{},
	}
	durs := make([]int64, 0, len(events))
	type phaseAgg struct {
		sum  int64
		durs []int64
	}
	phases := map[string]*phaseAgg{}
	phaseOf := func(name string, v int64) {
		p := phases[name]
		if p == nil {
			p = &phaseAgg{}
			phases[name] = p
		}
		p.sum += v
		p.durs = append(p.durs, v)
	}
	type ruleAgg struct {
		fires    uint64
		events   int
		sumDur   int64
		sumSteps int64
	}
	rules := map[string]*ruleAgg{}
	for i := range events {
		ev := &events[i]
		durs = append(durs, ev.DurUS)
		// Outcome totals mirror the /metrics counters exactly: a cache hit
		// increments only sigrec_recoveries_total (its result — functions,
		// truncation, error — was already counted when first computed), so
		// hit events contribute only to Events and CacheHits here. That is
		// what lets `sigrec-analyze` totals be diffed against counter deltas.
		if ev.Cache == "hit" {
			r.CacheHits++
		} else {
			if ev.Error != "" {
				r.Errors++
			}
			if ev.Truncated {
				r.Truncated++
				cause := ev.TruncCause
				if cause == "" {
					cause = "unknown"
				}
				r.TruncCauses[cause]++
			}
			r.Functions += int64(ev.Functions)
			r.Selectors += int64(ev.Selectors)
			r.Paths += ev.Paths
			r.Steps += ev.Steps
		}
		switch ms := ev.DurUS / 1000; {
		case ms < 1:
			r.LatencyBuckets.Under1ms++
		case ms < 10:
			r.LatencyBuckets.To10ms++
		case ms < 100:
			r.LatencyBuckets.To100ms++
		default:
			r.LatencyBuckets.Over100ms++
		}
		phaseOf("disasm", ev.DisasmUS)
		phaseOf("dispatch", ev.DispatchUS)
		phaseOf("explore", ev.ExploreUS)
		phaseOf("infer", ev.InferUS)
		for rule, n := range ev.RuleFires {
			r.RuleFires[rule] += n
			a := rules[rule]
			if a == nil {
				a = &ruleAgg{}
				rules[rule] = a
			}
			a.fires += n
			a.events++
			a.sumDur += ev.DurUS
			a.sumSteps += ev.Steps
		}
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	if len(durs) > 0 {
		r.Quantiles = LatencyQuantiles{
			P50: exactQuantile(durs, 0.50),
			P90: exactQuantile(durs, 0.90),
			P95: exactQuantile(durs, 0.95),
			P99: exactQuantile(durs, 0.99),
			Max: durs[len(durs)-1],
		}
	}
	for _, name := range []string{"disasm", "dispatch", "explore", "infer"} {
		p := phases[name]
		if p == nil || p.sum == 0 {
			continue
		}
		sort.Slice(p.durs, func(a, b int) bool { return p.durs[a] < p.durs[b] })
		r.Phases = append(r.Phases, PhaseStat{
			Name:  name,
			SumUS: p.sum,
			P95US: exactQuantile(p.durs, 0.95),
		})
	}
	for rule, a := range rules {
		r.Rules = append(r.Rules, RuleStat{
			Rule:      rule,
			Fires:     a.fires,
			Events:    a.events,
			MeanDurUS: a.sumDur / int64(a.events),
			MeanSteps: a.sumSteps / int64(a.events),
		})
	}
	sort.Slice(r.Rules, func(a, b int) bool {
		if r.Rules[a].Fires != r.Rules[b].Fires {
			return r.Rules[a].Fires > r.Rules[b].Fires
		}
		return r.Rules[a].Rule < r.Rules[b].Rule
	})
	slow := make([]*Event, len(events))
	for i := range events {
		slow[i] = &events[i]
	}
	sort.Slice(slow, func(a, b int) bool { return slow[a].DurUS > slow[b].DurUS })
	if len(slow) > topK {
		slow = slow[:topK]
	}
	for _, ev := range slow {
		r.Slowest = append(r.Slowest, SlowEntry{
			Seq:        ev.Seq,
			RequestID:  ev.RequestID,
			DurUS:      ev.DurUS,
			Selectors:  ev.Selectors,
			Steps:      ev.Steps,
			Truncated:  ev.Truncated,
			TruncCause: ev.TruncCause,
			Error:      ev.Error,
		})
	}
	return r
}

// exactQuantile returns the order statistic at q over sorted values
// (nearest-rank).
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteText renders the report for humans.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "events analyzed: %d", r.Events)
	if r.SkippedLines > 0 {
		fmt.Fprintf(w, " (%d undecodable lines skipped)", r.SkippedLines)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "errors: %d  truncated: %d  cache hits: %d\n", r.Errors, r.Truncated, r.CacheHits)
	fmt.Fprintf(w, "selectors: %d  functions: %d  paths: %d  steps: %d\n",
		r.Selectors, r.Functions, r.Paths, r.Steps)
	if len(r.TruncCauses) > 0 {
		fmt.Fprintf(w, "\ntruncation causes:\n")
		causes := make([]string, 0, len(r.TruncCauses))
		for c := range r.TruncCauses {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			fmt.Fprintf(w, "  %-12s %d\n", c, r.TruncCauses[c])
		}
	}
	fmt.Fprintf(w, "\nlatency (Fig. 17 buckets):\n")
	total := r.Events
	if total == 0 {
		total = 1
	}
	for _, b := range []struct {
		label string
		n     int
	}{
		{"< 1ms", r.LatencyBuckets.Under1ms},
		{"1-10ms", r.LatencyBuckets.To10ms},
		{"10-100ms", r.LatencyBuckets.To100ms},
		{">= 100ms", r.LatencyBuckets.Over100ms},
	} {
		fmt.Fprintf(w, "  %-9s %6d  (%5.1f%%)\n", b.label, b.n, 100*float64(b.n)/float64(total))
	}
	fmt.Fprintf(w, "\nlatency quantiles (exact, us): p50=%d p90=%d p95=%d p99=%d max=%d\n",
		r.Quantiles.P50, r.Quantiles.P90, r.Quantiles.P95, r.Quantiles.P99, r.Quantiles.Max)
	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "\nphase attribution:\n")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "  phase\tsum_us\tp95_us\n")
		for _, p := range r.Phases {
			fmt.Fprintf(tw, "  %s\t%d\t%d\n", p.Name, p.SumUS, p.P95US)
		}
		tw.Flush()
	}
	if len(r.Rules) > 0 {
		fmt.Fprintf(w, "\nrule attribution (events where the rule fired):\n")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "  rule\tfires\tevents\tmean_dur_us\tmean_steps\n")
		for _, rs := range r.Rules {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\n", rs.Rule, rs.Fires, rs.Events, rs.MeanDurUS, rs.MeanSteps)
		}
		tw.Flush()
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(w, "\nslowest recoveries:\n")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "  seq\trequest_id\tdur_us\tselectors\tsteps\tnote\n")
		for _, s := range r.Slowest {
			note := ""
			switch {
			case s.Error != "":
				note = "error: " + s.Error
			case s.Truncated:
				note = "truncated: " + s.TruncCause
			}
			fmt.Fprintf(tw, "  %d\t%s\t%d\t%d\t%d\t%s\n", s.Seq, s.RequestID, s.DurUS, s.Selectors, s.Steps, note)
		}
		tw.Flush()
	}
}
