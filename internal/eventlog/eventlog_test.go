package eventlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sigrec/internal/telemetry"
)

// TestWriterRoundTrip emits events, closes, and reads them back.
func TestWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	reg := telemetry.NewRegistry()
	w, err := New(Config{Path: path, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 10; i++ {
		ev := &Event{RequestID: fmt.Sprintf("req-%d", i), DurUS: int64(100 * (i + 1)), Functions: 2}
		seqs = append(seqs, w.Emit(ev))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	events, skipped, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(events) != 10 {
		t.Fatalf("read %d events (%d skipped), want 10/0", len(events), skipped)
	}
	if events[3].RequestID != "req-3" || events[3].DurUS != 400 {
		t.Fatalf("event 3 = %+v", events[3])
	}
	if got := reg.Counter("sigrec_events_written_total").Load(); got != 10 {
		t.Fatalf("written counter = %d, want 10", got)
	}
}

// TestWriterRotation forces rotation with a tiny MaxBytes and checks the
// segment layout plus a full multi-segment replay in order.
func TestWriterRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	reg := telemetry.NewRegistry()
	w, err := New(Config{Path: path, MaxBytes: 256, MaxSegments: 3, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		w.Emit(&Event{RequestID: fmt.Sprintf("req-%03d", i), DurUS: 100})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := Segments(path)
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got segments %v", segs)
	}
	if len(segs) > 4 { // 3 rotated + active
		t.Fatalf("MaxSegments=3 not enforced: %v", segs)
	}
	if reg.Counter("sigrec_eventlog_rotations_total").Load() == 0 {
		t.Fatal("rotation counter did not move")
	}
	events, _, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	// Oldest segments were deleted, so we have a suffix of the stream —
	// but what remains must be in emission order.
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("replay out of order: seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	if events[len(events)-1].Seq != n {
		t.Fatalf("last seq = %d, want %d", events[len(events)-1].Seq, n)
	}
}

// TestWriterNeverBlocks fills the queue beyond capacity while the file is
// a slow target and checks Emit returns immediately, counting drops.
func TestWriterNeverBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	reg := telemetry.NewRegistry()
	w, err := New(Config{Path: path, QueueSize: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		w.Emit(&Event{DurUS: 1})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	emitted := reg.Counter("sigrec_events_emitted_total").Load()
	written := reg.Counter("sigrec_events_written_total").Load()
	dropped := reg.Counter("sigrec_events_dropped_total").Load()
	if emitted != 10_000 {
		t.Fatalf("emitted = %d", emitted)
	}
	if written+dropped != emitted {
		t.Fatalf("written(%d) + dropped(%d) != emitted(%d)", written, dropped, emitted)
	}
}

// TestWriterConcurrentEmit hammers Emit from many goroutines racing Close.
func TestWriterConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Emit(&Event{RequestID: fmt.Sprintf("g%d-%d", g, i), DurUS: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Emit after Close must not panic and must return 0.
	if seq := w.Emit(&Event{DurUS: 1}); seq != 0 {
		t.Fatalf("Emit after Close returned seq %d", seq)
	}
}

// TestSamplerAlwaysKeepsOutcomes checks errors/truncations survive even at
// rate 0, and that the bulk is dropped at rate 0.
func TestSamplerAlwaysKeepsOutcomes(t *testing.T) {
	s := newSampler(0.0, 1)
	s.thresholdUS.Store(1 << 40) // nothing counts as slow
	if ok, class := s.keep(&Event{Error: "boom"}); !ok || class != "outcome" {
		t.Fatalf("error event: keep=%v class=%q", ok, class)
	}
	if ok, class := s.keep(&Event{Truncated: true, TruncCause: "steps"}); !ok || class != "outcome" {
		t.Fatalf("truncated event: keep=%v class=%q", ok, class)
	}
	if ok, _ := s.keep(&Event{DurUS: 5}); ok {
		t.Fatal("bulk event kept at rate 0")
	}
}

// TestSamplerSlowTail checks the decaying threshold admits slow outliers
// and converges: a stream of fast events with occasional 100x spikes keeps
// (roughly) the spikes.
func TestSamplerSlowTail(t *testing.T) {
	s := newSampler(0.0, 1)
	slowKept := 0
	for i := 0; i < 5_000; i++ {
		dur := int64(100)
		if i%100 == 99 {
			dur = 10_000
		}
		ok, class := s.keep(&Event{DurUS: dur})
		if dur == 10_000 && ok && class == "slow" {
			slowKept++
		}
	}
	if slowKept < 40 { // 50 spikes total; the first few train the threshold
		t.Fatalf("slow tail kept only %d of ~50 spikes", slowKept)
	}
	// After training, the threshold must sit between the bulk and spike durations.
	if th := s.thresholdNow(); th <= 100 || th > 10_000 {
		t.Fatalf("trained threshold = %d, want in (100, 10000]", th)
	}
}

// TestSamplerRate checks probabilistic bulk sampling is near the rate.
func TestSamplerRate(t *testing.T) {
	s := newSampler(0.25, 42)
	s.thresholdUS.Store(1 << 40)
	kept := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if ok, _ := s.keep(&Event{DurUS: 1}); ok {
			kept++
		}
	}
	got := float64(kept) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("keep rate = %v, want ~0.25", got)
	}
}

// TestTail checks the in-memory ring serves the most recent lines.
func TestTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w, err := New(Config{Path: path, TailSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Emit(&Event{RequestID: fmt.Sprintf("req-%d", i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := w.Tail(100)
	if len(lines) != 4 {
		t.Fatalf("Tail returned %d lines, want 4", len(lines))
	}
	if !bytes.Contains(lines[3], []byte("req-9")) {
		t.Fatalf("newest tail line = %s", lines[3])
	}
	if !bytes.Contains(lines[0], []byte("req-6")) {
		t.Fatalf("oldest tail line = %s", lines[0])
	}
	// Nil-safety for the unconfigured path.
	var nilW *Writer
	if got := nilW.Tail(5); got != nil {
		t.Fatalf("nil Tail = %v", got)
	}
	if seq := nilW.Emit(&Event{}); seq != 0 {
		t.Fatalf("nil Emit = %d", seq)
	}
}

// TestEmitAux round-trips an auxiliary record and checks readers skip it.
func TestEmitAux(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(&Event{RequestID: "real", DurUS: 5})
	if seq := w.EmitAux("flight_recorder", map[string]int{"recoveries": 3}); seq == 0 {
		t.Fatal("EmitAux returned 0")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(events) != 1 || events[0].RequestID != "real" {
		t.Fatalf("aux record leaked into events: %d events, %d skipped", len(events), skipped)
	}
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), `"kind":"flight_recorder"`) ||
		!strings.Contains(string(raw), `"recoveries":3`) {
		t.Fatalf("aux record not on disk:\n%s", raw)
	}
}

// TestReaderSkipsTornLine simulates a crash mid-write: the torn final
// line is skipped and counted, the rest decodes.
func TestReaderSkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	data := `{"seq":1,"ts":1,"dur_us":100}` + "\n" +
		`{"seq":2,"ts":2,"dur_us":200}` + "\n" +
		`{"seq":3,"ts":3,"dur` // torn
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || skipped != 1 {
		t.Fatalf("got %d events, %d skipped; want 2/1", len(events), skipped)
	}
}

// TestWriterResume checks a reopened writer appends to the existing
// segment rather than truncating it.
func TestWriterResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(&Event{RequestID: "first"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	w2.Emit(&Event{RequestID: "second"})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	events, _, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].RequestID != "first" || events[1].RequestID != "second" {
		t.Fatalf("resume lost data: %+v", events)
	}
}

// TestAnalyze checks the aggregation over a synthetic stream.
func TestAnalyze(t *testing.T) {
	events := []Event{
		{Seq: 1, RequestID: "a", DurUS: 500, Functions: 2, Selectors: 2, Steps: 100,
			RuleFires: map[string]uint64{"R11": 3, "R1": 1}},
		{Seq: 2, RequestID: "b", DurUS: 5_000, Functions: 1, Selectors: 1, Steps: 400,
			RuleFires: map[string]uint64{"R11": 1}},
		{Seq: 3, RequestID: "c", DurUS: 50_000, Truncated: true, TruncCause: "steps", Steps: 9_000},
		{Seq: 4, RequestID: "d", DurUS: 150_000, Error: "bad code"},
		{Seq: 5, RequestID: "e", DurUS: 800, Cache: "hit", Functions: 2},
	}
	r := Analyze(events, 3)
	if r.Events != 5 || r.Errors != 1 || r.Truncated != 1 || r.CacheHits != 1 {
		t.Fatalf("totals: %+v", r)
	}
	if r.TruncCauses["steps"] != 1 {
		t.Fatalf("trunc causes: %v", r.TruncCauses)
	}
	// The cache-hit event's functions are excluded: totals mirror the
	// /metrics counters, which don't move on hits.
	if r.Functions != 3 || r.Selectors != 3 {
		t.Fatalf("functions=%d selectors=%d", r.Functions, r.Selectors)
	}
	if r.RuleFires["R11"] != 4 || r.RuleFires["R1"] != 1 {
		t.Fatalf("rule fires: %v", r.RuleFires)
	}
	b := r.LatencyBuckets
	if b.Under1ms != 2 || b.To10ms != 1 || b.To100ms != 1 || b.Over100ms != 1 {
		t.Fatalf("buckets: %+v", b)
	}
	if r.Quantiles.Max != 150_000 {
		t.Fatalf("max = %d", r.Quantiles.Max)
	}
	if len(r.Slowest) != 3 || r.Slowest[0].Seq != 4 || r.Slowest[0].RequestID != "d" {
		t.Fatalf("slowest: %+v", r.Slowest)
	}
	if len(r.Rules) == 0 || r.Rules[0].Rule != "R11" || r.Rules[0].Events != 2 {
		t.Fatalf("rules: %+v", r.Rules)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	for _, want := range []string{"events analyzed: 5", "R11", "truncation causes", "slowest recoveries", "request_id"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestEventFinalize checks the intern hit rate folds in.
func TestEventFinalize(t *testing.T) {
	ev := &Event{}
	ev.AddIntern(900, 100)
	ev.Finalize()
	if ev.InternHitPermille != 900 {
		t.Fatalf("intern hit permille = %d, want 900", ev.InternHitPermille)
	}
}
