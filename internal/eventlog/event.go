// Package eventlog is the durable observability pipeline of the recovery
// service: one wide event — a single flat record carrying everything worth
// knowing about one contract recovery — is emitted per recovery into an
// async, bounded, never-blocks-the-hot-path NDJSON writer with size-based
// rotation and tail-based sampling (errors and truncations are always
// kept, the slowest recoveries are kept via a decaying threshold, and the
// fast bulk is sampled probabilistically). The log outlives the process,
// so corpus-scale questions — which rule dominates p99, what last night's
// truncation spike looked like — are answered offline by cmd/sigrec-analyze
// replaying the segments, instead of by whatever metrics happened to be
// scraped.
package eventlog

import "context"

// Event is one wide event: the full story of one contract recovery as a
// flat record. Every field is denormalized onto the event so a log line
// is analyzable on its own — no joins against other telemetry needed
// (the request id is the optional bridge back to logs and span trees).
type Event struct {
	// Seq is the writer-assigned sequence number, unique per process run
	// and ascending in emission order; traces reference it as event_seq.
	Seq uint64 `json:"seq"`
	// TS is the emission time in Unix microseconds.
	TS int64 `json:"ts"`
	// Kind discriminates auxiliary records (e.g. "flight_recorder" dumps on
	// drain) from recovery events, which leave it empty.
	Kind string `json:"kind,omitempty"`
	// RequestID joins the event to access logs, span trees, and the
	// flight recorder.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the 32-hex W3C trace id of the request that triggered
	// this recovery — the cross-process join key: merged event logs from
	// the router's shards reconstruct a distributed trace by grouping on
	// it (sigrec-analyze -trace).
	TraceID string `json:"trace_id,omitempty"`

	// DurUS is the whole-recovery latency; QueueUS the admission-queue
	// wait before a worker picked the job up (serving layer only); the
	// remaining *US fields are per-phase durations. ExploreUS and InferUS
	// sum over all selectors. All microseconds.
	DurUS      int64 `json:"dur_us"`
	QueueUS    int64 `json:"queue_us,omitempty"`
	DisasmUS   int64 `json:"disasm_us,omitempty"`
	DispatchUS int64 `json:"dispatch_us,omitempty"`
	ExploreUS  int64 `json:"explore_us,omitempty"`
	InferUS    int64 `json:"infer_us,omitempty"`

	// CodeBytes is the input size; Selectors the dispatcher yield;
	// Functions the recovered-signature count.
	CodeBytes int `json:"code_bytes,omitempty"`
	Selectors int `json:"selectors,omitempty"`
	Functions int `json:"functions,omitempty"`

	// Paths/Steps/Pruned aggregate the TASE exploration counters over the
	// dispatcher walk and every per-selector trace.
	Paths  int64 `json:"paths,omitempty"`
	Steps  int64 `json:"steps,omitempty"`
	Pruned int64 `json:"pruned,omitempty"`
	// InternHitPermille is the hash-consing hit rate across the recovery.
	InternHitPermille int64 `json:"intern_hit_permille,omitempty"`

	// RuleFires is the per-recovery rule-fire vector ("R11" -> count),
	// zero-count rules omitted — the live slice of the paper's Fig. 19.
	RuleFires map[string]uint64 `json:"rule_fires,omitempty"`

	// Truncated/TruncCause report a hit exploration budget; Cache is the
	// disposition ("hit" when the pipeline-level result cache answered);
	// Error is the recovery error, if any.
	Truncated  bool   `json:"truncated,omitempty"`
	TruncCause string `json:"trunc_cause,omitempty"`
	Cache      string `json:"cache,omitempty"`
	Error      string `json:"error,omitempty"`

	// internHits/internMisses accumulate during the recovery and fold into
	// InternHitPermille at emission; not serialized.
	internHits   uint64
	internMisses uint64
	// auxData carries the pre-marshaled payload of an auxiliary record
	// (Kind != ""); the writer splices it under "data". Not serialized by
	// the struct tags — encodeLine handles aux records by hand.
	auxData []byte
	// syncCh marks a barrier pseudo-event (see Writer.Sync): the writer
	// goroutine flushes + fsyncs and replies on the channel instead of
	// encoding anything. Not serialized.
	syncCh chan error
}

// AddIntern accumulates one exploration's interner counters; the hit rate
// is folded into InternHitPermille when the event is finalized.
func (e *Event) AddIntern(hits, misses uint64) {
	e.internHits += hits
	e.internMisses += misses
}

// Finalize computes the derived fields (currently the intern hit rate).
// The writer calls it on Emit; callers building events by hand for tests
// may call it directly.
func (e *Event) Finalize() {
	if total := e.internHits + e.internMisses; total > 0 {
		e.InternHitPermille = int64(e.internHits * 1000 / total)
	}
}

// Scope carries the serving layer's contribution to a recovery's wide
// event — the request id and the admission-queue wait — down the context
// into the pipeline, which owns event construction. One Scope is armed
// per recovery (batch items each arm their own).
type Scope struct {
	// RequestID tags the event with the request that triggered the
	// recovery.
	RequestID string
	// TraceID tags the event with the request's W3C trace id (adopted
	// from the inbound traceparent or derived from the request id), set by
	// the serving layer alongside the request id.
	TraceID string
	// QueueUS is the admission wait, set by the worker that picks the job
	// up before the recovery runs (same-goroutine ordering, no atomics
	// needed).
	QueueUS int64
}

type scopeKey struct{}

// NewContext arms ctx with a fresh Scope for one recovery.
func NewContext(ctx context.Context, requestID string) (context.Context, *Scope) {
	sc := &Scope{RequestID: requestID}
	return context.WithValue(ctx, scopeKey{}, sc), sc
}

// ScopeFromContext returns the armed scope, or nil.
func ScopeFromContext(ctx context.Context) *Scope {
	sc, _ := ctx.Value(scopeKey{}).(*Scope)
	return sc
}
