package eventlog

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// TraceReport is the offline view of one distributed trace: every
// recovery event, from however many shards' logs were merged, that
// carries the same W3C trace id. Because the router stamps each forwarded
// attempt with the client request's trace id, grouping merged shard logs
// on trace_id reconstructs the request's fan-out — primary, retries,
// hedges — without any live process or collector.
type TraceReport struct {
	TraceID string `json:"trace_id"`
	// Events holds the matching recovery events ordered by emission time
	// (then seq, for events stamped in the same microsecond).
	Events []Event `json:"events"`
	// Requests counts distinct request ids in the trace — for a routed
	// request these are the router's attempt ids (client id + ".N"), so
	// more than one means retries or hedges happened.
	Requests int `json:"requests"`
	// SpanUS is the wall-clock extent of the trace as seen by the logs:
	// from the earliest event start to the latest event end. Clock skew
	// between shards leaks in here; it is a reading aid, not a latency
	// measurement.
	SpanUS int64 `json:"span_us"`
}

// TraceView filters merged event-log replays down to one trace. The
// traceID must already be the 32-hex form (callers resolve request ids
// via the deterministic derivation before asking).
func TraceView(events []Event, traceID string) *TraceReport {
	rep := &TraceReport{TraceID: traceID}
	for _, ev := range events {
		if ev.Kind != "" || ev.TraceID != traceID {
			continue
		}
		rep.Events = append(rep.Events, ev)
	}
	sort.Slice(rep.Events, func(i, j int) bool {
		a, b := rep.Events[i], rep.Events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.Seq < b.Seq
	})
	ids := map[string]bool{}
	var first, last int64
	for i, ev := range rep.Events {
		ids[ev.RequestID] = true
		start, end := ev.TS-ev.DurUS, ev.TS
		if i == 0 || start < first {
			first = start
		}
		if end > last {
			last = end
		}
	}
	rep.Requests = len(ids)
	if len(rep.Events) > 0 {
		rep.SpanUS = last - first
	}
	return rep
}

// WriteText renders the trace for humans: one row per event, offset from
// the trace's first event so concurrent attempts read as a timeline.
func (r *TraceReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace %s: %d events across %d request ids, %dus end to end\n",
		r.TraceID, len(r.Events), r.Requests, r.SpanUS)
	if len(r.Events) == 0 {
		fmt.Fprintln(w, "  (no matching events — logs predate tracing, or the trace lives on other shards)")
		return
	}
	base := r.Events[0].TS - r.Events[0].DurUS
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "  offset_us\trequest_id\tdur_us\tselectors\tfunctions\tnote\n")
	for _, ev := range r.Events {
		note := ""
		switch {
		case ev.Error != "":
			note = "error: " + ev.Error
		case ev.Truncated:
			note = "truncated: " + ev.TruncCause
		case ev.Cache != "":
			note = "cache: " + ev.Cache
		}
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%d\t%d\t%s\n",
			ev.TS-ev.DurUS-base, ev.RequestID, ev.DurUS, ev.Selectors, ev.Functions, note)
	}
	tw.Flush()
}
