package otlp

import (
	"testing"

	"sigrec/internal/telemetry"
)

// testSnapshot populates one registry with every metric kind the
// exposition supports, deterministically.
func testSnapshot() telemetry.Snapshot {
	r := telemetry.NewRegistry()
	r.Counter("sigrec_recoveries_total").Add(17)
	r.SetHelp("sigrec_recoveries_total", "Completed recoveries.")
	r.Gauge("sigrec_queue_depth").Set(3)
	r.FloatGauge("sigrec_slo_error_budget_remaining_ratio").Set(0.75)
	rv := r.CounterVec("sigrec_rule_fires_total", "rule")
	rv.With("R2").Add(5)
	rv.With("R11").Add(2)
	r.GaugeVec("sigrec_shard_healthy", "shard").With("s0").Set(1)
	bv := r.FloatGaugeVec("sigrec_slo_burn_rate", "slo")
	bv.With("availability:5m").Set(14.5)
	bv.With("availability:1h").Set(2.25)
	h := r.Histogram("sigrec_recover_latency_microseconds", []uint64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(500)
	h.ObserveExemplar(5000, "req-ex")
	h.Observe(50000)
	s := r.Summary("sigrec_queue_wait_microseconds", nil)
	for i := uint64(1); i <= 100; i++ {
		s.Observe(i * 10)
	}
	r.SetInfo("sigrec_build_info", map[string]string{"version": "pr9", "shard": "s0"})
	return r.Snapshot()
}

func TestMetricsGolden(t *testing.T) {
	res := buildResource("sigrecd", map[string]string{"sigrec.shard": "s0"})
	req, n := buildMetricsRequest(res, scope{Name: "sigrec/internal/otlp"},
		testSnapshot(), 1700000000_000000000, 1700000060_000000000)
	if n != 9 {
		t.Fatalf("metric count = %d, want 9", n)
	}
	checkGolden(t, "metrics.golden.json", req)
}

func TestMetricsMapping(t *testing.T) {
	ms := metricsFromSnapshot(testSnapshot(), 1, 2)
	byName := map[string]wireMetric{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	// Counter → monotonic cumulative sum.
	c := byName["sigrec_recoveries_total"]
	if c.Sum == nil || !c.Sum.IsMonotonic || c.Sum.AggregationTemporality != temporalityCumulative {
		t.Fatalf("counter mapping: %+v", c)
	}
	if got := *c.Sum.DataPoints[0].AsInt; got != "17" {
		t.Errorf("counter value = %s", got)
	}
	if c.Description != "Completed recoveries." {
		t.Errorf("description = %q", c.Description)
	}
	// CounterVec → one point per label value, sorted.
	rv := byName["sigrec_rule_fires_total"]
	if len(rv.Sum.DataPoints) != 2 ||
		rv.Sum.DataPoints[0].Attributes[0].Key != "rule" ||
		*rv.Sum.DataPoints[0].Attributes[0].Value.StringValue != "R11" {
		t.Errorf("countervec points: %+v", rv.Sum.DataPoints)
	}
	// Float gauge → asDouble.
	fg := byName["sigrec_slo_error_budget_remaining_ratio"]
	if fg.Gauge == nil || *fg.Gauge.DataPoints[0].AsDouble != 0.75 {
		t.Errorf("float gauge: %+v", fg)
	}
	// Histogram → per-bucket counts (snapshot is cumulative), float
	// bounds, the exemplar carried through, microsecond unit inferred.
	h := byName["sigrec_recover_latency_microseconds"]
	if h.Histogram == nil {
		t.Fatal("histogram missing")
	}
	dp := h.Histogram.DataPoints[0]
	if dp.Count != "4" || len(dp.BucketCounts) != 4 || len(dp.ExplicitBounds) != 3 {
		t.Fatalf("histogram point: %+v", dp)
	}
	for i, want := range []string{"1", "1", "1", "1"} {
		if dp.BucketCounts[i] != want {
			t.Errorf("bucket %d = %s, want %s", i, dp.BucketCounts[i], want)
		}
	}
	if len(dp.Exemplars) != 1 || *dp.Exemplars[0].AsDouble != 5000 {
		t.Errorf("exemplars: %+v", dp.Exemplars)
	}
	if h.Unit != "us" {
		t.Errorf("unit = %q", h.Unit)
	}
	// Summary → tracked quantiles with sum/count.
	su := byName["sigrec_queue_wait_microseconds"]
	if su.Summary == nil || su.Summary.DataPoints[0].Count != "100" {
		t.Fatalf("summary: %+v", su)
	}
	if got := len(su.Summary.DataPoints[0].QuantileValues); got != 4 {
		t.Errorf("quantiles = %d, want 4", got)
	}
	// Info → constant-1 gauge with label attributes.
	info := byName["sigrec_build_info"]
	if info.Gauge == nil || *info.Gauge.DataPoints[0].AsInt != "1" ||
		len(info.Gauge.DataPoints[0].Attributes) != 2 {
		t.Errorf("info: %+v", info)
	}
}
