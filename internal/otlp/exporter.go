package otlp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"sigrec/internal/obs"
	"sigrec/internal/telemetry"
)

// Config configures an Exporter. Endpoint and Registry are required; the
// rest defaults sensibly.
type Config struct {
	// Endpoint is the collector's base URL (e.g. http://127.0.0.1:4318);
	// the exporter POSTs to <Endpoint>/v1/traces and <Endpoint>/v1/metrics.
	Endpoint string
	// Interval is the flush cadence: queued spans are shipped at least
	// this often (earlier when a batch fills) and one metrics snapshot is
	// shipped per tick. <= 0 selects DefaultInterval.
	Interval time.Duration
	// ServiceName becomes the service.name resource attribute.
	ServiceName string
	// Resource holds additional resource attributes (shard id, build
	// info) attached to every export.
	Resource map[string]string
	// Registry is the metrics source; the exporter also registers its
	// own sigrec_otlp_* self-metrics here.
	Registry *telemetry.Registry
	// QueueSize bounds the finished-recovery intake queue; Enqueue drops
	// (and counts) when it is full. <= 0 selects DefaultQueueSize.
	QueueSize int
	// BatchSize is the record count that triggers an early trace flush.
	// <= 0 selects DefaultBatchSize.
	BatchSize int
	// Client is the HTTP client; nil selects one with a 10s timeout.
	Client *http.Client
	// Logger receives export-failure diagnostics; nil discards them.
	Logger *slog.Logger
}

// Exporter defaults.
const (
	DefaultInterval  = 10 * time.Second
	DefaultQueueSize = 4096
	DefaultBatchSize = 256
	// exportAttempts is how many times one batch is POSTed before it is
	// dropped; backoff doubles from exportBackoff between attempts.
	exportAttempts = 3
	exportBackoff  = 200 * time.Millisecond
)

// Exporter ships span trees and metric snapshots to an OTLP/HTTP
// collector. The hot path touches only Enqueue — a non-blocking channel
// send — while a single background goroutine owns batching, encoding,
// retries, and the metrics ticker. Create with New, start with Start,
// stop with Close (which flushes what is queued).
type Exporter struct {
	cfg      Config
	res      resource
	scope    scope
	queue    chan *obs.Record
	done     chan struct{}
	stopped  chan struct{}
	start    time.Time
	now      func() time.Time // injected for tests
	sleep    func(time.Duration)
	mSpans   *telemetry.Counter
	mBatches *telemetry.CounterVec
	mDropped *telemetry.CounterVec
	mFailed  *telemetry.CounterVec
	mQueue   *telemetry.Gauge
}

// New returns an unstarted Exporter. It registers the exporter's
// self-metrics in cfg.Registry immediately so they appear in /metrics
// even before the first export.
func New(cfg Config) *Exporter {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	reg := cfg.Registry
	e := &Exporter{
		cfg:     cfg,
		res:     buildResource(cfg.ServiceName, cfg.Resource),
		scope:   scope{Name: "sigrec/internal/otlp"},
		queue:   make(chan *obs.Record, cfg.QueueSize),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		start:   time.Now(),
		now:     time.Now,
		sleep:   time.Sleep,
	}
	e.mSpans = reg.Counter("sigrec_otlp_spans_exported_total")
	reg.SetHelp("sigrec_otlp_spans_exported_total",
		"OTLP spans successfully delivered to the collector.")
	e.mBatches = reg.CounterVec("sigrec_otlp_batches_total", "signal")
	reg.SetHelp("sigrec_otlp_batches_total",
		"OTLP export batches delivered, by signal (traces or metrics).")
	e.mDropped = reg.CounterVec("sigrec_otlp_dropped_total", "reason")
	reg.SetHelp("sigrec_otlp_dropped_total",
		"OTLP recovery records dropped without export, by reason (queue_full or send_failed).")
	e.mFailed = reg.CounterVec("sigrec_otlp_export_failures_total", "signal")
	reg.SetHelp("sigrec_otlp_export_failures_total",
		"OTLP export batches abandoned after all retries, by signal.")
	e.mQueue = reg.Gauge("sigrec_otlp_queue_depth")
	reg.SetHelp("sigrec_otlp_queue_depth",
		"Finished recoveries waiting in the OTLP export queue.")
	reg.OnSnapshot(func() { e.mQueue.Set(int64(len(e.queue))) })
	return e
}

// buildResource assembles the resource attributes, service.name first,
// the rest sorted for a stable wire encoding.
func buildResource(service string, extra map[string]string) resource {
	var res resource
	if service != "" {
		res.Attributes = append(res.Attributes, strAttr("service.name", service))
	}
	for _, k := range sortedKeys(extra) {
		res.Attributes = append(res.Attributes, strAttr(k, extra[k]))
	}
	return res
}

// Sink adapts the exporter to obs.Config.Sink.
func (e *Exporter) Sink() func(*obs.Record) {
	if e == nil {
		return nil
	}
	return e.Enqueue
}

// Enqueue offers one finished recovery for export. Non-blocking: when the
// queue is full the record is dropped and counted, never stalling the
// recovery worker that finished it. Safe for concurrent use.
func (e *Exporter) Enqueue(rec *obs.Record) {
	if e == nil || rec == nil {
		return
	}
	select {
	case e.queue <- rec:
	default:
		e.mDropped.With("queue_full").Inc()
	}
}

// Start launches the export loop.
func (e *Exporter) Start() {
	go e.run()
}

// Close stops the loop, flushes any queued spans and one final metrics
// snapshot, and waits (bounded by ctx) for the loop to exit.
func (e *Exporter) Close(ctx context.Context) error {
	close(e.done)
	select {
	case <-e.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Exporter) run() {
	defer close(e.stopped)
	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	batch := make([]*obs.Record, 0, e.cfg.BatchSize)
	for {
		select {
		case rec := <-e.queue:
			batch = append(batch, rec)
			if len(batch) >= e.cfg.BatchSize {
				e.exportTraces(batch)
				batch = batch[:0]
			}
		case <-ticker.C:
			if len(batch) > 0 {
				e.exportTraces(batch)
				batch = batch[:0]
			}
			e.exportMetrics()
		case <-e.done:
			// Drain what is already queued, then ship a final snapshot so
			// the collector sees the terminal counter values.
			for {
				select {
				case rec := <-e.queue:
					batch = append(batch, rec)
					if len(batch) >= e.cfg.BatchSize {
						e.exportTraces(batch)
						batch = batch[:0]
					}
					continue
				default:
				}
				break
			}
			if len(batch) > 0 {
				e.exportTraces(batch)
			}
			e.exportMetrics()
			return
		}
	}
}

func (e *Exporter) exportTraces(batch []*obs.Record) {
	req, n := buildTracesRequest(e.res, e.scope, batch)
	if n == 0 {
		return
	}
	if e.post("/v1/traces", req) {
		e.mSpans.Add(uint64(n))
		e.mBatches.With("traces").Inc()
	} else {
		e.mDropped.With("send_failed").Add(uint64(len(batch)))
		e.mFailed.With("traces").Inc()
	}
}

func (e *Exporter) exportMetrics() {
	snap := e.cfg.Registry.Snapshot()
	req, _ := buildMetricsRequest(e.res, e.scope, snap,
		e.start.UnixNano(), e.now().UnixNano())
	if e.post("/v1/metrics", req) {
		e.mBatches.With("metrics").Inc()
	} else {
		e.mFailed.With("metrics").Inc()
	}
}

// post encodes body as JSON and POSTs it, retrying transient failures
// (connection errors, 429, 5xx) with doubling backoff. Returns whether
// the batch was accepted.
func (e *Exporter) post(path string, body any) bool {
	payload, err := json.Marshal(body)
	if err != nil {
		e.logf("otlp encode failed", "path", path, "err", err)
		return false
	}
	backoff := exportBackoff
	for attempt := 0; attempt < exportAttempts; attempt++ {
		if attempt > 0 {
			e.sleep(backoff)
			backoff *= 2
		}
		ok, retryable, err := e.postOnce(path, payload)
		if ok {
			return true
		}
		if !retryable {
			e.logf("otlp export rejected", "path", path, "err", err)
			return false
		}
		if attempt == exportAttempts-1 {
			e.logf("otlp export failed after retries", "path", path, "err", err)
		}
	}
	return false
}

func (e *Exporter) postOnce(path string, payload []byte) (ok, retryable bool, err error) {
	req, err := http.NewRequest(http.MethodPost, e.cfg.Endpoint+path, bytes.NewReader(payload))
	if err != nil {
		return false, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		return false, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return true, false, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return false, true, fmt.Errorf("collector returned %s", resp.Status)
	default:
		return false, false, fmt.Errorf("collector returned %s", resp.Status)
	}
}

func (e *Exporter) logf(msg string, args ...any) {
	if e.cfg.Logger != nil {
		e.cfg.Logger.Warn(msg, args...)
	}
}
