package otlp

import (
	"encoding/binary"
	"encoding/hex"
	"strconv"

	"sigrec/internal/keccak"
	"sigrec/internal/obs"
)

// formatInt renders an int64 the way the protobuf JSON mapping requires
// (decimal string).
func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// traceSeed is the string the trace id is derived from. Recoveries that
// share a request id — every item of one batch request — share a seed and
// therefore land in one trace; anonymous recoveries fall back to their
// start timestamp so they stay distinct.
func traceSeed(rec *obs.Record) string {
	if rec.RequestID != "" {
		return rec.RequestID
	}
	return "anon:" + strconv.FormatInt(rec.Start.UnixNano(), 10)
}

// traceIDFor derives the 16-byte OTLP trace id from the seed: the keccak
// the repo already keys everything by, truncated. Deterministic, so the
// same request id maps to the same trace across processes — the router's
// spans and the shard's spans for one request join without coordination.
func traceIDFor(seed string) string {
	h := keccak.Sum256([]byte("sigrec/trace:" + seed))
	return hex.EncodeToString(h[:16])
}

// spanIDFor derives an 8-byte span id from the recovery's identity (seed
// + start time distinguishes two recoveries in one trace) and the span's
// preorder index within its tree. Purely a function of the record, so
// golden tests are stable and a re-export of the same record produces the
// same ids.
func spanIDFor(seed string, startNano int64, index int) string {
	buf := make([]byte, 0, len(seed)+24)
	buf = append(buf, "sigrec/span:"...)
	buf = append(buf, seed...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(startNano))
	buf = binary.BigEndian.AppendUint32(buf, uint32(index))
	h := keccak.Sum256(buf)
	return hex.EncodeToString(h[:8])
}

// spansFromRecord flattens one finished recovery's span tree into OTLP
// wire spans. Wall-clock timestamps are reconstructed from the recovery's
// start plus the spans' monotonic microsecond offsets, so the exported
// tree preserves exactly the offsets the flight recorder shows.
func spansFromRecord(rec *obs.Record) []wireSpan {
	if rec == nil || rec.Root == nil {
		return nil
	}
	seed := traceSeed(rec)
	tid := traceIDFor(seed)
	baseNano := rec.Start.UnixNano()
	c := &spanConv{seed: seed, tid: tid, baseNano: baseNano, startNano: baseNano}
	root := c.convert(rec.Root, "")
	// The root span carries the recovery-level identity: request id,
	// event-log join key, truncation flag, error status.
	if rec.RequestID != "" {
		root.Attributes = append(root.Attributes, strAttr("sigrec.request_id", rec.RequestID))
	}
	if rec.EventSeq != 0 {
		root.Attributes = append(root.Attributes, intAttr("sigrec.event_seq", int64(rec.EventSeq)))
	}
	if rec.Truncated {
		root.Attributes = append(root.Attributes, boolAttr("sigrec.truncated", true))
	}
	if rec.Error != "" {
		root.Status = &spanStatus{Code: statusError, Message: rec.Error}
	}
	return c.out
}

// spanConv carries the per-record conversion state: ids are assigned in
// preorder, and the output slice is preorder too (root first), which the
// reconciliation e2e counts on — span index 0 of a batch item is its root.
type spanConv struct {
	seed      string
	tid       string
	baseNano  int64
	startNano int64
	index     int
	out       []wireSpan
}

func (c *spanConv) convert(s *obs.Span, parentID string) *wireSpan {
	id := spanIDFor(c.seed, c.startNano, c.index)
	c.index++
	start := c.baseNano + s.StartUS*1000
	ws := wireSpan{
		TraceID:           c.tid,
		SpanID:            id,
		ParentSpanID:      parentID,
		Name:              s.Name,
		Kind:              spanKindInternal,
		StartTimeUnixNano: formatInt(start),
		EndTimeUnixNano:   formatInt(start + s.DurUS*1000),
	}
	for _, a := range s.Attrs {
		if a.Str != "" {
			ws.Attributes = append(ws.Attributes, strAttr(a.Key, a.Str))
		} else {
			ws.Attributes = append(ws.Attributes, intAttr(a.Key, a.Num))
		}
	}
	c.out = append(c.out, ws)
	at := len(c.out) - 1
	for _, child := range s.Children {
		c.convert(child, id)
	}
	return &c.out[at]
}

// buildTracesRequest wraps the spans of a batch of records in one
// ResourceSpans envelope under the exporter's resource identity.
func buildTracesRequest(res resource, sc scope, recs []*obs.Record) (tracesRequest, int) {
	var spans []wireSpan
	for _, rec := range recs {
		spans = append(spans, spansFromRecord(rec)...)
	}
	req := tracesRequest{ResourceSpans: []resourceSpans{{
		Resource:   res,
		ScopeSpans: []scopeSpans{{Scope: sc, Spans: spans}},
	}}}
	return req, len(spans)
}
