package otlp

import (
	"strconv"

	"sigrec/internal/obs"
)

// formatInt renders an int64 the way the protobuf JSON mapping requires
// (decimal string).
func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// Trace and span ids are derived deterministically in internal/obs
// (obs.TraceSeed / obs.DeriveTraceID / obs.DeriveSpanIDAt): recoveries
// that share a request id — every item of one batch request — share a
// trace, anonymous recoveries fall back to their start timestamp, and
// the same derivation backs GET /debug/trace stitching, so the exported
// tree and the stitched tree agree span-for-span. Records finished under
// a remote parent (an inbound traceparent) carry their adopted TraceID
// and ParentSpanID; spans with a pinned id (obs.SetSpanID — router
// attempt spans whose id travels in the outbound traceparent) keep it.

// spansFromRecord flattens one finished recovery's span tree into OTLP
// wire spans. Wall-clock timestamps are reconstructed from the recovery's
// start plus the spans' monotonic microsecond offsets, so the exported
// tree preserves exactly the offsets the flight recorder shows.
func spansFromRecord(rec *obs.Record) []wireSpan {
	if rec == nil || rec.Root == nil {
		return nil
	}
	seed := obs.TraceSeed(rec.RequestID, rec.Start)
	tid := rec.TraceID
	if tid == "" {
		tid = obs.DeriveTraceID(seed)
	}
	baseNano := rec.Start.UnixNano()
	c := &spanConv{seed: seed, tid: tid, baseNano: baseNano}
	root := c.convert(rec.Root, rec.ParentSpanID)
	// The root span carries the recovery-level identity: request id,
	// event-log join key, truncation flag, error status.
	if rec.RequestID != "" {
		root.Attributes = append(root.Attributes, strAttr("sigrec.request_id", rec.RequestID))
	}
	if rec.EventSeq != 0 {
		root.Attributes = append(root.Attributes, intAttr("sigrec.event_seq", int64(rec.EventSeq)))
	}
	if rec.Truncated {
		root.Attributes = append(root.Attributes, boolAttr("sigrec.truncated", true))
	}
	if rec.Error != "" {
		root.Status = &spanStatus{Code: statusError, Message: rec.Error}
	}
	return c.out
}

// spanConv carries the per-record conversion state: ids are assigned in
// preorder, and the output slice is preorder too (root first), which the
// reconciliation e2e counts on — span index 0 of a batch item is its root.
type spanConv struct {
	seed     string
	tid      string
	baseNano int64
	index    int
	out      []wireSpan
}

func (c *spanConv) convert(s *obs.Span, parentID string) *wireSpan {
	id := s.SpanID
	if id == "" {
		id = obs.DeriveSpanIDAt(c.seed, c.baseNano, c.index)
	}
	c.index++
	start := c.baseNano + s.StartUS*1000
	ws := wireSpan{
		TraceID:           c.tid,
		SpanID:            id,
		ParentSpanID:      parentID,
		Name:              s.Name,
		Kind:              spanKindInternal,
		StartTimeUnixNano: formatInt(start),
		EndTimeUnixNano:   formatInt(start + s.DurUS*1000),
	}
	for _, a := range s.Attrs {
		if a.Str != "" {
			ws.Attributes = append(ws.Attributes, strAttr(a.Key, a.Str))
		} else {
			ws.Attributes = append(ws.Attributes, intAttr(a.Key, a.Num))
		}
	}
	c.out = append(c.out, ws)
	at := len(c.out) - 1
	for _, child := range s.Children {
		c.convert(child, id)
	}
	return &c.out[at]
}

// buildTracesRequest wraps the spans of a batch of records in one
// ResourceSpans envelope under the exporter's resource identity.
func buildTracesRequest(res resource, sc scope, recs []*obs.Record) (tracesRequest, int) {
	var spans []wireSpan
	for _, rec := range recs {
		spans = append(spans, spansFromRecord(rec)...)
	}
	req := tracesRequest{ResourceSpans: []resourceSpans{{
		Resource:   res,
		ScopeSpans: []scopeSpans{{Scope: sc, Spans: spans}},
	}}}
	return req, len(spans)
}
