package otlp

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sigrec/internal/obs"
	"sigrec/internal/telemetry"
)

// collector is an in-process OTLP/HTTP receiver: it decodes every POST,
// tallies spans and metric batches, and can inject transient failures.
type collector struct {
	mu        sync.Mutex
	spans     []wireSpan
	metricReq []metricsRequest
	failNext  int // respond 503 to this many requests first
	srv       *httptest.Server
}

func newCollector(t *testing.T) *collector {
	c := &collector{}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/traces", func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.failNext > 0 {
			c.failNext--
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		var req tracesRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("collector: bad traces body: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				c.spans = append(c.spans, ss.Spans...)
			}
		}
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		defer c.mu.Unlock()
		var req metricsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("collector: bad metrics body: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.metricReq = append(c.metricReq, req)
	})
	c.srv = httptest.NewServer(mux)
	t.Cleanup(c.srv.Close)
	return c
}

func (c *collector) spanCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// finishRecovery runs one traced recovery through the tracer and returns
// after Finish (and therefore after the sink delivered it).
func finishRecovery(tr *obs.Tracer, id string) {
	_, rec := tr.StartRecovery(context.Background(), id)
	s := rec.Span("phase")
	s.End()
	rec.Finish(false, nil)
}

func TestExporterEndToEnd(t *testing.T) {
	col := newCollector(t)
	reg := telemetry.NewRegistry()
	exp := New(Config{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour, // flushes come from Close, not the ticker
		ServiceName: "sigrecd-test",
		Resource:    map[string]string{"sigrec.shard": "s0"},
		Registry:    reg,
		BatchSize:   4,
	})
	tr := obs.New(obs.Config{Sink: exp.Sink()})
	exp.Start()
	const n = 10
	for i := 0; i < n; i++ {
		finishRecovery(tr, "req")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Each recovery is a 2-span tree; all must arrive (batched flushes
	// plus the drain on Close).
	if got := col.spanCount(); got != 2*n {
		t.Fatalf("collector saw %d spans, want %d", got, 2*n)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sigrec_otlp_spans_exported_total"]; got != 2*n {
		t.Errorf("spans_exported_total = %d, want %d", got, 2*n)
	}
	if got := snap.LabeledCounters["sigrec_otlp_dropped_total"].Values; len(got) != 0 {
		t.Errorf("unexpected drops: %v", got)
	}
	// Close ships a final metrics snapshot; it must include the
	// exporter's own self-metrics.
	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.metricReq) == 0 {
		t.Fatal("no metrics export received")
	}
	last := col.metricReq[len(col.metricReq)-1]
	found := false
	for _, m := range last.ResourceMetrics[0].ScopeMetrics[0].Metrics {
		if m.Name == "sigrec_otlp_spans_exported_total" {
			found = true
		}
	}
	if !found {
		t.Error("final metrics export missing exporter self-metrics")
	}
	res := last.ResourceMetrics[0].Resource.Attributes
	if len(res) == 0 || res[0].Key != "service.name" || *res[0].Value.StringValue != "sigrecd-test" {
		t.Errorf("resource attributes = %+v", res)
	}
}

func TestExporterRetry(t *testing.T) {
	col := newCollector(t)
	col.failNext = 2 // first two trace POSTs bounce with 503
	reg := telemetry.NewRegistry()
	exp := New(Config{Endpoint: col.srv.URL, Interval: time.Hour, Registry: reg})
	exp.sleep = func(time.Duration) {} // no real backoff in tests
	tr := obs.New(obs.Config{Sink: exp.Sink()})
	exp.Start()
	finishRecovery(tr, "retry-req")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := col.spanCount(); got != 2 {
		t.Fatalf("collector saw %d spans after retries, want 2", got)
	}
	snap := reg.Snapshot()
	if got := snap.LabeledCounters["sigrec_otlp_export_failures_total"].Values; len(got) != 0 {
		t.Errorf("batch marked failed despite retry success: %v", got)
	}
}

func TestExporterDropsWhenQueueFull(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Never started: the queue only fills. Unreachable endpoint is fine —
	// nothing sends.
	exp := New(Config{Endpoint: "http://127.0.0.1:0", Registry: reg, QueueSize: 4})
	tr := obs.New(obs.Config{Sink: exp.Sink()})
	for i := 0; i < 10; i++ {
		finishRecovery(tr, "q")
	}
	snap := reg.Snapshot()
	if got := snap.LabeledCounters["sigrec_otlp_dropped_total"].Values["queue_full"]; got != 6 {
		t.Errorf("queue_full drops = %d, want 6", got)
	}
}

func TestExporterGivesUpAfterRetries(t *testing.T) {
	col := newCollector(t)
	col.failNext = 100 // never recovers within the retry budget
	reg := telemetry.NewRegistry()
	exp := New(Config{Endpoint: col.srv.URL, Interval: time.Hour, Registry: reg})
	exp.sleep = func(time.Duration) {}
	tr := obs.New(obs.Config{Sink: exp.Sink()})
	exp.Start()
	finishRecovery(tr, "doomed")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.LabeledCounters["sigrec_otlp_dropped_total"].Values["send_failed"]; got != 1 {
		t.Errorf("send_failed drops = %d, want 1", got)
	}
	if got := snap.LabeledCounters["sigrec_otlp_export_failures_total"].Values["traces"]; got != 1 {
		t.Errorf("trace export failures = %d, want 1", got)
	}
	if got := snap.Counters["sigrec_otlp_spans_exported_total"]; got != 0 {
		t.Errorf("spans_exported_total = %d, want 0", got)
	}
}

// TestSelfMetricsLint guards the satellite requirement: every new
// sigrec_otlp_* family carries HELP text and survives the strict linter.
func TestSelfMetricsLint(t *testing.T) {
	reg := telemetry.NewRegistry()
	exp := New(Config{Endpoint: "http://127.0.0.1:0", Registry: reg})
	exp.Enqueue(nil) // nil-safe
	reg.CounterVec("sigrec_otlp_dropped_total", "reason").With("queue_full").Inc()
	reg.CounterVec("sigrec_otlp_batches_total", "signal").With("traces").Inc()
	reg.CounterVec("sigrec_otlp_export_failures_total", "signal").With("metrics").Inc()
	var b []byte
	buf := &writerBuf{b: b}
	if _, err := reg.WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.Lint(string(buf.b)); err != nil {
		t.Fatalf("otlp self-metrics fail lint: %v", err)
	}
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
