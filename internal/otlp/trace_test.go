package otlp

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sigrec/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// checkGolden compares v's indented JSON encoding against the named
// golden file; -update-golden rewrites it.
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// testRecord is a fixed recovery record: every timestamp is pinned, so
// the mapping's trace/span ids and nano timestamps are fully determined.
func testRecord() *obs.Record {
	start := time.Unix(1700000000, 0).UTC()
	root := &obs.Span{
		Name:  "recovery",
		DurUS: 4200,
		Children: []*obs.Span{
			{Name: "disassemble", StartUS: 10, DurUS: 300,
				Attrs: []obs.Attr{{Key: "code_bytes", Num: 1234}}},
			{Name: "dispatch", StartUS: 320, DurUS: 80},
			{Name: "selector", StartUS: 410, DurUS: 3700,
				Attrs: []obs.Attr{{Key: "selector", Str: "a9059cbb"}},
				Children: []*obs.Span{
					{Name: "explore", StartUS: 415, DurUS: 2800},
					{Name: "infer", StartUS: 3220, DurUS: 880,
						Attrs: []obs.Attr{{Key: "rules_fired", Num: 7}}},
				}},
		},
	}
	return &obs.Record{
		RequestID: "req-golden-1",
		EventSeq:  42,
		Start:     start,
		DurUS:     4200,
		Truncated: true,
		Error:     "step budget exhausted",
		Root:      root,
	}
}

func TestSpansGolden(t *testing.T) {
	res := buildResource("sigrecd", map[string]string{"sigrec.shard": "s1", "service.version": "pr9"})
	req, n := buildTracesRequest(res, scope{Name: "sigrec/internal/otlp"}, []*obs.Record{testRecord()})
	if n != 6 {
		t.Fatalf("span count = %d, want 6", n)
	}
	checkGolden(t, "traces.golden.json", req)
}

func TestSpanTreeStructure(t *testing.T) {
	spans := spansFromRecord(testRecord())
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	root := spans[0]
	if root.ParentSpanID != "" {
		t.Errorf("root has parent %q", root.ParentSpanID)
	}
	if root.Status == nil || root.Status.Code != statusError {
		t.Errorf("root status = %+v, want error", root.Status)
	}
	// Every span shares the trace id; every non-root span's parent id is
	// the id of a span earlier in the (preorder) list.
	ids := map[string]bool{root.SpanID: true}
	for _, s := range spans[1:] {
		if s.TraceID != root.TraceID {
			t.Errorf("span %s trace id %q != root %q", s.Name, s.TraceID, root.TraceID)
		}
		if !ids[s.ParentSpanID] {
			t.Errorf("span %s parent %q not seen before it", s.Name, s.ParentSpanID)
		}
		ids[s.SpanID] = true
	}
	if len(ids) != 6 {
		t.Errorf("span ids not unique: %d distinct of 6", len(ids))
	}
	// Monotonic offsets must be preserved: child start >= parent start,
	// end = start + dur.
	base := time.Unix(1700000000, 0).UTC().UnixNano()
	if root.StartTimeUnixNano != formatInt(base) {
		t.Errorf("root start = %s, want %d", root.StartTimeUnixNano, base)
	}
	if want := formatInt(base + 4200*1000); root.EndTimeUnixNano != want {
		t.Errorf("root end = %s, want %s", root.EndTimeUnixNano, want)
	}
	if want := formatInt(base + 3220*1000); spans[5].Name != "infer" || spans[5].StartTimeUnixNano != want {
		t.Errorf("infer start = %s (%s), want %s", spans[5].StartTimeUnixNano, spans[5].Name, want)
	}
}

func TestTraceIDStability(t *testing.T) {
	a, b := testRecord(), testRecord()
	sa, sb := spansFromRecord(a), spansFromRecord(b)
	for i := range sa {
		if sa[i].SpanID != sb[i].SpanID || sa[i].TraceID != sb[i].TraceID {
			t.Fatalf("ids not stable at %d: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	// Same request id, different start → same trace, different span ids:
	// two batch items of one request join one trace as sibling roots.
	b.Start = b.Start.Add(time.Second)
	sb = spansFromRecord(b)
	if sb[0].TraceID != sa[0].TraceID {
		t.Error("same request id must map to the same trace")
	}
	if sb[0].SpanID == sa[0].SpanID {
		t.Error("distinct recoveries must get distinct span ids")
	}
	// Anonymous records (no request id) must not collide on one trace.
	anon := testRecord()
	anon.RequestID = ""
	if spansFromRecord(anon)[0].TraceID == sa[0].TraceID {
		t.Error("anonymous record reused the request-id trace")
	}
}
