package otlp

import (
	"sort"
	"strings"

	"sigrec/internal/telemetry"
)

// metricsFromSnapshot maps one registry snapshot onto OTLP metrics:
// counters and CounterVec families become monotonic cumulative Sums,
// gauges (int and float, plain and labeled) become Gauges, histograms
// become explicit-bucket Histograms (per-bucket counts, as the OTLP
// schema requires — the registry snapshot is cumulative), CKMS summaries
// become Summary points with their tracked quantiles, and info metrics
// become constant-1 gauges carrying their labels as attributes. HELP text
// rides along as the description. Metric and series order is
// deterministic (sorted), so golden tests and diffing collectors see a
// stable stream. startNano/nowNano parameterize the cumulative window —
// the exporter passes process start and wall now; tests pass fixed
// values.
func metricsFromSnapshot(s telemetry.Snapshot, startNano, nowNano int64) []wireMetric {
	startTS, nowTS := formatInt(startNano), formatInt(nowNano)
	point := func(attrs []keyValue) numberDataPoint {
		return numberDataPoint{Attributes: attrs, StartTimeUnixNano: startTS, TimeUnixNano: nowTS}
	}
	intPoint := func(v int64, attrs []keyValue) numberDataPoint {
		p := point(attrs)
		str := formatInt(v)
		p.AsInt = &str
		return p
	}
	doublePoint := func(v float64, attrs []keyValue) numberDataPoint {
		p := point(attrs)
		p.AsDouble = &v
		return p
	}

	names := make([]string, 0,
		len(s.Counters)+len(s.Gauges)+len(s.FloatGauges)+len(s.Histograms)+
			len(s.Summaries)+len(s.LabeledCounters)+len(s.LabeledGauges)+
			len(s.LabeledFloatGauges)+len(s.Infos))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.FloatGauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	for n := range s.Summaries {
		names = append(names, n)
	}
	for n := range s.LabeledCounters {
		names = append(names, n)
	}
	for n := range s.LabeledGauges {
		names = append(names, n)
	}
	for n := range s.LabeledFloatGauges {
		names = append(names, n)
	}
	for n := range s.Infos {
		names = append(names, n)
	}
	sort.Strings(names)

	out := make([]wireMetric, 0, len(names))
	for _, n := range names {
		m := wireMetric{Name: n, Description: s.Help[n], Unit: unitFor(n)}
		switch {
		case hasKey(s.Counters, n):
			m.Sum = &wireSum{
				DataPoints:             []numberDataPoint{intPoint(int64(s.Counters[n]), nil)},
				AggregationTemporality: temporalityCumulative,
				IsMonotonic:            true,
			}
		case hasKey(s.Gauges, n):
			m.Gauge = &wireGauge{DataPoints: []numberDataPoint{intPoint(s.Gauges[n], nil)}}
		case hasKey(s.FloatGauges, n):
			m.Gauge = &wireGauge{DataPoints: []numberDataPoint{doublePoint(s.FloatGauges[n], nil)}}
		case hasKey(s.LabeledCounters, n):
			lc := s.LabeledCounters[n]
			sum := &wireSum{AggregationTemporality: temporalityCumulative, IsMonotonic: true}
			for _, v := range sortedKeys(lc.Values) {
				sum.DataPoints = append(sum.DataPoints,
					intPoint(int64(lc.Values[v]), []keyValue{strAttr(lc.Label, v)}))
			}
			m.Sum = sum
		case hasKey(s.LabeledGauges, n):
			lg := s.LabeledGauges[n]
			g := &wireGauge{}
			for _, v := range sortedKeys(lg.Values) {
				g.DataPoints = append(g.DataPoints,
					intPoint(lg.Values[v], []keyValue{strAttr(lg.Label, v)}))
			}
			m.Gauge = g
		case hasKey(s.LabeledFloatGauges, n):
			lg := s.LabeledFloatGauges[n]
			g := &wireGauge{}
			for _, v := range sortedKeys(lg.Values) {
				g.DataPoints = append(g.DataPoints,
					doublePoint(lg.Values[v], []keyValue{strAttr(lg.Label, v)}))
			}
			m.Gauge = g
		case hasKey(s.Histograms, n):
			m.Histogram = histogramMetric(s.Histograms[n], startTS, nowTS)
		case hasKey(s.Summaries, n):
			su := s.Summaries[n]
			dp := summaryDataPoint{
				StartTimeUnixNano: startTS,
				TimeUnixNano:      nowTS,
				Count:             formatUint(su.Count),
				Sum:               su.Sum,
			}
			for _, q := range su.Quantiles {
				dp.QuantileValues = append(dp.QuantileValues,
					valueAtQuantile{Quantile: q.Q, Value: q.V})
			}
			m.Summary = &wireSummary{DataPoints: []summaryDataPoint{dp}}
		case hasKey(s.InfoLabels, n):
			var attrs []keyValue
			labels := s.InfoLabels[n]
			for _, k := range sortedKeys(labels) {
				attrs = append(attrs, strAttr(k, labels[k]))
			}
			m.Gauge = &wireGauge{DataPoints: []numberDataPoint{intPoint(1, attrs)}}
		default:
			continue
		}
		out = append(out, m)
	}
	return out
}

// histogramMetric converts one cumulative-bucket registry histogram to an
// OTLP explicit-bucket histogram (per-bucket counts, float bounds, the
// most recent exemplar per bucket when one was recorded).
func histogramMetric(h telemetry.HistogramSnapshot, startTS, nowTS string) *wireHistogram {
	dp := histogramDataPoint{
		StartTimeUnixNano: startTS,
		TimeUnixNano:      nowTS,
		Count:             formatUint(h.Count),
		ExplicitBounds:    make([]float64, len(h.Bounds)),
		BucketCounts:      make([]string, len(h.Cumulative)),
	}
	sum := float64(h.Sum)
	dp.Sum = &sum
	for i, b := range h.Bounds {
		dp.ExplicitBounds[i] = float64(b)
	}
	prev := uint64(0)
	for i, c := range h.Cumulative {
		dp.BucketCounts[i] = formatUint(c - prev)
		prev = c
	}
	for _, ex := range h.Exemplars {
		if ex == nil {
			continue
		}
		v := float64(ex.Value)
		we := wireExemplar{TimeUnixNano: nowTS, AsDouble: &v}
		if ex.ID != "" {
			we.FilteredAttributes = []keyValue{strAttr("sigrec.request_id", ex.ID)}
		}
		dp.Exemplars = append(dp.Exemplars, we)
	}
	return &wireHistogram{
		DataPoints:             []histogramDataPoint{dp},
		AggregationTemporality: temporalityCumulative,
	}
}

// unitFor derives the OTLP unit (UCUM) from the repo's metric naming
// convention: every duration family is microseconds and says so in its
// name; ratio-valued SLO gauges are dimensionless.
func unitFor(name string) string {
	switch {
	case strings.Contains(name, "_microseconds") || strings.HasSuffix(name, "_us"):
		return "us"
	case strings.HasSuffix(name, "_seconds"):
		return "s"
	case strings.HasSuffix(name, "_bytes"):
		return "By"
	}
	return ""
}

func hasKey[V any](m map[string]V, k string) bool { _, ok := m[k]; return ok }

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// buildMetricsRequest wraps one snapshot's metrics in a ResourceMetrics
// envelope.
func buildMetricsRequest(res resource, sc scope, s telemetry.Snapshot, startNano, nowNano int64) (metricsRequest, int) {
	ms := metricsFromSnapshot(s, startNano, nowNano)
	req := metricsRequest{ResourceMetrics: []resourceMetrics{{
		Resource:     res,
		ScopeMetrics: []scopeMetrics{{Scope: sc, Metrics: ms}},
	}}}
	return req, len(ms)
}
