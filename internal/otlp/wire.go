// Package otlp is a zero-dependency OTLP/HTTP exporter: it maps the
// repo's own observability primitives — internal/obs span trees and the
// internal/telemetry registry — onto the OpenTelemetry protocol's JSON
// encoding and ships them to a collector with a batching, bounded-queue,
// retry-with-backoff sender that never blocks the hot path.
//
// The wire structs below follow the protobuf JSON mapping used by
// opentelemetry-proto: 64-bit integers and nanosecond timestamps are
// encoded as decimal strings, trace/span ids as lowercase hex, and enum
// fields as their numeric values. Only the subset of the schema this repo
// produces is modeled; collectors ignore absent optional fields.
package otlp

// keyValue is one attribute. Exactly one field of anyValue is set.
type keyValue struct {
	Key   string   `json:"key"`
	Value anyValue `json:"value"`
}

type anyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func strAttr(k, v string) keyValue {
	return keyValue{Key: k, Value: anyValue{StringValue: &v}}
}

func intAttr(k string, v int64) keyValue {
	s := formatInt(v)
	return keyValue{Key: k, Value: anyValue{IntValue: &s}}
}

func boolAttr(k string, v bool) keyValue {
	return keyValue{Key: k, Value: anyValue{BoolValue: &v}}
}

// resource identifies the producing process (service.name, shard id,
// build info); every span and metric batch carries one.
type resource struct {
	Attributes []keyValue `json:"attributes,omitempty"`
}

type scope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// --- traces ---

// tracesRequest is the body of POST /v1/traces
// (ExportTraceServiceRequest).
type tracesRequest struct {
	ResourceSpans []resourceSpans `json:"resourceSpans"`
}

type resourceSpans struct {
	Resource   resource     `json:"resource"`
	ScopeSpans []scopeSpans `json:"scopeSpans"`
}

type scopeSpans struct {
	Scope scope      `json:"scope"`
	Spans []wireSpan `json:"spans"`
}

// Span status codes (status.code enum).
const (
	statusUnset = 0
	statusError = 2
)

// spanKindInternal is the only kind this repo produces.
const spanKindInternal = 1

type spanStatus struct {
	Message string `json:"message,omitempty"`
	Code    int    `json:"code,omitempty"`
}

type wireSpan struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	Kind              int         `json:"kind"`
	StartTimeUnixNano string      `json:"startTimeUnixNano"`
	EndTimeUnixNano   string      `json:"endTimeUnixNano"`
	Attributes        []keyValue  `json:"attributes,omitempty"`
	Status            *spanStatus `json:"status,omitempty"`
}

// --- metrics ---

// metricsRequest is the body of POST /v1/metrics
// (ExportMetricsServiceRequest).
type metricsRequest struct {
	ResourceMetrics []resourceMetrics `json:"resourceMetrics"`
}

type resourceMetrics struct {
	Resource     resource       `json:"resource"`
	ScopeMetrics []scopeMetrics `json:"scopeMetrics"`
}

type scopeMetrics struct {
	Scope   scope        `json:"scope"`
	Metrics []wireMetric `json:"metrics"`
}

// aggregationTemporalityCumulative: every series this repo exports is a
// cumulative-since-process-start stream, matching the Prometheus model
// the registry already implements.
const temporalityCumulative = 2

type wireMetric struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Unit        string         `json:"unit,omitempty"`
	Sum         *wireSum       `json:"sum,omitempty"`
	Gauge       *wireGauge     `json:"gauge,omitempty"`
	Histogram   *wireHistogram `json:"histogram,omitempty"`
	Summary     *wireSummary   `json:"summary,omitempty"`
}

type wireSum struct {
	DataPoints             []numberDataPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"`
	IsMonotonic            bool              `json:"isMonotonic"`
}

type wireGauge struct {
	DataPoints []numberDataPoint `json:"dataPoints"`
}

type numberDataPoint struct {
	Attributes        []keyValue `json:"attributes,omitempty"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	TimeUnixNano      string     `json:"timeUnixNano"`
	AsInt             *string    `json:"asInt,omitempty"`
	AsDouble          *float64   `json:"asDouble,omitempty"`
}

type wireHistogram struct {
	DataPoints             []histogramDataPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

type histogramDataPoint struct {
	Attributes        []keyValue `json:"attributes,omitempty"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	TimeUnixNano      string     `json:"timeUnixNano"`
	Count             string     `json:"count"`
	Sum               *float64   `json:"sum,omitempty"`
	// BucketCounts are per-bucket (NOT cumulative) counts, one entry per
	// explicit bound plus the final overflow bucket.
	BucketCounts   []string       `json:"bucketCounts"`
	ExplicitBounds []float64      `json:"explicitBounds"`
	Exemplars      []wireExemplar `json:"exemplars,omitempty"`
}

type wireExemplar struct {
	FilteredAttributes []keyValue `json:"filteredAttributes,omitempty"`
	TimeUnixNano       string     `json:"timeUnixNano"`
	AsDouble           *float64   `json:"asDouble,omitempty"`
}

type wireSummary struct {
	DataPoints []summaryDataPoint `json:"dataPoints"`
}

type summaryDataPoint struct {
	Attributes        []keyValue        `json:"attributes,omitempty"`
	StartTimeUnixNano string            `json:"startTimeUnixNano"`
	TimeUnixNano      string            `json:"timeUnixNano"`
	Count             string            `json:"count"`
	Sum               float64           `json:"sum"`
	QuantileValues    []valueAtQuantile `json:"quantileValues"`
}

type valueAtQuantile struct {
	Quantile float64 `json:"quantile"`
	Value    float64 `json:"value"`
}
