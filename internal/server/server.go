// Package server is sigrecd's HTTP serving layer: it turns the recovery
// pipeline (core.RecoverContext) into a network service with bounded
// admission, singleflight request coalescing, streaming batch recovery,
// live metrics, and graceful drain.
//
// Endpoints:
//
//	POST /v1/recover        hex bytecode (raw text or {"bytecode":"0x.."}) -> JSON recovery
//	POST /v1/recover/batch  NDJSON of bytecodes -> NDJSON of per-contract results, streamed as they complete
//	GET  /metrics           Prometheus-flavoured exposition (pipeline + per-endpoint series)
//	GET  /healthz           liveness + pool state; 503 while draining
//
// Backpressure: recoveries run on a bounded worker pool behind a bounded
// admission queue. A single recover that finds the queue full is shed with
// 429 + Retry-After instead of queueing unboundedly; batch items instead
// block on the queue (bounded by its depth), which propagates backpressure
// to the streaming connection. Concurrent requests for the same bytecode
// coalesce singleflight-style in front of the shared keccak-keyed result
// cache, so a thundering herd on one contract costs one recovery.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sigrec/internal/core"
	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
	"sigrec/internal/slo"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultQueueDepth   = 64
	DefaultCacheEntries = 4096
	DefaultMaxBodyBytes = 8 << 20
	DefaultRetryAfter   = time.Second
)

// Config sizes the serving layer. The zero value selects sane defaults.
type Config struct {
	// Workers bounds concurrent recoveries (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds recoveries admitted but not yet running; beyond it
	// single recovers are shed with 429 (<= 0 selects DefaultQueueDepth).
	QueueDepth int
	// Timeout is the per-request recovery deadline mapped onto
	// core.Options/ctx (0 = unbounded). On expiry the request fails with
	// 504 rather than occupying a worker indefinitely.
	Timeout time.Duration
	// StepBudget and MaxPaths bound each TASE exploration (core.Options).
	StepBudget int
	MaxPaths   int
	// SelectorWorkers bounds intra-contract parallelism
	// (core.Options.SelectorWorkers). 0 selects the serving default,
	// sequential exploration — a saturated worker pool already uses every
	// core, and nested fan-out would only add scheduling churn. > 1 fans
	// each recovery out over that many selector workers; < 0 selects
	// core's auto mode (up to GOMAXPROCS per recovery) for lightly loaded,
	// latency-sensitive deployments.
	SelectorWorkers int
	// Cache is the shared result cache; nil allocates a private cache of
	// CacheEntries results.
	Cache *core.Cache
	// CacheEntries sizes the private cache when Cache is nil (<= 0 selects
	// DefaultCacheEntries).
	CacheEntries int
	// MaxBodyBytes caps a single-recover body and each batch line (<= 0
	// selects DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// RetryAfter is the client backoff hint sent with 429 responses (<= 0
	// selects DefaultRetryAfter; rounded up to whole seconds).
	RetryAfter time.Duration
	// Logger, when non-nil, receives one structured access-log record per
	// request, carrying the request ID echoed on the response.
	Logger *slog.Logger
	// Tracer, when non-nil, arms per-recovery span collection: every
	// recovery gets a span tree and the slowest/truncated ones are retained
	// in the tracer's flight recorder, served at GET /debug/slowest.
	Tracer *obs.Tracer
	// EventLog, when non-nil, receives one wide event per recovery run by
	// the pipeline (server-level cache hits and coalesced waiters emit
	// nothing — they run no recovery). The most recent events are also
	// served at GET /debug/events.
	EventLog *eventlog.Writer
	// CacheFill, when non-nil, is consulted on every local cache miss
	// before computing — the cluster peer-fill hook: when the hash ring
	// says another shard owns this bytecode, fetch its cached result
	// instead of recomputing. A miss (or error) falls through to the local
	// pipeline, so the hook can only save work, never fail a request.
	CacheFill core.FillFunc
	// SLO, when non-nil, is the burn-rate evaluator whose state is served
	// at GET /debug/slo.
	SLO *slo.Evaluator
	// Service names this process on stitched trace spans served at
	// GET /debug/trace/{id} (empty selects "sigrecd"; cluster shards pass
	// their shard id).
	Service string
	// TracePeers maps peer service name -> base URL for the /debug/trace
	// fan-out, so one shard answers with the whole fleet's half-traces
	// stitched together. Typically the same map as the peer-fill pool.
	TracePeers map[string]string
}

// Server is the HTTP serving layer. Create with New, expose with Handler,
// stop with Drain.
type Server struct {
	cfg      Config
	cache    *core.Cache
	pool     *pool
	mux      *http.ServeMux
	draining atomic.Bool
	// recoverFn is the pipeline entry point; tests stub it to control
	// timing deterministically.
	recoverFn func(ctx context.Context, code []byte, opts core.Options) (core.Result, error)
}

// New builds a Server from cfg, applying defaults to zero fields and
// starting the worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Cache == nil {
		cfg.Cache = core.NewCache(cfg.CacheEntries)
	}
	s := &Server{
		cfg:       cfg,
		cache:     cfg.Cache,
		pool:      newPool(cfg.Workers, cfg.QueueDepth),
		recoverFn: core.RecoverContext,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recover", s.handleRecover)
	mux.HandleFunc("POST /v1/recover/batch", s.handleBatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/slowest", s.handleSlowest)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("GET /debug/slo", s.handleSLO)
	service := cfg.Service
	if service == "" {
		service = "sigrecd"
	}
	mux.Handle("GET /debug/trace/{id}", TraceHandler(TraceOptions{
		Service: service,
		Tracer:  cfg.Tracer,
		Peers:   cfg.TracePeers,
	}))
	s.mux = mux
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Mount attaches an extra handler to the server's mux, e.g. the cluster
// peer-fill endpoint. pattern follows http.ServeMux syntax ("POST /x").
// Call before Handler is serving traffic.
func (s *Server) Mount(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Cache returns the server's shared result cache, so composing layers
// (the cluster fill endpoint) can serve peeks from it.
func (s *Server) Cache() *core.Cache { return s.cache }

// ResolvedConfig returns the Config after New applied defaults, so callers
// can report the effective serving parameters.
func (s *Server) ResolvedConfig() Config { return s.cfg }

// BeginDrain stops admitting new requests: recover endpoints return 503
// and healthz flips to "draining" so load balancers stop routing here.
// Inflight requests keep running.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully stops the serving layer: admission closes, then every
// queued and inflight recovery finishes (bounded by ctx). Call after the
// enclosing http.Server has stopped accepting connections.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	return s.pool.close(ctx)
}

// options maps the server budgets onto the pipeline Options. The shared
// cache is not set here: caching and coalescing happen one level up in
// Cache.GetOrCompute.
func (s *Server) options() core.Options {
	// Config 0 = sequential (the serving default), < 0 = core's auto mode;
	// core itself reads 0 as auto, hence the remap.
	sw := s.cfg.SelectorWorkers
	if sw == 0 {
		sw = 1
	} else if sw < 0 {
		sw = 0
	}
	return core.Options{
		StepBudget:      s.cfg.StepBudget,
		MaxPaths:        s.cfg.MaxPaths,
		EventLog:        s.cfg.EventLog,
		SelectorWorkers: sw,
	}
}

// recoverItem runs one contract through coalescing, admission, and the
// worker pool. blocking selects batch semantics (backpressure) over
// single-recover semantics (shed with errQueueFull).
func (s *Server) recoverItem(ctx context.Context, code []byte, blocking bool) (core.Result, error) {
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	var res core.Result
	var err error
	fill := s.cfg.CacheFill
	if fill != nil {
		inner := fill
		fill = func(fctx context.Context, code []byte) (core.Result, error, bool) {
			fres, ferr, ok := inner(fctx, code)
			if ok {
				// A peer fill resolves the request without a worker ever
				// owning the recovery, so the winner goroutine (the only
				// writer at this point) finishes the trace here: the fill
				// span recorded by the hook stays visible in the flight
				// recorder and the exported trace.
				obs.FromContext(fctx).Finish(false, nil)
			}
			return fres, ferr, ok
		}
	}
	// A waiter coalesced onto a flight whose winner's context died inherits
	// that context error; when our own context is still live, retry once —
	// the dead flight is gone, so the retry computes (or coalesces onto a
	// live flight).
	for attempt := 0; attempt < 2; attempt++ {
		res, err = s.cache.GetOrComputeFill(ctx, code, fill, func() (core.Result, error) {
			return s.runPooled(ctx, code, blocking)
		})
		if isCtxErr(err) && ctx.Err() == nil {
			continue
		}
		break
	}
	return res, err
}

// runPooled executes one recovery on the worker pool; it is the compute
// half of GetOrCompute, so it runs once per coalesced herd.
func (s *Server) runPooled(ctx context.Context, code []byte, blocking bool) (core.Result, error) {
	var (
		res  core.Result
		rerr error
	)
	// The queue span measures admission wait: started before submit, ended
	// when a worker picks the job up (or submission fails). Nil-safe when
	// the request is untraced. The same wait goes into the wide-event scope
	// (the worker sets it before the recovery runs, on its own goroutine,
	// so no synchronization is needed).
	qStart := time.Now()
	qsp := obs.FromContext(ctx).Span("queue")
	j := &job{done: make(chan struct{})}
	j.run = func() {
		qsp.End()
		if sc := eventlog.ScopeFromContext(ctx); sc != nil {
			sc.QueueUS = time.Since(qStart).Microseconds()
		}
		// The worker owns the recovery from here: it appends every pipeline
		// span and finishes the trace (obs recoveries are single-writer).
		// Requests that never reach a worker — shed, coalesced onto another
		// flight, cache hits — leave their recovery unfinished and unrecorded,
		// which is right: the flight recorder retains recoveries, not requests.
		rec := obs.FromContext(ctx)
		// The requester may have gone away while the job sat in the queue;
		// don't burn a worker on a result nobody reads. Finishing with the
		// context error keeps died-in-queue waits visible in /debug/slowest.
		if err := ctx.Err(); err != nil {
			rerr = err
			rec.Finish(false, err)
			return
		}
		res, rerr = s.recoverFn(ctx, code, s.options())
		rec.Finish(res.Truncated, rerr)
	}
	var err error
	if blocking {
		err = s.pool.submit(ctx, j)
	} else {
		err = s.pool.trySubmit(j)
	}
	if err != nil {
		qsp.End()
		return core.Result{}, err
	}
	select {
	case <-j.done:
		return res, rerr
	case <-ctx.Done():
		// The worker still runs (and skips) the job; the flight resolves to
		// the context error for every coalesced waiter.
		return core.Result{}, ctx.Err()
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// --- POST /v1/recover ---

func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mRecover.requests.Inc()
	mRecover.inflight.Add(1)
	defer mRecover.inflight.Add(-1)
	defer func() { mRecover.latency.ObserveDuration(time.Since(start)) }()

	requestID := ensureRequestID(w, r)
	status := http.StatusOK
	defer func() { s.logRequest(r, requestID, status, start) }()

	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		writeError(w, status, "server is draining")
		return
	}
	code, err := readBytecode(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		mRecover.badInput.Inc()
		status = inputStatus(err)
		writeError(w, status, err.Error())
		return
	}
	// The worker that runs the recovery also finishes the trace (see
	// runPooled); the handler only arms the context — the tracer's span
	// tree and the wide-event scope both ride it. An inbound traceparent
	// (the router's attempt span) parents the recovery under the caller's
	// trace; a malformed one starts a fresh root, never an error.
	parent := extractTraceContext(r)
	ctx, sc := eventlog.NewContext(r.Context(), requestID)
	sc.TraceID = requestTraceID(parent, requestID)
	ctx, _ = s.cfg.Tracer.StartRoot(ctx, "recovery", requestID, parent)
	res, err := s.recoverItem(ctx, code, false)
	switch {
	case errors.Is(err, errQueueFull):
		mRecover.shed.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		status = http.StatusTooManyRequests
		writeError(w, status, "admission queue full; retry later")
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
		writeError(w, status, "server is draining")
	case isCtxErr(err):
		status = http.StatusGatewayTimeout
		writeError(w, status, "recovery deadline exceeded")
	case err != nil && !errors.Is(err, core.ErrNoFunctions):
		mRecover.errors.Inc()
		status = http.StatusInternalServerError
		writeError(w, status, err.Error())
	default:
		// ErrNoFunctions is a legitimate outcome for the service: bytecode
		// with no recoverable dispatcher yields an empty function list.
		writeJSON(w, http.StatusOK, ResponseFromResult(res, nil))
	}
}

// --- POST /v1/recover/batch ---

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mBatch.requests.Inc()
	mBatch.inflight.Add(1)
	defer mBatch.inflight.Add(-1)
	defer func() { mBatch.latency.ObserveDuration(time.Since(start)) }()

	requestID := ensureRequestID(w, r)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		s.logRequest(r, requestID, http.StatusServiceUnavailable, start)
		return
	}
	parent := extractTraceContext(r)
	traceID := requestTraceID(parent, requestID)
	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	// HTTP/1 is half-duplex by default: the first response write closes
	// the request body. Batch streams results while still reading input,
	// so opt in to full duplex (HTTP/2 ignores this; it always is).
	_ = rc.EnableFullDuplex()

	// Reader side: parse lines and fan them out to the pool, at most
	// Workers items in flight per batch; writer side (below) streams each
	// result the moment it completes. close(out) after the last item is
	// what ends the response.
	out := make(chan BatchResult, s.cfg.Workers)
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		defer wg.Wait()
		sem := make(chan struct{}, s.cfg.Workers)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))
		idx := 0
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			i := idx
			idx++
			mBatchContracts.Inc()
			code, perr := parseBytecode(line)
			if perr != nil {
				mBatch.badInput.Inc()
				out <- BatchResult{Index: i, Error: perr.Error()}
				continue
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				out <- BatchResult{Index: i, Error: ctx.Err().Error()}
				continue
			}
			wg.Add(1)
			go func(i int, code []byte) {
				defer wg.Done()
				defer func() { <-sem }()
				// Each batch item is its own recovery — its own span tree
				// and wide-event scope, finished by the worker that runs
				// it; all share the request's ID (and therefore one trace)
				// so the flight recorder and event log group them.
				ictx, isc := eventlog.NewContext(ctx, requestID)
				isc.TraceID = traceID
				ictx, _ = s.cfg.Tracer.StartRoot(ictx, "recovery", requestID, parent)
				res, err := s.recoverItem(ictx, code, true)
				out <- batchResult(i, res, err)
			}(i, code)
		}
		if err := sc.Err(); err != nil {
			mBatch.badInput.Inc()
			out <- BatchResult{Index: idx, Error: "read body: " + err.Error()}
		}
	}()

	enc := json.NewEncoder(w)
	clientGone := false
	items := 0
	for br := range out {
		items++
		if clientGone {
			continue // keep draining so the fan-out goroutines can finish
		}
		if err := enc.Encode(br); err != nil {
			clientGone = true
			continue
		}
		_ = rc.Flush()
	}
	s.logRequest(r, requestID, http.StatusOK, start, slog.Int("items", items))
}

// batchResult folds one item's outcome into a wire line and meters
// runtime failures (parse failures were already counted as bad input).
func batchResult(i int, res core.Result, err error) BatchResult {
	switch {
	case err == nil || errors.Is(err, core.ErrNoFunctions):
		resp := ResponseFromResult(res, nil)
		return BatchResult{Index: i, Functions: resp.Functions, Truncated: resp.Truncated}
	default:
		mBatch.errors.Inc()
		return BatchResult{Index: i, Error: err.Error()}
	}
}

// --- GET /metrics ---

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mMetricsEP.requests.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := reg.Snapshot().WriteTo(w); err != nil {
		mMetricsEP.errors.Inc()
	}
}

// --- GET /healthz ---

// healthResponse is the /healthz body.
type healthResponse struct {
	Status        string `json:"status"`
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queueDepth"`
	QueueCapacity int    `json:"queueCapacity"`
	CacheEntries  int    `json:"cacheEntries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mHealthz.requests.Inc()
	h := healthResponse{
		Status:        "ok",
		Workers:       s.cfg.Workers,
		QueueDepth:    s.pool.queued(),
		QueueCapacity: s.cfg.QueueDepth,
		CacheEntries:  s.cache.Len(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// --- request/response plumbing ---

var errEmptyBody = errors.New("server: empty request body")

// readBytecode reads and decodes the request body, which is either a bare
// hex string (optionally 0x-prefixed) or JSON: {"bytecode":"0x.."} or a
// JSON string.
func readBytecode(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		return nil, fmt.Errorf("server: read body: %w", err)
	}
	return parseBytecode(body)
}

// ParseBytecode decodes one contract's bytecode from a request body or
// batch line — a bare hex string (optionally 0x-prefixed) or JSON
// ({"bytecode":"0x.."} or a JSON string). Exported so the cluster router
// can validate and canonicalize input with exactly the shard's rules
// before hashing it onto the ring.
func ParseBytecode(b []byte) ([]byte, error) { return parseBytecode(b) }

// parseBytecode decodes one contract's bytecode from a request body or
// batch line. Malformed hex yields the typed *core.HexInputError.
func parseBytecode(b []byte) ([]byte, error) {
	t := bytes.TrimSpace(b)
	if len(t) == 0 {
		return nil, errEmptyBody
	}
	hexStr := string(t)
	if t[0] == '{' || t[0] == '"' {
		hexStr = ""
		if t[0] == '"' {
			if err := json.Unmarshal(t, &hexStr); err != nil {
				return nil, fmt.Errorf("server: malformed JSON string: %w", err)
			}
		} else {
			var req struct {
				Bytecode string `json:"bytecode"`
			}
			if err := json.Unmarshal(t, &req); err != nil {
				return nil, fmt.Errorf("server: malformed JSON body: %w", err)
			}
			hexStr = req.Bytecode
		}
		if strings.TrimSpace(hexStr) == "" {
			return nil, errors.New(`server: JSON body missing "bytecode"`)
		}
	}
	code, err := core.DecodeHex(hexStr)
	if err != nil {
		return nil, err
	}
	if len(code) == 0 {
		return nil, errEmptyBody
	}
	return code, nil
}

// inputStatus maps an input-parsing error to its HTTP status: an
// oversized body is 413, everything else (typed hex errors, empty or
// malformed bodies) is 400.
func inputStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// errorResponse is the JSON error body every non-2xx response carries.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
