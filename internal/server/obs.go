package server

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"sigrec/internal/obs"
)

// maxRequestIDLen caps client-supplied X-Request-Id values so a hostile
// header cannot bloat logs or flight-recorder entries.
const maxRequestIDLen = 128

// ensureRequestID resolves the request's ID — the client's X-Request-Id
// when present (sanitized), a fresh random one otherwise — and echoes it
// on the response so callers can join logs, traces, and flight-recorder
// entries on one value.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	return id
}

// sanitizeRequestID keeps printable ASCII and truncates; anything else
// (header injection, control bytes) is dropped so the ID is safe to log.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// newRequestID returns 16 random hex characters.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// constant rather than panic in the serving path.
		return "00000000ffffffff"
	}
	return hex.EncodeToString(b[:])
}

// logRequest emits one structured access-log line carrying the request ID
// that also appears on the response header, in the span tree, and in the
// flight recorder. No-op when the server has no logger.
func (s *Server) logRequest(r *http.Request, requestID string, status int, start time.Time, attrs ...slog.Attr) {
	if s.cfg.Logger == nil {
		return
	}
	base := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Int64("duration_us", time.Since(start).Microseconds()),
		slog.String("request_id", requestID),
	}
	level := slog.LevelInfo
	if status >= 500 {
		level = slog.LevelError
	}
	s.cfg.Logger.LogAttrs(r.Context(), level, "request", append(base, attrs...)...)
}

// --- GET /debug/slowest ---

// handleSlowest serves the flight recorder: the span trees of the slowest
// and the budget-truncated recoveries, JSON-encoded.
func (s *Server) handleSlowest(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (start the server with a Tracer)")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Tracer.Recorder().Snapshot())
}

// DebugHandler returns the diagnostics mux sigrecd serves on -debug-addr:
// the net/http/pprof endpoints plus the flight recorder. It is separate
// from the main handler so profiling can stay off the service port.
func DebugHandler(tracer *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/slowest", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, tracer.Recorder().Snapshot())
	})
	return mux
}
