package server

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
	"sigrec/internal/slo"
	"sigrec/internal/telemetry"
)

// maxRequestIDLen caps client-supplied X-Request-Id values so a hostile
// header cannot bloat logs or flight-recorder entries.
const maxRequestIDLen = 128

// ensureRequestID resolves the request's ID — the client's X-Request-Id
// when present (sanitized), a fresh random one otherwise — and echoes it
// on the response so callers can join logs, traces, and flight-recorder
// entries on one value.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	return id
}

// EnsureRequestIDString applies the same request-id policy as the serving
// path to a bare header value: sanitize the client's id, or mint a fresh
// random one when it is empty or unsafe. Exported for the cluster router,
// so router-assigned base ids obey identical rules to shard-assigned ones.
func EnsureRequestIDString(id string) string {
	id = sanitizeRequestID(id)
	if id == "" {
		id = newRequestID()
	}
	return id
}

// sanitizeRequestID keeps printable ASCII and truncates; anything else
// (header injection, control bytes) is dropped so the ID is safe to log.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// extractTraceContext reads the inbound W3C trace context under the same
// policy as X-Request-Id sanitization: a malformed traceparent yields the
// zero SpanContext (the recovery starts a fresh trace root), never an
// error. Every disposition is metered into sigrec_trace_context_total.
func extractTraceContext(r *http.Request) obs.SpanContext {
	sc, result := obs.Extract(r.Header)
	mTraceContext.With(result).Inc()
	return sc
}

// requestTraceID resolves the trace id a request's recoveries (and wide
// events) carry: the inbound parent's when one was adopted, the
// deterministic request-id derivation otherwise — the same id the tracer
// stamps on the flight-recorder record, so all three telemetry surfaces
// join on it.
func requestTraceID(parent obs.SpanContext, requestID string) string {
	if parent.Valid() {
		return parent.TraceID
	}
	return obs.DeriveTraceID(requestID)
}

// newRequestID returns 16 random hex characters.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// constant rather than panic in the serving path.
		return "00000000ffffffff"
	}
	return hex.EncodeToString(b[:])
}

// logRequest emits one structured access-log line carrying the request ID
// that also appears on the response header, in the span tree, and in the
// flight recorder. No-op when the server has no logger.
func (s *Server) logRequest(r *http.Request, requestID string, status int, start time.Time, attrs ...slog.Attr) {
	if s.cfg.Logger == nil {
		return
	}
	base := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Int64("duration_us", time.Since(start).Microseconds()),
		slog.String("request_id", requestID),
	}
	level := slog.LevelInfo
	if status >= 500 {
		level = slog.LevelError
	}
	s.cfg.Logger.LogAttrs(r.Context(), level, "request", append(base, attrs...)...)
}

// --- GET /debug/slowest ---

// handleSlowest serves the flight recorder: the span trees of the slowest
// and the budget-truncated recoveries, JSON-encoded.
func (s *Server) handleSlowest(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (start the server with a Tracer)")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Tracer.Recorder().Snapshot())
}

// --- GET /debug/events ---

// defaultEventTail is how many recent wide events /debug/events returns
// when the request carries no n parameter.
const defaultEventTail = 50

// handleEvents tails the wide-event log: the most recent NDJSON lines,
// newest last, straight from the writer's in-memory ring (no disk read).
// ?n= bounds the line count.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	serveEventTail(w, r, s.cfg.EventLog)
}

func serveEventTail(w http.ResponseWriter, r *http.Request, log *eventlog.Writer) {
	if log == nil {
		writeError(w, http.StatusNotFound, "event log disabled (start the server with -event-log)")
		return
	}
	n := defaultEventTail
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, line := range log.Tail(n) {
		_, _ = w.Write(line)
	}
}

// --- GET /debug/slo ---

// sloResponse is the /debug/slo body.
type sloResponse struct {
	Objectives []slo.ObjectiveState `json:"objectives"`
}

// handleSLO serves the burn-rate engine's full state: per-objective
// cumulative SLI position, every window's burn rate against its
// threshold, and the alert flags.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	serveSLO(w, s.cfg.SLO)
}

func serveSLO(w http.ResponseWriter, ev *slo.Evaluator) {
	if ev == nil {
		writeError(w, http.StatusNotFound, "SLO engine disabled (start the server with objectives)")
		return
	}
	writeJSON(w, http.StatusOK, sloResponse{Objectives: ev.State()})
}

// DebugOptions selects what a debug mux serves. Every field is optional:
// an absent subsystem's endpoint answers 404 (pprof is always mounted).
type DebugOptions struct {
	// Tracer backs /debug/slowest.
	Tracer *obs.Tracer
	// Events backs /debug/events.
	Events *eventlog.Writer
	// SLO backs /debug/slo.
	SLO *slo.Evaluator
	// Metrics, when non-nil, mounts /metrics — for binaries (sigrec-scan)
	// whose debug listener is their only HTTP surface. sigrecd leaves it
	// nil; its service port already serves the exposition.
	Metrics *telemetry.Registry
	// Health, when non-nil, mounts /healthz returning its value as JSON
	// (200 always — a process answering at all is alive).
	Health func() any
	// Trace, when non-nil, mounts GET /debug/trace/{id} (see TraceHandler)
	// so the debug listener serves stitched cross-process traces.
	Trace http.Handler
}

// DebugHandler returns the diagnostics mux served on -debug-addr: the
// net/http/pprof endpoints plus whichever observability surfaces the
// options carry. It is separate from the main handler so profiling can
// stay off the service port, and shared by sigrecd and sigrec-scan so
// both binaries expose the same operator surface.
func DebugHandler(opts DebugOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/slowest", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			writeError(w, http.StatusNotFound, "tracing disabled")
			return
		}
		writeJSON(w, http.StatusOK, opts.Tracer.Recorder().Snapshot())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		serveEventTail(w, r, opts.Events)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		serveSLO(w, opts.SLO)
	})
	if opts.Trace != nil {
		mux.Handle("GET /debug/trace/{id}", opts.Trace)
	}
	if opts.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = opts.Metrics.Snapshot().WriteTo(w)
		})
	}
	if opts.Health != nil {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, opts.Health())
		})
	}
	return mux
}
