package server

import (
	"context"
	"errors"
	"sync"
)

// Admission errors. errQueueFull maps to HTTP 429 (+Retry-After);
// errDraining maps to 503.
var (
	errQueueFull = errors.New("server: admission queue full")
	errDraining  = errors.New("server: draining")
)

// job is one unit of recovery work queued for the worker pool. run is
// executed by exactly one worker; done is closed when it returns.
type job struct {
	run  func()
	done chan struct{}
}

// pool is a bounded worker pool behind a bounded admission queue: Workers
// goroutines drain a buffered channel of queueDepth jobs. Admission is
// explicit — trySubmit sheds load when the queue is full (the caller turns
// that into 429) and submit applies blocking backpressure for streaming
// batch items — so memory under overload is bounded by queueDepth jobs,
// never by the arrival rate.
type pool struct {
	mu     sync.RWMutex // guards closed + the jobs channel lifecycle
	closed bool
	jobs   chan *job
	wg     sync.WaitGroup
}

func newPool(workers, queueDepth int) *pool {
	p := &pool{jobs: make(chan *job, queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		mQueueDepth.Add(-1)
		mWorkersBusy.Add(1)
		j.run()
		mWorkersBusy.Add(-1)
		close(j.done)
	}
}

// trySubmit enqueues without blocking: errQueueFull when the queue is
// saturated, errDraining after close began.
func (p *pool) trySubmit(j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.jobs <- j:
		mQueueDepth.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

// submit blocks until queue space frees up or ctx expires. The wait is
// bounded: workers keep draining the queue until close, so a blocked
// submit proceeds within the runtime of the queued work ahead of it.
func (p *pool) submit(ctx context.Context, j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.jobs <- j:
		mQueueDepth.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queued returns the current admission-queue depth.
func (p *pool) queued() int { return len(p.jobs) }

// close stops intake and waits — bounded by ctx — for every queued and
// inflight job to finish (workers drain the channel before exiting).
func (p *pool) close(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
