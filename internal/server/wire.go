package server

import (
	"strings"

	"sigrec/internal/abi"
	"sigrec/internal/core"
)

// FunctionResult is one recovered function in the wire schema. The CLI's
// -json mode and the HTTP endpoints emit the same shape, so outputs are
// diffable in tests and downstream tooling parses one format.
type FunctionResult struct {
	Selector  string   `json:"selector"`
	Types     string   `json:"types"`
	Language  string   `json:"language"`
	Rules     []string `json:"rules,omitempty"`
	Known     string   `json:"knownSignature,omitempty"`
	Truncated bool     `json:"truncated,omitempty"`
}

// RecoverResponse is the recovery output for one contract.
type RecoverResponse struct {
	Functions []FunctionResult `json:"functions"`
	Truncated bool             `json:"truncated,omitempty"`
}

// BatchResult is one NDJSON line of POST /v1/recover/batch: the input line
// index plus either the recovery or a per-contract error. Lines stream in
// completion order; Index ties them back to the request.
type BatchResult struct {
	Index     int              `json:"index"`
	Functions []FunctionResult `json:"functions,omitempty"`
	Truncated bool             `json:"truncated,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// Annotate resolves a selector to a known human-readable signature (the
// CLI's -db lookup); nil disables annotation. The name is attached only
// when the database's parameter types agree with the recovery, so a stale
// database cannot overwrite a correct result.
type Annotate func(abi.Selector) (known string, ok bool)

// ResponseFromResult converts a recovery into the wire schema.
func ResponseFromResult(res core.Result, annotate Annotate) RecoverResponse {
	out := RecoverResponse{
		Functions: make([]FunctionResult, 0, len(res.Functions)),
		Truncated: res.Truncated,
	}
	for _, f := range res.Functions {
		out.Functions = append(out.Functions, functionResult(f, annotate))
	}
	return out
}

func functionResult(f core.RecoveredFunction, annotate Annotate) FunctionResult {
	jf := FunctionResult{
		Selector:  f.Selector.Hex(),
		Types:     f.TypeList(),
		Language:  f.Language.String(),
		Truncated: f.Truncated,
	}
	seen := map[string]bool{}
	for _, trail := range f.ParamRules {
		for _, r := range trail {
			if !seen[r.String()] {
				seen[r.String()] = true
				jf.Rules = append(jf.Rules, r.String())
			}
		}
	}
	if annotate != nil {
		if known, ok := annotate(f.Selector); ok && knownTypeList(known) == f.TypeList() {
			jf.Known = known
		}
	}
	return jf
}

// knownTypeList strips the name from a canonical "name(types)" signature.
func knownTypeList(canonical string) string {
	if i := strings.IndexByte(canonical, '('); i >= 0 {
		return canonical[i:]
	}
	return "()"
}
