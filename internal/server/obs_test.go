package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
	"sigrec/internal/slo"
	"sigrec/internal/telemetry"
)

// lockedBuffer makes a bytes.Buffer safe to share between the server's
// logging goroutine and the test's assertions.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestObsRequestIDEcho checks the request-ID contract end to end: a
// client-supplied X-Request-Id is echoed on the response, appears in the
// structured access log, and tags the recovery's flight-recorder entry —
// one join key across all three observability surfaces.
func TestObsRequestIDEcho(t *testing.T) {
	var logBuf lockedBuffer
	tracer := obs.New(obs.Config{})
	_, ts := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Tracer: tracer,
	})
	code, _ := compileSig(t, "f(address)")

	req, err := http.NewRequest("POST", ts.URL+"/v1/recover", strings.NewReader(fmt.Sprintf("%x", code)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "test-req-42" {
		t.Fatalf("echoed X-Request-Id = %q", got)
	}

	// The access log line is written in a deferred func after the response
	// body; poll briefly rather than racing it.
	waitFor(t, "access log line", func() bool {
		return strings.Contains(logBuf.String(), `"request_id":"test-req-42"`)
	})
	var line map[string]any
	if err := json.Unmarshal([]byte(logBuf.String()), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, logBuf.String())
	}
	if line["path"] != "/v1/recover" || line["status"] != float64(200) {
		t.Fatalf("log line = %v", line)
	}

	snap := tracer.Recorder().Snapshot()
	if snap.Recoveries != 1 {
		t.Fatalf("recoveries = %d", snap.Recoveries)
	}
	if len(snap.Slowest) != 1 || snap.Slowest[0].RequestID != "test-req-42" {
		t.Fatalf("flight-recorder entry = %+v", snap.Slowest)
	}
}

// TestObsRequestIDGenerated checks that a missing X-Request-Id is replaced
// by a generated 16-hex-character one, an overlong one is truncated, and
// hostile values (which a conforming client cannot even send) are rejected
// by the sanitizer.
func TestObsRequestIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _ := compileSig(t, "f(address)")
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)

	resp, _ := post(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", code))
	if got := resp.Header.Get("X-Request-Id"); !hexID.MatchString(got) {
		t.Fatalf("missing header: echoed ID %q, want generated 16-hex", got)
	}

	long := strings.Repeat("a", 200)
	req, err := http.NewRequest("POST", ts.URL+"/v1/recover", strings.NewReader(fmt.Sprintf("%x", code)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", long)
	lresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, lresp.Body)
	lresp.Body.Close()
	if got := lresp.Header.Get("X-Request-Id"); got != long[:maxRequestIDLen] {
		t.Fatalf("overlong header echoed as %q (len %d)", got, len(got))
	}

	for _, hostile := range []string{"evil\r\ninjected: header", "ctrl\x01byte", "utf8-\xc3\xa9"} {
		if got := sanitizeRequestID(hostile); got != "" {
			t.Fatalf("sanitizeRequestID(%q) = %q, want rejection", hostile, got)
		}
	}
}

// TestObsSlowestEndpoint truncates a recovery on purpose (tiny step
// budget) and checks GET /debug/slowest serves its full span tree: the
// recovery root with the queue/disassemble/dispatch phases underneath.
func TestObsSlowestEndpoint(t *testing.T) {
	tracer := obs.New(obs.Config{})
	_, ts := newTestServer(t, Config{Tracer: tracer, StepBudget: 40})
	code, _ := compileSig(t, "f(uint256[],address)")
	resp, _ := post(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", code))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover status = %d", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/debug/slowest")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("slowest status = %d", sresp.StatusCode)
	}
	var snap struct {
		Recoveries    uint64 `json:"recoveries"`
		TruncatedSeen uint64 `json:"truncated_seen"`
		Truncated     []struct {
			Truncated bool      `json:"truncated"`
			Trace     *obs.Span `json:"trace"`
		} `json:"truncated"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Recoveries != 1 || snap.TruncatedSeen != 1 || len(snap.Truncated) != 1 {
		t.Fatalf("snapshot counts = %+v", snap)
	}
	rec := snap.Truncated[0]
	if !rec.Truncated || rec.Trace == nil || rec.Trace.Name != "recovery" {
		t.Fatalf("truncated record = %+v", rec)
	}
	phases := map[string]bool{}
	for _, c := range rec.Trace.Children {
		phases[c.Name] = true
	}
	for _, want := range []string{"queue", "disassemble", "dispatch"} {
		if !phases[want] {
			t.Fatalf("span tree missing %q phase: have %v", want, phases)
		}
	}
}

// TestObsSlowestDisabled: without a tracer the endpoint 404s instead of
// serving an empty recorder, so probes can tell "off" from "quiet".
func TestObsSlowestDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/slowest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestObsMetricsConformance runs the strict Prometheus text-format linter
// over the complete served /metrics output — every family the pipeline
// and the serving layer register, including the labeled rule counters and
// the build-info gauge.
func TestObsMetricsConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _ := compileSig(t, "f(address)")
	post(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", code))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`sigrec_rule_fired_total{rule="R4"}`,
		`sigrec_rule_fired_total{rule="R16"}`,
		"sigrec_build_info{",
		"# HELP sigrec_rule_fired_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if errs := telemetry.Lint(out); len(errs) != 0 {
		t.Errorf("/metrics fails the text-format linter:\n  %s", strings.Join(errs, "\n  "))
	}
}

// TestObsDebugHandler exercises the -debug-addr mux: pprof answers,
// /debug/slowest serves the shared tracer's recorder, absent subsystems
// (event log, SLO engine, metrics, health) answer 404, and each mounts
// when its option is set.
func TestObsDebugHandler(t *testing.T) {
	tracer := obs.New(obs.Config{})
	ts := httptest.NewServer(DebugHandler(DebugOptions{Tracer: tracer}))
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/slowest"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/debug/events", "/debug/slo", "/metrics", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without its subsystem = %d, want 404", path, resp.StatusCode)
		}
	}

	w, err := eventlog.New(eventlog.Config{Path: filepath.Join(t.TempDir(), "ev.ndjson")})
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(&eventlog.Event{RequestID: "tail-me", DurUS: 7})
	if err := w.Close(); err != nil { // flushes the tail ring too
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	reg.Counter("dbg_requests_total").Inc()
	sloEval := slo.New(slo.Config{
		Objectives: []slo.Objective{{
			Name:   "availability",
			Target: 0.999,
			Source: slo.CounterSource{
				Total:  reg.Counter("dbg_requests_total"),
				Errors: reg.Counter("dbg_errors_total"),
			},
		}},
		Registry: reg,
	})
	ts2 := httptest.NewServer(DebugHandler(DebugOptions{
		Tracer:  tracer,
		Events:  w,
		SLO:     sloEval,
		Metrics: reg,
		Health:  func() any { return map[string]string{"status": "ok"} },
	}))
	defer ts2.Close()

	resp, err := http.Get(ts2.URL + "/debug/events?n=10")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "tail-me") {
		t.Fatalf("GET /debug/events = %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts2.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var sloBody sloResponse
	err = json.NewDecoder(resp.Body).Decode(&sloBody)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/slo = %d err %v", resp.StatusCode, err)
	}
	if len(sloBody.Objectives) != 1 || sloBody.Objectives[0].Name != "availability" {
		t.Fatalf("/debug/slo objectives = %+v", sloBody.Objectives)
	}

	resp, err = http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "dbg_requests_total 1") {
		t.Fatalf("GET /metrics = %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("GET /healthz = %d body %q", resp.StatusCode, body)
	}
}

// TestObsBatchSharedRequestID checks that every item of a batch recovery
// lands in the flight recorder under the batch request's ID.
func TestObsBatchSharedRequestID(t *testing.T) {
	tracer := obs.New(obs.Config{})
	_, ts := newTestServer(t, Config{Tracer: tracer})
	a, _ := compileSig(t, "f(address)")
	b, _ := compileSig(t, "f(uint8)")

	body := fmt.Sprintf("%x\n%x\n", a, b)
	req, err := http.NewRequest("POST", ts.URL+"/v1/recover/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "batch-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "batch-7" {
		t.Fatalf("echoed X-Request-Id = %q", got)
	}

	snap := tracer.Recorder().Snapshot()
	if snap.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", snap.Recoveries)
	}
	for _, r := range snap.Slowest {
		if r.RequestID != "batch-7" {
			t.Fatalf("item request ID = %q, want batch-7", r.RequestID)
		}
	}
}
