package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sigrec/internal/core"
	"sigrec/internal/obs"
	"sigrec/internal/otlp"
	"sigrec/internal/slo"
)

// otlpCollector is an in-process OTLP/HTTP collector: it accepts the
// JSON bodies a real collector would and retains what the exporter
// shipped, so the e2e test can reconcile exported telemetry against the
// server's own accounting exactly.
type otlpCollector struct {
	srv *httptest.Server

	mu            sync.Mutex
	spans         []collectedSpan
	resourceAttrs map[string]string
	lastMetrics   map[string][]metricPoint // name -> datapoints of the newest payload
}

type collectedSpan struct {
	TraceID      string
	SpanID       string
	ParentSpanID string
	Name         string
	Attrs        map[string]string
}

type metricPoint struct {
	Attrs    map[string]string
	AsInt    string
	AsDouble *float64
}

// wire-shape mirrors of the OTLP JSON bodies, decode-only.
type colAttr struct {
	Key   string `json:"key"`
	Value struct {
		StringValue *string  `json:"stringValue"`
		IntValue    *string  `json:"intValue"`
		BoolValue   *bool    `json:"boolValue"`
		DoubleValue *float64 `json:"doubleValue"`
	} `json:"value"`
}

func attrMap(attrs []colAttr) map[string]string {
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		switch {
		case a.Value.StringValue != nil:
			m[a.Key] = *a.Value.StringValue
		case a.Value.IntValue != nil:
			m[a.Key] = *a.Value.IntValue
		case a.Value.BoolValue != nil:
			m[a.Key] = fmt.Sprint(*a.Value.BoolValue)
		case a.Value.DoubleValue != nil:
			m[a.Key] = fmt.Sprint(*a.Value.DoubleValue)
		}
	}
	return m
}

func newOTLPCollector(t *testing.T) *otlpCollector {
	t.Helper()
	c := &otlpCollector{
		resourceAttrs: map[string]string{},
		lastMetrics:   map[string][]metricPoint{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", c.handleTraces)
	mux.HandleFunc("POST /v1/metrics", c.handleMetrics)
	c.srv = httptest.NewServer(mux)
	t.Cleanup(c.srv.Close)
	return c
}

func (c *otlpCollector) handleTraces(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []colAttr `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string    `json:"traceId"`
					SpanID       string    `json:"spanId"`
					ParentSpanID string    `json:"parentSpanId"`
					Name         string    `json:"name"`
					Attributes   []colAttr `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rs := range req.ResourceSpans {
		for k, v := range attrMap(rs.Resource.Attributes) {
			c.resourceAttrs[k] = v
		}
		for _, ss := range rs.ScopeSpans {
			for _, s := range ss.Spans {
				c.spans = append(c.spans, collectedSpan{
					TraceID:      s.TraceID,
					SpanID:       s.SpanID,
					ParentSpanID: s.ParentSpanID,
					Name:         s.Name,
					Attrs:        attrMap(s.Attributes),
				})
			}
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (c *otlpCollector) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type dataPoint struct {
		Attributes []colAttr `json:"attributes"`
		AsInt      string    `json:"asInt"`
		AsDouble   *float64  `json:"asDouble"`
	}
	var req struct {
		ResourceMetrics []struct {
			ScopeMetrics []struct {
				Metrics []struct {
					Name  string `json:"name"`
					Sum   *struct{ DataPoints []dataPoint }
					Gauge *struct{ DataPoints []dataPoint }
				} `json:"metrics"`
			} `json:"scopeMetrics"`
		} `json:"resourceMetrics"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastMetrics = map[string][]metricPoint{}
	for _, rm := range req.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				var pts []dataPoint
				if m.Sum != nil {
					pts = m.Sum.DataPoints
				} else if m.Gauge != nil {
					pts = m.Gauge.DataPoints
				}
				for _, p := range pts {
					c.lastMetrics[m.Name] = append(c.lastMetrics[m.Name], metricPoint{
						Attrs:    attrMap(p.Attributes),
						AsInt:    p.AsInt,
						AsDouble: p.AsDouble,
					})
				}
			}
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (c *otlpCollector) snapshot() ([]collectedSpan, map[string]string, map[string][]metricPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	spans := append([]collectedSpan(nil), c.spans...)
	res := make(map[string]string, len(c.resourceAttrs))
	for k, v := range c.resourceAttrs {
		res[k] = v
	}
	metrics := make(map[string][]metricPoint, len(c.lastMetrics))
	for k, v := range c.lastMetrics {
		metrics[k] = v
	}
	return spans, res, metrics
}

// TestObsOTLPExportE2E drives a live sigrecd serving stack — tracer sink
// -> exporter -> in-process OTLP collector — under real recovery load and
// reconciles the exported telemetry exactly:
//
//   - exported root spans == flight-recorder recovery count == the
//     sigrec_recoveries_total delta (every recovery exported, none
//     duplicated, none invented),
//   - batch items share one trace as sibling roots,
//   - phase spans parent correctly under their roots,
//   - resource attributes carry the service identity, and
//   - the final metrics snapshot agrees with the collector's own span
//     tally and the live registry.
//
// On failure the live /debug/slo state is written into OBS_E2E_ARTIFACTS
// (when set) so CI uploads the burn-rate engine's view of the run.
func TestObsOTLPExportE2E(t *testing.T) {
	col := newOTLPCollector(t)
	reg := core.Metrics()
	base := reg.Counter("sigrec_recoveries_total").Load()
	spansExportedBase := reg.Counter("sigrec_otlp_spans_exported_total").Load()

	exp := otlp.New(otlp.Config{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour, // flush on Close only: deterministic delivery
		ServiceName: "sigrecd-e2e",
		Resource:    map[string]string{"sigrec.shard": "e2e-0", "service.version": "test"},
		Registry:    reg,
	})
	tracer := obs.New(obs.Config{Slowest: 64, Sink: exp.Sink()})
	sloEval := slo.New(slo.Config{
		Objectives: []slo.Objective{{
			Name:   "availability",
			Target: 0.999,
			Source: slo.CounterSource{
				Total:  reg.Counter("sigrecd_recover_requests_total"),
				Errors: reg.Counter("sigrecd_recover_errors_total"),
			},
		}},
		Registry: reg,
	})
	_, ts := newTestServer(t, Config{Tracer: tracer, SLO: sloEval})
	defer func() {
		if !t.Failed() {
			return
		}
		if dir := os.Getenv("OBS_E2E_ARTIFACTS"); dir != "" {
			resp, err := http.Get(ts.URL + "/debug/slo")
			if err != nil {
				t.Logf("artifact: /debug/slo fetch failed: %v", err)
				return
			}
			defer resp.Body.Close()
			var state json.RawMessage
			if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
				t.Logf("artifact: /debug/slo decode failed: %v", err)
				return
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Logf("artifact: mkdir failed: %v", err)
				return
			}
			path := filepath.Join(dir, "slo-state.json")
			if err := os.WriteFile(path, state, 0o644); err != nil {
				t.Logf("artifact: write failed: %v", err)
			} else {
				t.Logf("artifact: wrote %s", path)
			}
		}
	}()
	// The exporter stays unstarted while load is driven: finished
	// recoveries accumulate in its bounded queue (visible through the
	// queue-depth gauge), and Start+Close afterwards ships everything in
	// one deterministic flush — no timing dependence on the flush loop.

	// 10 unique single recoveries: unique bytecode defeats the result
	// cache and the coalescer, so each POST is exactly one recovery.
	singles := []string{
		"f(address)", "f(uint8)", "f(uint16)", "f(uint32)", "f(uint64)",
		"f(bool)", "f(bytes4)", "f(bytes8)", "f(uint128)", "f(int8)",
	}
	for _, sig := range singles {
		code, _ := compileSig(t, sig)
		resp, _ := post(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", code))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recover %s status = %d", sig, resp.StatusCode)
		}
	}
	// One 2-item batch under a fixed request id: both items must export as
	// sibling roots of one shared trace.
	ba, _ := compileSig(t, "f(int16)")
	bb, _ := compileSig(t, "f(int32)")
	req, err := http.NewRequest("POST", ts.URL+"/v1/recover/batch",
		strings.NewReader(fmt.Sprintf("%x\n%x\n", ba, bb)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "otlp-batch-e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	const wantRecoveries = 12 // 10 singles + 2 batch items

	// The sink enqueues on the handler goroutine right after the flight
	// recorder sees the record; wait until all twelve sit in the queue,
	// then run the export loop through its drain path.
	waitFor(t, "all recoveries enqueued", func() bool {
		return reg.Snapshot().Gauges["sigrec_otlp_queue_depth"] == wantRecoveries
	})
	exp.Start()
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := exp.Close(cctx); err != nil {
		t.Fatalf("exporter close: %v", err)
	}

	spans, resAttrs, metrics := col.snapshot()

	// --- reconciliation: roots == flight recorder == counter delta ---
	var roots []collectedSpan
	byID := map[string]collectedSpan{}
	for _, s := range spans {
		byID[s.SpanID] = s
		if s.Name == "recovery" && s.ParentSpanID == "" {
			roots = append(roots, s)
		}
	}
	frRecoveries := tracer.Recorder().Snapshot().Recoveries
	counterDelta := reg.Counter("sigrec_recoveries_total").Load() - base
	if uint64(len(roots)) != frRecoveries || counterDelta != frRecoveries {
		t.Fatalf("reconciliation broken: exported roots = %d, flight recorder = %d, counter delta = %d",
			len(roots), frRecoveries, counterDelta)
	}
	if frRecoveries != wantRecoveries {
		t.Fatalf("recoveries = %d, want %d", frRecoveries, wantRecoveries)
	}
	if uint64(len(spans)) == frRecoveries {
		t.Fatal("only root spans exported: phase children missing")
	}

	// --- batch items: one trace, sibling roots, distinct span ids ---
	var batchRoots []collectedSpan
	for _, r := range roots {
		if r.Attrs["sigrec.request_id"] == "otlp-batch-e2e" {
			batchRoots = append(batchRoots, r)
		}
	}
	if len(batchRoots) != 2 {
		t.Fatalf("batch roots = %d, want 2", len(batchRoots))
	}
	if batchRoots[0].TraceID != batchRoots[1].TraceID {
		t.Errorf("batch items split traces: %s vs %s", batchRoots[0].TraceID, batchRoots[1].TraceID)
	}
	if batchRoots[0].SpanID == batchRoots[1].SpanID {
		t.Errorf("batch items share a span id %s", batchRoots[0].SpanID)
	}

	// --- child spans parent inside their own trace ---
	for _, s := range spans {
		if s.ParentSpanID == "" {
			continue
		}
		parent, ok := byID[s.ParentSpanID]
		if !ok {
			t.Fatalf("span %s (%s) has unexported parent %s", s.SpanID, s.Name, s.ParentSpanID)
		}
		if parent.TraceID != s.TraceID {
			t.Fatalf("span %s crosses traces: %s vs parent %s", s.Name, s.TraceID, parent.TraceID)
		}
	}

	// --- resource identity ---
	if resAttrs["service.name"] != "sigrecd-e2e" || resAttrs["sigrec.shard"] != "e2e-0" {
		t.Errorf("resource attributes = %v", resAttrs)
	}

	// --- final metrics snapshot agrees with the collector and registry ---
	wantSpans := fmt.Sprint(reg.Counter("sigrec_otlp_spans_exported_total").Load())
	if pts := metrics["sigrec_otlp_spans_exported_total"]; len(pts) != 1 || pts[0].AsInt != wantSpans {
		t.Errorf("final export's sigrec_otlp_spans_exported_total = %+v, want %s", pts, wantSpans)
	}
	shipped := reg.Counter("sigrec_otlp_spans_exported_total").Load() - spansExportedBase
	if shipped != uint64(len(spans)) {
		t.Errorf("spans-exported counter delta = %d, collector holds %d spans", shipped, len(spans))
	}
	if pts := metrics["sigrec_recoveries_total"]; len(pts) != 1 ||
		pts[0].AsInt != fmt.Sprint(reg.Counter("sigrec_recoveries_total").Load()) {
		t.Errorf("final export's sigrec_recoveries_total = %+v, registry holds %d",
			pts, reg.Counter("sigrec_recoveries_total").Load())
	}
	for _, reason := range []string{"queue_full", "send_failed"} {
		if pts := metrics["sigrec_otlp_dropped_total"]; len(pts) != 0 {
			for _, p := range pts {
				if p.Attrs["reason"] == reason && p.AsInt != "0" {
					t.Errorf("exporter dropped records (%s = %s) on a healthy collector", reason, p.AsInt)
				}
			}
		}
	}

	// --- the SLO engine saw the load and serves its state live ---
	sloEval.Tick()
	sresp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var sloState sloResponse
	err = json.NewDecoder(sresp.Body).Decode(&sloState)
	sresp.Body.Close()
	if err != nil || sresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo = %d err %v", sresp.StatusCode, err)
	}
	if len(sloState.Objectives) != 1 || sloState.Objectives[0].Name != "availability" {
		t.Fatalf("/debug/slo objectives = %+v", sloState.Objectives)
	}
	// The availability SLI counts /v1/recover requests; the batch rode a
	// different endpoint, so only the singles appear.
	if got := sloState.Objectives[0].CumulativeTotal; got < float64(len(singles)) {
		t.Errorf("SLO cumulative total = %v, want >= %d requests", got, len(singles))
	}
}
