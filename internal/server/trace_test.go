package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"sigrec/internal/obs"
)

// traceContextCount reads one result label of sigrec_trace_context_total
// from the shared registry.
func traceContextCount(result string) uint64 {
	return reg.Snapshot().LabeledCounters["sigrec_trace_context_total"].Values[result]
}

// postTraced posts a recovery with optional traceparent/request-id headers.
func postTraced(t *testing.T, url, body, requestID, traceparent string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestTraceContextInbound pins the serving layer's W3C policy end to end:
// a valid traceparent is adopted (trace id and remote parent land on the
// flight record), a malformed one starts a fresh root without erroring the
// request, and each disposition moves the counter family.
func TestTraceContextInbound(t *testing.T) {
	tracer := obs.New(obs.Config{Slowest: 64})
	_, ts := newTestServer(t, Config{Tracer: tracer})
	// Distinct bytecode per request: a repeated body would hit the cache,
	// and cache hits deliberately leave no flight-recorder entry.
	codeA, _ := compileSig(t, "f(address)")
	codeB, _ := compileSig(t, "g(uint64)")
	codeC, _ := compileSig(t, "h(bytes32)")

	parentTrace := "11112222333344445555666677778888"
	parentSpan := "aaaabbbbccccdddd"
	valid := "00-" + parentTrace + "-" + parentSpan + "-01"

	okBefore, malBefore, absBefore := traceContextCount("ok"), traceContextCount("malformed"), traceContextCount("absent")

	if resp := postTraced(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", codeA), "ctx-adopt", valid); resp.StatusCode != http.StatusOK {
		t.Fatalf("traced request status = %d", resp.StatusCode)
	}
	if resp := postTraced(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", codeB), "ctx-malformed", "00-borked"); resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed traceparent broke the request: %d", resp.StatusCode)
	}
	if resp := postTraced(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", codeC), "ctx-absent", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced request status = %d", resp.StatusCode)
	}

	if d := traceContextCount("ok") - okBefore; d != 1 {
		t.Errorf("ok delta = %d, want 1", d)
	}
	if d := traceContextCount("malformed") - malBefore; d != 1 {
		t.Errorf("malformed delta = %d, want 1", d)
	}
	if d := traceContextCount("absent") - absBefore; d != 1 {
		t.Errorf("absent delta = %d, want 1", d)
	}

	// Adopted: the record carries the remote trace id and parent span id.
	recs := tracer.Recorder().Find(parentTrace)
	if len(recs) != 1 {
		t.Fatalf("records under adopted trace = %d, want 1", len(recs))
	}
	if recs[0].ParentSpanID != parentSpan || recs[0].RequestID != "ctx-adopt" {
		t.Fatalf("adopted record = %+v", recs[0])
	}

	// Malformed and absent: fresh roots under the request-id derivation,
	// with no remote parent.
	for _, id := range []string{"ctx-malformed", "ctx-absent"} {
		recs := tracer.Recorder().Find(obs.DeriveTraceID(id))
		if len(recs) != 1 || recs[0].ParentSpanID != "" {
			t.Fatalf("fresh root for %s: %+v", id, recs)
		}
	}
}

// TestTraceHandlerLocal drives GET /debug/trace/{id} on one process: the
// span set for a served request is retrievable by request id and by raw
// trace id, parentage is intact, and an unknown id answers empty, not 404.
func TestTraceHandlerLocal(t *testing.T) {
	tracer := obs.New(obs.Config{Slowest: 64})
	_, ts := newTestServer(t, Config{Tracer: tracer, Service: "shard-a"})
	code, _ := compileSig(t, "f(uint256)")
	if resp := postTraced(t, ts.URL+"/v1/recover", fmt.Sprintf("%x", code), "trace-me", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("recover status = %d", resp.StatusCode)
	}

	tid := obs.DeriveTraceID("trace-me")
	for _, path := range []string{"/debug/trace/trace-me", "/debug/trace/" + tid} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var st StitchedTrace
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status=%d err=%v", path, resp.StatusCode, err)
		}
		if st.TraceID != tid {
			t.Fatalf("trace id = %s, want %s", st.TraceID, tid)
		}
		if len(st.Spans) == 0 || st.Spans[0].Name != "recovery" {
			t.Fatalf("spans = %+v", st.Spans)
		}
		if st.Orphans != 0 {
			t.Fatalf("orphans = %d in a single-process trace", st.Orphans)
		}
		if st.Sources["shard-a"] != len(st.Spans) {
			t.Fatalf("sources = %v over %d spans", st.Sources, len(st.Spans))
		}
		// Every non-root span's parent must resolve within the set.
		ids := map[string]bool{}
		for _, sp := range st.Spans {
			if sp.TraceID != tid || sp.SpanID == "" {
				t.Fatalf("bad span identity: %+v", sp)
			}
			ids[sp.SpanID] = true
		}
		for _, sp := range st.Spans {
			if sp.ParentSpanID != "" && !ids[sp.ParentSpanID] {
				t.Fatalf("span %s parent %s not in set", sp.SpanID, sp.ParentSpanID)
			}
		}
	}

	// Unknown trace: empty stitched answer.
	resp, err := http.Get(ts.URL + "/debug/trace/never-served")
	if err != nil {
		t.Fatal(err)
	}
	var st StitchedTrace
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Spans) != 0 {
		t.Fatalf("unknown trace returned %d spans", len(st.Spans))
	}
}

// TestTraceHandlerFanout stitches across two processes: a request served
// by a peer is visible through this server's /debug/trace via fan-out,
// tagged with the peer's service name, and the ?local=1 recursion guard
// keeps the peer from fanning out in turn.
func TestTraceHandlerFanout(t *testing.T) {
	peerTracer := obs.New(obs.Config{Slowest: 64})
	_, peer := newTestServer(t, Config{Tracer: peerTracer, Service: "shard-b"})

	frontTracer := obs.New(obs.Config{Slowest: 64})
	_, front := newTestServer(t, Config{
		Tracer:     frontTracer,
		Service:    "shard-a",
		TracePeers: map[string]string{"shard-b": peer.URL},
	})

	code, _ := compileSig(t, "f(bool)")
	if resp := postTraced(t, peer.URL+"/v1/recover", fmt.Sprintf("%x", code), "peer-req", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("peer recover status = %d", resp.StatusCode)
	}

	resp, err := http.Get(front.URL + "/debug/trace/peer-req")
	if err != nil {
		t.Fatal(err)
	}
	var st StitchedTrace
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Spans) == 0 {
		t.Fatal("fan-out found no spans for a request the peer served")
	}
	if st.Sources["shard-b"] != len(st.Spans) || st.Sources["shard-a"] != 0 {
		t.Fatalf("sources = %v", st.Sources)
	}

	// local=1 answers only from the local recorder — the recursion guard.
	resp, err = http.Get(front.URL + "/debug/trace/peer-req?local=1")
	if err != nil {
		t.Fatal(err)
	}
	var local StitchedTrace
	err = json.NewDecoder(resp.Body).Decode(&local)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Spans) != 0 {
		t.Fatalf("local=1 leaked %d peer spans", len(local.Spans))
	}
}
