package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"sigrec/internal/corpus"
)

// TestBatchLoadSmoke replays a 200-contract corpus through the batch
// endpoint with the real pipeline — the load smoke test `make race` runs
// under the race detector. Every line must come back exactly once, and
// the clue-rich entries must recover their function.
func TestBatchLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test skipped in -short mode")
	}
	c, err := corpus.Generate(corpus.Config{Seed: 7, Solidity: 160, Vyper: 40, MaxParams: 4})
	if err != nil {
		t.Fatal(err)
	}
	entries := c.Entries
	if len(entries) != 200 {
		t.Fatalf("corpus has %d entries, want 200", len(entries))
	}

	_, ts := newTestServer(t, Config{QueueDepth: 256})
	var body bytes.Buffer
	for _, e := range entries {
		fmt.Fprintf(&body, "0x%x\n", e.Code)
	}
	resp, err := http.Post(ts.URL+"/v1/recover/batch", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	seen := make(map[int]bool, len(entries))
	recovered := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var br BatchResult
		if err := json.Unmarshal(sc.Bytes(), &br); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if br.Index < 0 || br.Index >= len(entries) || seen[br.Index] {
			t.Fatalf("bad or duplicate index %d", br.Index)
		}
		seen[br.Index] = true
		if br.Error != "" {
			t.Errorf("index %d: server-side error %q", br.Index, br.Error)
			continue
		}
		want := entries[br.Index].Sig.Selector().Hex()
		for _, f := range br.Functions {
			if f.Selector == want {
				recovered++
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(entries) {
		t.Fatalf("got %d result lines, want %d", len(seen), len(entries))
	}
	// Recovery accuracy belongs to the corpus tests; here we only require
	// that the serving layer did not lose or mangle work in flight.
	if recovered < len(entries)*8/10 {
		t.Fatalf("only %d/%d functions recovered end-to-end", recovered, len(entries))
	}
}

// BenchmarkServerThroughput measures served requests per second through
// the full HTTP stack: a mixed set of contracts with the shared cache
// enabled, so steady state exercises the serving layer (routing,
// admission, coalescing, cache hit) rather than TASE. ns/op is wall time
// per request across the parallel clients; cmd/benchjson derives
// req_per_sec = 1e9 / ns_per_op.
func BenchmarkServerThroughput(b *testing.B) {
	sigs := []string{
		"transfer(address,uint256)",
		"approve(address,uint256)",
		"balanceOf(address)",
		"mint(address,uint256)",
		"burn(uint256)",
		"setOwner(address)",
		"deposit(uint256,bytes32)",
		"withdraw(uint256)",
	}
	bodies := make([][]byte, len(sigs))
	for i, sigStr := range sigs {
		code, _ := compileSig(b, sigStr)
		bodies[i] = []byte(fmt.Sprintf("0x%x", code))
	}
	s := New(Config{QueueDepth: 1024})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drain every response and allow one idle connection per client
	// goroutine: an undrained body forces the transport to discard the
	// connection, so without this the benchmark measures TCP handshakes
	// (~30% of CPU) instead of the serving layer.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 64
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			resp, err := client.Post(ts.URL+"/v1/recover", "text/plain", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}
