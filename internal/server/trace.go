package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"sigrec/internal/obs"
)

// DefaultTraceFanoutTimeout bounds the per-peer fetch when stitching a
// cross-process trace.
const DefaultTraceFanoutTimeout = 2 * time.Second

// TraceOptions wires a GET /debug/trace/{id} handler.
type TraceOptions struct {
	// Service tags locally produced spans with the process that recorded
	// them (router, shard id, scanner).
	Service string
	// Tracer supplies the local flight recorder the trace is read from.
	// The recorder only retains the slowest/truncated recoveries, so the
	// handler answers for traces it kept — size the recorder past the
	// traffic volume (e.g. -trace-slowest 4096) to retain everything.
	Tracer *obs.Tracer
	// Peers maps peer service name -> base URL; unless the request says
	// ?local=1, the handler fans out to every peer's /debug/trace (with
	// local=1, so fan-out never recurses) and stitches the answers.
	Peers map[string]string
	// Client and Timeout shape the peer fan-out (defaults: shared client,
	// DefaultTraceFanoutTimeout).
	Client  *http.Client
	Timeout time.Duration
}

// StitchedTrace is the assembled cross-process view of one trace id:
// every retained span from this process and (on fan-out) its peers,
// deduplicated by span id and ordered by start time.
type StitchedTrace struct {
	TraceID string         `json:"trace_id"`
	Spans   []obs.FlatSpan `json:"spans"`
	// Sources counts contributed spans per service, fan-out peers included.
	Sources map[string]int `json:"sources,omitempty"`
	// Orphans counts spans whose parent id is absent from the set — a
	// remote parent whose process did not retain (or did not survive to
	// serve) its half of the trace, e.g. across a shard kill window.
	Orphans int `json:"orphans"`
}

// TraceHandler serves GET /debug/trace/{id}: the stitched cross-process
// span set for a trace. {id} is a 32-hex trace id, or any other string
// treated as a request id and mapped through the deterministic derivation
// — `/debug/trace/client-42` answers for the request the fleet served as
// client-42 without the caller hashing anything.
func TraceHandler(opts TraceOptions) http.Handler {
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTraceFanoutTimeout
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			writeError(w, http.StatusNotFound, "tracing disabled (start with a trace recorder)")
			return
		}
		tid := resolveTraceID(r.PathValue("id"))
		spans := localTraceSpans(opts.Tracer, opts.Service, tid)
		if r.URL.Query().Get("local") == "" && len(opts.Peers) > 0 {
			spans = append(spans, peerTraceSpans(r.Context(), client, timeout, opts.Peers, tid)...)
		}
		writeJSON(w, http.StatusOK, stitchTrace(tid, spans))
	})
}

// resolveTraceID maps the path id onto a trace id: 32-hex passes through,
// anything else derives as a request id.
func resolveTraceID(id string) string {
	if len(id) == 32 && isLowerHex(id) {
		return id
	}
	return obs.DeriveTraceID(id)
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// localTraceSpans flattens every retained local record of the trace.
func localTraceSpans(tracer *obs.Tracer, service, tid string) []obs.FlatSpan {
	var spans []obs.FlatSpan
	for _, rec := range tracer.Recorder().Find(tid) {
		spans = append(spans, obs.FlattenRecord(rec, service)...)
	}
	return spans
}

// peerTraceSpans fans the trace lookup out to every peer concurrently and
// pools whatever they retained. Peer failures are skipped, not errors:
// a dead shard's half of the trace shows up as orphaned spans instead.
func peerTraceSpans(ctx context.Context, client *http.Client, timeout time.Duration, peers map[string]string, tid string) []obs.FlatSpan {
	var (
		mu    sync.Mutex
		spans []obs.FlatSpan
		wg    sync.WaitGroup
	)
	for name, base := range peers {
		wg.Add(1)
		go func(name, base string) {
			defer wg.Done()
			got := fetchPeerTrace(ctx, client, timeout, base, tid)
			for i := range got {
				if got[i].Service == "" {
					got[i].Service = name
				}
			}
			mu.Lock()
			spans = append(spans, got...)
			mu.Unlock()
		}(name, base)
	}
	wg.Wait()
	return spans
}

func fetchPeerTrace(ctx context.Context, client *http.Client, timeout time.Duration, base, tid string) []obs.FlatSpan {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/trace/"+tid+"?local=1", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st StitchedTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&st); err != nil {
		return nil
	}
	return st.Spans
}

// stitchTrace dedupes, orders, and annotates the pooled spans.
func stitchTrace(tid string, spans []obs.FlatSpan) StitchedTrace {
	st := StitchedTrace{TraceID: tid, Sources: map[string]int{}}
	have := make(map[string]bool, len(spans))
	for _, sp := range spans {
		if sp.TraceID != tid || have[sp.SpanID] {
			continue
		}
		have[sp.SpanID] = true
		st.Spans = append(st.Spans, sp)
		st.Sources[sp.Service]++
	}
	sort.Slice(st.Spans, func(i, j int) bool {
		if st.Spans[i].StartUnixNano != st.Spans[j].StartUnixNano {
			return st.Spans[i].StartUnixNano < st.Spans[j].StartUnixNano
		}
		return st.Spans[i].SpanID < st.Spans[j].SpanID
	})
	for _, sp := range st.Spans {
		if sp.ParentSpanID != "" && !have[sp.ParentSpanID] {
			st.Orphans++
		}
	}
	return st
}
