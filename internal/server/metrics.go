package server

import (
	"sigrec/internal/core"
	"sigrec/internal/obs"
	"sigrec/internal/telemetry"
)

// The serving layer reports into the same registry as the recovery
// pipeline, so GET /metrics serves pipeline and HTTP series in one
// exposition and the existing sigrec_* counters appear alongside the new
// sigrecd_* ones.
var reg = core.Metrics()

// endpointMetrics instruments one HTTP endpoint: request and outcome
// counters, an E3-bucket latency histogram, and an inflight gauge.
type endpointMetrics struct {
	requests *telemetry.Counter
	badInput *telemetry.Counter // 4xx: malformed bytecode or body
	shed     *telemetry.Counter // 429: admission queue full
	errors   *telemetry.Counter // 5xx
	latency  *telemetry.Histogram
	inflight *telemetry.Gauge
}

func newEndpointMetrics(name string) *endpointMetrics {
	prefix := "sigrecd_" + name
	return &endpointMetrics{
		requests: reg.Counter(prefix + "_requests_total"),
		badInput: reg.Counter(prefix + "_bad_input_total"),
		shed:     reg.Counter(prefix + "_shed_total"),
		errors:   reg.Counter(prefix + "_errors_total"),
		latency:  reg.Histogram(prefix+"_duration_microseconds", nil),
		inflight: reg.Gauge(prefix + "_inflight"),
	}
}

var (
	mRecover   = newEndpointMetrics("recover")
	mBatch     = newEndpointMetrics("batch")
	mMetricsEP = newEndpointMetrics("metrics")
	mHealthz   = newEndpointMetrics("healthz")

	// Pool-level series: queued jobs awaiting a worker, workers mid-
	// recovery, and per-contract batch volume.
	mQueueDepth     = reg.Gauge("sigrecd_queue_depth")
	mWorkersBusy    = reg.Gauge("sigrecd_workers_busy")
	mBatchContracts = reg.Counter("sigrecd_batch_contracts_total")

	// mTraceContext meters inbound W3C trace-context extraction, one count
	// per recover/batch request: ok (valid traceparent adopted), absent,
	// or malformed (fresh root started instead).
	mTraceContext = NewTraceContextMetric(reg)
)

// NewTraceContextMetric registers the sigrec_trace_context_total family
// with its help text and pre-registers every result label so the series
// appear on the exposition from startup. Exported so the cluster router
// registers the identical family (help text, labels) in its own registry.
func NewTraceContextMetric(r *telemetry.Registry) *telemetry.CounterVec {
	r.SetHelp("sigrec_trace_context_total", "Inbound W3C traceparent extractions by result: ok, absent, or malformed (malformed headers start a fresh trace root)")
	v := r.CounterVec("sigrec_trace_context_total", "result")
	for _, res := range []string{obs.ExtractOK, obs.ExtractAbsent, obs.ExtractMalformed} {
		v.With(res)
	}
	return v
}
