package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/eventlog"
	"sigrec/internal/telemetry"
)

// TestAnalyticsE2E is the offline-analytics acceptance gate (`make
// analytics-e2e` runs it under -race): sigrecd's serving path writes wide
// events under real batch load with rotation forced, then the event log is
// replayed the way cmd/sigrec-analyze does — and the replay's recovery,
// error, truncation, function, and per-rule totals must equal the
// /metrics counter deltas exactly. At sample-rate 1 the durable log is a
// lossless account of the pipeline: anything the counters saw, the log
// can reproduce offline.
func TestAnalyticsE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("analytics e2e skipped in -short mode")
	}
	c, err := corpus.Generate(corpus.Config{Seed: 11, Solidity: 160, Vyper: 40, MaxParams: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Tiny segments force rotation mid-run; MaxSegments is sized so no
	// segment is ever deleted (a deleted segment would break exactness).
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w, err := eventlog.New(eventlog.Config{
		Path:        path,
		MaxBytes:    16 << 10,
		MaxSegments: 64,
		Registry:    telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	before := core.Metrics().Snapshot()

	s, ts := newTestServer(t, Config{QueueDepth: 256, EventLog: w})
	var body bytes.Buffer
	for _, e := range c.Entries {
		fmt.Fprintf(&body, "0x%x\n", e.Code)
	}
	resp, err := http.Post(ts.URL+"/v1/recover/batch", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var br BatchResult
		if err := json.Unmarshal(sc.Bytes(), &br); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != len(c.Entries) {
		t.Fatalf("got %d result lines, want %d", lines, len(c.Entries))
	}

	// Drain the pool (all recoveries finished and emitted), then close the
	// log (queue drained, flushed, fsynced) — the sigrecd SIGTERM ordering.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	after := core.Metrics().Snapshot()
	segs := eventlog.Segments(path)
	if len(segs) < 3 {
		t.Fatalf("expected rotation under load, got segments %v", segs)
	}
	events, skipped, err := eventlog.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d undecodable lines in the log", skipped)
	}
	rep := eventlog.Analyze(events, 10)

	delta := func(name string) uint64 { return after.Counters[name] - before.Counters[name] }
	if got, want := uint64(rep.Events), delta("sigrec_recoveries_total"); got != want {
		t.Errorf("events = %d, recoveries counter delta = %d", got, want)
	}
	if got, want := uint64(rep.Errors), delta("sigrec_recover_errors_total"); got != want {
		t.Errorf("errors = %d, counter delta = %d", got, want)
	}
	if got, want := uint64(rep.Truncated), delta("sigrec_recoveries_truncated_total"); got != want {
		t.Errorf("truncated = %d, counter delta = %d", got, want)
	}
	if got, want := uint64(rep.Functions), delta("sigrec_functions_recovered_total"); got != want {
		t.Errorf("functions = %d, counter delta = %d", got, want)
	}
	bRules := before.LabeledCounters["sigrec_rule_fired_total"].Values
	aRules := after.LabeledCounters["sigrec_rule_fired_total"].Values
	for rule, n := range aRules {
		if want := n - bRules[rule]; rep.RuleFires[rule] != want {
			t.Errorf("rule %s: log total %d, counter delta %d", rule, rep.RuleFires[rule], want)
		}
	}
	for rule, n := range rep.RuleFires {
		if aRules[rule]-bRules[rule] != n {
			t.Errorf("rule %s fired %d in the log but %d on /metrics", rule, n, aRules[rule]-bRules[rule])
		}
	}
	// The log must carry real recoveries, not a vacuous pass.
	if rep.Events < len(c.Entries)/2 || len(rep.RuleFires) == 0 {
		t.Fatalf("log too thin: %d events, %d rules", rep.Events, len(rep.RuleFires))
	}
}
