package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/solc"
)

// compileSig builds a one-function contract for the signature string.
func compileSig(t testing.TB, sigStr string) ([]byte, abi.Signature) {
	t.Helper()
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		t.Fatal(err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	return code, sig
}

// newTestServer wires a Server into an httptest.Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := postQuiet(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// postQuiet is post without t.Fatal, safe to call from spawned goroutines.
func postQuiet(url, body string) (*http.Response, []byte, error) {
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data, err
}

func TestRecoverEndpoint(t *testing.T) {
	code, sig := compileSig(t, "transfer(address,uint256)")
	_, ts := newTestServer(t, Config{Workers: 2})

	hexBody := fmt.Sprintf("0x%x", code)
	for name, body := range map[string]string{
		"raw hex":     hexBody,
		"json object": fmt.Sprintf(`{"bytecode":%q}`, hexBody),
		"json string": fmt.Sprintf("%q", hexBody),
	} {
		resp, data := post(t, ts.URL+"/v1/recover", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, data)
		}
		var got RecoverResponse
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Functions) != 1 || got.Functions[0].Selector != sig.Selector().Hex() ||
			got.Functions[0].Types != "(address,uint256)" {
			t.Fatalf("%s: unexpected response %s", name, data)
		}
	}

	// The HTTP body is byte-for-byte the wire schema the CLI's -json mode
	// emits (ResponseFromResult), so the two outputs are diffable.
	res, err := core.Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ResponseFromResult(res, nil))
	if err != nil {
		t.Fatal(err)
	}
	_, data := post(t, ts.URL+"/v1/recover", hexBody)
	if string(bytes.TrimSpace(data)) != string(want) {
		t.Fatalf("server body %s != wire schema %s", data, want)
	}
}

func TestRecoverBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, tc := range map[string]struct {
		body   string
		status int
	}{
		"odd length":   {"0x608", http.StatusBadRequest},
		"non hex":      {"0xzz60", http.StatusBadRequest},
		"empty":        {"", http.StatusBadRequest},
		"json no code": {`{"other":1}`, http.StatusBadRequest},
	} {
		resp, data := post(t, ts.URL+"/v1/recover", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, tc.status, data)
		}
		var er errorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", name, data)
		}
	}

	// Method discipline: the recover endpoints are POST-only.
	resp, err := http.Get(ts.URL + "/v1/recover")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/recover: status %d, want 405", resp.StatusCode)
	}
}

func TestRecoverNoFunctionsIsEmptyList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// STOP-only bytecode has no dispatcher; the service answers with an
	// empty function list, not an error.
	resp, data := post(t, ts.URL+"/v1/recover", "0x00")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got RecoverResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Functions) != 0 {
		t.Fatalf("functions = %v, want none", got.Functions)
	}
}

func TestBatchStreaming(t *testing.T) {
	codeA, sigA := compileSig(t, "transfer(address,uint256)")
	codeB, sigB := compileSig(t, "approve(address,uint256)")
	_, ts := newTestServer(t, Config{Workers: 4})

	body := fmt.Sprintf("0x%x\nnot-hex!!\n\n0x%x\n", codeA, codeB)
	resp, err := http.Post(ts.URL+"/v1/recover/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type %q", ct)
	}

	got := map[int]BatchResult{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var br BatchResult
		if err := json.Unmarshal(sc.Bytes(), &br); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got[br.Index] = br
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d result lines, want 3 (blank lines are skipped): %v", len(got), got)
	}
	if got[1].Error == "" {
		t.Errorf("index 1 (malformed hex) should carry an error, got %+v", got[1])
	}
	for idx, sel := range map[int]abi.Selector{0: sigA.Selector(), 2: sigB.Selector()} {
		br := got[idx]
		if br.Error != "" || len(br.Functions) != 1 || br.Functions[0].Selector != sel.Hex() {
			t.Errorf("index %d: %+v, want selector %s", idx, br, sel.Hex())
		}
	}
}

// blockingStub replaces the pipeline with a controllable recovery: each
// compute signals entered and blocks until release closes.
type blockingStub struct {
	entered  chan struct{}
	release  chan struct{}
	computes atomic.Int32
}

func newBlockingStub() *blockingStub {
	return &blockingStub{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingStub) recover(ctx context.Context, code []byte, opts core.Options) (core.Result, error) {
	b.computes.Add(1)
	b.entered <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
	return core.Result{Functions: []core.RecoveredFunction{{}}}, nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShed429 saturates a workers=1, queue=1 server and proves the third
// distinct request is shed with 429 + Retry-After instead of queueing.
func TestShed429(t *testing.T) {
	stub := newBlockingStub()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.recoverFn = stub.recover

	var wg sync.WaitGroup
	status := make([]int, 2)
	launch := func(i int, body string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp, _, err := postQuiet(ts.URL+"/v1/recover", body); err == nil {
				status[i] = resp.StatusCode
			}
		}()
	}

	launch(0, "0xaa") // occupies the single worker
	<-stub.entered
	launch(1, "0xbb") // sits in the queue
	waitFor(t, "second request queued", func() bool { return s.pool.queued() == 1 })

	resp, _ := post(t, ts.URL+"/v1/recover", "0xcc") // queue full: shed
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}

	close(stub.release)
	wg.Wait()
	for i, st := range status {
		if st != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, st)
		}
	}
}

// TestCoalescing fires N concurrent identical requests at a blocked
// pipeline and proves exactly one underlying recovery runs — the
// singleflight guarantee in front of the shared cache.
func TestCoalescing(t *testing.T) {
	stub := newBlockingStub()
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	s.recoverFn = stub.recover

	const n = 8
	var wg sync.WaitGroup
	status := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if resp, data, err := postQuiet(ts.URL+"/v1/recover", "0xdeadbeef"); err == nil {
				status[i], bodies[i] = resp.StatusCode, data
			}
		}(i)
	}

	<-stub.entered // the winner is computing
	// Wait until every request is inside the handler (the inflight gauge
	// counts handler entries), so all n are either computing or coalesced.
	waitFor(t, "all requests inflight", func() bool { return mRecover.inflight.Load() == n })
	close(stub.release)
	wg.Wait()

	if got := stub.computes.Load(); got != 1 {
		t.Fatalf("underlying recoveries = %d, want exactly 1 for %d identical requests", got, n)
	}
	for i := 0; i < n; i++ {
		if status[i] != http.StatusOK {
			t.Errorf("request %d: status %d (%s)", i, status[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: body %s differs from %s", i, bodies[i], bodies[0])
		}
	}
}

// TestGracefulDrain: draining rejects new work with 503, finishes inflight
// requests, and Drain returns once the pool is empty.
func TestGracefulDrain(t *testing.T) {
	stub := newBlockingStub()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	s.recoverFn = stub.recover

	var wg sync.WaitGroup
	var inflightStatus int
	wg.Add(1)
	go func() {
		defer wg.Done()
		if resp, _, err := postQuiet(ts.URL+"/v1/recover", "0x01"); err == nil {
			inflightStatus = resp.StatusCode
		}
	}()
	<-stub.entered

	s.BeginDrain()
	if resp, _ := post(t, ts.URL+"/v1/recover", "0x02"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hdata, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(hdata, []byte("draining")) {
		t.Fatalf("healthz while draining: status %d body %s", hresp.StatusCode, hdata)
	}

	close(stub.release)
	wg.Wait()
	if inflightStatus != http.StatusOK {
		t.Fatalf("inflight request finished with %d, want 200", inflightStatus)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var h healthResponse
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.QueueCapacity != 7 {
		t.Fatalf("healthz %+v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	code, _ := compileSig(t, "mint(address)")
	_, ts := newTestServer(t, Config{Workers: 1})
	if resp, data := post(t, ts.URL+"/v1/recover", fmt.Sprintf("0x%x", code)); resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: %d %s", resp.StatusCode, data)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	exposition := string(data)
	for _, series := range []string{
		// Per-endpoint serving series...
		"sigrecd_recover_requests_total",
		"sigrecd_recover_duration_microseconds_bucket",
		"sigrecd_recover_inflight",
		"sigrecd_batch_requests_total",
		"sigrecd_queue_depth",
		"sigrecd_workers_busy",
		// ...alongside the existing pipeline series in one exposition.
		"sigrec_recoveries_total",
		"sigrec_cache_coalesced_total",
	} {
		if !strings.Contains(exposition, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
}
