package efsd

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sigrec/internal/abi"
)

// fileFormat is the on-disk JSON shape: selector hex -> canonical
// signature, matching the export format of public signature databases.
type fileFormat map[string]string

// Save writes the database as JSON (selectors sorted for stable diffs).
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	out := make(fileFormat, len(db.entries))
	for sel, sig := range db.entries {
		out[sel.Hex()] = sig
	}
	db.mu.RUnlock()

	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]string, len(out))
	for _, k := range keys {
		ordered[k] = out[k]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ordered)
}

// Load reads a JSON database, validating every signature. Entries whose
// canonical signature does not hash to its claimed selector are rejected
// (a poisoned-database guard).
func Load(r io.Reader) (*DB, error) {
	var raw fileFormat
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("efsd: decode: %w", err)
	}
	db := New()
	for selHex, canonical := range raw {
		if err := db.AddCanonical(canonical); err != nil {
			return nil, fmt.Errorf("efsd: entry %s: %w", selHex, err)
		}
	}
	// Verify the claimed selectors.
	for selHex, canonical := range raw {
		sel, err := parseHexSelector(selHex)
		if err != nil {
			return nil, err
		}
		got, ok := db.Lookup(abi.Selector(sel))
		if !ok || got != canonical {
			return nil, fmt.Errorf("efsd: entry %s: selector does not match %q", selHex, canonical)
		}
	}
	return db, nil
}

// LoadTrusted reads a JSON database, keying every entry by its claimed
// selector without the hash verification Load performs. This is the load
// path for databases containing recovered signatures (AddRecovered):
// their placeholder names make hash verification impossible by
// construction. Signatures must still parse; only the selector binding is
// taken on trust, so use this for databases this process (or its own
// store) wrote, not for crowd-sourced imports.
func LoadTrusted(r io.Reader) (*DB, error) {
	var raw fileFormat
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("efsd: decode: %w", err)
	}
	db := New()
	for selHex, canonical := range raw {
		sel, err := parseHexSelector(selHex)
		if err != nil {
			return nil, err
		}
		if _, err := abi.ParseSignature(canonical); err != nil {
			return nil, fmt.Errorf("efsd: entry %s: %w", selHex, err)
		}
		db.mu.Lock()
		db.entries[abi.Selector(sel)] = canonical
		db.mu.Unlock()
	}
	return db, nil
}

func parseHexSelector(s string) ([4]byte, error) {
	var sel [4]byte
	if len(s) != 10 || s[:2] != "0x" {
		return sel, fmt.Errorf("efsd: bad selector %q", s)
	}
	for i := 0; i < 4; i++ {
		hi, err1 := hexNibble(s[2+2*i])
		lo, err2 := hexNibble(s[3+2*i])
		if err1 != nil || err2 != nil {
			return sel, fmt.Errorf("efsd: bad selector %q", s)
		}
		sel[i] = hi<<4 | lo
	}
	return sel, nil
}

func hexNibble(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, nil
	default:
		return 0, fmt.Errorf("efsd: bad hex digit %q", c)
	}
}
