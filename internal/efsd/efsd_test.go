package efsd

import (
	"bytes"
	"strings"
	"testing"

	"sigrec/internal/abi"
)

func TestAddLookup(t *testing.T) {
	db := New()
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	db.Add(sig)
	got, ok := db.Lookup(sig.Selector())
	if !ok || got != "transfer(address,uint256)" {
		t.Errorf("lookup: %q %v", got, ok)
	}
	var missing abi.Selector
	if _, ok := db.Lookup(missing); ok {
		t.Error("zero selector should miss")
	}
	if db.Len() != 1 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestAddCanonical(t *testing.T) {
	db := New()
	if err := db.AddCanonical("balanceOf(address)"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddCanonical("not a signature"); err == nil {
		t.Error("malformed canonical must fail")
	}
	if db.Len() != 1 {
		t.Errorf("len = %d", db.Len())
	}
}

func TestBuildCoverage(t *testing.T) {
	var sigs []abi.Signature
	for _, s := range []string{
		"a(uint256)", "b(uint256)", "c(uint256)", "d(uint256)", "e(uint256)",
		"f(uint256)", "g(uint256)", "h(uint256)", "i(uint256)", "j(uint256)",
	} {
		sig, _ := abi.ParseSignature(s)
		sigs = append(sigs, sig)
	}
	full := Build(sigs, 1.0, 1)
	if full.Len() != len(sigs) {
		t.Errorf("full coverage: %d", full.Len())
	}
	none := Build(sigs, 0.0, 1)
	if none.Len() != 0 {
		t.Errorf("zero coverage: %d", none.Len())
	}
	half := Build(sigs, 0.5, 1)
	if half.Len() == 0 || half.Len() == len(sigs) {
		t.Errorf("half coverage: %d", half.Len())
	}
	// Deterministic for a seed.
	if Build(sigs, 0.5, 1).Len() != half.Len() {
		t.Error("Build must be deterministic per seed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	for _, s := range []string{
		"transfer(address,uint256)", "approve(address,uint256)", "mint(uint8[])",
	} {
		if err := db.AddCanonical(s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v\n%s", err, buf.String())
	}
	if back.Len() != db.Len() {
		t.Errorf("len %d vs %d", back.Len(), db.Len())
	}
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	got, ok := back.Lookup(sig.Selector())
	if !ok || got != "transfer(address,uint256)" {
		t.Errorf("lookup after load: %q %v", got, ok)
	}
}

func TestLoadRejectsPoisoned(t *testing.T) {
	// A selector claiming the wrong signature must be rejected.
	poisoned := `{"0xdeadbeef": "transfer(address,uint256)"}`
	if _, err := Load(strings.NewReader(poisoned)); err == nil {
		t.Error("poisoned database accepted")
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Load(strings.NewReader(`{"0xzz": "f()"}`)); err == nil {
		t.Error("bad selector hex accepted")
	}
	if _, err := Load(strings.NewReader(`{"0x12345678": "not a signature"}`)); err == nil {
		t.Error("bad signature accepted")
	}
}
