// Package efsd simulates the Ethereum Function Signature Database that the
// baseline tools (OSD, EBD, JEB, Eveem, Gigahorse) query by function id.
//
// The real EFSD is a crowd-sourced mapping from 4-byte ids to textual
// signatures with partial coverage (the paper measures that over 49% of
// open-source function signatures are missing from it). The simulation
// exposes exactly that behaviour through a coverage knob.
package efsd

import (
	"math/rand"
	"sync"

	"sigrec/internal/abi"
)

// DB is a selector-to-signature database. It is safe for concurrent reads
// after Build.
type DB struct {
	mu      sync.RWMutex
	entries map[abi.Selector]string
}

// New returns an empty database.
func New() *DB {
	return &DB{entries: make(map[abi.Selector]string)}
}

// Add registers a signature under its selector.
func (db *DB) Add(sig abi.Signature) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries[sig.Selector()] = sig.Canonical()
}

// AddCanonical registers a pre-rendered canonical signature string.
func (db *DB) AddCanonical(canonical string) error {
	sig, err := abi.ParseSignature(canonical)
	if err != nil {
		return err
	}
	db.Add(sig)
	return nil
}

// RecoveredName is the placeholder function name for signatures recovered
// from bytecode: recovery yields the selector and the parameter types but
// names are not present in bytecode, so the canonical string cannot be
// reproduced (or hash-verified) — the selector observed in the dispatcher
// is the identity.
const RecoveredName = "recovered"

// AddRecovered registers a recovered signature under its dispatcher
// selector: typeList is the parenthesized parameter list (the
// RecoveredFunction.TypeList format, e.g. "(uint256,bytes)"). Unlike Add,
// the selector is taken as given rather than derived by hashing, because a
// placeholder-named signature never hashes to the real selector.
func (db *DB) AddRecovered(sel abi.Selector, typeList string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.entries[sel] = RecoveredName + typeList
}

// Lookup returns the canonical signature for a selector.
func (db *DB) Lookup(sel abi.Selector) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.entries[sel]
	return s, ok
}

// Len returns the number of entries.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Build populates a database with a random fraction of the given
// signatures, modeling EFSD's partial coverage.
func Build(sigs []abi.Signature, coverage float64, seed int64) *DB {
	r := rand.New(rand.NewSource(seed))
	db := New()
	for _, s := range sigs {
		if r.Float64() < coverage {
			db.Add(s)
		}
	}
	return db
}
