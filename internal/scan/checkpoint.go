package scan

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Cursor is the scanner's durable progress mark: every deployment up to
// and including (Block, Tx) — in block order, then transaction order —
// has been recovered, published, and made durable in the event log. A
// restarted scanner resumes at the next deployment after the cursor.
// Tx == -1 means block Block is complete with no transaction of it (or a
// predecessor's tail) outstanding; it is how empty blocks advance the
// cursor.
type Cursor struct {
	Block uint64
	Tx    int
}

// Less orders cursors lexicographically by (Block, Tx).
func (c Cursor) Less(o Cursor) bool {
	if c.Block != o.Block {
		return c.Block < o.Block
	}
	return c.Tx < o.Tx
}

// String implements fmt.Stringer.
func (c Cursor) String() string { return fmt.Sprintf("b%d/t%d", c.Block, c.Tx) }

// Checkpoint file names inside the checkpoint directory. The pair is the
// crash-safety mechanism: Save writes a fsynced temp file, demotes the
// current file to .prev, and renames the temp into place, so at every
// instant at least one of the two holds a complete, checksummed cursor.
const (
	checkpointFile = "checkpoint"
	checkpointPrev = "checkpoint.prev"
	checkpointTmp  = "checkpoint.tmp"
)

const checkpointMagic = "sigrec-scan-checkpoint v1"

// Checkpoint persists cursors into a directory with atomic replacement
// and a previous-generation fallback. Methods are not safe for
// concurrent use; the scanner checkpoints from a single goroutine.
type Checkpoint struct {
	dir string
}

// OpenCheckpoint prepares dir (creating it if needed) and loads the most
// recent durable cursor: the current file when intact, else the previous
// generation, else ok=false for a fresh start. A torn or corrupt current
// file is not an error — that is exactly the crash window the .prev
// fallback exists for.
func OpenCheckpoint(dir string) (*Checkpoint, Cursor, bool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Cursor{}, false, fmt.Errorf("scan: checkpoint dir: %w", err)
	}
	cp := &Checkpoint{dir: dir}
	cur, ok, err := ReadCheckpoint(dir)
	if err != nil {
		return nil, Cursor{}, false, err
	}
	return cp, cur, ok, nil
}

// ReadCheckpoint loads the durable cursor from dir without opening it for
// writing (the e2e harness polls a live scanner's progress this way).
// Only unreadable-directory conditions are errors; torn, corrupt, or
// missing files fall back and eventually report ok=false.
func ReadCheckpoint(dir string) (Cursor, bool, error) {
	for _, name := range []string{checkpointFile, checkpointPrev} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return Cursor{}, false, fmt.Errorf("scan: checkpoint: %w", err)
		}
		if c, err := ParseCursor(data); err == nil {
			return c, true, nil
		}
	}
	return Cursor{}, false, nil
}

// Save durably records the cursor: temp write + fsync, demote current to
// .prev, rename temp into place, fsync the directory. If the process is
// killed anywhere in that sequence, the next ReadCheckpoint returns
// either the new cursor or the one before it — never garbage, never
// nothing (once a first Save has completed).
func (cp *Checkpoint) Save(c Cursor) error {
	tmp := filepath.Join(cp.dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("scan: checkpoint: %w", err)
	}
	if _, err := f.Write(FormatCursor(c)); err != nil {
		f.Close()
		return fmt.Errorf("scan: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("scan: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("scan: checkpoint: %w", err)
	}
	cur := filepath.Join(cp.dir, checkpointFile)
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, filepath.Join(cp.dir, checkpointPrev)); err != nil {
			return fmt.Errorf("scan: checkpoint: %w", err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("scan: checkpoint: %w", err)
	}
	if d, err := os.Open(cp.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// FormatCursor renders the checkpoint file payload:
//
//	sigrec-scan-checkpoint v1 <block> <tx> <crc32>\n
//
// where the CRC (IEEE, hex) covers everything before it.
func FormatCursor(c Cursor) []byte {
	body := fmt.Sprintf("%s %d %d", checkpointMagic, c.Block, c.Tx)
	crc := crc32.ChecksumIEEE([]byte(body))
	return []byte(fmt.Sprintf("%s %08x\n", body, crc))
}

// ParseCursor decodes and verifies a checkpoint file payload. Any
// deviation — wrong magic, missing fields, trailing data, checksum
// mismatch — is an error: a checkpoint that does not verify is treated as
// absent, never guessed at.
func ParseCursor(data []byte) (Cursor, error) {
	s := string(data)
	if !strings.HasSuffix(s, "\n") {
		return Cursor{}, fmt.Errorf("scan: checkpoint: missing trailing newline")
	}
	s = s[:len(s)-1]
	if strings.ContainsAny(s, "\n\r") {
		return Cursor{}, fmt.Errorf("scan: checkpoint: multiple lines")
	}
	fields := strings.Split(s, " ")
	if len(fields) != 5 {
		return Cursor{}, fmt.Errorf("scan: checkpoint: %d fields, want 5", len(fields))
	}
	magic := strings.Join(fields[:2], " ")
	if magic != checkpointMagic {
		return Cursor{}, fmt.Errorf("scan: checkpoint: bad magic %q", magic)
	}
	block, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return Cursor{}, fmt.Errorf("scan: checkpoint: block: %w", err)
	}
	tx, err := strconv.ParseInt(fields[3], 10, 32)
	if err != nil {
		return Cursor{}, fmt.Errorf("scan: checkpoint: tx: %w", err)
	}
	if tx < -1 {
		return Cursor{}, fmt.Errorf("scan: checkpoint: tx %d out of range", tx)
	}
	want, err := strconv.ParseUint(fields[4], 16, 32)
	if err != nil {
		return Cursor{}, fmt.Errorf("scan: checkpoint: crc: %w", err)
	}
	body := strings.Join(fields[:4], " ")
	if got := crc32.ChecksumIEEE([]byte(body)); got != uint32(want) {
		return Cursor{}, fmt.Errorf("scan: checkpoint: crc mismatch %08x != %08x", got, want)
	}
	return Cursor{Block: block, Tx: int(tx)}, nil
}
