package scan

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sigrec/internal/chain"
	"sigrec/internal/core"
	"sigrec/internal/efsd"
	"sigrec/internal/eventlog"
	"sigrec/internal/evm"
	"sigrec/internal/keccak"
	"sigrec/internal/obs"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultWorkers         = 4
	DefaultQueueDepth      = 64
	DefaultCheckpointEvery = 32
	DefaultPollInterval    = 250 * time.Millisecond
	DefaultMaxProxyHops    = 4
)

// Config wires a Scanner. Source is required; everything else is
// optional with sane defaults (a nil Checkpoint scans without resume, a
// nil EventLog scans without the durable log).
type Config struct {
	// Source is the chain to follow.
	Source chain.Source
	// Cache memoizes recoveries keyed by keccak256(code). Give the
	// scanner a TieredCache backed by a store and already-recovered
	// bytecode is never recomputed — the dedupe stage of the pipeline.
	Cache *core.Cache
	// EventLog receives one wide event per deployment recovery (cache
	// hits included), the substrate of crash reconciliation.
	EventLog *eventlog.Writer
	// Checkpoint persists the resume cursor; nil disables checkpointing.
	Checkpoint *Checkpoint
	// Resume is the durable cursor to resume after: every deployment at
	// or before it is skipped. Nil starts from genesis.
	Resume *Cursor
	// EFSDPath, when set, is an EFSD JSON database the scanner publishes
	// recovered signatures into: loaded (if present) at startup, written
	// atomically at every checkpoint.
	EFSDPath string
	// Live switches from backfill (scan [start, EndBlock], then stop) to
	// head-following (poll for new blocks forever, bounded lag).
	Live bool
	// EndBlock is the inclusive backfill end; ignored in live mode.
	EndBlock uint64
	// PollInterval is the live-mode head poll cadence.
	PollInterval time.Duration
	// Workers sizes the recovery worker pool; QueueDepth bounds every
	// pipeline channel, which is what bounds ingest-ahead in live mode.
	Workers    int
	QueueDepth int
	// CheckpointEvery is the number of completed deployments between
	// checkpoint saves (the final drain always saves).
	CheckpointEvery int
	// ProbeStepLimit bounds the concrete-interpreter proxy probe.
	ProbeStepLimit int
	// MaxProxyHops bounds proxy-of-proxy chains during resolution.
	MaxProxyHops int
	// Recover carries the per-contract recovery budgets (StepBudget,
	// MaxPaths, Deadline, SelectorWorkers). Cache and EventLog are
	// overridden with the scanner's own.
	Recover core.Options
	// Tracer, when set, records span trees through the scan stages.
	Tracer *obs.Tracer
	// Logger defaults to slog.Default.
	Logger *slog.Logger
}

// Scanner is the continuous chain-scan pipeline: ingest blocks, extract
// deployments, resolve proxies, dedupe, recover, publish. One Run per
// Scanner.
type Scanner struct {
	cfg Config
	db  *efsd.DB

	// inflight coalesces concurrent recoveries of identical bytecode:
	// RecoverContext's plain cache path has no singleflight, so without
	// this two workers handed the same template at once would both
	// compute it.
	inflightMu sync.Mutex
	inflight   map[[32]byte]chan struct{}

	// seen is the process-lifetime set of bytecode keys, for dedupe
	// metering (the cache/store do the actual dedupe).
	seenMu sync.Mutex
	seen   map[[32]byte]struct{}
}

// New validates cfg and builds a Scanner.
func New(cfg Config) (*Scanner, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("scan: Config.Source is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.MaxProxyHops <= 0 {
		cfg.MaxProxyHops = DefaultMaxProxyHops
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	cfg.Recover.Cache = cfg.Cache
	cfg.Recover.EventLog = cfg.EventLog
	s := &Scanner{
		cfg:      cfg,
		db:       efsd.New(),
		inflight: make(map[[32]byte]chan struct{}),
		seen:     make(map[[32]byte]struct{}),
	}
	if cfg.EFSDPath != "" {
		if f, err := os.Open(cfg.EFSDPath); err == nil {
			db, lerr := efsd.LoadTrusted(f)
			f.Close()
			if lerr != nil {
				return nil, fmt.Errorf("scan: load EFSD: %w", lerr)
			}
			s.db = db
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("scan: load EFSD: %w", err)
		}
	}
	return s, nil
}

// EFSD exposes the scanner's signature database (for tests and for
// serving layers embedding a scanner).
func (s *Scanner) EFSD() *efsd.DB { return s.db }

// workItem is one deployment headed for recovery.
type workItem struct {
	block uint64
	tx    int
	code  []byte
	// enqueued timestamps the ingest-side send, so the worker can meter
	// queue wait — the pipeline's backpressure signal.
	enqueued time.Time
}

// trackMsg drives the watermark tracker: a manifest announces a block's
// deployment count (manifest=true, sent in ascending block order before
// any of its items), a completion retires one deployment.
type trackMsg struct {
	manifest bool
	block    uint64
	total    int // manifest only
	tx       int // completion only
}

// Run executes the scan until the backfill range completes or, in live
// mode, until ctx is canceled (which returns ctx.Err). The final
// checkpoint is always saved on the way out, so even a canceled run
// resumes exactly.
func (s *Scanner) Run(ctx context.Context) error {
	work := make(chan workItem, s.cfg.QueueDepth)
	track := make(chan trackMsg, s.cfg.QueueDepth*2+4)

	trackErr := make(chan error, 1)
	go func() { trackErr <- s.tracker(track) }()

	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				mWorkQueueDepth.Set(int64(len(work)))
				if ctx.Err() != nil {
					continue // drain without completing: resume will redo it
				}
				s.process(ctx, it)
				track <- trackMsg{block: it.block, tx: it.tx}
			}
		}()
	}

	ingErr := s.ingest(ctx, work, track)
	close(work)
	wg.Wait()
	close(track)
	terr := <-trackErr
	return errors.Join(ingErr, terr)
}

// ingest walks blocks from the resume point, announces each block to the
// tracker, and feeds deployments into the work queue. It returns when
// the backfill range is exhausted or ctx is canceled.
func (s *Scanner) ingest(ctx context.Context, work chan<- workItem, track chan<- trackMsg) error {
	start := uint64(0)
	skip := -1 // in block `start`, skip deployments with tx <= skip
	if s.cfg.Resume != nil {
		start, skip = s.cfg.Resume.Block, s.cfg.Resume.Tx
	}
	for b := start; ; b++ {
		if !s.cfg.Live && b > s.cfg.EndBlock {
			return nil
		}
		head, err := s.waitForBlock(ctx, b)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil // clean shutdown; cursor stays durable
			}
			return err
		}
		blk, err := s.cfg.Source.BlockAt(ctx, b)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("scan: block %d: %w", b, err)
		}
		mBlocksIngested.Inc()
		mHeadLag.Set(int64(head - b))
		first := 0
		if b == start {
			first = skip + 1
		}
		if first > len(blk.Deployments) {
			first = len(blk.Deployments)
		}
		track <- trackMsg{manifest: true, block: b, total: len(blk.Deployments), tx: first}
		for _, d := range blk.Deployments[first:] {
			select {
			case work <- workItem{block: d.Block, tx: d.Tx, code: d.Code, enqueued: time.Now()}:
				mWorkQueueDepth.Set(int64(len(work)))
			case <-ctx.Done():
				return nil
			}
		}
	}
}

// waitForBlock blocks until the source head reaches b (polling in live
// mode) and returns the head it saw.
func (s *Scanner) waitForBlock(ctx context.Context, b uint64) (uint64, error) {
	for {
		head, err := s.cfg.Source.Head(ctx)
		if err != nil {
			return 0, err
		}
		if head >= b {
			return head, nil
		}
		if !s.cfg.Live {
			return 0, fmt.Errorf("scan: backfill block %d beyond source head %d", b, head)
		}
		select {
		case <-time.After(s.cfg.PollInterval):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// blockState is the tracker's view of one announced block.
type blockState struct {
	num    uint64
	total  int
	done   map[int]bool
	prefix int // deployments [0, prefix) are complete
}

// tracker turns out-of-order worker completions into a monotone durable
// cursor: the contiguous prefix of completed deployments across blocks.
// Every CheckpointEvery completions — and once more on drain — it makes
// the event log durable (Sync), exports the EFSD, and atomically saves
// the cursor, in that order: the checkpoint never claims more than the
// log and the EFSD can prove.
func (s *Scanner) tracker(track <-chan trackMsg) error {
	var (
		queue     []*blockState
		byNum     = map[uint64]*blockState{}
		cursor    Cursor
		haveCur   = s.cfg.Resume != nil
		sinceSave = 0
		firstErr  error
	)
	if haveCur {
		cursor = *s.cfg.Resume
	}
	advance := func() {
		for len(queue) > 0 {
			h := queue[0]
			for h.done[h.prefix] {
				delete(h.done, h.prefix)
				h.prefix++
			}
			if h.prefix > 0 || h.total == 0 {
				cursor = Cursor{Block: h.num, Tx: h.prefix - 1}
				haveCur = true
			}
			if h.prefix < h.total {
				return
			}
			delete(byNum, h.num)
			queue = queue[1:]
		}
	}
	save := func() {
		if !haveCur || s.cfg.Checkpoint == nil {
			return
		}
		if err := s.saveProgress(cursor); err != nil && firstErr == nil {
			firstErr = err
		}
		sinceSave = 0
	}
	for msg := range track {
		if msg.manifest {
			st := &blockState{num: msg.block, total: msg.total, done: map[int]bool{}, prefix: msg.tx}
			queue = append(queue, st)
			byNum[msg.block] = st
			advance() // empty or fully-skipped blocks advance immediately
			continue
		}
		if st, ok := byNum[msg.block]; ok {
			st.done[msg.tx] = true
		}
		advance()
		sinceSave++
		if sinceSave >= s.cfg.CheckpointEvery {
			save()
		}
	}
	save()
	return firstErr
}

// saveProgress is the durability sequence behind every checkpoint.
func (s *Scanner) saveProgress(c Cursor) error {
	if err := s.cfg.EventLog.Sync(); err != nil {
		return fmt.Errorf("scan: event log sync: %w", err)
	}
	if s.cfg.EFSDPath != "" {
		if err := s.exportEFSD(); err != nil {
			return err
		}
	}
	if err := s.cfg.Checkpoint.Save(c); err != nil {
		return err
	}
	markCheckpoint(c)
	return nil
}

// exportEFSD atomically replaces the EFSD JSON with the current database.
func (s *Scanner) exportEFSD() error {
	f, err := os.CreateTemp(filepath.Dir(s.cfg.EFSDPath), ".efsd-*")
	if err != nil {
		return fmt.Errorf("scan: efsd export: %w", err)
	}
	if err := s.db.Save(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("scan: efsd export: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("scan: efsd export: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("scan: efsd export: %w", err)
	}
	if err := os.Rename(f.Name(), s.cfg.EFSDPath); err != nil {
		return fmt.Errorf("scan: efsd export: %w", err)
	}
	return nil
}

// process runs one deployment through resolve -> dedupe -> recover ->
// publish. Failures are metered and logged, never fatal: the scan is a
// 24/7 pipeline and one bad contract must not stall the chain.
func (s *Scanner) process(ctx context.Context, it workItem) {
	reqID := fmt.Sprintf("scan-b%08d-t%04d", it.block, it.tx)
	var sc *eventlog.Scope
	ctx, sc = eventlog.NewContext(ctx, reqID)
	// The deterministic request-id derivation links the scan's wide event
	// to its span tree — `sigrec-trace` and /debug/trace join on it.
	sc.TraceID = obs.DeriveTraceID(reqID)
	ctx, rec := s.cfg.Tracer.StartRecovery(ctx, reqID)
	// The root span carries the deployment's chain coordinates and the
	// time it sat queued between ingest and this worker — the span-tree
	// view of pipeline backpressure.
	rec.SetInt("block", int64(it.block))
	rec.SetInt("tx", int64(it.tx))
	if !it.enqueued.IsZero() {
		waitUS := time.Since(it.enqueued).Microseconds()
		rec.SetInt("queue_wait_us", waitUS)
		mQueueWait.Observe(uint64(waitUS))
	}

	mInflightResolve.Add(1)
	span := rec.Span("scan.resolve")
	code, kind := s.resolveCode(ctx, it.code)
	span.SetStr("kind", kind.String())
	span.SetInt("code_bytes", int64(len(code)))
	span.End()
	mInflightResolve.Add(-1)
	switch kind {
	case ProxyNone:
		mDeployDirect.Inc()
	case ProxyProbed:
		mDeployProbed.Inc()
		mResolvedProbe.Inc()
	default:
		mDeployMinimal.Inc()
		mResolvedPattern.Inc()
	}

	key := keccak.Sum256(code)
	s.seenMu.Lock()
	_, dup := s.seen[key]
	s.seen[key] = struct{}{}
	s.seenMu.Unlock()
	if !dup && s.cfg.Cache != nil {
		_, _, dup = s.cfg.Cache.Peek(code)
	}
	if dup {
		mDedupeHits.Inc()
		rec.SetStr("dedupe", "hit")
	}

	// Coalesce concurrent identical bytecode: the loser waits, then takes
	// the cache-hit path inside RecoverContext (its wide event still
	// carries this deployment's request id).
	s.acquire(key)
	mInflightRecover.Add(1)
	res, err := core.RecoverContext(ctx, code, s.cfg.Recover)
	mInflightRecover.Add(-1)
	s.release(key)

	mScanRecoveries.Inc()
	if err != nil {
		mScanErrors.Inc()
		if !errors.Is(err, core.ErrNoFunctions) {
			s.cfg.Logger.Warn("scan recovery failed", "request", reqID, "err", err)
		}
	}
	mInflightPublish.Add(1)
	pub := rec.SpanAt("scan.publish", rec.NowUS())
	for _, fn := range res.Functions {
		s.db.AddRecovered(fn.Selector, fn.TypeList())
	}
	mPublished.Add(uint64(len(res.Functions)))
	pub.SetInt("functions", int64(len(res.Functions)))
	pub.End()
	mInflightPublish.Add(-1)
	rec.Finish(res.Truncated, err)
}

// resolveCode follows proxy indirection down to implementation bytecode:
// byte-pattern minimal proxies first, then the bounded concrete probe
// for non-minimal forwarders, up to MaxProxyHops deep. Unresolvable
// targets fall back to the bytecode in hand — recovering a bare proxy
// yields no functions, which is the honest answer.
func (s *Scanner) resolveCode(ctx context.Context, code []byte) ([]byte, ProxyKind) {
	kind := ProxyNone
	for hop := 0; hop < s.cfg.MaxProxyHops; hop++ {
		impl, k, ok := ParseMinimalProxy(code)
		var target evm.Word
		if ok {
			target = evm.WordFromBytes(impl[:])
		} else {
			if hop > 0 {
				break // already landed on non-proxy bytecode
			}
			w, found := evm.DelegateTarget(code, s.cfg.ProbeStepLimit)
			if !found {
				break
			}
			target, k = w, ProxyProbed
		}
		next, found, err := s.cfg.Source.CodeAt(ctx, target)
		if err != nil || !found || len(next) == 0 {
			mProxyUnresolved.Inc()
			break
		}
		code = next
		if kind == ProxyNone {
			kind = k // report the outermost hop's mechanism
		}
	}
	return code, kind
}

func (s *Scanner) acquire(key [32]byte) {
	for {
		s.inflightMu.Lock()
		ch, busy := s.inflight[key]
		if !busy {
			s.inflight[key] = make(chan struct{})
			s.inflightMu.Unlock()
			return
		}
		s.inflightMu.Unlock()
		<-ch
	}
}

func (s *Scanner) release(key [32]byte) {
	s.inflightMu.Lock()
	ch := s.inflight[key]
	delete(s.inflight, key)
	s.inflightMu.Unlock()
	if ch != nil {
		close(ch)
	}
}
