package scan

import (
	"context"
	"path/filepath"
	"testing"

	"sigrec/internal/chain"
	"sigrec/internal/core"
	"sigrec/internal/store"
)

// One benchmark op is a full backfill of this chain: 80 deployments over
// 6 implementation templates, half of them proxies.
const (
	benchSeed      = 7
	benchBlocks    = 20
	benchPerBlock  = 4
	benchTemplates = 6
)

func benchSource(b *testing.B) *chain.Synthetic {
	b.Helper()
	tmpls, err := chain.SyntheticTemplates(benchSeed, benchTemplates)
	if err != nil {
		b.Fatal(err)
	}
	src, err := chain.NewSynthetic(chain.SourceConfig{
		Seed:            benchSeed,
		Blocks:          benchBlocks,
		DeploysPerBlock: benchPerBlock,
		ProxyRate:       0.5,
		FacadeShare:     0.3,
		Templates:       chain.TemplateCodes(tmpls),
	})
	if err != nil {
		b.Fatal(err)
	}
	return src
}

func benchRun(b *testing.B, src *chain.Synthetic, st *store.Store) {
	b.Helper()
	s, err := New(Config{
		Source:   src,
		Cache:    core.NewTieredCache(256, st).Cache,
		EndBlock: benchBlocks - 1,
		Workers:  3,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScanThroughputCold measures the backfill with an empty result
// store: every unique template is recovered from scratch, the rest of
// the chain dedupes against the freshly computed results.
func BenchmarkScanThroughputCold(b *testing.B) {
	src := benchSource(b)
	b.ReportMetric(benchBlocks*benchPerBlock, "deploys/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(filepath.Join(b.TempDir(), "store"), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchRun(b, src, st)
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

// BenchmarkScanThroughputWarm measures the restart path: the store
// already holds every template's result, so the whole chain must be
// served by dedupe (memory tier plus warm disk hits) with zero
// recomputation. This is the floor bench-gate holds: a warm rescan of
// 80 deployments stays under an absolute ns/op ceiling.
func BenchmarkScanThroughputWarm(b *testing.B) {
	src := benchSource(b)
	st, err := store.Open(filepath.Join(b.TempDir(), "store"), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	benchRun(b, src, st) // populate
	b.ReportMetric(benchBlocks*benchPerBlock, "deploys/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh Scanner and a fresh memory tier each iteration: only the
		// disk store carries warmth across ops, like a process restart.
		benchRun(b, src, st)
	}
}
