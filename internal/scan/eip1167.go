// Package scan implements the continuous chain-scan pipeline: it follows
// a chain.Source, extracts contract deployments, resolves proxies to
// their implementation bytecode, dedupes against the persistent store,
// recovers signatures through core.RecoverContext, and publishes results
// into the EFSD and the wide-event log. Progress is checkpointed so a
// killed scanner resumes with zero lost and zero duplicated recoveries.
package scan

import "fmt"

// ProxyKind names the minimal-proxy family a bytecode matched.
type ProxyKind int

// Minimal-proxy families.
const (
	// ProxyNone means the bytecode matched no byte pattern.
	ProxyNone ProxyKind = iota
	// ProxyCanonical is the canonical 45-byte EIP-1167 runtime.
	ProxyCanonical
	// ProxyVanity is the push-padded variant: an implementation address
	// with leading zero bytes embedded via a PUSH shorter than PUSH20.
	ProxyVanity
	// ProxyZage is the 0age 44-byte dialect.
	ProxyZage
	// ProxyPush0 is the Solady-style PUSH0 dialect.
	ProxyPush0
	// ProxyProbed marks a forwarder found by concrete execution rather
	// than byte matching (reported by the resolver, never by
	// ParseMinimalProxy).
	ProxyProbed
)

// String implements fmt.Stringer.
func (k ProxyKind) String() string {
	switch k {
	case ProxyNone:
		return "none"
	case ProxyCanonical:
		return "eip1167"
	case ProxyVanity:
		return "eip1167-vanity"
	case ProxyZage:
		return "eip1167-0age"
	case ProxyPush0:
		return "eip1167-push0"
	case ProxyProbed:
		return "probed"
	default:
		return fmt.Sprintf("proxykind(%d)", int(k))
	}
}

// The three byte layouts, written out in full so a reader can diff them
// against the EIP text. <n> is the pushed address width (20 for the
// canonical form, shorter when leading zero bytes are padded away) and
// <jd> the JUMPDEST offset, 0x2b minus the bytes saved.
//
//	canonical/vanity (25+n bytes):
//	  36 3d 3d 37 3d 3d 3d 36 3d | PUSHn <addr> | 5a f4 3d 82 80 3e 90 3d 91 | 60 <jd> 57 fd 5b f3
//	0age (44 bytes):
//	  3d 3d 3d 3d 36 3d 3d 37 36 3d | PUSH20 <addr> | 5a f4 3d 3d 93 80 3e | 60 2a 57 fd 5b f3
//	push0 (45 bytes):
//	  36 5f 5f 37 5f 5f 36 5f | PUSH20 <addr> | 5a f4 3d 5f 5f 3e | 60 29 57 3d 5f fd 5b 3d 5f f3
var (
	minimalPrefix = []byte{0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d}
	minimalSuffix = []byte{0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91}
	minimalTail   = []byte{0x57, 0xfd, 0x5b, 0xf3}

	zagePrefix = []byte{0x3d, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x3d, 0x37, 0x36, 0x3d, 0x73}
	zageSuffix = []byte{0x5a, 0xf4, 0x3d, 0x3d, 0x93, 0x80, 0x3e, 0x60, 0x2a, 0x57, 0xfd, 0x5b, 0xf3}

	push0Prefix = []byte{0x36, 0x5f, 0x5f, 0x37, 0x5f, 0x5f, 0x36, 0x5f, 0x73}
	push0Suffix = []byte{0x5a, 0xf4, 0x3d, 0x5f, 0x5f, 0x3e, 0x60, 0x29, 0x57,
		0x3d, 0x5f, 0xfd, 0x5b, 0x3d, 0x5f, 0xf3}
)

// ParseMinimalProxy matches code byte-exactly against the known
// minimal-proxy families and returns the embedded implementation address.
// Matching is strict: exact length (no trailing bytes), every non-address
// byte verified, and for the push-padded variant the JUMPDEST offset in
// the trailing PUSH1 must agree with the shortened address width.
func ParseMinimalProxy(code []byte) (impl [20]byte, kind ProxyKind, ok bool) {
	if impl, ok = parseCanonical(code); ok {
		if len(code) < 45 {
			return impl, ProxyVanity, true
		}
		return impl, ProxyCanonical, true
	}
	if impl, ok = matchFixed(code, zagePrefix, zageSuffix); ok {
		return impl, ProxyZage, true
	}
	if impl, ok = matchFixed(code, push0Prefix, push0Suffix); ok {
		return impl, ProxyPush0, true
	}
	return [20]byte{}, ProxyNone, false
}

// parseCanonical matches the canonical layout for any pushed address
// width n in [1,20]; n < 20 is the vanity variant.
func parseCanonical(code []byte) ([20]byte, bool) {
	var impl [20]byte
	n := len(code) - 25
	if n < 1 || n > 20 {
		return impl, false
	}
	if !bytesEq(code[:9], minimalPrefix) {
		return impl, false
	}
	if code[9] != byte(0x60+n-1) { // PUSHn
		return impl, false
	}
	if !bytesEq(code[10+n:19+n], minimalSuffix) {
		return impl, false
	}
	// PUSH1 <jd>: the JUMPDEST offset shifts down with the saved bytes.
	if code[19+n] != 0x60 || code[20+n] != byte(0x2b-(20-n)) {
		return impl, false
	}
	if !bytesEq(code[21+n:], minimalTail) {
		return impl, false
	}
	copy(impl[20-n:], code[10:10+n])
	return impl, true
}

// matchFixed matches a fixed-width layout: prefix, PUSH20 address
// immediate, suffix, exact total length.
func matchFixed(code, prefix, suffix []byte) ([20]byte, bool) {
	var impl [20]byte
	if len(code) != len(prefix)+20+len(suffix) {
		return impl, false
	}
	if !bytesEq(code[:len(prefix)], prefix) {
		return impl, false
	}
	if !bytesEq(code[len(prefix)+20:], suffix) {
		return impl, false
	}
	copy(impl[:], code[len(prefix):len(prefix)+20])
	return impl, true
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
