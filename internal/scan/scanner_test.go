package scan

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sigrec/internal/chain"
	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/efsd"
	"sigrec/internal/eventlog"
	"sigrec/internal/store"
)

// scanFixture wires a full pipeline around a synthetic chain in a temp
// directory.
type scanFixture struct {
	tmpls  []corpus.DeployedContract
	source *chain.Synthetic
	store  *store.Store
	log    *eventlog.Writer
	cp     *Checkpoint
	resume *Cursor
	dir    string
}

func newScanFixture(t *testing.T, seed int64, blocks uint64) *scanFixture {
	t.Helper()
	tmpls, err := chain.SyntheticTemplates(seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := chain.NewSynthetic(chain.SourceConfig{
		Seed:            seed,
		Blocks:          blocks,
		DeploysPerBlock: 4,
		ProxyRate:       0.5,
		FacadeShare:     0.3,
		Templates:       chain.TemplateCodes(tmpls),
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	w, err := eventlog.New(eventlog.Config{Path: filepath.Join(dir, "events.ndjson")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	cp, resume, ok, err := OpenCheckpoint(filepath.Join(dir, "checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	fx := &scanFixture{tmpls: tmpls, source: src, store: st, log: w, cp: cp, dir: dir}
	if ok {
		fx.resume = &resume
	}
	return fx
}

func (fx *scanFixture) scanner(t *testing.T, mut func(*Config)) *Scanner {
	t.Helper()
	cfg := Config{
		Source:          fx.source,
		Cache:           core.NewTieredCache(256, fx.store).Cache,
		EventLog:        fx.log,
		Checkpoint:      fx.cp,
		Resume:          fx.resume,
		EFSDPath:        filepath.Join(fx.dir, "efsd.json"),
		Workers:         3,
		CheckpointEvery: 8,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// requestID reconstructs the scanner's deployment id format.
func requestID(block uint64, tx int) string {
	return fmt.Sprintf("scan-b%08d-t%04d", block, tx)
}

func TestScannerBackfill(t *testing.T) {
	const blocks = 12
	fx := newScanFixture(t, 21, blocks)
	s := fx.scanner(t, func(c *Config) { c.EndBlock = blocks - 1 })
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Cursor covers the whole range.
	cur, ok, err := ReadCheckpoint(filepath.Join(fx.dir, "checkpoint"))
	if err != nil || !ok {
		t.Fatalf("checkpoint: ok=%v err=%v", ok, err)
	}
	if want := (Cursor{Block: blocks - 1, Tx: 3}); cur != want {
		t.Fatalf("cursor %v, want %v", cur, want)
	}
	// The event log (after Sync at the final checkpoint) holds exactly one
	// event per deployment, by request id.
	if err := fx.log.Sync(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := eventlog.ReadLog(filepath.Join(fx.dir, "events.ndjson"))
	if err != nil || skipped != 0 {
		t.Fatalf("read log: skipped=%d err=%v", skipped, err)
	}
	seen := map[string]int{}
	for _, ev := range events {
		seen[ev.RequestID]++
	}
	ctx := context.Background()
	for b := uint64(0); b < blocks; b++ {
		blk, err := fx.source.BlockAt(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range blk.Deployments {
			if n := seen[requestID(d.Block, d.Tx)]; n != 1 {
				t.Fatalf("deployment b%d/t%d has %d events, want 1", d.Block, d.Tx, n)
			}
		}
	}
	if len(seen) != blocks*4 {
		t.Fatalf("%d distinct request ids, want %d", len(seen), blocks*4)
	}
	// Every proxied implementation's declared selectors are in the EFSD.
	assertEFSDAttribution(t, fx, blocks)
}

// assertEFSDAttribution checks that each proxy deployment's
// implementation template has all of its declared selectors published.
func assertEFSDAttribution(t *testing.T, fx *scanFixture, blocks uint64) {
	t.Helper()
	f, err := os.Open(filepath.Join(fx.dir, "efsd.json"))
	if err != nil {
		t.Fatalf("efsd.json: %v", err)
	}
	defer f.Close()
	db, err := efsd.LoadTrusted(f)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	checked := 0
	for b := uint64(0); b < blocks; b++ {
		blk, err := fx.source.BlockAt(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range blk.Deployments {
			if !d.Kind.IsProxy() {
				continue
			}
			implCode, ok, err := fx.source.CodeAt(ctx, d.Implementation)
			if err != nil || !ok {
				t.Fatalf("b%d/t%d: implementation missing", d.Block, d.Tx)
			}
			ti := templateIndex(t, fx.tmpls, implCode)
			for _, sig := range fx.tmpls[ti].Functions {
				if _, ok := db.Lookup(sig.Selector()); !ok {
					t.Fatalf("b%d/t%d (%v): selector %s of implementation not in EFSD",
						d.Block, d.Tx, d.Kind, sig.Selector().Hex())
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no proxy deployments in fixture")
	}
}

func templateIndex(t *testing.T, tmpls []corpus.DeployedContract, code []byte) int {
	t.Helper()
	for i := range tmpls {
		if string(tmpls[i].Code) == string(code) {
			return i
		}
	}
	t.Fatal("implementation bytecode matches no template")
	return -1
}

// A clean stop and a fresh scanner with the saved cursor must cover the
// remainder exactly once: no deployment lost, none double-processed.
func TestScannerResume(t *testing.T) {
	const blocks = 12
	fx := newScanFixture(t, 33, blocks)
	first := fx.scanner(t, func(c *Config) { c.EndBlock = 5 })
	if err := first.Run(context.Background()); err != nil {
		t.Fatalf("first run: %v", err)
	}
	cur, ok, err := ReadCheckpoint(filepath.Join(fx.dir, "checkpoint"))
	if err != nil || !ok {
		t.Fatalf("checkpoint after first run: ok=%v err=%v", ok, err)
	}
	if want := (Cursor{Block: 5, Tx: 3}); cur != want {
		t.Fatalf("cursor %v, want %v", cur, want)
	}
	fx.resume = &cur
	second := fx.scanner(t, func(c *Config) { c.EndBlock = blocks - 1 })
	if err := second.Run(context.Background()); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if err := fx.log.Sync(); err != nil {
		t.Fatal(err)
	}
	events, _, err := eventlog.ReadLog(filepath.Join(fx.dir, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, ev := range events {
		seen[ev.RequestID]++
	}
	if len(seen) != blocks*4 {
		t.Fatalf("%d distinct request ids, want %d", len(seen), blocks*4)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request id %s has %d events; clean resume must not reprocess", id, n)
		}
	}
	assertEFSDAttribution(t, fx, blocks)
}

// Live mode follows a growing head and checkpoints as it goes; cancel
// stops it cleanly with a durable cursor.
func TestScannerLive(t *testing.T) {
	tmpls, err := chain.SyntheticTemplates(55, 3)
	if err != nil {
		t.Fatal(err)
	}
	src, err := chain.NewSynthetic(chain.SourceConfig{
		Seed:            55,
		Blocks:          1000,
		DeploysPerBlock: 2,
		ProxyRate:       0.4,
		FacadeShare:     0.25,
		Templates:       chain.TemplateCodes(tmpls),
		HeadStart:       3,
		HeadInterval:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cp, _, _, err := OpenCheckpoint(filepath.Join(dir, "checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Source:          src,
		Cache:           core.NewTieredCache(64, st).Cache,
		Checkpoint:      cp,
		Live:            true,
		PollInterval:    time.Millisecond,
		Workers:         2,
		CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	// Wait until the scanner has durably passed the initial head, proving
	// it tailed blocks that did not exist at startup.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, ok, err := ReadCheckpoint(filepath.Join(dir, "checkpoint"))
		if err != nil {
			t.Fatal(err)
		}
		if ok && cur.Block > 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live scanner never passed block 10")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("live run: %v", err)
	}
}
