package scan

import (
	"sync/atomic"
	"time"

	"sigrec/internal/core"
)

// The scanner reports into the shared pipeline registry so one /metrics
// or -stats exposition carries recovery and scan counters side by side.
var tel = core.Metrics()

// lastCheckpointUS is the wall-clock (UnixMicro) of the most recent
// checkpoint save, refreshed into the age gauge at each snapshot; zero
// means no checkpoint yet this process.
var lastCheckpointUS atomic.Int64

func init() {
	tel.SetHelp("sigrec_scan_blocks_ingested_total", "Chain blocks pulled from the source")
	tel.SetHelp("sigrec_scan_deployments_total", "Contract deployments seen, by resolved kind")
	tel.SetHelp("sigrec_scan_proxies_resolved_total", "Proxy deployments resolved to implementation bytecode, by method")
	tel.SetHelp("sigrec_scan_proxies_unresolved_total", "Proxy-shaped deployments whose implementation could not be fetched")
	tel.SetHelp("sigrec_scan_dedupe_hits_total", "Deployments whose bytecode was already recovered (store/cache/in-flight)")
	tel.SetHelp("sigrec_scan_recoveries_total", "Recoveries completed by the scanner")
	tel.SetHelp("sigrec_scan_recover_errors_total", "Scanner recoveries that returned an error")
	tel.SetHelp("sigrec_scan_signatures_published_total", "Function signatures published into the EFSD")
	tel.SetHelp("sigrec_scan_checkpoints_total", "Durable checkpoint saves")
	tel.SetHelp("sigrec_scan_head_lag_blocks", "Blocks between the source head and the ingest position")
	tel.SetHelp("sigrec_scan_cursor_block", "Block number of the last durable checkpoint cursor")
	tel.SetHelp("sigrec_scan_checkpoint_age_seconds", "Seconds since the last durable checkpoint save")
	tel.SetHelp("sigrec_scan_work_queue_depth", "Deployments waiting in the recovery work queue")
	tel.SetHelp("sigrec_scan_stage_inflight", "Deployments currently inside each pipeline stage, by stage")
	tel.SetHelp("sigrec_scan_queue_wait_microseconds", "Time deployments spend queued between ingest and a recovery worker")
	tel.OnSnapshot(func() {
		if ts := lastCheckpointUS.Load(); ts > 0 {
			age := (time.Now().UnixMicro() - ts) / 1e6
			mCheckpointAge.Set(age)
		}
	})
}

var (
	mBlocksIngested  = tel.Counter("sigrec_scan_blocks_ingested_total")
	mDeployments     = tel.CounterVec("sigrec_scan_deployments_total", "kind")
	mProxiesResolved = tel.CounterVec("sigrec_scan_proxies_resolved_total", "method")
	mProxyUnresolved = tel.Counter("sigrec_scan_proxies_unresolved_total")
	mDedupeHits      = tel.Counter("sigrec_scan_dedupe_hits_total")
	mScanRecoveries  = tel.Counter("sigrec_scan_recoveries_total")
	mScanErrors      = tel.Counter("sigrec_scan_recover_errors_total")
	mPublished       = tel.Counter("sigrec_scan_signatures_published_total")
	mCheckpoints     = tel.Counter("sigrec_scan_checkpoints_total")
	mHeadLag         = tel.Gauge("sigrec_scan_head_lag_blocks")
	mCursorBlock     = tel.Gauge("sigrec_scan_cursor_block")
	mCheckpointAge   = tel.Gauge("sigrec_scan_checkpoint_age_seconds")
	mWorkQueueDepth  = tel.Gauge("sigrec_scan_work_queue_depth")
	mStageInflight   = tel.GaugeVec("sigrec_scan_stage_inflight", "stage")
	mQueueWait       = tel.Summary("sigrec_scan_queue_wait_microseconds", nil)

	// Pre-resolved vec members for the hot per-deployment path.
	mDeployDirect     = mDeployments.With("direct")
	mDeployMinimal    = mDeployments.With("eip1167")
	mDeployProbed     = mDeployments.With("probed")
	mDeployUnresolved = mDeployments.With("unresolved")
	mResolvedPattern  = mProxiesResolved.With("pattern")
	mResolvedProbe    = mProxiesResolved.With("probe")

	// Pre-resolved per-stage in-flight gauges: workers Add(±1) around
	// each stage, so /metrics shows where the pipeline's concurrency is
	// spent at any instant.
	mInflightResolve = mStageInflight.With("resolve")
	mInflightRecover = mStageInflight.With("recover")
	mInflightPublish = mStageInflight.With("publish")
)

// markCheckpoint records a completed save into the gauges.
func markCheckpoint(c Cursor) {
	mCheckpoints.Inc()
	mCursorBlock.Set(int64(c.Block))
	lastCheckpointUS.Store(time.Now().UnixMicro())
	mCheckpointAge.Set(0)
}
