package scan

import (
	"bytes"
	"encoding/hex"
	"testing"

	"sigrec/internal/chain"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// repeatAddr returns a 20-byte address of one repeated byte.
func repeatAddr(b byte) [20]byte {
	var a [20]byte
	for i := range a {
		a[i] = b
	}
	return a
}

// TestParseMinimalProxyTable is the byte-exact conformance table: the
// canonical 45-byte runtime, push-padded vanity variants, the 0age and
// Solady/PUSH0 dialects, and near-misses that must NOT match.
func TestParseMinimalProxyTable(t *testing.T) {
	beAddr := repeatAddr(0xbe)
	vanity := [20]byte{}
	vanity[8] = 0xec
	vanity[15] = 0x2a // 0x000000000000000000ec0000000000002a000000... style
	vanity[19] = 0x07
	oneByte := [20]byte{19: 0x01} // extreme vanity: single-byte push

	canonical := "363d3d373d3d3d363d73" +
		"bebebebebebebebebebebebebebebebebebebebe" +
		"5af43d82803e903d91602b57fd5bf3"
	zage := "3d3d3d3d363d3d37363d73" +
		"bebebebebebebebebebebebebebebebebebebebe" +
		"5af43d3d93803e602a57fd5bf3"
	push0 := "365f5f375f5f365f73" +
		"bebebebebebebebebebebebebebebebebebebebe" +
		"5af43d5f5f3e6029573d5ffd5b3d5ff3"
	// Vanity with 12 address bytes pushed (8 leading zeros stripped):
	// PUSH12 = 0x6b, total 37 bytes, JUMPDEST at 0x2b-8 = 0x23.
	vanity12 := "363d3d373d3d3d363d6b" +
		"ec0000000000002a00000007" +
		"5af43d82803e903d91602357fd5bf3"

	match := []struct {
		name string
		code []byte
		impl [20]byte
		kind ProxyKind
		size int
	}{
		{"canonical-45", mustHex(t, canonical), beAddr, ProxyCanonical, 45},
		{"0age-44", mustHex(t, zage), beAddr, ProxyZage, 44},
		{"push0-45", mustHex(t, push0), beAddr, ProxyPush0, 45},
		{"vanity-push12", mustHex(t, vanity12), vanity, ProxyVanity, 37},
		{"vanity-push1", chain.BuildMinimalProxy(oneByte), oneByte, ProxyVanity, 26},
		{"builder-canonical", chain.BuildMinimalProxy(beAddr), beAddr, ProxyCanonical, 45},
		{"builder-0age", chain.BuildZageProxy(vanity), vanity, ProxyZage, 44},
		{"builder-push0", chain.BuildPush0Proxy(vanity), vanity, ProxyPush0, 45},
	}
	for _, tc := range match {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.code) != tc.size {
				t.Fatalf("fixture is %d bytes, want %d", len(tc.code), tc.size)
			}
			impl, kind, ok := ParseMinimalProxy(tc.code)
			if !ok {
				t.Fatalf("did not match")
			}
			if kind != tc.kind {
				t.Fatalf("kind %v, want %v", kind, tc.kind)
			}
			if impl != tc.impl {
				t.Fatalf("impl %x, want %x", impl, tc.impl)
			}
		})
	}

	canonBytes := mustHex(t, canonical)
	flip := func(i int, v byte) []byte {
		out := append([]byte(nil), canonBytes...)
		out[i] = v
		return out
	}
	zageBytes := mustHex(t, zage)
	push0Bytes := mustHex(t, push0)

	// Vanity near-miss: PUSH19 claimed but JUMPDEST offset left at the
	// canonical 0x2b instead of 0x2a.
	badVanity := chain.BuildMinimalProxy(repeatAddr(0x11))
	badVanity = append([]byte(nil), badVanity...)
	badVanity[9] = 0x72                                   // PUSH19
	badVanity = append(badVanity[:10], badVanity[11:]...) // drop one addr byte
	// jumpdest byte still 0x2b at index 20+19=39? builder emitted canonical
	// (no leading zeros) so dropping one byte leaves jd unadjusted.

	noMatch := []struct {
		name string
		code []byte
	}{
		{"empty", nil},
		{"trailing-byte", append(append([]byte(nil), canonBytes...), 0x00)},
		{"truncated", canonBytes[:44]},
		{"prefix-flip", flip(0, 0x37)},
		{"gas-flipped", flip(30, 0x5b)},    // 5a GAS -> 5b in suffix
		{"wrong-jumpdest", flip(40, 0x2c)}, // 602b -> 602c
		{"revert-dropped", flip(42, 0x00)}, // fd -> 00
		{"push19-stale-jumpdest", badVanity},
		{"0age-trailing", append(append([]byte(nil), zageBytes...), 0x5b)},
		{"0age-prefix-flip", func() []byte { b := append([]byte(nil), zageBytes...); b[4] = 0x3d; return b }()},
		{"push0-wrong-suffix", func() []byte { b := append([]byte(nil), push0Bytes...); b[29] = 0x3d; return b }()},
		{"push0-truncated", push0Bytes[:40]},
		{"push-op-mismatch", flip(9, 0x72)}, // PUSH19 but 20 addr bytes follow
	}
	for _, tc := range noMatch {
		t.Run("near-miss/"+tc.name, func(t *testing.T) {
			if _, kind, ok := ParseMinimalProxy(tc.code); ok {
				t.Fatalf("matched as %v; must not match", kind)
			}
		})
	}
}

// Round-trip: every builder output for a spread of addresses must parse
// back to the same implementation.
func TestParseMinimalProxyRoundTrip(t *testing.T) {
	addrs := [][20]byte{
		repeatAddr(0xff),
		repeatAddr(0x01),
		{0: 0x01},           // 19 trailing zeros, no leading zeros
		{19: 0x01},          // maximal vanity
		{7: 0x80, 19: 0x3c}, // 7 leading zeros
	}
	for _, a := range addrs {
		for _, build := range []struct {
			name string
			fn   func([20]byte) []byte
		}{
			{"minimal", chain.BuildMinimalProxy},
			{"0age", chain.BuildZageProxy},
			{"push0", chain.BuildPush0Proxy},
		} {
			code := build.fn(a)
			impl, _, ok := ParseMinimalProxy(code)
			if !ok {
				t.Fatalf("%s(%x): no match for %s", build.name, a, hex.EncodeToString(code))
			}
			if impl != a {
				t.Fatalf("%s: impl %x, want %x", build.name, impl, a)
			}
		}
	}
	// Builder outputs for distinct addresses are distinct bytecodes.
	if bytes.Equal(chain.BuildMinimalProxy(addrs[0]), chain.BuildMinimalProxy(addrs[1])) {
		t.Fatal("distinct addresses produced identical proxies")
	}
}
