package scan

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp, _, ok, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fresh directory reported a cursor")
	}
	c1 := Cursor{Block: 7, Tx: 3}
	if err := cp.Save(c1); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok || got != c1 {
		t.Fatalf("after first save: %v ok=%v err=%v", got, ok, err)
	}
	c2 := Cursor{Block: 9, Tx: -1}
	if err := cp.Save(c2); err != nil {
		t.Fatal(err)
	}
	// Reopen as a restarted process would.
	_, got, ok, err = OpenCheckpoint(dir)
	if err != nil || !ok || got != c2 {
		t.Fatalf("after reopen: %v ok=%v err=%v", got, ok, err)
	}
	// The demoted generation holds the prior cursor.
	prev, err := os.ReadFile(filepath.Join(dir, checkpointPrev))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := ParseCursor(prev)
	if err != nil || pc != c1 {
		t.Fatalf("prev generation: %v err=%v", pc, err)
	}
}

// A torn or corrupted current file must fall back to the previous durable
// cursor — the same contract as the store's torn-tail truncation, applied
// to the cursor pair.
func TestCheckpointTornFallsBack(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func([]byte) []byte { return nil }},
		{"no-newline", func(b []byte) []byte { return bytes.TrimSuffix(b, []byte("\n")) }},
		{"flipped-crc", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-2] ^= 0x01
			return out
		}},
		{"garbage", func([]byte) []byte { return []byte("not a checkpoint at all\n") }},
		{"tampered-cursor", func(b []byte) []byte {
			return bytes.Replace(b, []byte(" 9 "), []byte(" 8 "), 1)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cp, _, _, err := OpenCheckpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			c1 := Cursor{Block: 7, Tx: 3}
			c2 := Cursor{Block: 9, Tx: 0}
			if err := cp.Save(c1); err != nil {
				t.Fatal(err)
			}
			if err := cp.Save(c2); err != nil {
				t.Fatal(err)
			}
			cur := filepath.Join(dir, checkpointFile)
			data, err := os.ReadFile(cur)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(cur, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			got, ok, err := ReadCheckpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || got != c1 {
				t.Fatalf("fallback returned %v ok=%v, want %v", got, ok, c1)
			}
		})
	}
}

// Both generations corrupt means no cursor — a fresh start, not an error
// or a guess.
func TestCheckpointBothGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cp, _, _, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(Cursor{Block: 1, Tx: 1}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(Cursor{Block: 2, Tx: 2}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{checkpointFile, checkpointPrev} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, ok, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupt pair still produced a cursor")
	}
}

// Simulate the two rename-window crash points Save can be killed in: a
// completed temp file that was never renamed, and a demoted current with
// the temp not yet moved into place.
func TestCheckpointCrashWindows(t *testing.T) {
	dir := t.TempDir()
	cp, _, _, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := Cursor{Block: 5, Tx: 2}
	if err := cp.Save(c1); err != nil {
		t.Fatal(err)
	}
	// Window 1: temp fully written, rename never happened.
	next := Cursor{Block: 6, Tx: 0}
	if err := os.WriteFile(filepath.Join(dir, checkpointTmp), FormatCursor(next), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok || got != c1 {
		t.Fatalf("window 1: %v ok=%v err=%v, want %v", got, ok, err, c1)
	}
	// Window 2: current demoted to prev, temp not renamed yet.
	if err := os.Rename(filepath.Join(dir, checkpointFile), filepath.Join(dir, checkpointPrev)); err != nil {
		t.Fatal(err)
	}
	got, ok, err = ReadCheckpoint(dir)
	if err != nil || !ok || got != c1 {
		t.Fatalf("window 2: %v ok=%v err=%v, want %v", got, ok, err, c1)
	}
}

// FuzzCheckpointParse hardens the parser against arbitrary file contents:
// it must never panic, and whatever it accepts must survive a format
// round-trip unchanged.
func FuzzCheckpointParse(f *testing.F) {
	f.Add([]byte("sigrec-scan-checkpoint v1 7 3 00000000\n"))
	f.Add(FormatCursor(Cursor{Block: 0, Tx: -1}))
	f.Add(FormatCursor(Cursor{Block: 1<<63 - 1, Tx: 1 << 20}))
	f.Add([]byte("sigrec-scan-checkpoint v1 7 3"))
	f.Add([]byte(""))
	f.Add([]byte("sigrec-scan-checkpoint v2 7 3 deadbeef\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseCursor(data)
		if err != nil {
			return
		}
		back, err := ParseCursor(FormatCursor(c))
		if err != nil || back != c {
			t.Fatalf("round trip of accepted cursor %v failed: %v (err=%v)", c, back, err)
		}
	})
}
