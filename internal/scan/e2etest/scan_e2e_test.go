// Package e2etest is the chain-scan kill/restart gate: it builds the
// real sigrec-scan binary, backfills a synthetic chain as an OS process,
// SIGKILLs it mid-backfill, restarts it with the same flags, and then
// reconciles the durable event log, checkpoint cursor, and published
// EFSD against the chain's ground truth — zero lost deployments, zero
// duplicated recoveries outside the crash window, and every proxy
// deployment attributed to its implementation's recovered signatures.
//
// The suite is opt-in (SCAN_E2E=1, set by `make scan-e2e`) because it
// builds a race-instrumented binary and runs for tens of seconds.
// SCAN_E2E_ARTIFACTS names a directory that receives the scanner's data
// directory (event log, checkpoints, store, EFSD) and both process logs,
// so a CI failure ships the whole pipeline's state as artifacts.
package e2etest

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"sigrec/internal/chain"
	"sigrec/internal/corpus"
	"sigrec/internal/efsd"
	"sigrec/internal/eventlog"
	"sigrec/internal/keccak"
	"sigrec/internal/scan"
)

// The scan under test. The chain is sized so a race-instrumented
// backfill runs long enough (roughly 10-20s) for the SIGKILL to land
// far from both ends of the range.
const (
	seed      = 101
	blocks    = 3000
	perBlock  = 4
	templates = 24
	proxyRate = 0.5
	facade    = 0.3
	// killAtBlock is the durable cursor block that triggers the SIGKILL.
	killAtBlock = 250
)

func TestScanE2E(t *testing.T) {
	if os.Getenv("SCAN_E2E") == "" {
		t.Skip("scan e2e is opt-in: run via `make scan-e2e` (SCAN_E2E=1)")
	}
	artifacts := os.Getenv("SCAN_E2E_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("artifacts: %s", artifacts)

	bin := buildScanner(t, t.TempDir())
	dataDir := filepath.Join(artifacts, "data")
	ckDir := filepath.Join(dataDir, "checkpoint")

	// --- run 1: backfill until the cursor passes killAtBlock, then SIGKILL ---

	run1 := startScan(t, bin, dataDir, filepath.Join(artifacts, "scan-1.log"))
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, ok, err := scan.ReadCheckpoint(ckDir)
		if err != nil {
			t.Fatal(err)
		}
		if ok && cur.Block >= killAtBlock {
			break
		}
		if run1.exited() {
			t.Fatalf("run 1 exited before the kill threshold (cursor %v ok=%v); the chain is too small to crash mid-backfill", cur, ok)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run 1 never reached block %d (cursor %v ok=%v)", killAtBlock, cur, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := run1.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	<-run1.done
	// cKill is the durable cursor the crash left behind: the exemption
	// boundary for every reconciliation rule below.
	cKill, ok, err := scan.ReadCheckpoint(ckDir)
	if err != nil || !ok {
		t.Fatalf("no durable checkpoint after SIGKILL: ok=%v err=%v", ok, err)
	}
	if cKill.Block >= blocks-1 {
		t.Fatalf("kill cursor %v is at the end of the chain; nothing left to resume", cKill)
	}
	t.Logf("SIGKILLed run 1 at durable cursor %v", cKill)

	// --- run 2: same flags, resume from the checkpoint, run to completion ---

	run2 := startScan(t, bin, dataDir, filepath.Join(artifacts, "scan-2.log"))
	select {
	case err := <-run2.done:
		if err != nil {
			t.Fatalf("run 2 failed: %v (see scan-2.log)", err)
		}
	case <-time.After(4 * time.Minute):
		run2.cmd.Process.Kill()
		t.Fatal("run 2 did not complete the backfill within 4 minutes")
	}
	final, ok, err := scan.ReadCheckpoint(ckDir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after run 2: ok=%v err=%v", ok, err)
	}
	if want := (scan.Cursor{Block: blocks - 1, Tx: perBlock - 1}); final != want {
		t.Fatalf("final cursor %v, want %v", final, want)
	}
	if !cKill.Less(final) {
		t.Fatalf("final cursor %v did not advance past the kill cursor %v", final, cKill)
	}

	reconcile(t, dataDir, cKill)
}

// scanProc is one sigrec-scan OS process.
type scanProc struct {
	cmd  *exec.Cmd
	done chan error
}

func (p *scanProc) exited() bool {
	select {
	case err := <-p.done:
		// Re-arm so later receives still see the outcome.
		p.done <- err
		return true
	default:
		return false
	}
}

func startScan(t *testing.T, bin, dataDir, logPath string) *scanProc {
	t.Helper()
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-data", dataDir,
		"-seed", strconv.Itoa(seed),
		"-chain-blocks", strconv.Itoa(blocks),
		"-deploys-per-block", strconv.Itoa(perBlock),
		"-templates", strconv.Itoa(templates),
		"-proxy-rate", fmt.Sprint(proxyRate),
		"-facade-share", fmt.Sprint(facade),
		"-end", strconv.Itoa(blocks-1),
		"-workers", "3",
		"-checkpoint-every", "8",
		"-log-format", "json",
	)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		f.Close()
		t.Fatalf("start %s: %v", bin, err)
	}
	done := make(chan error, 1)
	go func() {
		done <- cmd.Wait()
		f.Close()
	}()
	return &scanProc{cmd: cmd, done: done}
}

// buildScanner compiles sigrec-scan race-instrumented, like the test
// itself.
func buildScanner(t *testing.T, dir string) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "sigrec-scan")
	cmd := exec.Command("go", "build", "-race", "-o", bin, "./cmd/sigrec-scan")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sigrec-scan: %v\n%s", err, out)
	}
	return bin
}

// groundTruth rebuilds the synthetic chain the binary scanned (same
// flags, same bytes) for reconciliation.
func groundTruth(t *testing.T) ([]corpus.DeployedContract, *chain.Synthetic) {
	t.Helper()
	tmpls, err := chain.SyntheticTemplates(seed, templates)
	if err != nil {
		t.Fatal(err)
	}
	src, err := chain.NewSynthetic(chain.SourceConfig{
		Seed:            seed,
		Blocks:          blocks,
		DeploysPerBlock: perBlock,
		ProxyRate:       proxyRate,
		FacadeShare:     facade,
		Templates:       chain.TemplateCodes(tmpls),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tmpls, src
}

// reconcile proves the crash cost nothing: joining the durable event log
// against the chain's ground truth, (1) every deployment in the range
// has at least one wide event — zero lost; (2) any deployment with two
// events lies strictly after the kill cursor — the crash-replay window
// is the only source of duplicates; (3) each unique implementation
// bytecode was computed (not cache-served) at most twice, and a second
// computation is only ever the restarted process redoing work the crash
// un-persisted; (4) every proxy deployment's implementation has all of
// its declared selectors published in the EFSD.
func reconcile(t *testing.T, dataDir string, cKill scan.Cursor) {
	t.Helper()
	tmpls, src := groundTruth(t)
	ctx := context.Background()

	events, skipped, err := eventlog.ReadLog(filepath.Join(dataDir, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	// The SIGKILL may tear at most one buffered line; the reopened writer
	// repairs the tail so nothing after the fragment is damaged.
	if skipped > 1 {
		t.Errorf("%d undecodable event lines; a single SIGKILL can only tear one", skipped)
	}

	type evInfo struct {
		count    int
		computed int // events where the result was computed, not cache-served
	}
	byID := map[string]*evInfo{}
	computedByID := map[string]int{}
	for _, ev := range events {
		if ev.Kind != "" {
			continue // auxiliary records (flight recorder dumps)
		}
		info := byID[ev.RequestID]
		if info == nil {
			info = &evInfo{}
			byID[ev.RequestID] = info
		}
		info.count++
		if ev.Cache != "hit" {
			info.computed++
			computedByID[ev.RequestID]++
		}
	}

	// Walk the ground-truth chain once, checking every deployment and
	// accumulating per-implementation-bytecode compute counts.
	codeKey := func(d chain.Deployment) [32]byte {
		code := d.Code
		if d.Kind.IsProxy() {
			impl, ok, err := src.CodeAt(ctx, d.Implementation)
			if err != nil || !ok {
				t.Fatalf("b%d/t%d: ground-truth implementation missing", d.Block, d.Tx)
			}
			code = impl
		}
		return keccak.Sum256(code)
	}
	type compute struct {
		ids      int // deployments of this bytecode with a computed event
		afterCut int // ... of which lie after the kill cursor
		total    int // computed events summed over those deployments
	}
	perCode := map[[32]byte]*compute{}
	lost, dups := 0, 0
	for b := uint64(0); b < blocks; b++ {
		blk, err := src.BlockAt(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range blk.Deployments {
			id := fmt.Sprintf("scan-b%08d-t%04d", d.Block, d.Tx)
			info := byID[id]
			if info == nil {
				lost++
				t.Errorf("deployment %s: no durable event — a recovery was lost", id)
				continue
			}
			afterKill := cKill.Less(scan.Cursor{Block: d.Block, Tx: d.Tx})
			if info.count > 1 {
				dups++
				if !afterKill {
					t.Errorf("deployment %s: %d events at or before the kill cursor %v — a checkpointed recovery was redone",
						id, info.count, cKill)
				}
				if info.count > 2 {
					t.Errorf("deployment %s: %d events; one crash explains at most 2", id, info.count)
				}
			}
			if info.computed > 0 {
				k := codeKey(d)
				c := perCode[k]
				if c == nil {
					c = &compute{}
					perCode[k] = c
				}
				c.ids++
				c.total += info.computed
				if afterKill {
					c.afterCut++
				}
			}
		}
	}
	if got, want := len(byID), blocks*perBlock; got != want {
		t.Errorf("%d distinct request ids in the log, want %d", got, want)
	}

	// Dedupe held across the crash: each unique bytecode was computed at
	// most twice, and a recomputation is only legal when the second
	// computing deployment sits in the crash-replay window (its first
	// result reached the log but not the store before the SIGKILL).
	doubles := 0
	for k, c := range perCode {
		if c.total > 2 {
			t.Errorf("bytecode %x: computed %d times across %d deployments; one crash explains at most 2",
				k[:8], c.total, c.ids)
		}
		if c.total == 2 {
			doubles++
			if c.afterCut == 0 {
				t.Errorf("bytecode %x: computed twice with no deployment after the kill cursor %v", k[:8], cKill)
			}
		}
	}
	if len(perCode) == 0 {
		t.Error("no computed events at all; the scan recovered nothing")
	}

	// EFSD attribution: every proxy deployment's implementation template
	// has all of its declared selectors published.
	f, err := os.Open(filepath.Join(dataDir, "efsd.json"))
	if err != nil {
		t.Fatalf("efsd.json: %v", err)
	}
	db, err := efsd.LoadTrusted(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	proxies, missing := 0, 0
	for b := uint64(0); b < blocks; b++ {
		blk, err := src.BlockAt(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range blk.Deployments {
			if !d.Kind.IsProxy() {
				continue
			}
			proxies++
			implCode, ok, err := src.CodeAt(ctx, d.Implementation)
			if err != nil || !ok {
				t.Fatalf("b%d/t%d: implementation missing", d.Block, d.Tx)
			}
			ti := -1
			for i := range tmpls {
				if string(tmpls[i].Code) == string(implCode) {
					ti = i
					break
				}
			}
			if ti < 0 {
				t.Fatalf("b%d/t%d: implementation matches no template", d.Block, d.Tx)
			}
			for _, sig := range tmpls[ti].Functions {
				if _, ok := db.Lookup(sig.Selector()); !ok {
					missing++
					t.Errorf("b%d/t%d (%v): selector %s %s not in EFSD",
						d.Block, d.Tx, d.Kind, sig.Selector().Hex(), sig.Canonical())
				}
			}
		}
	}
	if proxies == 0 {
		t.Fatal("ground-truth chain has no proxy deployments")
	}
	t.Logf("reconciled %d deployments: %d lost, %d crash-window duplicates, %d double-computed bytecodes, %d proxies attributed, %d selectors missing",
		blocks*perBlock, lost, dups, doubles, proxies, missing)
}
