package scan

import (
	"context"
	"strings"
	"testing"

	"sigrec/internal/obs"
	"sigrec/internal/telemetry"
)

// TestScanMetricsLint drives a real backfill so every scan family has
// samples, then holds the whole shared exposition — core, server, scan,
// and the new stage gauges together — to the strict linter with HELP
// text present on each sigrec_scan_* family.
func TestScanMetricsLint(t *testing.T) {
	const blocks = 6
	fx := newScanFixture(t, 33, blocks)
	tracer := obs.New(obs.Config{})
	s := fx.scanner(t, func(c *Config) {
		c.EndBlock = blocks - 1
		c.Tracer = tracer
	})
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := tel.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"sigrec_scan_blocks_ingested_total",
		"sigrec_scan_work_queue_depth",
		"sigrec_scan_stage_inflight",
		"sigrec_scan_queue_wait_microseconds",
		"sigrec_scan_head_lag_blocks",
	} {
		if !strings.Contains(out, "# HELP "+fam+" ") {
			t.Errorf("exposition missing HELP for %s", fam)
		}
	}
	// The stage gauges must be quiescent (all stages drained) after Run.
	snap := tel.Snapshot()
	for stage, v := range snap.LabeledGauges["sigrec_scan_stage_inflight"].Values {
		if v != 0 {
			t.Errorf("stage %s inflight = %d after drain, want 0", stage, v)
		}
	}
	if snap.Summaries["sigrec_scan_queue_wait_microseconds"].Count == 0 {
		t.Error("queue-wait summary saw no observations")
	}
	if errs := telemetry.Lint(out); len(errs) != 0 {
		t.Errorf("scan exposition fails lint: %v", errs)
	}
}

// TestScanSpanAttrs verifies the per-deployment span tree carries the
// chain coordinates and queue-wait the flight recorder needs to make a
// slow deployment attributable.
func TestScanSpanAttrs(t *testing.T) {
	const blocks = 4
	fx := newScanFixture(t, 34, blocks)
	tracer := obs.New(obs.Config{Slowest: 64})
	s := fx.scanner(t, func(c *Config) {
		c.EndBlock = blocks - 1
		c.Tracer = tracer
	})
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs := tracer.Recorder().Snapshot()
	if len(recs.Slowest) == 0 {
		t.Fatal("flight recorder empty after a traced backfill")
	}
	for _, r := range recs.Slowest {
		if !strings.HasPrefix(r.RequestID, "scan-b") {
			t.Errorf("record id %q not a scan deployment", r.RequestID)
		}
		attrs := map[string]bool{}
		for _, a := range r.Root.Attrs {
			attrs[a.Key] = true
		}
		for _, want := range []string{"block", "tx", "queue_wait_us"} {
			if !attrs[want] {
				t.Errorf("record %s root missing attr %q (has %v)", r.RequestID, want, r.Root.Attrs)
			}
		}
		spans := map[string]bool{}
		for _, c := range r.Root.Children {
			spans[c.Name] = true
		}
		if !spans["scan.resolve"] || !spans["scan.publish"] {
			t.Errorf("record %s missing stage spans: %v", r.RequestID, spans)
		}
	}
}
