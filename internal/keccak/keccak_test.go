package keccak

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// Known-answer vectors for Keccak-256 (original padding), including the
// Ethereum function-selector examples from the SigRec paper.
func TestSum256Vectors(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		// The well-known Ethereum empty-code hash.
		{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
		{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
		{"transfer(address,uint256)", "a9059cbb2ab09eb219583f4a59a5d0623ade346d962bcd4e46b11da047c9049b"},
		{"balanceOf(address)", "70a08231b98ef4ca268c9cc3f6b4590e4bfec28280db06bb5d45e689f2a360be"},
		{"approve(address,uint256)", "095ea7b334ae44009aa867bfb386f5c3b4b443ac6f0ee573fa91c4608fbadfba"},
	}
	for _, tc := range tests {
		got := Sum256([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("Sum256(%q) = %x, want %s", tc.in, got, tc.want)
		}
	}
}

func TestSelectorExamples(t *testing.T) {
	// The paper's running example: transfer(address,uint256) -> 0xa9059cbb.
	d := Sum256([]byte("transfer(address,uint256)"))
	if hex.EncodeToString(d[:4]) != "a9059cbb" {
		t.Fatalf("transfer selector = %x", d[:4])
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(data []byte, split uint8) bool {
		cut := int(split) % (len(data) + 1)
		var h Hasher
		_, _ = h.Write(data[:cut])
		_, _ = h.Write(data[cut:])
		want := Sum256(data)
		return bytes.Equal(h.Sum(nil), want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSumIsNonDestructive(t *testing.T) {
	var h Hasher
	_, _ = h.Write([]byte("hello"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("Sum mutated hasher state")
	}
	_, _ = h.Write([]byte(" world"))
	want := Sum256([]byte("hello world"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Error("writes after Sum diverged from one-shot digest")
	}
}

func TestReset(t *testing.T) {
	var h Hasher
	_, _ = h.Write([]byte("garbage"))
	h.Reset()
	_, _ = h.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func TestNoCollisionOnLengths(t *testing.T) {
	// Digests of all-zero messages of different lengths must differ: catches
	// padding mistakes.
	seen := make(map[[Size]byte]int, 300)
	buf := make([]byte, 300)
	for n := 0; n <= 300; n++ {
		d := Sum256(buf[:n])
		if prev, dup := seen[d]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[d] = n
	}
}

func TestSumAppends(t *testing.T) {
	var h Hasher
	_, _ = h.Write([]byte("x"))
	prefix := []byte{1, 2, 3}
	out := h.Sum(prefix)
	if !bytes.Equal(out[:3], prefix) {
		t.Error("Sum did not append to prefix")
	}
	if len(out) != 3+Size {
		t.Errorf("Sum output length %d", len(out))
	}
}

func BenchmarkSum256(b *testing.B) {
	data := make([]byte, 1024)
	r := rand.New(rand.NewSource(1))
	r.Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
