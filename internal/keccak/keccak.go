// Package keccak implements the original Keccak-256 hash (as used by
// Ethereum, with the pre-SHA-3 0x01 domain padding). The standard library
// has no SHA-3 family, so the sponge and the Keccak-f[1600] permutation are
// implemented here from scratch.
package keccak

import "math/bits"

const (
	// rate for Keccak-256: 1600 - 2*256 bits = 1088 bits = 136 bytes.
	rate = 136
	// Size is the digest length in bytes.
	Size = 32
	// rounds of Keccak-f[1600].
	rounds = 24
)

// roundConstants for the iota step.
var roundConstants = [rounds]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y].
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// state is the 5x5 lane array of the sponge.
type state [25]uint64

// permute applies Keccak-f[1600] in place.
func (a *state) permute() {
	var c, d [5]uint64
	var b [25]uint64
	for round := 0; round < rounds; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// rho and pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(a[x+5*y], int(rotc[x][y]))
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

// Hasher computes a Keccak-256 digest incrementally. The zero value is ready
// to use. It implements a subset of hash.Hash (Write/Sum semantics) without
// claiming the interface, since Sum256 covers most callers.
type Hasher struct {
	a      state
	buf    [rate]byte
	buffed int
}

// Write absorbs p into the sponge. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		take := copy(h.buf[h.buffed:], p)
		h.buffed += take
		p = p[take:]
		if h.buffed == rate {
			h.absorb()
		}
	}
	return n, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		h.a[i] ^= le64(h.buf[i*8:])
	}
	h.a.permute()
	h.buffed = 0
}

// Sum returns the digest of everything written so far appended to b. The
// hasher state is not modified, so further writes continue the same stream.
func (h *Hasher) Sum(b []byte) []byte {
	// Work on a copy so Sum is non-destructive.
	cp := *h
	// Original Keccak padding: 0x01 ... 0x80.
	cp.buf[cp.buffed] = 0x01
	for i := cp.buffed + 1; i < rate; i++ {
		cp.buf[i] = 0
	}
	cp.buf[rate-1] |= 0x80
	cp.absorb()
	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		putLE64(out[i*8:], cp.a[i])
	}
	return append(b, out[:]...)
}

// Reset restores the initial state.
func (h *Hasher) Reset() {
	*h = Hasher{}
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [Size]byte {
	var h Hasher
	_, _ = h.Write(data)
	var out [Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
