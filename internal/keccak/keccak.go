// Package keccak implements the original Keccak-256 hash (as used by
// Ethereum, with the pre-SHA-3 0x01 domain padding). The standard library
// has no SHA-3 family, so the sponge and the Keccak-f[1600] permutation are
// implemented here from scratch.
package keccak

import "math/bits"

const (
	// rate for Keccak-256: 1600 - 2*256 bits = 1088 bits = 136 bytes.
	rate = 136
	// Size is the digest length in bytes.
	Size = 32
	// rounds of Keccak-f[1600].
	rounds = 24
)

// roundConstants for the iota step.
var roundConstants = [rounds]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y].
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// state is the 5x5 lane array of the sponge.
type state [25]uint64

// permute applies Keccak-f[1600] in place. The round body is fully
// unrolled with constant indices and rotation amounts (generated from the
// rho offset table), which keeps the lanes in registers and eliminates the
// bounds checks and modular index arithmetic of the textbook loops.
func (a *state) permute() {
	var b [25]uint64
	for round := 0; round < rounds; round++ {
		// theta
		c0 := a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20]
		c1 := a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21]
		c2 := a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22]
		c3 := a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23]
		c4 := a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24]
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		a[0] ^= d0
		a[5] ^= d0
		a[10] ^= d0
		a[15] ^= d0
		a[20] ^= d0
		a[1] ^= d1
		a[6] ^= d1
		a[11] ^= d1
		a[16] ^= d1
		a[21] ^= d1
		a[2] ^= d2
		a[7] ^= d2
		a[12] ^= d2
		a[17] ^= d2
		a[22] ^= d2
		a[3] ^= d3
		a[8] ^= d3
		a[13] ^= d3
		a[18] ^= d3
		a[23] ^= d3
		a[4] ^= d4
		a[9] ^= d4
		a[14] ^= d4
		a[19] ^= d4
		a[24] ^= d4
		// rho and pi
		b[0] = a[0]
		b[16] = bits.RotateLeft64(a[5], 36)
		b[7] = bits.RotateLeft64(a[10], 3)
		b[23] = bits.RotateLeft64(a[15], 41)
		b[14] = bits.RotateLeft64(a[20], 18)
		b[10] = bits.RotateLeft64(a[1], 1)
		b[1] = bits.RotateLeft64(a[6], 44)
		b[17] = bits.RotateLeft64(a[11], 10)
		b[8] = bits.RotateLeft64(a[16], 45)
		b[24] = bits.RotateLeft64(a[21], 2)
		b[20] = bits.RotateLeft64(a[2], 62)
		b[11] = bits.RotateLeft64(a[7], 6)
		b[2] = bits.RotateLeft64(a[12], 43)
		b[18] = bits.RotateLeft64(a[17], 15)
		b[9] = bits.RotateLeft64(a[22], 61)
		b[5] = bits.RotateLeft64(a[3], 28)
		b[21] = bits.RotateLeft64(a[8], 55)
		b[12] = bits.RotateLeft64(a[13], 25)
		b[3] = bits.RotateLeft64(a[18], 21)
		b[19] = bits.RotateLeft64(a[23], 56)
		b[15] = bits.RotateLeft64(a[4], 27)
		b[6] = bits.RotateLeft64(a[9], 20)
		b[22] = bits.RotateLeft64(a[14], 39)
		b[13] = bits.RotateLeft64(a[19], 8)
		b[4] = bits.RotateLeft64(a[24], 14)
		// chi
		a[0] = b[0] ^ (^b[1] & b[2])
		a[1] = b[1] ^ (^b[2] & b[3])
		a[2] = b[2] ^ (^b[3] & b[4])
		a[3] = b[3] ^ (^b[4] & b[0])
		a[4] = b[4] ^ (^b[0] & b[1])
		a[5] = b[5] ^ (^b[6] & b[7])
		a[6] = b[6] ^ (^b[7] & b[8])
		a[7] = b[7] ^ (^b[8] & b[9])
		a[8] = b[8] ^ (^b[9] & b[5])
		a[9] = b[9] ^ (^b[5] & b[6])
		a[10] = b[10] ^ (^b[11] & b[12])
		a[11] = b[11] ^ (^b[12] & b[13])
		a[12] = b[12] ^ (^b[13] & b[14])
		a[13] = b[13] ^ (^b[14] & b[10])
		a[14] = b[14] ^ (^b[10] & b[11])
		a[15] = b[15] ^ (^b[16] & b[17])
		a[16] = b[16] ^ (^b[17] & b[18])
		a[17] = b[17] ^ (^b[18] & b[19])
		a[18] = b[18] ^ (^b[19] & b[15])
		a[19] = b[19] ^ (^b[15] & b[16])
		a[20] = b[20] ^ (^b[21] & b[22])
		a[21] = b[21] ^ (^b[22] & b[23])
		a[22] = b[22] ^ (^b[23] & b[24])
		a[23] = b[23] ^ (^b[24] & b[20])
		a[24] = b[24] ^ (^b[20] & b[21])
		// iota
		a[0] ^= roundConstants[round]
	}
}

// Hasher computes a Keccak-256 digest incrementally. The zero value is ready
// to use. It implements a subset of hash.Hash (Write/Sum semantics) without
// claiming the interface, since Sum256 covers most callers.
type Hasher struct {
	a      state
	buf    [rate]byte
	buffed int
}

// Write absorbs p into the sponge. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		take := copy(h.buf[h.buffed:], p)
		h.buffed += take
		p = p[take:]
		if h.buffed == rate {
			h.absorb()
		}
	}
	return n, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		h.a[i] ^= le64(h.buf[i*8:])
	}
	h.a.permute()
	h.buffed = 0
}

// Sum returns the digest of everything written so far appended to b. The
// hasher state is not modified, so further writes continue the same stream.
func (h *Hasher) Sum(b []byte) []byte {
	// Work on a copy so Sum is non-destructive.
	cp := *h
	// Original Keccak padding: 0x01 ... 0x80.
	cp.buf[cp.buffed] = 0x01
	for i := cp.buffed + 1; i < rate; i++ {
		cp.buf[i] = 0
	}
	cp.buf[rate-1] |= 0x80
	cp.absorb()
	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		putLE64(out[i*8:], cp.a[i])
	}
	return append(b, out[:]...)
}

// Reset restores the initial state.
func (h *Hasher) Reset() {
	*h = Hasher{}
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [Size]byte {
	var h Hasher
	_, _ = h.Write(data)
	var out [Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
