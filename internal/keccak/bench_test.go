package keccak

import "testing"

func BenchmarkSum256_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
