package solc

import (
	"fmt"

	"sigrec/internal/evm"
)

// Memory layout of generated code. Loop counters and saved offset/num fields
// live in a scratch region well above the parameter copy regions, so the two
// never collide and symbolic memory resolution stays exact.
const (
	// regionBase is where parameter copy regions start.
	regionBase = 0x100
	// regionStride separates per-parameter copy regions.
	regionStride = 0x8000
	// scratchBase is where loop counters and saved fields start.
	scratchBase = 0x40000
)

// codegen carries the state of one Compile call.
type codegen struct {
	cfg Config
	asm *evm.Assembler

	// per-function state
	scratchNext uint64
	sinkNext    uint64
}

// contract emits the dispatcher and all function bodies.
func (g *codegen) contract(c Contract) ([]byte, error) {
	a := g.asm
	if g.cfg.Version.CallValueGuard {
		// Non-payable prologue: revert when value was sent.
		ok := a.NewLabel()
		a.Op(evm.CALLVALUE).Op(evm.ISZERO)
		a.JumpI(ok)
		a.Push(0).Push(0).Op(evm.REVERT)
		a.Bind(ok)
	}
	// Selector extraction.
	a.Push(0).Op(evm.CALLDATALOAD)
	if g.cfg.Version.UseSHR {
		// SHR takes the shift amount from the stack top.
		a.Push(0xe0).Op(evm.SHR)
	} else {
		// DIV by 2^224 then mask to 4 bytes.
		div := make([]byte, 29)
		div[0] = 0x01
		a.PushBytes(div).Swap(1).Op(evm.DIV)
		a.PushBytes([]byte{0xff, 0xff, 0xff, 0xff}).Op(evm.AND)
	}
	// Dispatch: a linear EQ ladder for small contracts, the binary-search
	// split real solc emits for larger ones (the split comparisons are the
	// GT tests function-id extraction must see through).
	bodies := make([]evm.Label, len(c.Functions))
	for i := range c.Functions {
		bodies[i] = a.NewLabel()
	}
	if len(c.Functions) >= binarySearchThreshold {
		g.binaryDispatch(c.Functions, bodies)
	} else {
		for i, f := range c.Functions {
			sel := f.Sig.Selector()
			a.Dup(1).PushBytes(sel[:]).Op(evm.EQ)
			a.JumpI(bodies[i])
		}
	}
	// Fallback: no match.
	a.Op(evm.POP).Op(evm.STOP)
	// Bodies.
	for i, f := range c.Functions {
		a.Bind(bodies[i])
		a.Op(evm.POP) // drop the selector copy
		if err := g.functionBody(f); err != nil {
			return nil, fmt.Errorf("solc: %s: %w", f.Sig.Canonical(), err)
		}
		a.Op(evm.STOP)
	}
	return a.Assemble()
}

// binarySearchThreshold is the function count at which the dispatcher
// switches from a linear ladder to binary search (solc uses a similar
// heuristic).
const binarySearchThreshold = 6

// binaryDispatch emits the split dispatcher: the selector space is halved
// with GT comparisons until a small group remains, which gets EQ tests.
func (g *codegen) binaryDispatch(fns []Function, bodies []evm.Label) {
	type entry struct {
		sel  uint64
		body evm.Label
	}
	entries := make([]entry, len(fns))
	for i, f := range fns {
		sel := f.Sig.Selector()
		entries[i] = entry{
			sel: uint64(sel[0])<<24 | uint64(sel[1])<<16 |
				uint64(sel[2])<<8 | uint64(sel[3]),
			body: bodies[i],
		}
	}
	sorted := append([]entry(nil), entries...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].sel > sorted[j].sel; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	a := g.asm
	noMatch := a.NewLabel()
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo <= 3 {
			for _, e := range sorted[lo:hi] {
				a.Dup(1).Push(e.sel).Op(evm.EQ)
				a.JumpI(e.body)
			}
			a.Jump(noMatch)
			return
		}
		mid := (lo + hi) / 2
		lower := a.NewLabel()
		// if pivot > selector, search the lower half (stack keeps [sel])
		a.Dup(1).Push(sorted[mid].sel).Op(evm.GT)
		a.JumpI(lower)
		split(mid, hi)
		a.Bind(lower)
		split(lo, mid)
	}
	split(0, len(sorted))
	a.Bind(noMatch)
	a.Op(evm.POP)
	a.Op(evm.STOP)
	// The caller's shared fallback (POP; STOP) is unreachable for binary
	// dispatch; leave the stack as the linear path would ([sel]) so the
	// emitted dead code stays well formed.
	a.Push(0)
}

// functionBody emits the parameter-accessing code for one function.
func (g *codegen) functionBody(f Function) error {
	g.scratchNext = scratchBase
	g.sinkNext = 0
	head := uint64(4)
	for i, t := range f.Sig.Inputs {
		if i < len(f.StorageRef) && f.StorageRef[i] {
			// Storage-modifier parameter: the call data slot is a storage
			// reference, read as one word and dereferenced (paper case 4).
			g.calldataload(constLoc(head))
			g.asm.Op(evm.SLOAD)
			g.sink()
			head += 32
			continue
		}
		if err := g.param(t, f.Mode, f.usage(i), head, regionBase+uint64(i)*regionStride); err != nil {
			return fmt.Errorf("parameter %d (%s): %w", i, t.Display(), err)
		}
		head += uint64(t.HeadSize())
	}
	// Inline-assembly reads of undeclared values (paper case 1).
	for k := 0; k < f.AsmReads; k++ {
		g.calldataload(constLoc(head + uint64(32*k)))
		g.sink()
	}
	return nil
}

// --- low-level emission helpers ---

// scratch allocates a 32-byte scratch slot.
func (g *codegen) scratch() uint64 {
	s := g.scratchNext
	g.scratchNext += 32
	return s
}

// sink stores the stack top into the next storage slot (the generated
// body's way of "using" a value, observable by the concrete interpreter).
func (g *codegen) sink() {
	g.asm.Push(g.sinkNext).Op(evm.SSTORE)
	g.sinkNext++
}

// storeTo saves the stack top into a memory slot.
func (g *codegen) storeTo(slot uint64) {
	g.asm.Push(slot).Op(evm.MSTORE)
}

// loadFrom pushes the value of a memory slot.
func (g *codegen) loadFrom(slot uint64) {
	g.asm.Push(slot).Op(evm.MLOAD)
}

// term is one linear component of a runtime address: coeff * MLOAD(slot).
type term struct {
	slot  uint64
	coeff uint64
}

// loc is a runtime-computable call-data or memory address:
// constant + sum(coeff * MLOAD(slot)).
type loc struct {
	c     uint64
	terms []term
}

func constLoc(c uint64) loc { return loc{c: c} }

func (l loc) add(c uint64) loc {
	out := loc{c: l.c + c, terms: make([]term, len(l.terms))}
	copy(out.terms, l.terms)
	return out
}

func (l loc) addTerm(slot, coeff uint64) loc {
	out := l.add(0)
	out.terms = append(out.terms, term{slot: slot, coeff: coeff})
	return out
}

// isConst reports whether the address needs no runtime computation.
func (l loc) isConst() bool { return len(l.terms) == 0 }

// push emits code leaving the address value on the stack.
func (g *codegen) push(l loc) {
	a := g.asm
	a.Push(l.c)
	for _, t := range l.terms {
		g.loadFrom(t.slot)
		if t.coeff != 1 {
			a.Push(t.coeff).Op(evm.MUL)
		}
		a.Op(evm.ADD)
	}
}

// calldataload emits CALLDATALOAD of the address.
func (g *codegen) calldataload(l loc) {
	g.push(l)
	g.asm.Op(evm.CALLDATALOAD)
}

// mload emits MLOAD of the address.
func (g *codegen) mload(l loc) {
	g.push(l)
	g.asm.Op(evm.MLOAD)
}

// calldatacopy emits CALLDATACOPY(dst, src, length). Each argument is
// emitted with push, so any of them may be runtime-computed. lengthPush
// emits the length; it runs first (stack order: length deepest).
func (g *codegen) calldatacopy(dst, src loc, lengthPush func()) {
	lengthPush()
	g.push(src)
	g.push(dst)
	g.asm.Op(evm.CALLDATACOPY)
}

// emitLoop emits a counted loop `for i := 0; i < bound; i++ { body }` with
// the counter in a fresh scratch slot. boundPush emits the bound value.
// The loop guard compiles to the LT instruction whose control dependence
// SigRec's rules R2/R3 key on.
func (g *codegen) emitLoop(boundPush func(), body func(iSlot uint64)) {
	a := g.asm
	iSlot := g.scratch()
	a.Push(0)
	g.storeTo(iSlot)
	top := a.NewLabel()
	exit := a.NewLabel()
	a.Bind(top)
	boundPush()       // bound
	g.loadFrom(iSlot) // i on top
	a.Op(evm.LT)      // i < bound
	a.Op(evm.ISZERO)  // negate
	a.JumpI(exit)     // exit when done
	body(iSlot)
	g.loadFrom(iSlot)
	a.Push(1).Op(evm.ADD)
	g.storeTo(iSlot)
	a.Jump(top)
	a.Bind(exit)
}

// pushConst is a boundPush for compile-time bounds.
func (g *codegen) pushConst(v uint64) func() {
	return func() { g.asm.Push(v) }
}

// pushSlot is a boundPush for runtime bounds saved in scratch.
func (g *codegen) pushSlot(slot uint64) func() {
	return func() { g.loadFrom(slot) }
}
