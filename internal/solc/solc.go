// Package solc is a pattern-faithful miniature Solidity compiler.
//
// It does not compile Solidity source; it compiles *function declarations*
// (signatures plus a usage plan describing how the body touches each
// parameter) into EVM runtime bytecode whose parameter-accessing instruction
// sequences match the ones real solc emits, as documented in §2.3.1 of the
// SigRec paper: the DIV/SHR dispatcher, AND masks for unsigned integers and
// fixed byte sequences, SIGNEXTEND for signed integers, double-ISZERO for
// bools, CALLDATACOPY loops for arrays in public functions, LT bound-check
// chains for arrays in external functions, and offset/num chains for
// dynamic types.
//
// This package is the substitution for the paper's corpus of contracts
// compiled by 155 real solc versions (see DESIGN.md §4): SigRec keys only on
// these accessing patterns, so generating them directly preserves the
// inference problem while remaining fully self-contained.
package solc

import (
	"fmt"
	"sync"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// Mode distinguishes how a function's parameters are accessed.
type Mode int

// Function visibility modes (they differ in array access patterns).
const (
	// Public functions copy array/bytes parameters to memory with
	// CALLDATACOPY before use.
	Public Mode = iota + 1
	// External functions read parameters from call data on demand with
	// CALLDATALOAD.
	External
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Public:
		return "public"
	case External:
		return "external"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Usage describes the clues a function body provides about one parameter.
// The paper's accuracy losses (its "case 5") come precisely from bodies that
// leave these false.
type Usage struct {
	// Math involves the value in arithmetic: distinguishes uint160 from
	// address (rule R16) and is the natural state for integers.
	Math bool
	// SignedOp applies a signed operation (SDIV): distinguishes int256
	// from uint256 (rule R15).
	SignedOp bool
	// ByteAccess reads a single byte: distinguishes bytes32 from uint256
	// (rules R17/R18) and bytes from string.
	ByteAccess bool
	// ItemAccess reads an element of an array/list (needed to learn the
	// element type).
	ItemAccess bool
	// ConstIndex uses a compile-time-constant index for external static
	// arrays; combined with optimization it removes the runtime bound
	// checks and with them SigRec's evidence (paper case 5).
	ConstIndex bool
}

// DefaultUsage returns the clue-rich usage for a type: every distinguishing
// operation the type supports is exercised.
func DefaultUsage(t abi.Type) Usage {
	u := Usage{ItemAccess: true}
	switch t.Kind {
	case abi.KindUint:
		u.Math = true
	case abi.KindInt:
		u.SignedOp = true
	case abi.KindFixedBytes:
		u.ByteAccess = t.Size == 32 // bytes32 needs BYTE; narrower widths mask
	case abi.KindBytes, abi.KindBoundedBytes:
		u.ByteAccess = true
	case abi.KindArray, abi.KindSlice:
		eu := DefaultUsage(*t.Elem)
		u.Math, u.SignedOp, u.ByteAccess = eu.Math, eu.SignedOp, eu.ByteAccess
	case abi.KindTuple:
		for _, f := range t.Fields {
			fu := DefaultUsage(f)
			u.Math = u.Math || fu.Math
			u.SignedOp = u.SignedOp || fu.SignedOp
			u.ByteAccess = u.ByteAccess || fu.ByteAccess
		}
	}
	return u
}

// Function is one public/external function to compile.
type Function struct {
	Sig  abi.Signature
	Mode Mode
	// Plan holds one Usage per parameter; nil means DefaultUsage for all.
	Plan []Usage
	// AsmReads emits that many 32-byte call-data reads beyond the declared
	// parameters, modeling inline-assembly calldataload() of undeclared
	// values (the paper's accuracy case 1: SigRec reports them as
	// parameters because it infers from usage, not declarations).
	AsmReads int
	// StorageRef marks parameters declared with the storage modifier: the
	// call data carries a storage slot reference, so the body reads a
	// single word and dereferences storage (the paper's case 4).
	StorageRef []bool
}

// usage returns the plan entry for parameter i.
func (f Function) usage(i int) Usage {
	if i < len(f.Plan) {
		return f.Plan[i]
	}
	return DefaultUsage(f.Sig.Inputs[i])
}

// Contract is a set of functions compiled behind one dispatcher.
type Contract struct {
	Functions []Function
}

// Version describes a compiler dialect. The fields are the properties that
// changed across real solc releases and that affect the patterns SigRec
// sees.
type Version struct {
	// Name is the release label, e.g. "0.4.24".
	Name string
	// UseSHR selects the SHR-based selector extraction (solc >= 0.5.0)
	// instead of the DIV-by-2^224 form.
	UseSHR bool
	// CallValueGuard emits the non-payable prologue.
	CallValueGuard bool
	// ABIEncoderV2 enables struct and nested-array parameters
	// (solc >= 0.4.19 experimental, default from 0.8.0).
	ABIEncoderV2 bool
}

// Config selects the dialect and optimization level.
type Config struct {
	Version  Version
	Optimize bool
}

// Versions returns the ladder of representative dialects, oldest first.
// Each minor release family shares pattern behaviour with its siblings,
// exactly as the paper observes (accuracy is flat across versions).
// The returned slice is shared and must not be modified.
func Versions() []Version { return versionsOnce() }

var versionsOnce = sync.OnceValue(buildVersions)

func buildVersions() []Version {
	var out []Version
	add := func(name string, shr, guard, v2 bool, patches int) {
		for p := 0; p < patches; p++ {
			out = append(out, Version{
				Name:           fmt.Sprintf("%s.%d", name, p),
				UseSHR:         shr,
				CallValueGuard: guard,
				ABIEncoderV2:   v2,
			})
		}
	}
	add("0.1", false, false, false, 7)
	add("0.2", false, false, false, 2)
	add("0.3", false, false, false, 6)
	add("0.4", false, true, false, 26)
	add("0.5", true, true, true, 17)
	add("0.6", true, true, true, 12)
	add("0.7", true, true, true, 6)
	add("0.8", true, true, true, 1)
	return out
}

// DefaultVersion is a modern dialect for callers that do not sweep versions.
func DefaultVersion() Version {
	return Version{Name: "0.8.0", UseSHR: true, CallValueGuard: true, ABIEncoderV2: true}
}

// LegacyVersion is a pre-0.5 dialect (DIV dispatch).
func LegacyVersion() Version {
	return Version{Name: "0.4.24", CallValueGuard: true}
}

// CompileDeployment wraps the runtime bytecode in the standard constructor
// stub: the init code copies the runtime to memory and returns it, exactly
// what a deployment transaction carries.
func CompileDeployment(c Contract, cfg Config) ([]byte, error) {
	runtime, err := Compile(c, cfg)
	if err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	// CODECOPY(0, initLen, len(runtime)); RETURN(0, len(runtime))
	// The init stub length is fixed: emit with placeholder-free layout by
	// computing sizes up front (PUSH2 immediates keep widths stable).
	push2 := func(v int) {
		a.PushBytes([]byte{byte(v >> 8), byte(v)})
	}
	const stubLen = 3 + 3 + 2 + 1 + 3 + 2 + 1 // PUSH2 PUSH2 PUSH1 CODECOPY PUSH2 PUSH1 RETURN
	push2(len(runtime))
	push2(stubLen)
	a.Push(0)
	a.Op(evm.CODECOPY)
	push2(len(runtime))
	a.Push(0)
	a.Op(evm.RETURN)
	stub, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	if len(stub) != stubLen {
		return nil, fmt.Errorf("solc: init stub is %d bytes, expected %d", len(stub), stubLen)
	}
	return append(stub, runtime...), nil
}

// Compile produces runtime bytecode for the contract.
func Compile(c Contract, cfg Config) ([]byte, error) {
	for _, f := range c.Functions {
		if err := f.Sig.Validate(); err != nil {
			return nil, fmt.Errorf("solc: %s: %w", f.Sig.Canonical(), err)
		}
		for _, in := range f.Sig.Inputs {
			if in.IsVyperOnly() {
				return nil, fmt.Errorf("solc: %s: type %s is Vyper-only", f.Sig.Canonical(), in.Display())
			}
			if needsEncoderV2(in) && !cfg.Version.ABIEncoderV2 {
				return nil, fmt.Errorf("solc: %s: type %s needs ABIEncoderV2 (version %s)",
					f.Sig.Canonical(), in.Display(), cfg.Version.Name)
			}
		}
	}
	g := &codegen{cfg: cfg, asm: evm.NewAssembler()}
	return g.contract(c)
}

// needsEncoderV2 reports whether the type requires the V2 encoder (structs
// and nested arrays, per the paper's Table 4 discussion).
func needsEncoderV2(t abi.Type) bool {
	switch t.Kind {
	case abi.KindTuple:
		return true
	case abi.KindArray, abi.KindSlice:
		// A dynamic dimension below the top makes a nested array.
		return hasInnerDynamic(*t.Elem)
	default:
		return false
	}
}

func hasInnerDynamic(t abi.Type) bool {
	switch t.Kind {
	case abi.KindSlice, abi.KindBytes, abi.KindString:
		return true
	case abi.KindArray:
		return hasInnerDynamic(*t.Elem)
	default:
		return false
	}
}
