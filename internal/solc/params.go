package solc

import (
	"fmt"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// param emits the accessing code for one top-level parameter whose head slot
// starts at absolute call-data offset headOff. region is the memory region
// reserved for this parameter's CALLDATACOPY destination in public mode.
func (g *codegen) param(t abi.Type, mode Mode, u Usage, headOff, region uint64) error {
	switch {
	case isBasic(t):
		g.calldataload(constLoc(headOff))
		g.basicOps(t, u)
		g.sink()
		return nil

	case t.Kind == abi.KindTuple && !t.IsDynamic():
		// Static struct: the call data layout and accessing code are the
		// same as for the flattened members (paper §2.3.1, struct). Each
		// member uses its own default usage so the emitted body is
		// byte-identical to the flattened declaration.
		off := headOff
		for i, f := range t.Fields {
			if err := g.param(f, mode, DefaultUsage(f), off, region+uint64(i)*0x1000); err != nil {
				return err
			}
			off += uint64(f.HeadSize())
		}
		return nil

	case isStaticBasicArray(t):
		if mode == Public {
			return g.staticArrayPublic(t, u, headOff, region)
		}
		return g.staticArrayExternal(t, u, headOff)

	case t.Kind == abi.KindSlice && isStaticBasicArrayOrBasic(*t.Elem):
		// Dynamic array: one dynamic (highest) dimension over a static body.
		if mode == Public {
			return g.dynArrayPublic(t, u, headOff, region)
		}
		return g.onDemand(t, u, constLoc(4), constLoc(headOff))

	case t.Kind == abi.KindBytes || t.Kind == abi.KindString:
		if mode == Public {
			return g.bytesPublic(t, u, headOff, region)
		}
		return g.onDemand(t, u, constLoc(4), constLoc(headOff))

	default:
		// Nested arrays and dynamic structs: the paper observes the public
		// and external accessing patterns coincide (on-demand reads).
		return g.onDemand(t, u, constLoc(4), constLoc(headOff))
	}
}

// --- shape helpers ---

func isBasic(t abi.Type) bool {
	switch t.Kind {
	case abi.KindUint, abi.KindInt, abi.KindAddress, abi.KindBool, abi.KindFixedBytes:
		return true
	default:
		return false
	}
}

// isStaticBasicArray reports a T[N1]...[Nk] with basic T and all dims static.
func isStaticBasicArray(t abi.Type) bool {
	if t.Kind != abi.KindArray {
		return false
	}
	return isStaticBasicArrayOrBasic(*t.Elem)
}

func isStaticBasicArrayOrBasic(t abi.Type) bool {
	for t.Kind == abi.KindArray {
		t = *t.Elem
	}
	return isBasic(t)
}

// arrayShape returns outermost-first dimension lengths (0 marks the dynamic
// top dimension of a slice) and the basic element type.
func arrayShape(t abi.Type) (dims []uint64, elem abi.Type) {
	for {
		switch t.Kind {
		case abi.KindArray:
			dims = append(dims, uint64(t.Len))
			t = *t.Elem
		case abi.KindSlice:
			dims = append(dims, 0)
			t = *t.Elem
		default:
			return dims, t
		}
	}
}

// strides returns, for each dimension, the byte stride of its index
// (product of the inner dimensions times 32).
func strides(dims []uint64) []uint64 {
	out := make([]uint64, len(dims))
	acc := uint64(32)
	for j := len(dims) - 1; j >= 0; j-- {
		out[j] = acc
		acc *= dims[j]
	}
	return out
}

// --- basic value operations ---

// basicOps applies the type's distinguishing instruction pattern to the
// value on the stack top, leaving the transformed value there.
func (g *codegen) basicOps(t abi.Type, u Usage) {
	a := g.asm
	switch t.Kind {
	case abi.KindUint:
		if t.Bits < 256 {
			a.PushBytes(onesMask(t.Bits / 8)).Op(evm.AND)
		}
		if u.Math {
			a.Push(1).Op(evm.ADD)
		}
	case abi.KindInt:
		if t.Bits < 256 {
			a.Push(uint64(t.Bits/8 - 1)).Op(evm.SIGNEXTEND)
		}
		if u.SignedOp {
			a.Push(2).Op(evm.SDIV)
		}
	case abi.KindAddress:
		a.PushBytes(onesMask(20)).Op(evm.AND)
	case abi.KindBool:
		a.Op(evm.ISZERO).Op(evm.ISZERO)
	case abi.KindFixedBytes:
		if t.Size < 32 {
			a.PushBytes(highMask(t.Size)).Op(evm.AND)
		} else if u.ByteAccess {
			a.Push(0).Op(evm.BYTE)
		}
	}
}

// onesMask is M bytes of 0xff (the low mask PUSHed for uintM / address).
func onesMask(nBytes int) []byte {
	b := make([]byte, nBytes)
	for i := range b {
		b[i] = 0xff
	}
	return b
}

// highMask is the full-width mask with the high n bytes set (bytesN).
func highMask(nBytes int) []byte {
	b := make([]byte, 32)
	for i := 0; i < nBytes; i++ {
		b[i] = 0xff
	}
	return b
}

// --- public-mode copy emitters ---

// staticArrayPublic copies a static array to memory with a CALLDATACOPY
// nest of depth dims-1 (paper Listing 1), then optionally reads one item.
func (g *codegen) staticArrayPublic(t abi.Type, u Usage, headOff, region uint64) error {
	dims, elem := arrayShape(t)
	st := strides(dims)
	rowLen := dims[len(dims)-1] * 32
	if len(dims) == 1 {
		g.calldatacopy(constLoc(region), constLoc(headOff), g.pushConst(rowLen))
	} else {
		g.copyNest(dims[:len(dims)-1], st, rowLen, constLoc(region), constLoc(headOff), 0)
	}
	if u.ItemAccess {
		g.mload(constLoc(region))
		g.basicOps(elem, u)
		g.sink()
	}
	return nil
}

// copyNest emits nested copy loops over dims[level:]; innermost copies rows.
func (g *codegen) copyNest(loopDims, st []uint64, rowLen uint64, dst, src loc, level int) {
	if level == len(loopDims) {
		g.calldatacopy(dst, src, g.pushConst(rowLen))
		return
	}
	g.emitLoop(g.pushConst(loopDims[level]), func(iSlot uint64) {
		g.copyNest(loopDims, st, rowLen,
			dst.addTerm(iSlot, st[level]),
			src.addTerm(iSlot, st[level]),
			level+1)
	})
}

// dynArrayPublic reads the offset and num fields, stores num to memory, and
// copies all items (paper §2.3.1, dynamic array, public mode).
func (g *codegen) dynArrayPublic(t abi.Type, u Usage, headOff, region uint64) error {
	dims, elem := arrayShape(t)
	st := strides(dims)
	offSlot := g.scratch()
	numSlot := g.scratch()
	// offset field
	g.calldataload(constLoc(headOff))
	g.storeTo(offSlot)
	// num field at 4 + offset
	g.calldataload(loc{c: 4, terms: []term{{slot: offSlot, coeff: 1}}})
	g.storeTo(numSlot)
	// item number is placed at the start of the memory region (MSTORE).
	g.loadFrom(numSlot)
	g.storeTo(region)
	itemsSrc := loc{c: 4 + 32, terms: []term{{slot: offSlot, coeff: 1}}}
	itemsDst := constLoc(region + 32)
	if len(dims) == 1 {
		// One CALLDATACOPY of num*32 bytes.
		g.calldatacopy(itemsDst, itemsSrc, func() {
			g.loadFrom(numSlot)
			g.asm.Push(32).Op(evm.MUL)
		})
	} else {
		rowLen := dims[len(dims)-1] * 32
		g.dynCopyNest(dims[:len(dims)-1], st, rowLen, itemsDst, itemsSrc, numSlot, 0)
	}
	if u.ItemAccess {
		g.mload(constLoc(region + 32))
		g.basicOps(elem, u)
		g.sink()
	}
	return nil
}

// dynCopyNest is copyNest with a runtime bound for the top dimension.
func (g *codegen) dynCopyNest(loopDims, st []uint64, rowLen uint64, dst, src loc, numSlot uint64, level int) {
	if level == len(loopDims) {
		g.calldatacopy(dst, src, g.pushConst(rowLen))
		return
	}
	bound := g.pushConst(loopDims[level])
	if level == 0 {
		bound = g.pushSlot(numSlot)
	}
	g.emitLoop(bound, func(iSlot uint64) {
		g.dynCopyNest(loopDims, st, rowLen,
			dst.addTerm(iSlot, st[level]),
			src.addTerm(iSlot, st[level]),
			numSlot, level+1)
	})
}

// bytesPublic copies a bytes/string parameter: the copy length is the num
// field rounded up to a multiple of 32 (this rounding, instead of num*32,
// is what rule R8 keys on).
func (g *codegen) bytesPublic(t abi.Type, u Usage, headOff, region uint64) error {
	offSlot := g.scratch()
	numSlot := g.scratch()
	g.calldataload(constLoc(headOff))
	g.storeTo(offSlot)
	g.calldataload(loc{c: 4, terms: []term{{slot: offSlot, coeff: 1}}})
	g.storeTo(numSlot)
	g.loadFrom(numSlot)
	g.storeTo(region)
	g.calldatacopy(constLoc(region+32), loc{c: 36, terms: []term{{slot: offSlot, coeff: 1}}}, func() {
		// ((num + 31) / 32) * 32
		a := g.asm
		g.loadFrom(numSlot)
		a.Push(31).Op(evm.ADD)
		a.Push(32).Swap(1).Op(evm.DIV)
		a.Push(32).Op(evm.MUL)
	})
	g.mload(constLoc(region + 32))
	if t.Kind == abi.KindBytes && u.ByteAccess {
		g.asm.Push(0).Op(evm.BYTE)
	}
	g.sink()
	return nil
}

// --- on-demand reader (external arrays, nested arrays, dynamic structs) ---

// onDemand emits code that reads a value of type t directly from the call
// data. frame is the absolute offset of the enclosing encoding frame (4 for
// top-level parameters); head is the absolute offset of this value's head
// slot. Offsets stored in the call data are relative to frame.
func (g *codegen) onDemand(t abi.Type, u Usage, frame, head loc) error {
	switch {
	case isBasic(t):
		g.calldataload(head)
		g.basicOps(t, u)
		g.sink()
		return nil

	case t.Kind == abi.KindArray && !t.IsDynamic():
		// Inline static array: bound-checked loop per dimension.
		elemSize := uint64(t.Elem.HeadSize())
		var err error
		g.emitLoop(g.pushConst(uint64(t.Len)), func(iSlot uint64) {
			if e := g.onDemand(*t.Elem, u, frame, head.addTerm(iSlot, elemSize)); e != nil {
				err = e
			}
		})
		return err

	case t.Kind == abi.KindArray && t.IsDynamic():
		// Static-length array of dynamic elements: the head slot holds an
		// offset; the body is a sequence of per-element offset slots.
		body := g.deref(frame, head)
		var err error
		g.emitLoop(g.pushConst(uint64(t.Len)), func(iSlot uint64) {
			if e := g.onDemand(*t.Elem, u, body, body.addTerm(iSlot, 32)); e != nil {
				err = e
			}
		})
		return err

	case t.Kind == abi.KindSlice:
		body := g.deref(frame, head)
		numSlot := g.scratch()
		g.calldataload(body)
		g.storeTo(numSlot)
		seq := body.add(32)
		elemSize := uint64(32)
		if !t.Elem.IsDynamic() {
			elemSize = uint64(t.Elem.HeadSize())
		}
		var err error
		g.emitLoop(g.pushSlot(numSlot), func(iSlot uint64) {
			if e := g.onDemand(*t.Elem, u, seq, seq.addTerm(iSlot, elemSize)); e != nil {
				err = e
			}
		})
		return err

	case t.Kind == abi.KindBytes || t.Kind == abi.KindString:
		body := g.deref(frame, head)
		numSlot := g.scratch()
		g.calldataload(body)
		g.storeTo(numSlot)
		// Element access is bounds-checked against the length, as real solc
		// emits (and as rule R2's control-dependence evidence requires).
		skip := g.asm.NewLabel()
		g.loadFrom(numSlot)
		g.asm.Push(0)
		g.asm.Op(evm.LT) // 0 < num
		g.asm.Op(evm.ISZERO)
		g.asm.JumpI(skip)
		// Read the first content word; for bytes, extract a single byte
		// (the paper's bytes-vs-string distinguishing access).
		g.calldataload(body.add(32))
		if t.Kind == abi.KindBytes && u.ByteAccess {
			g.asm.Push(0).Op(evm.BYTE)
		}
		g.sink()
		g.asm.Bind(skip)
		return nil

	case t.Kind == abi.KindTuple && t.IsDynamic():
		body := g.deref(frame, head)
		off := uint64(0)
		for _, f := range t.Fields {
			if err := g.onDemand(f, u, body, body.add(off)); err != nil {
				return err
			}
			off += uint64(f.HeadSize())
		}
		return nil

	case t.Kind == abi.KindTuple:
		// Static tuple inline: members as if flattened.
		off := uint64(0)
		for _, f := range t.Fields {
			if err := g.onDemand(f, u, frame, head.add(off)); err != nil {
				return err
			}
			off += uint64(f.HeadSize())
		}
		return nil

	default:
		return fmt.Errorf("solc: unsupported parameter type %s", t.Display())
	}
}

// deref reads the offset stored at head and returns the location of the
// value body (frame + offset), saving the offset in a scratch slot.
func (g *codegen) deref(frame, head loc) loc {
	offSlot := g.scratch()
	g.calldataload(head)
	g.storeTo(offSlot)
	return frame.addTerm(offSlot, 1)
}

// staticArrayExternal reads items with bound-checked CALLDATALOADs, or, when
// optimized with constant indices, a single unguarded load (which removes
// SigRec's evidence -- the paper's case 5).
func (g *codegen) staticArrayExternal(t abi.Type, u Usage, headOff uint64) error {
	if !u.ItemAccess {
		return nil // unused array: no instructions touch it
	}
	if g.cfg.Optimize && u.ConstIndex {
		_, elem := arrayShape(t)
		g.calldataload(constLoc(headOff))
		g.basicOps(elem, u)
		g.sink()
		return nil
	}
	return g.onDemand(t, u, constLoc(4), constLoc(headOff))
}
