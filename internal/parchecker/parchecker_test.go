package parchecker

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/chain"
	"sigrec/internal/core"
	"sigrec/internal/evm"
	"sigrec/internal/solc"
)

func transferSig(t *testing.T) abi.Signature {
	t.Helper()
	sig, err := abi.ParseSignature("transfer(address,uint256)")
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestValidTransfer(t *testing.T) {
	sig := transferSig(t)
	c := New([]abi.Signature{sig})
	data, _ := abi.EncodeCall(sig, []abi.Value{
		evm.MustWordFromHex("0x1234567890123456789012345678901234567890"),
		evm.WordFromUint64(0x2710),
	})
	rep := c.Check(data)
	if rep.Verdict != VerdictValid {
		t.Errorf("verdict = %s (%s)", rep.Verdict, rep.Reason)
	}
}

// TestShortAddressAttack reproduces the paper's Fig. 20 scenario byte for
// byte: transfer() with the address's trailing zero byte omitted.
func TestShortAddressAttack(t *testing.T) {
	sig := transferSig(t)
	c := New([]abi.Signature{sig})
	// Attacker-controlled address ends in 0x00.
	data, _ := abi.EncodeCall(sig, []abi.Value{
		evm.MustWordFromHex("0x1234567890123456789012345678901234567800"),
		evm.WordFromUint64(0x2710),
	})
	// Leave off the trailing zero byte of the address: everything shifts.
	attack := make([]byte, 0, len(data)-1)
	attack = append(attack, data[:35]...) // 4 + 31: address short one byte
	attack = append(attack, data[36:]...) // skip the stolen byte
	rep := c.Check(attack)
	if rep.Verdict != VerdictShortAddress {
		t.Fatalf("verdict = %s (%s)", rep.Verdict, rep.Reason)
	}
	if rep.StolenBytes != 1 {
		t.Errorf("stolen = %d", rep.StolenBytes)
	}
}

func TestInvalidPaddings(t *testing.T) {
	sig, _ := abi.ParseSignature("f(uint8,bool)")
	c := New([]abi.Signature{sig})
	data, _ := abi.EncodeCall(sig, []abi.Value{evm.WordFromUint64(5), true})
	// Dirty the uint8 padding.
	bad := append([]byte(nil), data...)
	bad[10] = 0xff
	if rep := c.Check(bad); rep.Verdict != VerdictInvalid {
		t.Errorf("dirty uint8: %s", rep.Verdict)
	}
	// Bool out of range.
	bad2 := append([]byte(nil), data...)
	bad2[4+63] = 3
	if rep := c.Check(bad2); rep.Verdict != VerdictInvalid {
		t.Errorf("bool=3: %s", rep.Verdict)
	}
}

func TestUnknownAndShortData(t *testing.T) {
	c := New([]abi.Signature{transferSig(t)})
	if rep := c.Check([]byte{1, 2}); rep.Verdict != VerdictInvalid {
		t.Errorf("tiny data: %s", rep.Verdict)
	}
	if rep := c.Check([]byte{0xde, 0xad, 0xbe, 0xef}); rep.Verdict != VerdictUnknown {
		t.Errorf("unknown selector: %s", rep.Verdict)
	}
}

// TestEndToEndWithRecovery wires the full pipeline: compile a contract,
// recover its signatures with SigRec, then scan a synthetic workload and
// compare against the ground-truth labels.
func TestEndToEndWithRecovery(t *testing.T) {
	sigStrs := []string{
		"transfer(address,uint256)",
		"approve(address,uint256)",
		"setFlag(bool)",
		"store(uint8,uint256)",
	}
	var fns []solc.Function
	var sigs []abi.Signature
	for _, s := range sigStrs {
		sig, _ := abi.ParseSignature(s)
		sigs = append(sigs, sig)
		fns = append(fns, solc.Function{Sig: sig, Mode: solc.External})
	}
	code, err := solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	checker := FromRecovery(res)

	w, err := chain.Generate(chain.Config{
		Seed: 9, Blocks: 40, TxPerBlock: 25, InvalidRate: 0.10, ShortAddressShare: 0.25,
	}, sigs)
	if err != nil {
		t.Fatal(err)
	}
	var falseAlarms, missed, caughtAttacks, attacks int
	for _, tx := range w.Txs {
		rep := checker.Check(tx.CallData)
		switch tx.Kind {
		case chain.Valid:
			if rep.Verdict != VerdictValid {
				falseAlarms++
				if falseAlarms <= 3 {
					t.Logf("false alarm: %s on %s (%s)", rep.Verdict, tx.Sig.Canonical(), rep.Reason)
				}
			}
		case chain.ShortAddress:
			attacks++
			if rep.Verdict == VerdictShortAddress {
				caughtAttacks++
			}
		default:
			if rep.Verdict == VerdictValid {
				missed++
				if missed <= 3 {
					t.Logf("missed %s on %s", tx.Kind, tx.Sig.Canonical())
				}
			}
		}
	}
	if falseAlarms > 0 {
		t.Errorf("%d valid transactions flagged", falseAlarms)
	}
	if missed > 0 {
		t.Errorf("%d malformed transactions accepted", missed)
	}
	if attacks == 0 || caughtAttacks != attacks {
		t.Errorf("short-address: caught %d of %d", caughtAttacks, attacks)
	}
}

func TestScanStats(t *testing.T) {
	sig := transferSig(t)
	c := New([]abi.Signature{sig})
	valid, _ := abi.EncodeCall(sig, []abi.Value{evm.WordFromUint64(1), evm.WordFromUint64(2)})
	st, err := c.Scan([][]byte{valid, valid[:40], {0xde, 0xad, 0xbe, 0xef}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 || st.Valid != 1 || st.Unknown != 1 || st.Invalid+st.ShortAddress != 1 {
		t.Errorf("stats = %+v", st)
	}
	empty := New(nil)
	if _, err := empty.Scan(nil); err == nil {
		t.Error("empty checker must error")
	}
}

func TestPaddingRulesTable(t *testing.T) {
	rules := PaddingRules()
	if len(rules) < 6 {
		t.Errorf("only %d padding rules", len(rules))
	}
}

// TestVyperTypesSupported: the paper defers Vyper support in ParChecker to
// future work; the strict decoder here covers the Vyper types, so the
// checker validates them out of the box.
func TestVyperTypesSupported(t *testing.T) {
	sig, err := abi.ParseSignature("f(decimal,bool,address)")
	if err != nil {
		t.Fatal(err)
	}
	c := New([]abi.Signature{sig})
	valid, err := abi.EncodeCall(sig, []abi.Value{
		evm.WordFromUint64(123_0000000000),
		true,
		evm.MustWordFromHex("0x00112233445566778899aabbccddeeff00112233"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := c.Check(valid); rep.Verdict != VerdictValid {
		t.Errorf("valid vyper args: %s (%s)", rep.Verdict, rep.Reason)
	}
	// Decimal without sign extension (garbage high bytes) is invalid.
	bad := append([]byte(nil), valid...)
	bad[4+5] = 0x77
	if rep := c.Check(bad); rep.Verdict != VerdictInvalid {
		t.Errorf("corrupt decimal accepted: %s", rep.Verdict)
	}
	// Bounded bytes obey the bytes rules.
	bsig, _ := abi.ParseSignature("g(bytes[32])")
	cb := New([]abi.Signature{bsig})
	enc, err := abi.EncodeCall(bsig, []abi.Value{[]byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if rep := cb.Check(enc); rep.Verdict != VerdictValid {
		t.Errorf("bounded bytes: %s (%s)", rep.Verdict, rep.Reason)
	}
	enc[len(enc)-1] = 0x9 // dirty tail padding
	if rep := cb.Check(enc); rep.Verdict != VerdictInvalid {
		t.Errorf("dirty bounded-bytes tail accepted: %s", rep.Verdict)
	}
}

// TestScanParallelMatchesSerial: the concurrent scan must produce the same
// statistics as the serial one, for any worker count.
func TestScanParallelMatchesSerial(t *testing.T) {
	var sigs []abi.Signature
	for _, s := range []string{
		"transfer(address,uint256)", "flag(bool)", "blob(bytes)",
	} {
		sig, _ := abi.ParseSignature(s)
		sigs = append(sigs, sig)
	}
	c := New(sigs)
	w, err := chain.Generate(chain.Config{
		Seed: 77, Blocks: 60, TxPerBlock: 30, InvalidRate: 0.2, ShortAddressShare: 0.2,
	}, sigs)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(w.Txs))
	for i, tx := range w.Txs {
		payloads[i] = tx.CallData
	}
	serial, err := c.Scan(payloads)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		par, err := c.ScanParallel(payloads, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Total != serial.Total || par.Valid != serial.Valid ||
			par.Invalid != serial.Invalid || par.ShortAddress != serial.ShortAddress ||
			par.Unknown != serial.Unknown {
			t.Errorf("workers=%d: %+v vs serial %+v", workers, par, serial)
		}
		if len(par.UniqueTargets) != len(serial.UniqueTargets) {
			t.Errorf("workers=%d: targets %d vs %d", workers, len(par.UniqueTargets), len(serial.UniqueTargets))
		}
	}
	if _, err := New(nil).ScanParallel(payloads, 4); err == nil {
		t.Error("empty checker must error")
	}
}
