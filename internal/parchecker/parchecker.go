// Package parchecker implements ParChecker (paper §6.1): validation of the
// actual arguments in transaction call data against recovered function
// signatures, including detection of short-address attacks.
//
// The per-type padding rules of the paper's Table 6 are enforced by the
// strict ABI decoder; this package adds the signature lookup, the
// short-address analysis, and reporting.
package parchecker

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/evm"
)

// Verdict classifies one transaction's call data.
type Verdict int

// Verdicts.
const (
	// VerdictValid means the arguments are encoded per the specification.
	VerdictValid Verdict = iota + 1
	// VerdictInvalid means some argument violates the encoding rules.
	VerdictInvalid
	// VerdictShortAddress is the specific short-address attack pattern.
	VerdictShortAddress
	// VerdictUnknown means the function id has no recovered signature.
	VerdictUnknown
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictValid:
		return "valid"
	case VerdictInvalid:
		return "invalid"
	case VerdictShortAddress:
		return "short-address-attack"
	case VerdictUnknown:
		return "unknown-function"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Report is the outcome for one transaction.
type Report struct {
	Verdict Verdict
	// Selector is the function id from the call data.
	Selector abi.Selector
	// Reason explains invalid verdicts.
	Reason string
	// StolenBytes is how many bytes a short-address attack removed.
	StolenBytes int
}

// Checker validates call data against a signature table (usually the output
// of SigRec).
type Checker struct {
	sigs map[abi.Selector][]abi.Type
}

// New builds a checker from explicit signatures.
func New(sigs []abi.Signature) *Checker {
	c := &Checker{sigs: make(map[abi.Selector][]abi.Type, len(sigs))}
	for _, s := range sigs {
		c.sigs[s.Selector()] = s.Inputs
	}
	return c
}

// FromRecovery builds a checker from SigRec output.
func FromRecovery(results ...core.Result) *Checker {
	c := &Checker{sigs: make(map[abi.Selector][]abi.Type)}
	for _, res := range results {
		for _, f := range res.Functions {
			c.sigs[f.Selector] = f.Inputs
		}
	}
	return c
}

// Known reports whether the checker has a signature for the selector.
func (c *Checker) Known(sel abi.Selector) bool {
	_, ok := c.sigs[sel]
	return ok
}

// Check validates one transaction's call data.
func (c *Checker) Check(callData []byte) Report {
	if len(callData) < 4 {
		return Report{Verdict: VerdictInvalid, Reason: "call data shorter than a function id"}
	}
	var sel abi.Selector
	copy(sel[:], callData[:4])
	inputs, ok := c.sigs[sel]
	if !ok {
		return Report{Verdict: VerdictUnknown, Selector: sel}
	}
	args := callData[4:]
	if stolen, attack := c.shortAddress(inputs, args); attack {
		return Report{
			Verdict:     VerdictShortAddress,
			Selector:    sel,
			Reason:      fmt.Sprintf("address argument short by %d bytes", stolen),
			StolenBytes: stolen,
		}
	}
	if _, err := abi.Decode(inputs, args); err != nil {
		return Report{Verdict: VerdictInvalid, Selector: sel, Reason: err.Error()}
	}
	return Report{Verdict: VerdictValid, Selector: sel}
}

// shortAddress detects the short-address attack (paper §6.1): the call data
// is shorter than the static head requires, the deficit is small (the
// stolen address suffix), the signature has an address parameter before the
// end, and the bytes that will be used to complete the address -- the high
// bytes of the following argument -- are zeros.
func (c *Checker) shortAddress(inputs []abi.Type, args []byte) (int, bool) {
	headLen := 0
	addrPos := -1
	for i, t := range inputs {
		if t.Kind == abi.KindAddress && i < len(inputs)-1 && addrPos < 0 {
			addrPos = headLen
		}
		headLen += t.HeadSize()
	}
	if addrPos < 0 || len(args) >= headLen {
		return 0, false
	}
	stolen := headLen - len(args)
	if stolen > 12 {
		return 0, false // too short to be a plausible address attack
	}
	// After EVM right-pads, the address argument absorbs the high bytes of
	// the next argument; the attack requires those to be zero.
	if addrPos+32 > len(args) {
		return 0, false
	}
	next := evm.WordFromBytes(args[addrPos : addrPos+32])
	if !next.And(evm.HighMask(96)).IsZero() {
		return 0, false
	}
	return stolen, true
}

// PaddingRule describes one row of the paper's Table 6: how a basic type's
// actual argument must be padded.
type PaddingRule struct {
	Type string
	Rule string
}

// PaddingRules returns the table of padding checks the strict decoder
// enforces (the paper's Table 6).
func PaddingRules() []PaddingRule {
	return []PaddingRule{
		{"uintM, M<256", "high (256-M) bits must be zero"},
		{"intM, M<256", "high (256-M) bits must equal the sign bit"},
		{"address", "high 96 bits must be zero"},
		{"bool", "value must be 0 or 1"},
		{"bytesM, M<32", "low (256-8M) bits must be zero"},
		{"bytes/string", "tail padding to a 32-byte multiple must be zero"},
		{"T[]/T[k]...", "each item checked under its basic-type rule"},
		{"dynamic types", "offset and num fields must stay within the call data"},
	}
}

// ErrNoSignatures reports an empty checker.
var ErrNoSignatures = errors.New("parchecker: no signatures loaded")

// Stats aggregates a scan over many transactions.
type Stats struct {
	Total         int
	Valid         int
	Invalid       int
	ShortAddress  int
	Unknown       int
	ByReason      map[string]int
	UniqueTargets map[abi.Selector]bool
}

// Scan checks a batch of call-data payloads.
func (c *Checker) Scan(payloads [][]byte) (Stats, error) {
	if len(c.sigs) == 0 {
		return Stats{}, ErrNoSignatures
	}
	st := newStats()
	for _, p := range payloads {
		st.record(c.Check(p))
	}
	return st, nil
}

// ScanParallel checks payloads with a bounded worker pool; checking is
// read-only over the signature table, so workers share it safely. The
// paper's measurement covers 91M transactions -- this is the entry point
// that scale uses. workers <= 0 selects GOMAXPROCS.
func (c *Checker) ScanParallel(payloads [][]byte, workers int) (Stats, error) {
	if len(c.sigs) == 0 {
		return Stats{}, ErrNoSignatures
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(payloads) {
		workers = len(payloads)
	}
	if workers <= 1 {
		return c.Scan(payloads)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   = newStats()
		indexes = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := newStats()
			for i := range indexes {
				local.record(c.Check(payloads[i]))
			}
			mu.Lock()
			total.merge(local)
			mu.Unlock()
		}()
	}
	for i := range payloads {
		indexes <- i
	}
	close(indexes)
	wg.Wait()
	return total, nil
}

func newStats() Stats {
	return Stats{
		ByReason:      make(map[string]int),
		UniqueTargets: make(map[abi.Selector]bool),
	}
}

func (st *Stats) record(rep Report) {
	st.Total++
	switch rep.Verdict {
	case VerdictValid:
		st.Valid++
	case VerdictInvalid:
		st.Invalid++
		st.ByReason[rep.Reason]++
		st.UniqueTargets[rep.Selector] = true
	case VerdictShortAddress:
		st.ShortAddress++
		st.UniqueTargets[rep.Selector] = true
	case VerdictUnknown:
		st.Unknown++
	}
}

func (st *Stats) merge(o Stats) {
	st.Total += o.Total
	st.Valid += o.Valid
	st.Invalid += o.Invalid
	st.ShortAddress += o.ShortAddress
	st.Unknown += o.Unknown
	for k, v := range o.ByReason {
		st.ByReason[k] += v
	}
	for k := range o.UniqueTargets {
		st.UniqueTargets[k] = true
	}
}
