package slo

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sigrec/internal/eventlog"
	"sigrec/internal/telemetry"
)

// fakeClock steps a deterministic clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// driveTicks advances the clock and ticks, interval seconds apart.
func driveTicks(e *Evaluator, c *fakeClock, n int, interval time.Duration) {
	for i := 0; i < n; i++ {
		c.Advance(interval)
		e.Tick()
	}
}

func TestBurnRateFiresAndClears(t *testing.T) {
	reg := telemetry.NewRegistry()
	total := reg.Counter("req_total")
	errs := reg.Counter("req_errors_total")
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	const interval = 10 * time.Second
	ev := New(Config{
		Objectives: []Objective{{
			Name:   "availability",
			Target: 0.999,
			Source: CounterSource{Total: total, Errors: errs},
		}},
		Interval: interval,
		Registry: reg,
		Now:      clock.Now,
	})

	// A healthy hour: traffic with zero errors fills both windows.
	for i := 0; i < 360; i++ {
		total.Add(100)
		clock.Advance(interval)
		ev.Tick()
	}
	snap := reg.Snapshot()
	if got := snap.LabeledGauges["sigrec_slo_alert_firing"].Values["availability:page"]; got != 0 {
		t.Fatalf("page firing on a healthy service")
	}
	if got := snap.LabeledFloatGauges["sigrec_slo_burn_rate"].Values["availability:5m"]; got != 0 {
		t.Fatalf("burn(5m) = %v on a healthy service", got)
	}
	if got := snap.LabeledFloatGauges["sigrec_slo_error_budget_remaining_ratio"].Values["availability"]; got != 1 {
		t.Fatalf("budget remaining = %v, want 1", got)
	}

	// Outage: 10% of requests fail. With a 0.1% budget that is a burn
	// rate of 100x — far past the 14.4x page threshold. The 5m window
	// sees it within minutes; the 1h window's rate crosses 14.4x once
	// ~15% of the hour is errored (0.1*f > 0.0144 → f > 14.4%), so the
	// page must fire by ~10 minutes in.
	fired := -1
	for i := 0; i < 60; i++ {
		total.Add(100)
		errs.Add(10)
		clock.Advance(interval)
		ev.Tick()
		s := reg.Snapshot()
		if s.LabeledGauges["sigrec_slo_alert_firing"].Values["availability:page"] == 1 {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("page never fired during a 100x burn")
	}
	if fired > 5*6+54 { // sanity ceiling: within the first 9 minutes
		t.Fatalf("page fired only after %d ticks", fired)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["sigrec_slo_alert_transitions_total"]; got != 0 {
		// transitions is a CounterVec, not a plain counter — guard below.
		t.Fatalf("unexpected plain counter: %d", got)
	}
	// Both severities trip during a 100x burn: the ticket pair's slower
	// windows cross their 6x threshold before the page pair's 1h window
	// crosses 14.4x.
	if got := snap.LabeledCounters["sigrec_slo_alert_transitions_total"].Values["firing"]; got != 2 {
		t.Fatalf("firing transitions = %d, want 2 (page + ticket)", got)
	}
	burn5m := snap.LabeledFloatGauges["sigrec_slo_burn_rate"].Values["availability:5m"]
	if burn5m < 90 || burn5m > 110 {
		t.Errorf("burn(5m) = %v, want ~100", burn5m)
	}

	// Recovery: errors stop. The 5m window must clear the page within
	// ~5 minutes even though the 1h window still remembers the outage —
	// the AND condition is what gives the fast reset.
	cleared := -1
	for i := 0; i < 60; i++ {
		total.Add(100)
		clock.Advance(interval)
		ev.Tick()
		s := reg.Snapshot()
		if s.LabeledGauges["sigrec_slo_alert_firing"].Values["availability:page"] == 0 {
			cleared = i
			break
		}
	}
	if cleared < 0 {
		t.Fatal("page never cleared after recovery")
	}
	if cleared > 5*6+1 {
		t.Fatalf("page cleared only after %d ticks (> 5m window)", cleared)
	}
	snap = reg.Snapshot()
	// Only the page resolved so far — the ticket's 30m/6h windows still
	// remember the outage.
	if got := snap.LabeledCounters["sigrec_slo_alert_transitions_total"].Values["resolved"]; got != 1 {
		t.Fatalf("resolved transitions = %d, want 1 (page only)", got)
	}
	if got := snap.LabeledGauges["sigrec_slo_alert_firing"].Values["availability:ticket"]; got != 1 {
		t.Errorf("ticket should still be firing right after the page clears")
	}
	if got := snap.LabeledFloatGauges["sigrec_slo_error_budget_remaining_ratio"].Values["availability"]; got >= 0 {
		t.Errorf("budget remaining = %v after a 10%% outage, want negative (overspent)", got)
	}
}

func TestSlowWindowTickets(t *testing.T) {
	reg := telemetry.NewRegistry()
	total := reg.Counter("t")
	errs := reg.Counter("e")
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	const interval = time.Minute
	ev := New(Config{
		Objectives: []Objective{{Name: "avail", Target: 0.999,
			Source: CounterSource{Total: total, Errors: errs}}},
		Interval: interval,
		Registry: reg,
		Now:      clock.Now,
	})
	// A slow leak: 0.8% errors — an 8x burn. Above the 6x ticket
	// threshold, below the 14.4x page threshold. After 6h both slow
	// windows are saturated: ticket fires, page must not.
	for i := 0; i < 6*60; i++ {
		total.Add(1000)
		errs.Add(8)
		clock.Advance(interval)
		ev.Tick()
	}
	snap := reg.Snapshot()
	firing := snap.LabeledGauges["sigrec_slo_alert_firing"].Values
	if firing["avail:ticket"] != 1 {
		t.Errorf("ticket not firing on a sustained 8x burn: %v", firing)
	}
	if firing["avail:page"] != 0 {
		t.Errorf("page firing on an 8x burn (threshold 14.4): %v", firing)
	}
}

func TestLatencySource(t *testing.T) {
	reg := telemetry.NewRegistry()
	sum := reg.Summary("lat_us", nil)
	// 100 observations spread uniformly 10..1000us, so the tracked
	// quantile points bracket any mid-range threshold tightly.
	for i := uint64(1); i <= 100; i++ {
		sum.Observe(i * 10)
	}
	src := LatencySource{Summary: sum, ThresholdUS: 500}
	good, totalN := src.Sample()
	if totalN != 100 {
		t.Fatalf("total = %v, want 100", totalN)
	}
	frac := good / totalN
	// True fraction under 500us is 0.5; the p50 tracked point pins it.
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("frac below threshold = %v, want ~0.5", frac)
	}
	// Threshold above every observation → everything is good.
	fast := LatencySource{Summary: sum, ThresholdUS: 1e9}
	good, totalN = fast.Sample()
	if good != totalN {
		t.Errorf("threshold past max: good = %v, total = %v", good, totalN)
	}
	// Threshold below every observation → nothing is good.
	slow := LatencySource{Summary: sum, ThresholdUS: 1}
	good, _ = slow.Sample()
	if frac := good / totalN; frac > 0.01 {
		t.Errorf("threshold below min: frac = %v, want ~0", frac)
	}
}

func TestStateAndLint(t *testing.T) {
	reg := telemetry.NewRegistry()
	total := reg.Counter("t")
	errs := reg.Counter("e")
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	ev := New(Config{
		Objectives: []Objective{{Name: "availability", Target: 0.99,
			Source: CounterSource{Total: total, Errors: errs}}},
		Interval: 10 * time.Second,
		Registry: reg,
		Now:      clock.Now,
	})
	total.Add(50)
	errs.Add(5)
	driveTicks(ev, clock, 3, 10*time.Second)
	states := ev.State()
	if len(states) != 1 {
		t.Fatalf("states = %d, want 1", len(states))
	}
	st := states[0]
	if st.Name != "availability" || st.Target != 0.99 {
		t.Errorf("state identity: %+v", st)
	}
	if st.CumulativeTotal != 50 || st.CumulativeGood != 45 {
		t.Errorf("cumulative = %v/%v, want 45/50", st.CumulativeGood, st.CumulativeTotal)
	}
	if len(st.Windows) != 4 {
		t.Errorf("windows = %d, want 4 (2 pairs x 2)", len(st.Windows))
	}
	if len(st.Alerts) != 2 {
		t.Errorf("alerts = %d, want 2 severities", len(st.Alerts))
	}
	// Every sigrec_slo_* family must pass the strict linter with its
	// HELP text.
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"sigrec_slo_burn_rate",
		"sigrec_slo_error_budget_remaining_ratio",
		"sigrec_slo_alert_firing",
	} {
		if !strings.Contains(out, "# HELP "+fam+" ") {
			t.Errorf("exposition missing HELP for %s", fam)
		}
	}
	if err := telemetry.Lint(out); err != nil {
		t.Fatalf("slo exposition fails lint: %v", err)
	}
}

func TestNoFiringWithoutTraffic(t *testing.T) {
	reg := telemetry.NewRegistry()
	total := reg.Counter("t")
	errs := reg.Counter("e")
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	ev := New(Config{
		Objectives: []Objective{{Name: "a", Target: 0.999,
			Source: CounterSource{Total: total, Errors: errs}}},
		Interval: 10 * time.Second,
		Registry: reg,
		Now:      clock.Now,
	})
	driveTicks(ev, clock, 100, 10*time.Second)
	firing := reg.Snapshot().LabeledGauges["sigrec_slo_alert_firing"].Values
	for k, v := range firing {
		if v != 0 {
			t.Errorf("alert %s firing with zero traffic", k)
		}
	}
}

func TestAlertTransitionsEmitWideEvents(t *testing.T) {
	reg := telemetry.NewRegistry()
	log, err := eventlog.New(eventlog.Config{
		Path:     filepath.Join(t.TempDir(), "events.ndjson"),
		MaxBytes: 1 << 20,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	total := reg.Counter("t")
	errs := reg.Counter("e")
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	ev := New(Config{
		Objectives: []Objective{{Name: "availability", Target: 0.999,
			Source: CounterSource{Total: total, Errors: errs}}},
		Interval: 10 * time.Second,
		Registry: reg,
		Events:   log,
		Now:      clock.Now,
	})
	// Saturate both window pairs with a total outage, then recover.
	for i := 0; i < 6*360; i++ {
		total.Add(100)
		errs.Add(100)
		clock.Advance(10 * time.Second)
		ev.Tick()
	}
	for i := 0; i < 6*360; i++ {
		total.Add(100)
		clock.Advance(10 * time.Second)
		ev.Tick()
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	var firing, resolved int
	for _, line := range log.Tail(64) {
		s := string(line)
		if !strings.Contains(s, `"kind":"slo_alert"`) {
			continue
		}
		var rec struct {
			Data AlertTransition `json:"data"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad slo_alert record %q: %v", s, err)
		}
		if rec.Data.Objective != "availability" {
			t.Errorf("objective = %q", rec.Data.Objective)
		}
		switch rec.Data.State {
		case "firing":
			firing++
			if rec.Data.BurnShort <= rec.Data.Threshold {
				t.Errorf("firing event burn_short %v <= threshold %v",
					rec.Data.BurnShort, rec.Data.Threshold)
			}
		case "resolved":
			resolved++
		}
	}
	if firing != 2 || resolved != 2 {
		t.Errorf("slo_alert events: %d firing, %d resolved, want 2/2", firing, resolved)
	}
}
