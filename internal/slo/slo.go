// Package slo is the service-level-objective engine: declarative
// objectives over the metrics the fleet already produces, evaluated with
// the SRE-workbook multi-window multi-burn-rate pattern.
//
// An Objective names a target fraction of good events (99.9%
// availability, 99% of recoveries under 10ms) and a Source that reports
// the cumulative (good, total) event counts. The Evaluator samples every
// source on a fixed cadence into a per-objective ring, derives windowed
// error rates by differencing against the sample nearest each window's
// start, and converts them to burn rates — multiples of the rate that
// would consume the error budget exactly at the target. An alert fires
// when BOTH windows of a pair burn faster than the pair's threshold
// (fast 5m/1h at 14.4x pages, slow 30m/6h at 6x tickets), which is what
// makes the alerts both fast and spike-proof: the short window gives the
// fast trigger and fast reset, the long window suppresses blips.
//
// Everything is deterministic under an injected clock: tests drive Tick
// directly with a fake Now and assert exact fire/clear transitions. The
// evaluator publishes burn rates and budget state as
// sigrec_slo_* gauge families, serves its full state for GET /debug/slo,
// and emits a wide event on every alert transition so pages are joinable
// to the durable log.
package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sigrec/internal/eventlog"
	"sigrec/internal/telemetry"
)

// Source reports cumulative good/total event counts for one objective.
// Samples must be monotone non-decreasing; the evaluator differences
// them over time windows.
type Source interface {
	Sample() (good, total float64)
}

// CounterSource derives availability from two cumulative counters: total
// requests and errors (good = total - errors). Both live in the shared
// telemetry registry, so the SLI is exactly what /metrics exposes.
type CounterSource struct {
	Total  *telemetry.Counter
	Errors *telemetry.Counter
}

func (s CounterSource) Sample() (good, total float64) {
	t := float64(s.Total.Load())
	e := float64(s.Errors.Load())
	if e > t {
		e = t
	}
	return t - e, t
}

// LatencySource derives a latency objective ("X% of requests complete
// under ThresholdUS") from a CKMS summary. The summary tracks a few
// target quantiles, not the full distribution, so the fraction of
// requests under the threshold is estimated by piecewise-linear
// interpolation of the inverse CDF through the tracked quantile points
// (anchored at (0, 0); at or beyond the highest tracked quantile's value
// the fraction clamps to that quantile — the estimate never claims
// precision past p99). good = estimated fraction * cumulative count,
// which stays monotone enough for window differencing in practice and is
// exact in the two regimes that matter for alerting: everything-fast and
// everything-slow.
type LatencySource struct {
	Summary     *telemetry.Summary
	ThresholdUS float64
}

func (s LatencySource) Sample() (good, total float64) {
	snap := s.Summary.Snapshot()
	if snap.Count == 0 {
		return 0, 0
	}
	return fracBelow(snap, s.ThresholdUS) * float64(snap.Count), float64(snap.Count)
}

// fracBelow estimates P(X <= t) from a summary snapshot's tracked
// quantile points.
func fracBelow(snap telemetry.SummarySnapshot, t float64) float64 {
	qs := snap.Quantiles
	if len(qs) == 0 {
		return 0
	}
	// Anchor the CDF at (value 0, fraction 0) and walk the tracked
	// points in quantile order (they are sorted by construction).
	prevQ, prevV := 0.0, 0.0
	for _, p := range qs {
		if t < p.V {
			if p.V <= prevV {
				return prevQ
			}
			return prevQ + (p.Q-prevQ)*(t-prevV)/(p.V-prevV)
		}
		prevQ, prevV = p.Q, p.V
	}
	if t >= prevV && prevQ < 1 {
		// Past the highest tracked point: grant the full target only when
		// the threshold clears it outright.
		return 1
	}
	return prevQ
}

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in metrics, events, and /debug/slo
	// (e.g. "availability", "latency_p99_10ms").
	Name string
	// Target is the good fraction the SLO promises, e.g. 0.999.
	Target float64
	// Source reports the cumulative SLI counts.
	Source Source
}

// WindowPair is one multi-window burn-rate alert rule: fire when both
// the short and the long window burn faster than Burn.
type WindowPair struct {
	Short    time.Duration
	Long     time.Duration
	Burn     float64
	Severity string // "page" or "ticket"
}

// DefaultWindows are the SRE-workbook recommendations: 14.4x over 5m+1h
// pages (2% of a 30d budget in one hour), 6x over 30m+6h tickets (5% in
// six hours).
func DefaultWindows() []WindowPair {
	return []WindowPair{
		{Short: 5 * time.Minute, Long: time.Hour, Burn: 14.4, Severity: "page"},
		{Short: 30 * time.Minute, Long: 6 * time.Hour, Burn: 6, Severity: "ticket"},
	}
}

// Config configures an Evaluator.
type Config struct {
	Objectives []Objective
	// Windows are the alert rules; nil selects DefaultWindows.
	Windows []WindowPair
	// Interval is the sampling cadence (and the background tick period
	// when Start is used). <= 0 selects DefaultInterval.
	Interval time.Duration
	// Registry receives the sigrec_slo_* gauge families.
	Registry *telemetry.Registry
	// Events, when non-nil, receives one "slo_alert" aux record per
	// alert transition.
	Events *eventlog.Writer
	// Now is the clock; nil selects time.Now. Tests inject a fake.
	Now func() time.Time
}

// DefaultInterval is the sampling cadence.
const DefaultInterval = 10 * time.Second

// sample is one timestamped cumulative observation.
type sample struct {
	t           time.Time
	good, total float64
}

// objectiveState is the evaluator's per-objective bookkeeping.
type objectiveState struct {
	obj Objective
	// ring holds the trailing samples, oldest first, covering at least
	// the longest alert window.
	ring []sample
	// firing maps severity → whether that window pair is currently firing.
	firing map[string]bool
	since  map[string]time.Time
}

// Evaluator samples objectives and maintains burn-rate alert state.
type Evaluator struct {
	cfg     Config
	windows []WindowPair
	keep    time.Duration

	mu   sync.Mutex
	objs []*objectiveState

	mBurn   *telemetry.FloatGaugeVec
	mBudget *telemetry.FloatGaugeVec
	mFiring *telemetry.GaugeVec
	mTrans  *telemetry.CounterVec

	done    chan struct{}
	stopped chan struct{}
}

// New returns an Evaluator with the gauge families registered. Call Tick
// from a fake-clock test, or Start for the background loop.
func New(cfg Config) *Evaluator {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	windows := cfg.Windows
	if windows == nil {
		windows = DefaultWindows()
	}
	var keep time.Duration
	for _, w := range windows {
		if w.Long > keep {
			keep = w.Long
		}
	}
	e := &Evaluator{
		cfg:     cfg,
		windows: windows,
		keep:    keep + cfg.Interval,
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for _, o := range cfg.Objectives {
		st := &objectiveState{
			obj:    o,
			firing: make(map[string]bool),
			since:  make(map[string]time.Time),
		}
		for _, w := range windows {
			st.firing[w.Severity] = false
		}
		e.objs = append(e.objs, st)
	}
	reg := cfg.Registry
	e.mBurn = reg.FloatGaugeVec("sigrec_slo_burn_rate", "slo")
	reg.SetHelp("sigrec_slo_burn_rate",
		"Error-budget burn rate per objective and window (1.0 consumes the budget exactly at the target).")
	e.mBudget = reg.FloatGaugeVec("sigrec_slo_error_budget_remaining_ratio", "slo")
	reg.SetHelp("sigrec_slo_error_budget_remaining_ratio",
		"Fraction of the cumulative error budget still unspent per objective (negative when overspent).")
	e.mFiring = reg.GaugeVec("sigrec_slo_alert_firing", "slo")
	reg.SetHelp("sigrec_slo_alert_firing",
		"Whether the burn-rate alert for an objective:severity pair is currently firing (0 or 1).")
	e.mTrans = reg.CounterVec("sigrec_slo_alert_transitions_total", "state")
	reg.SetHelp("sigrec_slo_alert_transitions_total",
		"SLO alert state transitions, by new state (firing or resolved).")
	return e
}

// windowLabel renders a duration the way operators write them (5m, 1h).
func windowLabel(d time.Duration) string {
	if d%time.Hour == 0 {
		return fmt.Sprintf("%dh", d/time.Hour)
	}
	return fmt.Sprintf("%dm", d/time.Minute)
}

// rateOver returns the windowed error rate: the bad fraction of the
// events between now-w and now, differenced from the ring. The second
// return reports whether the window produced any events.
func (st *objectiveState) rateOver(now time.Time, w time.Duration) (float64, bool) {
	if len(st.ring) == 0 {
		return 0, false
	}
	cur := st.ring[len(st.ring)-1]
	cutoff := now.Add(-w)
	// Oldest sample at or after the cutoff; the ring is time-ordered.
	base := st.ring[0]
	for _, s := range st.ring {
		if !s.t.Before(cutoff) {
			base = s
			break
		}
	}
	dTotal := cur.total - base.total
	dGood := cur.good - base.good
	if dTotal <= 0 {
		return 0, false
	}
	bad := (dTotal - dGood) / dTotal
	if bad < 0 {
		bad = 0
	}
	return bad, true
}

// AlertTransition is the wide-event payload emitted on every alert state
// change.
type AlertTransition struct {
	Objective string  `json:"objective"`
	Severity  string  `json:"severity"`
	State     string  `json:"state"` // "firing" or "resolved"
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Threshold float64 `json:"threshold"`
	Target    float64 `json:"target"`
	TS        int64   `json:"ts_us"`
}

// Tick runs one sample-and-evaluate step at the injected clock's now.
// The background loop calls it on the interval; fake-clock tests call it
// directly.
func (e *Evaluator) Tick() {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.objs {
		good, total := st.obj.Source.Sample()
		st.ring = append(st.ring, sample{t: now, good: good, total: total})
		// Evict samples older than the longest window (keep one before
		// the horizon so differencing at the full window still brackets).
		horizon := now.Add(-e.keep)
		drop := 0
		for drop < len(st.ring)-1 && st.ring[drop+1].t.Before(horizon) {
			drop++
		}
		st.ring = st.ring[drop:]

		budgetFrac := 1 - st.obj.Target
		// Cumulative budget position since process start.
		if total > 0 && budgetFrac > 0 {
			badFrac := (total - good) / total
			e.mBudget.With(st.obj.Name).Set(1 - badFrac/budgetFrac)
		}
		for _, w := range e.windows {
			shortRate, okS := st.rateOver(now, w.Short)
			longRate, okL := st.rateOver(now, w.Long)
			var burnShort, burnLong float64
			if budgetFrac > 0 {
				burnShort = shortRate / budgetFrac
				burnLong = longRate / budgetFrac
			}
			e.mBurn.With(st.obj.Name + ":" + windowLabel(w.Short)).Set(burnShort)
			e.mBurn.With(st.obj.Name + ":" + windowLabel(w.Long)).Set(burnLong)
			firing := okS && okL && burnShort > w.Burn && burnLong > w.Burn
			if firing != st.firing[w.Severity] {
				st.firing[w.Severity] = firing
				state := "resolved"
				if firing {
					state = "firing"
					st.since[w.Severity] = now
				}
				e.mTrans.With(state).Inc()
				e.cfg.Events.EmitAux("slo_alert", AlertTransition{
					Objective: st.obj.Name,
					Severity:  w.Severity,
					State:     state,
					BurnShort: burnShort,
					BurnLong:  burnLong,
					Threshold: w.Burn,
					Target:    st.obj.Target,
					TS:        now.UnixMicro(),
				})
			}
			v := int64(0)
			if firing {
				v = 1
			}
			e.mFiring.With(st.obj.Name + ":" + w.Severity).Set(v)
		}
	}
}

// Start launches the background tick loop.
func (e *Evaluator) Start() {
	go func() {
		defer close(e.stopped)
		ticker := time.NewTicker(e.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				e.Tick()
			case <-e.done:
				return
			}
		}
	}()
}

// Close stops the background loop (started with Start).
func (e *Evaluator) Close() {
	close(e.done)
	<-e.stopped
}

// WindowState is one window's burn state for /debug/slo.
type WindowState struct {
	Window    string  `json:"window"`
	BurnRate  float64 `json:"burn_rate"`
	Threshold float64 `json:"threshold"`
	Severity  string  `json:"severity"`
}

// AlertState is one severity's alert state for /debug/slo.
type AlertState struct {
	Severity string `json:"severity"`
	Firing   bool   `json:"firing"`
	Since    string `json:"since,omitempty"`
}

// ObjectiveState is one objective's full state for /debug/slo.
type ObjectiveState struct {
	Name                 string        `json:"name"`
	Target               float64       `json:"target"`
	CumulativeGood       float64       `json:"cumulative_good"`
	CumulativeTotal      float64       `json:"cumulative_total"`
	ErrorBudgetRemaining float64       `json:"error_budget_remaining_ratio"`
	Windows              []WindowState `json:"windows"`
	Alerts               []AlertState  `json:"alerts"`
	Samples              int           `json:"samples"`
}

// State reports every objective's current burn/alert state, for the
// /debug/slo page. Rates are recomputed from the rings at the injected
// clock's now, so the page agrees with the last Tick's gauge values.
func (e *Evaluator) State() []ObjectiveState {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveState, 0, len(e.objs))
	for _, st := range e.objs {
		os := ObjectiveState{
			Name:    st.obj.Name,
			Target:  st.obj.Target,
			Samples: len(st.ring),
		}
		if len(st.ring) > 0 {
			cur := st.ring[len(st.ring)-1]
			os.CumulativeGood, os.CumulativeTotal = cur.good, cur.total
			if budgetFrac := 1 - st.obj.Target; cur.total > 0 && budgetFrac > 0 {
				os.ErrorBudgetRemaining = 1 - ((cur.total-cur.good)/cur.total)/budgetFrac
			}
		}
		budgetFrac := 1 - st.obj.Target
		for _, w := range e.windows {
			for _, d := range []time.Duration{w.Short, w.Long} {
				rate, _ := st.rateOver(now, d)
				burn := 0.0
				if budgetFrac > 0 {
					burn = rate / budgetFrac
				}
				os.Windows = append(os.Windows, WindowState{
					Window:    windowLabel(d),
					BurnRate:  burn,
					Threshold: w.Burn,
					Severity:  w.Severity,
				})
			}
		}
		sevs := make([]string, 0, len(st.firing))
		for sev := range st.firing {
			sevs = append(sevs, sev)
		}
		sort.Strings(sevs)
		for _, sev := range sevs {
			as := AlertState{Severity: sev, Firing: st.firing[sev]}
			if t, ok := st.since[sev]; ok && st.firing[sev] {
				as.Since = t.UTC().Format(time.RFC3339)
			}
			os.Alerts = append(os.Alerts, as)
		}
		out = append(out, os)
	}
	return out
}
