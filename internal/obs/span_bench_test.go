package obs

import (
	"context"
	"testing"
)

// BenchmarkRecoveryTree measures the raw cost of the span machinery for a
// typical traced recovery — the same tree shape the pipeline produces for
// a 10-selector contract (disassemble + dispatch + explore/infer per
// selector, batched attributes). This is the per-contract overhead that
// the `make bench-gate` tracing A/B gate bounds end to end; iterate here
// when chasing it down.
func BenchmarkRecoveryTree(b *testing.B) {
	tr := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rec := tr.StartRecovery(context.Background(), "bench")
		d := rec.Span("disassemble")
		d.SetAttrs(Attr{Key: "code_bytes", Num: 1024}, Attr{Key: "instructions", Num: 512})
		now := rec.NowUS()
		d.EndAt(now)
		s := rec.SpanAt("dispatch", now)
		s.SetAttrs(
			Attr{Key: "paths", Num: 12}, Attr{Key: "steps", Num: 4000},
			Attr{Key: "pruned", Num: 2},
		)
		now = rec.NowUS()
		s.EndAt(now)
		for j := 0; j < 10; j++ {
			e := rec.SpanAt("explore", now)
			e.SetAttrs(
				Attr{Key: "selector", Str: "0xdeadbeef"},
				Attr{Key: "paths", Num: 8}, Attr{Key: "steps", Num: 2000},
				Attr{Key: "pruned", Num: 1},
			)
			now = rec.NowUS()
			e.EndAt(now)
			in := rec.SpanAt("infer", now)
			in.SetAttrs(
				Attr{Key: "selector", Str: "0xdeadbeef"},
				Attr{Key: "params", Num: 2}, Attr{Key: "rule_hits", Num: 5},
			)
			now = rec.NowUS()
			in.EndAt(now)
		}
		rec.Finish(false, nil)
	}
}

// BenchmarkUntracedOverhead measures the off switch: the nil-recovery
// span calls the pipeline makes when tracing is not armed.
func BenchmarkUntracedOverhead(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := FromContext(ctx)
		sp := rec.Span("disassemble")
		sp.SetAttrs(Attr{Key: "code_bytes", Num: 1024})
		sp.End()
		rec.Finish(false, nil)
	}
}
