package obs

import (
	"runtime/metrics"

	"sigrec/internal/telemetry"
)

// RegisterRuntimeMetrics exposes Go runtime self-metrics on the registry:
// goroutine count, live heap bytes, and the p99 of the runtime's GC-pause
// and scheduler-latency distributions. Values are refreshed at snapshot
// (scrape) time via an OnSnapshot hook — no background poller — so each
// scrape sees the runtime as of that scrape. The percentiles read the
// runtime's cumulative-since-start histograms.
func RegisterRuntimeMetrics(reg *telemetry.Registry) {
	reg.SetHelp("go_goroutines", "Live goroutines")
	reg.SetHelp("go_heap_alloc_bytes", "Bytes of live heap objects")
	reg.SetHelp("go_gc_pause_p99_microseconds", "p99 stop-the-world GC pause since process start")
	reg.SetHelp("go_sched_latency_p99_microseconds", "p99 goroutine scheduling latency since process start")
	var (
		gGoroutines = reg.Gauge("go_goroutines")
		gHeap       = reg.Gauge("go_heap_alloc_bytes")
		gGCPause    = reg.Gauge("go_gc_pause_p99_microseconds")
		gSchedLat   = reg.Gauge("go_sched_latency_p99_microseconds")
	)
	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/pauses:seconds"},
		{Name: "/sched/latencies:seconds"},
	}
	reg.OnSnapshot(func() {
		metrics.Read(samples)
		if v := samples[0].Value; v.Kind() == metrics.KindUint64 {
			gGoroutines.Set(int64(v.Uint64()))
		}
		if v := samples[1].Value; v.Kind() == metrics.KindUint64 {
			gHeap.Set(int64(v.Uint64()))
		}
		if v := samples[2].Value; v.Kind() == metrics.KindFloat64Histogram {
			gGCPause.Set(histP99Microseconds(v.Float64Histogram()))
		}
		if v := samples[3].Value; v.Kind() == metrics.KindFloat64Histogram {
			gSchedLat.Set(histP99Microseconds(v.Float64Histogram()))
		}
	})
}

// histP99Microseconds extracts the 99th percentile from a runtime
// seconds-valued histogram, reported in microseconds (upper bucket bound,
// so the estimate never understates).
func histP99Microseconds(h *metrics.Float64Histogram) int64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total)*0.99 + 0.5)
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans [Buckets[i], Buckets[i+1]); report the upper
			// bound. The final bucket's bound can be +Inf — fall back to its
			// lower bound then.
			ub := h.Buckets[i+1]
			if ub > 1e12 || ub != ub { // +Inf or NaN guard
				ub = h.Buckets[i]
			}
			return int64(ub * 1e6)
		}
	}
	return 0
}
