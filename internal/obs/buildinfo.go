package obs

import (
	"runtime"
	"runtime/debug"

	"sigrec/internal/telemetry"
)

// Version returns the module version baked into the binary by the Go
// toolchain ("(devel)" for plain `go build` of the work tree) and the Go
// runtime version.
func Version() (version, goVersion string) {
	version = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return version, runtime.Version()
}

// VersionString renders Version for -version flags: "sigrec <v> (<go>)".
func VersionString() string {
	v, gv := Version()
	return "sigrec " + v + " (" + gv + ")"
}

// RegisterBuildInfo publishes the sigrec_build_info gauge (constant 1,
// labeled with the module and Go versions) on the registry, the standard
// Prometheus idiom for joining metrics to the binary that produced them.
func RegisterBuildInfo(r *telemetry.Registry) {
	v, gv := Version()
	r.SetInfo("sigrec_build_info", map[string]string{
		"version":    v,
		"go_version": gv,
	})
}
