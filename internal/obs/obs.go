// Package obs is the observability layer of the recovery pipeline: a
// dependency-free, allocation-conscious span tracer that records one tree
// of timed spans per contract recovery (disassemble → dispatch → per-
// selector explore/infer), plus a fixed-size flight recorder retaining the
// slowest and all budget-truncated recoveries for post-hoc inspection
// (GET /debug/slowest on sigrecd, `sigrec -trace` on the CLI).
//
// Tracing is opt-in per recovery and zero-cost when off: every method on
// *Tracer, *Recovery, and *Span is nil-safe, so the pipeline calls them
// unconditionally and an untraced recovery pays one context lookup plus a
// handful of nil checks. Span timestamps come from the monotonic clock
// (offsets from the recovery's start), so trees are immune to wall-clock
// steps.
//
// Concurrency contract: a Recovery is single-writer. All span operations
// and the Finish call must come from one goroutine at a time (sequential
// handoff — e.g. handler to pooled worker over a channel — is fine). The
// serving layer upholds this by finishing each recovery on the worker
// that ran it. Finish flips an atomic flag that turns every later span
// operation into a no-op, so a finished tree is immutable even if a stale
// caller still holds a span; the flight recorder's lock publishes the
// finished tree to concurrent readers.
package obs

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
)

// Attr is one key/value span attribute. Exactly one of Str and Num is
// meaningful; string attributes set Str, integer attributes leave it empty.
// Typed fields (rather than `any`) keep attribute recording box-free.
type Attr struct {
	Key string `json:"k"`
	Str string `json:"s,omitempty"`
	Num int64  `json:"n,omitempty"`
}

// Span is one timed phase of a recovery. Offsets and durations are
// microseconds relative to the owning recovery's start, taken from the
// monotonic clock.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// SpanID, when set via SetSpanID, pins this span's wire id (16 hex)
	// instead of the positional derivation — used for spans whose id must
	// be known cross-process before export, like router attempt spans
	// whose id travels in the outbound traceparent.
	SpanID   string  `json:"span_id,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	rec *Recovery
}

// Span opens a child span. Nil-safe: a nil receiver (tracing off) returns
// nil, and so does a span whose recovery has already finished, which keeps
// recorded trees immutable.
func (s *Span) Span(name string) *Span {
	if s == nil || s.rec.finished.Load() {
		return nil
	}
	r := s.rec
	c := r.alloc()
	c.Name, c.StartUS, c.rec = name, r.sinceUS(), r
	s.Children = append(s.Children, c)
	return c
}

// End closes the span, fixing its duration. Nil-safe; idempotent enough
// (a second End overwrites the duration with a later one).
func (s *Span) End() {
	if s == nil || s.rec.finished.Load() {
		return
	}
	s.DurUS = s.rec.sinceUS() - s.StartUS
}

// EndAt is End with a caller-supplied timestamp from Recovery.NowUS, so a
// phase boundary (one span ends, the next starts) costs one clock read
// instead of two. Nil-safe.
func (s *Span) EndAt(nowUS int64) {
	if s == nil || s.rec.finished.Load() {
		return
	}
	s.DurUS = nowUS - s.StartUS
}

// SetInt attaches an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, v int64) {
	if s == nil || s.rec.finished.Load() {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Num: v})
}

// SetStr attaches a string attribute. Nil-safe.
func (s *Span) SetStr(key, v string) {
	if s == nil || s.rec.finished.Load() {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v})
}

// SetSpanID pins the span's wire id (16 lowercase hex, typically from
// DeriveSpanID). Nil-safe.
func (s *Span) SetSpanID(id string) {
	if s == nil || s.rec.finished.Load() {
		return
	}
	s.SpanID = id
}

// SetAttrs attaches several attributes in one call — the traced hot path
// batches its per-phase counters through this so instrumentation costs
// one call per phase. The variadic slice is adopted when the span has no
// attributes yet (the common case), so callers must not reuse it.
// Nil-safe.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil || s.rec.finished.Load() {
		return
	}
	if s.Attrs == nil {
		s.Attrs = attrs
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Recovery is the span tree of one contract recovery in progress. Create
// with Tracer.StartRecovery, close with Finish. A Recovery is single-
// writer (see the package comment): the goroutine running the recovery
// owns all span mutation and the Finish call. The atomic finished flag
// turns every span operation into a no-op after Finish, so a recorded
// tree stays immutable even if a stale caller still holds a span.
type Recovery struct {
	tracer    *Tracer
	requestID string
	start     time.Time
	// traceID is the 32-hex trace this recovery belongs to: adopted from
	// the remote parent when StartRoot got a valid SpanContext, derived
	// from the request id otherwise ("" for anonymous recoveries until
	// Finish derives one from the start timestamp).
	traceID string
	// parentSpanID is the remote parent's span id (16 hex) when this tree
	// continues a trace started in another process, "" for local roots.
	parentSpanID string
	// eventSeq is the wide-event log sequence number of this recovery's
	// event, when an event log is configured — the join key from a span
	// tree back to the durable log. Set by the pipeline before Finish.
	eventSeq uint64

	finished atomic.Bool
	Root     Span
	// slab backs child spans in chunks so a recovery with a dozen spans
	// costs one allocation, not twelve. Chunks stay alive as long as any
	// retained record points into them, which is exactly the records'
	// lifetime.
	slab []Span
}

// spanSlabChunk is the spans-per-allocation granularity; a typical
// recovery (disassemble + dispatch + a few selectors x explore/infer)
// fits in one chunk.
const spanSlabChunk = 16

// alloc hands out one span from the slab.
func (r *Recovery) alloc() *Span {
	if len(r.slab) == cap(r.slab) {
		r.slab = make([]Span, 0, spanSlabChunk)
	}
	r.slab = r.slab[:len(r.slab)+1]
	return &r.slab[len(r.slab)-1]
}

// sinceUS is the monotonic offset from the recovery start.
func (r *Recovery) sinceUS() int64 { return time.Since(r.start).Microseconds() }

// RequestID returns the ID the recovery was started with.
func (r *Recovery) RequestID() string {
	if r == nil {
		return ""
	}
	return r.requestID
}

// TraceID returns the recovery's 32-hex trace id — adopted from the
// remote parent or derived from the request id — for injecting outbound
// trace context mid-flight. Nil-safe; "" for anonymous recoveries (their
// id is only fixed at Finish).
func (r *Recovery) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// Span opens a child of the root span. Nil-safe.
func (r *Recovery) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return r.Root.Span(name)
}

// NowUS reads the monotonic clock once, for sharing one timestamp between
// an EndAt and a SpanAt at a phase boundary. Nil-safe (returns 0).
func (r *Recovery) NowUS() int64 {
	if r == nil {
		return 0
	}
	return r.sinceUS()
}

// SpanAt is Span with a caller-supplied start timestamp from NowUS.
// Nil-safe.
func (r *Recovery) SpanAt(name string, nowUS int64) *Span {
	if r == nil || r.finished.Load() {
		return nil
	}
	c := r.alloc()
	c.Name, c.StartUS, c.rec = name, nowUS, r
	r.Root.Children = append(r.Root.Children, c)
	return c
}

// SetInt attaches an integer attribute to the root span. Nil-safe.
func (r *Recovery) SetInt(key string, v int64) {
	if r == nil {
		return
	}
	r.Root.SetInt(key, v)
}

// SetStr attaches a string attribute to the root span. Nil-safe.
func (r *Recovery) SetStr(key, v string) {
	if r == nil {
		return
	}
	r.Root.SetStr(key, v)
}

// SetEventSeq records the recovery's wide-event log sequence number, so
// the flight-recorder record and the trace text carry the offset needed
// to pull the full event line back out of the log. Nil-safe.
func (r *Recovery) SetEventSeq(seq uint64) {
	if r == nil || r.finished.Load() {
		return
	}
	r.eventSeq = seq
}

// Finish closes the recovery: the root span's duration is fixed, further
// span operations become no-ops, and the tree is offered to the tracer's
// flight recorder (kept when truncated or among the slowest). err of nil
// — or an error the caller considers a legitimate outcome — records no
// error string. Nil-safe; only the first Finish takes effect.
func (r *Recovery) Finish(truncated bool, err error) {
	if r == nil || !r.finished.CompareAndSwap(false, true) {
		return
	}
	r.Root.DurUS = r.sinceUS()
	tid := r.traceID
	if tid == "" {
		tid = DeriveTraceID(TraceSeed(r.requestID, r.start))
	}
	rec := &Record{
		RequestID:    r.requestID,
		TraceID:      tid,
		ParentSpanID: r.parentSpanID,
		EventSeq:     r.eventSeq,
		Start:        r.start,
		DurUS:        r.Root.DurUS,
		Truncated:    truncated,
		Root:         &r.Root,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	r.tracer.fr.add(rec)
	if r.tracer.sink != nil {
		r.tracer.sink(rec)
	}
}

// WriteText renders the recovery's span tree as indented text, one span
// per line with its duration and attributes, headed by the request id and
// (when an event log is configured) the wide-event sequence number that
// locates this recovery's full record in the log. Nil-safe.
func (r *Recovery) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	if r.requestID != "" || r.eventSeq != 0 {
		var b strings.Builder
		if r.requestID != "" {
			b.WriteString("request_id=")
			b.WriteString(r.requestID)
		}
		if r.eventSeq != 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "event_seq=%d", r.eventSeq)
		}
		b.WriteByte('\n')
		io.WriteString(w, b.String())
	}
	writeSpanText(w, &r.Root, 0)
}

func writeSpanText(w io.Writer, s *Span, depth int) {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	fmt.Fprintf(&b, " %.3fms", float64(s.DurUS)/1000)
	for _, a := range s.Attrs {
		if a.Str != "" {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Num)
		}
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String())
	for _, c := range s.Children {
		writeSpanText(w, c, depth+1)
	}
}

// Config sizes a Tracer. The zero value selects the defaults.
type Config struct {
	// Slowest is how many of the slowest recoveries the flight recorder
	// retains (<= 0 selects DefaultSlowest).
	Slowest int
	// Truncated is how many recent budget-truncated recoveries the flight
	// recorder retains (<= 0 selects DefaultTruncated).
	Truncated int
	// Sink, when non-nil, receives every finished recovery record (not
	// just the ones the flight recorder retains) — the OTLP exporter's
	// intake. It runs on the goroutine calling Finish, so it must be
	// non-blocking; the record and its span tree are immutable once
	// delivered.
	Sink func(*Record)
}

// Flight-recorder defaults.
const (
	DefaultSlowest   = 16
	DefaultTruncated = 32
)

// Tracer creates per-recovery span trees and owns the flight recorder. A
// nil *Tracer is the off switch: StartRecovery passes the context through
// untouched and returns a nil Recovery, making the whole span API no-op.
type Tracer struct {
	fr   *FlightRecorder
	sink func(*Record)
}

// New returns a Tracer with a flight recorder sized by cfg.
func New(cfg Config) *Tracer {
	if cfg.Slowest <= 0 {
		cfg.Slowest = DefaultSlowest
	}
	if cfg.Truncated <= 0 {
		cfg.Truncated = DefaultTruncated
	}
	return &Tracer{fr: newFlightRecorder(cfg.Slowest, cfg.Truncated), sink: cfg.Sink}
}

// StartRecovery opens a recovery span tree and arms the context with it so
// the pipeline (core.RecoverContext) attaches its phase spans. requestID
// ties the trace to log lines and the flight-recorder entry. Nil-safe: a
// nil tracer returns (ctx, nil) unchanged.
func (t *Tracer) StartRecovery(ctx context.Context, requestID string) (context.Context, *Recovery) {
	return t.StartRoot(ctx, "recovery", requestID, SpanContext{})
}

// StartRoot is the general form of StartRecovery: it names the root span
// and optionally continues a trace started in another process. A valid
// parent pins the trace id and records the remote span as the exported
// root's parent — this is how a shard recovery nests under the router
// attempt span that carried its traceparent. An invalid parent (the zero
// SpanContext, or a malformed inbound header) starts a fresh root whose
// trace id derives from the request id. Nil-safe: a nil tracer returns
// (ctx, nil) unchanged.
func (t *Tracer) StartRoot(ctx context.Context, name, requestID string, parent SpanContext) (context.Context, *Recovery) {
	if t == nil {
		return ctx, nil
	}
	r := &Recovery{tracer: t, requestID: requestID, start: time.Now()}
	if parent.Valid() {
		r.traceID = parent.TraceID
		r.parentSpanID = parent.SpanID
	} else if requestID != "" {
		r.traceID = DeriveTraceID(requestID)
	}
	// The root fans out to every per-selector span pair, so pre-size its
	// child list past append's 1/2/4 growth steps.
	r.Root = Span{Name: name, rec: r, Children: make([]*Span, 0, 12)}
	return context.WithValue(ctx, recoveryKey{}, r), r
}

// Recorder returns the tracer's flight recorder. Nil-safe (returns nil).
func (t *Tracer) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.fr
}

type recoveryKey struct{}

// FromContext returns the recovery armed on the context, or nil. This is
// the pipeline's single per-recovery tracing cost when tracing is off.
func FromContext(ctx context.Context) *Recovery {
	r, _ := ctx.Value(recoveryKey{}).(*Recovery)
	return r
}
