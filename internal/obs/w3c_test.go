package obs

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// Well-formed reference ids reused across the tables.
const (
	tpTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	tpSpan  = "00f067aa0ba902b7"
)

// TestParseTraceparent pins the parser against the W3C edge cases: a
// malformed header must be rejected (the caller then starts a fresh root),
// and every accepted form must carry the exact ids through.
func TestParseTraceparent(t *testing.T) {
	valid := "00-" + tpTrace + "-" + tpSpan + "-01"
	cases := []struct {
		name    string
		in      string
		ok      bool
		sampled bool
	}{
		{"valid sampled", valid, true, true},
		{"valid unsampled", "00-" + tpTrace + "-" + tpSpan + "-00", true, false},
		{"flags high bits ignored", "00-" + tpTrace + "-" + tpSpan + "-fe", true, false},
		{"flags odd means sampled", "00-" + tpTrace + "-" + tpSpan + "-03", true, true},
		{"future version accepted", "01-" + tpTrace + "-" + tpSpan + "-01", true, true},
		{"future version with suffix", "cc-" + tpTrace + "-" + tpSpan + "-01-extra-fields", true, true},
		{"empty", "", false, false},
		{"short", "00-abc-def-01", false, false},
		{"version ff forbidden", "ff-" + tpTrace + "-" + tpSpan + "-01", false, false},
		{"version uppercase", "0A-" + tpTrace + "-" + tpSpan + "-01", false, false},
		{"version non-hex", "zz-" + tpTrace + "-" + tpSpan + "-01", false, false},
		{"version 00 with suffix", valid + "-extra", false, false},
		{"future version bad separator", "01-" + tpTrace + "-" + tpSpan + "-01x", false, false},
		{"uppercase trace id", "00-" + strings.ToUpper(tpTrace) + "-" + tpSpan + "-01", false, false},
		{"uppercase span id", "00-" + tpTrace + "-" + strings.ToUpper(tpSpan) + "-01", false, false},
		{"non-hex trace id", "00-" + tpTrace[:31] + "g-" + tpSpan + "-01", false, false},
		{"all-zero trace id", "00-" + strings.Repeat("0", 32) + "-" + tpSpan + "-01", false, false},
		{"all-zero span id", "00-" + tpTrace + "-0000000000000000-01", false, false},
		{"short trace id", "00-" + tpTrace[:30] + "-" + tpSpan + "-01-x", false, false},
		{"missing dashes", "00_" + tpTrace + "_" + tpSpan + "_01", false, false},
		{"non-hex flags", "00-" + tpTrace + "-" + tpSpan + "-0x", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ParseTraceparent(tc.in)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			}
			if !ok {
				if sc != (SpanContext{}) {
					t.Fatalf("rejected header leaked a context: %+v", sc)
				}
				return
			}
			if sc.TraceID != tpTrace || sc.SpanID != tpSpan {
				t.Fatalf("ids = %s/%s, want %s/%s", sc.TraceID, sc.SpanID, tpTrace, tpSpan)
			}
			if sc.Sampled != tc.sampled {
				t.Fatalf("sampled = %v, want %v", sc.Sampled, tc.sampled)
			}
		})
	}
}

// TestExtract pins the header-level policy: absent and malformed headers
// are dispositions, not errors, and only a parsed header picks up its
// tracestate.
func TestExtract(t *testing.T) {
	mk := func(tp, ts string) http.Header {
		h := http.Header{}
		if tp != "" {
			h.Set(TraceparentHeader, tp)
		}
		if ts != "" {
			h.Set(TracestateHeader, ts)
		}
		return h
	}
	valid := "00-" + tpTrace + "-" + tpSpan + "-01"

	if sc, res := Extract(mk("", "vendor=1")); res != ExtractAbsent || sc.Valid() {
		t.Fatalf("absent: sc=%+v res=%s", sc, res)
	}
	if sc, res := Extract(mk("garbage", "vendor=1")); res != ExtractMalformed || sc.Valid() {
		t.Fatalf("malformed: sc=%+v res=%s", sc, res)
	}
	sc, res := Extract(mk(valid, "vendor=1,other=2"))
	if res != ExtractOK || !sc.Valid() || sc.State != "vendor=1,other=2" {
		t.Fatalf("ok: sc=%+v res=%s", sc, res)
	}
	// Hostile tracestate is dropped, not propagated: control bytes and
	// oversized values must never reach logs or outbound headers.
	if sc, _ := Extract(mk(valid, "evil\x00state")); sc.State != "" {
		t.Fatalf("control-byte tracestate kept: %q", sc.State)
	}
	if sc, _ := Extract(mk(valid, strings.Repeat("x", maxTracestateLen+1))); sc.State != "" {
		t.Fatalf("oversized tracestate kept (%d bytes)", len(sc.State))
	}
}

// TestInjectRoundTrip pins that Inject/Extract are inverses for a valid
// context, and that Inject refuses to emit an invalid one.
func TestInjectRoundTrip(t *testing.T) {
	want := SpanContext{TraceID: tpTrace, SpanID: tpSpan, Sampled: true, State: "vendor=1"}
	h := http.Header{}
	Inject(h, want)
	got, res := Extract(h)
	if res != ExtractOK || got != want {
		t.Fatalf("round trip: got %+v (%s), want %+v", got, res, want)
	}

	h = http.Header{}
	Inject(h, SpanContext{TraceID: "short", SpanID: tpSpan})
	if h.Get(TraceparentHeader) != "" {
		t.Fatalf("invalid context injected: %q", h.Get(TraceparentHeader))
	}
}

// TestDeriveIDs pins the deterministic derivations: stable across calls,
// distinct across seeds, and always well-formed (parseable, non-zero).
func TestDeriveIDs(t *testing.T) {
	tid := DeriveTraceID("client-42")
	if tid != DeriveTraceID("client-42") {
		t.Fatal("DeriveTraceID is not deterministic")
	}
	if tid == DeriveTraceID("client-43") {
		t.Fatal("distinct seeds collided")
	}
	sid := DeriveSpanID("client-42.7")
	sc := SpanContext{TraceID: tid, SpanID: sid, Sampled: true}
	if !sc.Valid() {
		t.Fatalf("derived ids not valid: %+v", sc)
	}
	if got, ok := ParseTraceparent(sc.Traceparent()); !ok || got.TraceID != tid || got.SpanID != sid {
		t.Fatalf("derived ids did not survive the wire: %+v ok=%v", got, ok)
	}

	if a, b := DeriveSpanIDAt("r", 1, 0), DeriveSpanIDAt("r", 1, 1); a == b {
		t.Fatal("positional span ids collided across indexes")
	}
	if a, b := DeriveSpanIDAt("r", 1, 0), DeriveSpanIDAt("r", 2, 0); a == b {
		t.Fatal("positional span ids collided across start times")
	}

	if TraceSeed("req", time.Unix(0, 5)) != "req" {
		t.Fatal("TraceSeed ignored the request id")
	}
	if TraceSeed("", time.Unix(0, 5)) != "anon:5" {
		t.Fatalf("anonymous seed = %q", TraceSeed("", time.Unix(0, 5)))
	}
}

// TestStartRootParenting pins the remote-parent plumbing end to end: a
// valid parent pins the trace id and parent span id on the finished
// record; an invalid one derives from the request id instead.
func TestStartRootParenting(t *testing.T) {
	tr := New(Config{})
	parent := SpanContext{TraceID: tpTrace, SpanID: tpSpan, Sampled: true}
	_, rec := tr.StartRoot(t.Context(), "recovery", "req-1", parent)
	if rec.TraceID() != tpTrace {
		t.Fatalf("TraceID() = %q, want %q", rec.TraceID(), tpTrace)
	}
	rec.Finish(false, nil)

	_, fresh := tr.StartRoot(t.Context(), "recovery", "req-2", SpanContext{})
	if fresh.TraceID() != DeriveTraceID("req-2") {
		t.Fatalf("fresh root trace id = %q", fresh.TraceID())
	}
	fresh.Finish(false, nil)

	var adopted, derived *Record
	for _, r := range tr.Recorder().Find(tpTrace) {
		adopted = r
	}
	for _, r := range tr.Recorder().Find(DeriveTraceID("req-2")) {
		derived = r
	}
	if adopted == nil || adopted.ParentSpanID != tpSpan {
		t.Fatalf("adopted record = %+v", adopted)
	}
	if derived == nil || derived.ParentSpanID != "" {
		t.Fatalf("derived record = %+v", derived)
	}
}
