package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety drives the whole span API through nil receivers — the
// tracing-off path the pipeline takes unconditionally. Any panic fails.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, rec := tr.StartRecovery(context.Background(), "id")
	if rec != nil {
		t.Fatalf("nil tracer produced a recovery")
	}
	if FromContext(ctx) != nil {
		t.Fatalf("nil tracer armed the context")
	}
	rec.SetInt("k", 1)
	rec.SetStr("k", "v")
	rec.Finish(true, errors.New("x"))
	rec.WriteText(&strings.Builder{})
	if got := rec.RequestID(); got != "" {
		t.Fatalf("RequestID on nil recovery = %q", got)
	}
	sp := rec.Span("phase")
	if sp != nil {
		t.Fatalf("nil recovery produced a span")
	}
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	if c := sp.Span("child"); c != nil {
		t.Fatalf("nil span produced a child")
	}
	if tr.Recorder().Snapshot().Recoveries != 0 {
		t.Fatalf("nil recorder snapshot not zero")
	}
}

// TestSpanTree checks the recorded tree shape, attributes, and that the
// tree round-trips through JSON with the expected field names.
func TestSpanTree(t *testing.T) {
	tr := New(Config{})
	_, rec := tr.StartRecovery(context.Background(), "req-1")
	if rec.RequestID() != "req-1" {
		t.Fatalf("RequestID = %q", rec.RequestID())
	}
	d := rec.Span("disassemble")
	d.SetInt("code_bytes", 42)
	d.End()
	sel := rec.Span("selector")
	sel.SetStr("selector", "0xa9059cbb")
	e := sel.Span("explore")
	e.SetInt("paths", 3)
	e.End()
	sel.End()
	rec.Finish(false, nil)

	root := &rec.Root
	if root.Name != "recovery" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "disassemble" || root.Children[1].Name != "selector" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	ex := root.Children[1].Children
	if len(ex) != 1 || ex[0].Name != "explore" {
		t.Fatalf("selector children = %+v", ex)
	}
	if got := ex[0].Attrs[0]; got.Key != "paths" || got.Num != 3 {
		t.Fatalf("explore attr = %+v", got)
	}

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"recovery"`, `"selector"`, `"k":"paths"`, `"n":3`, `"s":"0xa9059cbb"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s in %s", want, data)
		}
	}
}

// TestFinishFreezesTree models the coalescing race: a pooled worker keeps
// appending spans after the requester finished the recovery. Everything
// after Finish must be a no-op so the recorded tree is immutable.
func TestFinishFreezesTree(t *testing.T) {
	tr := New(Config{})
	_, rec := tr.StartRecovery(context.Background(), "req")
	sp := rec.Span("explore")
	rec.Finish(false, nil)

	before := len(rec.Root.Children)
	sp.SetInt("late", 1)
	sp.End()
	if c := sp.Span("late-child"); c != nil {
		t.Fatalf("span created after Finish")
	}
	if rec.Span("late-root") != nil {
		t.Fatalf("root span created after Finish")
	}
	if len(rec.Root.Children) != before {
		t.Fatalf("children grew after Finish")
	}
	if len(sp.Attrs) != 0 {
		t.Fatalf("attrs grew after Finish: %+v", sp.Attrs)
	}
	// A second Finish must not re-offer the record.
	rec.Finish(true, errors.New("late"))
	snap := tr.Recorder().Snapshot()
	if snap.Recoveries != 1 || snap.TruncatedSeen != 0 {
		t.Fatalf("double Finish changed the recorder: %+v", snap)
	}
}

// TestFlightRecorderRetention exercises both retention policies: the
// slowest list keeps the N largest durations sorted descending, and the
// truncated ring keeps the most recent M, newest first in the snapshot.
func TestFlightRecorderRetention(t *testing.T) {
	fr := newFlightRecorder(3, 2)
	for i, dur := range []int64{50, 10, 90, 30, 70} {
		fr.add(&Record{RequestID: string(rune('a' + i)), DurUS: dur})
	}
	snap := fr.Snapshot()
	if snap.Recoveries != 5 {
		t.Fatalf("Recoveries = %d", snap.Recoveries)
	}
	var got []int64
	for _, r := range snap.Slowest {
		got = append(got, r.DurUS)
	}
	want := []int64{90, 70, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slowest = %v, want %v", got, want)
		}
	}

	for i := 0; i < 5; i++ {
		fr.add(&Record{DurUS: int64(i), Truncated: true, Error: string(rune('0' + i))})
	}
	snap = fr.Snapshot()
	if snap.TruncatedSeen != 5 {
		t.Fatalf("TruncatedSeen = %d", snap.TruncatedSeen)
	}
	if len(snap.Truncated) != 2 {
		t.Fatalf("truncated ring kept %d", len(snap.Truncated))
	}
	// Newest first: records 4 then 3.
	if snap.Truncated[0].Error != "4" || snap.Truncated[1].Error != "3" {
		t.Fatalf("truncated order = %q, %q", snap.Truncated[0].Error, snap.Truncated[1].Error)
	}
}

// TestConcurrentRecoveries hammers one tracer from many goroutines; run
// under -race this is the lock-discipline check for Recovery and the
// flight recorder.
func TestConcurrentRecoveries(t *testing.T) {
	tr := New(Config{Slowest: 4, Truncated: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, rec := tr.StartRecovery(context.Background(), "r")
				sp := rec.Span("explore")
				sp.SetInt("i", int64(i))
				sp.End()
				rec.Finish(i%2 == 0, nil)
			}
		}(g)
	}
	// Concurrent snapshots while recoveries finish.
	for i := 0; i < 20; i++ {
		_ = tr.Recorder().Snapshot()
	}
	wg.Wait()
	snap := tr.Recorder().Snapshot()
	if snap.Recoveries != 400 {
		t.Fatalf("Recoveries = %d, want 400", snap.Recoveries)
	}
	if len(snap.Slowest) != 4 || len(snap.Truncated) != 4 {
		t.Fatalf("retained %d slowest, %d truncated", len(snap.Slowest), len(snap.Truncated))
	}
}

// TestWriteText checks the indented text rendering `sigrec -trace` prints.
func TestWriteText(t *testing.T) {
	tr := New(Config{})
	_, rec := tr.StartRecovery(context.Background(), "req")
	sp := rec.Span("selector")
	sp.SetStr("selector", "0xdeadbeef")
	c := sp.Span("explore")
	c.SetInt("paths", 7)
	c.End()
	sp.End()
	rec.Finish(false, nil)

	var b strings.Builder
	rec.WriteText(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "request_id=req" {
		t.Fatalf("line 0 = %q, want request_id header", lines[0])
	}
	if !strings.HasPrefix(lines[1], "recovery ") {
		t.Fatalf("line 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  selector ") || !strings.Contains(lines[2], "selector=0xdeadbeef") {
		t.Fatalf("line 2 = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "    explore ") || !strings.Contains(lines[3], "paths=7") {
		t.Fatalf("line 3 = %q", lines[3])
	}
}

// TestVersion sanity-checks the build-info accessors.
func TestVersion(t *testing.T) {
	ver, goVer := Version()
	if ver == "" || goVer == "" {
		t.Fatalf("Version() = %q, %q", ver, goVer)
	}
	if s := VersionString(); !strings.Contains(s, "sigrec") {
		t.Fatalf("VersionString() = %q", s)
	}
}

func TestSinkReceivesEveryFinish(t *testing.T) {
	var got []*Record
	tr := New(Config{Slowest: 1, Truncated: 1, Sink: func(r *Record) { got = append(got, r) }})
	for i := 0; i < 5; i++ {
		_, rec := tr.StartRecovery(context.Background(), fmt.Sprintf("req-%d", i))
		s := rec.Span("phase")
		s.SetInt("i", int64(i))
		s.End()
		rec.Finish(false, nil)
		rec.Finish(false, nil) // second Finish must not re-deliver
	}
	if len(got) != 5 {
		t.Fatalf("sink saw %d records, want 5 (flight recorder retains fewer)", len(got))
	}
	for i, r := range got {
		if want := fmt.Sprintf("req-%d", i); r.RequestID != want {
			t.Errorf("record %d request id = %q, want %q", i, r.RequestID, want)
		}
		if r.Root == nil || len(r.Root.Children) != 1 || r.Root.Children[0].Name != "phase" {
			t.Errorf("record %d span tree malformed: %+v", i, r.Root)
		}
	}
}
