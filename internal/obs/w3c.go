package obs

import (
	"encoding/hex"
	"net/http"
	"strconv"
	"time"

	"sigrec/internal/keccak"
)

// W3C Trace Context header names. http.Header canonicalizes on Set/Get,
// so the lowercase wire form the spec mandates is what Go sends anyway.
const (
	TraceparentHeader = "Traceparent"
	TracestateHeader  = "Tracestate"
)

// maxTracestateLen caps the opaque tracestate value carried through the
// fleet, mirroring the request-id cap: a hostile header must not bloat
// spans or logs.
const maxTracestateLen = 512

// SpanContext is the cross-process identity of a span: the W3C trace id
// (32 lowercase hex), the parent span id (16 lowercase hex), the sampled
// flag, and the opaque tracestate carried through unmodified. The zero
// value is "no remote parent".
type SpanContext struct {
	TraceID string
	SpanID  string
	Sampled bool
	// State is the verbatim tracestate header, propagated opaquely: this
	// repo neither reads nor rewrites vendor entries.
	State string
}

// Valid reports whether the context identifies a span: well-sized ids,
// neither all-zero. Parsed and derived ids always satisfy this; a zero
// SpanContext never does.
func (sc SpanContext) Valid() bool {
	return len(sc.TraceID) == 32 && len(sc.SpanID) == 16 &&
		!allZeroHex(sc.TraceID) && !allZeroHex(sc.SpanID)
}

// Traceparent renders the context in W3C version-00 wire form:
// 00-<traceid>-<spanid>-<flags>.
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = append(b, sc.TraceID...)
	b = append(b, '-')
	b = append(b, sc.SpanID...)
	b = append(b, '-')
	b = append(b, flags...)
	return string(b)
}

// ParseTraceparent parses a traceparent header value. ok=false means the
// header is malformed; the policy on malformed input (start a fresh root,
// never error) belongs to the caller. Accepted per the W3C spec: any
// version except ff, lowercase hex only, non-zero trace and parent ids;
// future versions may carry extra dash-separated fields after the flags.
func ParseTraceparent(h string) (SpanContext, bool) {
	if len(h) < 55 {
		return SpanContext{}, false
	}
	if !isLowerHex(h[0:2]) || h[0:2] == "ff" {
		return SpanContext{}, false
	}
	if h[0:2] == "00" && len(h) != 55 {
		return SpanContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return SpanContext{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	tid, sid, flags := h[3:35], h[36:52], h[53:55]
	if !isLowerHex(tid) || !isLowerHex(sid) || !isLowerHex(flags) {
		return SpanContext{}, false
	}
	if allZeroHex(tid) || allZeroHex(sid) {
		return SpanContext{}, false
	}
	f, _ := strconv.ParseUint(flags, 16, 8)
	return SpanContext{TraceID: tid, SpanID: sid, Sampled: f&1 == 1}, true
}

// Extract results — also the label values of the
// sigrec_trace_context_total counter family.
const (
	ExtractOK        = "ok"
	ExtractAbsent    = "absent"
	ExtractMalformed = "malformed"
)

// Extract reads the inbound trace context from request headers under the
// same policy as X-Request-Id sanitization: an absent or malformed header
// yields an invalid SpanContext (the caller starts a fresh root), never an
// error. The second return is the disposition for metering.
func Extract(h http.Header) (SpanContext, string) {
	tp := h.Get(TraceparentHeader)
	if tp == "" {
		return SpanContext{}, ExtractAbsent
	}
	sc, ok := ParseTraceparent(tp)
	if !ok {
		return SpanContext{}, ExtractMalformed
	}
	sc.State = sanitizeTracestate(h.Get(TracestateHeader))
	return sc, ExtractOK
}

// Inject writes the context onto outbound request headers. A context that
// is not Valid injects nothing.
func Inject(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader, sc.Traceparent())
	if sc.State != "" {
		h.Set(TracestateHeader, sc.State)
	}
}

// sanitizeTracestate keeps a printable-ASCII, length-capped tracestate and
// drops anything else — the value is opaque, but it must be safe to log
// and re-emit.
func sanitizeTracestate(s string) string {
	if len(s) > maxTracestateLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			return ""
		}
	}
	return s
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// --- deterministic id derivation ---

// TraceSeed is the string a recovery's trace id derives from: the request
// id when there is one (every item of one batch request shares it, so
// they land in one trace), the start timestamp otherwise so anonymous
// recoveries stay distinct.
func TraceSeed(requestID string, start time.Time) string {
	if requestID != "" {
		return requestID
	}
	return "anon:" + strconv.FormatInt(start.UnixNano(), 10)
}

// DeriveTraceID maps a seed onto the 16-byte trace id as lowercase hex:
// the keccak the repo already keys everything by, truncated.
// Deterministic, so the same request id maps to the same trace id across
// processes — the router, the shards, and the wide-event log agree on a
// request's trace without coordination.
func DeriveTraceID(seed string) string {
	h := keccak.Sum256([]byte("sigrec/trace:" + seed))
	return hex.EncodeToString(h[:16])
}

// DeriveSpanID maps a globally unique name (a router attempt id) onto an
// 8-byte span id as lowercase hex. Because the id is a pure function of
// the name, the router can put it in an outbound traceparent before the
// attempt's span is even finished, and the receiving shard's root span
// parents under it exactly.
func DeriveSpanID(name string) string {
	h := keccak.Sum256([]byte("sigrec/spanid:" + name))
	return hex.EncodeToString(h[:8])
}

// DeriveSpanIDAt derives the span id for the index-th span (preorder) of
// the recovery identified by seed + start time. Purely a function of the
// record, so a re-export or a re-stitch of the same record produces the
// same ids and golden tests stay stable.
func DeriveSpanIDAt(seed string, startNano int64, index int) string {
	buf := make([]byte, 0, len(seed)+24)
	buf = append(buf, "sigrec/span:"...)
	buf = append(buf, seed...)
	buf = appendUint64(buf, uint64(startNano))
	buf = appendUint32(buf, uint32(index))
	h := keccak.Sum256(buf)
	return hex.EncodeToString(h[:8])
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
