package obs

// FlatSpan is one span of a finished recovery flattened with its wire
// identity: the same trace and span ids the OTLP exporter assigns, plus
// wall-clock nanosecond bounds reconstructed from the recovery start and
// the monotonic offsets. It is the unit of cross-process trace assembly
// (GET /debug/trace/{id}): spans from different processes stitch by id
// because both sides derive ids identically from the record.
type FlatSpan struct {
	TraceID      string `json:"trace_id"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	Name         string `json:"name"`
	// Service names the process that produced the span (router, shard id,
	// scanner), set by the stitching layer.
	Service       string `json:"service,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	EndUnixNano   int64  `json:"end_unix_nano"`
	Attrs         []Attr `json:"attrs,omitempty"`
	Error         string `json:"error,omitempty"`
}

// FlattenRecord flattens one finished record's span tree in preorder,
// assigning the exact ids the OTLP exporter would: explicit span ids
// (SetSpanID) win, every other span derives positionally via
// DeriveSpanIDAt. The root span carries the record-level identity
// attributes (sigrec.request_id, sigrec.event_seq, sigrec.truncated) and
// the record error, mirroring the exported form. Nil-safe.
func FlattenRecord(rec *Record, service string) []FlatSpan {
	if rec == nil || rec.Root == nil {
		return nil
	}
	seed := TraceSeed(rec.RequestID, rec.Start)
	tid := rec.TraceID
	if tid == "" {
		tid = DeriveTraceID(seed)
	}
	f := &flattener{seed: seed, tid: tid, baseNano: rec.Start.UnixNano(), service: service}
	f.walk(rec.Root, rec.ParentSpanID)
	root := &f.out[0]
	// Copy-on-extend: the children share the record's attr slices
	// read-only, but the root gains attrs and must not write into the
	// recovery's backing array.
	attrs := make([]Attr, 0, len(root.Attrs)+3)
	attrs = append(attrs, root.Attrs...)
	if rec.RequestID != "" {
		attrs = append(attrs, Attr{Key: "sigrec.request_id", Str: rec.RequestID})
	}
	if rec.EventSeq != 0 {
		attrs = append(attrs, Attr{Key: "sigrec.event_seq", Num: int64(rec.EventSeq)})
	}
	if rec.Truncated {
		attrs = append(attrs, Attr{Key: "sigrec.truncated", Num: 1})
	}
	root.Attrs = attrs
	root.Error = rec.Error
	return f.out
}

type flattener struct {
	seed     string
	tid      string
	baseNano int64
	service  string
	index    int
	out      []FlatSpan
}

func (f *flattener) walk(s *Span, parentID string) {
	id := s.SpanID
	if id == "" {
		id = DeriveSpanIDAt(f.seed, f.baseNano, f.index)
	}
	f.index++
	start := f.baseNano + s.StartUS*1000
	f.out = append(f.out, FlatSpan{
		TraceID:       f.tid,
		SpanID:        id,
		ParentSpanID:  parentID,
		Name:          s.Name,
		Service:       f.service,
		StartUnixNano: start,
		EndUnixNano:   start + s.DurUS*1000,
		Attrs:         s.Attrs,
	})
	for _, c := range s.Children {
		f.walk(c, id)
	}
}
