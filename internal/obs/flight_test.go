package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestFlightRecorderConcurrentEviction hammers the recorder from many
// writer goroutines with durations chosen to force constant displacement
// in the slowest table and constant wrap in the truncated ring, while
// readers snapshot concurrently. Run under -race this pins down the
// retention invariants during eviction: the slowest table stays sorted,
// capped, and duplicate-free; the ring caps at its size; counts equal
// offered traffic; and snapshots never observe a half-updated structure.
func TestFlightRecorderConcurrentEviction(t *testing.T) {
	const (
		maxSlow  = 8
		maxTrunc = 8
		writers  = 8
		perW     = 500
	)
	tr := New(Config{Slowest: maxSlow, Truncated: maxTrunc})
	fr := tr.Recorder()

	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: every snapshot must be internally consistent.
	for r := 0; r < 2; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := fr.Snapshot()
				if len(s.Slowest) > maxSlow || len(s.Truncated) > maxTrunc {
					panic(fmt.Sprintf("snapshot overflow: %d slowest, %d truncated",
						len(s.Slowest), len(s.Truncated)))
				}
				for i := 1; i < len(s.Slowest); i++ {
					if s.Slowest[i-1].DurUS < s.Slowest[i].DurUS {
						panic("slowest not sorted during eviction")
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				_, rec := tr.StartRecovery(context.Background(), fmt.Sprintf("w%d-%d", w, i))
				// Alternate truncated recoveries so the ring wraps constantly;
				// varying real durations mean later recoveries keep displacing
				// retained ones from the slowest table.
				rec.Finish(i%2 == 0, nil)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	s := fr.Snapshot()
	if s.Recoveries != writers*perW {
		t.Fatalf("seen %d recoveries, want %d", s.Recoveries, writers*perW)
	}
	if s.TruncatedSeen != writers*perW/2 {
		t.Fatalf("seen %d truncated, want %d", s.TruncatedSeen, writers*perW/2)
	}
	if len(s.Slowest) != maxSlow || len(s.Truncated) != maxTrunc {
		t.Fatalf("retained %d slowest / %d truncated, want %d/%d",
			len(s.Slowest), len(s.Truncated), maxSlow, maxTrunc)
	}
	seen := map[*Record]bool{}
	for i, r := range s.Slowest {
		if seen[r] {
			t.Fatalf("slowest[%d] duplicated after concurrent eviction", i)
		}
		seen[r] = true
		if i > 0 && s.Slowest[i-1].DurUS < r.DurUS {
			t.Fatalf("slowest not sorted: [%d]=%d after %d", i, r.DurUS, s.Slowest[i-1].DurUS)
		}
	}
	for i, r := range s.Truncated {
		if !r.Truncated {
			t.Fatalf("truncated ring entry %d is not truncated", i)
		}
	}
}
