package obs

import (
	"sync"
	"time"
)

// Record is one retained recovery in the flight recorder: identity, timing,
// outcome, and the full span tree. Records are immutable once added (the
// recovery is finished before it is offered), so snapshots share pointers.
type Record struct {
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the 32-hex W3C trace id this recovery belongs to —
	// adopted from the inbound traceparent, or derived deterministically
	// from the request id (see DeriveTraceID). Stamped by Finish on every
	// record.
	TraceID string `json:"trace_id,omitempty"`
	// ParentSpanID is the remote parent's span id (16 hex) when the trace
	// continues from another process, "" for local roots.
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// EventSeq is the wide-event log sequence number of this recovery's
	// event (0 when no event log was configured) — the offset to pull the
	// full denormalized record back out of the log.
	EventSeq  uint64    `json:"event_seq,omitempty"`
	Start     time.Time `json:"start"`
	DurUS     int64     `json:"dur_us"`
	Truncated bool      `json:"truncated,omitempty"`
	Error     string    `json:"error,omitempty"`
	Root      *Span     `json:"trace"`
}

// FlightRecorder retains the N slowest recoveries plus a ring of the most
// recent budget-truncated ones, each with its full span tree. It answers
// "why was that request slow/partial" after the fact, without a debugger
// attached: sigrecd serves its snapshot at GET /debug/slowest.
type FlightRecorder struct {
	mu sync.Mutex
	// slowest is kept sorted by DurUS descending, capped at maxSlow.
	maxSlow int
	slowest []*Record
	// trunc is a ring of the maxTrunc most recent truncated recoveries;
	// truncNext is the next write position once the ring has wrapped.
	maxTrunc  int
	trunc     []*Record
	truncNext int
	// seen/seenTrunc count every offered recovery, so the snapshot reports
	// how much traffic the retained records were selected from.
	seen      uint64
	seenTrunc uint64
}

func newFlightRecorder(maxSlow, maxTrunc int) *FlightRecorder {
	return &FlightRecorder{maxSlow: maxSlow, maxTrunc: maxTrunc}
}

// add offers one finished recovery. Truncated recoveries always enter the
// ring; any recovery slow enough displaces the fastest retained record.
func (fr *FlightRecorder) add(r *Record) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.seen++
	if r.Truncated {
		fr.seenTrunc++
		if len(fr.trunc) < fr.maxTrunc {
			fr.trunc = append(fr.trunc, r)
		} else {
			fr.trunc[fr.truncNext] = r
			fr.truncNext = (fr.truncNext + 1) % fr.maxTrunc
		}
	}
	if len(fr.slowest) == fr.maxSlow && r.DurUS <= fr.slowest[len(fr.slowest)-1].DurUS {
		return
	}
	// Insert in descending order; the slice is tiny (maxSlow records).
	i := len(fr.slowest)
	for i > 0 && fr.slowest[i-1].DurUS < r.DurUS {
		i--
	}
	fr.slowest = append(fr.slowest, nil)
	copy(fr.slowest[i+1:], fr.slowest[i:])
	fr.slowest[i] = r
	if len(fr.slowest) > fr.maxSlow {
		fr.slowest = fr.slowest[:fr.maxSlow]
	}
}

// Find returns every retained record belonging to a trace id, newest
// first within each retention class, deduplicated (a truncated recovery
// can sit in both the slowest list and the truncation ring). It backs
// GET /debug/trace/{id}: the recorder only answers for traces it
// retained, which is every trace when the recorder is sized past the
// traffic volume (the e2e gates do exactly that). Nil-safe.
func (fr *FlightRecorder) Find(traceID string) []*Record {
	if fr == nil || traceID == "" {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	var out []*Record
	seen := make(map[*Record]bool)
	for _, r := range fr.slowest {
		if r.TraceID == traceID && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, r := range fr.trunc {
		if r.TraceID == traceID && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Snapshot is a point-in-time copy of the flight recorder, JSON-ready for
// GET /debug/slowest. Truncated is ordered most recent first.
type Snapshot struct {
	// Recoveries and TruncatedSeen count every recovery offered since
	// startup, retained or not.
	Recoveries    uint64    `json:"recoveries"`
	TruncatedSeen uint64    `json:"truncated_seen"`
	Slowest       []*Record `json:"slowest"`
	Truncated     []*Record `json:"truncated"`
}

// Snapshot copies the retained record sets. Nil-safe (returns the zero
// snapshot), so callers can expose a disabled recorder uniformly.
func (fr *FlightRecorder) Snapshot() Snapshot {
	if fr == nil {
		return Snapshot{}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	s := Snapshot{
		Recoveries:    fr.seen,
		TruncatedSeen: fr.seenTrunc,
		Slowest:       append([]*Record(nil), fr.slowest...),
		Truncated:     make([]*Record, 0, len(fr.trunc)),
	}
	// Unroll the ring newest-first: positions truncNext-1 down to truncNext.
	for i := 0; i < len(fr.trunc); i++ {
		idx := (fr.truncNext - 1 - i + len(fr.trunc)) % len(fr.trunc)
		s.Truncated = append(s.Truncated, fr.trunc[idx])
	}
	return s
}
