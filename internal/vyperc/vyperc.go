// Package vyperc is a pattern-faithful miniature Vyper compiler, the
// companion of package solc for the paper's §2.3.2 accessing patterns.
//
// Vyper differs from Solidity in exactly the ways SigRec's rules key on:
// values are validated with comparison-based range checks (LT/SLT/SGT
// against type bounds, Listing 5 of the paper) instead of AND masks or
// SIGNEXTEND; public and external functions compile identically; and the
// language adds decimal, fixed-size lists, bytes[maxLen], and
// string[maxLen].
package vyperc

import (
	"fmt"
	"sync"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// Function is one Vyper function to compile. Vyper generates the same code
// for public and external functions, so there is no mode.
type Function struct {
	Sig abi.Signature
	// Plan mirrors solc's usage clues; nil means clue-rich defaults.
	Plan []Usage
}

// Usage describes the clues the body provides for one parameter.
type Usage struct {
	// Math uses the value arithmetically (uint256 vs bytes32 refinement).
	Math bool
	// ByteAccess reads one byte (bytes32 vs uint256; bytes[N] vs string[N]).
	ByteAccess bool
	// ItemAccess reads a list item.
	ItemAccess bool
}

// DefaultUsage is the clue-rich plan for a type.
func DefaultUsage(t abi.Type) Usage {
	u := Usage{ItemAccess: true}
	switch t.Kind {
	case abi.KindUint:
		u.Math = true
	case abi.KindFixedBytes:
		u.ByteAccess = true
	case abi.KindBoundedBytes:
		u.ByteAccess = true
	case abi.KindArray:
		return DefaultUsage(*t.Elem)
	}
	return u
}

func (f Function) usage(i int) Usage {
	if i < len(f.Plan) {
		return f.Plan[i]
	}
	return DefaultUsage(f.Sig.Inputs[i])
}

// Contract is a set of functions behind one dispatcher.
type Contract struct {
	Functions []Function
}

// Version is a Vyper release dialect.
type Version struct {
	Name   string
	UseSHR bool
}

// Versions returns the ladder of releases the evaluation sweeps (the paper
// used 17 versions from 0.1.0b4 to 0.2.8).
// The returned slice is shared and must not be modified.
func Versions() []Version { return versionsOnce() }

var versionsOnce = sync.OnceValue(buildVersions)

func buildVersions() []Version {
	var out []Version
	for b := 4; b <= 16; b++ {
		out = append(out, Version{Name: fmt.Sprintf("0.1.0b%d", b)})
	}
	for p := 0; p <= 3; p++ {
		out = append(out, Version{Name: fmt.Sprintf("0.2.%d", p*2+2), UseSHR: true})
	}
	return out
}

// DefaultVersion returns a modern dialect.
func DefaultVersion() Version { return Version{Name: "0.2.8", UseSHR: true} }

// Config selects the dialect.
type Config struct {
	Version Version
}

// Memory layout (mirrors solc's: copy regions low, scratch high).
const (
	regionBase   = 0x100
	regionStride = 0x8000
	scratchBase  = 0x40000
)

// Compile produces runtime bytecode for the contract.
func Compile(c Contract, cfg Config) ([]byte, error) {
	for _, f := range c.Functions {
		if err := f.Sig.Validate(); err != nil {
			return nil, fmt.Errorf("vyperc: %s: %w", f.Sig.Canonical(), err)
		}
		for _, in := range f.Sig.Inputs {
			if err := checkSupported(in); err != nil {
				return nil, fmt.Errorf("vyperc: %s: %w", f.Sig.Canonical(), err)
			}
		}
	}
	g := &codegen{cfg: cfg, asm: evm.NewAssembler()}
	return g.contract(c)
}

// checkSupported enforces Vyper's type system: bool, int128, uint256,
// address, bytes32, decimal, fixed-size lists of those, bytes[N], string[N],
// and structs of basic types.
func checkSupported(t abi.Type) error {
	switch t.Kind {
	case abi.KindBool, abi.KindAddress, abi.KindDecimal,
		abi.KindBoundedBytes, abi.KindBoundedString:
		return nil
	case abi.KindUint:
		if t.Bits != 256 {
			return fmt.Errorf("vyperc: uint%d unsupported (only uint256)", t.Bits)
		}
		return nil
	case abi.KindInt:
		if t.Bits != 128 {
			return fmt.Errorf("vyperc: int%d unsupported (only int128)", t.Bits)
		}
		return nil
	case abi.KindFixedBytes:
		if t.Size != 32 {
			return fmt.Errorf("vyperc: bytes%d unsupported (only bytes32)", t.Size)
		}
		return nil
	case abi.KindArray:
		return checkSupported(*t.Elem)
	case abi.KindTuple:
		for _, f := range t.Fields {
			if f.Kind == abi.KindArray || f.Kind == abi.KindTuple ||
				f.Kind == abi.KindBoundedBytes || f.Kind == abi.KindBoundedString {
				return fmt.Errorf("vyperc: struct member %s unsupported", f.Display())
			}
			if err := checkSupported(f); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("vyperc: type %s unsupported", t.Display())
	}
}

type codegen struct {
	cfg Config
	asm *evm.Assembler

	scratchNext uint64
	sinkNext    uint64
	fail        evm.Label
}

func (g *codegen) contract(c Contract) ([]byte, error) {
	a := g.asm
	g.fail = a.NewLabel()
	// Selector extraction (same dispatcher family as solc).
	a.Push(0).Op(evm.CALLDATALOAD)
	if g.cfg.Version.UseSHR {
		// SHR takes the shift amount from the stack top.
		a.Push(0xe0).Op(evm.SHR)
	} else {
		div := make([]byte, 29)
		div[0] = 0x01
		a.PushBytes(div).Swap(1).Op(evm.DIV)
		a.PushBytes([]byte{0xff, 0xff, 0xff, 0xff}).Op(evm.AND)
	}
	bodies := make([]evm.Label, len(c.Functions))
	for i, f := range c.Functions {
		bodies[i] = a.NewLabel()
		sel := f.Sig.Selector()
		a.Dup(1).PushBytes(sel[:]).Op(evm.EQ)
		a.JumpI(bodies[i])
	}
	a.Op(evm.POP).Op(evm.STOP)
	for i, f := range c.Functions {
		a.Bind(bodies[i])
		a.Op(evm.POP)
		if err := g.functionBody(f); err != nil {
			return nil, fmt.Errorf("vyperc: %s: %w", f.Sig.Canonical(), err)
		}
		a.Op(evm.STOP)
	}
	// Shared range-check failure: abort execution.
	a.Bind(g.fail)
	a.Push(0).Push(0).Op(evm.REVERT)
	return a.Assemble()
}

func (g *codegen) functionBody(f Function) error {
	g.scratchNext = scratchBase
	g.sinkNext = 0
	head := uint64(4)
	for i, t := range f.Sig.Inputs {
		if err := g.param(t, f.usage(i), head, regionBase+uint64(i)*regionStride); err != nil {
			return fmt.Errorf("parameter %d (%s): %w", i, t.Display(), err)
		}
		head += uint64(t.HeadSize())
	}
	return nil
}

func (g *codegen) scratch() uint64 {
	s := g.scratchNext
	g.scratchNext += 32
	return s
}

func (g *codegen) sink() {
	g.asm.Push(g.sinkNext).Op(evm.SSTORE)
	g.sinkNext++
}

func (g *codegen) param(t abi.Type, u Usage, headOff, region uint64) error {
	switch t.Kind {
	case abi.KindBool, abi.KindAddress, abi.KindUint, abi.KindInt,
		abi.KindDecimal, abi.KindFixedBytes:
		g.asm.Push(headOff).Op(evm.CALLDATALOAD)
		g.rangeCheckOps(t, u)
		g.sink()
		return nil
	case abi.KindTuple:
		// Struct layout equals the flattened members (paper §2.3.2).
		off := headOff
		for _, f := range t.Fields {
			if err := g.param(f, u, off, region); err != nil {
				return err
			}
			off += uint64(f.HeadSize())
		}
		return nil
	case abi.KindArray:
		return g.fixedList(t, u, headOff)
	case abi.KindBoundedBytes, abi.KindBoundedString:
		return g.boundedBytes(t, u, headOff, region)
	default:
		return fmt.Errorf("vyperc: unsupported parameter %s", t.Display())
	}
}

// rangeCheckOps validates the stack-top value with the comparison-based
// checks real Vyper emits (Listing 5 of the paper), leaving the value on
// the stack.
func (g *codegen) rangeCheckOps(t abi.Type, u Usage) {
	a := g.asm
	switch t.Kind {
	case abi.KindBool:
		// fail unless value < 2
		g.compareBoundLT(evm.WordFromUint64(2))
	case abi.KindAddress:
		// fail unless value < 2^160
		g.compareBoundLT(evm.OneWord.Shl(evm.WordFromUint64(160)))
	case abi.KindUint:
		if u.Math {
			a.Push(1).Op(evm.ADD)
		}
	case abi.KindInt:
		// int128: fail if v < -2^127 or v > 2^127-1
		min := evm.OneWord.Shl(evm.WordFromUint64(127)).Neg()
		max := evm.OneWord.Shl(evm.WordFromUint64(127)).Sub(evm.OneWord)
		g.signedRange(min, max)
	case abi.KindDecimal:
		// fail if outside ±2^127 scaled by 10^10
		scale := evm.WordFromUint64(10_000_000_000)
		min := evm.OneWord.Shl(evm.WordFromUint64(127)).Mul(scale).Neg()
		max := evm.OneWord.Shl(evm.WordFromUint64(127)).Mul(scale).Sub(evm.OneWord)
		g.signedRange(min, max)
	case abi.KindFixedBytes:
		if u.ByteAccess {
			a.Push(0).Op(evm.BYTE)
		}
	}
}

// compareBoundLT emits the Listing-5 pattern: the bound constant is staged
// in memory, loaded back, and compared with LT; out-of-range aborts.
func (g *codegen) compareBoundLT(bound evm.Word) {
	a := g.asm
	slot := g.scratch()
	a.PushWord(bound)
	a.Push(slot).Op(evm.MSTORE)
	a.Push(slot).Op(evm.MLOAD) // bound
	a.Dup(2)                   // value on top
	a.Op(evm.LT)               // value < bound
	a.Op(evm.ISZERO)
	a.JumpI(g.fail)
}

// signedRange emits the two signed comparisons for int128/decimal.
func (g *codegen) signedRange(min, max evm.Word) {
	a := g.asm
	// fail if value < min
	a.PushWord(min)
	a.Dup(2)
	a.Op(evm.SLT) // value < min
	a.JumpI(g.fail)
	// fail if value > max
	a.PushWord(max)
	a.Dup(2)
	a.Op(evm.SGT) // value > max
	a.JumpI(g.fail)
}

// fixedList reads list items with bound-checked CALLDATALOADs, the same
// pattern as a Solidity external static array.
func (g *codegen) fixedList(t abi.Type, u Usage, headOff uint64) error {
	if !u.ItemAccess {
		return nil
	}
	return g.listNest(t, u, headOff, nil)
}

// listNest recursively emits the loop nest; terms accumulate index strides.
func (g *codegen) listNest(t abi.Type, u Usage, base uint64, idx []struct{ slot, coeff uint64 }) error {
	if t.Kind != abi.KindArray {
		a := g.asm
		a.Push(base)
		for _, tm := range idx {
			a.Push(tm.slot).Op(evm.MLOAD)
			a.Push(tm.coeff).Op(evm.MUL)
			a.Op(evm.ADD)
		}
		a.Op(evm.CALLDATALOAD)
		g.rangeCheckOps(t, u)
		g.sink()
		return nil
	}
	stride := uint64(t.Elem.HeadSize())
	var err error
	g.loop(uint64(t.Len), func(iSlot uint64) {
		next := append(append([]struct{ slot, coeff uint64 }{}, idx...),
			struct{ slot, coeff uint64 }{iSlot, stride})
		if e := g.listNest(*t.Elem, u, base, next); e != nil {
			err = e
		}
	})
	return err
}

// loop emits `for i := 0; i < bound; i++ { body }` with the counter in
// scratch memory; the LT guard is the bound check SigRec's R24 keys on.
func (g *codegen) loop(bound uint64, body func(iSlot uint64)) {
	a := g.asm
	iSlot := g.scratch()
	a.Push(0).Push(iSlot).Op(evm.MSTORE)
	top := a.NewLabel()
	exit := a.NewLabel()
	a.Bind(top)
	a.Push(bound)
	a.Push(iSlot).Op(evm.MLOAD)
	a.Op(evm.LT).Op(evm.ISZERO)
	a.JumpI(exit)
	body(iSlot)
	a.Push(iSlot).Op(evm.MLOAD)
	a.Push(1).Op(evm.ADD)
	a.Push(iSlot).Op(evm.MSTORE)
	a.Jump(top)
	a.Bind(exit)
}

// boundedBytes reads a bytes[maxLen]/string[maxLen]: offset field, num field
// with an upper-bound check, then one CALLDATACOPY whose length is the
// compile-time constant 32+maxLen (rule R23's signature).
func (g *codegen) boundedBytes(t abi.Type, u Usage, headOff, region uint64) error {
	a := g.asm
	offSlot := g.scratch()
	a.Push(headOff).Op(evm.CALLDATALOAD)
	a.Push(offSlot).Op(evm.MSTORE)
	// num field at 4 + offset
	a.Push(4).Push(offSlot).Op(evm.MLOAD).Op(evm.ADD).Op(evm.CALLDATALOAD)
	// fail if num > maxLen
	a.Push(uint64(t.MaxLen))
	a.Dup(2)
	a.Op(evm.GT) // num > maxLen
	a.JumpI(g.fail)
	a.Op(evm.POP)
	// copy 32 + maxLen bytes starting at the num field
	padded := uint64(32 + (t.MaxLen+31)/32*32)
	a.Push(padded)
	a.Push(4).Push(offSlot).Op(evm.MLOAD).Op(evm.ADD)
	a.Push(region)
	a.Op(evm.CALLDATACOPY)
	// use the first content word
	a.Push(region + 32).Op(evm.MLOAD)
	if t.Kind == abi.KindBoundedBytes && u.ByteAccess {
		a.Push(0).Op(evm.BYTE)
	}
	g.sink()
	return nil
}
