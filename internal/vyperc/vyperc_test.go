package vyperc

import (
	"math/rand"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

func compileOne(t *testing.T, sigStr string, cfg Config) []byte {
	t.Helper()
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		t.Fatalf("ParseSignature(%q): %v", sigStr, err)
	}
	code, err := Compile(Contract{Functions: []Function{{Sig: sig}}}, cfg)
	if err != nil {
		t.Fatalf("Compile(%q): %v", sigStr, err)
	}
	return code
}

func executeCall(t *testing.T, code []byte, sigStr string, seed int64) evm.ExecResult {
	t.Helper()
	sig, _ := abi.ParseSignature(sigStr)
	r := rand.New(rand.NewSource(seed))
	vals := make([]abi.Value, len(sig.Inputs))
	for i, ty := range sig.Inputs {
		vals[i] = abi.RandomValue(r, ty)
	}
	callData, err := abi.EncodeCall(sig, vals)
	if err != nil {
		t.Fatalf("EncodeCall: %v", err)
	}
	return evm.NewInterpreter(code).Execute(evm.CallContext{CallData: callData})
}

// TestCompiledVyperExecutes: every supported Vyper shape must run valid
// call data to completion under both dialects.
func TestCompiledVyperExecutes(t *testing.T) {
	sigs := []string{
		"f(uint256)", "f(bool)", "f(address)", "f(int128)", "f(bytes32)",
		"f(decimal)", "f(uint256[3])", "f(address[2][2])",
		"f(bytes[32])", "f(string[16])",
		"f((uint256,uint256))", "f(uint256,bool,address)",
		"f(decimal,int128)",
	}
	for _, sigStr := range sigs {
		for _, cfg := range []Config{{Version: DefaultVersion()}, {Version: Versions()[0]}} {
			code := compileOne(t, sigStr, cfg)
			for seed := int64(0); seed < 3; seed++ {
				res := executeCall(t, code, sigStr, seed)
				if res.Reverted {
					t.Fatalf("%s (%s) seed%d: reverted: %v",
						sigStr, cfg.Version.Name, seed, res.Err)
				}
				if res.StorageWrites == 0 {
					t.Errorf("%s (%s): body inert", sigStr, cfg.Version.Name)
				}
			}
		}
	}
}

// TestRangeChecksAbort verifies out-of-range arguments abort execution,
// matching Vyper's runtime validation semantics.
func TestRangeChecksAbort(t *testing.T) {
	tests := []struct {
		sig string
		arg evm.Word
	}{
		{"f(bool)", evm.WordFromUint64(2)},                            // bool must be < 2
		{"f(address)", evm.OneWord.Shl(evm.WordFromUint64(200))},      // address must be < 2^160
		{"f(int128)", evm.OneWord.Shl(evm.WordFromUint64(130))},       // int128 range
		{"f(decimal)", evm.OneWord.Shl(evm.WordFromUint64(180))},      // decimal range
		{"f(int128)", evm.OneWord.Shl(evm.WordFromUint64(200)).Neg()}, // below min
	}
	for _, tc := range tests {
		code := compileOne(t, tc.sig, Config{Version: DefaultVersion()})
		sig, _ := abi.ParseSignature(tc.sig)
		sel := sig.Selector()
		arg := tc.arg.Bytes32()
		callData := append(sel[:], arg[:]...)
		res := evm.NewInterpreter(code).Execute(evm.CallContext{CallData: callData})
		if !res.Reverted {
			t.Errorf("%s with out-of-range %s must abort", tc.sig, tc.arg)
		}
	}
}

// TestBoundedBytesLengthCheck verifies num > maxLen aborts.
func TestBoundedBytesLengthCheck(t *testing.T) {
	code := compileOne(t, "f(bytes[8])", Config{Version: DefaultVersion()})
	sig, _ := abi.ParseSignature("f(bytes[8])")
	// Encode as unbounded bytes to smuggle an oversized value.
	raw, _ := abi.ParseSignature("f(bytes)")
	data, err := abi.EncodeCall(raw, []abi.Value{make([]byte, 20)})
	if err != nil {
		t.Fatal(err)
	}
	// Patch the selector to the bounded signature's (same canonical type,
	// so they already match).
	sel := sig.Selector()
	copy(data[:4], sel[:])
	res := evm.NewInterpreter(code).Execute(evm.CallContext{CallData: data})
	if !res.Reverted {
		t.Error("oversized bytes[8] must abort")
	}
}

// TestVyperUsesComparisonsNotMasks pins the paper's key Vyper observation.
func TestVyperUsesComparisonsNotMasks(t *testing.T) {
	code := compileOne(t, "f(address)", Config{Version: DefaultVersion()})
	var hasAND, hasLT bool
	for _, ins := range evm.Disassemble(code).Instructions {
		switch ins.Op {
		case evm.AND:
			hasAND = true
		case evm.LT:
			hasLT = true
		}
	}
	if hasAND {
		t.Error("Vyper address access must not use AND masks")
	}
	if !hasLT {
		t.Error("Vyper address access must use an LT range check")
	}
}

// TestUnsupportedTypesRejected enforces the Vyper type system.
func TestUnsupportedTypesRejected(t *testing.T) {
	bad := []string{"f(uint8)", "f(int64)", "f(bytes4)", "f(uint256[])", "f(bytes)", "f(string)"}
	for _, s := range bad {
		sig, _ := abi.ParseSignature(s)
		if _, err := Compile(Contract{Functions: []Function{{Sig: sig}}},
			Config{Version: DefaultVersion()}); err == nil {
			t.Errorf("%s must be rejected", s)
		}
	}
}

func TestVersionsTable(t *testing.T) {
	vs := Versions()
	if len(vs) != 17 {
		t.Errorf("want 17 versions, got %d", len(vs))
	}
	if vs[0].UseSHR || !vs[len(vs)-1].UseSHR {
		t.Error("dialect knobs mis-ordered")
	}
}
