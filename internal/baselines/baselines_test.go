package baselines

import (
	"errors"
	"strings"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/corpus"
	"sigrec/internal/efsd"
	"sigrec/internal/solc"
)

func compile(t *testing.T, sigStr string, mode solc.Mode) ([]byte, abi.Signature) {
	t.Helper()
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		t.Fatal(err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: mode}}},
		solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	return code, sig
}

func TestDBOnlyTool(t *testing.T) {
	db := efsd.New()
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	db.Add(sig)
	tool := &DBOnly{ToolName: "OSD", DB: db}
	got, err := tool.RecoverTypes(nil, sig.Selector())
	if err != nil || got != "(address,uint256)" {
		t.Errorf("hit: %q, %v", got, err)
	}
	other, _ := abi.ParseSignature("mint(uint256)")
	if _, err := tool.RecoverTypes(nil, other.Selector()); !errors.Is(err, ErrNotFound) {
		t.Errorf("miss: %v", err)
	}
	if tool.Name() != "OSD" {
		t.Errorf("name: %s", tool.Name())
	}
}

func TestEveemHeuristicsOnBasics(t *testing.T) {
	// Eveem's simple rules handle plain basic-type functions.
	tests := []struct {
		sig  string
		want string
	}{
		{"f(uint256)", "(uint256)"},
		{"f(uint8)", "(uint8)"},
		{"f(address)", "(address)"},
		{"f(bool)", "(bool)"},
		{"f(int32)", "(int32)"},
		{"f(uint256,address)", "(uint256,address)"},
	}
	tool := &Eveem{}
	for _, tc := range tests {
		code, sig := compile(t, tc.sig, solc.External)
		got, err := tool.RecoverTypes(code, sig.Selector())
		if err != nil {
			t.Fatalf("%s: %v", tc.sig, err)
		}
		if got != tc.want {
			t.Errorf("%s: got %s", tc.sig, got)
		}
	}
}

func TestEveemFailsOnComplexTypes(t *testing.T) {
	// Dynamic parameters lose their structure under the shallow scan: the
	// offset field reads as uint256. This is the error class the paper
	// reports for Eveem.
	code, sig := compile(t, "f(uint256[])", solc.External)
	tool := &Eveem{}
	got, err := tool.RecoverTypes(code, sig.Selector())
	if err != nil {
		t.Fatal(err)
	}
	if got == "(uint256[])" {
		t.Errorf("the heuristic model should not recover array structure, got %s", got)
	}
}

func TestEveemDBFallback(t *testing.T) {
	db := efsd.New()
	sig, _ := abi.ParseSignature("f(uint256[])")
	db.Add(sig)
	code, _ := compile(t, "f(uint256[])", solc.External)
	tool := &Eveem{DB: db}
	got, err := tool.RecoverTypes(code, sig.Selector())
	if err != nil || got != "(uint256[])" {
		t.Errorf("db-backed: %q, %v", got, err)
	}
}

func TestGigahorseFailureModes(t *testing.T) {
	// Across a corpus, Gigahorse must exhibit all documented failure modes:
	// aborts, merged parameters with nonexistent widths, DB drops.
	c, err := corpus.Generate(corpus.Config{Seed: 21, Solidity: 300, AmbiguityRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	tool := &Gigahorse{}
	var aborts, merged int
	for _, e := range c.Entries {
		got, err := tool.RecoverTypes(e.Code, e.Sig.Selector())
		if errors.Is(err, ErrAborted) {
			aborts++
			continue
		}
		if err != nil {
			continue
		}
		if strings.Contains(got, "uint5") || strings.Contains(got, "uint7") ||
			strings.Contains(got, "uint1_") {
			merged++
		}
		// Nonexistent widths like uint3228 are > uint256.
		for _, frag := range strings.Split(strings.Trim(got, "()"), ",") {
			if strings.HasPrefix(frag, "uint") && len(frag) > 7 {
				merged++
			}
		}
	}
	if aborts == 0 {
		t.Error("Gigahorse model must abort on some functions")
	}
	if merged == 0 {
		t.Error("Gigahorse model must merge parameters into nonexistent widths")
	}
	ratio := float64(aborts) / float64(len(c.Entries))
	if ratio > 0.10 {
		t.Errorf("abort ratio %f too high", ratio)
	}
}

func TestBodyRangeMissingSelector(t *testing.T) {
	code, _ := compile(t, "f(uint256)", solc.External)
	var bogus abi.Selector
	tool := &Eveem{}
	if _, err := tool.RecoverTypes(code, bogus); !errors.Is(err, ErrNotFound) {
		t.Errorf("bogus selector: %v", err)
	}
}
