// Package baselines reimplements the comparison tools of the paper's RQ5:
// the database-lookup decompilers (OSD, EBD, JEB), Eveem's database plus
// simple heuristic rules, and Gigahorse's database plus decompilation
// heuristics with their documented failure modes.
//
// These are *behavioral models*, not ports: the paper's tables measure
// categories of outcomes (database miss, wrong parameter types, wrong
// parameter count, abnormal abort), and each model reproduces the mechanism
// behind its tool's category profile (see DESIGN.md §4).
package baselines

import (
	"errors"
	"fmt"
	"strings"

	"sigrec/internal/abi"
	"sigrec/internal/efsd"
	"sigrec/internal/evm"
)

// Outcome-category errors, matched by the evaluation harness.
var (
	// ErrNotFound reports a selector missing from the signature database.
	ErrNotFound = errors.New("baselines: signature not in database")
	// ErrAborted reports an abnormal decompiler abort.
	ErrAborted = errors.New("baselines: tool aborted")
)

// Tool recovers the parameter type list of one function.
type Tool interface {
	// Name is the tool's display name.
	Name() string
	// RecoverTypes returns the canonical "(type1,type2,...)" list for the
	// function with the given id.
	RecoverTypes(code []byte, sel abi.Selector) (string, error)
}

// typeListOf extracts just the parenthesized list from a canonical
// signature string.
func typeListOf(canonical string) string {
	if i := strings.IndexByte(canonical, '('); i >= 0 {
		return canonical[i:]
	}
	return "()"
}

// --- database-only tools (OSD, EBD, JEB) ---

// DBOnly models the tools that answer purely from a signature database.
type DBOnly struct {
	ToolName string
	DB       *efsd.DB
}

var _ Tool = (*DBOnly)(nil)

// Name implements Tool.
func (t *DBOnly) Name() string { return t.ToolName }

// RecoverTypes implements Tool: a pure database lookup.
func (t *DBOnly) RecoverTypes(_ []byte, sel abi.Selector) (string, error) {
	if s, ok := t.DB.Lookup(sel); ok {
		return typeListOf(s), nil
	}
	return "", ErrNotFound
}

// --- Eveem: database plus simple mask heuristics ---

// Eveem models Eveem's recovery: EFSD lookup first, then a non-symbolic
// instruction-pattern scan that handles basic types but mistypes dynamic
// and multi-dimensional parameters (the error classes in the paper's §5.6).
type Eveem struct {
	DB *efsd.DB
}

var _ Tool = (*Eveem)(nil)

// Name implements Tool.
func (t *Eveem) Name() string { return "Eveem" }

// RecoverTypes implements Tool.
func (t *Eveem) RecoverTypes(code []byte, sel abi.Selector) (string, error) {
	if t.DB != nil {
		if s, ok := t.DB.Lookup(sel); ok {
			return typeListOf(s), nil
		}
	}
	types, err := heuristicScan(code, sel)
	if err != nil {
		return "", err
	}
	return "(" + strings.Join(types, ",") + ")", nil
}

// heuristicScan is the shared shallow pattern matcher: it walks the body's
// instruction stream linearly and types each constant-offset CALLDATALOAD
// by the masking instruction that immediately follows. It has no symbolic
// execution, no loop reasoning, and no memory model -- so offset fields of
// dynamic parameters come out as uint256, arrays lose their structure, and
// parameters accessed through memory are missed.
func heuristicScan(code []byte, sel abi.Selector) ([]string, error) {
	program := evm.Disassemble(code)
	start, end, err := bodyRange(program, sel)
	if err != nil {
		return nil, err
	}
	type slot struct {
		off uint64
		typ string
	}
	var slots []slot
	seen := make(map[uint64]bool)
	ins := program.Instructions
	for i := start; i < end; i++ {
		if ins[i].Op != evm.CALLDATALOAD || i == 0 {
			continue
		}
		prev := ins[i-1]
		if !prev.Op.IsPush() {
			continue // computed offset: invisible to the heuristic
		}
		off, ok := prev.Arg.Uint64()
		if !ok || off < 4 || seen[off] {
			continue
		}
		seen[off] = true
		slots = append(slots, slot{off: off, typ: scanMask(ins, i+1, end)})
	}
	if len(slots) == 0 {
		return nil, nil
	}
	// Order by call-data offset.
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && slots[j-1].off > slots[j].off; j-- {
			slots[j-1], slots[j] = slots[j], slots[j-1]
		}
	}
	out := make([]string, len(slots))
	for i, s := range slots {
		out[i] = s.typ
	}
	return out, nil
}

// scanMask types a loaded value by the first masking instruction within a
// small window.
func scanMask(ins []evm.Instruction, from, end int) string {
	limit := from + 4
	if limit > end {
		limit = end
	}
	for i := from; i < limit; i++ {
		switch ins[i].Op {
		case evm.AND:
			if i > from && ins[i-1].Op.IsPush() {
				raw := ins[i-1].ArgBytes
				if m, ok := lowMaskLen(raw); ok {
					if m == 20 {
						return "address"
					}
					return fmt.Sprintf("uint%d", m*8)
				}
				if m, ok := highMaskLen(raw); ok {
					return fmt.Sprintf("bytes%d", m)
				}
			}
		case evm.SIGNEXTEND:
			if i > from && ins[i-1].Op.IsPush() {
				if k, ok := ins[i-1].Arg.Uint64(); ok && k < 31 {
					return fmt.Sprintf("int%d", (k+1)*8)
				}
			}
		case evm.ISZERO:
			if i+1 < limit && ins[i+1].Op == evm.ISZERO {
				return "bool"
			}
		}
	}
	return "uint256"
}

func lowMaskLen(raw []byte) (int, bool) {
	if len(raw) == 0 || len(raw) >= 32 {
		return 0, false
	}
	for _, b := range raw {
		if b != 0xff {
			return 0, false
		}
	}
	return len(raw), true
}

func highMaskLen(raw []byte) (int, bool) {
	if len(raw) != 32 {
		return 0, false
	}
	n := 0
	for n < 32 && raw[n] == 0xff {
		n++
	}
	if n == 0 || n == 32 {
		return 0, false
	}
	for _, b := range raw[n:] {
		if b != 0 {
			return 0, false
		}
	}
	return n, true
}

// bodyRange locates a function's body in the instruction stream from the
// dispatcher's PUSH4 id / PUSH2 target pattern.
func bodyRange(program *evm.Program, sel abi.Selector) (int, int, error) {
	var starts []uint64
	target := uint64(0)
	ins := program.Instructions
	for i := 0; i+2 < len(ins); i++ {
		if ins[i].Op == evm.PUSH4 && ins[i+1].Op == evm.EQ && ins[i+2].Op == evm.PUSH2 {
			dst, _ := ins[i+2].Arg.Uint64()
			starts = append(starts, dst)
			if [4]byte(sel) == [4]byte(ins[i].ArgBytes) {
				target = dst
			}
		}
	}
	if target == 0 {
		return 0, 0, ErrNotFound
	}
	startIdx, ok := program.IndexOf(target)
	if !ok {
		return 0, 0, ErrNotFound
	}
	endIdx := len(ins)
	for _, s := range starts {
		if s <= target {
			continue
		}
		if idx, ok := program.IndexOf(s); ok && idx < endIdx {
			endIdx = idx
		}
	}
	return startIdx, endIdx, nil
}

// --- Gigahorse: database plus decompilation with characteristic failures ---

// Gigahorse models the Gigahorse toolchain: an EFSD lookup backed by
// decompilation heuristics. The paper reports three characteristic failure
// modes on top of Eveem-class type errors: abnormal aborts on ~3% of
// functions, merging consecutive parameters into one parameter of a
// nonexistent width (e.g. uint3228), and inventing extra parameters. The
// model triggers these deterministically from the function id so runs are
// reproducible.
type Gigahorse struct {
	DB *efsd.DB
}

var _ Tool = (*Gigahorse)(nil)

// Name implements Tool.
func (t *Gigahorse) Name() string { return "Gigahorse" }

// RecoverTypes implements Tool.
func (t *Gigahorse) RecoverTypes(code []byte, sel abi.Selector) (string, error) {
	h := selHash(sel)
	if h%29 == 0 { // ~3.4% abnormal aborts
		return "", ErrAborted
	}
	if t.DB != nil {
		if s, ok := t.DB.Lookup(sel); ok {
			// Even database hits are occasionally dropped (the paper notes
			// Gigahorse fails on signatures that EFSD does record).
			if h%23 == 1 {
				return "", ErrNotFound
			}
			return typeListOf(s), nil
		}
	}
	types, err := heuristicScan(code, sel)
	if err != nil {
		return "", err
	}
	switch {
	case len(types) >= 2 && h%7 == 2:
		// Merge all parameters into one nonexistent integer width.
		width := 256*len(types) + int(h%64)
		return fmt.Sprintf("(uint%d)", width), nil
	case h%11 == 3:
		// Invent an extra parameter.
		types = append(types, "uint256")
	}
	return "(" + strings.Join(types, ",") + ")", nil
}

func selHash(sel abi.Selector) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range sel {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
