// Package chain generates a synthetic transaction workload: blocks of
// function invocations against a set of contracts, with a controlled
// fraction of malformed actual arguments including short-address attacks.
//
// It substitutes for the Ethereum mainnet blocks the paper scans in §6.1:
// ParChecker's detection depends only on each transaction's call-data shape
// relative to the callee's signature, which the generator controls exactly.
package chain

import (
	"fmt"
	"math/rand"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// TxKind labels the ground truth of a generated transaction.
type TxKind int

// Transaction kinds.
const (
	// Valid call data, encoded per the specification.
	Valid TxKind = iota + 1
	// ShortAddress is the short-address attack: the address argument's
	// trailing bytes are omitted so the next argument shifts left.
	ShortAddress
	// Truncated call data (generic shortening, not an address attack).
	Truncated
	// DirtyPadding has nonzero bytes in a padding area.
	DirtyPadding
	// BadBool encodes a bool as a value other than 0 or 1.
	BadBool
	// WildOffset points a dynamic argument's offset field out of range.
	WildOffset
)

// String implements fmt.Stringer.
func (k TxKind) String() string {
	switch k {
	case Valid:
		return "valid"
	case ShortAddress:
		return "short-address"
	case Truncated:
		return "truncated"
	case DirtyPadding:
		return "dirty-padding"
	case BadBool:
		return "bad-bool"
	case WildOffset:
		return "wild-offset"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Transaction is one generated invocation.
type Transaction struct {
	// Block is the containing block number.
	Block uint64
	// Contract indexes the workload's contract list.
	Contract int
	// Sig is the invoked function (ground truth; ParChecker does not see it).
	Sig abi.Signature
	// CallData is the wire payload.
	CallData []byte
	// Kind is the ground-truth label.
	Kind TxKind
}

// Workload is a generated transaction stream.
type Workload struct {
	Sigs []abi.Signature
	Txs  []Transaction
}

// Config controls generation.
type Config struct {
	Seed int64
	// Blocks and TxPerBlock size the stream.
	Blocks     int
	TxPerBlock int
	// InvalidRate is the fraction of malformed transactions (the paper
	// measures about 1% on mainnet).
	InvalidRate float64
	// ShortAddressShare is the share of invalid transactions that are
	// short-address attacks (only functions with an address parameter
	// followed by more data qualify).
	ShortAddressShare float64
}

// DefaultConfig mirrors the paper's measurement shape at laptop scale.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		Blocks:            500,
		TxPerBlock:        40,
		InvalidRate:       0.01,
		ShortAddressShare: 0.08,
	}
}

// blockSeed derives the RNG seed for one block: a splitmix64-style mix of
// the workload seed and the block number. Every generator in this package
// (Generate's transaction stream, the Synthetic block source) seeds per
// block through this function, never from a shared stream or the
// package-global math/rand: block b's content depends only on (seed, b),
// so two generators constructed with the same seed emit identical block
// streams regardless of how many blocks each produces or in which order
// blocks are materialized. The continuous scanner's checkpointed resume
// depends on this: a restarted process re-reads exactly the blocks its
// predecessor saw.
func blockSeed(seed int64, block uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(block+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Generate builds a workload over the given signatures. Generation is
// seeded per block (see blockSeed), so the same Config prefix yields the
// same blocks even when cfg.Blocks differs.
func Generate(cfg Config, sigs []abi.Signature) (*Workload, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("chain: no signatures")
	}
	w := &Workload{Sigs: sigs}
	// Identify short-address-attack candidates: an address parameter that
	// is not the last one (so stolen padding shifts a later argument).
	var attackable []int
	for i, s := range sigs {
		for p, t := range s.Inputs {
			if t.Kind == abi.KindAddress && p < len(s.Inputs)-1 && !s.Inputs[p+1].IsDynamic() {
				attackable = append(attackable, i)
				break
			}
		}
	}
	for b := 0; b < cfg.Blocks; b++ {
		r := rand.New(rand.NewSource(blockSeed(cfg.Seed, uint64(b))))
		for k := 0; k < cfg.TxPerBlock; k++ {
			si := r.Intn(len(sigs))
			kind := Valid
			if r.Float64() < cfg.InvalidRate {
				kind = drawInvalidKind(r, cfg, sigs[si])
				if kind == ShortAddress {
					if len(attackable) == 0 {
						kind = drawGenericInvalid(r, sigs[si])
					} else {
						si = attackable[r.Intn(len(attackable))]
					}
				}
			}
			data, err := buildCallData(r, sigs[si], kind)
			if err != nil {
				return nil, fmt.Errorf("chain: block %d tx %d: %w", b, k, err)
			}
			w.Txs = append(w.Txs, Transaction{
				Block:    uint64(b),
				Contract: si,
				Sig:      sigs[si],
				CallData: data,
				Kind:     kind,
			})
		}
	}
	return w, nil
}

func drawInvalidKind(r *rand.Rand, cfg Config, sig abi.Signature) TxKind {
	if r.Float64() < cfg.ShortAddressShare {
		return ShortAddress
	}
	return drawGenericInvalid(r, sig)
}

// drawGenericInvalid picks a non-attack corruption the signature can
// express.
func drawGenericInvalid(r *rand.Rand, sig abi.Signature) TxKind {
	if len(sig.Inputs) == 0 {
		return Valid // nothing to corrupt
	}
	choices := []TxKind{Truncated}
	for _, t := range sig.Inputs {
		switch t.Kind {
		case abi.KindBool:
			choices = append(choices, BadBool, DirtyPadding)
		case abi.KindAddress:
			choices = append(choices, DirtyPadding)
		case abi.KindUint:
			if t.Bits <= 128 {
				choices = append(choices, DirtyPadding)
			}
		case abi.KindFixedBytes:
			if t.Size <= 16 {
				choices = append(choices, DirtyPadding)
			}
		}
		if t.IsDynamic() {
			choices = append(choices, WildOffset)
		}
	}
	return choices[r.Intn(len(choices))]
}

// buildCallData encodes random arguments and applies the labeled corruption.
func buildCallData(r *rand.Rand, sig abi.Signature, kind TxKind) ([]byte, error) {
	vals := make([]abi.Value, len(sig.Inputs))
	for i, t := range sig.Inputs {
		vals[i] = abi.RandomValue(r, t)
	}
	data, err := abi.EncodeCall(sig, vals)
	if err != nil {
		return nil, err
	}
	switch kind {
	case Valid:
		return data, nil
	case ShortAddress:
		return shortAddressAttack(r, sig, vals)
	case Truncated:
		if len(data) <= 5 {
			return data[:len(data)-1], nil
		}
		cut := 1 + r.Intn(min(31, len(data)-5))
		return data[:len(data)-cut], nil
	case DirtyPadding:
		return dirtyPadding(r, sig, data), nil
	case BadBool:
		return badBool(sig, data), nil
	case WildOffset:
		return wildOffset(sig, data), nil
	default:
		return data, nil
	}
}

// shortAddressAttack rebuilds the call data the way the attack does: the
// address argument loses its trailing zero bytes, and the EVM's implicit
// right-padding shifts every later argument (paper §6.1, Fig. 20).
func shortAddressAttack(r *rand.Rand, sig abi.Signature, vals []abi.Value) ([]byte, error) {
	// Force the address to end in zeros so the attack is plausible, and
	// re-encode.
	k := 1 + r.Intn(3) // bytes stolen
	pos := -1
	for i, t := range sig.Inputs {
		if t.Kind == abi.KindAddress && i < len(sig.Inputs)-1 {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("chain: signature %s not attackable", sig.Canonical())
	}
	addr := vals[pos].(evm.Word)
	// Zero the low k bytes of the address.
	mask := evm.LowMask(uint(8 * k)).Not()
	vals[pos] = addr.And(mask)
	data, err := abi.EncodeCall(sig, vals)
	if err != nil {
		return nil, err
	}
	// Remove the k zero bytes right after the address argument: everything
	// after the address slot shifts left, and the total length shrinks.
	slotEnd := 4 + 32*(pos+1)
	out := make([]byte, 0, len(data)-k)
	out = append(out, data[:slotEnd-k]...)
	out = append(out, data[slotEnd:]...)
	return out, nil
}

// headOffsets returns the absolute call-data offset of each parameter's
// head slot (parameters are not all 32 bytes: static arrays and structs
// span multiple slots).
func headOffsets(sig abi.Signature) []int {
	out := make([]int, len(sig.Inputs))
	off := 4
	for i, t := range sig.Inputs {
		out[i] = off
		off += t.HeadSize()
	}
	return out
}

func dirtyPadding(r *rand.Rand, sig abi.Signature, data []byte) []byte {
	out := append([]byte(nil), data...)
	heads := headOffsets(sig)
	// Flip a byte inside the first argument's padding area when one exists;
	// otherwise flip a random head byte.
	for i, t := range sig.Inputs {
		slot := heads[i]
		if slot+32 > len(out) {
			break
		}
		switch t.Kind {
		case abi.KindAddress:
			out[slot+r.Intn(12)] |= 0x40 // address has 12 padding bytes
			return out
		case abi.KindUint:
			if t.Bits <= 128 {
				out[slot] |= 0x40
				return out
			}
		case abi.KindFixedBytes:
			if t.Size <= 16 {
				out[slot+31] |= 0x40 // low-order padding of bytesN
				return out
			}
		case abi.KindBool:
			out[slot] |= 0x40 // any high bit makes the bool malformed
			return out
		}
	}
	if len(out) >= 36 {
		out[4] |= 0x40
	}
	return out
}

func badBool(sig abi.Signature, data []byte) []byte {
	out := append([]byte(nil), data...)
	heads := headOffsets(sig)
	for i, t := range sig.Inputs {
		if t.Kind == abi.KindBool {
			slot := heads[i]
			if slot+32 <= len(out) {
				out[slot+31] = 2
				return out
			}
		}
	}
	return out
}

func wildOffset(sig abi.Signature, data []byte) []byte {
	out := append([]byte(nil), data...)
	heads := headOffsets(sig)
	for i, t := range sig.Inputs {
		if t.IsDynamic() {
			slot := heads[i]
			if slot+32 <= len(out) {
				out[slot+1] = 0xff // offset far out of range
				return out
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
