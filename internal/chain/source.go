package chain

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sigrec/internal/corpus"
	"sigrec/internal/evm"
)

// DeployKind labels the ground truth of a generated deployment. The
// scanner never reads it: proxy resolution works from Code alone, and
// tests use Kind only to check the scanner's conclusions.
type DeployKind int

// Deployment kinds.
const (
	// DeployDirect carries real implementation runtime bytecode.
	DeployDirect DeployKind = iota + 1
	// DeployEIP1167 is the canonical 45-byte minimal proxy.
	DeployEIP1167
	// DeployEIP1167Vanity is the push-padded variant: the implementation
	// address has leading zero bytes, so the proxy embeds it with a
	// shorter PUSH and the runtime shrinks below 45 bytes.
	DeployEIP1167Vanity
	// DeployEIP1167Zage is the 0age 44-byte minimal-proxy dialect.
	DeployEIP1167Zage
	// DeployEIP1167Push0 is the Solady-style PUSH0 dialect.
	DeployEIP1167Push0
	// DeployFacade is a hand-rolled DELEGATECALL forwarder that no byte
	// pattern matches; resolving it requires executing the bytecode.
	DeployFacade
)

// String implements fmt.Stringer.
func (k DeployKind) String() string {
	switch k {
	case DeployDirect:
		return "direct"
	case DeployEIP1167:
		return "eip1167"
	case DeployEIP1167Vanity:
		return "eip1167-vanity"
	case DeployEIP1167Zage:
		return "eip1167-0age"
	case DeployEIP1167Push0:
		return "eip1167-push0"
	case DeployFacade:
		return "facade"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsProxy reports whether the deployment forwards to an implementation.
func (k DeployKind) IsProxy() bool { return k != DeployDirect && k != 0 }

// Deployment is one contract-creation transaction in a block.
type Deployment struct {
	// Block and Tx locate the deployment on chain.
	Block uint64
	Tx    int
	// Address is the created contract's address (low 20 bytes of the word).
	Address evm.Word
	// Code is the deployed runtime bytecode.
	Code []byte

	// Kind, Implementation, and Template are ground truth for tests and
	// reconciliation; the scanner must not consult them.
	Kind DeployKind
	// Implementation is the forwarding target's address (zero for direct
	// deployments).
	Implementation evm.Word
	// Template indexes the source's template list for direct deployments;
	// -1 for proxies.
	Template int
}

// Block is one chain block's contract-deployment view. Blocks carry only
// deployments: ordinary value transfers and calls are irrelevant to
// signature recovery and are elided by every Source.
type Block struct {
	Number      uint64
	Deployments []Deployment
}

// Source abstracts the chain a scanner follows. Implementations must be
// safe for concurrent use.
type Source interface {
	// Head returns the newest block number available.
	Head(ctx context.Context) (uint64, error)
	// BlockAt returns block n. It is an error to ask beyond Head.
	BlockAt(ctx context.Context, n uint64) (*Block, error)
	// CodeAt returns the runtime bytecode deployed at addr, with ok=false
	// (and no error) when no contract lives there.
	CodeAt(ctx context.Context, addr evm.Word) ([]byte, bool, error)
}

// SourceConfig controls a Synthetic source.
type SourceConfig struct {
	Seed int64
	// Blocks is the chain length; block numbers run [0, Blocks).
	Blocks uint64
	// DeploysPerBlock is the number of contract creations per block.
	DeploysPerBlock int
	// ProxyRate is the fraction of deployments that forward to an earlier
	// implementation instead of carrying their own runtime.
	ProxyRate float64
	// FacadeShare is the share of proxies that are hand-rolled
	// DELEGATECALL facades rather than EIP-1167 minimal proxies.
	FacadeShare float64
	// Templates are the implementation runtime bytecodes direct
	// deployments draw from (see SyntheticTemplates).
	Templates [][]byte
	// HeadStart is the head block number at construction. With
	// HeadInterval zero the head stays at Blocks-1 regardless.
	HeadStart uint64
	// HeadInterval, when positive, simulates live chain growth: the head
	// starts at HeadStart and advances one block per interval until it
	// reaches Blocks-1.
	HeadInterval time.Duration
}

// Synthetic is a deterministic in-process Source. Block b's content is a
// pure function of (Seed, b) — see blockSeed — so any two Synthetics with
// the same config agree byte-for-byte on every block, which is what lets
// a killed scanner's successor re-read exactly the chain its predecessor
// saw. Deployment addresses encode their (block, tx) coordinates, so
// CodeAt regenerates only the one block it needs.
type Synthetic struct {
	cfg   SourceConfig
	start time.Time

	mu     sync.Mutex
	blocks map[uint64]*Block
}

// NewSynthetic validates cfg and builds the source.
func NewSynthetic(cfg SourceConfig) (*Synthetic, error) {
	if cfg.Blocks == 0 {
		return nil, fmt.Errorf("chain: source needs at least one block")
	}
	if cfg.DeploysPerBlock <= 0 {
		return nil, fmt.Errorf("chain: DeploysPerBlock must be positive")
	}
	if len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("chain: source needs implementation templates")
	}
	if cfg.ProxyRate < 0 || cfg.ProxyRate > 1 || cfg.FacadeShare < 0 || cfg.FacadeShare > 1 {
		return nil, fmt.Errorf("chain: rates must be in [0,1]")
	}
	if cfg.HeadStart >= cfg.Blocks {
		cfg.HeadStart = cfg.Blocks - 1
	}
	return &Synthetic{
		cfg:    cfg,
		start:  time.Now(),
		blocks: make(map[uint64]*Block),
	}, nil
}

// SyntheticTemplates generates n implementation contracts for a Synthetic
// source. Both the scanner binary and its tests call this with the same
// seed so they agree on the chain's ground-truth function sets.
func SyntheticTemplates(seed int64, n int) ([]corpus.DeployedContract, error) {
	return corpus.GenerateDeployed(corpus.DeployedConfig{
		Seed:      seed,
		Contracts: n,
		MinFuncs:  2,
		MaxFuncs:  5,
		MaxParams: 3,
	})
}

// TemplateCodes projects the runtime bytecodes out of generated templates.
func TemplateCodes(tmpls []corpus.DeployedContract) [][]byte {
	out := make([][]byte, len(tmpls))
	for i := range tmpls {
		out[i] = tmpls[i].Code
	}
	return out
}

// Head implements Source.
func (s *Synthetic) Head(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	last := s.cfg.Blocks - 1
	if s.cfg.HeadInterval <= 0 {
		return last, nil
	}
	grown := uint64(time.Since(s.start) / s.cfg.HeadInterval)
	h := s.cfg.HeadStart + grown
	if h > last {
		h = last
	}
	return h, nil
}

// BlockAt implements Source.
func (s *Synthetic) BlockAt(ctx context.Context, n uint64) (*Block, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	head, err := s.Head(ctx)
	if err != nil {
		return nil, err
	}
	if n > head {
		return nil, fmt.Errorf("chain: block %d beyond head %d", n, head)
	}
	return s.block(n), nil
}

func (s *Synthetic) block(n uint64) *Block {
	s.mu.Lock()
	if b, ok := s.blocks[n]; ok {
		s.mu.Unlock()
		return b
	}
	s.mu.Unlock()
	b := s.build(n)
	s.mu.Lock()
	if len(s.blocks) >= 1024 { // bound memory during long backfills
		for k := range s.blocks {
			delete(s.blocks, k)
			break
		}
	}
	s.blocks[n] = b
	s.mu.Unlock()
	return b
}

// CodeAt implements Source. Addresses minted by this source are
// invertible — they encode (block, tx) — so resolution regenerates just
// the target deployment's block.
func (s *Synthetic) CodeAt(ctx context.Context, addr evm.Word) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	block, tx, ok := decodeAddr(addr)
	if !ok || block >= s.cfg.Blocks || tx >= s.cfg.DeploysPerBlock {
		return nil, false, nil
	}
	b := s.block(block)
	if addr != b.Deployments[tx].Address {
		return nil, false, nil
	}
	return b.Deployments[tx].Code, true, nil
}

// build materializes block n from scratch; it is deterministic in
// (cfg.Seed, n).
func (s *Synthetic) build(n uint64) *Block {
	r := rand.New(rand.NewSource(blockSeed(s.cfg.Seed, n)))
	b := &Block{Number: n}
	for t := 0; t < s.cfg.DeploysPerBlock; t++ {
		d := Deployment{
			Block:    n,
			Tx:       t,
			Address:  addrOf(n, t),
			Template: -1,
		}
		// Tx 0 of every block is always a direct deployment, so proxies —
		// which always target (earlier block, tx 0) — resolve without
		// chasing proxy chains.
		if t == 0 || n == 0 || r.Float64() >= s.cfg.ProxyRate {
			d.Kind = DeployDirect
			d.Template = r.Intn(len(s.cfg.Templates))
			d.Code = s.cfg.Templates[d.Template]
		} else {
			target := uint64(r.Int63n(int64(n)))
			d.Implementation = addrOf(target, 0)
			impl := addrBytes(d.Implementation)
			if r.Float64() < s.cfg.FacadeShare {
				d.Kind = DeployFacade
				d.Code = buildFacade(d.Implementation)
			} else {
				switch r.Intn(3) {
				case 0:
					d.Code = BuildMinimalProxy(impl)
					if len(d.Code) < 45 {
						d.Kind = DeployEIP1167Vanity
					} else {
						d.Kind = DeployEIP1167
					}
				case 1:
					d.Kind = DeployEIP1167Zage
					d.Code = BuildZageProxy(impl)
				default:
					d.Kind = DeployEIP1167Push0
					d.Code = BuildPush0Proxy(impl)
				}
			}
		}
		b.Deployments = append(b.Deployments, d)
	}
	return b
}

// Address scheme: deterministic, invertible, and disjoint between the
// two families. Tx-0 deployments of every third block get a vanity
// address (eight leading zero bytes) so the chain naturally contains
// push-padded minimal proxies.
//
//	normal: C0 DE 5C A7 | 0 0 0 0 | block (8B BE) | tx (4B BE)
//	vanity: 0×8 | EC | block (7B BE) | tx (4B BE)
func addrOf(block uint64, tx int) evm.Word {
	var a [20]byte
	if tx == 0 && block%3 == 0 {
		a[8] = 0xEC
		var blk [8]byte
		binary.BigEndian.PutUint64(blk[:], block)
		copy(a[9:16], blk[1:])
		binary.BigEndian.PutUint32(a[16:], uint32(tx))
	} else {
		a[0], a[1], a[2], a[3] = 0xC0, 0xDE, 0x5C, 0xA7
		binary.BigEndian.PutUint64(a[8:16], block)
		binary.BigEndian.PutUint32(a[16:], uint32(tx))
	}
	return evm.WordFromBytes(a[:])
}

// addrBytes returns the low 20 bytes of an address word.
func addrBytes(w evm.Word) [20]byte {
	full := w.Bytes32()
	var a [20]byte
	copy(a[:], full[12:])
	return a
}

// decodeAddr inverts addrOf.
func decodeAddr(w evm.Word) (block uint64, tx int, ok bool) {
	full := w.Bytes32()
	for _, b := range full[:12] { // not an address-sized word
		if b != 0 {
			return 0, 0, false
		}
	}
	a := full[12:]
	switch {
	case a[0] == 0xC0 && a[1] == 0xDE && a[2] == 0x5C && a[3] == 0xA7:
		block = binary.BigEndian.Uint64(a[8:16])
	case a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0 &&
		a[4] == 0 && a[5] == 0 && a[6] == 0 && a[7] == 0 && a[8] == 0xEC:
		var blk [8]byte
		copy(blk[1:], a[9:16])
		block = binary.BigEndian.Uint64(blk[:])
	default:
		return 0, 0, false
	}
	return block, int(binary.BigEndian.Uint32(a[16:20])), true
}

// BuildMinimalProxy assembles the EIP-1167 minimal-proxy runtime for the
// given implementation address. Leading zero bytes of the address are
// push-padded away (the vanity variant): the PUSH shrinks, the total
// length drops below 45 bytes, and the JUMPDEST offset in the trailing
// PUSH1 shifts down to match.
func BuildMinimalProxy(impl [20]byte) []byte {
	stripped := impl[:]
	for len(stripped) > 1 && stripped[0] == 0 {
		stripped = stripped[1:]
	}
	n := len(stripped)
	out := make([]byte, 0, 25+n)
	out = append(out, 0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d)
	out = append(out, byte(0x60+n-1)) // PUSHn
	out = append(out, stripped...)
	out = append(out, 0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91)
	out = append(out, 0x60, byte(0x2b-(20-n)), 0x57, 0xfd, 0x5b, 0xf3)
	return out
}

// BuildZageProxy assembles the 0age 44-byte minimal-proxy dialect.
func BuildZageProxy(impl [20]byte) []byte {
	out := make([]byte, 0, 44)
	out = append(out, 0x3d, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x3d, 0x37, 0x36, 0x3d, 0x73)
	out = append(out, impl[:]...)
	out = append(out, 0x5a, 0xf4, 0x3d, 0x3d, 0x93, 0x80, 0x3e, 0x60, 0x2a, 0x57, 0xfd, 0x5b, 0xf3)
	return out
}

// BuildPush0Proxy assembles the Solady-style PUSH0 minimal-proxy dialect.
func BuildPush0Proxy(impl [20]byte) []byte {
	out := make([]byte, 0, 45)
	out = append(out, 0x36, 0x5f, 0x5f, 0x37, 0x5f, 0x5f, 0x36, 0x5f, 0x73)
	out = append(out, impl[:]...)
	out = append(out, 0x5a, 0xf4, 0x3d, 0x5f, 0x5f, 0x3e, 0x60, 0x29, 0x57,
		0x3d, 0x5f, 0xfd, 0x5b, 0x3d, 0x5f, 0xf3)
	return out
}

// buildFacade assembles a non-minimal DELEGATECALL forwarder: same
// observable behavior as a minimal proxy, but laid out by our assembler
// with labeled jumps, so no byte pattern can recognize it — the scanner
// has to run it to find the target.
func buildFacade(impl evm.Word) []byte {
	a := evm.NewAssembler()
	ok := a.NewLabel()
	// calldatacopy(0, 0, calldatasize())
	a.Op(evm.CALLDATASIZE).Push(0).Push(0).Op(evm.CALLDATACOPY)
	// delegatecall(gas(), impl, 0, calldatasize(), 0, 0)
	a.Push(0).Push(0).Op(evm.CALLDATASIZE).Push(0)
	a.PushWord(impl).Op(evm.GAS).Op(evm.DELEGATECALL)
	// returndatacopy(0, 0, returndatasize()); branch on success
	a.Op(evm.RETURNDATASIZE).Push(0).Push(0).Op(evm.RETURNDATACOPY)
	a.JumpI(ok)
	a.Op(evm.RETURNDATASIZE).Push(0).Op(evm.REVERT)
	a.Bind(ok)
	a.Op(evm.RETURNDATASIZE).Push(0).Op(evm.RETURN)
	code, err := a.Assemble()
	if err != nil {
		// The facade layout is fixed at compile time; assembly cannot fail
		// on it short of a bug in this file.
		panic(fmt.Sprintf("chain: facade assembly: %v", err))
	}
	return code
}
