package chain

import (
	"bytes"
	"context"
	"testing"
	"time"

	"sigrec/internal/evm"
)

func testSourceConfig(t *testing.T, seed int64, blocks uint64) SourceConfig {
	t.Helper()
	tmpls, err := SyntheticTemplates(seed, 4)
	if err != nil {
		t.Fatalf("templates: %v", err)
	}
	return SourceConfig{
		Seed:            seed,
		Blocks:          blocks,
		DeploysPerBlock: 6,
		ProxyRate:       0.5,
		FacadeShare:     0.3,
		Templates:       TemplateCodes(tmpls),
	}
}

// Two sources with the same seed must emit identical block streams, even
// when their configured chain lengths differ — the checkpointed-resume
// guarantee rests on this.
func TestSyntheticDeterministic(t *testing.T) {
	ctx := context.Background()
	a, err := NewSynthetic(testSourceConfig(t, 11, 40))
	if err != nil {
		t.Fatal(err)
	}
	longer := testSourceConfig(t, 11, 80)
	b, err := NewSynthetic(longer)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(0); n < 40; n++ {
		ba, err := a.BlockAt(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.BlockAt(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(ba.Deployments) != len(bb.Deployments) {
			t.Fatalf("block %d: deployment count %d vs %d", n, len(ba.Deployments), len(bb.Deployments))
		}
		for i := range ba.Deployments {
			da, db := ba.Deployments[i], bb.Deployments[i]
			if da.Address != db.Address || da.Kind != db.Kind ||
				da.Implementation != db.Implementation || !bytes.Equal(da.Code, db.Code) {
				t.Fatalf("block %d tx %d: deployments differ", n, i)
			}
		}
	}
}

// Generate is likewise seeded per block: the same seed with a longer
// Blocks count must reproduce the shorter run as an exact prefix.
func TestGeneratePerBlockSeeding(t *testing.T) {
	sigs := testSigs(t)
	short := DefaultConfig(7)
	short.Blocks, short.TxPerBlock = 10, 8
	long := short
	long.Blocks = 25
	ws, err := Generate(short, sigs)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := Generate(long, sigs)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Txs) <= len(ws.Txs) {
		t.Fatalf("long run not longer: %d vs %d", len(wl.Txs), len(ws.Txs))
	}
	for i, tx := range ws.Txs {
		other := wl.Txs[i]
		if tx.Block != other.Block || tx.Contract != other.Contract ||
			tx.Kind != other.Kind || !bytes.Equal(tx.CallData, other.CallData) {
			t.Fatalf("tx %d differs between runs of different lengths", i)
		}
	}
}

// Every address the source mints must decode back to its coordinates and
// resolve through CodeAt to the deployment's bytecode.
func TestSyntheticCodeAtInversion(t *testing.T) {
	ctx := context.Background()
	s, err := NewSynthetic(testSourceConfig(t, 3, 30))
	if err != nil {
		t.Fatal(err)
	}
	sawVanity := false
	for n := uint64(0); n < 30; n++ {
		b, err := s.BlockAt(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range b.Deployments {
			code, ok, err := s.CodeAt(ctx, d.Address)
			if err != nil || !ok {
				t.Fatalf("block %d tx %d: CodeAt ok=%v err=%v", n, d.Tx, ok, err)
			}
			if !bytes.Equal(code, d.Code) {
				t.Fatalf("block %d tx %d: CodeAt returned wrong code", n, d.Tx)
			}
			full := d.Address.Bytes32()
			if d.Tx == 0 && n%3 == 0 {
				for _, bt := range full[12:20] {
					if bt != 0 {
						t.Fatalf("block %d: vanity address has nonzero high bytes: %x", n, full[12:])
					}
				}
				sawVanity = true
			}
			if d.Kind.IsProxy() {
				impl, ok, err := s.CodeAt(ctx, d.Implementation)
				if err != nil || !ok {
					t.Fatalf("block %d tx %d: implementation unresolvable", n, d.Tx)
				}
				if len(impl) == 0 {
					t.Fatalf("block %d tx %d: empty implementation", n, d.Tx)
				}
			} else if d.Template < 0 {
				t.Fatalf("block %d tx %d: direct deployment without template index", n, d.Tx)
			}
		}
	}
	if !sawVanity {
		t.Fatal("no vanity addresses minted in 30 blocks")
	}
	// Unknown addresses miss without error.
	if _, ok, err := s.CodeAt(ctx, evm.WordFromUint64(0xdead)); ok || err != nil {
		t.Fatalf("unknown address: ok=%v err=%v", ok, err)
	}
}

// The proxy mix must actually cover all flavors at the default rates.
func TestSyntheticProxyMix(t *testing.T) {
	ctx := context.Background()
	s, err := NewSynthetic(testSourceConfig(t, 5, 60))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[DeployKind]int{}
	for n := uint64(0); n < 60; n++ {
		b, err := s.BlockAt(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range b.Deployments {
			seen[d.Kind]++
			if d.Kind == DeployEIP1167 && len(d.Code) != 45 {
				t.Fatalf("canonical proxy has %d bytes", len(d.Code))
			}
			if d.Kind == DeployEIP1167Vanity && len(d.Code) >= 45 {
				t.Fatalf("vanity proxy not shorter than canonical: %d bytes", len(d.Code))
			}
			if d.Kind == DeployEIP1167Zage && len(d.Code) != 44 {
				t.Fatalf("0age proxy has %d bytes", len(d.Code))
			}
		}
	}
	for _, k := range []DeployKind{
		DeployDirect, DeployEIP1167, DeployEIP1167Vanity,
		DeployEIP1167Zage, DeployEIP1167Push0, DeployFacade,
	} {
		if seen[k] == 0 {
			t.Fatalf("kind %v never generated (mix: %v)", k, seen)
		}
	}
}

// A live-head source advances over time and never serves beyond its head.
func TestSyntheticLiveHead(t *testing.T) {
	ctx := context.Background()
	cfg := testSourceConfig(t, 9, 50)
	cfg.HeadStart = 2
	cfg.HeadInterval = 5 * time.Millisecond
	s, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := s.Head(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h0 > 10 {
		t.Fatalf("head started too far ahead: %d", h0)
	}
	if _, err := s.BlockAt(ctx, 49); err == nil {
		t.Fatal("block beyond head served")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		h, err := s.Head(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h > h0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("head never advanced")
		}
		time.Sleep(time.Millisecond)
	}
}
