package chain

import (
	"testing"

	"sigrec/internal/abi"
)

func testSigs(t *testing.T) []abi.Signature {
	t.Helper()
	var sigs []abi.Signature
	for _, s := range []string{
		"transfer(address,uint256)",
		"mint(uint64)",
		"flag(bool)",
		"blob(bytes)",
	} {
		sig, err := abi.ParseSignature(s)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sig)
	}
	return sigs
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{Seed: 1, Blocks: 10, TxPerBlock: 20, InvalidRate: 0.2, ShortAddressShare: 0.3}
	w, err := Generate(cfg, testSigs(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Txs) != 200 {
		t.Fatalf("tx count = %d", len(w.Txs))
	}
	counts := make(map[TxKind]int)
	for _, tx := range w.Txs {
		counts[tx.Kind]++
		if len(tx.CallData) < 4 {
			t.Errorf("tx with %d-byte call data", len(tx.CallData))
		}
	}
	if counts[Valid] < 120 {
		t.Errorf("too few valid txs: %d", counts[Valid])
	}
	if counts[ShortAddress] == 0 {
		t.Error("no short-address attacks generated")
	}
	if counts[Truncated]+counts[DirtyPadding]+counts[BadBool]+counts[WildOffset] == 0 {
		t.Error("no generic corruptions generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Blocks, cfg.TxPerBlock = 5, 10
	w1, err := Generate(cfg, testSigs(t))
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := Generate(cfg, testSigs(t))
	for i := range w1.Txs {
		if string(w1.Txs[i].CallData) != string(w2.Txs[i].CallData) {
			t.Fatalf("tx %d differs between identical seeds", i)
		}
	}
}

// TestLabelsMatchStrictDecoding verifies every label against the decoder:
// valid transactions decode, corrupted ones do not.
func TestLabelsMatchStrictDecoding(t *testing.T) {
	cfg := Config{Seed: 2, Blocks: 30, TxPerBlock: 20, InvalidRate: 0.3, ShortAddressShare: 0.2}
	w, err := Generate(cfg, testSigs(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, tx := range w.Txs {
		_, err := abi.Decode(tx.Sig.Inputs, tx.CallData[4:])
		switch tx.Kind {
		case Valid:
			if err != nil {
				t.Errorf("tx %d labeled valid fails decoding: %v (%s)", i, err, tx.Sig.Canonical())
			}
		default:
			if err == nil {
				t.Errorf("tx %d labeled %s decodes cleanly (%s)", i, tx.Kind, tx.Sig.Canonical())
			}
		}
	}
}

func TestShortAddressShrinksData(t *testing.T) {
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	cfg := Config{Seed: 3, Blocks: 50, TxPerBlock: 10, InvalidRate: 1.0, ShortAddressShare: 1.0}
	w, err := Generate(cfg, []abi.Signature{sig})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, tx := range w.Txs {
		if tx.Kind != ShortAddress {
			continue
		}
		found++
		if len(tx.CallData) >= 4+64 {
			t.Errorf("short-address tx has full-length data (%d)", len(tx.CallData))
		}
	}
	if found == 0 {
		t.Fatal("no attacks generated at rate 1.0")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(DefaultConfig(1), nil); err == nil {
		t.Error("no signatures must fail")
	}
}
