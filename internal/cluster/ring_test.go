package cluster

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"sigrec/internal/keccak"
)

// randomKeys generates n keccak keys the way production keys arise:
// keccak256 over (pseudo-random) bytecode bytes.
func randomKeys(seed int64, n int) [][32]byte {
	r := rand.New(rand.NewSource(seed))
	keys := make([][32]byte, n)
	buf := make([]byte, 64)
	for i := range keys {
		r.Read(buf)
		keys[i] = keccak.Sum256(buf)
	}
	return keys
}

func owners(t *testing.T, r *Ring, keys [][32]byte) []string {
	t.Helper()
	out := make([]string, len(keys))
	for i, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("empty ring")
		}
		out[i] = o
	}
	return out
}

// TestRingRebalanceOnAdd is the rebalancing property test: growing the
// cluster from N to N+1 shards must (a) move at most 1/(N+1) + eps of the
// keys and (b) never change the owner of a key the new shard did not
// claim — consistent hashing's whole point, and what keeps cache hit
// rates intact during scale-out.
func TestRingRebalanceOnAdd(t *testing.T) {
	const nKeys = 20000
	keys := randomKeys(1, nKeys)
	for n := 2; n <= 6; n++ {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("shard%d", i))
		}
		before := owners(t, r, keys)
		newShard := fmt.Sprintf("shard%d", n)
		r.Add(newShard)
		after := owners(t, r, keys)

		moved := 0
		for i := range keys {
			if before[i] != after[i] {
				moved++
				if after[i] != newShard {
					t.Fatalf("N=%d: key %d moved %s -> %s, not to the new shard",
						n, i, before[i], after[i])
				}
			}
		}
		frac := float64(moved) / nKeys
		limit := 1.0/float64(n+1) + 0.10
		if frac > limit {
			t.Errorf("N=%d: add moved %.3f of keys, want <= %.3f", n, frac, limit)
		}
		if moved == 0 {
			t.Errorf("N=%d: new shard claimed no keys", n)
		}
	}
}

// TestRingRebalanceOnRemove: shrinking the cluster moves exactly the dead
// shard's keys — survivors keep every key they owned (the exact property;
// no epsilon needed), and the orphaned slice is about 1/N.
func TestRingRebalanceOnRemove(t *testing.T) {
	const nKeys = 20000
	keys := randomKeys(2, nKeys)
	for n := 3; n <= 6; n++ {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("shard%d", i))
		}
		before := owners(t, r, keys)
		victim := "shard1"
		r.Remove(victim)
		after := owners(t, r, keys)

		moved := 0
		for i := range keys {
			if before[i] != after[i] {
				if before[i] != victim {
					t.Fatalf("N=%d: key %d owned by survivor %s moved to %s",
						n, i, before[i], after[i])
				}
				moved++
			} else if before[i] == victim {
				t.Fatalf("N=%d: key %d still owned by removed shard", n, i)
			}
		}
		frac := float64(moved) / nKeys
		limit := 1.0/float64(n) + 0.10
		if frac > limit {
			t.Errorf("N=%d: remove moved %.3f of keys, want <= %.3f", n, frac, limit)
		}
	}
}

// TestRingBalance: with virtual nodes, ownership across shards stays
// within a reasonable band of uniform.
func TestRingBalance(t *testing.T) {
	const nKeys = 30000
	keys := randomKeys(3, nKeys)
	r := NewRing(0)
	shards := []string{"a", "b", "c", "d", "e"}
	for _, s := range shards {
		r.Add(s)
	}
	counts := map[string]int{}
	for _, o := range owners(t, r, keys) {
		counts[o]++
	}
	mean := float64(nKeys) / float64(len(shards))
	for _, s := range shards {
		ratio := float64(counts[s]) / mean
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("shard %s owns %.2fx the mean (%d keys)", s, ratio, counts[s])
		}
	}
}

// TestRingSequence: the fallback sequence starts at the owner, visits
// every shard exactly once, and is stable for a given key.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	for _, s := range []string{"a", "b", "c"} {
		r.Add(s)
	}
	key := keccak.Sum256([]byte("bytecode"))
	seq := r.Sequence(key)
	if len(seq) != 3 {
		t.Fatalf("sequence %v, want all 3 shards", seq)
	}
	owner, _ := r.Owner(key)
	if seq[0] != owner {
		t.Errorf("sequence starts at %s, owner is %s", seq[0], owner)
	}
	seen := map[string]bool{}
	for _, s := range seq {
		if seen[s] {
			t.Fatalf("sequence %v repeats %s", seq, s)
		}
		seen[s] = true
	}
}

// TestRingPickBounded: an overloaded owner is skipped for its successor;
// uniform load degrades to plain ownership; a fully saturated ring still
// answers with the owner.
func TestRingPickBounded(t *testing.T) {
	r := NewRing(0)
	for _, s := range []string{"a", "b", "c"} {
		r.Add(s)
	}
	key := keccak.Sum256([]byte("hot contract"))
	seq := r.Sequence(key)
	owner, succ := seq[0], seq[1]

	loads := map[string]int{owner: 90, succ: 1, seq[2]: 1}
	got, ok := r.PickBounded(key, func(s string) int { return loads[s] }, 1.25)
	if !ok || got != succ {
		t.Errorf("overloaded owner: picked %s, want successor %s", got, succ)
	}

	got, _ = r.PickBounded(key, func(s string) int { return 5 }, 1.25)
	if got != owner {
		t.Errorf("uniform load: picked %s, want owner %s", got, owner)
	}

	got, _ = r.PickBounded(key, func(s string) int { return 1 << 20 }, 1.25)
	if got != owner {
		t.Errorf("saturated ring: picked %s, want owner %s", got, owner)
	}

	got, _ = r.PickBounded(key, nil, 0)
	if got != owner {
		t.Errorf("factor<=1: picked %s, want owner %s", got, owner)
	}
}

// TestKeyPosMatchesOwnerHash pins the key-to-circle mapping: the first 8
// bytes big-endian, so external tooling can predict placement.
func TestKeyPosMatchesOwnerHash(t *testing.T) {
	key := keccak.Sum256([]byte("x"))
	if keyPos(key) != binary.BigEndian.Uint64(key[:8]) {
		t.Fatal("keyPos changed its mapping")
	}
}
