package cluster

import (
	"sync"
	"time"
)

// Breaker states, exposed as the cluster_shard_breaker_state gauge
// (0 closed, 1 open, 2 half-open).
const (
	BreakerClosed int64 = iota
	BreakerOpen
	BreakerHalfOpen
)

// Breaker is a per-shard circuit breaker: Threshold consecutive failures
// open it, and after Cooldown a single half-open probe is admitted — its
// outcome closes the breaker again or re-opens it for another cooldown.
// While open, the router skips the shard entirely (its requests go to the
// ring successor) instead of stacking timeouts on a dead backend.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	state    int64
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a closed breaker (threshold <= 0 selects 3,
// cooldown <= 0 selects one second).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may be sent. Open flips to half-open
// once the cooldown elapses, admitting exactly one probe at a time; the
// caller must report the probe's outcome via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Abandon reports that an admitted request ended with no verdict on the
// shard (the router cancelled it: hedge race lost, client gone). If it
// was the half-open probe, the probe slot is released so the next request
// can probe — otherwise an abandoned probe would wedge the breaker
// half-open with probing latched, and the shard would never be retried.
func (b *Breaker) Abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Success reports a completed request: resets the failure streak and
// closes the breaker from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed request: a half-open probe failure re-opens
// immediately, a closed-state streak of Threshold opens.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.open()
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.open()
	}
}

// open transitions to open and stamps the cooldown start. Caller holds mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
}

// State returns the current state constant.
func (b *Breaker) State() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
