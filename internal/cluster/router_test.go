package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/keccak"
	"sigrec/internal/server"
)

// stubShard is a fake sigrecd: /healthz, /metrics, and a pluggable
// /v1/recover. hits counts recover calls.
type stubShard struct {
	srv  *httptest.Server
	hits atomic.Int64
}

func newStubShard(t *testing.T, recover http.HandlerFunc) *stubShard {
	t.Helper()
	s := &stubShard{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `sigrec_recover_latency_microseconds{quantile="0.95"} 100`)
	})
	mux.HandleFunc("POST /v1/recover", func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		recover(w, r)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// okRecover answers like a healthy shard: echoes the attempt id and
// returns an empty recovery.
func okRecover(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Request-Id", r.Header.Get("X-Request-Id"))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"functions":[]}`)
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func counterValue(rt *Router, name string) uint64 {
	return rt.Registry().Snapshot().Counters[name]
}

// A health-poll rising edge (shard back up after being down) must close
// an open breaker immediately: a restarted shard rejoins within one poll
// interval instead of sitting out the rest of its breaker cooldown.
func TestHealthRecoveryClosesBreaker(t *testing.T) {
	stub := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{
		Shards:          []ShardAddr{{ID: "s1", URL: stub.srv.URL}},
		BreakerFailures: 1,
		BreakerCooldown: time.Hour,
		HealthInterval:  time.Hour, // poll driven by hand below
	})
	sh := rt.shards["s1"]
	sh.healthy.Store(false)
	sh.breaker.Failure() // threshold 1: open, with an hour of cooldown left
	if sh.breaker.State() != BreakerOpen {
		t.Fatalf("breaker state = %d, want open", sh.breaker.State())
	}

	sh.poll(t.Context(), rt.client, rt.m)
	if !sh.healthy.Load() {
		t.Fatal("shard not healthy after successful poll")
	}
	if got := sh.breaker.State(); got != BreakerClosed {
		t.Fatalf("breaker state after health recovery = %d, want closed", got)
	}

	// A healthy poll with no edge must not touch the breaker.
	sh.breaker.Failure()
	sh.poll(t.Context(), rt.client, rt.m)
	if got := sh.breaker.State(); got != BreakerOpen {
		t.Fatalf("steady healthy poll changed breaker state to %d", got)
	}
}

// testCode is valid runtime bytecode input for the routing layer (the
// stubs never actually recover it).
const testCode = "0x60806040"

func postRecover(t *testing.T, h http.Handler, body, requestID string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/recover", strings.NewReader(body))
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRouterRoutesToOwner(t *testing.T) {
	a := newStubShard(t, okRecover)
	b := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{Shards: []ShardAddr{
		{ID: "s1", URL: a.srv.URL}, {ID: "s2", URL: b.srv.URL},
	}})

	code, err := server.ParseBytecode([]byte(testCode))
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(0)
	ring.Add("s1")
	ring.Add("s2")
	owner, _ := ring.Owner(keccak.Sum256(code))

	rec := postRecover(t, rt.Handler(), testCode, "client-1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Sigrec-Shard"); got != owner {
		t.Fatalf("served by %q, ring owner is %q", got, owner)
	}
	// The echoed id is the forwarded attempt id: base plus a unique
	// attempt counter, joinable against the shard's event log.
	if id := rec.Header().Get("X-Request-Id"); !strings.HasPrefix(id, "client-1.") {
		t.Fatalf("X-Request-Id = %q, want client-1.<attempt>", id)
	}
	ownerStub, otherStub := a, b
	if owner == "s2" {
		ownerStub, otherStub = b, a
	}
	if ownerStub.hits.Load() != 1 || otherStub.hits.Load() != 0 {
		t.Fatalf("hits owner=%d other=%d, want 1/0", ownerStub.hits.Load(), otherStub.hits.Load())
	}
}

func TestRouterRejectsBadInput(t *testing.T) {
	a := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{Shards: []ShardAddr{{ID: "s1", URL: a.srv.URL}}})

	for _, body := range []string{"", "zzzz", `{"bytecode":""}`} {
		rec := postRecover(t, rt.Handler(), body, "")
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, rec.Code)
		}
	}
	if a.hits.Load() != 0 {
		t.Fatalf("bad input reached a shard (%d hits)", a.hits.Load())
	}
	if got := counterValue(rt, "cluster_router_bad_input_total"); got != 3 {
		t.Fatalf("bad_input_total = %d, want 3", got)
	}
}

func TestRouterRetriesOnRingSuccessor(t *testing.T) {
	// Every shard 503s except one; the router must walk the ring sequence
	// to the healthy successor and still answer 200.
	down := newStubShard(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	})
	up := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{
		Shards: []ShardAddr{{ID: "s1", URL: down.srv.URL}, {ID: "s2", URL: up.srv.URL}},
	})

	rec := postRecover(t, rt.Handler(), testCode, "r-1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if up.hits.Load() != 1 {
		t.Fatalf("healthy shard hits = %d, want 1", up.hits.Load())
	}
	// Whichever shard owns the key, the down shard is either the first
	// attempt (then a retry happened) or never needed.
	if down.hits.Load() > 0 && counterValue(rt, "cluster_router_retries_total") == 0 {
		t.Fatal("failed primary attempt not counted as a retry")
	}
}

func TestRouterAllShardsDown(t *testing.T) {
	down := newStubShard(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"no"}`)
	})
	rt := newTestRouter(t, Config{Shards: []ShardAddr{{ID: "s1", URL: down.srv.URL}}})

	rec := postRecover(t, rt.Handler(), testCode, "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want upstream 503 relayed", rec.Code)
	}
	if got := counterValue(rt, "cluster_router_errors_total"); got != 1 {
		t.Fatalf("errors_total = %d, want 1", got)
	}
}

func TestRouterBreakerSkipsOpenShard(t *testing.T) {
	down := newStubShard(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, `{"error":"boom"}`)
	})
	up := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{
		Shards: []ShardAddr{{ID: "s1", URL: down.srv.URL}, {ID: "s2", URL: up.srv.URL}},
		// One failure opens the breaker; a long cooldown keeps it open for
		// the rest of the test.
		BreakerFailures: 1,
		BreakerCooldown: time.Minute,
	})

	for i := 0; i < 5; i++ {
		rec := postRecover(t, rt.Handler(), testCode, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, rec.Code)
		}
	}
	// The failing shard is tried at most once before its breaker opens;
	// every later request goes straight to the healthy shard.
	if down.hits.Load() > 1 {
		t.Fatalf("open-breaker shard was tried %d times, want <= 1", down.hits.Load())
	}
	if up.hits.Load() != 5 {
		t.Fatalf("healthy shard hits = %d, want 5", up.hits.Load())
	}
}

func TestRouterHedging(t *testing.T) {
	release := make(chan struct{})
	slow := newStubShard(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		okRecover(w, r)
	})
	defer close(release)
	fast := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{
		Shards: []ShardAddr{{ID: "s1", URL: slow.srv.URL}, {ID: "s2", URL: fast.srv.URL}},
		Hedge:  true,
		// Force an immediate hedge regardless of scraped p95.
		HedgeMin: time.Millisecond,
		HedgeMax: time.Millisecond,
	})

	// Find a bytecode owned by the slow shard so the hedge targets the
	// fast successor. Vary the appended suffix until the ring cooperates.
	ring := NewRing(0)
	ring.Add("s1")
	ring.Add("s2")
	body := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("%s%02x", testCode, i)
		code, err := server.ParseBytecode([]byte(cand))
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := ring.Owner(keccak.Sum256(code)); owner == "s1" {
			body = cand
			break
		}
	}
	if body == "" {
		t.Fatal("no candidate bytecode owned by s1")
	}

	rec := postRecover(t, rt.Handler(), body, "h-1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Sigrec-Shard"); got != "s2" {
		t.Fatalf("winner = %q, want the hedged shard s2", got)
	}
	if got := counterValue(rt, "cluster_router_hedges_fired_total"); got != 1 {
		t.Fatalf("hedges_fired_total = %d, want 1", got)
	}
	if got := counterValue(rt, "cluster_router_hedges_won_total"); got != 1 {
		t.Fatalf("hedges_won_total = %d, want 1", got)
	}
}

func TestRouterBatch(t *testing.T) {
	a := newStubShard(t, okRecover)
	b := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{Shards: []ShardAddr{
		{ID: "s1", URL: a.srv.URL}, {ID: "s2", URL: b.srv.URL},
	}})

	var in bytes.Buffer
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&in, "%s%02x\n", testCode, i)
	}
	in.WriteString("not-hex\n")

	req := httptest.NewRequest(http.MethodPost, "/v1/recover/batch", &in)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}

	got := map[int]server.BatchResult{}
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var br server.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &br); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		got[br.Index] = br
	}
	if len(got) != 9 {
		t.Fatalf("got %d lines, want 9", len(got))
	}
	for i := 0; i < 8; i++ {
		if got[i].Error != "" {
			t.Errorf("line %d: unexpected error %q", i, got[i].Error)
		}
	}
	if got[8].Error == "" {
		t.Error("malformed line 8 did not produce an error result")
	}
	if a.hits.Load()+b.hits.Load() != 8 {
		t.Fatalf("shard hits = %d, want 8", a.hits.Load()+b.hits.Load())
	}
}

func TestRouterHealthz(t *testing.T) {
	a := newStubShard(t, okRecover)
	rt := newTestRouter(t, Config{Shards: []ShardAddr{{ID: "s1", URL: a.srv.URL}}})

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var h struct {
		Status string `json:"status"`
		Shards []struct {
			ID      string `json:"id"`
			Healthy bool   `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Shards) != 1 || !h.Shards[0].Healthy {
		t.Fatalf("healthz = %+v", h)
	}
}

// --- peer cache fill ---

// mustResult builds a small but fully featured recovery result: typed
// inputs, per-parameter rule trails, language, rule stats.
func mustResult(t *testing.T) core.Result {
	t.Helper()
	sig, err := abi.ParseSignature("f(uint256,bytes[])")
	if err != nil {
		t.Fatal(err)
	}
	var sel abi.Selector
	copy(sel[:], []byte{0xde, 0xad, 0xbe, 0xef})
	res := core.Result{Functions: []core.RecoveredFunction{{
		Selector:   sel,
		Inputs:     sig.Inputs,
		ParamRules: [][]core.RuleID{{core.RuleID(4)}, {core.RuleID(1), core.RuleID(2)}},
		Language:   core.LangVyper,
	}}}
	res.Rules[4] = 1
	res.Rules[1] = 1
	res.Rules[2] = 1
	return res
}

func TestFillPayloadRoundTrip(t *testing.T) {
	want := mustResult(t)
	got, outcome, err := decodeFill(encodeFill(want, nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if outcome != nil {
		t.Fatalf("outcome = %v, want nil", outcome)
	}
	assertResultEqual(t, got, want)

	// The no-functions outcome survives too.
	_, outcome, err = decodeFill(encodeFill(core.Result{}, core.ErrNoFunctions))
	if err != nil || outcome != core.ErrNoFunctions {
		t.Fatalf("no-functions round trip: outcome=%v err=%v", outcome, err)
	}
}

func assertResultEqual(t *testing.T, got, want core.Result) {
	t.Helper()
	if len(got.Functions) != len(want.Functions) {
		t.Fatalf("functions = %d, want %d", len(got.Functions), len(want.Functions))
	}
	for i := range want.Functions {
		g, w := got.Functions[i], want.Functions[i]
		if g.Selector != w.Selector {
			t.Errorf("fn %d selector = %s, want %s", i, g.Selector, w.Selector)
		}
		if g.TypeList() != w.TypeList() {
			t.Errorf("fn %d types = %s, want %s", i, g.TypeList(), w.TypeList())
		}
		if g.Language != w.Language {
			t.Errorf("fn %d language = %s, want %s", i, g.Language, w.Language)
		}
		if fmt.Sprint(g.ParamRules) != fmt.Sprint(w.ParamRules) {
			t.Errorf("fn %d rules = %v, want %v", i, g.ParamRules, w.ParamRules)
		}
	}
	if got.Rules != want.Rules {
		t.Errorf("rule stats = %v, want %v", got.Rules, want.Rules)
	}
}

func TestPeerFill(t *testing.T) {
	code, err := server.ParseBytecode([]byte(testCode))
	if err != nil {
		t.Fatal(err)
	}
	want := mustResult(t)

	// The owner shard has the result cached; its fill endpoint serves it.
	ownerCache := core.NewCache(8)
	if _, err := ownerCache.GetOrCompute(code, func() (core.Result, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	owner := httptest.NewServer(FillHandler(ownerCache, 0))
	defer owner.Close()

	// A two-shard ring where "owner" owns the key, seen from "other".
	ring := NewRing(0)
	ring.Add("owner")
	ownedBy, _ := ring.Owner(keccak.Sum256(code))
	if ownedBy != "owner" {
		t.Fatalf("single-shard ring owner = %q", ownedBy)
	}
	ring.Add("other")
	fill := PeerFill(ring, "other", map[string]string{"owner": owner.URL}, nil, 0)

	ownerID, _ := ring.Owner(keccak.Sum256(code))
	if ownerID == "other" {
		// The two-shard ring happens to give the key to us: peer fill
		// correctly reports a miss (we ARE the owner, nothing to fetch).
		if _, _, ok := fill(context.Background(), code); ok {
			t.Fatal("fill hit although this shard owns the key")
		}
		return
	}
	got, outcome, ok := fill(context.Background(), code)
	if !ok {
		t.Fatal("fill missed although the owner has the result cached")
	}
	if outcome != nil {
		t.Fatalf("outcome = %v", outcome)
	}
	assertResultEqual(t, got, want)

	// A cold owner is a clean miss, not an error.
	coldCache := core.NewCache(8)
	cold := httptest.NewServer(FillHandler(coldCache, 0))
	defer cold.Close()
	fillCold := PeerFill(ring, "other", map[string]string{"owner": cold.URL}, nil, 0)
	if ownerID != "other" {
		if _, _, ok := fillCold(context.Background(), code); ok {
			t.Fatal("fill hit on a cold owner")
		}
	}

	// End to end through the serving layer: a server configured with the
	// fill hook answers from the peer's cache without running a recovery.
	srv := server.New(server.Config{CacheFill: fill})
	rec := postRecover(t, srv.Handler(), testCode, "fill-e2e")
	if ownerID != "other" {
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
		}
		var resp server.RecoverResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Functions) != 1 || resp.Functions[0].Types != "(uint256,bytes[])" {
			t.Fatalf("filled response = %+v", resp)
		}
	}
}
