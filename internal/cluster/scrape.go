package cluster

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ParseExposition parses a Prometheus text-format exposition into a flat
// map keyed by the full series name including its label block, e.g.
//
//	sigrec_recover_latency_microseconds{quantile="0.95"} -> 1234
//	sigrec_cache_hits_total                              -> 87
//
// Comment lines and OpenMetrics exemplar suffixes are dropped. The router
// uses it to scrape each shard's CKMS p95 for the hedge delay; the e2e
// harness uses it to reconcile counter deltas across the cluster.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Exemplar suffix: `name{...} value # {request_id="..."} ev`.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		// The series name may contain spaces only inside label values;
		// split on the last space so quoted values survive.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue // timestamps or malformed tails: skip, not fatal
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
