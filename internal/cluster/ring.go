// Package cluster is sigrec's horizontal-scale layer: a consistent-hash
// ring over the bytecode keccak (the result-cache key), a thin stateless
// router that proxies the recovery endpoints to health-checked shard pools
// with circuit breaking, hedged requests, and ring-successor retries, and
// peer cache-fill so a contract computed on its owning shard is served by
// every shard without recomputation.
//
// Sharding is keyed on keccak256 of the runtime bytecode — the same key
// the result cache uses — so each shard owns a slice of the bytecode
// space and cache hit rates survive scale-out: the Nth deployment of a
// popular token template always lands on the shard that already computed
// it.
package cluster

import (
	"encoding/binary"
	"sort"
	"strconv"
	"sync"

	"sigrec/internal/keccak"
)

// DefaultVNodes is the virtual-node count per shard. 160 points per shard
// keeps the max/mean ownership ratio within a few percent for small
// clusters while the ring stays tiny (N*160 points, binary-searched).
const DefaultVNodes = 160

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the shard that owns the arc ending there.
type ringPoint struct {
	pos   uint64
	shard int // index into r.shards
}

// Ring is a consistent-hash ring with virtual nodes, keyed on the
// bytecode keccak. It is safe for concurrent use; Add/Remove are O(ring)
// rebuilds (membership changes are rare), lookups are a binary search.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	shards []string // sorted shard ids
	points []ringPoint
}

// NewRing returns a ring with the given virtual-node count per shard
// (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes}
}

// point hashes one virtual node of a shard onto the circle. keccak keeps
// the package dependency-free and matches the key hash family; the ring
// reads the first 8 bytes big-endian, exactly how Owner reads a key.
func point(shard string, vnode int) uint64 {
	h := keccak.Sum256([]byte(shard + "#" + strconv.Itoa(vnode)))
	return binary.BigEndian.Uint64(h[:8])
}

// Add inserts a shard (id must be unique; re-adding is a no-op).
func (r *Ring) Add(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.shards {
		if s == shard {
			return
		}
	}
	r.shards = append(r.shards, shard)
	sort.Strings(r.shards)
	r.rebuild()
}

// Remove deletes a shard; removing an unknown id is a no-op.
func (r *Ring) Remove(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.shards {
		if s == shard {
			r.shards = append(r.shards[:i], r.shards[i+1:]...)
			r.rebuild()
			return
		}
	}
}

// rebuild regenerates the point list from the member set. Caller holds
// r.mu. Virtual-node positions depend only on (shard id, vnode index), so
// members keep their points across membership changes — the property the
// rebalancing test pins down.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for idx, s := range r.shards {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: point(s, v), shard: idx})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].pos < r.points[b].pos })
}

// Shards returns the current members, sorted.
func (r *Ring) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.shards...)
}

// keyPos maps a keccak key onto the circle.
func keyPos(key [32]byte) uint64 { return binary.BigEndian.Uint64(key[:8]) }

// Owner returns the shard owning the key: the first virtual node at or
// clockwise after the key's position. ok=false on an empty ring.
func (r *Ring) Owner(key [32]byte) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.shards[r.points[r.search(keyPos(key))].shard], true
}

// search returns the index of the first point at or after pos, wrapping
// to 0 past the last point. Caller holds r.mu (read).
func (r *Ring) search(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Sequence returns every shard in ring order starting from the key's
// owner, each exactly once: the owner first, then the successor each
// failed attempt falls back to. The slice is freshly allocated.
func (r *Ring) Sequence(key [32]byte) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.shards))
	seen := make(map[int]bool, len(r.shards))
	for i, n := r.search(keyPos(key)), 0; n < len(r.points) && len(out) < len(r.shards); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, r.shards[p.shard])
		}
	}
	return out
}

// PickBounded is the bounded-load variant (Mirrokni et al., "Consistent
// Hashing with Bounded Loads"): walk the key's successor sequence and
// return the first shard whose current load stays under
// ceil(factor * (total+1) / N), so one hot arc cannot bury its owner
// while the rest of the pool idles. factor <= 1 degrades to plain Owner;
// when every shard is at capacity the owner is returned (admission
// control downstream sheds, the ring does not).
func (r *Ring) PickBounded(key [32]byte, load func(shard string) int, factor float64) (string, bool) {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return "", false
	}
	if factor <= 1 || load == nil {
		return seq[0], true
	}
	total := 0
	for _, s := range seq {
		total += load(s)
	}
	limit := int(factor * float64(total+1) / float64(len(seq)))
	if limit < 1 {
		limit = 1
	}
	for _, s := range seq {
		if load(s) < limit {
			return s, true
		}
	}
	return seq[0], true
}
