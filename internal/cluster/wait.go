package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// WaitReady polls url (expected to be a /healthz-style endpoint) until it
// answers 200 or ctx expires — the readiness loop every cluster harness
// needs when real processes come up in their own time. The poll interval
// backs off from 10ms to 250ms so a fast boot is caught fast and a slow
// one does not get hammered.
func WaitReady(ctx context.Context, client *http.Client, url string) error {
	if client == nil {
		client = http.DefaultClient
	}
	interval := 10 * time.Millisecond
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("cluster: %s answered %d", url, resp.StatusCode)
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %s: %w (last: %v)", url, ctx.Err(), lastErr)
		case <-time.After(interval):
		}
		if interval < 250*time.Millisecond {
			interval *= 2
		}
	}
}

// WaitPoolHealthy polls a router's /healthz until it reports at least
// want healthy shards or ctx expires. WaitReady only proves the router
// answers; its health poller discovers the pool asynchronously, so a
// harness that starts load right after WaitReady can race the first poll
// round and see traffic diverted away from a shard that is actually up.
func WaitPoolHealthy(ctx context.Context, client *http.Client, url string, want int) error {
	if client == nil {
		client = http.DefaultClient
	}
	interval := 10 * time.Millisecond
	var lastErr error
	for {
		healthy, err := poolHealthy(ctx, client, url)
		if err == nil && healthy >= want {
			return nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("cluster: %s reports %d healthy shards, want %d", url, healthy, want)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for pool health at %s: %w (last: %v)", url, ctx.Err(), lastErr)
		case <-time.After(interval):
		}
		if interval < 250*time.Millisecond {
			interval *= 2
		}
	}
}

func poolHealthy(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Shards []struct {
			Healthy bool `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, fmt.Errorf("cluster: decoding %s: %w", url, err)
	}
	n := 0
	for _, sh := range body.Shards {
		if sh.Healthy {
			n++
		}
	}
	return n, nil
}

// Retry runs fn up to attempts times, sleeping delay between failures,
// and returns the first success or the last error. It is the bounded
// retry loop for cluster operations that may race a restarting process.
func Retry(ctx context.Context, attempts int, delay time.Duration, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: retry aborted: %w (last: %v)", ctx.Err(), err)
		case <-time.After(delay):
		}
	}
	return err
}
