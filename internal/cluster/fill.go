package cluster

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/eventlog"
	"sigrec/internal/keccak"
	"sigrec/internal/obs"
	"sigrec/internal/server"
)

// FillPath is the intra-cluster cache-peek endpoint each shard serves.
// It is deliberately under /internal/: not part of the public API, and a
// fill can only ever read a peer's cache — never trigger a recovery — so
// a storm of fills adds no compute load to a struggling owner and cannot
// recurse (the owner answering a fill consults only its own cache).
const FillPath = "/internal/v1/fill"

// fillFunction is one recovered function on the fill wire. Unlike the
// public wire schema it keeps the per-parameter rule trails intact, so a
// filled result is byte-identical to a locally computed one.
type fillFunction struct {
	Selector  string     `json:"selector"`
	Types     string     `json:"types"`
	Rules     [][]string `json:"rules"`
	Language  string     `json:"language"`
	Truncated bool       `json:"truncated,omitempty"`
}

// fillPayload is a lossless encoding of a cacheable recovery outcome
// (cacheable means: not truncated, error nil or ErrNoFunctions — exactly
// what Cache.Peek can return).
type fillPayload struct {
	Functions   []fillFunction `json:"functions"`
	RuleStats   []uint64       `json:"ruleStats,omitempty"`
	NoFunctions bool           `json:"noFunctions,omitempty"`
}

func encodeFill(res core.Result, err error) fillPayload {
	p := fillPayload{NoFunctions: err != nil}
	for _, f := range res.Functions {
		ff := fillFunction{
			Selector:  f.Selector.Hex(),
			Types:     f.TypeList(),
			Language:  f.Language.String(),
			Truncated: f.Truncated,
			Rules:     make([][]string, len(f.ParamRules)),
		}
		for i, trail := range f.ParamRules {
			ff.Rules[i] = make([]string, len(trail))
			for j, r := range trail {
				ff.Rules[i][j] = r.String()
			}
		}
		p.Functions = append(p.Functions, ff)
	}
	for _, n := range res.Rules {
		if n != 0 {
			p.RuleStats = res.Rules[:]
			break
		}
	}
	return p
}

func decodeFill(p fillPayload) (core.Result, error, error) {
	var res core.Result
	for _, ff := range p.Functions {
		f := core.RecoveredFunction{Truncated: ff.Truncated}
		sel, err := hex.DecodeString(strings.TrimPrefix(ff.Selector, "0x"))
		if err != nil || len(sel) != 4 {
			return core.Result{}, nil, fmt.Errorf("cluster: bad fill selector %q", ff.Selector)
		}
		copy(f.Selector[:], sel)
		// TypeList renders "(t1,t2)"; ParseSignature wants a name in front.
		sig, err := abi.ParseSignature("f" + ff.Types)
		if err != nil {
			return core.Result{}, nil, fmt.Errorf("cluster: bad fill types %q: %w", ff.Types, err)
		}
		f.Inputs = sig.Inputs
		if ff.Language == core.LangVyper.String() {
			f.Language = core.LangVyper
		} else {
			f.Language = core.LangSolidity
		}
		f.ParamRules = make([][]core.RuleID, len(ff.Rules))
		for i, trail := range ff.Rules {
			f.ParamRules[i] = make([]core.RuleID, len(trail))
			for j, s := range trail {
				n, err := strconv.Atoi(strings.TrimPrefix(s, "R"))
				if err != nil || n < 1 || n > core.NumRules {
					return core.Result{}, nil, fmt.Errorf("cluster: bad fill rule %q", s)
				}
				f.ParamRules[i][j] = core.RuleID(n)
			}
		}
		res.Functions = append(res.Functions, f)
	}
	if len(p.RuleStats) == len(res.Rules) {
		copy(res.Rules[:], p.RuleStats)
	}
	var outcome error
	if p.NoFunctions {
		outcome = core.ErrNoFunctions
	}
	return res, outcome, nil
}

// FillHandler serves FillPath on a shard: POST hex bytecode, answer 200 +
// fillPayload when this shard's cache holds the outcome, 404 when it does
// not. It never computes — see FillPath.
func FillHandler(cache *core.Cache, maxBody int64) http.Handler {
	if maxBody <= 0 {
		maxBody = server.DefaultMaxBodyBytes
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		code, err := server.ParseBytecode(raw)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		res, rerr, ok := cache.Peek(code)
		if !ok {
			writeJSONError(w, http.StatusNotFound, "not cached")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(encodeFill(res, rerr))
	})
}

// PeerFill returns the shard-side core.FillFunc: on a local cache miss,
// if the ring says another shard owns this bytecode, ask that owner's
// cache (FillPath) and adopt the answer. Owner-is-self, owner-miss, and
// every failure report !ok, which makes the caller compute locally — the
// hook is an optimization with no failure mode of its own.
//
// The hook runs under the requesting recovery's context: the fill hop is
// recorded as a client span ("peer.fill") on the recovery's trace, and
// the request's W3C trace context travels on the wire, parenting the hop
// under the same trace the router started.
//
// self is this shard's ring id; peers maps shard id -> base URL.
func PeerFill(ring *Ring, self string, peers map[string]string, client *http.Client, timeout time.Duration) core.FillFunc {
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return func(ctx context.Context, code []byte) (core.Result, error, bool) {
		owner, ok := ring.Owner(keccak.Sum256(code))
		if !ok || owner == self {
			return core.Result{}, nil, false
		}
		base, ok := peers[owner]
		if !ok {
			return core.Result{}, nil, false
		}
		rec := obs.FromContext(ctx)
		sp := rec.Span("peer.fill")
		sp.SetStr("owner", owner)
		hit := false
		defer func() {
			if hit {
				sp.SetStr("outcome", "hit")
			} else {
				sp.SetStr("outcome", "miss")
			}
			sp.End()
		}()
		cctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		body := fmt.Sprintf("0x%x", code)
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, base+FillPath, bytes.NewBufferString(body))
		if err != nil {
			return core.Result{}, nil, false
		}
		req.Header.Set("Content-Type", "text/plain")
		// Propagate the trace across the fill hop, pinning the fill span's
		// id so the owner side can join exactly. Tracing off still
		// propagates the id the wide-event scope carries.
		tid := rec.TraceID()
		if tid == "" {
			if sc := eventlog.ScopeFromContext(ctx); sc != nil {
				tid = sc.TraceID
			}
		}
		if tid != "" {
			sid := obs.DeriveSpanID(fmt.Sprintf("%s/fill@%d", rec.RequestID(), rec.NowUS()))
			sp.SetSpanID(sid)
			obs.Inject(req.Header, obs.SpanContext{TraceID: tid, SpanID: sid, Sampled: true})
		}
		resp, err := client.Do(req)
		if err != nil {
			return core.Result{}, nil, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return core.Result{}, nil, false
		}
		var p fillPayload
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&p); err != nil {
			return core.Result{}, nil, false
		}
		res, outcome, derr := decodeFill(p)
		if derr != nil {
			return core.Result{}, nil, false
		}
		hit = true
		return res, outcome, true
	}
}
