package cluster

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %d, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}

	clock = clock.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker denied the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe admitted")
	}

	// Probe fails: back to open for another full cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}

	// Probe succeeds after the next cooldown: closed, streak reset.
	clock = clock.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %d, want closed", b.State())
	}
	// A success mid-streak resets the failure count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure streak not reset by success")
	}
}

// An abandoned half-open probe (the router cancelled the attempt, so the
// shard got no verdict) must release the probe slot — otherwise the
// breaker wedges half-open and the shard is never retried.
func TestBreakerAbandonReleasesProbe(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(1, time.Second)
	b.now = func() time.Time { return clock }

	b.Allow()
	b.Failure()
	clock = clock.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after cooldown")
	}
	if b.Allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.Abandon()
	if !b.Allow() {
		t.Fatal("probe slot not released by Abandon")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("probe success did not close the breaker")
	}

	// Abandon in the closed state is a no-op.
	b.Abandon()
	if !b.Allow() {
		t.Fatal("closed breaker denied after Abandon")
	}
}
