package cluster

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// shard is the router's live view of one sigrecd backend: identity,
// breaker, health, inflight load, and the p95-derived hedge delay scraped
// from the shard's CKMS latency summary.
type shard struct {
	id  string
	url string // base URL, no trailing slash

	breaker  *Breaker
	healthy  atomic.Bool
	inflight atomic.Int64
	// p95us is the shard's sigrec_recover_latency_microseconds p95 from
	// its last /metrics scrape; 0 until the first successful scrape.
	p95us atomic.Int64
}

// hedgeDelay derives when to hedge a request sent to this shard: the
// shard's own p95 scaled by the multiplier, clamped to [min, max]. A
// request still unanswered past the shard's p95 is in its latency tail —
// the textbook moment to hedge. Before the first scrape (p95 unknown) the
// delay is max, so a cold router hedges conservatively rather than
// doubling every request.
func (s *shard) hedgeDelay(multiplier float64, min, max time.Duration) time.Duration {
	p95 := s.p95us.Load()
	if p95 <= 0 {
		return max
	}
	d := time.Duration(float64(p95) * multiplier * float64(time.Microsecond))
	if d < min {
		d = min
	}
	if d > max {
		d = max
	}
	return d
}

// poll refreshes health and the hedge-delay quantile once. Health is the
// shard's /healthz (200 = routable; 503 covers draining); the p95 comes
// from the shard's /metrics exposition.
func (s *shard) poll(ctx context.Context, client *http.Client, m *routerMetrics) {
	hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	healthy := false
	if req, err := http.NewRequestWithContext(hctx, http.MethodGet, s.url+"/healthz", nil); err == nil {
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
			healthy = resp.StatusCode == http.StatusOK
		}
	}
	wasHealthy := s.healthy.Swap(healthy)
	if healthy && !wasHealthy {
		// Rising edge: the shard answered a health probe after being down.
		// That is exactly the evidence a half-open probe would gather, so
		// close the breaker now instead of benching the recovered shard
		// for the rest of its cooldown — a restarted shard rejoins within
		// one poll interval. A shard that is up but shedding shows no
		// edge, so its breaker still runs the full open/half-open cycle.
		s.breaker.Success()
	}
	if !healthy {
		m.shardHealthy.With(s.id).Set(0)
		return
	}
	m.shardHealthy.With(s.id).Set(1)
	if req, err := http.NewRequestWithContext(hctx, http.MethodGet, s.url+"/metrics", nil); err == nil {
		if resp, err := client.Do(req); err == nil {
			series, perr := ParseExposition(resp.Body)
			resp.Body.Close()
			if perr == nil {
				if v, ok := series[`sigrec_recover_latency_microseconds{quantile="0.95"}`]; ok && v > 0 {
					s.p95us.Store(int64(v))
					m.shardHedgeUS.With(s.id).Set(int64(v))
				}
			}
		}
	}
}
