package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/keccak"
	"sigrec/internal/obs"
	"sigrec/internal/otlp"
	"sigrec/internal/server"
	"sigrec/internal/telemetry"
)

// traceCollector is a minimal in-process OTLP/HTTP trace collector shared
// by the router and every shard: it retains each exported span tagged with
// the service.name of the payload that carried it, so the test reconciles
// the cross-process trace exactly as a real collector would see it.
type traceCollector struct {
	srv *httptest.Server

	mu    sync.Mutex
	spans []tracedSpan
}

type tracedSpan struct {
	Service      string
	TraceID      string
	SpanID       string
	ParentSpanID string
	Name         string
	Attrs        map[string]string
}

func newTraceCollector(t *testing.T) *traceCollector {
	t.Helper()
	c := &traceCollector{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", c.handleTraces)
	mux.HandleFunc("POST /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	c.srv = httptest.NewServer(mux)
	t.Cleanup(c.srv.Close)
	return c
}

type traceAttr struct {
	Key   string `json:"key"`
	Value struct {
		StringValue *string `json:"stringValue"`
		IntValue    *string `json:"intValue"`
		BoolValue   *bool   `json:"boolValue"`
	} `json:"value"`
}

func traceAttrMap(attrs []traceAttr) map[string]string {
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		switch {
		case a.Value.StringValue != nil:
			m[a.Key] = *a.Value.StringValue
		case a.Value.IntValue != nil:
			m[a.Key] = *a.Value.IntValue
		case a.Value.BoolValue != nil:
			m[a.Key] = fmt.Sprint(*a.Value.BoolValue)
		}
	}
	return m
}

func (c *traceCollector) handleTraces(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []traceAttr `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string      `json:"traceId"`
					SpanID       string      `json:"spanId"`
					ParentSpanID string      `json:"parentSpanId"`
					Name         string      `json:"name"`
					Attributes   []traceAttr `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rs := range req.ResourceSpans {
		service := traceAttrMap(rs.Resource.Attributes)["service.name"]
		for _, ss := range rs.ScopeSpans {
			for _, s := range ss.Spans {
				c.spans = append(c.spans, tracedSpan{
					Service:      service,
					TraceID:      s.TraceID,
					SpanID:       s.SpanID,
					ParentSpanID: s.ParentSpanID,
					Name:         s.Name,
					Attrs:        traceAttrMap(s.Attributes),
				})
			}
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (c *traceCollector) byTrace(tid string) []tracedSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []tracedSpan
	for _, s := range c.spans {
		if s.TraceID == tid {
			out = append(out, s)
		}
	}
	return out
}

func (c *traceCollector) named(name string) []tracedSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []tracedSpan
	for _, s := range c.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// tracedShard is one real in-process sigrecd with its own tracer and
// exporter, all draining into the shared collector.
type tracedShard struct {
	id     string
	srv    *server.Server
	ts     *httptest.Server
	tracer *obs.Tracer
	exp    *otlp.Exporter
}

func newTracedShard(t *testing.T, id string, col *traceCollector) *tracedShard {
	t.Helper()
	exp := otlp.New(otlp.Config{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour, // flush on Close only: deterministic delivery
		ServiceName: id,
		Registry:    core.Metrics(),
	})
	tracer := obs.New(obs.Config{Slowest: 1024, Sink: exp.Sink()})
	srv := server.New(server.Config{Workers: 4, QueueDepth: 256, Tracer: tracer, Service: id})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &tracedShard{id: id, srv: srv, ts: ts, tracer: tracer, exp: exp}
}

// flushExporter ships everything the exporter queued in one deterministic
// drain.
func flushExporter(t *testing.T, exp *otlp.Exporter) {
	t.Helper()
	exp.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := exp.Close(ctx); err != nil {
		t.Fatalf("exporter close: %v", err)
	}
}

// spanTreeSize counts the spans of one flight-recorder record.
func spanTreeSize(rec *obs.Record) int {
	return len(obs.FlattenRecord(rec, ""))
}

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// uniqueCode derives a unique full-recovery input from the corpus base.
func uniqueCode(base []byte, i int) []byte {
	code := make([]byte, len(base), len(base)+4)
	copy(code, base)
	return append(code, 0xfe, 0x77, byte(i>>8), byte(i))
}

// TestClusterTraceE2E is the distributed-tracing acceptance gate: an OTLP
// collector receiving from the router and three real shards must see one
// trace per client request, spanning the router's route/attempt spans and
// the winning shard's recovery tree, with exact span-count and parentage
// reconciliation against the flight recorders — including a hedged request
// whose losing attempt span is present and marked cancelled.
func TestClusterTraceE2E(t *testing.T) {
	col := newTraceCollector(t)
	shards := []*tracedShard{
		newTracedShard(t, "s1", col),
		newTracedShard(t, "s2", col),
		newTracedShard(t, "s3", col),
	}
	regBefore := core.Metrics().Snapshot().LabeledCounters["sigrec_trace_context_total"].Values

	routerReg := telemetry.NewRegistry()
	routerExp := otlp.New(otlp.Config{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour,
		ServiceName: "sigrec-router",
		Registry:    routerReg,
	})
	routerTracer := obs.New(obs.Config{Slowest: 4096, Sink: routerExp.Sink()})
	rt, err := NewRouter(Config{
		Shards: []ShardAddr{
			{ID: "s1", URL: shards[0].ts.URL},
			{ID: "s2", URL: shards[1].ts.URL},
			{ID: "s3", URL: shards[2].ts.URL},
		},
		Registry: routerReg,
		Tracer:   routerTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	entries, err := corpus.GenerateSynthesized(17)
	if err != nil {
		t.Fatal(err)
	}
	base := entries[0].Code

	// --- three unique single recoveries under explicit request ids ---
	singleIDs := []string{"trace-e2e-0", "trace-e2e-1", "trace-e2e-2"}
	for i, id := range singleIDs {
		code := uniqueCode(base, i)
		req, err := http.NewRequest("POST", front.URL+"/v1/recover", strings.NewReader(fmt.Sprintf("0x%x", code)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recover %s status = %d", id, resp.StatusCode)
		}
	}

	// --- one 2-item batch: both items must ride one trace ---
	batchBody := fmt.Sprintf("0x%x\n0x%x\n", uniqueCode(base, 100), uniqueCode(base, 101))
	breq, err := http.NewRequest("POST", front.URL+"/v1/recover/batch", strings.NewReader(batchBody))
	if err != nil {
		t.Fatal(err)
	}
	breq.Header.Set("X-Request-Id", "trace-e2e-batch")
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", bresp.StatusCode)
	}

	// --- one hedged request through a second router whose primary is slow ---
	hedgedTrace := driveHedgedRequest(t, col, shards, base)

	// The hedged route's recovery is finished by the loser-drainer
	// goroutine after the response returns; everything else finishes
	// synchronously before its response.
	for _, id := range singleIDs {
		tid := obs.DeriveTraceID(id)
		if len(routerTracer.Recorder().Find(tid)) != 1 {
			t.Fatalf("router recorder has no record for %s", id)
		}
	}

	rt.Close() // stop the health pollers before the deterministic flush
	flushExporter(t, routerExp)
	for _, sh := range shards {
		flushExporter(t, sh.exp)
	}

	// --- reconciliation: one trace per client request, exact counts ---
	for _, id := range singleIDs {
		tid := obs.DeriveTraceID(id)
		spans := col.byTrace(tid)

		var routeRoots, attempts, recoveries []tracedSpan
		byID := map[string]tracedSpan{}
		for _, s := range spans {
			byID[s.SpanID] = s
			switch {
			case s.Name == "route" && s.ParentSpanID == "":
				routeRoots = append(routeRoots, s)
			case s.Name == "attempt":
				attempts = append(attempts, s)
			case s.Name == "recovery":
				recoveries = append(recoveries, s)
			}
		}
		if len(routeRoots) != 1 {
			t.Fatalf("%s: route roots = %d, want 1", id, len(routeRoots))
		}
		if len(attempts) != 1 || attempts[0].Attrs["outcome"] != "winner" {
			t.Fatalf("%s: attempts = %+v, want exactly one winner", id, attempts)
		}
		if attempts[0].ParentSpanID != routeRoots[0].SpanID {
			t.Fatalf("%s: attempt parents under %s, not the route root %s",
				id, attempts[0].ParentSpanID, routeRoots[0].SpanID)
		}
		// The shard's recovery tree parents under the winning attempt span,
		// on the shard whose id the attempt recorded.
		var recoveryRoots []tracedSpan
		for _, r := range recoveries {
			if r.ParentSpanID == attempts[0].SpanID {
				recoveryRoots = append(recoveryRoots, r)
			}
		}
		if len(recoveryRoots) != 1 {
			t.Fatalf("%s: recovery roots under the winner = %d, want 1", id, len(recoveryRoots))
		}
		if recoveryRoots[0].Service != attempts[0].Attrs["shard"] {
			t.Fatalf("%s: recovery exported by %s, attempt says shard %s",
				id, recoveryRoots[0].Service, attempts[0].Attrs["shard"])
		}
		// Every span parents inside the trace (no orphans in a live fleet).
		for _, s := range spans {
			if s.ParentSpanID == "" {
				continue
			}
			if _, ok := byID[s.ParentSpanID]; !ok {
				t.Fatalf("%s: span %s (%s) has unexported parent %s", id, s.SpanID, s.Name, s.ParentSpanID)
			}
		}
		// Exact span count: collector == router tree + winning shard tree.
		want := 0
		for _, rec := range routerTracer.Recorder().Find(tid) {
			want += spanTreeSize(rec)
		}
		for _, sh := range shards {
			for _, rec := range sh.tracer.Recorder().Find(tid) {
				want += spanTreeSize(rec)
			}
		}
		if len(spans) != want {
			t.Fatalf("%s: collector holds %d spans, flight recorders hold %d", id, len(spans), want)
		}
	}

	// --- batch: one trace, two route roots, two recovery trees ---
	btid := obs.DeriveTraceID("trace-e2e-batch")
	bspans := col.byTrace(btid)
	var broots, brecov []tracedSpan
	for _, s := range bspans {
		if s.Name == "route" && s.ParentSpanID == "" {
			broots = append(broots, s)
		}
		if s.Name == "recovery" {
			brecov = append(brecov, s)
		}
	}
	if len(broots) != 2 || len(brecov) != 2 {
		t.Fatalf("batch trace: route roots = %d, recoveries = %d, want 2/2", len(broots), len(brecov))
	}

	// --- hedged request: loser attempt present and marked cancelled ---
	hspans := col.byTrace(hedgedTrace)
	var winner, cancelled []tracedSpan
	for _, s := range hspans {
		if s.Name != "attempt" {
			continue
		}
		switch s.Attrs["outcome"] {
		case "winner":
			winner = append(winner, s)
		case "cancelled":
			cancelled = append(cancelled, s)
		}
	}
	if len(winner) != 1 || winner[0].Attrs["kind"] != "hedge" {
		t.Fatalf("hedged trace winners = %+v, want one hedge winner", winner)
	}
	if len(cancelled) != 1 || cancelled[0].Attrs["kind"] != "primary" {
		t.Fatalf("hedged trace cancelled attempts = %+v, want the primary", cancelled)
	}

	// --- health polls are traced too ---
	if len(col.named("shard.poll")) == 0 {
		t.Error("no shard.poll spans exported")
	}

	// --- counters: the router metered inbound extraction, promlint-clean ---
	snap := routerReg.Snapshot()
	if got := snap.LabeledCounters["sigrec_trace_context_total"].Values["absent"]; got != 4 {
		t.Errorf("router absent trace-context count = %d, want 4 (3 singles + 1 batch)", got)
	}
	regAfter := core.Metrics().Snapshot().LabeledCounters["sigrec_trace_context_total"].Values
	// Shards saw a valid traceparent on every forwarded attempt the
	// middleware let through: 3 singles + 2 batch items + 1 hedge winner.
	if d := regAfter["ok"] - regBefore["ok"]; d != 6 {
		for _, s := range col.named("attempt") {
			t.Logf("attempt: trace=%s shard=%s kind=%s outcome=%s id=%s",
				s.TraceID, s.Attrs["shard"], s.Attrs["kind"], s.Attrs["outcome"], s.Attrs["attempt_id"])
		}
		for _, s := range col.named("recovery") {
			t.Logf("recovery: trace=%s service=%s parent=%s", s.TraceID, s.Service, s.ParentSpanID)
		}
		t.Errorf("shard-side ok trace-context delta = %d, want 6", d)
	}
	var expo strings.Builder
	if _, err := snap.WriteTo(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `sigrec_trace_context_total{result="absent"}`) {
		t.Error("router exposition missing the trace-context family")
	}
	if errs := telemetry.Lint(expo.String()); len(errs) != 0 {
		t.Errorf("router exposition fails promlint:\n  %s", strings.Join(errs, "\n  "))
	}

	// --- /debug/trace on the router stitches the cross-process tree ---
	resp, err := http.Get(front.URL + "/debug/trace/trace-e2e-0")
	if err != nil {
		t.Fatal(err)
	}
	var st server.StitchedTrace
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace = %d err %v", resp.StatusCode, err)
	}
	if st.Orphans != 0 {
		t.Errorf("stitched trace has %d orphans", st.Orphans)
	}
	if st.Sources["sigrec-router"] == 0 {
		t.Errorf("stitched trace missing router spans: %v", st.Sources)
	}
	shardSpans := 0
	for _, sh := range shards {
		shardSpans += st.Sources[sh.id]
	}
	if shardSpans == 0 {
		t.Errorf("stitched trace missing shard spans: %v", st.Sources)
	}
	if len(st.Spans) != len(col.byTrace(obs.DeriveTraceID("trace-e2e-0"))) {
		t.Errorf("stitched %d spans, collector holds %d",
			len(st.Spans), len(col.byTrace(obs.DeriveTraceID("trace-e2e-0"))))
	}
}

// driveHedgedRequest runs one request through a second, hedge-aggressive
// router whose primary shard path stalls, so the hedge deterministically
// fires and wins. Returns the request's trace id. The stalled path aborts
// without touching the shard once the router cancels it, so the losing
// attempt leaves exactly one span: the router's, marked cancelled.
func driveHedgedRequest(t *testing.T, col *traceCollector, shards []*tracedShard, base []byte) string {
	t.Helper()

	// A stalling front for s1: wait out the router's cancel, then 502 —
	// the underlying shard never sees the request.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			// Drain the body first: a handler that never reads it leaves
			// the server's background read unarmed, so the router's cancel
			// would not fire r.Context().Done() and the stall would fall
			// through to the shard after all.
			body, _ := io.ReadAll(r.Body)
			select {
			case <-r.Context().Done():
				w.WriteHeader(http.StatusBadGateway)
				return
			case <-time.After(200 * time.Millisecond):
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		shards[0].ts.Config.Handler.ServeHTTP(w, r)
	}))
	defer slow.Close()

	hedgeReg := telemetry.NewRegistry()
	hedgeExp := otlp.New(otlp.Config{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour,
		ServiceName: "sigrec-router",
		Registry:    hedgeReg,
	})
	hedgeTracer := obs.New(obs.Config{Slowest: 4096, Sink: hedgeExp.Sink()})
	rt, err := NewRouter(Config{
		Shards: []ShardAddr{
			{ID: "s1", URL: slow.URL},
			{ID: "s2", URL: shards[1].ts.URL},
			{ID: "s3", URL: shards[2].ts.URL},
		},
		Registry: hedgeReg,
		Tracer:   hedgeTracer,
		Hedge:    true,
		HedgeMin: time.Millisecond,
		HedgeMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Find a code the ring assigns to the stalled s1, using the same ring
	// construction as the router.
	predict := NewRing(0)
	predict.Add("s1")
	predict.Add("s2")
	predict.Add("s3")
	var code []byte
	for i := 200; i < 1200; i++ {
		c := uniqueCode(base, i)
		if owner, _ := predict.Owner(keccak.Sum256(c)); owner == "s1" {
			code = c
			break
		}
	}
	if code == nil {
		t.Fatal("no code owned by s1 in 1000 tries")
	}

	req, err := http.NewRequest("POST", front.URL+"/v1/recover", strings.NewReader(fmt.Sprintf("0x%x", code)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-e2e-hedged")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged recover status = %d", resp.StatusCode)
	}

	if got := hedgeReg.Snapshot().Counters["cluster_router_hedges_won_total"]; got != 1 {
		t.Fatalf("hedges won = %d, want 1", got)
	}

	tid := obs.DeriveTraceID("trace-e2e-hedged")
	// The loser-drainer finishes the route recovery asynchronously.
	waitUntil(t, "hedged route recovery", func() bool {
		return len(hedgeTracer.Recorder().Find(tid)) == 1
	})
	rt.Close()
	flushExporter(t, hedgeExp)
	return tid
}
