// Package e2etest is the cluster kill/restart gate: it builds the real
// sigrecd and sigrec-router binaries, spawns a 3-shard cluster plus
// router as OS processes, drives concurrent recovery load through the
// router while SIGKILLing and restarting a shard mid-load, and then
// reconciles the shards' durable event logs against the client's record
// — zero lost recoveries, zero duplicated attempts, and the cache hit
// rate warm immediately after the restart: each shard runs with a
// persistent result store (-store-dir), so the restarted shard's first
// replay must be served from its own disk (>= 0.9 hit rate, zero
// recomputation, zero peer refill).
//
// Tracing is reconciled the same way: every shard event carries the
// trace id derived from the client's request id, and the live router's
// GET /debug/trace must show — for every one of the load's requests —
// exactly one winning attempt span with the winner's shard-side recovery
// tree nested under it, hedge losers present and marked cancelled, with
// orphaned spans tolerated only across the kill/restart window.
//
// The suite is opt-in (CLUSTER_E2E=1, set by `make cluster-e2e`) because
// it builds race-instrumented binaries and runs for tens of seconds.
// CLUSTER_E2E_ARTIFACTS names a directory that receives every shard and
// router log plus the event-log segments and the stitched traces of the
// router's slowest requests, so a CI failure ships the whole cluster's
// state as artifacts.
package e2etest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"sigrec/internal/cluster"
	"sigrec/internal/corpus"
	"sigrec/internal/eventlog"
	"sigrec/internal/keccak"
	"sigrec/internal/obs"
	"sigrec/internal/server"
)

// proc is one spawned cluster process with its captured stderr log.
type proc struct {
	name string
	cmd  *exec.Cmd
	log  *os.File
}

func startProc(t *testing.T, name, bin string, logPath string, args ...string) *proc {
	t.Helper()
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", logPath, err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		f.Close()
		t.Fatalf("start %s: %v", name, err)
	}
	return &proc{name: name, cmd: cmd, log: f}
}

// stop terminates the process gracefully (SIGTERM, bounded wait).
func (p *proc) stop(t *testing.T) {
	t.Helper()
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
		t.Errorf("%s did not drain within 30s; killed", p.name)
	}
	p.log.Close()
}

// kill SIGKILLs the process — the crash under test, nothing graceful.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill %s: %v", p.name, err)
	}
	_, _ = p.cmd.Process.Wait()
	p.log.Close()
}

// pickAddr reserves a free loopback port and releases it for the child
// process to claim.
func pickAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// buildBinaries compiles sigrecd and sigrec-router (race-instrumented,
// like the test itself) into dir.
func buildBinaries(t *testing.T, dir string) (sigrecd, router string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	sigrecd = filepath.Join(dir, "sigrecd")
	router = filepath.Join(dir, "sigrec-router")
	for bin, pkg := range map[string]string{sigrecd: "./cmd/sigrecd", router: "./cmd/sigrec-router"} {
		cmd := exec.Command("go", "build", "-race", "-o", bin, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return sigrecd, router
}

// recoverResult is the client-side record of one routed recovery.
type recoverResult struct {
	status    int
	winID     string // upstream attempt id echoed by the router
	shard     string // X-Sigrec-Shard of the winner
	functions int
	// stamp is the global completion order (1-based); joined against the
	// kill stamp during reconciliation.
	stamp int64
}

// postRecover sends one bytecode through a router/shard base URL,
// retrying transient failures (transport errors, 429/502/503/504) a few
// times — exactly what a well-behaved client does while a shard is being
// killed under it.
func postRecover(client *http.Client, baseURL, hexBody, id string) (recoverResult, error) {
	var last error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 300 * time.Millisecond)
		}
		req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/recover", strings.NewReader(hexBody))
		if err != nil {
			return recoverResult{}, err
		}
		req.Header.Set("X-Request-Id", id)
		resp, err := client.Do(req)
		if err != nil {
			last = err
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			last = rerr
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var rr server.RecoverResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				return recoverResult{}, fmt.Errorf("%s: bad response body: %w", id, err)
			}
			return recoverResult{
				status:    resp.StatusCode,
				winID:     resp.Header.Get("X-Request-Id"),
				shard:     resp.Header.Get("X-Sigrec-Shard"),
				functions: len(rr.Functions),
			}, nil
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			last = fmt.Errorf("%s: shard answered %d: %s", id, resp.StatusCode, body)
			continue
		default:
			return recoverResult{}, fmt.Errorf("%s: status %d: %s", id, resp.StatusCode, body)
		}
	}
	return recoverResult{}, fmt.Errorf("%s: retries exhausted: %w", id, last)
}

// scrapeSum sums one metric series over several /metrics endpoints.
func scrapeSum(t *testing.T, client *http.Client, series string, urls ...string) float64 {
	t.Helper()
	var sum float64
	for _, u := range urls {
		resp, err := client.Get(u + "/metrics")
		if err != nil {
			t.Fatalf("scrape %s: %v", u, err)
		}
		m, err := cluster.ParseExposition(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("parse %s metrics: %v", u, err)
		}
		sum += m[series]
	}
	return sum
}

// uniqueCode derives a fresh bytecode from a corpus contract by appending
// a tag after the runtime code. The suffix is unreachable, so recovery
// cost and output are unchanged while the keccak cache/ring key is unique.
func uniqueCode(base []byte, tag int) string {
	code := make([]byte, len(base), len(base)+4)
	copy(code, base)
	code = append(code, 0xfe, byte(tag>>16), byte(tag>>8), byte(tag))
	return fmt.Sprintf("0x%x", code)
}

func TestClusterE2E(t *testing.T) {
	if os.Getenv("CLUSTER_E2E") == "" {
		t.Skip("cluster e2e is opt-in: run via `make cluster-e2e` (CLUSTER_E2E=1)")
	}
	artifacts := os.Getenv("CLUSTER_E2E_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("artifacts: %s", artifacts)

	sigrecdBin, routerBin := buildBinaries(t, t.TempDir())
	client := &http.Client{Timeout: 60 * time.Second}

	// --- topology: 3 shards + 1 router ---

	shardIDs := []string{"s1", "s2", "s3"}
	addrs := map[string]string{}
	urls := map[string]string{}
	for _, id := range shardIDs {
		addrs[id] = pickAddr(t)
		urls[id] = "http://" + addrs[id]
	}
	eventLog := func(name string) string { return filepath.Join(artifacts, name+".events.ndjson") }
	peersOf := func(self string) string {
		var parts []string
		for _, id := range shardIDs {
			if id != self {
				parts = append(parts, id+"="+urls[id])
			}
		}
		return strings.Join(parts, ",")
	}
	startShard := func(id, logName string) *proc {
		return startProc(t, id, sigrecdBin, filepath.Join(artifacts, logName+".log"),
			"-addr", addrs[id],
			"-shard-id", id,
			"-peers", peersOf(id),
			"-event-log", eventLog(logName),
			// The persistent result store is keyed by shard id, not by
			// incarnation: a restarted shard reopens its predecessor's
			// segments and must serve its working set warm from disk.
			"-store-dir", filepath.Join(artifacts, id+".store"),
			// Trace reconciliation reads every request's recovery tree back
			// out of the flight recorder, so it must retain the whole load.
			"-trace-slowest", "4096",
			"-log-format", "json",
			"-drain", "10s",
		)
	}

	shards := map[string]*proc{}
	for _, id := range shardIDs {
		shards[id] = startShard(id, id)
	}
	stopped := map[string]bool{}
	defer func() {
		for id, p := range shards {
			if !stopped[id] {
				p.stop(t)
			}
		}
	}()

	shardSpec := strings.Join([]string{
		"s1=" + urls["s1"], "s2=" + urls["s2"], "s3=" + urls["s3"],
	}, ",")
	routerAddr := pickAddr(t)
	routerURL := "http://" + routerAddr
	// The primary router hedges nothing: reconciliation phase A must map
	// every computed recovery to exactly one client attempt.
	router := startProc(t, "router", routerBin, filepath.Join(artifacts, "router.log"),
		"-addr", routerAddr,
		"-shards", shardSpec,
		"-hedge=false",
		"-health-interval", "100ms",
		// Big enough that the 100ms health-poll records cannot evict the
		// load's route records over the suite's whole runtime.
		"-trace-slowest", "16384",
		"-log-format", "json",
	)
	routerStopped := false
	defer func() {
		if !routerStopped {
			router.stop(t)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, id := range shardIDs {
		if err := cluster.WaitReady(ctx, client, urls[id]+"/healthz"); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.WaitReady(ctx, client, routerURL+"/healthz"); err != nil {
		t.Fatal(err)
	}
	// Load must not start until the router's health poller has discovered
	// the whole pool — otherwise early requests divert around a shard the
	// first poll round raced, and the warm set lands on the wrong owners.
	if err := cluster.WaitPoolHealthy(ctx, client, routerURL+"/healthz", len(shardIDs)); err != nil {
		t.Fatal(err)
	}

	// --- corpus ---

	c, err := corpus.Generate(corpus.Config{Seed: 29, Solidity: 10, Vyper: 2, MaxParams: 3})
	if err != nil {
		t.Fatal(err)
	}
	entries := c.Entries
	codeFor := func(tag int) string { return uniqueCode(entries[tag%len(entries)].Code, tag) }

	shardMetricURLs := []string{urls["s1"], urls["s2"], urls["s3"]}
	replayWarm := func(prefix string) {
		for i := 0; i < 60; i++ {
			res, err := postRecover(client, routerURL, codeFor(100000+i), fmt.Sprintf("%s-%03d", prefix, i))
			if err != nil {
				t.Fatalf("warm replay %s-%03d: %v", prefix, i, err)
			}
			if res.functions == 0 {
				t.Fatalf("warm replay %s-%03d: no functions recovered", prefix, i)
			}
		}
	}

	// --- phase B: warm the cluster, measure the steady-state hit rate ---

	replayWarm("phb1") // populate
	h0 := scrapeSum(t, client, "sigrec_cache_hits_total", shardMetricURLs...)
	replayWarm("phb2") // should be served from shard caches
	h1 := scrapeSum(t, client, "sigrec_cache_hits_total", shardMetricURLs...)
	preKillHitRate := (h1 - h0) / 60
	if preKillHitRate < 0.9 {
		t.Fatalf("pre-kill warm hit rate = %.2f, want >= 0.9", preKillHitRate)
	}
	t.Logf("pre-kill warm hit rate: %.2f", preKillHitRate)

	// Routed batch smoke: the same warm set through the router's NDJSON
	// endpoint must come back complete and error-free.
	var batchIn bytes.Buffer
	for i := 0; i < 60; i++ {
		batchIn.WriteString(codeFor(100000+i) + "\n")
	}
	req, _ := http.NewRequest(http.MethodPost, routerURL+"/v1/recover/batch", &batchIn)
	req.Header.Set("X-Request-Id", "phb-batch")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var br server.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &br); err != nil {
			t.Fatalf("batch line %q: %v", sc.Text(), err)
		}
		if br.Error != "" {
			t.Fatalf("batch item %d failed: %s", br.Index, br.Error)
		}
		lines++
	}
	resp.Body.Close()
	if lines != 60 {
		t.Fatalf("batch returned %d lines, want 60", lines)
	}

	// --- phase A: concurrent unique load with a SIGKILL mid-flight ---

	const (
		phaseATotal = 240
		batchSize   = 80
		workers     = 16
	)
	var (
		mu        sync.Mutex
		results   = map[string]recoverResult{} // base id -> outcome
		completed atomic.Int64
		killStamp atomic.Int64
	)
	runBatch := func(start, end int, onComplete func(done int64)) {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					base := fmt.Sprintf("pha-%03d", i)
					res, err := postRecover(client, routerURL, codeFor(i), base)
					if err != nil {
						t.Errorf("%s: %v", base, err)
						continue
					}
					res.stamp = completed.Add(1)
					mu.Lock()
					results[base] = res
					mu.Unlock()
					if onComplete != nil {
						onComplete(res.stamp)
					}
				}
			}()
		}
		for i := start; i < end; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
	}

	runBatch(0, batchSize, nil)

	// Batch 2 runs while s2 is SIGKILLed under it: once a sliver of the
	// batch has completed, the shard dies with requests in flight.
	var killOnce sync.Once
	killAfter := completed.Load() + 20
	runBatch(batchSize, 2*batchSize, func(done int64) {
		if done >= killAfter {
			killOnce.Do(func() {
				killStamp.Store(done)
				t.Logf("SIGKILL s2 after %d completions", done)
				shards["s2"].kill(t)
			})
		}
	})
	if killStamp.Load() == 0 {
		t.Fatal("kill never fired")
	}

	// Restart s2 on the same address with a fresh event log, wait until
	// it serves, then finish the load with the full pool back.
	shards["s2"] = startShard("s2", "s2-restarted")
	if err := cluster.WaitReady(ctx, client, urls["s2"]+"/healthz"); err != nil {
		t.Fatalf("restarted s2 never became ready: %v", err)
	}
	// Wait until the router has re-admitted the restarted shard, so the
	// final batch exercises the full pool again.
	if err := cluster.WaitPoolHealthy(ctx, client, routerURL+"/healthz", len(shardIDs)); err != nil {
		t.Fatalf("restarted s2 never rejoined the router pool: %v", err)
	}
	runBatch(2*batchSize, phaseATotal, nil)

	if t.Failed() {
		t.Fatal("phase A had failed recoveries; skipping reconciliation")
	}
	if len(results) != phaseATotal {
		t.Fatalf("phase A completed %d/%d recoveries", len(results), phaseATotal)
	}

	// --- phase B': warm start straight from the disk store ---

	// The restarted s2 reopened its predecessor's -store-dir, so the VERY
	// FIRST replay of the warm set after the restart must already be served
	// warm: hit rate >= 0.9 with zero recomputation (no TASE paths
	// explored) and zero peer refill — s2's own disk answers before the
	// fill hook is ever consulted.
	fills0w := scrapeSum(t, client, "sigrec_cache_fill_hits_total", shardMetricURLs...)
	fillMiss0w := scrapeSum(t, client, "sigrec_cache_fill_misses_total", shardMetricURLs...)
	paths0w := scrapeSum(t, client, "sigrec_tase_paths_explored_total", shardMetricURLs...)
	store0w := scrapeSum(t, client, "sigrec_store_hits_total", urls["s2"])
	h2 := scrapeSum(t, client, "sigrec_cache_hits_total", shardMetricURLs...)
	replayWarm("phb3")
	h3 := scrapeSum(t, client, "sigrec_cache_hits_total", shardMetricURLs...)
	postHitRate := (h3 - h2) / 60
	if postHitRate < 0.9 {
		t.Fatalf("first-replay warm hit rate after restart = %.2f, want >= 0.9 (pre-kill %.2f)", postHitRate, preKillHitRate)
	}
	t.Logf("first-replay warm hit rate after restart: %.2f", postHitRate)
	if d := scrapeSum(t, client, "sigrec_tase_paths_explored_total", shardMetricURLs...) - paths0w; d != 0 {
		t.Errorf("warm replay after restart recomputed (%.0f TASE paths explored)", d)
	}
	if d := scrapeSum(t, client, "sigrec_cache_fill_hits_total", shardMetricURLs...) - fills0w; d != 0 {
		t.Errorf("warm replay after restart refilled from peers (%.0f fill hits); the disk store must answer first", d)
	}
	if d := scrapeSum(t, client, "sigrec_cache_fill_misses_total", shardMetricURLs...) - fillMiss0w; d != 0 {
		t.Errorf("warm replay after restart consulted the peer-fill hook %.0f times; the disk store must answer first", d)
	}
	if d := scrapeSum(t, client, "sigrec_store_hits_total", urls["s2"]) - store0w; d < 1 {
		t.Errorf("restarted s2 served %.0f results from its disk store, want >= 1", d)
	}
	// Second replay: the disk hits were promoted, so the set stays warm
	// from memory.
	replayWarm("phb4")
	h4 := scrapeSum(t, client, "sigrec_cache_hits_total", shardMetricURLs...)
	if rate := (h4 - h3) / 60; rate < 0.9 {
		t.Fatalf("promoted warm hit rate = %.2f, want >= 0.9", rate)
	}
	if got := scrapeSum(t, client, "sigrec_recoveries_total", urls["s2"]); got == 0 {
		t.Error("restarted s2 never ran a recovery — not rejoined the pool")
	}

	// --- peer cache fill, across real processes ---

	ring := cluster.NewRing(0)
	for _, id := range shardIDs {
		ring.Add(id)
	}
	fillTag := 0
	for tag := 200000; ; tag++ {
		code, err := server.ParseBytecode([]byte(codeFor(tag)))
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := ring.Owner(keccak.Sum256(code)); owner == "s1" {
			fillTag = tag
			break
		}
	}
	// Warm the owner directly, then hit a non-owner directly: it must
	// adopt the owner's cached result instead of recomputing.
	if _, err := postRecover(client, urls["s1"], codeFor(fillTag), "phd-owner"); err != nil {
		t.Fatal(err)
	}
	fills0 := scrapeSum(t, client, "sigrec_cache_fill_hits_total", urls["s3"])
	recov0 := scrapeSum(t, client, "sigrec_recoveries_total", urls["s3"])
	if _, err := postRecover(client, urls["s3"], codeFor(fillTag), "phd-peer"); err != nil {
		t.Fatal(err)
	}
	if got := scrapeSum(t, client, "sigrec_cache_fill_hits_total", urls["s3"]) - fills0; got != 1 {
		t.Errorf("peer fill hits delta = %.0f, want 1", got)
	}
	if got := scrapeSum(t, client, "sigrec_recoveries_total", urls["s3"]) - recov0; got != 0 {
		t.Errorf("non-owner recomputed (%.0f recoveries) despite peer fill", got)
	}

	// --- phase C: hedging, on a second router with an aggressive clamp ---

	hedgeAddr := pickAddr(t)
	hedgeURL := "http://" + hedgeAddr
	hedgeRouter := startProc(t, "router-hedge", routerBin, filepath.Join(artifacts, "router-hedge.log"),
		"-addr", hedgeAddr,
		"-shards", shardSpec,
		"-hedge=true",
		"-hedge-min", "200us",
		"-hedge-max", "200us",
		"-health-interval", "100ms",
		"-trace-slowest", "4096",
		"-log-format", "json",
	)
	if err := cluster.WaitReady(ctx, client, hedgeURL+"/healthz"); err != nil {
		hedgeRouter.stop(t)
		t.Fatal(err)
	}
	var hwg sync.WaitGroup
	for i := 0; i < 60; i++ {
		hwg.Add(1)
		go func(i int) {
			defer hwg.Done()
			if _, err := postRecover(client, hedgeURL, codeFor(300000+i), fmt.Sprintf("phc-%03d", i)); err != nil {
				t.Errorf("hedged request %d: %v", i, err)
			}
		}(i)
	}
	hwg.Wait()
	hedgesFired := scrapeSum(t, client, "cluster_router_hedges_fired_total", hedgeURL)
	if hedgesFired == 0 {
		t.Error("no hedges fired despite a 200us clamp under concurrent load")
	}
	hedgesWon := scrapeSum(t, client, "cluster_router_hedges_won_total", hedgeURL)
	t.Logf("hedges fired: %.0f, won: %.0f", hedgesFired, hedgesWon)
	if hedgesWon > 0 {
		checkHedgeTraces(t, client, hedgeURL)
	}
	hedgeRouter.stop(t)

	// --- trace reconciliation, against the still-live fleet ---

	reconcileTraces(t, client, routerURL, results, killStamp.Load()+int64(workers))
	dumpSlowestTraces(t, client, routerURL, artifacts, 5)

	// --- drain everything, then reconcile the event logs ---

	router.stop(t)
	routerStopped = true
	for _, id := range shardIDs {
		shards[id].stop(t)
		stopped[id] = true
	}

	// Requests already in flight on s2 when the SIGKILL landed may have
	// completed client-side just after the kill stamp was taken; widen the
	// exemption window by the worker count to cover them.
	reconcile(t, results, killStamp.Load()+int64(workers), map[string]string{
		"s1":      eventLog("s1"),
		"s2-pre":  eventLog("s2"),
		"s2-post": eventLog("s2-restarted"),
		"s3":      eventLog("s3"),
	})
}

// reconcile joins the shards' durable event logs against the client-side
// record of phase A: every recovery the client saw succeed was computed
// somewhere (zero lost), no forwarded attempt was processed twice (zero
// duplicated), and any double-computed contract is explained by the
// killed shard.
func reconcile(t *testing.T, results map[string]recoverResult, killStamp int64, logs map[string]string) {
	t.Helper()
	type srcEvent struct {
		src string
		ev  eventlog.Event
	}
	var all []srcEvent
	for src, path := range logs {
		events, skipped, err := eventlog.ReadLog(path)
		if err != nil {
			t.Fatalf("read %s (%s): %v", src, path, err)
		}
		// Only the SIGKILLed segment may carry a torn final line.
		if skipped > 0 && src != "s2-pre" {
			t.Errorf("%s: %d undecodable lines in a cleanly closed log", src, skipped)
		}
		var lastSeq uint64
		for _, ev := range events {
			if ev.Seq <= lastSeq {
				t.Errorf("%s: event seq %d not ascending (prev %d)", src, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if strings.HasPrefix(ev.RequestID, "pha-") {
				all = append(all, srcEvent{src: src, ev: ev})
			}
		}
	}

	// Zero duplicated: a forwarded attempt id must never be processed by
	// two shards (or twice by one).
	attempts := map[string][]string{}
	eventsByBase := map[string][]srcEvent{}
	for _, se := range all {
		id := se.ev.RequestID
		attempts[id] = append(attempts[id], se.src)
		base, _, ok := strings.Cut(id, ".")
		if !ok {
			t.Errorf("%s: event request id %q has no attempt suffix", se.src, id)
			continue
		}
		if _, known := results[base]; !known {
			t.Errorf("%s: event for unknown base %q", se.src, base)
			continue
		}
		// Cross-process join key: the router derives every forwarded
		// attempt's trace id from the client's request id, so the shard's
		// durable event must carry exactly that derivation.
		if want := obs.DeriveTraceID(base); se.ev.TraceID != want {
			t.Errorf("%s: event %s trace id = %q, want %q", se.src, id, se.ev.TraceID, want)
		}
		eventsByBase[base] = append(eventsByBase[base], se)
	}
	for id, srcs := range attempts {
		if len(srcs) > 1 {
			t.Errorf("attempt %s processed %d times (%v)", id, len(srcs), srcs)
		}
	}

	// Zero lost: every client-confirmed recovery has at least one durable
	// event. The only exemption is a recovery served by s2 before the
	// SIGKILL — its event may sit in the dead process's last buffered
	// block, which is exactly what the crash is allowed to cost.
	lost, exempt, dups := 0, 0, 0
	for base, res := range results {
		evs := eventsByBase[base]
		if len(evs) == 0 {
			if res.shard == "s2" && res.stamp <= killStamp {
				exempt++
				continue
			}
			lost++
			t.Errorf("base %s (shard %s, stamp %d): no event in any log", base, res.shard, res.stamp)
			continue
		}
		if len(evs) > 1 {
			// A contract computed twice must be explained by the kill: one
			// of the computations has to be the one the crash orphaned.
			dups++
			inKilled := false
			for _, se := range evs {
				if se.src == "s2-pre" {
					inKilled = true
				}
			}
			if !inKilled {
				srcs := make([]string, len(evs))
				for i, se := range evs {
					srcs[i] = se.src + ":" + se.ev.RequestID
				}
				t.Errorf("base %s computed %d times with no copy on the killed shard: %v", base, len(evs), srcs)
			}
		}
	}
	t.Logf("reconciled %d recoveries: %d events, %d double-computed (kill-explained), %d kill-exempt, %d lost",
		len(results), len(all), dups, exempt, lost)
}

// fetchTrace pulls the stitched cross-process trace for a request or
// trace id from a live router or shard.
func fetchTrace(t *testing.T, client *http.Client, baseURL, id string) server.StitchedTrace {
	t.Helper()
	resp, err := client.Get(baseURL + "/debug/trace/" + id)
	if err != nil {
		t.Fatalf("fetch trace %s: %v", id, err)
	}
	defer resp.Body.Close()
	var st server.StitchedTrace
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch trace %s: status=%d err=%v", id, resp.StatusCode, err)
	}
	return st
}

// attrOf returns a span's string attribute (numeric attrs answer "").
func attrOf(sp obs.FlatSpan, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Str
		}
	}
	return ""
}

// reconcileTraces joins the router's stitched traces against the
// client-side record of phase A: every confirmed recovery's trace holds
// exactly one winning attempt span, on the shard that answered the
// client, with that shard's recovery tree nested under the attempt span
// id. The only tolerated gaps are requests served by s2 around the
// SIGKILL — the dead incarnation's flight recorder (unlike its event
// log) does not survive the crash, which is precisely what the stitched
// view's orphan counter exists to report.
func reconcileTraces(t *testing.T, client *http.Client, routerURL string, results map[string]recoverResult, killStamp int64) {
	t.Helper()
	checked, killExempt := 0, 0
	for base, res := range results {
		inKillWindow := res.shard == "s2" && res.stamp <= killStamp
		st := fetchTrace(t, client, routerURL, base)
		if want := obs.DeriveTraceID(base); st.TraceID != want {
			t.Fatalf("trace %s: stitched id %q, want %q", base, st.TraceID, want)
		}
		var winners []obs.FlatSpan
		for _, sp := range st.Spans {
			if sp.Name == "attempt" && attrOf(sp, "outcome") == "winner" {
				winners = append(winners, sp)
			}
		}
		if len(winners) != 1 {
			t.Errorf("trace %s: %d winning attempt spans, want exactly 1", base, len(winners))
			continue
		}
		win := winners[0]
		if got := attrOf(win, "shard"); got != res.shard {
			t.Errorf("trace %s: winning attempt on shard %q, client saw %q", base, got, res.shard)
		}
		recovered := false
		for _, sp := range st.Spans {
			if sp.Name != "recovery" || sp.ParentSpanID != win.SpanID {
				continue
			}
			recovered = true
			if sp.Service != res.shard {
				t.Errorf("trace %s: winner's recovery recorded by %q, want %q", base, sp.Service, res.shard)
			}
		}
		if !recovered {
			if inKillWindow {
				killExempt++
			} else {
				t.Errorf("trace %s: no recovery tree under the winning attempt (shard %s, stamp %d)", base, res.shard, res.stamp)
			}
		}
		if st.Orphans > 0 && !inKillWindow {
			t.Errorf("trace %s: %d orphaned spans outside the kill window", base, st.Orphans)
		}
		checked++
	}
	t.Logf("trace reconciliation: %d traces checked, %d kill-exempt gaps", checked, killExempt)
}

// checkHedgeTraces scans the hedge router's traces for the race the
// counters say happened: at least one request won by the hedge attempt,
// with the losing primary attempt present in the same trace and marked
// cancelled. The route record lands via a drainer goroutine after the
// client response, so the scan retries briefly.
func checkHedgeTraces(t *testing.T, client *http.Client, hedgeURL string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		foundWin, foundCancelled := false, false
		for i := 0; i < 60; i++ {
			st := fetchTrace(t, client, hedgeURL, fmt.Sprintf("phc-%03d", i))
			winKind, cancelled := "", false
			for _, sp := range st.Spans {
				if sp.Name != "attempt" {
					continue
				}
				switch attrOf(sp, "outcome") {
				case "winner":
					winKind = attrOf(sp, "kind")
				case "cancelled":
					cancelled = true
				}
			}
			if winKind == "hedge" {
				foundWin = true
				if cancelled {
					foundCancelled = true
				}
			}
		}
		if foundWin && foundCancelled {
			return
		}
		if time.Now().After(deadline) {
			if !foundWin {
				t.Error("hedges won per the counters, but no trace shows a hedge attempt winning")
			}
			if !foundCancelled {
				t.Error("no hedge-won trace carries its cancelled primary attempt")
			}
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// dumpSlowestTraces writes the stitched cross-process traces of the
// router's slowest client requests into the artifacts directory — the
// files CI ships when the gate fails, so a slow or broken run can be
// read span by span without re-running anything.
func dumpSlowestTraces(t *testing.T, client *http.Client, routerURL, dir string, n int) {
	t.Helper()
	resp, err := client.Get(routerURL + "/debug/slowest")
	if err != nil {
		t.Errorf("fetch router flight recorder: %v", err)
		return
	}
	var snap obs.Snapshot
	derr := json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if derr != nil {
		t.Errorf("decode router flight recorder: %v", derr)
		return
	}
	wrote := 0
	for _, rec := range snap.Slowest {
		if wrote >= n {
			break
		}
		// Health polls are retained too; the artifact wants client traffic.
		if rec.TraceID == "" || strings.HasPrefix(rec.RequestID, "poll-") {
			continue
		}
		st := fetchTrace(t, client, routerURL, rec.TraceID)
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			t.Errorf("marshal trace %s: %v", rec.TraceID, err)
			continue
		}
		wrote++
		path := filepath.Join(dir, fmt.Sprintf("slowest-%d-%s.trace.json", wrote, rec.RequestID))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Errorf("write %s: %v", path, err)
		}
	}
	t.Logf("wrote %d slowest stitched traces to %s", wrote, dir)
}
