package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sigrec/internal/keccak"
	"sigrec/internal/obs"
	"sigrec/internal/server"
	"sigrec/internal/telemetry"
)

// Router defaults applied by NewRouter for zero Config fields.
const (
	DefaultHedgeMultiplier = 1.0
	DefaultHedgeMin        = 2 * time.Millisecond
	DefaultHedgeMax        = 500 * time.Millisecond
	DefaultLoadFactor      = 1.25
	DefaultTimeout         = 10 * time.Second
	DefaultHealthInterval  = 500 * time.Millisecond
)

// ShardAddr names one backend: a stable shard id (the ring key) and the
// base URL its sigrecd listens on.
type ShardAddr struct {
	ID  string
	URL string
}

// Config sizes the router. The zero value is not servable: at least one
// shard is required.
type Config struct {
	// Shards is the backend pool. IDs must be unique; they are the ring
	// positions, so renaming a shard reshuffles its key slice.
	Shards []ShardAddr
	// VNodes is the virtual-node count per shard (<= 0 selects
	// DefaultVNodes).
	VNodes int
	// Timeout bounds one client request end to end, across every retry
	// and hedge (<= 0 selects DefaultTimeout).
	Timeout time.Duration
	// MaxBodyBytes caps a single-recover body and each batch line (<= 0
	// selects the serving layer's default).
	MaxBodyBytes int64
	// Hedge enables tail-latency hedging: when the shard serving a
	// request has not answered within its p95-derived delay, the same
	// request is fired at the ring successor and the first answer wins.
	Hedge bool
	// HedgeMultiplier scales the scraped p95 into the hedge delay
	// (<= 0 selects 1.0); HedgeMin/HedgeMax clamp it.
	HedgeMultiplier float64
	HedgeMin        time.Duration
	HedgeMax        time.Duration
	// BreakerFailures and BreakerCooldown configure each shard's circuit
	// breaker (defaults: 3 consecutive failures, 1s cooldown).
	BreakerFailures int
	BreakerCooldown time.Duration
	// HealthInterval is the shard health/stats poll period (<= 0 selects
	// DefaultHealthInterval).
	HealthInterval time.Duration
	// LoadFactor is the bounded-load factor c: a shard loaded past
	// c * mean inflight is skipped for its ring successor (<= 0 selects
	// 1.25; 1 disables the bound).
	LoadFactor float64
	// BatchConcurrency bounds in-flight upstream calls per batch request
	// (<= 0 selects 4 per shard).
	BatchConcurrency int
	// Registry receives the router metrics (nil allocates a private one).
	Registry *telemetry.Registry
	// Logger, when non-nil, receives one access-log record per request.
	Logger *slog.Logger
	// Tracer, when non-nil, records one span tree per routed request — the
	// route decision, every upstream attempt (primary/retry/hedge, with the
	// winner and cancelled losers marked), and the shard health polls — and
	// continues inbound W3C trace context so the router root joins the
	// client's trace. Nil keeps routing span-free at zero cost.
	Tracer *obs.Tracer
	// Transport overrides the upstream transport (tests).
	Transport http.RoundTripper
}

// routerMetrics is the router's instrument set; per-shard series are
// labeled families so one exposition shows the whole pool.
type routerMetrics struct {
	requests    *telemetry.Counter
	badInput    *telemetry.Counter
	errors      *telemetry.Counter
	retries     *telemetry.Counter
	hedgesFired *telemetry.Counter
	hedgesWon   *telemetry.Counter
	batches     *telemetry.Counter
	contracts   *telemetry.Counter
	latency     *telemetry.Histogram
	latencySum  *telemetry.Summary

	shardRequests *telemetry.CounterVec
	shardErrors   *telemetry.CounterVec
	shardHealthy  *telemetry.GaugeVec
	shardBreaker  *telemetry.GaugeVec
	shardInflight *telemetry.GaugeVec
	shardHedgeUS  *telemetry.GaugeVec

	// traceContext is the same sigrec_trace_context_total family the shards
	// expose, registered in the router's registry so inbound extraction is
	// metered at the fleet edge too.
	traceContext *telemetry.CounterVec
}

func newRouterMetrics(reg *telemetry.Registry, shards []ShardAddr) *routerMetrics {
	reg.SetHelp("cluster_router_hedges_fired_total", "Hedged requests launched after the owner shard exceeded its p95-derived delay")
	reg.SetHelp("cluster_router_hedges_won_total", "Hedged requests that answered before the primary")
	reg.SetHelp("cluster_router_retries_total", "Requests retried on the ring successor after a shard failure")
	reg.SetHelp("cluster_shard_breaker_state", "Per-shard circuit breaker: 0 closed, 1 open, 2 half-open")
	reg.SetHelp("cluster_shard_healthy", "Per-shard health-check result: 1 routable")
	m := &routerMetrics{
		requests:    reg.Counter("cluster_router_requests_total"),
		badInput:    reg.Counter("cluster_router_bad_input_total"),
		errors:      reg.Counter("cluster_router_errors_total"),
		retries:     reg.Counter("cluster_router_retries_total"),
		hedgesFired: reg.Counter("cluster_router_hedges_fired_total"),
		hedgesWon:   reg.Counter("cluster_router_hedges_won_total"),
		batches:     reg.Counter("cluster_router_batches_total"),
		contracts:   reg.Counter("cluster_router_batch_contracts_total"),
		latency:     reg.Histogram("cluster_router_duration_microseconds", nil),
		latencySum:  reg.Summary("cluster_router_latency_microseconds", nil),

		shardRequests: reg.CounterVec("cluster_shard_requests_total", "shard"),
		shardErrors:   reg.CounterVec("cluster_shard_errors_total", "shard"),
		shardHealthy:  reg.GaugeVec("cluster_shard_healthy", "shard"),
		shardBreaker:  reg.GaugeVec("cluster_shard_breaker_state", "shard"),
		shardInflight: reg.GaugeVec("cluster_shard_inflight", "shard"),
		shardHedgeUS:  reg.GaugeVec("cluster_shard_p95_microseconds", "shard"),

		traceContext: server.NewTraceContextMetric(reg),
	}
	for _, s := range shards {
		// Pre-register the labeled families so every shard is visible on
		// the exposition from startup, zeros included.
		m.shardRequests.With(s.ID)
		m.shardErrors.With(s.ID)
		m.shardHealthy.With(s.ID).Set(1)
		m.shardBreaker.With(s.ID).Set(BreakerClosed)
		m.shardInflight.With(s.ID)
	}
	return m
}

// Router is the stateless cluster front door: it owns no recovery state,
// only the ring, the shard pool views, and the retry/hedge policy — kill
// it and start another and nothing is lost.
type Router struct {
	cfg     Config
	ring    *Ring
	shards  map[string]*shard
	client  *http.Client
	m       *routerMetrics
	reg     *telemetry.Registry
	mux     *http.ServeMux
	logger  *slog.Logger
	attempt atomic.Uint64 // globally unique forwarded-attempt counter

	stop   context.CancelFunc
	pollWG sync.WaitGroup
}

// NewRouter builds a router over the configured shard pool and starts the
// health/stats pollers. Call Close to stop them.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = server.DefaultMaxBodyBytes
	}
	if cfg.HedgeMultiplier <= 0 {
		cfg.HedgeMultiplier = DefaultHedgeMultiplier
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = DefaultHedgeMax
	}
	if cfg.LoadFactor <= 0 {
		cfg.LoadFactor = DefaultLoadFactor
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.BatchConcurrency <= 0 {
		cfg.BatchConcurrency = 4 * len(cfg.Shards)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		shards: make(map[string]*shard, len(cfg.Shards)),
		client: &http.Client{Transport: cfg.Transport},
		reg:    cfg.Registry,
		m:      newRouterMetrics(cfg.Registry, cfg.Shards),
		logger: cfg.Logger,
	}
	for _, sa := range cfg.Shards {
		if sa.ID == "" || sa.URL == "" {
			return nil, fmt.Errorf("cluster: shard needs id and url (got %q=%q)", sa.ID, sa.URL)
		}
		if _, dup := rt.shards[sa.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", sa.ID)
		}
		sh := &shard{id: sa.ID, url: sa.URL, breaker: NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown)}
		sh.healthy.Store(true) // optimistic until the first poll; the breaker covers dead backends
		rt.shards[sa.ID] = sh
		rt.ring.Add(sa.ID)
	}
	var ctx context.Context
	ctx, rt.stop = context.WithCancel(context.Background())
	for _, sh := range rt.shards {
		rt.pollWG.Add(1)
		go rt.pollLoop(ctx, sh)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recover", rt.handleRecover)
	mux.HandleFunc("POST /v1/recover/batch", rt.handleBatch)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	// The router is the natural place to stitch a cross-process trace: it
	// fans /debug/trace/{id} out to every shard and merges their halves
	// with its own route/attempt spans.
	peers := make(map[string]string, len(cfg.Shards))
	for _, sa := range cfg.Shards {
		peers[sa.ID] = sa.URL
	}
	mux.Handle("GET /debug/trace/{id}", server.TraceHandler(server.TraceOptions{
		Service: "sigrec-router",
		Tracer:  cfg.Tracer,
		Peers:   peers,
		Client:  rt.client,
	}))
	mux.HandleFunc("GET /debug/slowest", rt.handleSlowest)
	rt.mux = mux
	return rt, nil
}

// Handler returns the root http.Handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Registry returns the router's metrics registry.
func (rt *Router) Registry() *telemetry.Registry { return rt.reg }

// Close stops the health pollers. In-flight requests finish normally.
func (rt *Router) Close() {
	rt.stop()
	rt.pollWG.Wait()
}

func (rt *Router) pollLoop(ctx context.Context, sh *shard) {
	defer rt.pollWG.Done()
	rt.pollOnce(ctx, sh)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.pollOnce(ctx, sh)
			rt.m.shardBreaker.With(sh.id).Set(sh.breaker.State())
		}
	}
}

// pollOnce runs one health/stats poll under a span root. The request id is
// the stable "poll-<shard>", so every retained poll of a shard shares one
// deterministic trace id — `/debug/trace/poll-s1` answers with the recent
// poll history of s1.
func (rt *Router) pollOnce(ctx context.Context, sh *shard) {
	_, rec := rt.cfg.Tracer.StartRoot(ctx, "shard.poll", "poll-"+sh.id, obs.SpanContext{})
	sh.poll(ctx, rt.client, rt.m)
	rec.SetStr("shard", sh.id)
	if sh.healthy.Load() {
		rec.SetInt("healthy", 1)
	} else {
		rec.SetInt("healthy", 0)
	}
	rec.SetInt("p95_us", sh.p95us.Load())
	rec.Finish(false, nil)
}

// --- GET /debug/slowest ---

func (rt *Router) handleSlowest(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.Tracer == nil {
		writeJSONError(w, http.StatusNotFound, "tracing disabled (start the router with a Tracer)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rt.cfg.Tracer.Recorder().Snapshot())
}

// candidates returns the shards to try for a key, in order: the
// bounded-load pick first, then the remaining ring sequence. Unhealthy
// shards are skipped unless the whole pool is unhealthy, in which case
// the raw sequence is returned — a health-poll outage must degrade to
// best effort, not a self-inflicted blackout.
func (rt *Router) candidates(key [32]byte) ([]*shard, string) {
	load := func(id string) int { return int(rt.shards[id].inflight.Load()) }
	pick, _ := rt.ring.PickBounded(key, load, rt.cfg.LoadFactor)
	seq := rt.ring.Sequence(key)
	owner := ""
	if len(seq) > 0 {
		owner = seq[0]
	}
	ordered := make([]*shard, 0, len(seq))
	if pick != "" && len(seq) > 0 && pick != seq[0] {
		ordered = append(ordered, rt.shards[pick])
	}
	for _, id := range seq {
		if id != pick || len(ordered) == 0 || ordered[0].id != pick {
			ordered = append(ordered, rt.shards[id])
		}
	}
	healthy := make([]*shard, 0, len(ordered))
	for _, sh := range ordered {
		if sh.healthy.Load() {
			healthy = append(healthy, sh)
		}
	}
	if len(healthy) == 0 {
		return ordered, owner
	}
	return healthy, owner
}

// attemptResult is one upstream attempt's outcome.
type attemptResult struct {
	shard     *shard
	status    int
	body      []byte
	requestID string // the attempt id the shard echoed
	err       error  // transport error
	retryable bool
	hedge     bool
	// span is this attempt's client span, created by the event loop before
	// launch and annotated by it (or the drainer) when the result lands —
	// the forwarding goroutine only carries the pointer, never touches it,
	// upholding the recovery's single-writer contract.
	span *obs.Span
}

// attemptIDs derives the forwarded X-Request-Id: the client's id extended
// with a globally unique attempt counter, so every forwarded attempt is
// individually joinable in the shards' event logs and no two attempts —
// across retries, hedges, or client resends — ever share an id.
func (rt *Router) attemptID(baseID string) string {
	return baseID + "." + strconv.FormatUint(rt.attempt.Add(1), 10)
}

// forward runs one upstream attempt and classifies the outcome for the
// breaker and the retry policy. attemptID is the pre-assigned forwarded
// X-Request-Id; traceID, when non-empty, travels as the outbound W3C
// traceparent with the attempt span's deterministic id as parent, so the
// shard's recovery tree nests under this exact attempt — tracer on or off,
// the header is always sent, keeping shard-side traces joinable.
func (rt *Router) forward(ctx context.Context, sh *shard, path string, body []byte, attemptID, traceID string, hedge bool) attemptResult {
	res := attemptResult{shard: sh, hedge: hedge}
	rt.m.shardRequests.With(sh.id).Inc()
	sh.inflight.Add(1)
	rt.m.shardInflight.With(sh.id).Set(sh.inflight.Load())
	defer func() {
		sh.inflight.Add(-1)
		rt.m.shardInflight.With(sh.id).Set(sh.inflight.Load())
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.url+path, bytes.NewReader(body))
	if err != nil {
		res.err, res.retryable = err, true
		return res
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Request-Id", attemptID)
	if traceID != "" {
		obs.Inject(req.Header, obs.SpanContext{TraceID: traceID, SpanID: obs.DeriveSpanID(attemptID), Sampled: true})
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = err
		if ctx.Err() != nil {
			// Our own context died — the request was abandoned (hedge race
			// lost, client gone, deadline). Not the shard's fault: no
			// breaker strike, no error count, no retry. Release the probe
			// slot in case this attempt was the half-open probe.
			sh.breaker.Abandon()
			return res
		}
		// Transport failure: connection refused, reset, timeout. The shard
		// gets a breaker strike and the request moves to the ring successor.
		res.retryable = true
		rt.m.shardErrors.With(sh.id).Inc()
		sh.breaker.Failure()
		rt.m.shardBreaker.With(sh.id).Set(sh.breaker.State())
		return res
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	res.requestID = resp.Header.Get("X-Request-Id")
	res.body, err = io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		res.err = err
		if ctx.Err() != nil {
			sh.breaker.Abandon()
			return res
		}
		res.retryable = true
		rt.m.shardErrors.With(sh.id).Inc()
		sh.breaker.Failure()
		rt.m.shardBreaker.With(sh.id).Set(sh.breaker.State())
		return res
	}
	switch {
	case resp.StatusCode == http.StatusBadGateway,
		resp.StatusCode == http.StatusServiceUnavailable,
		resp.StatusCode == http.StatusGatewayTimeout:
		// The shard is up but not serving (draining, overload collapse):
		// strike the breaker and try the successor.
		res.retryable = true
		rt.m.shardErrors.With(sh.id).Inc()
		sh.breaker.Failure()
	case resp.StatusCode == http.StatusTooManyRequests:
		// Shed by admission control: the shard is alive (no breaker
		// strike) but the successor may have capacity.
		res.retryable = true
	default:
		// 2xx, client errors, and deterministic 500s are final — a parse
		// error or compute failure will not improve on another shard.
		sh.breaker.Success()
	}
	rt.m.shardBreaker.With(sh.id).Set(sh.breaker.State())
	return res
}

// do routes one recovery to the cluster: bounded-load owner first, hedged
// after the owner's p95-derived delay, retried on the ring successor when
// a shard is down. Returns the winning upstream response or the last
// failure.
//
// rec, when non-nil, receives the route's span tree: a "route.decide" span
// for the ring decision, one "attempt" span per upstream try (primary,
// retry, or hedge — breaker-open skips included as zero-work spans), the
// winner marked and racing losers marked cancelled. Each attempt span's id
// is pinned to DeriveSpanID(attemptID) — the same id forward injects as
// the outbound traceparent — so the shard's recovery tree parents under
// the exact attempt that carried it. do owns rec end to end, including
// Finish: when the winner returns while losers are still in flight, the
// recovery is handed to a drainer goroutine that annotates the stragglers
// and finishes the tree (the sequential handoff the obs contract allows).
func (rt *Router) do(ctx context.Context, key [32]byte, body []byte, baseID string, rec *obs.Recovery, traceID string) (attemptResult, bool) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	dsp := rec.Span("route.decide")
	cands, owner := rt.candidates(key)
	if len(cands) > 0 {
		dsp.SetStr("owner", owner)
		dsp.SetStr("picked", cands[0].id)
		if cands[0].id != owner {
			dsp.SetInt("diverted", 1)
		}
		dsp.SetInt("candidates", int64(len(cands)))
	}
	dsp.End()
	results := make(chan attemptResult, len(cands))
	next := 0
	inflight := 0
	attempts := 0

	// annotate closes one attempt span with its outcome. Only the goroutine
	// currently owning rec (event loop, then drainer) calls it.
	annotate := func(res attemptResult, outcome string) {
		sp := res.span
		if sp == nil {
			return
		}
		if res.status != 0 {
			sp.SetInt("status", int64(res.status))
		}
		if res.err != nil {
			sp.SetStr("err", res.err.Error())
		}
		sp.SetStr("outcome", outcome)
		sp.End()
	}
	// loserOutcome classifies a non-winning attempt for its span.
	loserOutcome := func(res attemptResult) string {
		switch {
		case res.err != nil && ctx.Err() != nil:
			return "cancelled"
		case res.err != nil:
			return "error"
		case res.status == http.StatusTooManyRequests:
			return "shed"
		default:
			return "retryable"
		}
	}
	// finish closes the route recovery; when losers are still in flight it
	// hands rec to a drainer that marks them cancelled first. The results
	// channel is buffered past the attempt count, so undrained losers never
	// leak a goroutine even when rec is nil and no drainer runs.
	finish := func(remaining int, err error) {
		if rec == nil {
			return
		}
		if remaining == 0 {
			rec.Finish(false, err)
			return
		}
		go func() {
			for i := 0; i < remaining; i++ {
				annotate(<-results, "cancelled")
			}
			rec.Finish(false, err)
		}()
	}

	// launch starts the next breaker-admitted candidate; returns false
	// when the pool is exhausted. Runs only on the event-loop goroutine,
	// which keeps span creation single-writer; the forwarding goroutine
	// carries the span pointer back through the results channel untouched.
	launch := func(hedge bool) bool {
		for next < len(cands) {
			sh := cands[next]
			next++
			kind := "retry"
			if hedge {
				kind = "hedge"
			} else if attempts == 0 {
				kind = "primary"
			}
			if !sh.breaker.Allow() {
				sp := rec.Span("attempt")
				sp.SetStr("shard", sh.id)
				sp.SetStr("kind", kind)
				sp.SetStr("outcome", "breaker_open")
				sp.End()
				continue
			}
			attempts++
			id := rt.attemptID(baseID)
			sp := rec.Span("attempt")
			sp.SetStr("shard", sh.id)
			sp.SetStr("attempt_id", id)
			sp.SetStr("kind", kind)
			sp.SetSpanID(obs.DeriveSpanID(id))
			inflight++
			go func() {
				r := rt.forward(ctx, sh, "/v1/recover", body, id, traceID, hedge)
				r.span = sp
				results <- r
			}()
			return true
		}
		return false
	}

	if !launch(false) {
		rec.SetStr("outcome", "no_shard")
		finish(0, nil)
		return attemptResult{}, false
	}
	var last attemptResult
	hedged := false
	for inflight > 0 {
		// Arm the hedge timer only while exactly one attempt is out, the
		// pool has a successor left, and we have not hedged yet.
		var hedgeC <-chan time.Time
		var hedgeT *time.Timer
		if rt.cfg.Hedge && !hedged && inflight == 1 && next < len(cands) {
			d := cands[next-1].hedgeDelay(rt.cfg.HedgeMultiplier, rt.cfg.HedgeMin, rt.cfg.HedgeMax)
			hedgeT = time.NewTimer(d)
			hedgeC = hedgeT.C
		}
		select {
		case res := <-results:
			if hedgeT != nil {
				hedgeT.Stop()
			}
			inflight--
			if res.retryable || res.err != nil {
				annotate(res, loserOutcome(res))
				last = res
				if inflight == 0 {
					rt.m.retries.Inc()
					if !launch(false) {
						rec.SetStr("outcome", "exhausted")
						finish(0, last.err)
						return last, false
					}
				}
				continue
			}
			// Final answer: first one wins, racing attempts are cancelled.
			if res.hedge {
				rt.m.hedgesWon.Inc()
			}
			annotate(res, "winner")
			if res.shard != nil {
				rec.SetStr("shard", res.shard.id)
			}
			rec.SetInt("status", int64(res.status))
			cancel()
			finish(inflight, nil)
			return res, true
		case <-hedgeC:
			hedged = true
			if launch(true) {
				rt.m.hedgesFired.Inc()
			}
		case <-ctx.Done():
			if hedgeT != nil {
				hedgeT.Stop()
			}
			rec.SetStr("outcome", "timeout")
			finish(inflight, ctx.Err())
			return attemptResult{err: ctx.Err()}, false
		}
	}
	finish(0, last.err)
	return last, false
}

// --- POST /v1/recover ---

func (rt *Router) handleRecover(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.m.requests.Inc()
	defer func() {
		us := uint64(time.Since(start).Microseconds())
		rt.m.latency.Observe(us)
		rt.m.latencySum.Observe(us)
	}()

	baseID := clientRequestID(r)
	parent := rt.extractTraceContext(r)
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.m.badInput.Inc()
		writeJSONError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	code, err := server.ParseBytecode(raw)
	if err != nil {
		rt.m.badInput.Inc()
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := keccak.Sum256(code)
	body := []byte(fmt.Sprintf("0x%x", code))
	ctx, rec := rt.cfg.Tracer.StartRoot(r.Context(), "route", baseID, parent)
	res, ok := rt.do(ctx, key, body, baseID, rec, routeTraceID(parent, baseID))
	rt.logRequest(r, baseID, res, start)
	if !ok {
		rt.m.errors.Inc()
		status := http.StatusBadGateway
		msg := "no shard available"
		if res.err != nil {
			msg = res.err.Error()
			if res.err == context.DeadlineExceeded {
				status = http.StatusGatewayTimeout
			}
		} else if res.status != 0 {
			// Give the client the shard's own verdict (e.g. 429 + body).
			status = res.status
		}
		if res.body != nil {
			relayUpstream(w, res)
			return
		}
		writeJSONError(w, status, msg)
		return
	}
	relayUpstream(w, res)
}

// relayUpstream writes the winning shard response through to the client,
// preserving the attempt request id so logs and event-log records join.
func relayUpstream(w http.ResponseWriter, res attemptResult) {
	if res.requestID != "" {
		w.Header().Set("X-Request-Id", res.requestID)
	}
	if res.shard != nil {
		w.Header().Set("X-Sigrec-Shard", res.shard.id)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// --- POST /v1/recover/batch ---

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.m.batches.Inc()
	baseID := clientRequestID(r)
	parent := rt.extractTraceContext(r)
	traceID := routeTraceID(parent, baseID)
	w.Header().Set("X-Request-Id", baseID)
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	ctx := r.Context()
	out := make(chan server.BatchResult, rt.cfg.BatchConcurrency)
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		defer wg.Wait()
		sem := make(chan struct{}, rt.cfg.BatchConcurrency)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64<<10), int(rt.cfg.MaxBodyBytes))
		idx := 0
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			i := idx
			idx++
			rt.m.contracts.Inc()
			code, perr := server.ParseBytecode(line)
			if perr != nil {
				rt.m.badInput.Inc()
				out <- server.BatchResult{Index: i, Error: perr.Error()}
				continue
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				out <- server.BatchResult{Index: i, Error: ctx.Err().Error()}
				continue
			}
			wg.Add(1)
			go func(i int, code []byte) {
				defer wg.Done()
				defer func() { <-sem }()
				key := keccak.Sum256(code)
				body := []byte(fmt.Sprintf("0x%x", code))
				// Every item gets its own route recovery (single-writer),
				// all sharing the batch's trace id — one trace per client
				// batch, one route tree per contract.
				ictx, irec := rt.cfg.Tracer.StartRoot(ctx, "route", baseID, parent)
				irec.SetInt("batch_index", int64(i))
				res, ok := rt.do(ictx, key, body, baseID, irec, traceID)
				out <- batchLine(i, res, ok)
			}(i, code)
		}
		if err := sc.Err(); err != nil {
			rt.m.badInput.Inc()
			out <- server.BatchResult{Index: idx, Error: "read body: " + err.Error()}
		}
	}()

	enc := json.NewEncoder(w)
	clientGone := false
	items := 0
	for br := range out {
		items++
		if clientGone {
			continue
		}
		if err := enc.Encode(br); err != nil {
			clientGone = true
			continue
		}
		_ = rc.Flush()
	}
	if rt.logger != nil {
		rt.logger.LogAttrs(r.Context(), slog.LevelInfo, "batch",
			slog.String("request_id", baseID),
			slog.Int("items", items),
			slog.Int64("duration_us", time.Since(start).Microseconds()))
	}
}

// batchLine folds one routed item into a batch wire line.
func batchLine(i int, res attemptResult, ok bool) server.BatchResult {
	if !ok {
		msg := "no shard available"
		if res.err != nil {
			msg = res.err.Error()
		} else if len(res.body) > 0 {
			var e struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(res.body, &e) == nil && e.Error != "" {
				msg = e.Error
			}
		}
		return server.BatchResult{Index: i, Error: msg}
	}
	if res.status != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := fmt.Sprintf("shard answered %d", res.status)
		if json.Unmarshal(res.body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return server.BatchResult{Index: i, Error: msg}
	}
	var rr server.RecoverResponse
	if err := json.Unmarshal(res.body, &rr); err != nil {
		return server.BatchResult{Index: i, Error: "malformed shard response: " + err.Error()}
	}
	return server.BatchResult{Index: i, Functions: rr.Functions, Truncated: rr.Truncated}
}

// --- GET /metrics ---

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = rt.reg.Snapshot().WriteTo(w)
}

// --- GET /healthz ---

// shardHealth is one pool entry in the router's health response.
type shardHealth struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Breaker  int64  `json:"breaker"`
	Inflight int64  `json:"inflight"`
	P95US    int64  `json:"p95_us,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ids := make([]string, 0, len(rt.shards))
	for id := range rt.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	pool := make([]shardHealth, 0, len(ids))
	anyHealthy := false
	for _, id := range ids {
		sh := rt.shards[id]
		h := sh.healthy.Load()
		anyHealthy = anyHealthy || h
		pool = append(pool, shardHealth{
			ID: id, URL: sh.url, Healthy: h,
			Breaker: sh.breaker.State(), Inflight: sh.inflight.Load(),
			P95US: sh.p95us.Load(),
		})
	}
	status := http.StatusOK
	state := "ok"
	if !anyHealthy {
		status = http.StatusServiceUnavailable
		state = "no healthy shards"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"status": state, "shards": pool})
}

// --- plumbing ---

// clientRequestID resolves the client-facing base id, reusing the same
// sanitization as the serving layer.
func clientRequestID(r *http.Request) string {
	return server.EnsureRequestIDString(r.Header.Get("X-Request-Id"))
}

// extractTraceContext reads the inbound W3C trace context under the same
// policy as the serving layer: malformed means a fresh root, never an
// error, and every disposition moves sigrec_trace_context_total.
func (rt *Router) extractTraceContext(r *http.Request) obs.SpanContext {
	sc, result := obs.Extract(r.Header)
	rt.m.traceContext.With(result).Inc()
	return sc
}

// routeTraceID resolves the trace id the whole routed request travels
// under: the client's when a valid traceparent came in, the deterministic
// request-id derivation otherwise — the same id StartRoot pins on the
// route recovery, so router spans, shard spans, and wide events all join.
func routeTraceID(parent obs.SpanContext, baseID string) string {
	if parent.Valid() {
		return parent.TraceID
	}
	return obs.DeriveTraceID(baseID)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (rt *Router) logRequest(r *http.Request, baseID string, res attemptResult, start time.Time) {
	if rt.logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", res.status),
		slog.Int64("duration_us", time.Since(start).Microseconds()),
		slog.String("request_id", baseID),
	}
	if res.shard != nil {
		attrs = append(attrs, slog.String("shard", res.shard.id))
	}
	if res.err != nil {
		attrs = append(attrs, slog.String("err", res.err.Error()))
	}
	level := slog.LevelInfo
	if res.err != nil || res.status >= 500 {
		level = slog.LevelError
	}
	rt.logger.LogAttrs(r.Context(), level, "route", attrs...)
}
