package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sigrec/internal/corpus"
	"sigrec/internal/obs"
	"sigrec/internal/server"
)

// benchCode returns a unique full-recovery input per iteration: the base
// contract with an unreachable suffix appended, so every request misses
// the cache and runs the whole pipeline while the recovery cost itself
// stays constant.
func benchCode(base []byte, i int) string {
	code := make([]byte, len(base), len(base)+4)
	copy(code, base)
	code = append(code, 0xfe, byte(i>>16), byte(i>>8), byte(i))
	return fmt.Sprintf("0x%x", code)
}

func benchEntry(b *testing.B) []byte {
	b.Helper()
	// The largest 10-function synthesized contract in the corpus: the
	// recovery is a realistic multi-millisecond unit of work, so the
	// measured delta between direct and proxied isolates the router hop
	// as a fraction of real serving latency rather than of HTTP noise.
	entries, err := corpus.GenerateSynthesized(17)
	if err != nil {
		b.Fatal(err)
	}
	code := entries[0].Code
	for _, e := range entries {
		if len(e.Code) > len(code) {
			code = e.Code
		}
	}
	return code
}

func benchShard(b *testing.B) *httptest.Server {
	b.Helper()
	srv := server.New(server.Config{Workers: 4, QueueDepth: 256, CacheEntries: 1 << 16})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func runRecoverBench(b *testing.B, url string, base []byte) {
	b.Helper()
	client := &http.Client{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(url+"/v1/recover", "text/plain", strings.NewReader(benchCode(base, i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkRouterOverheadDirect is the A side of the router-overhead A/B:
// full recoveries straight against one sigrecd serving layer.
func BenchmarkRouterOverheadDirect(b *testing.B) {
	runRecoverBench(b, benchShard(b).URL, benchEntry(b))
}

// BenchmarkRouterOverheadProxied is the B side: the same recoveries with
// sigrec-router in front of the single shard. The bench-gate holds the
// proxied ns/op within 10% of direct — the router hop must stay noise
// next to a real recovery.
func BenchmarkRouterOverheadProxied(b *testing.B) {
	shard := benchShard(b)
	rt, err := NewRouter(Config{Shards: []ShardAddr{{ID: "s1", URL: shard.URL}}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)
	runRecoverBench(b, front.URL, benchEntry(b))
}

// benchTracedRouter routes full recoveries through a single-shard router
// with the given tracer — nil for the A side, a live recorder for the B
// side — so the pair isolates the router's span machinery (route root,
// decide span, attempt span, recorder retention) as a fraction of real
// serving latency.
func benchTracedRouter(b *testing.B, tracer *obs.Tracer) {
	shard := benchShard(b)
	rt, err := NewRouter(Config{Shards: []ShardAddr{{ID: "s1", URL: shard.URL}}, Tracer: tracer})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)
	runRecoverBench(b, front.URL, benchEntry(b))
}

// BenchmarkRouterTracingOff is the A side of the router-tracing A/B:
// routed recoveries with the span machinery disabled (the outbound
// traceparent is still injected — that is unconditional).
func BenchmarkRouterTracingOff(b *testing.B) {
	benchTracedRouter(b, nil)
}

// BenchmarkRouterTracingOn is the B side: every routed request records a
// full span tree into a recorder sized to retain the whole run. The
// bench-gate holds On within 10% of Off on allocs/op and 25% on mean
// ns/op — router tracing must stay noise next to a recovery.
func BenchmarkRouterTracingOn(b *testing.B) {
	benchTracedRouter(b, obs.New(obs.Config{Slowest: 4096}))
}
