package abi

import (
	"encoding/hex"
	"strings"

	"sigrec/internal/keccak"
)

// Selector is a 4-byte function id: the leading bytes of the Keccak-256 hash
// of the canonical signature.
type Selector [4]byte

// Hex returns the 0x-prefixed hexadecimal form.
func (s Selector) Hex() string { return "0x" + hex.EncodeToString(s[:]) }

// String implements fmt.Stringer.
func (s Selector) String() string { return s.Hex() }

// Signature is a function signature: its name plus ordered parameter types.
type Signature struct {
	Name   string
	Inputs []Type
}

// Canonical returns "name(type1,type2,...)" with canonical type spellings,
// the exact string hashed to derive the function id.
func (s Signature) Canonical() string {
	parts := make([]string, len(s.Inputs))
	for i := range s.Inputs {
		parts[i] = s.Inputs[i].String()
	}
	return s.Name + "(" + strings.Join(parts, ",") + ")"
}

// DisplayString returns the source-level spelling of the signature, which
// differs from Canonical for Vyper types ("bytes[64]", "decimal"). It
// round-trips through ParseSignature without losing type structure.
func (s Signature) DisplayString() string {
	parts := make([]string, len(s.Inputs))
	for i := range s.Inputs {
		parts[i] = s.Inputs[i].Display()
	}
	return s.Name + "(" + strings.Join(parts, ",") + ")"
}

// TypeList returns just the parenthesized parameter list, which is what
// SigRec recovers (names are unrecoverable from bytecode).
func (s Signature) TypeList() string {
	parts := make([]string, len(s.Inputs))
	for i := range s.Inputs {
		parts[i] = s.Inputs[i].String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Selector computes the 4-byte function id.
func (s Signature) Selector() Selector {
	sum := keccak.Sum256([]byte(s.Canonical()))
	var sel Selector
	copy(sel[:], sum[:4])
	return sel
}

// Validate checks all input types.
func (s Signature) Validate() error {
	for i := range s.Inputs {
		if err := s.Inputs[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// EqualTypes reports whether two signatures have identical parameter lists
// (the accuracy criterion for recovery: ids always match by construction).
func (s Signature) EqualTypes(o Signature) bool {
	if len(s.Inputs) != len(o.Inputs) {
		return false
	}
	for i := range s.Inputs {
		if !s.Inputs[i].Equal(o.Inputs[i]) {
			return false
		}
	}
	return true
}
