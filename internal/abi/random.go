package abi

import (
	"math/rand"

	"sigrec/internal/evm"
)

// RandomValue draws a uniformly-shaped valid value for the type, suitable
// for encoding. Dynamic lengths are kept small so generated call data stays
// compact.
func RandomValue(r *rand.Rand, t Type) Value {
	switch t.Kind {
	case KindUint:
		return randomUint(r, t.Bits)
	case KindInt:
		w := randomUint(r, t.Bits)
		// Sign-extend so the encoding is valid for the declared width.
		return w.SignExtend(evm.WordFromUint64(uint64(t.Bits/8 - 1)))
	case KindDecimal:
		w := randomUint(r, 64)
		if r.Intn(2) == 0 {
			return w.Neg()
		}
		return w
	case KindAddress:
		return randomUint(r, 160)
	case KindBool:
		return r.Intn(2) == 0
	case KindFixedBytes:
		return randomBytes(r, t.Size)
	case KindBytes:
		return randomBytes(r, r.Intn(70))
	case KindBoundedBytes:
		return randomBytes(r, r.Intn(t.MaxLen+1))
	case KindString:
		return randomASCII(r, r.Intn(70))
	case KindBoundedString:
		return randomASCII(r, r.Intn(t.MaxLen+1))
	case KindArray:
		items := make([]Value, t.Len)
		for i := range items {
			items[i] = RandomValue(r, *t.Elem)
		}
		return items
	case KindSlice:
		n := 1 + r.Intn(3)
		items := make([]Value, n)
		for i := range items {
			items[i] = RandomValue(r, *t.Elem)
		}
		return items
	case KindTuple:
		items := make([]Value, len(t.Fields))
		for i := range items {
			items[i] = RandomValue(r, t.Fields[i])
		}
		return items
	default:
		return evm.ZeroWord
	}
}

func randomUint(r *rand.Rand, bits int) evm.Word {
	nBytes := bits / 8
	b := make([]byte, nBytes)
	r.Read(b)
	return evm.WordFromBytes(b)
}

func randomBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randomASCII(r *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 "
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}
