package abi

import "math/rand"

// RandomType draws a structurally valid type with bounded nesting,
// including the rare shapes (nested arrays, tuples). depth limits
// recursion; 0 yields basic types only. Used by the property tests and
// available to fuzzing workloads.
func RandomType(r *rand.Rand, depth int) Type {
	if depth <= 0 {
		return randomBasicType(r)
	}
	switch r.Intn(10) {
	case 0:
		return Bytes()
	case 1:
		return String_()
	case 2:
		return SliceOf(RandomType(r, depth-1))
	case 3:
		elem := RandomType(r, depth-1)
		// bytes[N]/string[N] spell Vyper bounded sequences, not arrays
		// (see ParseType); avoid generating the ambiguous form.
		if elem.Kind == KindBytes || elem.Kind == KindString {
			elem = SliceOf(elem)
		}
		return ArrayOf(elem, 1+r.Intn(3))
	case 4:
		n := 1 + r.Intn(3)
		fields := make([]Type, n)
		for i := range fields {
			fields[i] = RandomType(r, depth-1)
		}
		return TupleOf(fields...)
	default:
		return randomBasicType(r)
	}
}

func randomBasicType(r *rand.Rand) Type {
	switch r.Intn(6) {
	case 0:
		return Uint(8 * (1 + r.Intn(32)))
	case 1:
		return Int(8 * (1 + r.Intn(32)))
	case 2:
		return Address()
	case 3:
		return Bool()
	case 4:
		return FixedBytes(1 + r.Intn(32))
	default:
		return Uint(256)
	}
}

// RandomVyperType draws from the Vyper type system.
func RandomVyperType(r *rand.Rand) Type {
	switch r.Intn(10) {
	case 0:
		return Bool()
	case 1:
		return Address()
	case 2:
		return Int(128)
	case 3:
		return Decimal()
	case 4:
		return FixedBytes(32)
	case 5:
		return BoundedBytes(32 * (1 + r.Intn(3)))
	case 6:
		return BoundedString(32 * (1 + r.Intn(3)))
	case 7:
		return ArrayOf(Uint(256), 1+r.Intn(4))
	default:
		return Uint(256)
	}
}
