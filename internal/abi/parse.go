package abi

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseType parses a canonical (or Vyper display) type string: "uint256",
// "bytes4", "address[3][]", "(uint256,bytes)", "decimal", "bytes[64]".
func ParseType(s string) (Type, error) {
	p := &typeParser{input: s}
	t, err := p.parse()
	if err != nil {
		return Type{}, err
	}
	if p.pos != len(p.input) {
		return Type{}, fmt.Errorf("abi: trailing input %q in type %q", p.input[p.pos:], s)
	}
	if err := t.Validate(); err != nil {
		return Type{}, err
	}
	return t, nil
}

// MustParseType parses a known-valid type string, panicking on failure. For
// tests and package-level tables only.
func MustParseType(s string) Type {
	t, err := ParseType(s)
	if err != nil {
		panic(err)
	}
	return t
}

type typeParser struct {
	input string
	pos   int
}

func (p *typeParser) parse() (Type, error) {
	base, err := p.parseBase()
	if err != nil {
		return Type{}, err
	}
	// Apply array suffixes left to right: uint8[3][] is a dynamic array of
	// uint8[3].
	for p.pos < len(p.input) && p.input[p.pos] == '[' {
		close := strings.IndexByte(p.input[p.pos:], ']')
		if close < 0 {
			return Type{}, fmt.Errorf("abi: unterminated array suffix in %q", p.input)
		}
		dim := p.input[p.pos+1 : p.pos+close]
		p.pos += close + 1
		if dim == "" {
			base = SliceOf(base)
			continue
		}
		n, err := strconv.Atoi(dim)
		if err != nil || n < 1 {
			return Type{}, fmt.Errorf("abi: invalid array length %q", dim)
		}
		// Vyper's bytes[N] / string[N] spell bounded sequences, not arrays.
		if base.Kind == KindBytes && !baseWasSuffixed(base) {
			base = BoundedBytes(n)
			continue
		}
		if base.Kind == KindString && !baseWasSuffixed(base) {
			base = BoundedString(n)
			continue
		}
		base = ArrayOf(base, n)
	}
	return base, nil
}

// baseWasSuffixed reports whether the type already carries array structure,
// in which case a numeric suffix means a static array (e.g. bytes[2][3] is a
// static array of bounded bytes only at the first suffix).
func baseWasSuffixed(t Type) bool {
	return t.Kind == KindArray || t.Kind == KindSlice ||
		t.Kind == KindBoundedBytes || t.Kind == KindBoundedString
}

func (p *typeParser) parseBase() (Type, error) {
	rest := p.input[p.pos:]
	if strings.HasPrefix(rest, "(") {
		return p.parseTuple()
	}
	// Longest-prefix match over the named types.
	switch {
	case strings.HasPrefix(rest, "uint"):
		p.pos += 4
		return p.parseWidth(KindUint, 256)
	case strings.HasPrefix(rest, "int"):
		p.pos += 3
		return p.parseWidth(KindInt, 256)
	case strings.HasPrefix(rest, "address"):
		p.pos += 7
		return Address(), nil
	case strings.HasPrefix(rest, "bool"):
		p.pos += 4
		return Bool(), nil
	case strings.HasPrefix(rest, "bytes"):
		p.pos += 5
		n, ok := p.takeNumber()
		if !ok {
			return Bytes(), nil
		}
		return FixedBytes(n), nil
	case strings.HasPrefix(rest, "string"):
		p.pos += 6
		return String_(), nil
	case strings.HasPrefix(rest, "decimal"):
		p.pos += 7
		return Decimal(), nil
	case strings.HasPrefix(rest, "fixed168x10"):
		p.pos += 11
		return Decimal(), nil
	default:
		return Type{}, fmt.Errorf("abi: unknown type at %q", rest)
	}
}

func (p *typeParser) parseWidth(kind Kind, def int) (Type, error) {
	n, ok := p.takeNumber()
	if !ok {
		n = def
	}
	return Type{Kind: kind, Bits: n}, nil
}

func (p *typeParser) takeNumber() (int, bool) {
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, false
	}
	n, err := strconv.Atoi(p.input[start:p.pos])
	if err != nil {
		return 0, false
	}
	return n, true
}

func (p *typeParser) parseTuple() (Type, error) {
	p.pos++ // consume '('
	var fields []Type
	for {
		if p.pos >= len(p.input) {
			return Type{}, fmt.Errorf("abi: unterminated tuple in %q", p.input)
		}
		if p.input[p.pos] == ')' {
			p.pos++
			break
		}
		f, err := p.parse()
		if err != nil {
			return Type{}, err
		}
		fields = append(fields, f)
		if p.pos < len(p.input) && p.input[p.pos] == ',' {
			p.pos++
		}
	}
	if len(fields) == 0 {
		return Type{}, fmt.Errorf("abi: empty tuple in %q", p.input)
	}
	return TupleOf(fields...), nil
}

// ParseSignature parses "name(type1,type2,...)" into a Signature.
func ParseSignature(s string) (Signature, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Signature{}, fmt.Errorf("abi: malformed signature %q", s)
	}
	name := s[:open]
	if name == "" {
		return Signature{}, fmt.Errorf("abi: signature %q missing name", s)
	}
	inner := s[open+1 : len(s)-1]
	sig := Signature{Name: name}
	if inner == "" {
		return sig, nil
	}
	// Split on commas at depth 0 (tuples and array suffixes nest).
	depth := 0
	start := 0
	for i := 0; i <= len(inner); i++ {
		if i == len(inner) || (inner[i] == ',' && depth == 0) {
			t, err := ParseType(inner[start:i])
			if err != nil {
				return Signature{}, fmt.Errorf("abi: signature %q: %w", s, err)
			}
			sig.Inputs = append(sig.Inputs, t)
			start = i + 1
			continue
		}
		switch inner[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		}
	}
	return sig, nil
}
