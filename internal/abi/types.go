// Package abi implements the contract ABI substrate: the Solidity and Vyper
// parameter type system, canonical signature strings, function selectors,
// and a full head/tail call-data encoder and decoder.
//
// It is used as ground truth by the corpus generator, as the target language
// of SigRec's inference, and as the specification ParChecker validates
// actual arguments against.
package abi

import (
	"fmt"
	"strings"
)

// Kind discriminates parameter types.
type Kind int

// Parameter type kinds. The first group is shared Solidity/Vyper; the last
// three are Vyper-specific (the paper's §2.3.2).
const (
	KindUint       Kind = iota + 1 // uintM, 8 <= M <= 256, M % 8 == 0
	KindInt                        // intM
	KindAddress                    // 20-byte account address
	KindBool                       // true/false
	KindFixedBytes                 // bytesM, 1 <= M <= 32
	KindBytes                      // dynamic byte sequence
	KindString                     // dynamic unicode string
	KindArray                      // static array T[N]
	KindSlice                      // dynamic array T[]
	KindTuple                      // struct (T1, ..., Tn)

	KindDecimal       // Vyper fixed-point, range ±2^127, 10 decimals
	KindBoundedBytes  // Vyper bytes[maxLen]
	KindBoundedString // Vyper string[maxLen]
)

// Type describes one parameter type. The zero value is invalid; construct
// through the helpers or ParseType.
type Type struct {
	Kind Kind
	// Bits is the width for KindUint/KindInt (8..256).
	Bits int
	// Size is the byte count for KindFixedBytes (1..32).
	Size int
	// Len is the element count for KindArray.
	Len int
	// MaxLen is the bound for KindBoundedBytes/KindBoundedString.
	MaxLen int
	// Elem is the element type for KindArray/KindSlice.
	Elem *Type
	// Fields are the member types for KindTuple.
	Fields []Type
}

// Constructors for the common shapes.

// Uint returns uintM.
func Uint(bits int) Type { return Type{Kind: KindUint, Bits: bits} }

// Int returns intM.
func Int(bits int) Type { return Type{Kind: KindInt, Bits: bits} }

// Address returns the address type.
func Address() Type { return Type{Kind: KindAddress} }

// Bool returns the bool type.
func Bool() Type { return Type{Kind: KindBool} }

// FixedBytes returns bytesN.
func FixedBytes(n int) Type { return Type{Kind: KindFixedBytes, Size: n} }

// Bytes returns the dynamic bytes type.
func Bytes() Type { return Type{Kind: KindBytes} }

// String_ returns the string type (named to avoid the builtin).
func String_() Type { return Type{Kind: KindString} }

// ArrayOf returns elem[n].
func ArrayOf(elem Type, n int) Type {
	e := elem
	return Type{Kind: KindArray, Len: n, Elem: &e}
}

// SliceOf returns elem[].
func SliceOf(elem Type) Type {
	e := elem
	return Type{Kind: KindSlice, Elem: &e}
}

// TupleOf returns (fields...).
func TupleOf(fields ...Type) Type {
	cp := make([]Type, len(fields))
	copy(cp, fields)
	return Type{Kind: KindTuple, Fields: cp}
}

// Decimal returns the Vyper decimal type.
func Decimal() Type { return Type{Kind: KindDecimal} }

// BoundedBytes returns Vyper bytes[maxLen].
func BoundedBytes(maxLen int) Type { return Type{Kind: KindBoundedBytes, MaxLen: maxLen} }

// BoundedString returns Vyper string[maxLen].
func BoundedString(maxLen int) Type { return Type{Kind: KindBoundedString, MaxLen: maxLen} }

// Validate checks structural well-formedness.
func (t Type) Validate() error {
	switch t.Kind {
	case KindUint, KindInt:
		if t.Bits < 8 || t.Bits > 256 || t.Bits%8 != 0 {
			return fmt.Errorf("abi: invalid integer width %d", t.Bits)
		}
	case KindAddress, KindBool, KindBytes, KindString, KindDecimal:
		// no parameters
	case KindFixedBytes:
		if t.Size < 1 || t.Size > 32 {
			return fmt.Errorf("abi: invalid bytesN size %d", t.Size)
		}
	case KindArray:
		if t.Len < 1 {
			return fmt.Errorf("abi: invalid array length %d", t.Len)
		}
		if t.Elem == nil {
			return fmt.Errorf("abi: array missing element type")
		}
		return t.Elem.Validate()
	case KindSlice:
		if t.Elem == nil {
			return fmt.Errorf("abi: slice missing element type")
		}
		return t.Elem.Validate()
	case KindTuple:
		if len(t.Fields) == 0 {
			return fmt.Errorf("abi: empty tuple")
		}
		for i := range t.Fields {
			if err := t.Fields[i].Validate(); err != nil {
				return err
			}
		}
	case KindBoundedBytes, KindBoundedString:
		if t.MaxLen < 1 {
			return fmt.Errorf("abi: invalid bound %d", t.MaxLen)
		}
	default:
		return fmt.Errorf("abi: unknown kind %d", t.Kind)
	}
	return nil
}

// IsDynamic reports whether the encoding length depends on the value
// (dynamic types get an offset slot in the head).
func (t Type) IsDynamic() bool {
	switch t.Kind {
	case KindBytes, KindString, KindSlice, KindBoundedBytes, KindBoundedString:
		return true
	case KindArray:
		return t.Elem.IsDynamic()
	case KindTuple:
		for i := range t.Fields {
			if t.Fields[i].IsDynamic() {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// HeadSize returns the number of bytes the type occupies in the head: 32 for
// dynamic types (the offset) and the full inline size for static types.
func (t Type) HeadSize() int {
	if t.IsDynamic() {
		return 32
	}
	return t.staticSize()
}

// staticSize is the inline encoded size of a static type.
func (t Type) staticSize() int {
	switch t.Kind {
	case KindArray:
		return t.Len * t.Elem.staticSize()
	case KindTuple:
		total := 0
		for i := range t.Fields {
			total += t.Fields[i].staticSize()
		}
		return total
	default:
		return 32
	}
}

// String returns the canonical type string used in signatures: "uint256",
// "uint8[3][]", "(uint256,bytes)". Vyper bounded types canonicalize to their
// ABI equivalents ("bytes", "string"); decimal canonicalizes to its ABI name
// fixed168x10.
func (t Type) String() string {
	switch t.Kind {
	case KindUint:
		return fmt.Sprintf("uint%d", t.Bits)
	case KindInt:
		return fmt.Sprintf("int%d", t.Bits)
	case KindAddress:
		return "address"
	case KindBool:
		return "bool"
	case KindFixedBytes:
		return fmt.Sprintf("bytes%d", t.Size)
	case KindBytes:
		return "bytes"
	case KindString:
		return "string"
	case KindArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len)
	case KindSlice:
		return t.Elem.String() + "[]"
	case KindTuple:
		parts := make([]string, len(t.Fields))
		for i := range t.Fields {
			parts[i] = t.Fields[i].String()
		}
		return "(" + strings.Join(parts, ",") + ")"
	case KindDecimal:
		return "fixed168x10"
	case KindBoundedBytes:
		return "bytes"
	case KindBoundedString:
		return "string"
	default:
		return fmt.Sprintf("invalid(%d)", t.Kind)
	}
}

// Display returns the source-level spelling, which differs from the
// canonical form for Vyper types: "decimal", "bytes[64]", "string[32]".
func (t Type) Display() string {
	switch t.Kind {
	case KindDecimal:
		return "decimal"
	case KindBoundedBytes:
		return fmt.Sprintf("bytes[%d]", t.MaxLen)
	case KindBoundedString:
		return fmt.Sprintf("string[%d]", t.MaxLen)
	case KindArray:
		return fmt.Sprintf("%s[%d]", t.Elem.Display(), t.Len)
	case KindSlice:
		return t.Elem.Display() + "[]"
	case KindTuple:
		parts := make([]string, len(t.Fields))
		for i := range t.Fields {
			parts[i] = t.Fields[i].Display()
		}
		return "(" + strings.Join(parts, ",") + ")"
	default:
		return t.String()
	}
}

// Equal reports deep structural equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind || t.Bits != o.Bits || t.Size != o.Size ||
		t.Len != o.Len || t.MaxLen != o.MaxLen {
		return false
	}
	if (t.Elem == nil) != (o.Elem == nil) {
		return false
	}
	if t.Elem != nil && !t.Elem.Equal(*o.Elem) {
		return false
	}
	if len(t.Fields) != len(o.Fields) {
		return false
	}
	for i := range t.Fields {
		if !t.Fields[i].Equal(o.Fields[i]) {
			return false
		}
	}
	return true
}

// IsVyperOnly reports whether the type only exists in Vyper.
func (t Type) IsVyperOnly() bool {
	switch t.Kind {
	case KindDecimal, KindBoundedBytes, KindBoundedString:
		return true
	case KindArray, KindSlice:
		return t.Elem.IsVyperOnly()
	case KindTuple:
		for i := range t.Fields {
			if t.Fields[i].IsVyperOnly() {
				return true
			}
		}
		return false
	default:
		return false
	}
}
