package abi

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"strings"
	"testing"

	"sigrec/internal/evm"
)

func TestParseAndStringRoundTrip(t *testing.T) {
	cases := []string{
		"uint256", "uint8", "int128", "int256", "address", "bool",
		"bytes1", "bytes4", "bytes32", "bytes", "string",
		"uint256[3]", "uint8[3][2]", "uint256[]", "uint256[3][]",
		"uint8[][2]", "address[]", "bool[4]",
		"(uint256,uint256)", "(uint256[],uint256)", "(address,bytes)",
		"fixed168x10",
	}
	for _, c := range cases {
		ty, err := ParseType(c)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", c, err)
		}
		if got := ty.String(); got != c {
			t.Errorf("ParseType(%q).String() = %q", c, got)
		}
		back, err := ParseType(ty.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", ty.String(), err)
		}
		if !ty.Equal(back) {
			t.Errorf("reparse of %q lost structure", c)
		}
	}
}

func TestParseVyperDisplayTypes(t *testing.T) {
	b, err := ParseType("bytes[64]")
	if err != nil || b.Kind != KindBoundedBytes || b.MaxLen != 64 {
		t.Errorf("bytes[64] parsed as %+v, err %v", b, err)
	}
	s, err := ParseType("string[10]")
	if err != nil || s.Kind != KindBoundedString || s.MaxLen != 10 {
		t.Errorf("string[10] parsed as %+v, err %v", s, err)
	}
	d, err := ParseType("decimal")
	if err != nil || d.Kind != KindDecimal {
		t.Errorf("decimal parsed as %+v, err %v", d, err)
	}
	if got := b.Display(); got != "bytes[64]" {
		t.Errorf("Display = %q", got)
	}
	if got := b.String(); got != "bytes" {
		t.Errorf("canonical = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "uint7", "uint264", "bytes0", "bytes33", "frob",
		"uint256[", "uint256[0]", "()", "(uint256", "uint256)x",
	}
	for _, c := range bad {
		if _, err := ParseType(c); err == nil {
			t.Errorf("ParseType(%q) should fail", c)
		}
	}
}

func TestSelectorKnownValues(t *testing.T) {
	tests := []struct {
		sig  string
		want string
	}{
		{"transfer(address,uint256)", "a9059cbb"},
		{"balanceOf(address)", "70a08231"},
		{"approve(address,uint256)", "095ea7b3"},
		{"transferFrom(address,address,uint256)", "23b872dd"},
	}
	for _, tc := range tests {
		sig, err := ParseSignature(tc.sig)
		if err != nil {
			t.Fatalf("ParseSignature(%q): %v", tc.sig, err)
		}
		sel := sig.Selector()
		if got := hex.EncodeToString(sel[:]); got != tc.want {
			t.Errorf("selector(%q) = %s, want %s", tc.sig, got, tc.want)
		}
		if got := sig.Canonical(); got != tc.sig {
			t.Errorf("canonical = %q, want %q", got, tc.sig)
		}
	}
}

func TestParseSignatureNested(t *testing.T) {
	sig, err := ParseSignature("f(uint256[2],(uint256,bytes),address)")
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Inputs) != 3 {
		t.Fatalf("got %d inputs", len(sig.Inputs))
	}
	if sig.Inputs[1].Kind != KindTuple {
		t.Errorf("input 1 kind = %d", sig.Inputs[1].Kind)
	}
	if _, err := ParseSignature("noparens"); err == nil {
		t.Error("malformed signature should fail")
	}
	if _, err := ParseSignature("(uint256)"); err == nil {
		t.Error("missing name should fail")
	}
	empty, err := ParseSignature("g()")
	if err != nil || len(empty.Inputs) != 0 {
		t.Errorf("empty params: %v, %d inputs", err, len(empty.Inputs))
	}
}

func TestIsDynamic(t *testing.T) {
	tests := []struct {
		typ  string
		want bool
	}{
		{"uint256", false},
		{"uint8[3]", false},
		{"uint8[3][2]", false},
		{"bytes32", false},
		{"bytes", true},
		{"string", true},
		{"uint256[]", true},
		{"uint256[3][]", true},
		{"uint256[][3]", true},
		{"(uint256,uint256)", false},
		{"(uint256[],uint256)", true},
	}
	for _, tc := range tests {
		if got := MustParseType(tc.typ).IsDynamic(); got != tc.want {
			t.Errorf("IsDynamic(%s) = %v", tc.typ, got)
		}
	}
}

func TestHeadSize(t *testing.T) {
	tests := []struct {
		typ  string
		want int
	}{
		{"uint256", 32},
		{"uint8[3]", 96},
		{"uint8[3][2]", 192},
		{"(uint256,uint256)", 64},
		{"bytes", 32},
		{"uint256[]", 32},
	}
	for _, tc := range tests {
		if got := MustParseType(tc.typ).HeadSize(); got != tc.want {
			t.Errorf("HeadSize(%s) = %d, want %d", tc.typ, got, tc.want)
		}
	}
}

// TestEncodeTransferLayout pins the byte-exact layout of the paper's running
// example: transfer(address,uint256).
func TestEncodeTransferLayout(t *testing.T) {
	sig, _ := ParseSignature("transfer(address,uint256)")
	to := evm.MustWordFromHex("0x12345678901234567890123456789012345678ff")
	amount := evm.WordFromUint64(0x2710)
	data, err := EncodeCall(sig, []Value{to, amount})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4+64 {
		t.Fatalf("call data length %d", len(data))
	}
	if hex.EncodeToString(data[:4]) != "a9059cbb" {
		t.Errorf("selector = %x", data[:4])
	}
	if !evm.WordFromBytes(data[4:36]).Eq(to) {
		t.Errorf("address slot = %x", data[4:36])
	}
	if !evm.WordFromBytes(data[36:68]).Eq(amount) {
		t.Errorf("amount slot = %x", data[36:68])
	}
}

// TestEncodeDynamicArrayLayout pins Fig. 6 of the paper: uint256[3][] with
// actual argument of 2 rows -> offset field 0x20, num field 2, then 6 words.
func TestEncodeDynamicArrayLayout(t *testing.T) {
	ty := MustParseType("uint256[3][]")
	row := func(a, b, c uint64) Value {
		return []Value{
			evm.WordFromUint64(a), evm.WordFromUint64(b), evm.WordFromUint64(c),
		}
	}
	body, err := Encode([]Type{ty}, []Value{[]Value{row(1, 2, 3), row(4, 5, 6)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := evm.WordFromBytes(body[0:32]); !got.Eq(evm.WordFromUint64(32)) {
		t.Errorf("offset field = %v", got)
	}
	if got := evm.WordFromBytes(body[32:64]); !got.Eq(evm.WordFromUint64(2)) {
		t.Errorf("num field = %v", got)
	}
	if len(body) != 32+32+6*32 {
		t.Errorf("total length = %d", len(body))
	}
	if got := evm.WordFromBytes(body[64+5*32 : 64+6*32]); !got.Eq(evm.WordFromUint64(6)) {
		t.Errorf("last item = %v", got)
	}
}

// TestEncodeBytesLayout pins Fig. 4: 'abcd' padded right to 32 bytes.
func TestEncodeBytesLayout(t *testing.T) {
	body, err := Encode([]Type{Bytes()}, []Value{[]byte("abcd")})
	if err != nil {
		t.Fatal(err)
	}
	if got := evm.WordFromBytes(body[0:32]); !got.Eq(evm.WordFromUint64(32)) {
		t.Errorf("offset = %v", got)
	}
	if got := evm.WordFromBytes(body[32:64]); !got.Eq(evm.WordFromUint64(4)) {
		t.Errorf("num = %v", got)
	}
	if !bytes.Equal(body[64:68], []byte("abcd")) || body[68] != 0 || len(body) != 96 {
		t.Errorf("content = %x (len %d)", body[64:], len(body))
	}
}

// TestStructFlattening pins the paper's Listing 2/3 observation: a static
// struct encodes identically to its flattened members.
func TestStructFlattening(t *testing.T) {
	a, b := evm.WordFromUint64(7), evm.WordFromUint64(9)
	asStruct, err := Encode(
		[]Type{TupleOf(Uint(256), Uint(256))},
		[]Value{[]Value{a, b}},
	)
	if err != nil {
		t.Fatal(err)
	}
	asFlat, err := Encode([]Type{Uint(256), Uint(256)}, []Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asStruct, asFlat) {
		t.Errorf("static struct must flatten: %x vs %x", asStruct, asFlat)
	}
}

// TestNestedArrayLayout pins Fig. 7: uint256[][] with argument [[1,2],[3]].
func TestNestedArrayLayout(t *testing.T) {
	ty := MustParseType("uint256[][]")
	arg := []Value{
		[]Value{evm.WordFromUint64(1), evm.WordFromUint64(2)},
		[]Value{evm.WordFromUint64(3)},
	}
	body, err := Encode([]Type{ty}, []Value{arg})
	if err != nil {
		t.Fatal(err)
	}
	// offset1 -> num1=2, then two inner offsets, then [2,1,2], [1,3].
	off1, _ := evm.WordFromBytes(body[0:32]).Uint64()
	num1, _ := evm.WordFromBytes(body[off1 : off1+32]).Uint64()
	if num1 != 2 {
		t.Fatalf("num1 = %d", num1)
	}
	innerBase := off1 + 32
	off2, _ := evm.WordFromBytes(body[innerBase : innerBase+32]).Uint64()
	num2, _ := evm.WordFromBytes(body[innerBase+off2 : innerBase+off2+32]).Uint64()
	if num2 != 2 {
		t.Errorf("num2 = %d", num2)
	}
	off3, _ := evm.WordFromBytes(body[innerBase+32 : innerBase+64]).Uint64()
	num3, _ := evm.WordFromBytes(body[innerBase+off3 : innerBase+off3+32]).Uint64()
	if num3 != 1 {
		t.Errorf("num3 = %d", num3)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode([]Type{Uint(256)}, nil); err == nil {
		t.Error("mismatched arity should fail")
	}
	if _, err := Encode([]Type{Uint(256)}, []Value{"nope"}); err == nil {
		t.Error("wrong Go type should fail")
	}
	if _, err := Encode([]Type{FixedBytes(4)}, []Value{[]byte("toolong")}); err == nil {
		t.Error("oversized bytesN should fail")
	}
	if _, err := Encode([]Type{BoundedBytes(2)}, []Value{[]byte("toolong")}); err == nil {
		t.Error("bound violation should fail")
	}
	if _, err := Encode([]Type{ArrayOf(Uint(8), 2)}, []Value{[]Value{}}); err == nil {
		t.Error("wrong array arity should fail")
	}
}

// TestEncodeDecodeRoundTrip is the central property: Decode(Encode(v)) == v
// for random values of random types.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	typeStrs := []string{
		"uint256", "uint32", "int64", "int256", "address", "bool",
		"bytes8", "bytes32", "bytes", "string",
		"uint256[3]", "uint8[2][2]", "uint256[]", "uint64[3][]",
		"uint256[][2]", "(uint256,uint256)", "(uint256[],address)",
		"(bytes,bool)", "bytes[16]", "string[8]", "decimal",
	}
	for _, ts := range typeStrs {
		ty := MustParseType(ts)
		for trial := 0; trial < 25; trial++ {
			v := RandomValue(r, ty)
			enc, err := Encode([]Type{ty}, []Value{v})
			if err != nil {
				t.Fatalf("%s: encode: %v", ts, err)
			}
			dec, err := Decode([]Type{ty}, enc)
			if err != nil {
				t.Fatalf("%s: decode: %v (data %x)", ts, err, enc)
			}
			if !valueEqual(ty, v, dec[0]) {
				t.Fatalf("%s: round trip mismatch:\n in: %#v\nout: %#v", ts, v, dec[0])
			}
		}
	}
}

// TestDecodeRejectsCorruption verifies the strict decoder rejects padding
// violations, which is what ParChecker relies on.
func TestDecodeRejectsCorruption(t *testing.T) {
	addr := MustParseType("address")
	enc, _ := Encode([]Type{addr}, []Value{evm.WordFromUint64(5)})
	enc[0] = 0xff // dirty the high padding of the address
	if _, err := Decode([]Type{addr}, enc); err == nil {
		t.Error("dirty address padding must be rejected")
	}

	u8 := MustParseType("uint8")
	enc2, _ := Encode([]Type{u8}, []Value{evm.WordFromUint64(5)})
	enc2[10] = 1
	if _, err := Decode([]Type{u8}, enc2); err == nil {
		t.Error("dirty uint8 padding must be rejected")
	}

	bb := MustParseType("bytes")
	enc3, _ := Encode([]Type{bb}, []Value{[]byte("abc")})
	enc3[len(enc3)-1] = 0x7 // dirty the right padding
	if _, err := Decode([]Type{bb}, enc3); err == nil {
		t.Error("dirty bytes tail must be rejected")
	}

	if _, err := Decode([]Type{MustParseType("uint256")}, []byte{1, 2}); err == nil {
		t.Error("short data must be rejected")
	}

	// Bool with value 2.
	enc4, _ := Encode([]Type{Bool()}, []Value{true})
	enc4[31] = 2
	if _, err := Decode([]Type{Bool()}, enc4); err == nil {
		t.Error("bool=2 must be rejected")
	}

	// Offset pointing out of range.
	enc5, _ := Encode([]Type{Bytes()}, []Value{[]byte("xy")})
	enc5[31] = 0xf0
	if _, err := Decode([]Type{Bytes()}, enc5); err == nil {
		t.Error("wild offset must be rejected")
	}
}

func TestShortAddressTruncationDetected(t *testing.T) {
	// The short address attack: the encoded (address, uint256) call data is
	// truncated by one byte; strict decoding must fail.
	sig, _ := ParseSignature("transfer(address,uint256)")
	data, err := EncodeCall(sig, []Value{
		evm.MustWordFromHex("0x1234567890123456789012345678901234567800"),
		evm.WordFromUint64(0x2710),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCall(sig, data); err != nil {
		t.Fatalf("valid call data rejected: %v", err)
	}
	if _, err := DecodeCall(sig, data[:len(data)-1]); err == nil {
		t.Error("truncated call data must be rejected")
	}
}

// valueEqual compares decoded against original, tolerating the signed
// representation differences.
func valueEqual(t Type, a, b Value) bool {
	switch t.Kind {
	case KindUint, KindInt, KindAddress, KindDecimal:
		return a.(evm.Word).Eq(b.(evm.Word))
	case KindBool:
		return a.(bool) == b.(bool)
	case KindFixedBytes, KindBytes, KindBoundedBytes:
		return bytes.Equal(a.([]byte), b.([]byte))
	case KindString, KindBoundedString:
		return a.(string) == b.(string)
	case KindArray, KindSlice:
		as, bs := a.([]Value), b.([]Value)
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !valueEqual(*t.Elem, as[i], bs[i]) {
				return false
			}
		}
		return true
	case KindTuple:
		as, bs := a.([]Value), b.([]Value)
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !valueEqual(t.Fields[i], as[i], bs[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func TestTypeListAndEqualTypes(t *testing.T) {
	s1, _ := ParseSignature("f(uint256,address)")
	s2, _ := ParseSignature("g(uint256,address)")
	s3, _ := ParseSignature("f(uint256)")
	if !s1.EqualTypes(s2) {
		t.Error("same type lists should be equal")
	}
	if s1.EqualTypes(s3) {
		t.Error("different arity should differ")
	}
	if got := s1.TypeList(); got != "(uint256,address)" {
		t.Errorf("TypeList = %q", got)
	}
}

func TestVyperOnlyDetection(t *testing.T) {
	if MustParseType("uint256").IsVyperOnly() {
		t.Error("uint256 is shared")
	}
	if !Decimal().IsVyperOnly() {
		t.Error("decimal is Vyper-only")
	}
	if !SliceOf(Decimal()).IsVyperOnly() {
		t.Error("decimal[] is Vyper-only")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Type{
		{Kind: KindUint, Bits: 12},
		{Kind: KindFixedBytes, Size: 0},
		{Kind: KindArray, Len: 0, Elem: &Type{Kind: KindUint, Bits: 8}},
		{Kind: KindArray, Len: 2},
		{Kind: KindSlice},
		{Kind: KindTuple},
		{Kind: KindBoundedBytes},
		{Kind: Kind(99)},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestDisplayVsCanonical(t *testing.T) {
	ty := SliceOf(Decimal())
	if !strings.Contains(ty.Display(), "decimal") {
		t.Errorf("Display = %q", ty.Display())
	}
	if !strings.Contains(ty.String(), "fixed168x10") {
		t.Errorf("String = %q", ty.String())
	}
}
