package abi

import (
	"errors"
	"fmt"

	"sigrec/internal/evm"
)

// Decoding errors that callers (notably ParChecker) match on.
var (
	// ErrShortData reports call data that ends before a required field.
	ErrShortData = errors.New("abi: call data too short")
	// ErrBadOffset reports an offset field pointing outside the data.
	ErrBadOffset = errors.New("abi: offset out of range")
	// ErrBadPadding reports nonzero bytes where the encoding requires
	// zero padding (the core signal for malformed-argument detection).
	ErrBadPadding = errors.New("abi: nonzero padding")
	// ErrTooDeep reports adversarial data whose offset chains exceed the
	// decoder's nesting limit (self-referencing offsets would otherwise
	// recurse without bound).
	ErrTooDeep = errors.New("abi: nesting too deep")
)

// maxDecodeDepth bounds offset-chain recursion. Legitimate encodings nest
// as deep as their type does; types themselves are bounded far below this.
const maxDecodeDepth = 32

// DecodeCall splits call data into the selector and decoded arguments.
func DecodeCall(sig Signature, callData []byte) ([]Value, error) {
	if len(callData) < 4 {
		return nil, ErrShortData
	}
	return Decode(sig.Inputs, callData[4:])
}

// Decode decodes an argument sequence encoded with the head/tail layout.
// It is strict: offsets must be in range and padding must be zero, so it
// doubles as a validity checker for ParChecker.
func Decode(types []Type, data []byte) ([]Value, error) {
	return decodeSequence(types, data, 0)
}

func decodeSequence(types []Type, frame []byte, depth int) ([]Value, error) {
	if depth > maxDecodeDepth {
		return nil, ErrTooDeep
	}
	values := make([]Value, len(types))
	headOff := 0
	for i := range types {
		t := types[i]
		if t.IsDynamic() {
			offWord, err := readWord(frame, headOff)
			if err != nil {
				return nil, err
			}
			off, ok := offWord.Uint64()
			if !ok || off > uint64(len(frame)) {
				return nil, fmt.Errorf("%w: argument %d offset %s", ErrBadOffset, i, offWord)
			}
			v, _, err := decodeValue(t, frame, int(off), depth+1)
			if err != nil {
				return nil, fmt.Errorf("argument %d (%s): %w", i, t.Display(), err)
			}
			values[i] = v
			headOff += 32
			continue
		}
		v, n, err := decodeValue(t, frame, headOff, depth)
		if err != nil {
			return nil, fmt.Errorf("argument %d (%s): %w", i, t.Display(), err)
		}
		values[i] = v
		headOff += n
	}
	return values, nil
}

// decodeValue decodes one value at the given frame offset and returns the
// number of head bytes consumed (meaningful for static types).
func decodeValue(t Type, frame []byte, off int, depth int) (Value, int, error) {
	if depth > maxDecodeDepth {
		return nil, 0, ErrTooDeep
	}
	switch t.Kind {
	case KindUint, KindInt, KindDecimal:
		w, err := readWord(frame, off)
		if err != nil {
			return nil, 0, err
		}
		if err := checkIntegerWidth(t, w); err != nil {
			return nil, 0, err
		}
		return w, 32, nil
	case KindAddress:
		w, err := readWord(frame, off)
		if err != nil {
			return nil, 0, err
		}
		if !w.And(evm.HighMask(96)).IsZero() {
			return nil, 0, fmt.Errorf("%w: address has nonzero high bytes", ErrBadPadding)
		}
		return w, 32, nil
	case KindBool:
		w, err := readWord(frame, off)
		if err != nil {
			return nil, 0, err
		}
		switch {
		case w.IsZero():
			return false, 32, nil
		case w.Eq(evm.OneWord):
			return true, 32, nil
		default:
			return nil, 0, fmt.Errorf("%w: bool encoding %s", ErrBadPadding, w)
		}
	case KindFixedBytes:
		w, err := readWord(frame, off)
		if err != nil {
			return nil, 0, err
		}
		if !w.And(evm.LowMask(uint(256 - t.Size*8))).IsZero() {
			return nil, 0, fmt.Errorf("%w: bytes%d has nonzero low bytes", ErrBadPadding, t.Size)
		}
		full := w.Bytes32()
		out := make([]byte, t.Size)
		copy(out, full[:t.Size])
		return out, 32, nil
	case KindBytes, KindBoundedBytes, KindString, KindBoundedString:
		b, err := decodeLengthPrefixed(frame, off)
		if err != nil {
			return nil, 0, err
		}
		if t.Kind == KindBoundedBytes && len(b) > t.MaxLen {
			return nil, 0, fmt.Errorf("bytes[%d]: length %d exceeds bound", t.MaxLen, len(b))
		}
		if t.Kind == KindBoundedString && len(b) > t.MaxLen {
			return nil, 0, fmt.Errorf("string[%d]: length %d exceeds bound", t.MaxLen, len(b))
		}
		if t.Kind == KindString || t.Kind == KindBoundedString {
			return string(b), 32, nil
		}
		return b, 32, nil
	case KindArray:
		if off > len(frame) {
			return nil, 0, ErrShortData
		}
		items, err := decodeSequence(repeatType(*t.Elem, t.Len), frame[off:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		return items, t.HeadSize(), nil
	case KindSlice:
		numWord, err := readWord(frame, off)
		if err != nil {
			return nil, 0, err
		}
		num, ok := numWord.Uint64()
		if !ok || num > uint64(len(frame)) {
			return nil, 0, fmt.Errorf("%w: array length %s", ErrBadOffset, numWord)
		}
		if off+32 > len(frame) {
			return nil, 0, ErrShortData
		}
		items, err := decodeSequence(repeatType(*t.Elem, int(num)), frame[off+32:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		return items, 32, nil
	case KindTuple:
		if t.IsDynamic() {
			if off > len(frame) {
				return nil, 0, ErrShortData
			}
			items, err := decodeSequence(t.Fields, frame[off:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			return items, 32, nil
		}
		items, err := decodeSequence(t.Fields, frame[off:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		return items, t.HeadSize(), nil
	default:
		return nil, 0, fmt.Errorf("undecodable kind %d", t.Kind)
	}
}

// checkIntegerWidth verifies the zero/sign extension of an integer value.
func checkIntegerWidth(t Type, w evm.Word) error {
	switch t.Kind {
	case KindUint:
		if t.Bits == 256 {
			return nil
		}
		if !w.And(evm.HighMask(uint(256 - t.Bits))).IsZero() {
			return fmt.Errorf("%w: uint%d has nonzero high bits", ErrBadPadding, t.Bits)
		}
	case KindInt:
		if t.Bits == 256 {
			return nil
		}
		// All high bits must equal the value's sign bit.
		ext := w.SignExtend(evm.WordFromUint64(uint64(t.Bits/8 - 1)))
		if !ext.Eq(w) {
			return fmt.Errorf("%w: int%d not sign extended", ErrBadPadding, t.Bits)
		}
	case KindDecimal:
		// decimal is a 168-bit signed value in Vyper's ABI encoding.
		ext := w.SignExtend(evm.WordFromUint64(20)) // byte 20 -> 168 bits
		if !ext.Eq(w) {
			return fmt.Errorf("%w: decimal not sign extended", ErrBadPadding)
		}
	}
	return nil
}

func decodeLengthPrefixed(frame []byte, off int) ([]byte, error) {
	numWord, err := readWord(frame, off)
	if err != nil {
		return nil, err
	}
	num, ok := numWord.Uint64()
	if !ok || num > uint64(len(frame)) {
		return nil, fmt.Errorf("%w: byte length %s", ErrBadOffset, numWord)
	}
	start := off + 32
	end := start + int(num)
	if end > len(frame) {
		return nil, ErrShortData
	}
	padded := start + int(num+31)/32*32
	if padded > len(frame) {
		return nil, ErrShortData
	}
	for i := end; i < padded; i++ {
		if frame[i] != 0 {
			return nil, fmt.Errorf("%w: bytes tail", ErrBadPadding)
		}
	}
	out := make([]byte, num)
	copy(out, frame[start:end])
	return out, nil
}

func readWord(frame []byte, off int) (evm.Word, error) {
	if off < 0 || off+32 > len(frame) {
		return evm.Word{}, ErrShortData
	}
	return evm.WordFromBytes(frame[off : off+32]), nil
}
