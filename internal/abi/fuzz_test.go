package abi

import (
	"math/rand"
	"testing"
)

// Native fuzz targets: robustness of the parser and the strict decoder on
// arbitrary inputs. `go test` runs the seed corpus; `go test -fuzz` explores
// further.

func FuzzParseType(f *testing.F) {
	for _, seed := range []string{
		"uint256", "bytes32[4][]", "(uint8,(bytes,bool))", "string[12]",
		"int", "uint", "bytes", "", "uint256[", "((((", "uint999999999999",
		"fixed168x10[2]", "address[1][1][1][1]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ty, err := ParseType(s)
		if err != nil {
			return
		}
		// Any accepted type must be valid and render-stable.
		if verr := ty.Validate(); verr != nil {
			t.Fatalf("accepted invalid type %q: %v", s, verr)
		}
		back, err := ParseType(ty.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", ty.String(), s, err)
		}
		if back.String() != ty.String() {
			t.Fatalf("canonical form unstable: %q -> %q", ty.String(), back.String())
		}
	})
}

func FuzzDecodeTransfer(f *testing.F) {
	sig, _ := ParseSignature("transfer(address,uint256)")
	r := rand.New(rand.NewSource(1))
	valid, _ := EncodeCall(sig, []Value{RandomValue(r, sig.Inputs[0]), RandomValue(r, sig.Inputs[1])})
	f.Add(valid)
	f.Add(valid[:40])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or hang, whatever the bytes.
		_, _ = DecodeCall(sig, data)
	})
}

func FuzzDecodeNested(f *testing.F) {
	sig, _ := ParseSignature("f(uint8[][],(bytes,bool)[],string)")
	r := rand.New(rand.NewSource(2))
	vals := make([]Value, len(sig.Inputs))
	for i, ty := range sig.Inputs {
		vals[i] = RandomValue(r, ty)
	}
	valid, err := EncodeCall(sig, vals)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Self-referencing offset chain: every slot points at offset 0.
	loop := make([]byte, 4+32*8)
	f.Add(loop)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeCall(sig, data)
	})
}

// TestDecodeDepthLimit pins the adversarial self-reference case.
func TestDecodeDepthLimit(t *testing.T) {
	// uint8[][] whose outer offset is 0 and whose element offsets are 0:
	// each level re-reads the same region; the depth limit must cut it.
	ty := MustParseType("uint8[][]")
	data := make([]byte, 64*40)
	// outer offset = 32, num = large, elements all offset 0...
	data[31] = 32
	data[63] = 200 // num
	_, err := Decode([]Type{ty}, data)
	if err == nil {
		t.Fatal("adversarial offsets decoded cleanly")
	}
}
