package abi

import (
	"math/rand"
	"testing"
)

// TestUniversalRoundTrip: for arbitrary random types and values,
// Decode(Encode(v)) == v. This subsumes the fixed-list round trip and
// covers deep nesting (tuples of arrays of tuples...).
func TestUniversalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(3)
		types := make([]Type, n)
		values := make([]Value, n)
		for i := range types {
			types[i] = RandomType(r, 2)
			if err := types[i].Validate(); err != nil {
				t.Fatalf("trial %d: generator produced invalid type: %v", trial, err)
			}
			values[i] = RandomValue(r, types[i])
		}
		enc, err := Encode(types, values)
		if err != nil {
			t.Fatalf("trial %d (%v): encode: %v", trial, typeStrings(types), err)
		}
		dec, err := Decode(types, enc)
		if err != nil {
			t.Fatalf("trial %d (%v): decode: %v", trial, typeStrings(types), err)
		}
		for i := range types {
			if !valueEqual(types[i], values[i], dec[i]) {
				t.Fatalf("trial %d: type %s round-trip mismatch", trial, types[i])
			}
		}
	}
}

// TestUniversalParseRoundTrip: canonical strings reparse to equal types.
func TestUniversalParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		ty := RandomType(r, 2)
		s := ty.String()
		back, err := ParseType(s)
		if err != nil {
			t.Fatalf("trial %d: ParseType(%q): %v", trial, s, err)
		}
		// Canonical strings identify the ABI class: the reparsed type must
		// render identically (bounded Vyper types alias bytes/string, so
		// structural equality is only guaranteed on the canonical form).
		if back.String() != s {
			t.Fatalf("trial %d: %q reparsed as %q", trial, s, back.String())
		}
	}
}

// TestVyperGeneratorProducesSupportedTypes checks the Vyper generator
// against the Vyper compiler's type checker domain.
func TestVyperGeneratorProducesSupportedTypes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		ty := RandomVyperType(r)
		if err := ty.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !ty.IsVyperOnly() {
			// Shared types must be in Vyper's restricted widths.
			switch ty.Kind {
			case KindUint:
				if ty.Bits != 256 {
					t.Fatalf("trial %d: uint%d not a Vyper width", trial, ty.Bits)
				}
			case KindInt:
				if ty.Bits != 128 {
					t.Fatalf("trial %d: int%d not a Vyper width", trial, ty.Bits)
				}
			case KindFixedBytes:
				if ty.Size != 32 {
					t.Fatalf("trial %d: bytes%d not a Vyper width", trial, ty.Size)
				}
			}
		}
	}
}

// TestEncodedLengthMatchesHeadTail: the encoding length equals the head
// size plus the tails, for random inputs (catches offset bookkeeping bugs).
func TestEncodedLengthMatchesHeadTail(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		ty := RandomType(r, 1)
		v := RandomValue(r, ty)
		enc, err := Encode([]Type{ty}, []Value{v})
		if err != nil {
			t.Fatal(err)
		}
		if len(enc)%32 != 0 {
			t.Fatalf("trial %d: encoding length %d not a word multiple (%s)",
				trial, len(enc), ty)
		}
		if !ty.IsDynamic() && len(enc) != ty.HeadSize() {
			t.Fatalf("trial %d: static %s encoded to %d bytes, head %d",
				trial, ty, len(enc), ty.HeadSize())
		}
		if ty.IsDynamic() && len(enc) <= 32 {
			t.Fatalf("trial %d: dynamic %s has no tail", trial, ty)
		}
	}
}

func typeStrings(types []Type) []string {
	out := make([]string, len(types))
	for i, t := range types {
		out[i] = t.String()
	}
	return out
}
