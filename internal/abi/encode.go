package abi

import (
	"fmt"

	"sigrec/internal/evm"
)

// Value is the Go representation of an ABI value. The mapping is:
//
//	uintM / intM / decimal -> evm.Word (two's complement for signed)
//	address                -> evm.Word (low 20 bytes)
//	bool                   -> bool
//	bytesN                 -> []byte of length N
//	bytes / bytes[maxLen]  -> []byte
//	string / string[max]   -> string
//	T[N] / T[]             -> []Value
//	tuple                  -> []Value (one per field)
type Value interface{}

// EncodeCall produces complete call data: the 4-byte selector followed by
// the encoded arguments.
func EncodeCall(sig Signature, values []Value) ([]byte, error) {
	body, err := Encode(sig.Inputs, values)
	if err != nil {
		return nil, fmt.Errorf("abi: encode %s: %w", sig.Canonical(), err)
	}
	sel := sig.Selector()
	return append(sel[:], body...), nil
}

// Encode encodes a parameter sequence with the standard head/tail layout.
func Encode(types []Type, values []Value) ([]byte, error) {
	if len(types) != len(values) {
		return nil, fmt.Errorf("abi: %d types but %d values", len(types), len(values))
	}
	headSize := 0
	for i := range types {
		headSize += types[i].HeadSize()
	}
	head := make([]byte, 0, headSize)
	var tail []byte
	for i := range types {
		enc, err := encodeValue(types[i], values[i])
		if err != nil {
			return nil, fmt.Errorf("abi: argument %d (%s): %w", i, types[i].Display(), err)
		}
		if types[i].IsDynamic() {
			off := evm.WordFromUint64(uint64(headSize + len(tail))).Bytes32()
			head = append(head, off[:]...)
			tail = append(tail, enc...)
		} else {
			head = append(head, enc...)
		}
	}
	return append(head, tail...), nil
}

// encodeValue encodes one value of type t (including, for dynamic types,
// its length prefix but not its offset slot).
func encodeValue(t Type, v Value) ([]byte, error) {
	switch t.Kind {
	case KindUint, KindInt, KindDecimal, KindAddress:
		w, ok := v.(evm.Word)
		if !ok {
			return nil, fmt.Errorf("want evm.Word, got %T", v)
		}
		b := w.Bytes32()
		return b[:], nil
	case KindBool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", v)
		}
		out := make([]byte, 32)
		if b {
			out[31] = 1
		}
		return out, nil
	case KindFixedBytes:
		b, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("want []byte, got %T", v)
		}
		if len(b) != t.Size {
			return nil, fmt.Errorf("bytes%d value has %d bytes", t.Size, len(b))
		}
		out := make([]byte, 32)
		copy(out, b)
		return out, nil
	case KindBytes, KindBoundedBytes:
		b, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("want []byte, got %T", v)
		}
		if t.Kind == KindBoundedBytes && len(b) > t.MaxLen {
			return nil, fmt.Errorf("bytes[%d] value has %d bytes", t.MaxLen, len(b))
		}
		return encodeLengthPrefixed(b), nil
	case KindString, KindBoundedString:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", v)
		}
		if t.Kind == KindBoundedString && len(s) > t.MaxLen {
			return nil, fmt.Errorf("string[%d] value has %d bytes", t.MaxLen, len(s))
		}
		return encodeLengthPrefixed([]byte(s)), nil
	case KindArray:
		items, ok := v.([]Value)
		if !ok {
			return nil, fmt.Errorf("want []Value, got %T", v)
		}
		if len(items) != t.Len {
			return nil, fmt.Errorf("array needs %d items, got %d", t.Len, len(items))
		}
		return encodeSequence(repeatType(*t.Elem, t.Len), items)
	case KindSlice:
		items, ok := v.([]Value)
		if !ok {
			return nil, fmt.Errorf("want []Value, got %T", v)
		}
		num := evm.WordFromUint64(uint64(len(items))).Bytes32()
		body, err := encodeSequence(repeatType(*t.Elem, len(items)), items)
		if err != nil {
			return nil, err
		}
		return append(num[:], body...), nil
	case KindTuple:
		items, ok := v.([]Value)
		if !ok {
			return nil, fmt.Errorf("want []Value, got %T", v)
		}
		if len(items) != len(t.Fields) {
			return nil, fmt.Errorf("tuple needs %d fields, got %d", len(t.Fields), len(items))
		}
		return encodeSequence(t.Fields, items)
	default:
		return nil, fmt.Errorf("unencodable kind %d", t.Kind)
	}
}

// encodeSequence applies the head/tail layout to a fixed list of types; it
// is the frame encoding shared by top-level arguments, array bodies, and
// tuples.
func encodeSequence(types []Type, values []Value) ([]byte, error) {
	return Encode(types, values)
}

func repeatType(t Type, n int) []Type {
	out := make([]Type, n)
	for i := range out {
		out[i] = t
	}
	return out
}

func encodeLengthPrefixed(b []byte) []byte {
	num := evm.WordFromUint64(uint64(len(b))).Bytes32()
	out := append([]byte{}, num[:]...)
	out = append(out, b...)
	if pad := (32 - len(b)%32) % 32; pad > 0 {
		out = append(out, make([]byte, pad)...)
	}
	return out
}
