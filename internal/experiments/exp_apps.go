package experiments

import (
	"fmt"

	"sigrec/internal/abi"
	"sigrec/internal/chain"
	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/erays"
	"sigrec/internal/fuzz"
	"sigrec/internal/parchecker"
)

// E11ParChecker reproduces §6.1: scanning a transaction stream for invalid
// actual arguments and short-address attacks, using signatures recovered by
// SigRec from the deployed bytecode.
func E11ParChecker(p Params) (Table, error) {
	// Contracts whose signatures ParChecker will recover.
	cfg := corpus.DefaultConfig(p.seed() + 11)
	cfg.Solidity = p.scaled(200)
	cfg.Vyper = 0
	cfg.AmbiguityRate = 0 // the scan needs faithful signatures
	c, err := corpus.Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	var sigs []abi.Signature
	var results []core.Result
	for _, e := range c.Entries {
		res, err := core.Recover(e.Code)
		if err != nil {
			continue
		}
		results = append(results, res)
		sigs = append(sigs, e.Sig)
	}
	checker := parchecker.FromRecovery(results...)

	ccfg := chain.DefaultConfig(p.seed() + 11)
	ccfg.Blocks = p.scaled(ccfg.Blocks)
	w, err := chain.Generate(ccfg, sigs)
	if err != nil {
		return Table{}, err
	}
	var caught, missed, falseAlarm, attacks, attacksCaught int
	for _, tx := range w.Txs {
		rep := checker.Check(tx.CallData)
		switch tx.Kind {
		case chain.Valid:
			if rep.Verdict != parchecker.VerdictValid && rep.Verdict != parchecker.VerdictUnknown {
				falseAlarm++
			}
		case chain.ShortAddress:
			attacks++
			if rep.Verdict == parchecker.VerdictShortAddress {
				attacksCaught++
				caught++
			} else if rep.Verdict == parchecker.VerdictInvalid {
				caught++
			} else {
				missed++
			}
		default:
			if rep.Verdict == parchecker.VerdictInvalid || rep.Verdict == parchecker.VerdictShortAddress {
				caught++
			} else {
				missed++
			}
		}
	}
	invalidTotal := caught + missed
	t := Table{
		ID: "e11", Ref: "§6.1 + Table 6",
		Title:  "ParChecker: invalid actual arguments and short-address attacks",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"transactions scanned", fmt.Sprint(len(w.Txs))},
			{"invalid transactions (ground truth)", fmt.Sprint(invalidTotal)},
			{"invalid detected", fmt.Sprintf("%d (%s)", caught, pct(caught, invalidTotal))},
			{"short-address attacks (ground truth)", fmt.Sprint(attacks)},
			{"short-address attacks flagged", fmt.Sprintf("%d (%s)", attacksCaught, pct(attacksCaught, attacks))},
			{"false alarms on valid transactions", fmt.Sprint(falseAlarm)},
		},
		Notes: []string{
			"paper: 1,024,974 invalid transactions (~1%), 73 short-address attacks",
			"padding rules enforced per Table 6 (see parchecker.PaddingRules)",
		},
	}
	for _, r := range parchecker.PaddingRules() {
		t.Notes = append(t.Notes, "rule: "+r.Type+": "+r.Rule)
	}
	return t, nil
}

// E12Fuzzing reproduces §6.2: ContractFuzzer with recovered signatures
// versus ContractFuzzer⁻ with random byte inputs (paper: +23% bugs, +25%
// vulnerable contracts).
func E12Fuzzing(p Params) (Table, error) {
	targets, err := fuzz.GenerateBugContracts(p.seed()+12, p.scaled(1000), 0.20)
	if err != nil {
		return Table{}, err
	}
	// The typed fuzzer consumes SigRec's recovery, not the ground truth.
	inputs := make(map[string][]abi.Type, len(targets))
	for _, bc := range targets {
		rec, _ := core.RecoverFunction(bc.Code, bc.Sig.Selector())
		inputs[bc.Sig.Canonical()] = rec.Inputs
	}
	budget := 96
	typed := fuzz.RunCampaign(&fuzz.Typed{Inputs: inputs}, targets, budget, p.seed())
	guided := fuzz.RunCampaign(&fuzz.Guided{}, targets, budget, p.seed())
	random := fuzz.RunCampaign(&fuzz.Random{}, targets, budget, p.seed())
	gain := "n/a"
	if random.Found > 0 {
		gain = fmt.Sprintf("+%.0f%%", 100*float64(typed.Found-random.Found)/float64(random.Found))
	}
	return Table{
		ID: "e12", Ref: "§6.2",
		Title:  "fuzzing with and without recovered signatures",
		Header: []string{"fuzzer", "contracts", "bugs found", "share"},
		Rows: [][]string{
			{"ContractFuzzer (SigRec signatures)", fmt.Sprint(typed.Total), fmt.Sprint(typed.Found), pct(typed.Found, typed.Total)},
			{"ContractFuzzer-cov (coverage-guided bytes)", fmt.Sprint(guided.Total), fmt.Sprint(guided.Found), pct(guided.Found, guided.Total)},
			{"ContractFuzzer- (random bytes)", fmt.Sprint(random.Total), fmt.Sprint(random.Found), pct(random.Found, random.Total)},
			{"advantage of signatures over random", "", gain, ""},
		},
		Notes: []string{
			"paper: signatures give ContractFuzzer ~23% more bugs",
			"the coverage-guided row extends the paper: feedback recovers part of the gap without type knowledge",
		},
	}, nil
}

// E13Erays reproduces §6.3: readability gains of Erays+ over Erays,
// measured per deployed (multi-function) contract as the paper does.
func E13Erays(p Params) (Table, error) {
	deployed, err := corpus.GenerateDeployed(corpus.DeployedConfig{
		Seed:      p.seed() + 13,
		Contracts: p.scaled(200),
		MinFuncs:  2,
		MaxFuncs:  5,
		MaxParams: 3,
	})
	if err != nil {
		return Table{}, err
	}
	var sumTypes, sumNames, sumNums, sumRemoved, improved, n int
	for _, dc := range deployed {
		res, err := core.Recover(dc.Code)
		if err != nil {
			continue
		}
		enh := erays.Enhance(dc.Code, res)
		n++
		sumTypes += enh.Metrics.AddedTypes
		sumNames += enh.Metrics.AddedNames
		sumNums += enh.Metrics.AddedNums
		sumRemoved += enh.Metrics.RemovedLines
		if enh.Metrics.AddedTypes+enh.Metrics.AddedNames+enh.Metrics.RemovedLines > 0 {
			improved++
		}
	}
	if n == 0 {
		return Table{}, fmt.Errorf("e13: nothing lifted")
	}
	avg := func(v int) string { return fmt.Sprintf("%.1f", float64(v)/float64(n)) }
	return Table{
		ID: "e13", Ref: "§6.3",
		Title:  "Erays+ readability improvement over Erays",
		Header: []string{"metric", "average per contract"},
		Rows: [][]string{
			{"contracts processed", fmt.Sprint(n)},
			{"contracts improved", fmt.Sprintf("%d (%s)", improved, pct(improved, n))},
			{"types added", avg(sumTypes)},
			{"parameter names added", avg(sumNames)},
			{"num() names added", avg(sumNums)},
			{"access-code lines removed", avg(sumRemoved)},
		},
		Notes: []string{"paper: averages 5.5 types, 15 names, 3.4 nums, 15 removed lines"},
	}, nil
}
