package experiments

import (
	"errors"
	"fmt"

	"sigrec/internal/abi"
	"sigrec/internal/baselines"
	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/efsd"
)

// toolSet builds the comparison tools around a database.
func toolSet(db *efsd.DB) []baselines.Tool {
	return []baselines.Tool{
		&baselines.Gigahorse{DB: db},
		&baselines.Eveem{DB: db},
		&baselines.DBOnly{ToolName: "OSD", DB: db},
		&baselines.DBOnly{ToolName: "EBD", DB: db},
		&baselines.DBOnly{ToolName: "JEB", DB: db},
	}
}

// outcome classifies one tool run against ground truth.
type outcome int

const (
	outCorrect outcome = iota + 1
	outWrongTypes
	outWrongCount
	outNoResult
	outAborted
)

func classify(e corpus.Entry, got string, err error) outcome {
	switch {
	case errors.Is(err, baselines.ErrAborted):
		return outAborted
	case err != nil:
		return outNoResult
	}
	want := e.Sig.TypeList()
	if got == want {
		return outCorrect
	}
	wantN := len(e.Sig.Inputs)
	gotSig, perr := abi.ParseSignature("f" + got)
	if perr != nil || len(gotSig.Inputs) != wantN {
		return outWrongCount
	}
	return outWrongTypes
}

// sigRecOutcome runs SigRec as a tool.
func sigRecOutcome(e corpus.Entry) outcome {
	rec, _ := core.RecoverFunction(e.Code, e.Sig.Selector())
	got := abi.Signature{Name: e.Sig.Name, Inputs: rec.Inputs}
	if got.EqualTypes(e.Sig) {
		return outCorrect
	}
	if len(rec.Inputs) != len(e.Sig.Inputs) {
		return outWrongCount
	}
	return outWrongTypes
}

// comparisonTable runs SigRec plus every baseline over entries and
// tabulates the outcome categories.
func comparisonTable(entries []corpus.Entry, db *efsd.DB) Table {
	tools := toolSet(db)
	header := []string{"outcome", "SigRec"}
	for _, tool := range tools {
		header = append(header, tool.Name())
	}
	counts := make(map[string][]int) // outcome label -> per-column counts
	labels := []string{"correct", "wrong types", "wrong count", "no result", "aborted"}
	for _, l := range labels {
		counts[l] = make([]int, 1+len(tools))
	}
	record := func(col int, o outcome) {
		switch o {
		case outCorrect:
			counts["correct"][col]++
		case outWrongTypes:
			counts["wrong types"][col]++
		case outWrongCount:
			counts["wrong count"][col]++
		case outNoResult:
			counts["no result"][col]++
		case outAborted:
			counts["aborted"][col]++
		}
	}
	for _, e := range entries {
		record(0, sigRecOutcome(e))
		for ti, tool := range tools {
			got, err := tool.RecoverTypes(e.Code, e.Sig.Selector())
			record(ti+1, classify(e, got, err))
		}
	}
	var t Table
	t.Header = header
	n := len(entries)
	for _, l := range labels {
		row := []string{l}
		for _, v := range counts[l] {
			row = append(row, pct(v, n))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E6Dataset1 reproduces Table 1: closed-source contracts, where no ground
// truth exists and the paper reports agreement with SigRec plus abort
// rates. Here we *do* know the truth (the generator's labels), so the table
// reports both agreement-with-SigRec and the abort/no-result rates.
func E6Dataset1(p Params) (Table, error) {
	cfg := corpus.DefaultConfig(p.seed() + 1)
	cfg.Solidity = p.scaled(1500)
	cfg.Vyper = 0
	c, err := corpus.Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	// Closed source: the database knows a mainnet-like share of commonly
	// deployed functions.
	db := buildDB(c.Entries, 0.30, p.seed())
	tools := toolSet(db)
	t := Table{
		ID: "e6", Ref: "Table 1 (RQ5)",
		Title:  "closed-source contracts: agreement with SigRec",
		Header: []string{"tool", "same as SigRec", "no result", "aborted"},
		Notes:  []string{"paper: baselines agree on only a minority; Gigahorse aborts abnormally"},
	}
	for _, tool := range tools {
		same, noRes, aborted := 0, 0, 0
		for _, e := range c.Entries {
			rec, _ := core.RecoverFunction(e.Code, e.Sig.Selector())
			mine := abi.Signature{Name: "f", Inputs: rec.Inputs}.TypeList()
			got, err := tool.RecoverTypes(e.Code, e.Sig.Selector())
			switch {
			case errors.Is(err, baselines.ErrAborted):
				aborted++
			case err != nil:
				noRes++
			case got == mine:
				same++
			}
		}
		n := len(c.Entries)
		t.Rows = append(t.Rows, []string{tool.Name(), pct(same, n), pct(noRes, n), pct(aborted, n)})
	}
	return t, nil
}

// E7Dataset2 reproduces Table 2: 1,000 synthesized functions, none of them
// in any database (paper: SigRec 98.8%, OSD/EBD/JEB 0%, Eveem 18.3%).
func E7Dataset2(p Params) (Table, error) {
	entries, err := corpus.GenerateSynthesized(p.seed() + 2)
	if err != nil {
		return Table{}, err
	}
	db := efsd.New() // synthesized functions exist nowhere
	t := comparisonTable(entries, db)
	t.ID, t.Ref = "e7", "Table 2 (RQ5)"
	t.Title = "1,000 synthesized functions"
	t.Notes = []string{"paper: SigRec 98.8%; database tools 0%; Eveem 18.3% via heuristics"}
	return t, nil
}

// E8Dataset3 reproduces Table 3: open-source contracts with EFSD covering
// about half of the signatures (paper: >49% of open-source signatures are
// missing from EFSD; SigRec leads by >= 22.5%).
func E8Dataset3(p Params) (Table, error) {
	cfg := corpus.DefaultConfig(p.seed() + 3)
	cfg.Solidity = p.scaled(1500)
	cfg.Vyper = p.scaled(120)
	c, err := corpus.Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	db := buildDB(c.Entries, 0.51, p.seed())
	t := comparisonTable(c.Entries, db)
	t.ID, t.Ref = "e8", "Table 3 (RQ5)"
	t.Title = "open-source contracts (EFSD coverage 51%)"
	t.Notes = []string{"paper: SigRec 98.7%, Eveem 76.2%, OSD/EBD/JEB <= 51%"}
	return t, nil
}

// E9StructNested reproduces Table 4: recovery of struct and nested-array
// parameters (paper: SigRec 61.3%, every baseline <= 11%).
func E9StructNested(p Params) (Table, error) {
	cfg := corpus.DefaultConfig(p.seed() + 4)
	cfg.Solidity = p.scaled(4000)
	cfg.Vyper = 0
	c, err := corpus.Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	var subset []corpus.Entry
	for _, e := range c.Entries {
		if hasStructOrNested(e.Sig) {
			subset = append(subset, e)
		}
	}
	if len(subset) == 0 {
		return Table{}, fmt.Errorf("e9: empty struct/nested subset")
	}
	db := buildDB(subset, 0.101, p.seed()) // the paper: 10.1% of these are in EFSD
	t := comparisonTable(subset, db)
	t.ID, t.Ref = "e9", "Table 4 (RQ5)"
	t.Title = fmt.Sprintf("struct and nested-array parameters (%d functions)", len(subset))
	t.Notes = []string{
		"paper: SigRec 61.3% (static structs flatten), baselines <= 11%",
	}
	return t, nil
}

func hasStructOrNested(sig abi.Signature) bool {
	for _, t := range sig.Inputs {
		if t.Kind == abi.KindTuple {
			return true
		}
		if (t.Kind == abi.KindSlice || t.Kind == abi.KindArray) && t.Elem.IsDynamic() {
			return true
		}
	}
	return false
}

// E10Vyper reproduces Table 5 / §5.6's Vyper comparison (paper: SigRec
// 97.8% on Vyper functions; the baselines' rules target solc patterns).
func E10Vyper(p Params) (Table, error) {
	cfg := corpus.DefaultConfig(p.seed() + 5)
	cfg.Solidity = 0
	cfg.Vyper = p.scaled(300)
	c, err := corpus.Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	db := buildDB(c.Entries, 0.10, p.seed())
	t := comparisonTable(c.Entries, db)
	t.ID, t.Ref = "e10", "Table 5 (RQ5)"
	t.Title = "Vyper contracts"
	t.Notes = []string{"paper: SigRec far ahead; baselines keyed to solc patterns"}
	return t, nil
}

func buildDB(entries []corpus.Entry, coverage float64, seed int64) *efsd.DB {
	sigs := make([]abi.Signature, 0, len(entries))
	for _, e := range entries {
		sigs = append(sigs, e.Sig)
	}
	return efsd.Build(sigs, coverage, seed)
}
