// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and §6) on the synthetic substrate. Each experiment is a
// function from a Params (scale knobs) to a Table; cmd/experiments prints
// them, bench_test.go at the module root benchmarks them, and
// EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"slices"
	"strings"
)

// Table is one reproduced table or figure.
type Table struct {
	// ID is the experiment id ("E1".."E13").
	ID string
	// Ref is the paper reference ("Table 2", "Fig. 19", ...).
	Ref string
	// Title describes the experiment.
	Title string
	// Header and Rows are the tabular payload.
	Header []string
	Rows   [][]string
	// Notes carry caveats (substitutions, scale).
	Notes []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %s\n", t.ID, t.Ref, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %s", c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s (%s)\n\n", strings.ToUpper(t.ID), t.Title, t.Ref)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Header))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
	}
	return b.String()
}

// Params scales the experiments. Zero values select the full defaults.
type Params struct {
	// Seed drives every generator.
	Seed int64
	// Scale multiplies corpus sizes; 1.0 is the full run, tests use less.
	Scale float64
}

func (p Params) scaled(full int) int {
	s := p.Scale
	if s <= 0 {
		s = 1.0
	}
	n := int(float64(full) * s)
	if n < 10 {
		n = 10
	}
	return n
}

func (p Params) seed() int64 {
	if p.Seed == 0 {
		return 42
	}
	return p.Seed
}

// Runner is one registered experiment.
type Runner struct {
	ID  string
	Ref string
	Run func(Params) (Table, error)
}

// All returns the experiment registry in order.
func All() []Runner {
	return []Runner{
		{"e1", "Table: RQ1", E1Accuracy},
		{"e2", "Fig. 15/16: RQ2", E2CompilerVersions},
		{"e3", "Fig. 17: RQ3", E3TimeDistribution},
		{"e4", "Fig. 18: RQ3", E4DimensionSweep},
		{"e5", "Fig. 19: RQ4", E5RuleUsage},
		{"e6", "Table 1: RQ5", E6Dataset1},
		{"e7", "Table 2: RQ5", E7Dataset2},
		{"e8", "Table 3: RQ5", E8Dataset3},
		{"e9", "Table 4: RQ5", E9StructNested},
		{"e10", "Table 5: RQ5", E10Vyper},
		{"e11", "§6.1 + Table 6", E11ParChecker},
		{"e12", "§6.2", E12Fuzzing},
		{"e13", "§6.3", E13Erays},
		{"e14", "§7 ablation", E14Obfuscation},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// pct formats a ratio as a percentage.
func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// sortedKeys returns map keys in order.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
