package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// small returns test-scale parameters.
func small() Params { return Params{Seed: 1, Scale: 0.05} }

// parsePct turns "97.5%" into 97.5.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a percentage: %q", s)
	}
	return v
}

func cell(t *testing.T, tb Table, rowLabel, col string) string {
	t.Helper()
	ci := -1
	for i, h := range tb.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q missing in %v", col, tb.Header)
	}
	for _, row := range tb.Rows {
		if row[0] == rowLabel {
			return row[ci]
		}
	}
	t.Fatalf("row %q missing in table %s", rowLabel, tb.ID)
	return ""
}

func TestRegistryComplete(t *testing.T) {
	rs := All()
	if len(rs) != 14 {
		t.Fatalf("%d experiments registered", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := ByID(r.ID); !ok {
			t.Errorf("ByID(%s) failed", r.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestE1AccuracyBand(t *testing.T) {
	tb, err := E1Accuracy(small())
	if err != nil {
		t.Fatal(err)
	}
	sol := parsePct(t, cell(t, tb, "solidity", "accuracy"))
	if sol < 94 || sol > 100 {
		t.Errorf("solidity accuracy %.1f%% outside the paper band\n%s", sol, tb)
	}
	vy := parsePct(t, cell(t, tb, "vyper", "accuracy"))
	if vy < 90 {
		t.Errorf("vyper accuracy %.1f%% too low\n%s", vy, tb)
	}
}

func TestE2VersionsFlat(t *testing.T) {
	tb, err := E2CompilerVersions(Params{Seed: 2, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 20 {
		t.Fatalf("only %d version rows", len(tb.Rows))
	}
	// Versions with a meaningful sample must stay accurate.
	for _, row := range tb.Rows {
		n, _ := strconv.Atoi(row[1])
		if n < 8 {
			continue
		}
		if acc := parsePct(t, row[2]); acc < 85 {
			t.Errorf("version %s accuracy %.1f%%", row[0], acc)
		}
	}
}

func TestE3TimeShape(t *testing.T) {
	tb, err := E3TimeDistribution(small())
	if err != nil {
		t.Fatal(err)
	}
	fast := parsePct(t, tb.Rows[0][2]) + parsePct(t, tb.Rows[1][2])
	if fast < 80 {
		t.Errorf("only %.1f%% of recoveries under 10ms\n%s", fast, tb)
	}
}

func TestE4Linear(t *testing.T) {
	tb, err := E4DimensionSweep(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 20 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// The recovered dimension structure must track the input dimension for
	// the first rows (1..8 under the nesting bound).
	if tb.Rows[0][1] != "uint256[2]" {
		t.Errorf("dim 1 recovered as %s", tb.Rows[0][1])
	}
	if !strings.Contains(tb.Rows[2][1], "[1]") {
		t.Errorf("dim 3 recovered as %s", tb.Rows[2][1])
	}
}

func TestE5AllRulesUsed(t *testing.T) {
	tb, err := E5RuleUsage(Params{Seed: 5, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 31 {
		t.Fatalf("%d rule rows", len(tb.Rows))
	}
	zero := []string{}
	for _, row := range tb.Rows {
		if row[1] == "0" {
			zero = append(zero, row[0])
		}
	}
	if len(zero) > 0 {
		t.Errorf("rules never used: %v", zero)
	}
}

func TestE7SynthesizedShape(t *testing.T) {
	tb, err := E7Dataset2(Params{Seed: 7, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	sig := parsePct(t, cell(t, tb, "correct", "SigRec"))
	if sig < 95 {
		t.Errorf("SigRec on synthesized = %.1f%%\n%s", sig, tb)
	}
	for _, dbTool := range []string{"OSD", "EBD", "JEB"} {
		if v := parsePct(t, cell(t, tb, "correct", dbTool)); v != 0 {
			t.Errorf("%s on synthesized = %.1f%%, want 0", dbTool, v)
		}
	}
	ev := parsePct(t, cell(t, tb, "correct", "Eveem"))
	if ev <= 0 || ev >= sig {
		t.Errorf("Eveem = %.1f%% (SigRec %.1f%%)", ev, sig)
	}
}

func TestE8OpenSourceShape(t *testing.T) {
	tb, err := E8Dataset3(small())
	if err != nil {
		t.Fatal(err)
	}
	sig := parsePct(t, cell(t, tb, "correct", "SigRec"))
	osd := parsePct(t, cell(t, tb, "correct", "OSD"))
	ev := parsePct(t, cell(t, tb, "correct", "Eveem"))
	if sig < 90 {
		t.Errorf("SigRec = %.1f%%", sig)
	}
	if osd > 60 || osd < 30 {
		t.Errorf("OSD = %.1f%%, want around the 51%% DB coverage", osd)
	}
	if ev <= osd {
		t.Errorf("Eveem (%.1f%%) must beat OSD (%.1f%%) via heuristics", ev, osd)
	}
	if sig-osd < 20 {
		t.Errorf("SigRec lead over OSD only %.1f points", sig-osd)
	}
}

func TestE9StructNestedShape(t *testing.T) {
	tb, err := E9StructNested(Params{Seed: 9, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sig := parsePct(t, cell(t, tb, "correct", "SigRec"))
	gig := parsePct(t, cell(t, tb, "correct", "Gigahorse"))
	if sig < 40 {
		t.Errorf("SigRec on struct/nested = %.1f%%", sig)
	}
	if gig >= sig {
		t.Errorf("Gigahorse %.1f%% >= SigRec %.1f%%", gig, sig)
	}
}

func TestE11ParCheckerShape(t *testing.T) {
	tb, err := E11ParChecker(small())
	if err != nil {
		t.Fatal(err)
	}
	var falseAlarms, detected string
	for _, row := range tb.Rows {
		switch row[0] {
		case "false alarms on valid transactions":
			falseAlarms = row[1]
		case "invalid detected":
			detected = row[1]
		}
	}
	if falseAlarms != "0" {
		t.Errorf("false alarms = %s\n%s", falseAlarms, tb)
	}
	if !strings.Contains(detected, "(100.0%)") {
		t.Errorf("invalid detection not complete: %s\n%s", detected, tb)
	}
}

func TestE12FuzzShape(t *testing.T) {
	tb, err := E12Fuzzing(Params{Seed: 12, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	typed := 0
	random := 0
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "ContractFuzzer (") {
			typed, _ = strconv.Atoi(row[2])
		}
		if strings.HasPrefix(row[0], "ContractFuzzer-") {
			random, _ = strconv.Atoi(row[2])
		}
	}
	if typed <= random {
		t.Errorf("typed %d <= random %d\n%s", typed, random, tb)
	}
}

func TestE13EraysShape(t *testing.T) {
	tb, err := E13Erays(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"types added", "parameter names added", "access-code lines removed"} {
		var v string
		for _, row := range tb.Rows {
			if row[0] == metric {
				v = row[1]
			}
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			t.Errorf("%s = %q", metric, v)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID: "x", Ref: "r", Title: "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	s := tb.String()
	for _, want := range []string{"x (r): t", "a", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestE14ObfuscationShape(t *testing.T) {
	tb, err := E14Obfuscation(Params{Seed: 14, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	get := func(row string, col int) float64 {
		for _, r := range tb.Rows {
			if r[0] == row {
				return parsePct(t, r[col])
			}
		}
		t.Fatalf("row %q missing", row)
		return 0
	}
	orig := get("original", 1)
	noise := get("noise", 1)
	shift := get("shift-mask", 1)
	mod := get("mod-mask", 1)
	if orig < 95 {
		t.Errorf("original SigRec accuracy %.1f%%", orig)
	}
	if noise < orig-3 {
		t.Errorf("noise moved SigRec: %.1f%% vs %.1f%%\n%s", noise, orig, tb)
	}
	if shift < orig-5 {
		t.Errorf("shift-mask not covered by generalized rules: %.1f%% vs %.1f%%\n%s", shift, orig, tb)
	}
	if mod >= orig-2 {
		t.Errorf("mod-mask should visibly reduce accuracy: %.1f%% vs %.1f%%\n%s", mod, orig, tb)
	}
	// The adjacency-based heuristic baseline must crumble under noise.
	evOrig := get("original", 2)
	evNoise := get("noise", 2)
	if evNoise >= evOrig {
		t.Errorf("Eveem heuristics unaffected by noise: %.1f%% vs %.1f%%\n%s", evNoise, evOrig, tb)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{
		ID: "e0", Ref: "ref", Title: "title",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3"}},
		Notes:  []string{"caveat"},
	}
	md := tb.Markdown()
	for _, want := range []string{"## E0", "| a | b |", "| --- | --- |", "| 1 | 2 |", "> caveat"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
