package experiments

import (
	"fmt"

	"sigrec/internal/abi"
	"sigrec/internal/baselines"
	"sigrec/internal/core"
	"sigrec/internal/corpus"
	"sigrec/internal/obfuscate"
)

// E14Obfuscation is the §7 ablation: accuracy of SigRec (and the Eveem
// heuristic baseline) against semantics-preserving instruction
// substitution. This extends the paper, which names the attack as future
// work: inert noise should not move semantics-based inference, shift-based
// mask rewriting is covered by the generalized mask rules, and MOD-based
// masking is the documented open limitation.
func E14Obfuscation(p Params) (Table, error) {
	cfg := corpus.DefaultConfig(p.seed() + 14)
	cfg.Solidity = p.scaled(600)
	cfg.Vyper = 0
	cfg.AmbiguityRate = 0 // isolate the obfuscation effect
	c, err := corpus.Generate(cfg)
	if err != nil {
		return Table{}, err
	}
	eveem := &baselines.Eveem{}

	measure := func(transform func([]byte) ([]byte, error)) (sig, ev string, err error) {
		sigOK, evOK, total := 0, 0, 0
		for _, e := range c.Entries {
			code := e.Code
			if transform != nil {
				code, err = transform(e.Code)
				if err != nil {
					return "", "", err
				}
			}
			total++
			rec, _ := core.RecoverFunction(code, e.Sig.Selector())
			got := abi.Signature{Name: "f", Inputs: rec.Inputs}
			if got.EqualTypes(e.Sig) {
				sigOK++
			}
			if types, err := eveem.RecoverTypes(code, e.Sig.Selector()); err == nil && types == e.Sig.TypeList() {
				evOK++
			}
		}
		return pct(sigOK, total), pct(evOK, total), nil
	}

	t := Table{
		ID: "e14", Ref: "§7 (extension)",
		Title:  "robustness against semantics-preserving obfuscation",
		Header: []string{"bytecode", "SigRec", "Eveem heuristics"},
		Notes: []string{
			"noise: inert DUP/POP pairs between load and mask",
			"shift-mask: AND masks rewritten to SHL/SHR round trips (generalized rules apply)",
			"mod-mask: low masks rewritten to MOD 2^(8m) (documented open limitation)",
		},
	}
	rows := []struct {
		label string
		level obfuscate.Level
	}{
		{"original", 0},
		{"noise", obfuscate.LevelNoise},
		{"shift-mask", obfuscate.LevelShiftMask},
		{"mod-mask", obfuscate.LevelModMask},
	}
	for _, r := range rows {
		var transform func([]byte) ([]byte, error)
		if r.level != 0 {
			lvl := r.level
			transform = func(code []byte) ([]byte, error) {
				return obfuscate.Obfuscate(code, lvl, p.seed())
			}
		}
		sigAcc, evAcc, err := measure(transform)
		if err != nil {
			return Table{}, fmt.Errorf("e14 %s: %w", r.label, err)
		}
		t.Rows = append(t.Rows, []string{r.label, sigAcc, evAcc})
	}
	return t, nil
}
