package core

import (
	"sigrec/internal/telemetry"
)

// tel is the pipeline-wide metrics registry. Every recovery entry point
// (Recover, RecoverContext, RecoverFunction, RecoverAll) reports into it;
// Metrics exposes it to the facade and CLI.
var tel = telemetry.NewRegistry()

// Pre-resolved instruments so the hot path never touches the registry map.
var (
	mRecoveries    = tel.Counter("sigrec_recoveries_total")
	mRecoverErrors = tel.Counter("sigrec_recover_errors_total")
	mTruncated     = tel.Counter("sigrec_recoveries_truncated_total")
	mFunctions     = tel.Counter("sigrec_functions_recovered_total")
	mPathsExplored = tel.Counter("sigrec_tase_paths_explored_total")
	mPathsPruned   = tel.Counter("sigrec_tase_paths_pruned_total")
	mTASESteps     = tel.Counter("sigrec_tase_steps_total")
	mEvents        = tel.Counter("sigrec_tase_events_collected_total")
	mCacheHits     = tel.Counter("sigrec_cache_hits_total")
	mCacheMisses   = tel.Counter("sigrec_cache_misses_total")
	mCacheEvicted  = tel.Counter("sigrec_cache_evictions_total")
	mCacheEntries  = tel.Gauge("sigrec_cache_entries")
	mBatches       = tel.Counter("sigrec_batches_total")
	mRecoverUS     = tel.Histogram("sigrec_recover_duration_microseconds", nil)
)

// Metrics returns the pipeline's telemetry registry. Counters are
// cumulative for the process lifetime; use Snapshot deltas to meter a
// single run.
func Metrics() *telemetry.Registry { return tel }

// recordTASE folds one finished exploration into the aggregate counters.
func recordTASE(t *tase) {
	mPathsExplored.Add(uint64(t.paths))
	mPathsPruned.Add(uint64(t.pruned))
	mTASESteps.Add(uint64(t.totSteps))
	mEvents.Add(uint64(len(t.events)))
}
