package core

import (
	"sigrec/internal/telemetry"
)

// tel is the pipeline-wide metrics registry. Every recovery entry point
// (Recover, RecoverContext, RecoverFunction, RecoverAll) reports into it;
// Metrics exposes it to the facade and CLI.
var tel = telemetry.NewRegistry()

// Pre-resolved instruments so the hot path never touches the registry map.
var (
	mRecoveries     = tel.Counter("sigrec_recoveries_total")
	mRecoverErrors  = tel.Counter("sigrec_recover_errors_total")
	mTruncated      = tel.Counter("sigrec_recoveries_truncated_total")
	mFunctions      = tel.Counter("sigrec_functions_recovered_total")
	mPathsExplored  = tel.Counter("sigrec_tase_paths_explored_total")
	mPathsPruned    = tel.Counter("sigrec_tase_paths_pruned_total")
	mTASESteps      = tel.Counter("sigrec_tase_steps_total")
	mEvents         = tel.Counter("sigrec_tase_events_collected_total")
	mCacheHits      = tel.Counter("sigrec_cache_hits_total")
	mCacheMisses    = tel.Counter("sigrec_cache_misses_total")
	mCacheCoalesced = tel.Counter("sigrec_cache_coalesced_total")
	mCacheEvicted   = tel.Counter("sigrec_cache_evictions_total")
	mCacheEntries   = tel.Gauge("sigrec_cache_entries")
	mBatches        = tel.Counter("sigrec_batches_total")
	mRecoverUS      = tel.Histogram("sigrec_recover_duration_microseconds", nil)

	// Interner and copy-on-write state instruments. Hit rate is exposed as a
	// permille gauge so it reads directly off the exposition endpoint; pool
	// reuse is derived as gets - allocs.
	mInternHits    = tel.Counter("sigrec_intern_hits_total")
	mInternMisses  = tel.Counter("sigrec_intern_misses_total")
	mInternHitRate = tel.Gauge("sigrec_intern_hit_rate_permille")
	mCloneBytes    = tel.Counter("sigrec_state_clone_bytes_total")
	mStateGets     = tel.Counter("sigrec_state_pool_gets_total")
	mStateAllocs   = tel.Counter("sigrec_state_pool_allocs_total")
)

// Metrics returns the pipeline's telemetry registry. Counters are
// cumulative for the process lifetime; use Snapshot deltas to meter a
// single run.
func Metrics() *telemetry.Registry { return tel }

// finishTASE folds one finished exploration into the aggregate counters
// and retires the engine's interner. Per-trace counts are accumulated
// locally during exploration and flushed here in one shot, so the hot loop
// never touches an atomic.
func finishTASE(t *tase) {
	mPathsExplored.Add(uint64(t.paths))
	mPathsPruned.Add(uint64(t.pruned))
	mTASESteps.Add(uint64(t.totSteps))
	mEvents.Add(uint64(len(t.events)))
	mStateGets.Add(t.stateGets)
	mCloneBytes.Add(t.cloneBytes)
	if t.it != nil {
		mInternHits.Add(t.it.hits)
		mInternMisses.Add(t.it.misses)
		if total := mInternHits.Load() + mInternMisses.Load(); total > 0 {
			mInternHitRate.Set(int64(mInternHits.Load() * 1000 / total))
		}
		t.it.release()
		t.it = nil
	}
}
