package core

import (
	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
	"sigrec/internal/telemetry"
)

// tel is the pipeline-wide metrics registry. Every recovery entry point
// (Recover, RecoverContext, RecoverFunction, RecoverAll) reports into it;
// Metrics exposes it to the facade and CLI.
var tel = telemetry.NewRegistry()

func init() {
	// Every exposition of the pipeline registry (CLI -stats, sigrecd
	// /metrics) carries the binary's identity, and runtime self-metrics
	// (goroutines, heap, GC-pause/sched-latency p99) refreshed per scrape.
	obs.RegisterBuildInfo(tel)
	obs.RegisterRuntimeMetrics(tel)
	tel.SetHelp("sigrec_rule_fired_total", "Inference-rule applications by rule (R1-R31, the paper's Fig. 19 live)")
	tel.SetHelp("sigrec_truncations_total", "Budget-truncated TASE explorations by cause")
	tel.SetHelp("sigrec_build_info", "Build identity; constant 1")
	tel.SetHelp("sigrec_recover_duration_microseconds", "Whole-contract recovery latency (E3 buckets)")
	tel.SetHelp("sigrec_recover_latency_microseconds", "Whole-contract recovery latency (streaming CKMS quantiles)")
	tel.SetHelp("sigrec_phase_disasm_microseconds", "Disassembly phase latency per recovery")
	tel.SetHelp("sigrec_phase_dispatch_microseconds", "Dispatcher selector-extraction latency per recovery")
	tel.SetHelp("sigrec_phase_explore_microseconds", "TASE exploration latency per recovery, summed over selectors")
	tel.SetHelp("sigrec_phase_infer_microseconds", "Type-inference latency per recovery, summed over selectors")
}

// Pre-resolved instruments so the hot path never touches the registry map.
var (
	mRecoveries     = tel.Counter("sigrec_recoveries_total")
	mRecoverErrors  = tel.Counter("sigrec_recover_errors_total")
	mTruncated      = tel.Counter("sigrec_recoveries_truncated_total")
	mFunctions      = tel.Counter("sigrec_functions_recovered_total")
	mPathsExplored  = tel.Counter("sigrec_tase_paths_explored_total")
	mPathsPruned    = tel.Counter("sigrec_tase_paths_pruned_total")
	mTASESteps      = tel.Counter("sigrec_tase_steps_total")
	mEvents         = tel.Counter("sigrec_tase_events_collected_total")
	mCacheHits      = tel.Counter("sigrec_cache_hits_total")
	mCacheMisses    = tel.Counter("sigrec_cache_misses_total")
	mCacheCoalesced = tel.Counter("sigrec_cache_coalesced_total")
	mCacheEvicted   = tel.Counter("sigrec_cache_evictions_total")
	mCacheEntries   = tel.Gauge("sigrec_cache_entries")
	// Peer cache-fill (cluster mode): a fill hit is a result copied from
	// the owning shard instead of recomputed; a fill miss fell through to
	// local compute.
	mCacheFillHits   = tel.Counter("sigrec_cache_fill_hits_total")
	mCacheFillMisses = tel.Counter("sigrec_cache_fill_misses_total")
	// Disk-tier (persistent result store) instruments: a store hit is a
	// result served from disk instead of recomputed (also metered as a
	// cache hit); write errors are surfaced here because Save failures
	// never fail the recovery.
	mStoreHits        = tel.Counter("sigrec_store_hits_total")
	mStoreMisses      = tel.Counter("sigrec_store_misses_total")
	mStoreWriteErrors = tel.Counter("sigrec_store_write_errors_total")
	mBatches          = tel.Counter("sigrec_batches_total")
	mRecoverUS        = tel.Histogram("sigrec_recover_duration_microseconds", nil)

	// Interner and copy-on-write state instruments. Hit rate is exposed as a
	// permille gauge so it reads directly off the exposition endpoint; pool
	// reuse is derived as gets - allocs.
	mInternHits    = tel.Counter("sigrec_intern_hits_total")
	mInternMisses  = tel.Counter("sigrec_intern_misses_total")
	mInternHitRate = tel.Gauge("sigrec_intern_hit_rate_permille")
	mCloneBytes    = tel.Counter("sigrec_state_clone_bytes_total")
	mStateGets     = tel.Counter("sigrec_state_pool_gets_total")
	mStateAllocs   = tel.Counter("sigrec_state_pool_allocs_total")

	// mTruncCause breaks truncations down by which budget was hit.
	mTruncCause = tel.CounterVec("sigrec_truncations_total", "cause")

	// Streaming-quantile summaries: true p50/p95/p99 on the exposition
	// without pre-chosen bucket bounds. sRecoverUS complements the E3
	// histogram (kept for bucket-compatible dashboards); the phase
	// summaries attribute where recovery time goes.
	sRecoverUS  = tel.Summary("sigrec_recover_latency_microseconds", nil)
	sDisasmUS   = tel.Summary("sigrec_phase_disasm_microseconds", nil)
	sDispatchUS = tel.Summary("sigrec_phase_dispatch_microseconds", nil)
	sExploreUS  = tel.Summary("sigrec_phase_explore_microseconds", nil)
	sInferUS    = tel.Summary("sigrec_phase_infer_microseconds", nil)
)

// mRuleFired holds one pre-resolved counter per inference rule, indexed by
// RuleID, so inference.hit pays a single atomic add — no map lookup — to
// keep the live R1-R31 distribution on the exposition. Index 0 is unused.
var mRuleFired = func() [NumRules + 1]*telemetry.Counter {
	vec := tel.CounterVec("sigrec_rule_fired_total", "rule")
	var arr [NumRules + 1]*telemetry.Counter
	for r := 1; r <= NumRules; r++ {
		// Pre-registering every rule makes all 31 series visible on the
		// exposition from startup, zeros included.
		arr[r] = vec.With(RuleID(r).String())
	}
	return arr
}()

// Metrics returns the pipeline's telemetry registry. Counters are
// cumulative for the process lifetime; use Snapshot deltas to meter a
// single run.
func Metrics() *telemetry.Registry { return tel }

// finishTASE folds one finished exploration into the aggregate counters —
// and, when a wide event is being built for the recovery, into the event —
// then retires the engine's interner. Per-trace counts are accumulated
// locally during exploration and flushed here in one shot, so the hot loop
// never touches an atomic. ev nil is the events-off path.
func finishTASE(t *tase, ev *eventlog.Event) {
	if ev != nil {
		ev.Paths += int64(t.paths)
		ev.Steps += int64(t.totSteps)
		ev.Pruned += int64(t.pruned)
		if t.it != nil {
			ev.AddIntern(t.it.hits, t.it.misses)
		}
		if t.trunc && ev.TruncCause == "" {
			ev.TruncCause = t.truncationCause()
		}
	}
	mPathsExplored.Add(uint64(t.paths))
	mPathsPruned.Add(uint64(t.pruned))
	mTASESteps.Add(uint64(t.totSteps))
	mEvents.Add(uint64(len(t.events)))
	mStateGets.Add(t.stateGets)
	mCloneBytes.Add(t.cloneBytes)
	if t.trunc {
		mTruncCause.With(t.truncationCause()).Inc()
	}
	if t.it != nil {
		mInternHits.Add(t.it.hits)
		mInternMisses.Add(t.it.misses)
		if total := mInternHits.Load() + mInternMisses.Load(); total > 0 {
			mInternHitRate.Set(int64(mInternHits.Load() * 1000 / total))
		}
		t.it.release()
		t.it = nil
	}
}
