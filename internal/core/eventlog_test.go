package core

import (
	"context"
	"path/filepath"
	"testing"

	"sigrec/internal/corpus"
	"sigrec/internal/eventlog"
)

// TestRecoverEmitsWideEvents checks the 1:1 contract between recoveries
// and wide events: every RecoverContext call — including the cache-hit
// path — emits exactly one event, and the event's fields agree with the
// recovery result (functions, rules, request id, phase timing).
func TestRecoverEmitsWideEvents(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 99, Solidity: 8, MaxParams: 3})
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	path := filepath.Join(t.TempDir(), "events.ndjson")
	w, err := eventlog.New(eventlog.Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(64)
	opts := Options{Cache: cache, EventLog: w}
	wantFns := 0
	for i, e := range c.Entries {
		ctx, sc := eventlog.NewContext(context.Background(), "req-"+string(rune('a'+i%26)))
		sc.QueueUS = 42
		res, err := RecoverContext(ctx, e.Code, opts)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		wantFns += len(res.Functions)
	}
	// Replay the first entry: served by the cache, still one event.
	ctx, _ := eventlog.NewContext(context.Background(), "req-replay")
	if _, err := RecoverContext(ctx, c.Entries[0].Code, opts); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := eventlog.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d undecodable lines", skipped)
	}
	if len(events) != len(c.Entries)+1 {
		t.Fatalf("got %d events for %d recoveries", len(events), len(c.Entries)+1)
	}
	rep := eventlog.Analyze(events, 5)
	if rep.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", rep.CacheHits)
	}
	if rep.Functions != int64(wantFns) {
		t.Fatalf("functions = %d, want %d", rep.Functions, wantFns)
	}
	for i, ev := range events {
		if ev.Cache == "hit" {
			if ev.RequestID != "req-replay" {
				t.Fatalf("cache-hit event request id = %q", ev.RequestID)
			}
			continue
		}
		if ev.RequestID == "" || ev.QueueUS != 42 {
			t.Fatalf("event %d missing scope: %+v", i, ev)
		}
		if ev.Selectors == 0 || ev.Functions == 0 {
			t.Fatalf("event %d missing recovery shape: %+v", i, ev)
		}
		if ev.Steps == 0 || ev.Paths == 0 {
			t.Fatalf("event %d missing TASE counters: %+v", i, ev)
		}
	}
	// Zero-parameter functions fire no rules, so require fires only in
	// aggregate across the corpus.
	if len(rep.RuleFires) == 0 {
		t.Fatal("no rule fires across the whole corpus")
	}
	// Phase summaries observed once per uncached recovery.
	snap := Metrics().Snapshot()
	if got := snap.Summaries["sigrec_phase_disasm_microseconds"].Count; got < uint64(len(c.Entries)) {
		t.Fatalf("disasm summary count = %d, want >= %d", got, len(c.Entries))
	}
	if got := snap.Summaries["sigrec_recover_latency_microseconds"].Count; got < uint64(len(c.Entries))+1 {
		t.Fatalf("recovery summary count = %d, want >= %d", got, len(c.Entries)+1)
	}
}
