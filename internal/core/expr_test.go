package core

import (
	"testing"

	"sigrec/internal/evm"
)

func TestExprConcreteFolding(t *testing.T) {
	a, b := NewConstUint(3), NewConstUint(4)
	sum := NewApp(evm.ADD, a, b)
	if v, ok := sum.ConstUint(); !ok || v != 7 {
		t.Errorf("3+4 = %v", sum)
	}
	sym := NewCData(NewConstUint(4))
	mixed := NewApp(evm.ADD, sym, b)
	if mixed.IsConst() {
		t.Error("symbolic + const must stay symbolic")
	}
	if !mixed.ContainsCData() {
		t.Error("taint lost")
	}
}

func TestExprStringStability(t *testing.T) {
	e1 := NewApp(evm.ADD, NewCData(NewConstUint(4)), NewConstUint(32))
	e2 := NewApp(evm.ADD, NewCData(NewConstUint(4)), NewConstUint(32))
	if e1.String() != e2.String() {
		t.Error("structurally equal expressions must render identically")
	}
	if e1.String() == NewApp(evm.ADD, NewCData(NewConstUint(36)), NewConstUint(32)).String() {
		t.Error("different expressions must render differently")
	}
}

func TestLinearize(t *testing.T) {
	cd := NewCData(NewConstUint(4))
	// 36 + cd*32 built two different ways must linearize identically.
	e1 := NewApp(evm.ADD, NewApp(evm.MUL, cd, NewConstUint(32)), NewConstUint(36))
	e2 := NewApp(evm.ADD, NewConstUint(36), NewApp(evm.MUL, NewConstUint(32), cd))
	l1, l2 := Linearize(e1), Linearize(e2)
	if !l1.Const.Eq(evm.WordFromUint64(36)) {
		t.Errorf("const part = %v", l1.Const)
	}
	c1, ok1 := l1.TermFor(cd.String())
	c2, ok2 := l2.TermFor(cd.String())
	if !ok1 || !ok2 || !c1.Eq(c2) || !c1.Eq(evm.WordFromUint64(32)) {
		t.Errorf("coefficients: %v %v", c1, c2)
	}
}

func TestLinearizeSub(t *testing.T) {
	cd := NewCData(NewConstUint(4))
	// (cd + 100) - cd = 100
	e := NewApp(evm.SUB, NewApp(evm.ADD, cd, NewConstUint(100)), cd)
	l := Linearize(e)
	if len(l.Terms) != 0 || !l.Const.Eq(evm.WordFromUint64(100)) {
		t.Errorf("linearize sub: %+v", l)
	}
}

func TestCDataAtoms(t *testing.T) {
	inner := NewCData(NewConstUint(4))
	outer := NewCData(NewApp(evm.ADD, inner, NewConstUint(4)))
	e := NewApp(evm.ADD, outer, NewConstUint(1))
	atoms := e.CDataAtoms()
	if len(atoms) != 1 || atoms[0].String() != outer.String() {
		t.Errorf("atoms = %v (outermost only expected)", atoms)
	}
}

func TestDescOf(t *testing.T) {
	cd := NewCData(NewConstUint(4))
	e := NewApp(evm.ADD, NewApp(evm.ADD, NewConstUint(4), cd), NewConstUint(32))
	d, ok := descOfUncached(e)
	if !ok || d.c != 36 || d.terms[cd.String()] != 1 {
		t.Errorf("desc = %+v ok=%v", d, ok)
	}
	body := bodyDesc{c: 4, terms: map[string]uint64{cd.String(): 1}}
	if !coversTerms(d, body) {
		t.Error("coversTerms failed")
	}
	if !sameTerms(d, body) {
		t.Error("sameTerms failed")
	}
}

func TestGuardControls(t *testing.T) {
	g := Guard{PC: 10, Lo: 10, Hi: 50}
	if !g.Controls(30) {
		t.Error("pc 30 should be controlled")
	}
	if g.Controls(60) || g.Controls(5) || g.Controls(10) {
		t.Error("out-of-interval pcs should not be controlled")
	}
}

func TestFoldOpCoverage(t *testing.T) {
	two, three := evm.WordFromUint64(2), evm.WordFromUint64(3)
	cases := []struct {
		op   evm.Op
		args []evm.Word
		want evm.Word
	}{
		{evm.ADD, []evm.Word{two, three}, evm.WordFromUint64(5)},
		{evm.SUB, []evm.Word{three, two}, evm.OneWord},
		{evm.EXP, []evm.Word{two, three}, evm.WordFromUint64(8)},
		{evm.LT, []evm.Word{two, three}, evm.OneWord},
		{evm.SHR, []evm.Word{evm.OneWord, two}, evm.OneWord},
		{evm.BYTE, []evm.Word{evm.WordFromUint64(31), evm.WordFromUint64(0xab)}, evm.WordFromUint64(0xab)},
	}
	for _, tc := range cases {
		got, ok := foldOp(tc.op, tc.args)
		if !ok || !got.Eq(tc.want) {
			t.Errorf("foldOp(%s) = %v ok=%v, want %v", tc.op, got, ok, tc.want)
		}
	}
	if _, ok := foldOp(evm.KECCAK256, []evm.Word{two, three}); ok {
		t.Error("KECCAK256 must not fold")
	}
}

func TestMaskRecognition(t *testing.T) {
	if m, ok := lowMaskBytes(evm.LowMask(160)); !ok || m != 20 {
		t.Errorf("low mask 20 bytes: %d %v", m, ok)
	}
	if m, ok := highMaskBytes(evm.HighMask(32)); !ok || m != 4 {
		t.Errorf("high mask 4 bytes: %d %v", m, ok)
	}
	if _, ok := lowMaskBytes(evm.WordFromUint64(0xfe)); ok {
		t.Error("0xfe is not a byte mask")
	}
	if _, ok := highMaskBytes(evm.MaxWord); ok {
		t.Error("all-ones is not a high mask below 32 bytes")
	}
}
