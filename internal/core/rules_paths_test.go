package core

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
	"sigrec/internal/vyperc"
)

// ruleTrailOf recovers a single-parameter function and returns the rule
// trail of its (first) parameter.
func ruleTrailOf(t *testing.T, code []byte, sel abi.Selector) ([]RuleID, abi.Type) {
	t.Helper()
	rec, _ := RecoverFunction(code, sel)
	if len(rec.Inputs) == 0 {
		t.Fatal("nothing recovered")
	}
	return rec.ParamRules[0], rec.Inputs[0]
}

func hasRule(trail []RuleID, want RuleID) bool {
	for _, r := range trail {
		if r == want {
			return true
		}
	}
	return false
}

// TestSolidityRuleTrails pins, for each decision path of Fig. 13, the rules
// the engine applies to a parameter compiled with that path's pattern.
func TestSolidityRuleTrails(t *testing.T) {
	tests := []struct {
		sig   string
		mode  solc.Mode
		typ   string   // expected recovered type
		rules []RuleID // rules that must appear on the trail
	}{
		{"f(uint256)", solc.External, "uint256", []RuleID{R4}},
		{"f(uint8)", solc.External, "uint8", []RuleID{R4, R11}},
		{"f(uint160)", solc.External, "uint160", []RuleID{R4, R11}},
		{"f(bytes4)", solc.External, "bytes4", []RuleID{R4, R12}},
		{"f(int16)", solc.External, "int16", []RuleID{R4, R13}},
		{"f(bool)", solc.External, "bool", []RuleID{R4, R14}},
		{"f(int256)", solc.External, "int256", []RuleID{R4, R15}},
		{"f(address)", solc.External, "address", []RuleID{R4, R16}},
		{"f(bytes32)", solc.External, "bytes32", []RuleID{R4, R18}},
		{"f(uint256[])", solc.External, "uint256[]", []RuleID{R1, R2}},
		{"f(uint8[2][])", solc.External, "uint8[2][]", []RuleID{R1, R2}},
		{"f(uint256[3])", solc.External, "uint256[3]", []RuleID{R3}},
		{"f(uint256[3][2])", solc.External, "uint256[3][2]", []RuleID{R3}},
		{"f(uint256[])", solc.Public, "uint256[]", []RuleID{R1, R5, R7}},
		{"f(bytes)", solc.Public, "bytes", []RuleID{R1, R5, R8, R17}},
		{"f(string)", solc.Public, "string", []RuleID{R1, R5, R8}},
		{"f(uint256[3])", solc.Public, "uint256[3]", []RuleID{R6}},
		{"f(uint256[3][2])", solc.Public, "uint256[3][2]", []RuleID{R9}},
		{"f(uint64[2][])", solc.Public, "uint64[2][]", []RuleID{R1, R5, R10}},
		{"f(bytes)", solc.External, "bytes", []RuleID{R1, R17}},
		{"f(string)", solc.External, "string", []RuleID{R1}},
		{"f(uint8[][])", solc.External, "uint8[][]", []RuleID{R1, R22}},
		{"f((uint256[],bool))", solc.External, "(uint256[],bool)", []RuleID{R1, R21}},
		{"f((uint8[][],uint256))", solc.External, "(uint8[][],uint256)", []RuleID{R1, R21, R19}},
	}
	for _, tc := range tests {
		sig, err := abi.ParseSignature(tc.sig)
		if err != nil {
			t.Fatal(err)
		}
		code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
			{Sig: sig, Mode: tc.mode},
		}}, solc.Config{Version: solc.DefaultVersion()})
		if err != nil {
			t.Fatalf("%s: %v", tc.sig, err)
		}
		trail, typ := ruleTrailOf(t, code, sig.Selector())
		if typ.String() != tc.typ {
			t.Errorf("%s %s: recovered %s, want %s (trail %v)",
				tc.sig, tc.mode, typ, tc.typ, trail)
			continue
		}
		for _, want := range tc.rules {
			if !hasRule(trail, want) {
				t.Errorf("%s %s: trail %v missing %s", tc.sig, tc.mode, trail, want)
			}
		}
	}
}

// TestVyperRuleTrails does the same for the Vyper paths.
func TestVyperRuleTrails(t *testing.T) {
	tests := []struct {
		sig   string
		typ   string
		rules []RuleID
	}{
		// A function whose only values are uint256/bytes32/lists carries no
		// range checks, so R20 cannot fire and the Solidity-path rules
		// apply -- the recovered canonical types are identical (see
		// docs/RULES.md, known ambiguities).
		{"f(uint256)", "uint256", []RuleID{R4}},
		{"f(bytes32)", "bytes32", []RuleID{R4, R18}},
		{"f(uint256[3])", "uint256[3]", []RuleID{R3}},
		// With a range-checked value present, the Vyper paths engage.
		{"f(bool)", "bool", []RuleID{R20, R25, R30}},
		{"f(address)", "address", []RuleID{R20, R25, R27}},
		{"f(int128)", "int128", []RuleID{R20, R25, R28}},
		{"f(decimal)", "fixed168x10", []RuleID{R20, R25, R29}},
		{"f(bytes[32])", "bytes", []RuleID{R20, R1, R23, R26}},
		{"f(string[32])", "string", []RuleID{R20, R1, R23}},
	}
	for _, tc := range tests {
		sig, err := abi.ParseSignature(tc.sig)
		if err != nil {
			t.Fatal(err)
		}
		code, err := vyperc.Compile(vyperc.Contract{Functions: []vyperc.Function{{Sig: sig}}},
			vyperc.Config{Version: vyperc.DefaultVersion()})
		if err != nil {
			t.Fatalf("%s: %v", tc.sig, err)
		}
		trail, typ := ruleTrailOf(t, code, sig.Selector())
		if typ.String() != tc.typ {
			t.Errorf("%s: recovered %s, want %s (trail %v)", tc.sig, typ, tc.typ, trail)
			continue
		}
		for _, want := range tc.rules {
			if !hasRule(trail, want) {
				t.Errorf("%s: trail %v missing %s", tc.sig, trail, want)
			}
		}
	}
	// With a bool alongside, R20 fires and bytes32 takes the Vyper path
	// through R31.
	sig, _ := abi.ParseSignature("f(bool,bytes32)")
	code, err := vyperc.Compile(vyperc.Contract{Functions: []vyperc.Function{{Sig: sig}}},
		vyperc.Config{Version: vyperc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := RecoverFunction(code, sig.Selector())
	if len(rec.ParamRules) != 2 {
		t.Fatalf("trails: %v", rec.ParamRules)
	}
	if !hasRule(rec.ParamRules[1], R31) || !hasRule(rec.ParamRules[1], R25) {
		t.Errorf("bytes32 trail %v missing R25/R31", rec.ParamRules[1])
	}
}

// TestExplainRendering exercises the human-readable form.
func TestExplainRendering(t *testing.T) {
	sig, _ := abi.ParseSignature("f(uint8,bytes)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.Public},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := RecoverFunction(code, sig.Selector())
	lines := rec.Explain()
	if len(lines) != 2 {
		t.Fatalf("explain lines: %v", lines)
	}
	if lines[0] != "param 1 (uint8): R4 R11" {
		t.Errorf("line 0 = %q", lines[0])
	}
}

// TestParamRulesParallelToInputs: the explanation arrays always line up.
func TestParamRulesParallelToInputs(t *testing.T) {
	sig, _ := abi.ParseSignature("f(uint256,bytes,uint8[3],bool)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := RecoverFunction(code, sig.Selector())
	if len(rec.ParamRules) != len(rec.Inputs) {
		t.Fatalf("%d rule trails for %d inputs", len(rec.ParamRules), len(rec.Inputs))
	}
	for i, trail := range rec.ParamRules {
		if len(trail) == 0 {
			t.Errorf("parameter %d has an empty trail", i)
		}
	}
}
