package core

import (
	"context"
	"errors"
	"testing"
)

// TestGetOrComputeFill covers the cache-fill hook: a fill hit is stored
// and served without running compute; a fill miss (or a truncated filled
// result) falls through to compute; later lookups hit the cache.
func TestGetOrComputeFill(t *testing.T) {
	code, _ := compileSig(t, "transfer(address,uint256)")
	filled := Result{Functions: []RecoveredFunction{{}}}

	t.Run("hit skips compute and stores", func(t *testing.T) {
		before := Metrics().Snapshot().Counters
		cache := NewCache(8)
		computed := false
		res, err := cache.GetOrComputeFill(context.Background(), code,
			func(context.Context, []byte) (Result, error, bool) { return filled, nil, true },
			func() (Result, error) { computed = true; return Result{}, nil })
		if err != nil || computed {
			t.Fatalf("err=%v computed=%v", err, computed)
		}
		if len(res.Functions) != 1 {
			t.Fatalf("filled result not returned: %+v", res)
		}
		if cache.Len() != 1 {
			t.Fatalf("filled result not stored (len=%d)", cache.Len())
		}
		after := Metrics().Snapshot().Counters
		if d := after["sigrec_cache_fill_hits_total"] - before["sigrec_cache_fill_hits_total"]; d != 1 {
			t.Errorf("fill hits delta = %d, want 1", d)
		}
		// The stored copy answers later lookups without fill or compute.
		res2, err := cache.GetOrCompute(code, func() (Result, error) {
			t.Fatal("compute ran on a cached key")
			return Result{}, nil
		})
		if err != nil || len(res2.Functions) != 1 {
			t.Fatalf("cached lookup after fill: res=%+v err=%v", res2, err)
		}
	})

	t.Run("miss falls through to compute", func(t *testing.T) {
		before := Metrics().Snapshot().Counters
		cache := NewCache(8)
		res, err := cache.GetOrComputeFill(context.Background(), code,
			func(context.Context, []byte) (Result, error, bool) { return Result{}, nil, false },
			func() (Result, error) { return filled, nil })
		if err != nil || len(res.Functions) != 1 {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		after := Metrics().Snapshot().Counters
		if d := after["sigrec_cache_fill_misses_total"] - before["sigrec_cache_fill_misses_total"]; d != 1 {
			t.Errorf("fill misses delta = %d, want 1", d)
		}
	})

	t.Run("truncated fill result is recomputed", func(t *testing.T) {
		cache := NewCache(8)
		computed := false
		res, err := cache.GetOrComputeFill(context.Background(), code,
			func(context.Context, []byte) (Result, error, bool) { return Result{Truncated: true}, nil, true },
			func() (Result, error) { computed = true; return filled, nil })
		if err != nil || !computed || len(res.Functions) != 1 {
			t.Fatalf("res=%+v err=%v computed=%v", res, err, computed)
		}
	})

	t.Run("filled error outcome follows cacheability", func(t *testing.T) {
		cache := NewCache(8)
		// ErrNoFunctions is definitive and cacheable even via fill.
		res, err := cache.GetOrComputeFill(context.Background(), code,
			func(context.Context, []byte) (Result, error, bool) { return Result{}, ErrNoFunctions, true },
			func() (Result, error) { t.Fatal("compute ran"); return Result{}, nil })
		if !errors.Is(err, ErrNoFunctions) || len(res.Functions) != 0 {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		if cache.Len() != 1 {
			t.Fatalf("definitive error not stored (len=%d)", cache.Len())
		}
	})
}

// TestPeek verifies Peek reads the cache without moving the hit/miss
// counters — the peer-fill serving path must not distort local hit rate.
func TestPeek(t *testing.T) {
	code, _ := compileSig(t, "approve(address,uint256)")
	cache := NewCache(8)
	if _, _, ok := cache.Peek(code); ok {
		t.Fatal("Peek hit on an empty cache")
	}
	if _, err := cache.GetOrCompute(code, func() (Result, error) {
		return Result{Functions: []RecoveredFunction{{}}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	before := Metrics().Snapshot().Counters
	res, err, ok := cache.Peek(code)
	if !ok || err != nil || len(res.Functions) != 1 {
		t.Fatalf("Peek: res=%+v err=%v ok=%v", res, err, ok)
	}
	after := Metrics().Snapshot().Counters
	for _, name := range []string{"sigrec_cache_hits_total", "sigrec_cache_misses_total"} {
		if after[name] != before[name] {
			t.Errorf("%s moved on Peek: %d -> %d", name, before[name], after[name])
		}
	}
}
