package core

import (
	"fmt"
	"time"

	"sigrec/internal/evm"
)

// Exploration budgets. TASE only needs the parameter-handling prefix of each
// function, so these are generous for generated and real-world dispatch
// bodies alike.
const (
	maxVisitsPerJumpi = 3
	maxStepsPerPath   = 60_000
	maxPathsPerFn     = 512
	maxTotalSteps     = 4_000_000
	// memRegionSpan bounds how far past a CALLDATACOPY destination an MLOAD
	// is still attributed to that copy when the copy length is symbolic.
	memRegionSpan = 0x8000
	// deadlineCheckMask: the wall clock and the cancellation channel are
	// polled every (mask+1) steps; at sub-microsecond step cost this keeps
	// deadline overshoot far below a millisecond while adding well under 1%
	// overhead.
	deadlineCheckMask = 255
)

// limits bounds one TASE exploration. The zero value means "no explicit
// caller bounds"; defaultLimits fills in the built-in budgets.
type limits struct {
	// maxSteps caps the total symbolic steps across all paths.
	maxSteps int
	// maxPaths caps the number of explored paths.
	maxPaths int
	// deadline is the wall-clock cutoff; zero means none.
	deadline time.Time
	// done, when non-nil, cancels the exploration when closed (a
	// context.Context's Done channel).
	done <-chan struct{}
}

// defaultLimits returns the built-in exploration budgets.
func defaultLimits() limits {
	return limits{maxSteps: maxTotalSteps, maxPaths: maxPathsPerFn}
}

// EventKind discriminates collected events.
type EventKind int

// Event kinds.
const (
	// EvCDL is a CALLDATALOAD.
	EvCDL EventKind = iota + 1
	// EvCDC is a CALLDATACOPY.
	EvCDC
	// EvOp is an instruction applied to a call-data-derived value.
	EvOp
)

// Guard is one conditional branch the current path passed through.
type Guard struct {
	// PC of the JUMPI.
	PC uint64
	// Cond is the branch condition (full symbolic structure).
	Cond *Expr
	// Taken reports whether the jump was taken.
	Taken bool
	// Lo and Hi delimit the static scope interval used as a control-
	// dependence approximation: an event at pc in (Lo, Hi) is treated as
	// controlled by this guard.
	Lo, Hi uint64
}

// Controls reports whether an event at pc falls in the guard's scope.
func (g Guard) Controls(pc uint64) bool { return pc > g.Lo && pc < g.Hi }

// Event is one observation made during TASE.
type Event struct {
	Kind EventKind
	PC   uint64

	// EvCDL: Off is the load offset; Val the loaded value.
	Off *Expr
	Val *Expr

	// EvCDC: Dst is the (concrete) memory destination, Src and Len the
	// call-data source offset and byte count.
	Dst uint64
	Src *Expr
	Len *Expr

	// EvOp: Op and its operands.
	Op   evm.Op
	Args []*Expr

	// Guards active when the event fired.
	Guards []Guard
}

// Trace is the deduplicated event stream of one function.
type Trace struct {
	Selector [4]byte
	Events   []Event
	// Truncated is set when an exploration budget was hit.
	Truncated bool
}

// state is one symbolic machine state during path exploration.
type state struct {
	pc     uint64
	stack  []*Expr
	mem    map[uint64]*Expr
	copies []memCopy
	visits map[uint64]int
	guards []Guard
	steps  int
}

type memCopy struct {
	dst uint64
	src *Expr
	ln  *Expr
}

func (s *state) clone() *state {
	cp := &state{
		pc:     s.pc,
		stack:  append([]*Expr(nil), s.stack...),
		mem:    make(map[uint64]*Expr, len(s.mem)),
		copies: append([]memCopy(nil), s.copies...),
		visits: make(map[uint64]int, len(s.visits)),
		guards: append([]Guard(nil), s.guards...),
		steps:  s.steps,
	}
	for k, v := range s.mem {
		cp.mem[k] = v
	}
	for k, v := range s.visits {
		cp.visits[k] = v
	}
	return cp
}

// tase explores the contract from pc 0 with the call data symbolic except
// for the first 32 bytes, which carry the given selector. The dispatcher
// then folds concretely and execution reaches exactly the selected
// function's body.
type tase struct {
	program    *Program
	selWord    *evm.Word // value returned for CALLDATALOAD(0), nil = symbolic
	lim        limits
	events     []Event
	seen       map[string]bool
	envSeq     int
	paths      int
	totSteps   int
	pruned     int // forks suppressed and worklist states dropped by budgets
	trunc      bool
	cancelable bool // a deadline or cancellation channel is armed
	expired    bool // deadline passed or context cancelled
}

// pollCancel checks the cancellation channel and the wall-clock deadline.
// It is deliberately out of the per-step hot path: explore calls it only
// every deadlineCheckMask+1 steps (and at fork points), and only when
// cancelable is set, so unbounded recoveries pay a single flag test.
func (t *tase) pollCancel() bool {
	if t.expired {
		return true
	}
	if t.lim.done != nil {
		select {
		case <-t.lim.done:
			t.expired = true
			return true
		default:
		}
	}
	if !t.lim.deadline.IsZero() && time.Now().After(t.lim.deadline) {
		t.expired = true
		return true
	}
	return false
}

// Program wraps a disassembled contract for analysis.
type Program = evm.Program

// run explores all paths and returns the deduplicated events.
func (t *tase) run() []Event {
	t.seen = make(map[string]bool)
	if t.lim.maxSteps <= 0 {
		t.lim.maxSteps = maxTotalSteps
	}
	if t.lim.maxPaths <= 0 {
		t.lim.maxPaths = maxPathsPerFn
	}
	t.cancelable = t.lim.done != nil || !t.lim.deadline.IsZero()
	start := &state{
		pc:     0,
		mem:    make(map[uint64]*Expr),
		visits: make(map[uint64]int),
	}
	worklist := []*state{start}
	for len(worklist) > 0 && t.paths < t.lim.maxPaths && t.totSteps < t.lim.maxSteps &&
		!(t.cancelable && t.pollCancel()) {
		st := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		forks := t.explore(st)
		worklist = append(worklist, forks...)
	}
	if len(worklist) > 0 {
		// Budget exhausted with states still queued: the result is partial.
		t.pruned += len(worklist)
		t.trunc = true
	}
	return t.events
}

// explore runs one path until it ends, returning forked states.
func (t *tase) explore(st *state) []*state {
	t.paths++
	for {
		if st.steps >= maxStepsPerPath || t.totSteps >= t.lim.maxSteps {
			t.trunc = true
			return nil
		}
		if t.cancelable && t.totSteps&deadlineCheckMask == 0 && t.pollCancel() {
			t.trunc = true
			return nil
		}
		ins, ok := t.program.At(st.pc)
		if !ok {
			return nil // ran off the end: STOP
		}
		st.steps++
		t.totSteps++
		fork, done := t.step(st, ins)
		if done {
			return fork
		}
	}
}

func (t *tase) fresh(label string) *Expr {
	t.envSeq++
	return NewEnv(label, t.envSeq)
}

// record deduplicates and stores an event.
func (t *tase) record(ev Event) {
	key := eventKey(ev)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	t.events = append(t.events, ev)
}

func eventKey(ev Event) string {
	switch ev.Kind {
	case EvCDL:
		return fmt.Sprintf("L|%d|%s", ev.PC, ev.Off.String())
	case EvCDC:
		return fmt.Sprintf("C|%d|%d|%s|%s", ev.PC, ev.Dst, ev.Src.String(), ev.Len.String())
	default:
		parts := make([]string, 0, len(ev.Args))
		for _, a := range ev.Args {
			parts = append(parts, a.String())
		}
		return fmt.Sprintf("O|%d|%s|%v", ev.PC, ev.Op, parts)
	}
}

// guardsSnapshot copies the active guards for attachment to an event.
func guardsSnapshot(st *state) []Guard {
	return append([]Guard(nil), st.guards...)
}

// step executes one instruction. It returns (forks, true) when the path
// ends or branches, or (nil, false) to continue.
func (t *tase) step(st *state, ins evm.Instruction) ([]*state, bool) {
	op := ins.Op
	if !op.Defined() {
		return nil, true
	}
	pops := op.StackPops()
	if len(st.stack) < pops {
		return nil, true // malformed path; abandon
	}
	pop := func() *Expr {
		e := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return e
	}
	push := func(e *Expr) { st.stack = append(st.stack, e) }
	nextPC := ins.PC + 1 + uint64(len(ins.ArgBytes))

	switch {
	case op.IsPush():
		push(NewConst(ins.Arg))
	case op.IsDup():
		n := int(op-evm.DUP1) + 1
		push(st.stack[len(st.stack)-n])
	case op.IsSwap():
		n := int(op-evm.SWAP1) + 1
		top := len(st.stack) - 1
		st.stack[top], st.stack[top-n] = st.stack[top-n], st.stack[top]
	default:
		switch op {
		case evm.STOP, evm.RETURN, evm.REVERT, evm.INVALID, evm.SELFDESTRUCT:
			return nil, true

		case evm.JUMP:
			dst := pop()
			dv, ok := dst.ConstUint()
			if !ok || !t.program.IsJumpDest(dv) {
				// Input-dependent jump target: stop this path (the paper's
				// documented TASE restriction).
				return nil, true
			}
			st.pc = dv
			return nil, false

		case evm.JUMPI:
			dst := pop()
			cond := pop()
			dv, okDst := dst.ConstUint()
			if !okDst || !t.program.IsJumpDest(dv) {
				return nil, true
			}
			lo, hi := ins.PC, dv
			if hi < lo {
				lo, hi = hi, lo
			}
			mkGuard := func(taken bool) Guard {
				return Guard{PC: ins.PC, Cond: cond, Taken: taken, Lo: lo, Hi: hi}
			}
			if cond.Conc != nil {
				taken := !cond.Conc.IsZero()
				st.guards = append(st.guards, mkGuard(taken))
				if taken {
					st.pc = dv
				} else {
					st.pc = nextPC
				}
				return nil, false
			}
			// Symbolic condition: fork within the visit budget.
			st.visits[ins.PC]++
			if st.visits[ins.PC] > maxVisitsPerJumpi {
				// Budget hit: follow the forward branch (usually the loop
				// exit) unless it lands in an abort block, in which case
				// keep falling through (the branch is a range check).
				t.pruned++
				follow := dv > ins.PC && !t.isRevertBlock(dv)
				st.guards = append(st.guards, mkGuard(follow))
				if follow {
					st.pc = dv
				} else {
					st.pc = nextPC
				}
				return nil, false
			}
			if t.paths >= t.lim.maxPaths || t.totSteps >= t.lim.maxSteps ||
				(t.cancelable && t.pollCancel()) {
				// Fan-out point with the global budget spent: stop forking,
				// follow the fall-through only, and flag the result partial.
				t.pruned++
				t.trunc = true
				st.guards = append(st.guards, mkGuard(false))
				st.pc = nextPC
				return nil, false
			}
			other := st.clone()
			st.guards = append(st.guards, mkGuard(false))
			st.pc = nextPC
			other.guards = append(other.guards, mkGuard(true))
			other.pc = dv
			// Continue the fall-through here; queue the taken branch.
			forks := t.explore(st)
			return append(forks, other), true

		case evm.CALLDATALOAD:
			off := pop()
			var val *Expr
			if v, ok := off.ConstUint(); ok && v == 0 && t.selWord != nil {
				val = NewConst(*t.selWord)
			} else {
				val = NewCData(off)
				t.record(Event{Kind: EvCDL, PC: ins.PC, Off: off, Val: val, Guards: guardsSnapshot(st)})
			}
			push(val)

		case evm.CALLDATASIZE:
			push(&Expr{Kind: KindCSize})

		case evm.CALLDATACOPY:
			dst, src, ln := pop(), pop(), pop()
			if dv, ok := dst.ConstUint(); ok {
				st.copies = append(st.copies, memCopy{dst: dv, src: src, ln: ln})
				t.record(Event{Kind: EvCDC, PC: ins.PC, Dst: dv, Src: src, Len: ln, Guards: guardsSnapshot(st)})
			}

		case evm.MLOAD:
			addr := pop()
			push(t.mload(st, addr))

		case evm.MSTORE:
			addr, val := pop(), pop()
			if av, ok := addr.ConstUint(); ok {
				st.mem[av] = val
			}

		case evm.MSTORE8:
			pop()
			pop()

		case evm.SLOAD:
			pop()
			push(t.fresh("sload"))

		case evm.SSTORE:
			pop()
			pop()

		case evm.KECCAK256:
			pop()
			pop()
			push(t.fresh("sha3"))

		case evm.ADDRESS, evm.ORIGIN, evm.CALLER, evm.CALLVALUE, evm.GASPRICE,
			evm.COINBASE, evm.TIMESTAMP, evm.NUMBER, evm.PREVRANDAO,
			evm.GASLIMIT, evm.CHAINID, evm.SELFBALANCE, evm.BASEFEE,
			evm.MSIZE, evm.GAS, evm.RETURNDATASIZE, evm.CODESIZE:
			push(t.fresh(op.String()))

		case evm.PC:
			push(NewConstUint(ins.PC))

		case evm.JUMPDEST:
			// no-op

		case evm.POP:
			pop()

		case evm.BALANCE, evm.EXTCODESIZE, evm.EXTCODEHASH, evm.BLOCKHASH:
			pop()
			push(t.fresh(op.String()))

		case evm.CODECOPY, evm.RETURNDATACOPY:
			pop()
			pop()
			pop()

		case evm.EXTCODECOPY:
			pop()
			pop()
			pop()
			pop()

		case evm.CREATE, evm.CREATE2:
			for i := 0; i < pops; i++ {
				pop()
			}
			push(t.fresh("create"))

		case evm.CALL, evm.CALLCODE, evm.DELEGATECALL, evm.STATICCALL:
			for i := 0; i < pops; i++ {
				pop()
			}
			push(t.fresh("callret"))

		case evm.LOG0, evm.LOG0 + 1, evm.LOG0 + 2, evm.LOG0 + 3, evm.LOG4:
			for i := 0; i < pops; i++ {
				pop()
			}

		default:
			// Pure computational opcode: build the application.
			args := make([]*Expr, pops)
			for i := 0; i < pops; i++ {
				args[i] = pop()
			}
			e := NewApp(op, args...)
			if tainted(args) {
				t.record(Event{Kind: EvOp, PC: ins.PC, Op: op, Args: args, Guards: guardsSnapshot(st)})
			}
			if op.StackPushes() > 0 {
				push(e)
			}
		}
	}
	st.pc = nextPC
	return nil, false
}

func tainted(args []*Expr) bool {
	for _, a := range args {
		if a.ContainsCData() {
			return true
		}
	}
	return false
}

// isRevertBlock reports whether the code at pc immediately aborts
// (JUMPDEST followed by a short push sequence ending in REVERT/INVALID).
func (t *tase) isRevertBlock(pc uint64) bool {
	idx, ok := t.program.IndexOf(pc)
	if !ok {
		return false
	}
	for i := idx; i < len(t.program.Instructions) && i < idx+6; i++ {
		op := t.program.Instructions[i].Op
		switch {
		case op == evm.REVERT || op == evm.INVALID:
			return true
		case op == evm.JUMPDEST || op.IsPush() || op.IsDup():
			continue
		default:
			return false
		}
	}
	return false
}

// mload resolves a memory read against word stores and copy regions.
func (t *tase) mload(st *state, addr *Expr) *Expr {
	if av, ok := addr.ConstUint(); ok {
		if v, hit := st.mem[av]; hit {
			return v
		}
		if cp, hit := findCopy(st.copies, av); hit {
			off := NewApp(evm.ADD, cp.src, NewConstUint(av-cp.dst))
			return NewCData(off)
		}
		return NewConst(evm.ZeroWord) // untouched memory reads zero
	}
	// Symbolic address: attribute via the constant component.
	lin := Linearize(addr)
	if base, ok := lin.Const.Uint64(); ok {
		if cp, hit := findCopy(st.copies, base); hit {
			delta := NewApp(evm.SUB, addr, NewConstUint(cp.dst))
			return NewCData(NewApp(evm.ADD, cp.src, delta))
		}
	}
	return t.fresh("mem")
}

// findCopy locates the most recent copy region covering the address.
func findCopy(copies []memCopy, addr uint64) (memCopy, bool) {
	for i := len(copies) - 1; i >= 0; i-- {
		cp := copies[i]
		span := uint64(memRegionSpan)
		if lv, ok := cp.ln.ConstUint(); ok && lv > 0 && lv < span {
			span = lv
		}
		if addr >= cp.dst && addr < cp.dst+span {
			return cp, true
		}
	}
	return memCopy{}, false
}

// TraceFunction symbolically executes the contract as if called with the
// given selector and returns the observed events, under the default
// exploration budgets.
func TraceFunction(program *Program, selector [4]byte) Trace {
	return traceFunction(program, selector, defaultLimits())
}

// traceFunction is TraceFunction under caller-supplied limits; it also
// reports exploration counters into the pipeline telemetry.
func traceFunction(program *Program, selector [4]byte, lim limits) Trace {
	var selWord evm.Word
	b := make([]byte, 32)
	copy(b, selector[:])
	selWord = evm.WordFromBytes(b)
	t := &tase{program: program, selWord: &selWord, lim: lim}
	events := t.run()
	recordTASE(t)
	return Trace{Selector: selector, Events: events, Truncated: t.trunc}
}
