package core

import (
	"sync"
	"time"

	"sigrec/internal/eventlog"
	"sigrec/internal/evm"
	"sigrec/internal/obs"
)

// Exploration budgets. TASE only needs the parameter-handling prefix of each
// function, so these are generous for generated and real-world dispatch
// bodies alike.
const (
	maxVisitsPerJumpi = 3
	maxStepsPerPath   = 60_000
	maxPathsPerFn     = 512
	maxTotalSteps     = 4_000_000
	// memRegionSpan bounds how far past a CALLDATACOPY destination an MLOAD
	// is still attributed to that copy when the copy length is symbolic.
	memRegionSpan = 0x8000
	// deadlineCheckMask: the wall clock and the cancellation channel are
	// polled every (mask+1) steps; at sub-microsecond step cost this keeps
	// deadline overshoot far below a millisecond while adding well under 1%
	// overhead.
	deadlineCheckMask = 255
)

// limits bounds one TASE exploration. The zero value means "no explicit
// caller bounds"; defaultLimits fills in the built-in budgets.
type limits struct {
	// maxSteps caps the total symbolic steps across all paths.
	maxSteps int
	// maxPaths caps the number of explored paths.
	maxPaths int
	// deadline is the wall-clock cutoff; zero means none.
	deadline time.Time
	// done, when non-nil, cancels the exploration when closed (a
	// context.Context's Done channel).
	done <-chan struct{}
	// noIntern disables hash-consed expression construction (nodes are
	// still canonicalized lazily for event dedup keys). It exists for the
	// interning ON/OFF differential test and as an operational escape
	// hatch; recovery results must be identical either way.
	noIntern bool
}

// defaultLimits returns the built-in exploration budgets.
func defaultLimits() limits {
	return limits{maxSteps: maxTotalSteps, maxPaths: maxPathsPerFn}
}

// EventKind discriminates collected events.
type EventKind int

// Event kinds.
const (
	// EvCDL is a CALLDATALOAD.
	EvCDL EventKind = iota + 1
	// EvCDC is a CALLDATACOPY.
	EvCDC
	// EvOp is an instruction applied to a call-data-derived value.
	EvOp
)

// Guard is one conditional branch the current path passed through.
type Guard struct {
	// PC of the JUMPI.
	PC uint64
	// Cond is the branch condition (full symbolic structure).
	Cond *Expr
	// Taken reports whether the jump was taken.
	Taken bool
	// Lo and Hi delimit the static scope interval used as a control-
	// dependence approximation: an event at pc in (Lo, Hi) is treated as
	// controlled by this guard.
	Lo, Hi uint64
}

// Controls reports whether an event at pc falls in the guard's scope.
func (g Guard) Controls(pc uint64) bool { return pc > g.Lo && pc < g.Hi }

// Event is one observation made during TASE.
type Event struct {
	Kind EventKind
	PC   uint64

	// EvCDL: Off is the load offset; Val the loaded value.
	Off *Expr
	Val *Expr

	// EvCDC: Dst is the (concrete) memory destination, Src and Len the
	// call-data source offset and byte count.
	Dst uint64
	Src *Expr
	Len *Expr

	// EvOp: Op and its operands.
	Op   evm.Op
	Args []*Expr

	// Guards active when the event fired.
	Guards []Guard
}

// Trace is the deduplicated event stream of one function.
type Trace struct {
	Selector [4]byte
	Events   []Event
	// Truncated is set when an exploration budget was hit.
	Truncated bool
}

// state is one symbolic machine state during path exploration. Forks share
// every container copy-on-write: cloning is O(1), the append-only slices
// (copies, guards) are capacity-trimmed so either side's next append
// reallocates instead of scribbling on the shared prefix, and the mutable
// containers (stack, mem, visits) carry ownership flags — a state copies
// them into pooled storage the first time it writes after a fork.
type state struct {
	pc    uint64
	steps int

	stack []*Expr
	// stackRef is the pool box the owned stack buffer came from; it is
	// returned to the pool only while stackOwned (exclusive) at release.
	stackRef *[]*Expr
	mem      map[uint64]*Expr
	copies   []memCopy
	visits   map[uint64]int
	guards   []Guard

	// Ownership flags: false means the container is (potentially) shared
	// with a forked sibling and must be copied before the next write.
	stackOwned  bool
	memOwned    bool
	visitsOwned bool
}

type memCopy struct {
	dst uint64
	src *Expr
	ln  *Expr
}

// Allocation pools for exploration state. States fork and die at every
// JUMPI fan-out; recycling them (and their stack buffers and maps) keeps
// the per-path cost flat regardless of state size. Guard and copy slices
// are never pooled: events capture capacity-trimmed views of them that
// outlive the exploration.
var (
	statePool = sync.Pool{New: func() any {
		mStateAllocs.Inc()
		return new(state)
	}}
	stackPool = sync.Pool{New: func() any {
		b := make([]*Expr, 0, 32)
		return &b
	}}
	memPool   = sync.Pool{New: func() any { return make(map[uint64]*Expr, 8) }}
	visitPool = sync.Pool{New: func() any { return make(map[uint64]int, 8) }}
)

// tase explores the contract from pc 0 with the call data symbolic except
// for the first 32 bytes, which carry the given selector. The dispatcher
// then folds concretely and execution reaches exactly the selected
// function's body.
type tase struct {
	program    *Program
	selWord    *evm.Word // value returned for CALLDATALOAD(0), nil = symbolic
	lim        limits
	it         *interner // per-trace hash-consing table
	events     []Event
	seen       map[eventID]bool
	envSeq     int
	paths      int
	totSteps   int
	pruned     int // forks suppressed and worklist states dropped by budgets
	trunc      bool
	cancelable bool   // a deadline or cancellation channel is armed
	expired    bool   // deadline passed or context cancelled
	cloneBytes uint64 // bytes materialized by copy-on-write ownership takes
	stateGets  uint64 // state allocator requests (pool reuses + fresh allocs)
}

// newTASE builds an exploration engine with a fresh interner.
func newTASE(program *Program, selWord *evm.Word, lim limits) *tase {
	return &tase{program: program, selWord: selWord, lim: lim, it: newInterner()}
}

// eventID is the dedup key of an Event: expression identity is the interned
// id, so keying does integer compares instead of recursive string
// formatting. Pure opcodes carry at most three operands, which bounds the
// arity (nargs disambiguates the defensive >3 fallback).
type eventID struct {
	kind       EventKind
	op         evm.Op
	nargs      int8
	pc         uint64
	dst        uint64
	a0, a1, a2 uint32
}

// truncationCause names the budget that cut the exploration short, for
// span attributes and the sigrec_truncations_total{cause=...} counter.
// Empty when the exploration completed.
func (t *tase) truncationCause() string {
	switch {
	case !t.trunc:
		return ""
	case t.expired:
		return "deadline"
	case t.totSteps >= t.lim.maxSteps:
		return "steps"
	case t.paths >= t.lim.maxPaths:
		return "paths"
	default:
		return "path-steps"
	}
}

// annotateTASE copies one exploration's counters onto its span in a single
// batched SetAttrs (one attribute slice per span). selHex, when non-empty,
// leads the attributes so per-selector explorations are greppable; the
// dispatcher walk passes "". The guard keeps attribute formatting entirely
// off the untraced path.
func annotateTASE(sp *obs.Span, t *tase, selHex string) {
	if sp == nil {
		return
	}
	attrs := make([]obs.Attr, 0, 6)
	if selHex != "" {
		attrs = append(attrs, obs.Attr{Key: "selector", Str: selHex})
	}
	attrs = append(attrs,
		obs.Attr{Key: "paths", Num: int64(t.paths)},
		obs.Attr{Key: "steps", Num: int64(t.totSteps)},
		obs.Attr{Key: "pruned", Num: int64(t.pruned)},
	)
	if t.it != nil {
		if total := t.it.hits + t.it.misses; total > 0 {
			attrs = append(attrs, obs.Attr{Key: "intern_hit_permille", Num: int64(t.it.hits * 1000 / total)})
		}
	}
	if cause := t.truncationCause(); cause != "" {
		attrs = append(attrs, obs.Attr{Key: "truncated", Str: cause})
	}
	sp.SetAttrs(attrs...)
}

// pollCancel checks the cancellation channel and the wall-clock deadline.
// It is deliberately out of the per-step hot path: explore calls it only
// every deadlineCheckMask+1 steps (and at fork points), and only when
// cancelable is set, so unbounded recoveries pay a single flag test.
func (t *tase) pollCancel() bool {
	if t.expired {
		return true
	}
	if t.lim.done != nil {
		select {
		case <-t.lim.done:
			t.expired = true
			return true
		default:
		}
	}
	if !t.lim.deadline.IsZero() && time.Now().After(t.lim.deadline) {
		t.expired = true
		return true
	}
	return false
}

// Program wraps a disassembled contract for analysis.
type Program = evm.Program

// run explores all paths and returns the deduplicated events.
func (t *tase) run() []Event {
	t.seen = make(map[eventID]bool)
	if t.it == nil {
		t.it = newInterner()
	}
	if t.lim.maxSteps <= 0 {
		t.lim.maxSteps = maxTotalSteps
	}
	if t.lim.maxPaths <= 0 {
		t.lim.maxPaths = maxPathsPerFn
	}
	t.cancelable = t.lim.done != nil || !t.lim.deadline.IsZero()
	start := t.newState()
	worklist := []*state{start}
	for len(worklist) > 0 && t.paths < t.lim.maxPaths && t.totSteps < t.lim.maxSteps &&
		!(t.cancelable && t.pollCancel()) {
		st := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		// Forks come back in encounter order; push them reversed so the
		// pop order (earliest fork of the just-finished path first)
		// matches the depth-first order the explorer has always used.
		forks := t.explore(st)
		for i := len(forks) - 1; i >= 0; i-- {
			worklist = append(worklist, forks[i])
		}
	}
	if len(worklist) > 0 {
		// Budget exhausted with states still queued: the result is partial.
		t.pruned += len(worklist)
		t.trunc = true
		for _, st := range worklist {
			t.releaseState(st)
		}
	}
	return t.events
}

// newState takes a zeroed state from the pool.
func (t *tase) newState() *state {
	t.stateGets++
	return statePool.Get().(*state)
}

// releaseState recycles a dead path's state. Only exclusively-owned
// containers go back to their pools; anything shared with a live sibling
// (ownership flag down) is left to that sibling and the GC.
func (t *tase) releaseState(st *state) {
	if st.stackOwned && st.stackRef != nil {
		buf := st.stack[:cap(st.stack)]
		clear(buf) // drop Expr references so pooled buffers don't pin traces
		*st.stackRef = buf[:0]
		stackPool.Put(st.stackRef)
	}
	if st.memOwned && st.mem != nil {
		clear(st.mem)
		memPool.Put(st.mem)
	}
	if st.visitsOwned && st.visits != nil {
		clear(st.visits)
		visitPool.Put(st.visits)
	}
	*st = state{}
	statePool.Put(st)
}

// cloneState forks the state in O(1): every container is shared with the
// original and both sides drop ownership, deferring any copying to the
// first post-fork write (often never — a path that only pops and dies pays
// nothing).
func (t *tase) cloneState(s *state) *state {
	s.stackOwned, s.memOwned, s.visitsOwned = false, false, false
	s.copies = s.copies[:len(s.copies):len(s.copies)]
	s.guards = s.guards[:len(s.guards):len(s.guards)]
	cp := t.newState()
	*cp = *s
	return cp
}

// ownStack materializes a private copy of the stack into a pooled buffer.
func (t *tase) ownStack(st *state) {
	if st.stackOwned {
		return
	}
	ref := stackPool.Get().(*[]*Expr)
	buf := append((*ref)[:0], st.stack...)
	t.cloneBytes += uint64(len(st.stack)) * 8
	st.stack, st.stackRef, st.stackOwned = buf, ref, true
}

// ownMem materializes a private copy of the word-store map.
func (t *tase) ownMem(st *state) {
	if st.memOwned {
		return
	}
	m := memPool.Get().(map[uint64]*Expr)
	for k, v := range st.mem {
		m[k] = v
	}
	t.cloneBytes += uint64(len(st.mem)) * 16
	st.mem, st.memOwned = m, true
}

// ownVisits materializes a private copy of the JUMPI visit counters.
func (t *tase) ownVisits(st *state) {
	if st.visitsOwned {
		return
	}
	m := visitPool.Get().(map[uint64]int)
	for k, v := range st.visits {
		m[k] = v
	}
	t.cloneBytes += uint64(len(st.visits)) * 16
	st.visits, st.visitsOwned = m, true
}

// explore runs one path until it ends, returning forked states in the
// order they were spawned. The state is consumed: it is released back to
// the pool before returning.
func (t *tase) explore(st *state) []*state {
	t.paths++
	var forks []*state
	for {
		if st.steps >= maxStepsPerPath || t.totSteps >= t.lim.maxSteps {
			t.trunc = true
			break
		}
		if t.cancelable && t.totSteps&deadlineCheckMask == 0 && t.pollCancel() {
			t.trunc = true
			break
		}
		ins, ok := t.program.At(st.pc)
		if !ok {
			break // ran off the end: STOP
		}
		st.steps++
		t.totSteps++
		fork, done := t.step(st, ins)
		if fork != nil {
			forks = append(forks, fork)
		}
		if done {
			break
		}
	}
	t.releaseState(st)
	return forks
}

// Interned construction helpers. With interning on (the default), all
// expression building funnels through the per-trace hash-consing table;
// the noIntern mode builds fresh nodes exactly as the pre-interner engine
// did, for the differential test.

func (t *tase) constE(w evm.Word) *Expr {
	if t.lim.noIntern {
		return NewConst(w)
	}
	return t.it.constW(w)
}

func (t *tase) constUintE(v uint64) *Expr {
	if t.lim.noIntern {
		return NewConstUint(v)
	}
	return t.it.constUint(v)
}

func (t *tase) cdataE(off *Expr) *Expr {
	if t.lim.noIntern {
		return NewCData(off)
	}
	return t.it.cdata(off)
}

func (t *tase) csizeE() *Expr {
	if t.lim.noIntern {
		return &Expr{Kind: KindCSize}
	}
	return t.it.csize()
}

func (t *tase) appE(op evm.Op, args ...*Expr) *Expr {
	if t.lim.noIntern {
		return NewApp(op, args...)
	}
	return t.it.appN(op, args)
}

func (t *tase) fresh(label string) *Expr {
	t.envSeq++
	if t.lim.noIntern {
		return NewEnv(label, t.envSeq)
	}
	return t.it.env(label, t.envSeq)
}

// record deduplicates and stores an event.
func (t *tase) record(ev Event) {
	key := t.eventID(ev)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	t.events = append(t.events, ev)
}

// eventID builds the integer dedup key of an event from interned ids.
func (t *tase) eventID(ev Event) eventID {
	switch ev.Kind {
	case EvCDL:
		return eventID{kind: EvCDL, pc: ev.PC, a0: t.it.idOf(ev.Off)}
	case EvCDC:
		return eventID{kind: EvCDC, pc: ev.PC, dst: ev.Dst,
			a0: t.it.idOf(ev.Src), a1: t.it.idOf(ev.Len)}
	default:
		k := eventID{kind: EvOp, op: ev.Op, pc: ev.PC, nargs: int8(len(ev.Args))}
		for i, a := range ev.Args {
			switch i {
			case 0:
				k.a0 = t.it.idOf(a)
			case 1:
				k.a1 = t.it.idOf(a)
			case 2:
				k.a2 = t.it.idOf(a)
			}
		}
		return k
	}
}

// guardsSnapshot captures the active guards for attachment to an event.
// Guards are append-only and the slice is capacity-trimmed, so the
// snapshot shares the backing array immutably instead of copying: a later
// append (on this path or a fork) always reallocates past the trim.
func guardsSnapshot(st *state) []Guard {
	return st.guards[:len(st.guards):len(st.guards)]
}

// step executes one instruction. It returns a forked state to queue (at
// most one, from a symbolic JUMPI whose fall-through this path keeps
// following) and whether the path is done.
func (t *tase) step(st *state, ins evm.Instruction) (*state, bool) {
	op := ins.Op
	if !op.Defined() {
		return nil, true
	}
	pops := op.StackPops()
	if len(st.stack) < pops {
		return nil, true // malformed path; abandon
	}
	pop := func() *Expr {
		e := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return e
	}
	push := func(e *Expr) {
		t.ownStack(st)
		st.stack = append(st.stack, e)
	}
	nextPC := ins.PC + 1 + uint64(len(ins.ArgBytes))

	switch {
	case op.IsPush():
		push(t.constE(ins.Arg))
	case op.IsDup():
		n := int(op-evm.DUP1) + 1
		push(st.stack[len(st.stack)-n])
	case op.IsSwap():
		n := int(op-evm.SWAP1) + 1
		t.ownStack(st)
		top := len(st.stack) - 1
		st.stack[top], st.stack[top-n] = st.stack[top-n], st.stack[top]
	default:
		switch op {
		case evm.STOP, evm.RETURN, evm.REVERT, evm.INVALID, evm.SELFDESTRUCT:
			return nil, true

		case evm.JUMP:
			dst := pop()
			dv, ok := dst.ConstUint()
			if !ok || !t.program.IsJumpDest(dv) {
				// Input-dependent jump target: stop this path (the paper's
				// documented TASE restriction).
				return nil, true
			}
			st.pc = dv
			return nil, false

		case evm.JUMPI:
			dst := pop()
			cond := pop()
			dv, okDst := dst.ConstUint()
			if !okDst || !t.program.IsJumpDest(dv) {
				return nil, true
			}
			lo, hi := ins.PC, dv
			if hi < lo {
				lo, hi = hi, lo
			}
			mkGuard := func(taken bool) Guard {
				return Guard{PC: ins.PC, Cond: cond, Taken: taken, Lo: lo, Hi: hi}
			}
			if cond.Conc != nil {
				taken := !cond.Conc.IsZero()
				st.guards = append(st.guards, mkGuard(taken))
				if taken {
					st.pc = dv
				} else {
					st.pc = nextPC
				}
				return nil, false
			}
			// Symbolic condition: fork within the visit budget.
			t.ownVisits(st)
			st.visits[ins.PC]++
			if st.visits[ins.PC] > maxVisitsPerJumpi {
				// Budget hit: follow the forward branch (usually the loop
				// exit) unless it lands in an abort block, in which case
				// keep falling through (the branch is a range check).
				t.pruned++
				follow := dv > ins.PC && !t.isRevertBlock(dv)
				st.guards = append(st.guards, mkGuard(follow))
				if follow {
					st.pc = dv
				} else {
					st.pc = nextPC
				}
				return nil, false
			}
			if t.paths >= t.lim.maxPaths || t.totSteps >= t.lim.maxSteps ||
				(t.cancelable && t.pollCancel()) {
				// Fan-out point with the global budget spent: stop forking,
				// follow the fall-through only, and flag the result partial.
				t.pruned++
				t.trunc = true
				st.guards = append(st.guards, mkGuard(false))
				st.pc = nextPC
				return nil, false
			}
			other := t.cloneState(st)
			st.guards = append(st.guards, mkGuard(false))
			st.pc = nextPC
			other.guards = append(other.guards, mkGuard(true))
			other.pc = dv
			// Continue the fall-through on this path (counted as a fresh
			// path, matching the old recursive accounting); queue the
			// taken branch.
			t.paths++
			return other, false

		case evm.CALLDATALOAD:
			off := pop()
			var val *Expr
			if v, ok := off.ConstUint(); ok && v == 0 && t.selWord != nil {
				val = t.constE(*t.selWord)
			} else {
				val = t.cdataE(off)
				t.record(Event{Kind: EvCDL, PC: ins.PC, Off: off, Val: val, Guards: guardsSnapshot(st)})
			}
			push(val)

		case evm.CALLDATASIZE:
			push(t.csizeE())

		case evm.CALLDATACOPY:
			dst, src, ln := pop(), pop(), pop()
			if dv, ok := dst.ConstUint(); ok {
				st.copies = append(st.copies, memCopy{dst: dv, src: src, ln: ln})
				t.record(Event{Kind: EvCDC, PC: ins.PC, Dst: dv, Src: src, Len: ln, Guards: guardsSnapshot(st)})
			}

		case evm.MLOAD:
			addr := pop()
			push(t.mload(st, addr))

		case evm.MSTORE:
			addr, val := pop(), pop()
			if av, ok := addr.ConstUint(); ok {
				t.ownMem(st)
				st.mem[av] = val
			}

		case evm.MSTORE8:
			pop()
			pop()

		case evm.SLOAD:
			pop()
			push(t.fresh("sload"))

		case evm.SSTORE:
			pop()
			pop()

		case evm.KECCAK256:
			pop()
			pop()
			push(t.fresh("sha3"))

		case evm.ADDRESS, evm.ORIGIN, evm.CALLER, evm.CALLVALUE, evm.GASPRICE,
			evm.COINBASE, evm.TIMESTAMP, evm.NUMBER, evm.PREVRANDAO,
			evm.GASLIMIT, evm.CHAINID, evm.SELFBALANCE, evm.BASEFEE,
			evm.MSIZE, evm.GAS, evm.RETURNDATASIZE, evm.CODESIZE:
			push(t.fresh(op.String()))

		case evm.PC:
			push(t.constUintE(ins.PC))

		case evm.JUMPDEST:
			// no-op

		case evm.POP:
			pop()

		case evm.BALANCE, evm.EXTCODESIZE, evm.EXTCODEHASH, evm.BLOCKHASH:
			pop()
			push(t.fresh(op.String()))

		case evm.CODECOPY, evm.RETURNDATACOPY:
			pop()
			pop()
			pop()

		case evm.EXTCODECOPY:
			pop()
			pop()
			pop()
			pop()

		case evm.CREATE, evm.CREATE2:
			for i := 0; i < pops; i++ {
				pop()
			}
			push(t.fresh("create"))

		case evm.CALL, evm.CALLCODE, evm.DELEGATECALL, evm.STATICCALL:
			for i := 0; i < pops; i++ {
				pop()
			}
			push(t.fresh("callret"))

		case evm.LOG0, evm.LOG0 + 1, evm.LOG0 + 2, evm.LOG0 + 3, evm.LOG4:
			for i := 0; i < pops; i++ {
				pop()
			}

		default:
			// Pure computational opcode: build the application through the
			// interner. Operands land in a scratch array — on an interner
			// hit nothing is allocated; the canonical node's own Args
			// slice backs any recorded event.
			var argArr [3]*Expr
			var e *Expr
			if pops <= len(argArr) {
				for i := 0; i < pops; i++ {
					argArr[i] = pop()
				}
				args := argArr[:pops]
				if t.lim.noIntern {
					e = NewApp(op, append([]*Expr(nil), args...)...)
				} else {
					e = t.it.appN(op, args)
				}
				if tainted(args) {
					t.record(Event{Kind: EvOp, PC: ins.PC, Op: op, Args: e.Args, Guards: guardsSnapshot(st)})
				}
			} else {
				args := make([]*Expr, pops)
				for i := 0; i < pops; i++ {
					args[i] = pop()
				}
				e = t.appE(op, args...)
				if tainted(args) {
					t.record(Event{Kind: EvOp, PC: ins.PC, Op: op, Args: e.Args, Guards: guardsSnapshot(st)})
				}
			}
			if op.StackPushes() > 0 {
				push(e)
			}
		}
	}
	st.pc = nextPC
	return nil, false
}

func tainted(args []*Expr) bool {
	for _, a := range args {
		if a.ContainsCData() {
			return true
		}
	}
	return false
}

// isRevertBlock reports whether the code at pc immediately aborts
// (JUMPDEST followed by a short push sequence ending in REVERT/INVALID).
func (t *tase) isRevertBlock(pc uint64) bool {
	idx, ok := t.program.IndexOf(pc)
	if !ok {
		return false
	}
	for i := idx; i < len(t.program.Instructions) && i < idx+6; i++ {
		op := t.program.Instructions[i].Op
		switch {
		case op == evm.REVERT || op == evm.INVALID:
			return true
		case op == evm.JUMPDEST || op.IsPush() || op.IsDup():
			continue
		default:
			return false
		}
	}
	return false
}

// mload resolves a memory read against word stores and copy regions.
func (t *tase) mload(st *state, addr *Expr) *Expr {
	if av, ok := addr.ConstUint(); ok {
		if v, hit := st.mem[av]; hit {
			return v
		}
		if cp, hit := findCopy(st.copies, av); hit {
			off := t.appE(evm.ADD, cp.src, t.constUintE(av-cp.dst))
			return t.cdataE(off)
		}
		return t.constE(evm.ZeroWord) // untouched memory reads zero
	}
	// Symbolic address: attribute via the constant component.
	if base, ok := linearConst(addr).Uint64(); ok {
		if cp, hit := findCopy(st.copies, base); hit {
			delta := t.appE(evm.SUB, addr, t.constUintE(cp.dst))
			return t.cdataE(t.appE(evm.ADD, cp.src, delta))
		}
	}
	return t.fresh("mem")
}

// findCopy locates the most recent copy region covering the address.
func findCopy(copies []memCopy, addr uint64) (memCopy, bool) {
	for i := len(copies) - 1; i >= 0; i-- {
		cp := copies[i]
		span := uint64(memRegionSpan)
		if lv, ok := cp.ln.ConstUint(); ok && lv > 0 && lv < span {
			span = lv
		}
		if addr >= cp.dst && addr < cp.dst+span {
			return cp, true
		}
	}
	return memCopy{}, false
}

// TraceFunction symbolically executes the contract as if called with the
// given selector and returns the observed events, under the default
// exploration budgets.
func TraceFunction(program *Program, selector [4]byte) Trace {
	return traceFunction(program, selector, defaultLimits())
}

// traceFunction is TraceFunction under caller-supplied limits; it also
// reports exploration counters into the pipeline telemetry and recycles
// the engine's interner.
func traceFunction(program *Program, selector [4]byte, lim limits) Trace {
	return traceFunctionSpan(program, selector, lim, nil, "", nil)
}

// traceFunctionSpan is traceFunction with the exploration's counters
// (selector, paths, steps, intern hit rate, truncation cause) attached to
// sp when tracing is on and folded into the recovery's wide event when ev
// is non-nil; sp/ev nil is the zero-cost untraced path.
func traceFunctionSpan(program *Program, selector [4]byte, lim limits, sp *obs.Span, selHex string, ev *eventlog.Event) Trace {
	tr, t := traceFunctionEngine(program, selector, lim)
	annotateTASE(sp, t, selHex)
	finishTASE(t, ev)
	return tr
}

// traceFunctionEngine runs the exploration and returns the finished engine
// alongside the trace, leaving span annotation and counter folding to the
// caller. The parallel per-selector path uses this: workers explore
// concurrently (the engine is goroutine-confined), and the merge loop
// calls annotateTASE/finishTASE in deterministic selector order so span
// trees, telemetry, and wide-event accumulation are byte-identical to the
// sequential run.
func traceFunctionEngine(program *Program, selector [4]byte, lim limits) (Trace, *tase) {
	var b [32]byte
	copy(b[:], selector[:])
	selWord := evm.WordFromBytes(b[:])
	t := newTASE(program, &selWord, lim)
	events := t.run()
	return Trace{Selector: selector, Events: events, Truncated: t.trunc}, t
}
