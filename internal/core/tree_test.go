package core

import "testing"

// TestDecisionTreeCoversAllRules: every one of the 31 rules must appear on
// some path of the Fig. 13 artifact.
func TestDecisionTreeCoversAllRules(t *testing.T) {
	covered := RulesCovered()
	for r := RuleID(1); int(r) <= NumRules; r++ {
		if !covered[r] {
			t.Errorf("%s missing from the decision tree", r)
		}
	}
}

// TestDecisionTreeWellFormed checks structural sanity.
func TestDecisionTreeWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for i, p := range DecisionTree() {
		if p.Result == "" || len(p.Rules) == 0 {
			t.Errorf("path %d incomplete: %+v", i, p)
		}
		switch p.Mode {
		case "public", "external", "any":
		default:
			t.Errorf("path %d: bad mode %q", i, p.Mode)
		}
		switch p.Language {
		case "solidity", "vyper":
		default:
			t.Errorf("path %d: bad language %q", i, p.Language)
		}
		key := p.Language + "/" + p.Mode + "/" + p.Result
		if seen[key] {
			t.Errorf("duplicate path %q", key)
		}
		seen[key] = true
		for _, r := range p.Rules {
			if int(r) < 1 || int(r) > NumRules {
				t.Errorf("path %d: rule %d out of range", i, int(r))
			}
		}
	}
	// Vyper paths must all start with the language-detection rule.
	for _, p := range DecisionTree() {
		if p.Language == "vyper" && p.Rules[0] != R20 {
			t.Errorf("vyper path %q must start with R20", p.Result)
		}
	}
}
