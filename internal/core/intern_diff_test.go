package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sigrec/internal/corpus"
	"sigrec/internal/evm"
)

// TestInterningDifferential checks that hash-consed construction is purely
// an optimization: over a random corpus, recovery with interning ON and
// OFF must produce byte-identical signatures, rule trails, and TASE event
// sets. Any divergence means the interner changed observable semantics.
func TestInterningDifferential(t *testing.T) {
	cfg := corpus.Config{
		Seed:           123,
		Solidity:       60,
		Vyper:          15,
		AmbiguityRate:  0.15,
		ConversionRate: 0.05,
		AsmReadRate:    0.05,
		StorageRefRate: 0.05,
		MaxParams:      4,
	}
	c, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	ctx := context.Background()
	recovered := 0
	for i, e := range c.Entries {
		on, errOn := RecoverContext(ctx, e.Code, Options{})
		off, errOff := RecoverContext(ctx, e.Code, Options{DisableInterning: true})
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("entry %d (%s): error mismatch: on=%v off=%v", i, e.Sig.Canonical(), errOn, errOff)
		}
		if got, want := renderResult(on), renderResult(off); got != want {
			t.Fatalf("entry %d (%s): result diverges\ninterning on:\n%s\ninterning off:\n%s",
				i, e.Sig.Canonical(), got, want)
		}
		// Compare the raw TASE event streams per selector, not just the
		// inferred output: interning must not change what is observed.
		program := evm.Disassemble(e.Code)
		recovered += len(on.Functions)
		for _, fn := range on.Functions {
			sel := [4]byte(fn.Selector)
			trOn := traceFunction(program, sel, limits{})
			trOff := traceFunction(program, sel, limits{noIntern: true})
			if got, want := renderTrace(trOn), renderTrace(trOff); got != want {
				t.Fatalf("entry %d (%s) selector %x: trace diverges\ninterning on:\n%s\ninterning off:\n%s",
					i, e.Sig.Canonical(), sel, got, want)
			}
		}
	}
	// Guard against the test passing vacuously on an empty corpus or a
	// recovery pipeline that errors everywhere.
	if recovered < len(c.Entries)/2 {
		t.Fatalf("only %d functions recovered over %d entries; differential coverage too thin",
			recovered, len(c.Entries))
	}
}

// renderResult serializes everything a caller can observe from a recovery.
func renderResult(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "truncated=%v rules=%v\n", r.Truncated, r.Rules)
	for _, f := range r.Functions {
		fmt.Fprintf(&b, "%x %s lang=%v trunc=%v rules=%v\n",
			[4]byte(f.Selector), f.TypeList(), f.Language, f.Truncated, f.ParamRules)
	}
	return b.String()
}

// renderTrace serializes an event stream structurally.
func renderTrace(tr Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "truncated=%v events=%d\n", tr.Truncated, len(tr.Events))
	for _, ev := range tr.Events {
		fmt.Fprintf(&b, "k=%d pc=%d op=%v dst=%d", ev.Kind, ev.PC, ev.Op, ev.Dst)
		for _, e := range []*Expr{ev.Off, ev.Val, ev.Src, ev.Len} {
			if e != nil {
				b.WriteByte(' ')
				b.WriteString(e.String())
			}
		}
		for _, a := range ev.Args {
			b.WriteByte(' ')
			b.WriteString(a.String())
		}
		fmt.Fprintf(&b, " guards=%d", len(ev.Guards))
		for _, g := range ev.Guards {
			fmt.Fprintf(&b, " [%d:%v:%s]", g.PC, g.Taken, g.Cond.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
