package core

import (
	"context"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

func TestRecoverAll(t *testing.T) {
	sigStrs := []string{
		"a(uint256)", "b(address,bool)", "c(bytes)", "d(uint8[3])", "e(uint256[])",
	}
	var codes [][]byte
	var sigs []abi.Signature
	for _, s := range sigStrs {
		sig, _ := abi.ParseSignature(s)
		code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
			{Sig: sig, Mode: solc.External},
		}}, solc.Config{Version: solc.DefaultVersion()})
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, code)
		sigs = append(sigs, sig)
	}
	// Add a failing input in the middle.
	codes = append(codes[:2], append([][]byte{{0x00}}, codes[2:]...)...)
	sigs = append(sigs[:2], append([]abi.Signature{{}}, sigs[2:]...)...)

	for _, workers := range []int{0, 1, 3, 16} {
		items := RecoverAll(codes, workers)
		if len(items) != len(codes) {
			t.Fatalf("workers=%d: %d items", workers, len(items))
		}
		for i, item := range items {
			if item.Index != i {
				t.Errorf("workers=%d: item %d carries index %d", workers, i, item.Index)
			}
			if i == 2 {
				if item.Err == nil {
					t.Errorf("workers=%d: dispatcherless input did not fail", workers)
				}
				continue
			}
			if item.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, item.Err)
			}
			got := abi.Signature{Name: "f", Inputs: item.Result.Functions[0].Inputs}
			if !got.EqualTypes(sigs[i]) {
				t.Errorf("workers=%d item %d: recovered %s", workers, i, got.TypeList())
			}
		}
	}
}

func TestRecoverAllEmpty(t *testing.T) {
	if items := RecoverAll(nil, 4); len(items) != 0 {
		t.Errorf("empty batch returned %d items", len(items))
	}
}

// TestRecoverAllTinyBatch covers the degenerate pool shapes: a one-item
// batch (which runs inline, spawning no workers however many were asked
// for) and zero/negative worker counts.
func TestRecoverAllTinyBatch(t *testing.T) {
	sig, _ := abi.ParseSignature("ping(uint64)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 0, 1, 16} {
		items := RecoverAll([][]byte{code}, workers)
		if len(items) != 1 {
			t.Fatalf("workers=%d: %d items", workers, len(items))
		}
		if items[0].Err != nil {
			t.Fatalf("workers=%d: %v", workers, items[0].Err)
		}
		got := abi.Signature{Name: "f", Inputs: items[0].Result.Functions[0].Inputs}
		if !got.EqualTypes(sig) {
			t.Errorf("workers=%d: recovered %s", workers, got.TypeList())
		}
	}
}

// TestRecoverAllReportsPerItemTruncation: budget options flow through the
// batch API and truncation is visible on the affected item only.
func TestRecoverAllReportsPerItemTruncation(t *testing.T) {
	easy, _ := compileSig(t, "ok(uint256)")
	deep, _ := deepNestedCode(t, 1)
	items := RecoverAllContext(context.Background(), [][]byte{easy, deep}, 2,
		Options{StepBudget: 500})
	if len(items) != 2 {
		t.Fatalf("%d items", len(items))
	}
	if items[0].Err != nil || items[0].Result.Truncated {
		t.Errorf("easy item: err=%v truncated=%v", items[0].Err, items[0].Result.Truncated)
	}
	if !items[1].Result.Truncated {
		t.Error("deep item not reported truncated")
	}
}
