package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/keccak"
)

// memStore is an in-memory ResultStore double with call counters and an
// optional failure injector, so the tiered cache's ordering (memory →
// disk → fill → compute) is testable without touching the filesystem.
type memStore struct {
	mu      sync.Mutex
	m       map[[32]byte]storedOutcome
	loads   atomic.Int64
	saves   atomic.Int64
	saveErr error
}

type storedOutcome struct {
	res  Result
	rerr error
}

func newMemStore() *memStore {
	return &memStore{m: make(map[[32]byte]storedOutcome)}
}

func (s *memStore) Load(key [32]byte) (Result, error, bool) {
	s.loads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.m[key]
	return o.res, o.rerr, ok
}

func (s *memStore) Save(key [32]byte, res Result, rerr error) error {
	s.saves.Add(1)
	if s.saveErr != nil {
		return s.saveErr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = storedOutcome{res: res, rerr: rerr}
	return nil
}

func tieredResult(sel byte) Result {
	return Result{Functions: []RecoveredFunction{{
		Selector: abi.Selector{sel, 2, 3, 4},
		Inputs:   []abi.Type{abi.Uint(256)},
	}}}
}

// TestTieredCacheWarmRestart simulates a process restart: a fresh memory
// LRU over a warm disk store must serve every key as a cache hit with no
// fill and no compute — the warm-start contract the cluster e2e relies on.
func TestTieredCacheWarmRestart(t *testing.T) {
	disk := newMemStore()
	warm := NewTieredCache(64, disk)
	codes := make([][]byte, 20)
	for i := range codes {
		codes[i] = []byte{0x60, byte(i), 0x60, 0x40}
		res := tieredResult(byte(i))
		got, err := warm.GetOrCompute(codes[i], func() (Result, error) { return res, nil })
		if err != nil || len(got.Functions) != 1 {
			t.Fatalf("seed %d: %+v %v", i, got, err)
		}
	}
	if n := disk.saves.Load(); n != 20 {
		t.Fatalf("writes-through = %d, want 20", n)
	}

	// "Restart": new memory tier, same disk.
	restarted := NewTieredCache(64, disk)
	fills, computes := 0, 0
	for i, code := range codes {
		got, err := restarted.GetOrComputeFill(context.Background(), code,
			func(context.Context, []byte) (Result, error, bool) { fills++; return Result{}, nil, false },
			func() (Result, error) { computes++; return Result{}, errors.New("must not compute") })
		if err != nil {
			t.Fatalf("warm lookup %d: %v", i, err)
		}
		if got.Functions[0].Selector != (abi.Selector{byte(i), 2, 3, 4}) {
			t.Fatalf("warm lookup %d: wrong result %+v", i, got)
		}
	}
	if fills != 0 || computes != 0 {
		t.Fatalf("warm restart leaked work: fills=%d computes=%d", fills, computes)
	}
	// Promotion: the second pass must be pure memory hits.
	before := disk.loads.Load()
	for _, code := range codes {
		if _, err := restarted.GetOrCompute(code, func() (Result, error) {
			return Result{}, errors.New("must not compute")
		}); err != nil {
			t.Fatal(err)
		}
	}
	if disk.loads.Load() != before {
		t.Fatal("promoted keys still hitting the disk tier")
	}
}

// TestTieredCacheErrNoFunctions pins that the one persistable error
// round-trips through the disk tier.
func TestTieredCacheErrNoFunctions(t *testing.T) {
	disk := newMemStore()
	c := NewTieredCache(4, disk)
	code := []byte{0x00}
	if _, err := c.GetOrCompute(code, func() (Result, error) {
		return Result{}, ErrNoFunctions
	}); !errors.Is(err, ErrNoFunctions) {
		t.Fatalf("seed err = %v", err)
	}
	restarted := NewTieredCache(4, disk)
	if _, err := restarted.GetOrCompute(code, func() (Result, error) {
		return Result{}, errors.New("must not compute")
	}); !errors.Is(err, ErrNoFunctions) {
		t.Fatalf("restarted err = %v", err)
	}
}

// TestTieredCacheSaveErrorDoesNotFail pins that a failing disk tier
// degrades to memory-only behaviour instead of failing recoveries.
func TestTieredCacheSaveErrorDoesNotFail(t *testing.T) {
	disk := newMemStore()
	disk.saveErr = errors.New("disk full")
	c := NewTieredCache(4, disk)
	code := []byte{0x01}
	res, err := c.GetOrCompute(code, func() (Result, error) { return tieredResult(9), nil })
	if err != nil || len(res.Functions) != 1 {
		t.Fatalf("recovery failed on save error: %+v %v", res, err)
	}
	// Still a memory hit afterwards.
	if _, err := c.GetOrCompute(code, func() (Result, error) {
		return Result{}, errors.New("must not compute")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTieredCacheConcurrent runs GetOrComputeFill from many goroutines
// over a mixed warm/cold key set; under -race this audits the tiered
// read/promote/write-through paths for data races, and the compute counter
// proves coalescing still bounds work to one compute per cold key.
func TestTieredCacheConcurrent(t *testing.T) {
	disk := newMemStore()
	// Pre-warm half the keys on disk only.
	codes := make([][]byte, 16)
	for i := range codes {
		codes[i] = []byte{0x70, byte(i)}
		if i%2 == 0 {
			key := keccak.Sum256(codes[i])
			if err := disk.Save(key, tieredResult(byte(i)), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := NewTieredCache(8, disk)
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				code := codes[i%len(codes)]
				res, err := c.GetOrComputeFill(context.Background(), code, nil, func() (Result, error) {
					computes.Add(1)
					return tieredResult(code[1]), nil
				})
				if err != nil {
					t.Errorf("recover: %v", err)
					return
				}
				if res.Functions[0].Selector != (abi.Selector{code[1], 2, 3, 4}) {
					t.Errorf("wrong result for key %d", code[1])
					return
				}
			}
		}()
	}
	wg.Wait()
	// Warm keys never compute; cold keys compute at most once each
	// (coalescing) — with an 8-entry LRU over 16 keys, evicted cold keys
	// may recompute, but they can never exceed the request count for
	// their key. The hard bound that matters: warm keys stay at zero.
	if n := computes.Load(); n < 8 {
		t.Fatalf("computes = %d, want >= 8 (one per cold key)", n)
	}
	for i := 0; i < 16; i += 2 {
		key := keccak.Sum256(codes[i])
		disk.mu.Lock()
		_, ok := disk.m[key]
		disk.mu.Unlock()
		if !ok {
			t.Fatalf("warm key %d vanished from disk", i)
		}
	}
}
