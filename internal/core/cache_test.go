package core

import (
	"context"
	"fmt"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

// compileSig builds a one-function contract for the given signature string.
func compileSig(t testing.TB, sigStr string) ([]byte, abi.Signature) {
	t.Helper()
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		t.Fatal(err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	return code, sig
}

func TestCacheHitReturnsSameResult(t *testing.T) {
	code, sig := compileSig(t, "transfer(address,uint256)")
	cache := NewCache(8)
	opts := Options{Cache: cache}

	before := Metrics().Snapshot().Counters
	first, err := RecoverContext(context.Background(), code, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RecoverContext(context.Background(), code, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := Metrics().Snapshot().Counters

	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
	if hits := after["sigrec_cache_hits_total"] - before["sigrec_cache_hits_total"]; hits != 1 {
		t.Errorf("cache hits delta = %d, want 1", hits)
	}
	if misses := after["sigrec_cache_misses_total"] - before["sigrec_cache_misses_total"]; misses != 1 {
		t.Errorf("cache misses delta = %d, want 1", misses)
	}
	for _, res := range []Result{first, second} {
		if len(res.Functions) != 1 {
			t.Fatalf("%d functions", len(res.Functions))
		}
		got := abi.Signature{Name: "f", Inputs: res.Functions[0].Inputs}
		if !got.EqualTypes(sig) {
			t.Errorf("recovered %s", got.TypeList())
		}
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	codes := make([][]byte, 3)
	for i := range codes {
		codes[i], _ = compileSig(t, fmt.Sprintf("f%c(uint%d)", 'a'+i, 8*(i+1)))
	}
	cache := NewCache(2)
	opts := Options{Cache: cache}
	ctx := context.Background()

	RecoverContext(ctx, codes[0], opts)
	RecoverContext(ctx, codes[1], opts)
	RecoverContext(ctx, codes[0], opts) // refresh 0: 1 is now LRU
	RecoverContext(ctx, codes[2], opts) // evicts 1
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}

	before := Metrics().Snapshot().Counters
	RecoverContext(ctx, codes[0], opts) // still cached
	RecoverContext(ctx, codes[1], opts) // evicted: must miss
	after := Metrics().Snapshot().Counters
	if hits := after["sigrec_cache_hits_total"] - before["sigrec_cache_hits_total"]; hits != 1 {
		t.Errorf("hits delta = %d, want 1", hits)
	}
	if misses := after["sigrec_cache_misses_total"] - before["sigrec_cache_misses_total"]; misses != 1 {
		t.Errorf("misses delta = %d, want 1", misses)
	}
}

func TestCacheSkipsTruncatedResults(t *testing.T) {
	code, _ := deepNestedCode(t, 1)
	cache := NewCache(8)
	res, err := RecoverContext(context.Background(), code,
		Options{Cache: cache, StepBudget: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected a truncated result")
	}
	if cache.Len() != 0 {
		t.Errorf("truncated result was cached (%d entries)", cache.Len())
	}
}

// TestRecoverAllSharedCache runs a 1,000-contract batch with heavily
// duplicated bytecode through one shared Cache and the global telemetry
// registry. Run under -race this doubles as the concurrency check for the
// cache and the atomic counters; the duplicated corpus must produce a
// positive cache hit count and identical results for identical bytecode.
func TestRecoverAllSharedCache(t *testing.T) {
	uniqueSigs := []string{
		"transfer(address,uint256)", "approve(address,uint256)",
		"balanceOf(address)", "mint(address,uint8)", "burn(uint256)",
		"pause(bool)", "setOwner(address)", "sweep(uint256[])",
		"deposit(bytes)", "claim(uint32,bytes32)",
	}
	uniques := make([][]byte, len(uniqueSigs))
	wants := make([]abi.Signature, len(uniqueSigs))
	for i, s := range uniqueSigs {
		uniques[i], wants[i] = compileSig(t, s)
	}
	const n = 1000
	codes := make([][]byte, n)
	for i := range codes {
		codes[i] = uniques[i%len(uniques)]
	}

	before := Metrics().Snapshot().Counters
	items := RecoverAllContext(context.Background(), codes, 8,
		Options{Cache: NewCache(64)})
	after := Metrics().Snapshot().Counters

	if len(items) != n {
		t.Fatalf("%d items", len(items))
	}
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		got := abi.Signature{Name: "f", Inputs: item.Result.Functions[0].Inputs}
		if !got.EqualTypes(wants[i%len(wants)]) {
			t.Errorf("item %d: recovered %s", i, got.TypeList())
		}
	}
	hits := after["sigrec_cache_hits_total"] - before["sigrec_cache_hits_total"]
	if hits == 0 {
		t.Error("duplicated corpus produced no cache hits")
	}
	if recs := after["sigrec_recoveries_total"] - before["sigrec_recoveries_total"]; recs != n {
		t.Errorf("recoveries delta = %d, want %d", recs, n)
	}
}
