package core

import (
	"context"
	"runtime"
	"sync"
)

// BatchItem is one contract's recovery outcome in a batch run.
type BatchItem struct {
	// Index is the input position.
	Index int
	// Result is the recovery output (zero when Err is set). Result.Truncated
	// reports per-item budget truncation.
	Result Result
	// Err is the per-contract failure, if any.
	Err error
}

// RecoverAll recovers many contracts concurrently with a bounded worker
// pool under the default budgets. It is RecoverAllContext with a
// background context and zero Options.
func RecoverAll(codes [][]byte, workers int) []BatchItem {
	return RecoverAllContext(context.Background(), codes, workers, Options{})
}

// RecoverAllContext recovers many contracts concurrently with a bounded
// worker pool, applying the same Options (budgets, deadline, shared cache)
// to every item. Results are returned in input order. workers <= 0 selects
// GOMAXPROCS; the pool never exceeds the batch size, and batches of one
// (or one worker) run inline with no goroutines at all. Recovery is
// CPU-bound and per-contract independent, so the speedup is near-linear
// for large batches (the paper analyzed 37M contracts; this is the API a
// fleet scan would use — with Options.Cache set, duplicated bytecode is
// recovered once).
func RecoverAllContext(ctx context.Context, codes [][]byte, workers int, opts Options) []BatchItem {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(codes) {
		workers = len(codes)
	}
	out := make([]BatchItem, len(codes))
	if len(codes) == 0 {
		return out
	}
	mBatches.Inc()
	recover1 := func(idx int) {
		res, err := RecoverContext(ctx, codes[idx], opts)
		out[idx] = BatchItem{Index: idx, Result: res, Err: err}
	}
	if workers == 1 {
		// Tiny batch (or explicit single worker): no pool, no channel.
		for i := range codes {
			recover1(i)
		}
		return out
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				recover1(idx)
			}
		}()
	}
	for i := range codes {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
