package core

import (
	"runtime"
	"sync"
)

// BatchItem is one contract's recovery outcome in a batch run.
type BatchItem struct {
	// Index is the input position.
	Index int
	// Result is the recovery output (zero when Err is set).
	Result Result
	// Err is the per-contract failure, if any.
	Err error
}

// RecoverAll recovers many contracts concurrently with a bounded worker
// pool. Results are returned in input order. workers <= 0 selects
// GOMAXPROCS. Recovery is CPU-bound and per-contract independent, so the
// speedup is near-linear for large batches (the paper analyzed 37M
// contracts; this is the API a fleet scan would use).
func RecoverAll(codes [][]byte, workers int) []BatchItem {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(codes) {
		workers = len(codes)
	}
	out := make([]BatchItem, len(codes))
	if len(codes) == 0 {
		return out
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				res, err := Recover(codes[idx])
				out[idx] = BatchItem{Index: idx, Result: res, Err: err}
			}
		}()
	}
	for i := range codes {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
