package core

import (
	"sigrec/internal/evm"
)

// interner hash-conses Expr nodes for one TASE exploration: structurally
// identical expressions are canonicalized to a single immutable node and
// assigned a small integer id. Because every canonical node's children are
// themselves canonical, the structural hash and the equality check are both
// shallow — a key of scalar fields plus child *pointers* — so lookups never
// recurse and pointer equality substitutes for deep comparison everywhere
// downstream (event dedup, common-subexpression reuse).
//
// An interner is confined to a single goroutine and lives for one trace.
// The node tables are deliberately NOT pooled: clearing a map costs a
// full-table memclr that small traces would pay at the previous trace's
// high-water size, and generation-stamping retains stale trees that bloat
// the GC-scanned heap. A fresh small table that grows to the trace's own
// size measures faster than both.
//
// Nodes are split across three tables by kind so every key is compact —
// applications hash 32 bytes (three child pointers plus a packed tag)
// instead of one wide struct carrying a Word and a string for all kinds.
type interner struct {
	// apps holds KindApp, KindCData, and KindCSize nodes; the tag packs
	// kind, opcode, and arity.
	apps map[appInternKey]*Expr
	// consts holds constant nodes too large for the smallConst cache.
	consts map[evm.Word]*Expr
	// envs holds environment nodes keyed by (label, seq).
	envs map[envInternKey]*Expr

	nextID uint32
	// hits/misses meter the hash-consing effectiveness; finishTASE folds
	// them into the pipeline telemetry.
	hits, misses uint64

	// Slabs back the canonical nodes: every install carves its Expr, its
	// concrete Word, and its Args array out of chunked arrays instead of
	// individual heap objects. Nodes are immutable and share the trace's
	// lifetime (nothing outlives the recovery holding an *Expr), so whole
	// chunks die together and the per-node allocation disappears.
	exprSlab []Expr
	wordSlab []evm.Word
	argSlab  []*Expr

	// smallConst caches the canonical nodes for constants 0..255 in front
	// of the consts table — stack offsets, head offsets, and mask widths
	// dominate constE traffic, and a direct index avoids hashing on every
	// hit. The table stays authoritative (every install still goes through
	// it), so canonical() converges foreign trees with constW-built nodes.
	smallConst [256]*Expr
}

// appInternKey is the shallow structural identity of an application-shaped
// node. Child pointers are canonical, so pointer equality on a0..a2 is
// structural equality of the subtrees. Pure EVM opcodes pop at most three
// operands (ADDMOD and MULMOD), which bounds the arity.
type appInternKey struct {
	a0, a1, a2 *Expr
	tag        uint32
}

// appTag packs the discriminating scalars of an application-shaped node.
func appTag(kind ExprKind, op evm.Op, nargs int) uint32 {
	return uint32(kind)<<16 | uint32(op)<<8 | uint32(nargs)
}

// envInternKey identifies an environment node.
type envInternKey struct {
	env string
	seq int
}

const internSlabLen = 128

// newExpr carves one zeroed node from the slab.
func (it *interner) newExpr() *Expr {
	if len(it.exprSlab) == 0 {
		it.exprSlab = make([]Expr, internSlabLen)
	}
	e := &it.exprSlab[0]
	it.exprSlab = it.exprSlab[1:]
	return e
}

// newWord stores w in the word slab and returns its address.
func (it *interner) newWord(w evm.Word) *evm.Word {
	if len(it.wordSlab) == 0 {
		it.wordSlab = make([]evm.Word, internSlabLen)
	}
	p := &it.wordSlab[0]
	it.wordSlab = it.wordSlab[1:]
	*p = w
	return p
}

// ownArgs copies the operands into slab-backed storage (callers pass
// scratch arrays that must not be aliased by the canonical node).
func (it *interner) ownArgs(args []*Expr) []*Expr {
	n := len(args)
	if n == 0 {
		return nil
	}
	if len(it.argSlab) < n {
		it.argSlab = make([]*Expr, internSlabLen)
	}
	owned := it.argSlab[:n:n]
	it.argSlab = it.argSlab[n:]
	copy(owned, args)
	return owned
}

func newInterner() *interner {
	// No size hints: most traces are small, and empty tables are cheap.
	return &interner{
		apps:   make(map[appInternKey]*Expr),
		consts: make(map[evm.Word]*Expr),
		envs:   make(map[envInternKey]*Expr),
	}
}

// release drops the lookup structures. The canonical nodes themselves live
// on in the recorded events.
func (it *interner) release() {
	it.apps, it.consts, it.envs = nil, nil, nil
}

// tableLen reports the total number of installed nodes (test hook).
func (it *interner) tableLen() int {
	return len(it.apps) + len(it.consts) + len(it.envs)
}

// assignID gives e the next id and counts the install.
func (it *interner) assignID(e *Expr) *Expr {
	it.misses++
	it.nextID++
	e.id = it.nextID
	return e
}

// constW returns the canonical constant node for w.
func (it *interner) constW(w evm.Word) *Expr {
	v, small := w.Uint64()
	small = small && v < uint64(len(it.smallConst))
	if small {
		if e := it.smallConst[v]; e != nil {
			it.hits++
			return e
		}
	}
	if e, ok := it.consts[w]; ok {
		it.hits++
		if small {
			it.smallConst[v] = e
		}
		return e
	}
	e := it.newExpr()
	e.Kind = KindConst
	e.Conc = it.newWord(w)
	it.assignID(e)
	it.consts[w] = e
	if small {
		it.smallConst[v] = e
	}
	return e
}

// constUint is constW for small values.
func (it *interner) constUint(v uint64) *Expr { return it.constW(evm.WordFromUint64(v)) }

// cdata returns the canonical CALLDATALOAD(off) node; off must be canonical.
func (it *interner) cdata(off *Expr) *Expr {
	k := appInternKey{tag: appTag(KindCData, 0, 1), a0: off}
	if e, ok := it.apps[k]; ok {
		it.hits++
		return e
	}
	e := it.newExpr()
	e.Kind = KindCData
	e.Args = it.ownArgs([]*Expr{off})
	it.assignID(e)
	it.apps[k] = e
	return e
}

// csize returns the canonical CALLDATASIZE node.
func (it *interner) csize() *Expr {
	k := appInternKey{tag: appTag(KindCSize, 0, 0)}
	if e, ok := it.apps[k]; ok {
		it.hits++
		return e
	}
	e := it.newExpr()
	e.Kind = KindCSize
	it.assignID(e)
	it.apps[k] = e
	return e
}

// env returns the environment node for (label, seq). Sequence numbers are
// unique per trace, so this always installs; interning it anyway gives the
// node an id for integer event keys.
func (it *interner) env(label string, seq int) *Expr {
	k := envInternKey{env: label, seq: seq}
	if e, ok := it.envs[k]; ok {
		it.hits++
		return e
	}
	e := it.newExpr()
	e.Kind = KindEnv
	e.Env = label
	e.Seq = seq
	it.assignID(e)
	it.envs[k] = e
	return e
}

// appKey builds the application key over canonical operands.
func appKey(op evm.Op, args []*Expr) appInternKey {
	k := appInternKey{tag: appTag(KindApp, op, len(args))}
	switch len(args) {
	case 3:
		k.a2 = args[2]
		fallthrough
	case 2:
		k.a1 = args[1]
		fallthrough
	case 1:
		k.a0 = args[0]
	}
	return k
}

// app returns the canonical Op(args...) node, folding concretely on first
// construction; args must be canonical and at most three (every pure EVM
// opcode satisfies this). The args slice is only retained on a miss.
func (it *interner) app(op evm.Op, args ...*Expr) *Expr {
	return it.appN(op, args)
}

// appN is app without the variadic copy, for callers that already hold a
// slice (or a sub-slice of a scratch array — a slab copy is made on miss
// so the canonical node never aliases caller scratch space).
func (it *interner) appN(op evm.Op, args []*Expr) *Expr {
	k := appKey(op, args)
	if e, ok := it.apps[k]; ok {
		it.hits++
		return e
	}
	e := it.newExpr()
	e.Kind = KindApp
	e.Op = op
	e.Args = it.ownArgs(args)
	if w, ok := foldArgs(op, args); ok {
		e.Conc = it.newWord(w)
	}
	it.assignID(e)
	it.apps[k] = e
	return e
}

// canonical returns the canonical node for an arbitrary expression tree,
// interning any not-yet-seen structure bottom-up. Already-canonical nodes
// (id set) return immediately, so on the interned construction path this
// is a single field test; it only walks for foreign trees (the interning-
// disabled mode, which still needs ids for event dedup keys).
func (it *interner) canonical(e *Expr) *Expr {
	if e.id != 0 {
		return e
	}
	n := len(e.Args)
	if n > 3 {
		// Not an internable shape (cannot happen for TASE-built nodes);
		// give it a unique id so dedup still has a stable key.
		it.nextID++
		e.id = it.nextID
		return e
	}
	if e.Kind == KindConst && e.Conc != nil {
		// Constants key on their value alone; converge with constW
		// (including its small-value cache).
		return it.constW(*e.Conc)
	}
	if e.Kind == KindEnv {
		return it.env(e.Env, e.Seq)
	}
	k := appInternKey{tag: appTag(e.Kind, e.Op, n)}
	changed := false
	var cargs [3]*Expr
	for i := 0; i < n; i++ {
		cargs[i] = it.canonical(e.Args[i])
		changed = changed || cargs[i] != e.Args[i]
	}
	k.a0, k.a1, k.a2 = cargs[0], cargs[1], cargs[2]
	if c, ok := it.apps[k]; ok {
		it.hits++
		return c
	}
	c := e
	if changed {
		c = &Expr{Kind: e.Kind, Conc: e.Conc, Op: e.Op, Env: e.Env, Seq: e.Seq,
			Args: append([]*Expr(nil), cargs[:n]...)}
	}
	it.assignID(c)
	it.apps[k] = c
	return c
}

// idOf returns the canonical id of e, interning it if needed.
func (it *interner) idOf(e *Expr) uint32 { return it.canonical(e).id }
