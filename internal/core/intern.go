package core

import (
	"sigrec/internal/evm"
)

// interner hash-conses Expr nodes for one TASE exploration: structurally
// identical expressions are canonicalized to a single immutable node and
// assigned a small integer id. Because every canonical node's children are
// themselves canonical, the structural hash and the equality check are both
// shallow — a key of scalar fields plus child *pointers* — so lookups never
// recurse and pointer equality substitutes for deep comparison everywhere
// downstream (event dedup, common-subexpression reuse).
//
// An interner is confined to a single goroutine and lives for one trace.
// The node table is deliberately NOT pooled: clearing a map with ~100-byte
// keys costs a full-table memclr that small traces would pay at the
// previous trace's high-water size, and generation-stamping retains stale
// trees that bloat the GC-scanned heap. A fresh small table that grows to
// the trace's own size measures faster than both.
type interner struct {
	nodes  map[internKey]*Expr
	nextID uint32
	// hits/misses meter the hash-consing effectiveness; finishTASE folds
	// them into the pipeline telemetry.
	hits, misses uint64
}

// internKey is the shallow structural identity of a node. Child pointers
// are canonical, so pointer equality on a0..a2 is structural equality of
// the subtrees. Pure EVM opcodes pop at most three operands (ADDMOD and
// MULMOD), which bounds the arity of every interned application.
type internKey struct {
	kind       ExprKind
	op         evm.Op
	seq        int
	nargs      int8
	hasConc    bool
	conc       evm.Word
	env        string
	a0, a1, a2 *Expr
}

func newInterner() *interner {
	return &interner{nodes: make(map[internKey]*Expr, 64)}
}

// release drops the lookup structure. The canonical nodes themselves live
// on in the recorded events.
func (it *interner) release() {
	it.nodes = nil
}

// lookup returns the canonical node for k, if installed.
func (it *interner) lookup(k internKey) (*Expr, bool) {
	e, ok := it.nodes[k]
	if ok {
		it.hits++
	}
	return e, ok
}

// install assigns e the next id and records it as the canonical node for k.
func (it *interner) install(k internKey, e *Expr) *Expr {
	it.misses++
	it.nextID++
	e.id = it.nextID
	it.nodes[k] = e
	return e
}

// constW returns the canonical constant node for w.
func (it *interner) constW(w evm.Word) *Expr {
	k := internKey{kind: KindConst, hasConc: true, conc: w}
	if e, ok := it.lookup(k); ok {
		return e
	}
	return it.install(k, NewConst(w))
}

// constUint is constW for small values.
func (it *interner) constUint(v uint64) *Expr { return it.constW(evm.WordFromUint64(v)) }

// cdata returns the canonical CALLDATALOAD(off) node; off must be canonical.
func (it *interner) cdata(off *Expr) *Expr {
	k := internKey{kind: KindCData, nargs: 1, a0: off}
	if e, ok := it.lookup(k); ok {
		return e
	}
	return it.install(k, NewCData(off))
}

// csize returns the canonical CALLDATASIZE node.
func (it *interner) csize() *Expr {
	k := internKey{kind: KindCSize}
	if e, ok := it.lookup(k); ok {
		return e
	}
	return it.install(k, &Expr{Kind: KindCSize})
}

// env returns the environment node for (label, seq). Sequence numbers are
// unique per trace, so this always installs; interning it anyway gives the
// node an id for integer event keys.
func (it *interner) env(label string, seq int) *Expr {
	k := internKey{kind: KindEnv, env: label, seq: seq}
	if e, ok := it.lookup(k); ok {
		return e
	}
	return it.install(k, NewEnv(label, seq))
}

// appKey builds the application key over canonical operands.
func appKey(op evm.Op, args []*Expr) internKey {
	k := internKey{kind: KindApp, op: op, nargs: int8(len(args))}
	switch len(args) {
	case 3:
		k.a2 = args[2]
		fallthrough
	case 2:
		k.a1 = args[1]
		fallthrough
	case 1:
		k.a0 = args[0]
	}
	return k
}

// app returns the canonical Op(args...) node, folding concretely on first
// construction; args must be canonical and at most three (every pure EVM
// opcode satisfies this). The args slice is only retained on a miss.
func (it *interner) app(op evm.Op, args ...*Expr) *Expr {
	return it.appN(op, args)
}

// appN is app without the variadic copy, for callers that already hold a
// slice (or a sub-slice of a scratch array — a fresh slice is made on miss
// so the canonical node never aliases caller scratch space).
func (it *interner) appN(op evm.Op, args []*Expr) *Expr {
	k := appKey(op, args)
	if e, ok := it.lookup(k); ok {
		return e
	}
	owned := make([]*Expr, len(args))
	copy(owned, args)
	return it.install(k, NewApp(op, owned...))
}

// canonical returns the canonical node for an arbitrary expression tree,
// interning any not-yet-seen structure bottom-up. Already-canonical nodes
// (id set) return immediately, so on the interned construction path this
// is a single field test; it only walks for foreign trees (the interning-
// disabled mode, which still needs ids for event dedup keys).
func (it *interner) canonical(e *Expr) *Expr {
	if e.id != 0 {
		return e
	}
	n := len(e.Args)
	if n > 3 {
		// Not an internable shape (cannot happen for TASE-built nodes);
		// give it a unique id so dedup still has a stable key.
		it.nextID++
		e.id = it.nextID
		return e
	}
	k := internKey{kind: e.Kind, op: e.Op, seq: e.Seq, env: e.Env, nargs: int8(n)}
	if e.Kind == KindConst && e.Conc != nil {
		// Only constants key on their value: an application's Conc is
		// derived from its operands, and including it here would make the
		// key shape disagree with the one appN builds.
		k.hasConc = true
		k.conc = *e.Conc
	}
	changed := false
	var cargs [3]*Expr
	for i := 0; i < n; i++ {
		cargs[i] = it.canonical(e.Args[i])
		changed = changed || cargs[i] != e.Args[i]
	}
	k.a0, k.a1, k.a2 = cargs[0], cargs[1], cargs[2]
	if c, ok := it.lookup(k); ok {
		return c
	}
	c := e
	if changed {
		c = &Expr{Kind: e.Kind, Conc: e.Conc, Op: e.Op, Env: e.Env, Seq: e.Seq,
			Args: append([]*Expr(nil), cargs[:n]...)}
	}
	return it.install(k, c)
}

// idOf returns the canonical id of e, interning it if needed.
func (it *interner) idOf(e *Expr) uint32 { return it.canonical(e).id }
