package core

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
	"sigrec/internal/vyperc"
)

// TestRecoverTruncationSweep: recovery must degrade gracefully (no panic,
// no hang, sane outputs) on every prefix of a real contract -- the
// mid-deployment and corrupted-chain-data cases.
func TestRecoverTruncationSweep(t *testing.T) {
	sig, _ := abi.ParseSignature("f(uint8[],bytes,(uint256[],bool),address)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.Public},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(code); cut += 7 {
		res, err := Recover(code[:cut])
		if err != nil {
			continue // no dispatcher yet: fine
		}
		for _, f := range res.Functions {
			if len(f.Inputs) > 64 {
				t.Fatalf("cut=%d: absurd parameter count %d", cut, len(f.Inputs))
			}
		}
	}
}

// TestRecoverDegenerateContracts covers pathological but valid shapes.
func TestRecoverDegenerateContracts(t *testing.T) {
	// A contract with one zero-parameter function.
	sig, _ := abi.ParseSignature("ping()")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != 1 || len(res.Functions[0].Inputs) != 0 {
		t.Errorf("ping(): %+v", res.Functions)
	}

	// An empty contract (no functions) has no dispatcher to find.
	empty, err := solc.Compile(solc.Contract{}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(empty); err == nil {
		t.Error("functionless contract should report no functions")
	}
}

// TestRecoverRepeatedSelectors: a dispatcher listing the same id twice must
// not duplicate the recovered function.
func TestRecoverRepeatedSelectors(t *testing.T) {
	sig, _ := abi.ParseSignature("f(uint256)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != 1 {
		t.Errorf("duplicate dispatcher entries yielded %d functions", len(res.Functions))
	}
}

// TestRecoverMixedLanguagesPerContract: language detection is per function,
// but a single contract is one compiler's output; recovery on each
// compiler's output must label every function consistently.
func TestRecoverLanguageConsistency(t *testing.T) {
	vySig, _ := abi.ParseSignature("g(bool,address)")
	vyCode, err := vyperc.Compile(vyperc.Contract{Functions: []vyperc.Function{{Sig: vySig}}},
		vyperc.Config{Version: vyperc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(vyCode)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Functions {
		if f.Language != LangVyper {
			t.Errorf("vyper function labeled %s", f.Language)
		}
	}
}
