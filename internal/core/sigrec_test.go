package core

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
	"sigrec/internal/vyperc"
)

// compileSol builds a single-function Solidity contract with clue-rich
// default usage.
func compileSol(t *testing.T, sigStr string, mode solc.Mode, cfg solc.Config) []byte {
	t.Helper()
	sig, err := abi.ParseSignature(sigStr)
	if err != nil {
		t.Fatalf("ParseSignature(%q): %v", sigStr, err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{{Sig: sig, Mode: mode}}}, cfg)
	if err != nil {
		t.Fatalf("Compile(%q): %v", sigStr, err)
	}
	return code
}

// recoverOne runs full recovery and returns the single function.
func recoverOne(t *testing.T, code []byte) RecoveredFunction {
	t.Helper()
	res, err := Recover(code)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(res.Functions) != 1 {
		t.Fatalf("recovered %d functions, want 1", len(res.Functions))
	}
	return res.Functions[0]
}

// TestRoundTripSolidity is the headline invariant: with clue-rich bodies,
// compile(sig) then recover == sig, for every supported shape, both modes,
// multiple dialects.
func TestRoundTripSolidity(t *testing.T) {
	sigs := []string{
		"f(uint256)", "f(uint8)", "f(uint32)", "f(uint160)", "f(uint256,uint256)",
		"f(int8)", "f(int64)", "f(int256)",
		"f(address)", "f(bool)", "f(bytes1)", "f(bytes4)", "f(bytes32)",
		"f(uint256[3])", "f(uint8[2])", "f(uint256[3][2])", "f(uint8[2][3][2])",
		"f(uint256[])", "f(uint8[])", "f(address[])", "f(uint256[3][])",
		"f(bytes)", "f(string)",
		"f(uint256[][])", "f(uint8[][])",
		"f(uint256,address)", "f(uint8[],address)",
		"f(bytes,uint256)", "f(uint256,bytes)",
		"f(bool,string,uint8[])",
		"f(uint256[2],uint256)",
	}
	configs := []solc.Config{
		{Version: solc.DefaultVersion()},
		{Version: solc.LegacyVersion()},
		{Version: solc.DefaultVersion(), Optimize: true},
	}
	for _, sigStr := range sigs {
		want, _ := abi.ParseSignature(sigStr)
		for _, mode := range []solc.Mode{solc.Public, solc.External} {
			for ci, cfg := range configs {
				needsV2 := false
				for _, in := range want.Inputs {
					if in.Kind == abi.KindTuple || in.IsDynamic() && in.Kind == abi.KindSlice && in.Elem.IsDynamic() {
						needsV2 = true
					}
				}
				if needsV2 && !cfg.Version.ABIEncoderV2 {
					continue
				}
				code := compileSol(t, sigStr, mode, cfg)
				rec := recoverOne(t, code)
				if rec.Selector != want.Selector() {
					t.Errorf("%s %s cfg%d: selector %s, want %s",
						sigStr, mode, ci, rec.Selector, want.Selector())
					continue
				}
				got := abi.Signature{Name: "f", Inputs: rec.Inputs}
				if !got.EqualTypes(want) {
					t.Errorf("%s %s cfg%d: recovered %s", sigStr, mode, ci, got.TypeList())
				}
				if rec.Language != LangSolidity {
					t.Errorf("%s %s cfg%d: language %s", sigStr, mode, ci, rec.Language)
				}
			}
		}
	}
}

// TestRoundTripStructs covers dynamic structs and struct-typed parameters.
func TestRoundTripStructs(t *testing.T) {
	tests := []struct {
		sig  string
		want string // expected recovery (static structs flatten: paper case 5)
	}{
		{"f((uint256[],uint256))", "f((uint256[],uint256))"},
		{"f((bytes,bool))", "f((bytes,bool))"},
		{"f((uint256,uint256))", "f(uint256,uint256)"}, // static struct flattens
		{"f((uint256[],address))", "f((uint256[],address))"},
	}
	for _, tc := range tests {
		for _, mode := range []solc.Mode{solc.Public, solc.External} {
			code := compileSol(t, tc.sig, mode, solc.Config{Version: solc.DefaultVersion()})
			rec := recoverOne(t, code)
			want, _ := abi.ParseSignature(tc.want)
			got := abi.Signature{Name: "f", Inputs: rec.Inputs}
			if !got.EqualTypes(want) {
				t.Errorf("%s %s: recovered %s, want %s", tc.sig, mode, got.TypeList(), want.TypeList())
			}
		}
	}
}

// TestRoundTripVyper covers the Vyper type system.
func TestRoundTripVyper(t *testing.T) {
	sigs := []string{
		"f(uint256)", "f(bool)", "f(address)", "f(int128)", "f(bytes32)",
		"f(decimal)", "f(uint256[3])", "f(address[2])", "f(uint256[2][2])",
		"f(bytes[32])", "f(string[32])",
		"f(uint256,bool)", "f(decimal,address)",
	}
	for _, sigStr := range sigs {
		want, _ := abi.ParseSignature(sigStr)
		for _, cfg := range []vyperc.Config{{Version: vyperc.DefaultVersion()}, {Version: vyperc.Versions()[0]}} {
			code, err := vyperc.Compile(vyperc.Contract{Functions: []vyperc.Function{{Sig: want}}}, cfg)
			if err != nil {
				t.Fatalf("vyperc(%q): %v", sigStr, err)
			}
			rec := recoverOne(t, code)
			got := abi.Signature{Name: "f", Inputs: rec.Inputs}
			if !got.EqualTypes(want) {
				t.Errorf("%s (%s): recovered %s", sigStr, cfg.Version.Name, got.TypeList())
			}
			if sigStr != "f(uint256)" && sigStr != "f(bytes32)" && sigStr != "f(uint256[3])" &&
				sigStr != "f(uint256[2][2])" && rec.Language != LangVyper {
				t.Errorf("%s: language %s, want vyper", sigStr, rec.Language)
			}
		}
	}
}

// TestMultiFunctionContract verifies dispatcher extraction and per-function
// inference on a contract with several functions.
func TestMultiFunctionContract(t *testing.T) {
	sigStrs := []string{
		"transfer(address,uint256)",
		"approve(address,uint256)",
		"batch(uint256[],bytes)",
		"ping()",
	}
	var fns []solc.Function
	for _, s := range sigStrs {
		sig, _ := abi.ParseSignature(s)
		fns = append(fns, solc.Function{Sig: sig, Mode: solc.External})
	}
	code, err := solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != len(sigStrs) {
		t.Fatalf("recovered %d functions, want %d", len(res.Functions), len(sigStrs))
	}
	for i, s := range sigStrs {
		want, _ := abi.ParseSignature(s)
		if res.Functions[i].Selector != want.Selector() {
			t.Errorf("function %d: selector %s, want %s", i, res.Functions[i].Selector, want.Selector())
		}
		got := abi.Signature{Name: want.Name, Inputs: res.Functions[i].Inputs}
		if !got.EqualTypes(want) {
			t.Errorf("%s: recovered %s", s, got.TypeList())
		}
	}
	if res.Rules.Total() == 0 {
		t.Error("no rules recorded")
	}
}

// TestKnownAmbiguities pins the paper's case-5 failure modes: they must
// fail in exactly the documented way.
func TestKnownAmbiguities(t *testing.T) {
	// bytes without individual byte access is recovered as string.
	sig, _ := abi.ParseSignature("f(bytes)")
	plan := []solc.Usage{{ItemAccess: true}} // no ByteAccess
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.Public, Plan: plan},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	rec := recoverOne(t, code)
	if len(rec.Inputs) != 1 || rec.Inputs[0].Kind != abi.KindString {
		t.Errorf("clueless bytes recovered as %v, want string", rec.Inputs)
	}

	// Optimized external static array with constant index flattens to a
	// single uint256 (no bound checks to see).
	sig2, _ := abi.ParseSignature("f(uint256[3])")
	plan2 := []solc.Usage{{ItemAccess: true, ConstIndex: true, Math: true}}
	code2, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig2, Mode: solc.External, Plan: plan2},
	}}, solc.Config{Version: solc.DefaultVersion(), Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	rec2 := recoverOne(t, code2)
	if len(rec2.Inputs) != 1 || rec2.Inputs[0].Kind != abi.KindUint {
		t.Errorf("optimized const-index array recovered as %v, want a lone uint", rec2.Inputs)
	}
}

// TestSelectorExtractionEdgeCases exercises failure paths.
func TestSelectorExtractionEdgeCases(t *testing.T) {
	if _, err := Recover(nil); err == nil {
		t.Error("empty bytecode must fail")
	}
	// Code with no dispatcher.
	if _, err := Recover([]byte{0x60, 0x01, 0x50, 0x00}); err == nil {
		t.Error("dispatcherless bytecode must fail")
	}
}

// TestRuleStatsPlumbing verifies per-rule counting.
func TestRuleStatsPlumbing(t *testing.T) {
	code := compileSol(t, "f(uint8,bytes)", solc.Public, solc.Config{Version: solc.DefaultVersion()})
	sig, _ := abi.ParseSignature("f(uint8,bytes)")
	_, stats := RecoverFunction(code, sig.Selector())
	if stats.Count(R1) == 0 {
		t.Error("R1 must fire for the bytes parameter")
	}
	if stats.Count(R4) == 0 {
		t.Error("R4 must fire for the uint8 head slot")
	}
	if stats.Count(R11) == 0 {
		t.Error("R11 must fire to refine uint8")
	}
	if stats.Count(R8) == 0 {
		t.Error("R8 must fire for the public bytes copy")
	}
	if stats.Count(R17) == 0 {
		t.Error("R17 must fire for the byte access")
	}
}

// TestBinaryDispatchRecovery: function ids behind a binary-search
// dispatcher (GT splits) must all be extracted and typed.
func TestBinaryDispatchRecovery(t *testing.T) {
	var fns []solc.Function
	want := make(map[abi.Selector]string)
	types := []string{
		"(uint256)", "(address,uint256)", "(bytes)", "(bool)",
		"(uint8[3])", "(uint256[])", "(string)", "(int64)", "(bytes32,uint256)",
	}
	for i, tl := range types {
		sig, err := abi.ParseSignature(string(rune('a'+i)) + "fn" + tl)
		if err != nil {
			t.Fatal(err)
		}
		want[sig.Selector()] = sig.TypeList()
		fns = append(fns, solc.Function{Sig: sig, Mode: solc.External})
	}
	code, err := solc.Compile(solc.Contract{Functions: fns}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Recover(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Functions) != len(fns) {
		t.Fatalf("recovered %d of %d functions", len(res.Functions), len(fns))
	}
	for _, f := range res.Functions {
		wantTL, ok := want[f.Selector]
		if !ok {
			t.Errorf("unexpected selector %s", f.Selector)
			continue
		}
		if got := f.TypeList(); got != wantTL {
			t.Errorf("%s: recovered %s, want %s", f.Selector, got, wantTL)
		}
	}
}
