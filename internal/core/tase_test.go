package core

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// buildAndTrace assembles a raw function body (no dispatcher) and traces it
// with a dummy selector override disabled.
func buildAndTrace(t *testing.T, build func(a *evm.Assembler)) []Event {
	t.Helper()
	a := evm.NewAssembler()
	build(a)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	eng := &tase{program: evm.Disassemble(code)}
	return eng.run()
}

func findCDL(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Kind == EvCDL {
			out = append(out, ev)
		}
	}
	return out
}

func TestTASERecordsConstantLoads(t *testing.T) {
	events := buildAndTrace(t, func(a *evm.Assembler) {
		a.Push(4).Op(evm.CALLDATALOAD).Op(evm.POP)
		a.Push(36).Op(evm.CALLDATALOAD).Op(evm.POP)
		a.Op(evm.STOP)
	})
	cdls := findCDL(events)
	if len(cdls) != 2 {
		t.Fatalf("%d CDL events", len(cdls))
	}
	if off, _ := cdls[0].Off.ConstUint(); off != 4 {
		t.Errorf("first load at %d", off)
	}
	if off, _ := cdls[1].Off.ConstUint(); off != 36 {
		t.Errorf("second load at %d", off)
	}
}

func TestTASEResolvesMemoryThroughCopy(t *testing.T) {
	// CALLDATACOPY 64 bytes from offset 4 to memory 0x100, then MLOAD
	// 0x120 and mask it: the mask event must reference cd[0x24].
	events := buildAndTrace(t, func(a *evm.Assembler) {
		a.Push(64).Push(4).Push(0x100).Op(evm.CALLDATACOPY)
		a.Push(0x120).Op(evm.MLOAD)
		a.PushBytes([]byte{0xff}).Op(evm.AND)
		a.Op(evm.POP)
		a.Op(evm.STOP)
	})
	var sawMask bool
	for _, ev := range events {
		if ev.Kind != EvOp || ev.Op != evm.AND {
			continue
		}
		sawMask = true
		val := ev.Args[1]
		if val.Kind != KindCData {
			t.Fatalf("masked value is %v, want a call-data load", val)
		}
		d, ok := descOfUncached(val.Args[0])
		if !ok || d.c != 0x24 || len(d.terms) != 0 {
			t.Errorf("resolved offset = %+v, want constant 0x24", d)
		}
	}
	if !sawMask {
		t.Fatal("no AND event recorded")
	}
}

func TestTASEForksOnSymbolicBranch(t *testing.T) {
	// if calldataload(4) != 0 { read 36 } else { read 68 }: both sides
	// must be explored.
	events := buildAndTrace(t, func(a *evm.Assembler) {
		taken := a.NewLabel()
		a.Push(4).Op(evm.CALLDATALOAD)
		a.JumpI(taken)
		a.Push(68).Op(evm.CALLDATALOAD).Op(evm.POP)
		a.Op(evm.STOP)
		a.Bind(taken)
		a.Push(36).Op(evm.CALLDATALOAD).Op(evm.POP)
		a.Op(evm.STOP)
	})
	offsets := map[uint64]bool{}
	for _, ev := range findCDL(events) {
		if off, ok := ev.Off.ConstUint(); ok {
			offsets[off] = true
		}
	}
	for _, want := range []uint64{4, 36, 68} {
		if !offsets[want] {
			t.Errorf("offset %d not explored (%v)", want, offsets)
		}
	}
}

func TestTASEGuardIntervals(t *testing.T) {
	// A loop body load must carry the loop guard; code after the loop must
	// not be controlled by it.
	events := buildAndTrace(t, func(a *evm.Assembler) {
		// num := calldataload(4); for i := 0; i < num; i++ { load 36 }
		a.Push(4).Op(evm.CALLDATALOAD) // num on stack
		a.Push(0)                      // i
		top := a.NewLabel()
		exit := a.NewLabel()
		a.Bind(top)
		a.Dup(2).Dup(2).Op(evm.LT) // i < num
		a.Op(evm.ISZERO)
		a.JumpI(exit)
		a.Push(36).Op(evm.CALLDATALOAD).Op(evm.POP)
		a.Push(1).Op(evm.ADD)
		a.Jump(top)
		a.Bind(exit)
		a.Push(100).Op(evm.CALLDATALOAD).Op(evm.POP) // after the loop
		a.Op(evm.STOP)
	})
	var inLoop, after *Event
	for i := range findCDL(events) {
		ev := findCDL(events)[i]
		if off, ok := ev.Off.ConstUint(); ok {
			switch off {
			case 36:
				e := ev
				inLoop = &e
			case 100:
				e := ev
				after = &e
			}
		}
	}
	if inLoop == nil || after == nil {
		t.Fatal("loads not recorded")
	}
	controlled := func(ev *Event) int {
		n := 0
		seen := map[uint64]bool{}
		for _, g := range ev.Guards {
			if g.Controls(ev.PC) && !seen[g.PC] {
				if _, ok := loopBound(g); ok {
					seen[g.PC] = true
					n++
				}
			}
		}
		return n
	}
	if controlled(inLoop) == 0 {
		t.Error("loop body load carries no loop guard")
	}
	if controlled(after) != 0 {
		t.Error("post-loop load is wrongly controlled by the loop guard")
	}
}

func TestTASEStopsOnComputedJump(t *testing.T) {
	// A jump target derived from inputs must stop the path (the paper's
	// documented restriction), not loop or crash.
	events := buildAndTrace(t, func(a *evm.Assembler) {
		a.Push(4).Op(evm.CALLDATALOAD)
		a.Op(evm.JUMP)
	})
	if len(findCDL(events)) != 1 {
		t.Errorf("%d CDL events", len(findCDL(events)))
	}
}

func TestTASEVisitBudgetTerminates(t *testing.T) {
	// A symbolic-bound loop must terminate exploration via the visit
	// budget, recording at least two iterations (for stride detection).
	events := buildAndTrace(t, func(a *evm.Assembler) {
		numSlot := uint64(0x40000)
		iSlot := uint64(0x40020)
		a.Push(4).Op(evm.CALLDATALOAD)
		a.Push(numSlot).Op(evm.MSTORE)
		a.Push(0).Push(iSlot).Op(evm.MSTORE)
		top := a.NewLabel()
		exit := a.NewLabel()
		a.Bind(top)
		a.Push(numSlot).Op(evm.MLOAD)
		a.Push(iSlot).Op(evm.MLOAD)
		a.Op(evm.LT).Op(evm.ISZERO)
		a.JumpI(exit)
		// load 36 + 32*i
		a.Push(36)
		a.Push(iSlot).Op(evm.MLOAD)
		a.Push(32).Op(evm.MUL)
		a.Op(evm.ADD)
		a.Op(evm.CALLDATALOAD).Op(evm.POP)
		a.Push(iSlot).Op(evm.MLOAD)
		a.Push(1).Op(evm.ADD)
		a.Push(iSlot).Op(evm.MSTORE)
		a.Jump(top)
		a.Bind(exit)
		a.Op(evm.STOP)
	})
	offs := map[uint64]bool{}
	for _, ev := range findCDL(events) {
		if off, ok := ev.Off.ConstUint(); ok {
			offs[off] = true
		}
	}
	if !offs[36] || !offs[68] {
		t.Errorf("iterations not unrolled twice: %v", offs)
	}
}

func TestTraceFunctionSelectorOverride(t *testing.T) {
	// With the selector pinned, the dispatcher folds concretely: only the
	// selected body's loads appear.
	sigA, _ := abi.ParseSignature("alpha(uint256)")
	sigB, _ := abi.ParseSignature("beta(uint256,uint256)")
	a := evm.NewAssembler()
	bodyA := a.NewLabel()
	bodyB := a.NewLabel()
	a.Push(0).Op(evm.CALLDATALOAD).Push(0xe0).Op(evm.SHR)
	selA, selB := sigA.Selector(), sigB.Selector()
	a.Dup(1).PushBytes(selA[:]).Op(evm.EQ).JumpI(bodyA)
	a.Dup(1).PushBytes(selB[:]).Op(evm.EQ).JumpI(bodyB)
	a.Op(evm.STOP)
	a.Bind(bodyA)
	a.Push(4).Op(evm.CALLDATALOAD).Op(evm.POP).Op(evm.STOP)
	a.Bind(bodyB)
	a.Push(4).Op(evm.CALLDATALOAD).Op(evm.POP)
	a.Push(36).Op(evm.CALLDATALOAD).Op(evm.POP).Op(evm.STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	program := evm.Disassemble(code)
	trA := TraceFunction(program, selA)
	trB := TraceFunction(program, selB)
	if n := len(findCDL(trA.Events)); n != 1 {
		t.Errorf("alpha: %d loads, want 1", n)
	}
	if n := len(findCDL(trB.Events)); n != 2 {
		t.Errorf("beta: %d loads, want 2", n)
	}
}
