package core

import (
	"sigrec/internal/eventlog"
	"sigrec/internal/evm"
	"sigrec/internal/obs"
)

// ExtractSelectors recovers the function ids a contract dispatches on by
// symbolically executing the dispatcher: every EQ comparison between a
// 4-byte constant and an expression derived from CALLDATALOAD(0) via
// DIV/SHR/AND is a dispatch test (§2.2 of the paper).
func ExtractSelectors(program *Program) [][4]byte {
	sels, _ := extractSelectors(program, defaultLimits())
	return sels
}

// extractSelectors runs the dispatcher exploration under the given limits
// and additionally reports whether the exploration was truncated (the
// selector list may then be incomplete).
func extractSelectors(program *Program, lim limits) ([][4]byte, bool) {
	return extractSelectorsSpan(program, lim, nil, nil)
}

// extractSelectorsSpan is extractSelectors with the exploration's counters
// attached to sp when tracing is on and folded into the recovery's wide
// event when ev is non-nil.
func extractSelectorsSpan(program *Program, lim limits, sp *obs.Span, ev *eventlog.Event) ([][4]byte, bool) {
	t := newTASE(program, nil, lim) // selWord nil: the selector stays symbolic
	events := t.run()
	annotateTASE(sp, t, "")
	finishTASE(t, ev)
	var out [][4]byte
	seen := make(map[[4]byte]bool)
	for _, ev := range events {
		if ev.Kind != EvOp || ev.Op != evm.EQ {
			continue
		}
		c, sel := ev.Args[0], ev.Args[1]
		if c.Conc == nil {
			c, sel = sel, c
		}
		if c.Conc == nil || !isSelectorExpr(sel) {
			continue
		}
		v, ok := c.ConstUint()
		if !ok || v > 0xffffffff {
			continue
		}
		var id [4]byte
		id[0] = byte(v >> 24)
		id[1] = byte(v >> 16)
		id[2] = byte(v >> 8)
		id[3] = byte(v)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out, t.trunc
}

// isSelectorExpr recognizes expressions that extract the high 4 bytes of
// CALLDATALOAD(0): any composition of DIV, SHR, and AND over that load and
// constants.
func isSelectorExpr(e *Expr) bool {
	hasLoad0 := false
	ok := walkSelector(e, &hasLoad0)
	return ok && hasLoad0
}

func walkSelector(e *Expr, hasLoad0 *bool) bool {
	switch e.Kind {
	case KindConst:
		return true
	case KindCData:
		off, ok := e.Args[0].ConstUint()
		if ok && off == 0 {
			*hasLoad0 = true
			return true
		}
		return false
	case KindApp:
		switch e.Op {
		case evm.DIV, evm.SHR, evm.AND:
			for _, a := range e.Args {
				if !walkSelector(a, hasLoad0) {
					return false
				}
			}
			return true
		default:
			return false
		}
	default:
		return false
	}
}
