package core

import (
	"cmp"
	"slices"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// maxNestingDepth bounds recursive classification of nested values.
const maxNestingDepth = 8

// classifyDynamic classifies the parameter whose offset field sits at the
// constant head offset off (rule R1 and everything hanging off it in the
// decision tree).
func (inf *inference) classifyDynamic(off uint64) abi.Type {
	body := bodyDesc{c: 4, terms: map[string]uint64{headAtomKey(off): 1}}
	return inf.classifyBody(body, 0)
}

// coversTerms reports whether d includes all of body's terms with equal
// coefficients.
func coversTerms(d, body bodyDesc) bool {
	for k, v := range body.terms {
		if d.terms[k] != v {
			return false
		}
	}
	return true
}

// bodyView gathers everything the trace says about one body region.
type bodyView struct {
	body bodyDesc
	// numEv is the read of the first body word (the num field, or the
	// first struct member / element offset).
	numEv  *Event
	numKey string
	// direct maps delta -> first CDL reading body+delta with no extra atoms.
	direct map[uint64]Event
	// directByPC groups direct read deltas by instruction.
	directByPC map[uint64][]uint64
	// children are dereferenced inner values: slotDelta is where their
	// offset field lives relative to the body start.
	children []childRef
}

type childRef struct {
	key       string // the inner offset atom's canonical key
	slotDelta uint64
	pc        uint64 // instruction that loaded the inner offset
	origin    Event
}

// viewBody scans the CDL events for reads belonging to the body region.
func (inf *inference) viewBody(body bodyDesc) *bodyView {
	v := &bodyView{
		body:       body,
		direct:     make(map[uint64]Event),
		directByPC: make(map[uint64][]uint64),
	}
	// Index: value key -> loading event (to locate inner offset origins).
	// The CDL set is fixed for the whole trace, so build it lazily once
	// and reuse it across the per-parameter viewBody calls.
	if inf.valIndex == nil {
		inf.valIndex = make(map[string]Event, len(inf.cdls))
		for _, ev := range inf.cdls {
			k := ev.Val.String()
			if _, dup := inf.valIndex[k]; !dup {
				inf.valIndex[k] = ev
			}
		}
	}
	valIndex := inf.valIndex
	seenChild := make(map[string]bool)
	for _, ev := range inf.cdls {
		d, ok := inf.descOf(ev.Off)
		if !ok || !coversTerms(d, body) || d.c < body.c {
			continue
		}
		extra := extraTerms(d, body)
		switch {
		case len(d.terms) == len(body.terms):
			delta := d.c - body.c
			if _, dup := v.direct[delta]; !dup {
				v.direct[delta] = ev
			}
			v.directByPC[ev.PC] = append(v.directByPC[ev.PC], delta)
			if delta == 0 && v.numEv == nil {
				e := ev
				v.numEv = &e
				v.numKey = ev.Val.String()
			}
		case len(extra) == 1 && len(d.terms) == len(body.terms)+1:
			key := extra[0]
			if seenChild[key] {
				continue
			}
			origin, found := valIndex[key]
			if !found {
				continue
			}
			od, ok2 := inf.descOf(origin.Off)
			if !ok2 || !sameTerms(od, body) || od.c < body.c {
				continue
			}
			seenChild[key] = true
			v.children = append(v.children, childRef{
				key:       key,
				slotDelta: od.c - body.c,
				pc:        origin.PC,
				origin:    origin,
			})
		}
	}
	slices.SortFunc(v.children, func(a, b childRef) int {
		return cmp.Compare(a.slotDelta, b.slotDelta)
	})
	return v
}

// numUsedAsBound reports whether the num value itself is compared as a loop
// bound or range limit. The atom must appear as a top-level linear term of
// the compared value: appearing merely inside an address computation (an
// offset used to locate some other bound) does not count.
func (inf *inference) numUsedAsBound(numKey string) bool {
	if numKey == "" {
		return false
	}
	isBound := func(b *Expr) bool {
		if b.String() == numKey {
			return true
		}
		lin := Linearize(b)
		for _, t := range lin.Terms {
			if t.Atom.String() == numKey {
				return true
			}
		}
		return false
	}
	for _, ev := range inf.events {
		for _, g := range ev.Guards {
			if bound, ok := loopBound(g); ok && isBound(bound) {
				return true
			}
		}
	}
	for _, ev := range inf.ops {
		switch ev.Op {
		case evm.LT, evm.GT:
			if isBound(ev.Args[0]) || isBound(ev.Args[1]) {
				return true
			}
		}
	}
	return false
}

// exprHasAtom reports whether any node of e renders to the given key.
func exprHasAtom(e *Expr, key string) bool {
	if e.String() == key {
		return true
	}
	for _, a := range e.Args {
		if exprHasAtom(a, key) {
			return true
		}
	}
	return false
}

// classifyBody determines the type of the dynamic value whose body starts
// at the described call-data position.
func (inf *inference) classifyBody(body bodyDesc, depth int) abi.Type {
	if depth > maxNestingDepth {
		return abi.Uint(256)
	}
	v := inf.viewBody(body)
	if v.numEv != nil && depth == 0 {
		inf.hit(R1)
	}

	// Public-mode copies take priority: they are unambiguous.
	if t, ok := inf.classifyCopied(v); ok {
		return t
	}
	// Dereferenced inner values: nested arrays or structs with dynamic
	// members.
	if len(v.children) > 0 {
		return inf.classifyNested(v, depth)
	}
	usedAsBound := inf.numUsedAsBound(v.numKey)
	if usedAsBound {
		return inf.classifySequence(v, depth)
	}
	// No length semantics: a struct of statically-encoded members (R21).
	return inf.classifyStruct(v, nil, depth)
}

// classifyCopied handles the CALLDATACOPY-based public patterns
// (R5/R7/R8/R10 and Vyper's R23/R26).
func (inf *inference) classifyCopied(v *bodyView) (abi.Type, bool) {
	contentProfile := func() profile {
		return inf.profileFor(func(a *Expr) bool {
			d, ok := inf.descOf(a.Args[0])
			return ok && sameTerms(d, v.body) && d.c >= v.body.c+32
		})
	}
	for _, ev := range inf.cdcs {
		d, ok := inf.descOf(ev.Src)
		if !ok || !sameTerms(d, v.body) || d.c < v.body.c {
			continue
		}
		// 1-dim dynamic array: copy length is num*32.
		if v.numKey != "" {
			lenLin := Linearize(ev.Len)
			if coeff, has := lenLin.TermFor(v.numKey); has && coeff.Eq(evm.WordFromUint64(32)) {
				inf.hit(R5)
				inf.hit(R7)
				elem := inf.refineBasic(contentProfile())
				return abi.SliceOf(elem), true
			}
		}
		// bytes/string: copy length is num rounded up to a 32 multiple.
		if hasRoundUpDiv(ev.Len) {
			inf.hit(R5)
			inf.hit(R8)
			p := contentProfile()
			if p.byteAccess {
				inf.hit(R17)
				return abi.Bytes(), true
			}
			return abi.String_(), true
		}
		// Constant-length copies.
		if ln, isConst := ev.Len.ConstUint(); isConst && ln >= 32 {
			if inf.lang == LangVyper && d.c == v.body.c {
				// Vyper bytes[maxLen]/string[maxLen]: the copy starts at the
				// num field and covers 32+maxLen bytes.
				inf.hit(R23)
				maxLen := int(ln - 32)
				p := contentProfile()
				if p.byteAccess {
					inf.hit(R26)
					return abi.BoundedBytes(maxLen), true
				}
				return abi.BoundedString(maxLen), true
			}
			if d.c >= v.body.c+32 {
				// Row copies of a multi-dimensional dynamic array.
				inf.hit(R5)
				inf.hit(R10)
				constDims, _ := guardDims(ev)
				dims := append(constDims, ln/32)
				elem := inf.refineBasic(contentProfile())
				return abi.SliceOf(buildStaticArray(dims, elem)), true
			}
		}
	}
	return abi.Type{}, false
}

// hasRoundUpDiv detects the ((num+31)/32)*32 length computation.
func hasRoundUpDiv(e *Expr) bool {
	if e.Kind == KindApp && e.Op == evm.DIV {
		if c, ok := e.Args[1].ConstUint(); ok && c == 32 && e.Args[0].ContainsCData() {
			return true
		}
	}
	for _, a := range e.Args {
		if hasRoundUpDiv(a) {
			return true
		}
	}
	return false
}

// classifySequence handles external-mode length-prefixed values: dynamic
// arrays (R2) and bytes/string (R17 and its negation).
func (inf *inference) classifySequence(v *bodyView, depth int) abi.Type {
	// Collect item reads: direct reads past the num field, grouped by pc.
	type pcGroup struct {
		pc     uint64
		deltas []uint64
	}
	var groups []pcGroup
	for pc, deltas := range v.directByPC {
		var past []uint64
		for _, d := range deltas {
			if d >= 32 {
				past = append(past, d)
			}
		}
		if len(past) > 0 {
			slices.Sort(past)
			groups = append(groups, pcGroup{pc: pc, deltas: past})
		}
	}
	if len(groups) == 0 {
		// Length checked but content untouched: no element clues. The
		// paper's tie-break for an opaque length-prefixed value is string.
		return abi.String_()
	}
	slices.SortFunc(groups, func(a, b pcGroup) int { return cmp.Compare(a.deltas[0], b.deltas[0]) })
	g := groups[0]
	stride := uint64(0)
	if len(g.deltas) >= 2 {
		stride = g.deltas[1] - g.deltas[0]
	}
	contentProfile := inf.profileFor(func(a *Expr) bool {
		d, ok := inf.descOf(a.Args[0])
		return ok && sameTerms(d, v.body) && d.c >= v.body.c+32
	})
	if stride >= 1 && stride < 32 {
		// Byte-granular access: bytes or string.
		if contentProfile.byteAccess {
			inf.hit(R17)
			return abi.Bytes()
		}
		return abi.String_()
	}
	if stride == 0 {
		// Single guarded access: bytes (with BYTE) or string.
		if contentProfile.byteAccess {
			inf.hit(R17)
			return abi.Bytes()
		}
		return abi.String_()
	}
	// 32-byte stride: a dynamic array; inner static dimensions come from the
	// constant bound checks on the item read.
	itemEv := v.direct[g.deltas[0]]
	constDims, _ := guardDims(itemEv)
	inf.hit(R2)
	elem := inf.refineBasic(contentProfile)
	return abi.SliceOf(buildStaticArray(constDims, elem))
}

// classifyNested handles bodies with dereferenced inner values: nested
// arrays (R22/R19) and dynamic structs (R21).
func (inf *inference) classifyNested(v *bodyView, depth int) abi.Type {
	usedAsBound := inf.numUsedAsBound(v.numKey)

	// Group children by loading instruction: a loop (one pc, many slots)
	// means array elements; distinct pcs mean struct members.
	byPC := make(map[uint64][]childRef)
	var pcOrder []uint64
	for _, c := range v.children {
		if _, ok := byPC[c.pc]; !ok {
			pcOrder = append(pcOrder, c.pc)
		}
		byPC[c.pc] = append(byPC[c.pc], c)
	}

	if usedAsBound && len(pcOrder) >= 1 {
		// Slice of dynamic elements: element offsets live at body+32+32i.
		first := byPC[pcOrder[0]][0]
		childBody := bodyDesc{
			c:     v.body.c + 32,
			terms: withTerm(v.body.terms, first.key),
		}
		inf.hit(R22)
		elem := inf.classifyBody(childBody, depth+1)
		return abi.SliceOf(elem)
	}

	// No num: either a static-length array of dynamic elements (loop) or a
	// struct with dynamic members (straight-line member code).
	if len(pcOrder) == 1 {
		group := byPC[pcOrder[0]]
		constDims, _ := guardDims(group[0].origin)
		if len(constDims) >= 1 {
			childBody := bodyDesc{
				c:     v.body.c,
				terms: withTerm(v.body.terms, group[0].key),
			}
			inf.hit(R22)
			elem := inf.classifyBody(childBody, depth+1)
			return abi.ArrayOf(elem, int(constDims[len(constDims)-1]))
		}
	}
	return inf.classifyStruct(v, byPC, depth)
}

// classifyStruct assembles a tuple from static member reads and dynamic
// children (R21, with R19 for nested-array members).
func (inf *inference) classifyStruct(v *bodyView, byPC map[uint64][]childRef, depth int) abi.Type {
	type fieldSlot struct {
		delta uint64
		typ   abi.Type
	}
	var fields []fieldSlot
	childAt := make(map[uint64]childRef)
	for _, c := range v.children {
		childAt[c.slotDelta] = c
	}
	// Dynamic members.
	for delta, c := range childAt {
		childBody := bodyDesc{c: v.body.c, terms: withTerm(v.body.terms, c.key)}
		t := inf.classifyBody(childBody, depth+1)
		if isNestedArray(t) {
			inf.hit(R19)
		}
		fields = append(fields, fieldSlot{delta: delta, typ: t})
	}
	// Static members: direct reads at deltas with no child claim.
	for delta, ev := range v.direct {
		if _, isChild := childAt[delta]; isChild {
			continue
		}
		key := ev.Val.String()
		t := inf.refineBasic(inf.profileFor(func(a *Expr) bool {
			return a.String() == key
		}))
		fields = append(fields, fieldSlot{delta: delta, typ: t})
	}
	if len(fields) == 0 {
		return abi.String_()
	}
	slices.SortFunc(fields, func(a, b fieldSlot) int { return cmp.Compare(a.delta, b.delta) })
	out := make([]abi.Type, len(fields))
	for i, f := range fields {
		out[i] = f.typ
	}
	inf.hit(R21)
	return abi.TupleOf(out...)
}

// isNestedArray reports a multi-dimensional array with a dynamic inner
// dimension (the paper's nested-array definition).
func isNestedArray(t abi.Type) bool {
	switch t.Kind {
	case abi.KindSlice, abi.KindArray:
		e := *t.Elem
		return e.Kind == abi.KindSlice || (e.Kind == abi.KindArray && e.IsDynamic())
	default:
		return false
	}
}

func withTerm(terms map[string]uint64, key string) map[string]uint64 {
	out := make(map[string]uint64, len(terms)+1)
	for k, v := range terms {
		out[k] = v
	}
	out[key] = 1
	return out
}
