package core

// This file encodes the paper's Fig. 13 -- the decision tree that organizes
// rules R1-R31 -- as a queryable artifact. The inference engine in infer.go
// implements the same structure operationally; the tree here is the
// documentation-of-record that tests cross-check against the implemented
// rule set, and that tools can print.

// DecisionPath is one root-to-leaf path of the decision tree: applying the
// listed rules in order yields the result type class.
type DecisionPath struct {
	// Result is the recovered type class at the leaf.
	Result string
	// Mode is "public", "external", or "any" (the paper colors nodes by
	// function mode).
	Mode string
	// Language is "solidity" or "vyper".
	Language string
	// Rules are applied root-to-leaf.
	Rules []RuleID
}

// DecisionTree returns every path of the paper's Fig. 13, extended with the
// generalized-mask rules of §7. The engine's behaviour is tested against
// this table: every rule must appear on some path, and every path's leaf
// class must be constructible by the engine.
func DecisionTree() []DecisionPath {
	sol := func(result, mode string, rules ...RuleID) DecisionPath {
		return DecisionPath{Result: result, Mode: mode, Language: "solidity", Rules: rules}
	}
	vy := func(result string, rules ...RuleID) DecisionPath {
		return DecisionPath{Result: result, Mode: "any", Language: "vyper", Rules: rules}
	}
	return []DecisionPath{
		// CALLDATALOAD-rooted paths (R1 detects the offset/num pattern).
		sol("T[]...[] dynamic array", "external", R1, R2),
		sol("T[N]...[N] static array", "external", R3),
		sol("uint256 (default 32-byte value)", "any", R4),

		// CALLDATACOPY-rooted paths (public copies).
		sol("T[] one-dimensional dynamic array", "public", R1, R5, R7),
		sol("bytes", "public", R1, R5, R8, R17),
		sol("string", "public", R1, R5, R8),
		sol("T[N] one-dimensional static array", "public", R6),
		sol("T[N1]..[Nn] multi-dimensional static array", "public", R9),
		sol("T[N1]..[] multi-dimensional dynamic array", "public", R1, R5, R10),

		// Fine refinement of a 32-byte value (after R4).
		sol("uintM", "any", R4, R11),
		sol("bytesM", "any", R4, R12),
		sol("intM", "any", R4, R13),
		sol("bool", "any", R4, R14),
		sol("int256", "any", R4, R15),
		sol("address", "any", R4, R16),
		sol("bytes32", "any", R4, R18),

		// Structs and nested arrays.
		sol("struct", "any", R1, R21),
		sol("struct with nested-array member", "any", R1, R21, R19),
		sol("nested array", "any", R1, R22),
		sol("bytes (external, byte access)", "external", R1, R17),

		// Vyper paths (after R20 recognizes the language).
		vy("fixed-size byte array bytes[N]", R20, R1, R23, R26),
		vy("fixed-size string string[N]", R20, R1, R23),
		vy("fixed-size list", R20, R24),
		vy("uint256 (default)", R20, R25),
		vy("address", R20, R25, R27),
		vy("int128", R20, R25, R28),
		vy("decimal", R20, R25, R29),
		vy("bool", R20, R25, R30),
		vy("bytes32", R20, R25, R31),
	}
}

// RulesCovered returns the set of rules reachable through the tree.
func RulesCovered() map[RuleID]bool {
	out := make(map[RuleID]bool, NumRules)
	for _, p := range DecisionTree() {
		for _, r := range p.Rules {
			out[r] = true
		}
	}
	return out
}
