// Package core implements SigRec itself: function-id extraction from the
// dispatcher, type-aware symbolic execution (TASE), and the inference rules
// R1-R31 organized as the paper's decision tree.
package core

import (
	"strconv"
	"strings"

	"sigrec/internal/evm"
)

// Expr is a symbolic 256-bit value. Every node may carry a concrete value
// (Conc) when all of its inputs were concrete; this lets TASE execute
// concretely where possible (loop counters, constant offsets) while keeping
// full provenance for the rules. Nodes are immutable once built: TASE
// hash-conses them through an interner (see intern.go), so structurally
// identical values share one node and carry a per-trace integer id.
type Expr struct {
	// Kind discriminates the node.
	Kind ExprKind
	// Conc is the concrete value when known.
	Conc *evm.Word
	// Op is the EVM opcode for KindApp nodes.
	Op evm.Op
	// Args are the operand expressions for KindApp nodes; for KindCData
	// Args[0] is the call-data offset the value was loaded from.
	Args []*Expr
	// Env labels environment values (CALLER, SLOAD results, ...).
	Env string
	// Seq disambiguates distinct environment values.
	Seq int

	// id is the interner-assigned identity (0 = not interned). Within one
	// trace, equal ids imply structural equality, so event dedup compares
	// integers instead of rendered strings.
	id uint32
	// str caches the canonical rendering; expressions are immutable, so
	// the first String() call fills it and later calls are free.
	str string
}

// ExprKind is the node discriminator.
type ExprKind int

// Expression node kinds.
const (
	// KindConst is a literal word.
	KindConst ExprKind = iota + 1
	// KindCData is the 32-byte value CALLDATALOAD(Args[0]).
	KindCData
	// KindCSize is CALLDATASIZE.
	KindCSize
	// KindEnv is an unconstrained environment value.
	KindEnv
	// KindApp is Op(Args...).
	KindApp
)

// NewConst returns a constant expression.
func NewConst(w evm.Word) *Expr {
	cp := w
	return &Expr{Kind: KindConst, Conc: &cp}
}

// NewConstUint returns a small constant expression.
func NewConstUint(v uint64) *Expr { return NewConst(evm.WordFromUint64(v)) }

// NewCData returns the value read from the call data at off.
func NewCData(off *Expr) *Expr {
	return &Expr{Kind: KindCData, Args: []*Expr{off}}
}

// NewEnv returns a fresh environment value.
func NewEnv(label string, seq int) *Expr {
	return &Expr{Kind: KindEnv, Env: label, Seq: seq}
}

// NewApp builds Op(args...), computing the concrete value when every
// argument has one.
func NewApp(op evm.Op, args ...*Expr) *Expr {
	e := &Expr{Kind: KindApp, Op: op, Args: args}
	if w, ok := foldArgs(op, args); ok {
		e.Conc = &w
	}
	return e
}

// foldArgs evaluates op concretely when every argument carries a concrete
// value (pure EVM opcodes pop at most three operands).
func foldArgs(op evm.Op, args []*Expr) (evm.Word, bool) {
	var words [3]evm.Word
	if len(args) > len(words) {
		return evm.Word{}, false
	}
	for i, a := range args {
		if a.Conc == nil {
			return evm.Word{}, false
		}
		words[i] = *a.Conc
	}
	return foldOp(op, words[:len(args)])
}

// foldOp evaluates a pure opcode on concrete operands.
func foldOp(op evm.Op, a []evm.Word) (evm.Word, bool) {
	switch op {
	case evm.ADD:
		return a[0].Add(a[1]), true
	case evm.MUL:
		return a[0].Mul(a[1]), true
	case evm.SUB:
		return a[0].Sub(a[1]), true
	case evm.DIV:
		return a[0].Div(a[1]), true
	case evm.SDIV:
		return a[0].SDiv(a[1]), true
	case evm.MOD:
		return a[0].Mod(a[1]), true
	case evm.SMOD:
		return a[0].SMod(a[1]), true
	case evm.ADDMOD:
		return a[0].AddMod(a[1], a[2]), true
	case evm.MULMOD:
		return a[0].MulMod(a[1], a[2]), true
	case evm.EXP:
		return a[0].Exp(a[1]), true
	case evm.SIGNEXTEND:
		return a[1].SignExtend(a[0]), true
	case evm.LT:
		return a[0].Lt(a[1]), true
	case evm.GT:
		return a[0].Gt(a[1]), true
	case evm.SLT:
		return a[0].Slt(a[1]), true
	case evm.SGT:
		return a[0].Sgt(a[1]), true
	case evm.EQ:
		return a[0].EqWord(a[1]), true
	case evm.ISZERO:
		return a[0].IsZeroWord(), true
	case evm.AND:
		return a[0].And(a[1]), true
	case evm.OR:
		return a[0].Or(a[1]), true
	case evm.XOR:
		return a[0].Xor(a[1]), true
	case evm.NOT:
		return a[0].Not(), true
	case evm.BYTE:
		return a[1].Byte(a[0]), true
	case evm.SHL:
		return a[1].Shl(a[0]), true
	case evm.SHR:
		return a[1].Shr(a[0]), true
	case evm.SAR:
		return a[1].Sar(a[0]), true
	default:
		return evm.Word{}, false
	}
}

// IsConst reports whether the expression has a known concrete value.
func (e *Expr) IsConst() bool { return e.Conc != nil }

// ConstUint returns the concrete value as uint64 when it is known and fits.
func (e *Expr) ConstUint() (uint64, bool) {
	if e.Conc == nil {
		return 0, false
	}
	return e.Conc.Uint64()
}

// String renders a canonical form used as the structural key throughout
// inference. The rendering is cached on the node: expressions are immutable
// and confined to one recovery, so repeated calls cost a field read.
func (e *Expr) String() string {
	if e.str == "" {
		var b strings.Builder
		e.render(&b, 0)
		e.str = b.String()
	}
	return e.str
}

// maxRenderDepth bounds expression rendering. It must exceed the deepest
// address expression the generated code produces (about 3 nodes per array
// dimension), or distinct events would collide in the dedup index.
const maxRenderDepth = 96

func (e *Expr) render(b *strings.Builder, depth int) {
	if depth > maxRenderDepth {
		b.WriteString("...")
		return
	}
	switch e.Kind {
	case KindConst:
		b.WriteString(e.Conc.Hex())
	case KindCData:
		b.WriteString("cd[")
		e.Args[0].render(b, depth+1)
		b.WriteString("]")
	case KindCSize:
		b.WriteString("cdsize")
	case KindEnv:
		b.WriteString(e.Env)
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(e.Seq))
	case KindApp:
		b.WriteString(e.Op.String())
		b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(",")
			}
			a.render(b, depth+1)
		}
		b.WriteString(")")
	}
}

// ContainsCData reports whether the value depends on the call data.
func (e *Expr) ContainsCData() bool {
	switch e.Kind {
	case KindCData:
		return true
	case KindApp:
		for _, a := range e.Args {
			if a.ContainsCData() {
				return true
			}
		}
	}
	return false
}

// CDataAtoms collects the distinct CData leaves (outermost only: a CData
// whose offset itself contains CData is reported once, not recursed into).
func (e *Expr) CDataAtoms() []*Expr {
	var out []*Expr
	seen := make(map[string]bool)
	var walk func(x *Expr)
	walk = func(x *Expr) {
		switch x.Kind {
		case KindCData:
			key := x.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, x)
			}
		case KindApp:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// Linear is the linearization of an expression: Constant + sum of
// coefficient*atom, where atoms are non-additive subexpressions (CData
// leaves, environment values, opaque applications).
type Linear struct {
	Const evm.Word
	Terms []LinearTerm
}

// LinearTerm is one coefficient*atom component.
type LinearTerm struct {
	Atom  *Expr
	Coeff evm.Word
}

// Linearize decomposes an expression over ADD/SUB/MUL-by-constant.
func Linearize(e *Expr) Linear {
	var acc linAcc
	acc.terms = acc.buf[:0]
	acc.add(e, evm.OneWord)
	out := Linear{Const: acc.c}
	// Drop cancelled terms; copy out so the result never aliases the
	// accumulator's stack buffer.
	n := 0
	for i := range acc.terms {
		if !acc.terms[i].Coeff.IsZero() {
			n++
		}
	}
	if n > 0 {
		out.Terms = make([]LinearTerm, 0, n)
		for _, t := range acc.terms {
			if !t.Coeff.IsZero() {
				out.Terms = append(out.Terms, t)
			}
		}
	}
	return out
}

// linearConst returns just the constant component of the linearization —
// exactly Linearize(e).Const, without materializing any terms. Hot paths
// that only attribute an address to a base offset (mload) use it to avoid
// the term slice entirely.
func linearConst(e *Expr) evm.Word {
	var c evm.Word
	addLinearConst(&c, e, evm.OneWord)
	return c
}

func addLinearConst(c *evm.Word, e *Expr, coeff evm.Word) {
	if e.Conc != nil {
		*c = c.Add(e.Conc.Mul(coeff))
		return
	}
	if e.Kind == KindApp {
		switch e.Op {
		case evm.ADD:
			addLinearConst(c, e.Args[0], coeff)
			addLinearConst(c, e.Args[1], coeff)
		case evm.SUB:
			addLinearConst(c, e.Args[0], coeff)
			addLinearConst(c, e.Args[1], coeff.Neg())
		case evm.MUL:
			if e.Args[0].Conc != nil {
				addLinearConst(c, e.Args[1], coeff.Mul(*e.Args[0].Conc))
			} else if e.Args[1].Conc != nil {
				addLinearConst(c, e.Args[0], coeff.Mul(*e.Args[1].Conc))
			}
		}
	}
}

// linAcc accumulates terms in first-seen order. Linearizations are small
// (a handful of atoms), so merging is a linear scan over a slice — no map,
// no per-term heap nodes. Interned atoms merge by pointer; the rendered
// string (cached on the node) is the fallback so the noIntern differential
// mode merges structurally identical duplicates exactly as before.
type linAcc struct {
	c     evm.Word
	terms []LinearTerm
	buf   [8]LinearTerm
}

func (a *linAcc) add(e *Expr, coeff evm.Word) {
	if e.Conc != nil {
		a.c = a.c.Add(e.Conc.Mul(coeff))
		return
	}
	if e.Kind == KindApp {
		switch e.Op {
		case evm.ADD:
			a.add(e.Args[0], coeff)
			a.add(e.Args[1], coeff)
			return
		case evm.SUB:
			a.add(e.Args[0], coeff)
			a.add(e.Args[1], coeff.Neg())
			return
		case evm.MUL:
			if e.Args[0].Conc != nil {
				a.add(e.Args[1], coeff.Mul(*e.Args[0].Conc))
				return
			}
			if e.Args[1].Conc != nil {
				a.add(e.Args[0], coeff.Mul(*e.Args[1].Conc))
				return
			}
		}
	}
	for i := range a.terms {
		t := &a.terms[i]
		if t.Atom == e || t.Atom.String() == e.String() {
			t.Coeff = t.Coeff.Add(coeff)
			return
		}
	}
	a.terms = append(a.terms, LinearTerm{Atom: e, Coeff: coeff})
}

// TermFor returns the coefficient of the atom with the given canonical
// string, if present.
func (l Linear) TermFor(key string) (evm.Word, bool) {
	for _, t := range l.Terms {
		if t.Atom.String() == key {
			return t.Coeff, true
		}
	}
	return evm.Word{}, false
}
