package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestDecodeHexAcceptsPrefix(t *testing.T) {
	for _, in := range []string{"0x60806040", "0X60806040", "60806040"} {
		b, err := DecodeHex(in)
		if err != nil {
			t.Fatalf("DecodeHex(%q): %v", in, err)
		}
		if !bytes.Equal(b, []byte{0x60, 0x80, 0x60, 0x40}) {
			t.Fatalf("DecodeHex(%q) = %x", in, b)
		}
	}
}

func TestDecodeHexAcceptsWhitespace(t *testing.T) {
	for _, in := range []string{"  60806040\n", "\t0x60806040 ", "0x 60806040", " 0x60806040\r\n"} {
		b, err := DecodeHex(in)
		if err != nil {
			t.Fatalf("DecodeHex(%q): %v", in, err)
		}
		if !bytes.Equal(b, []byte{0x60, 0x80, 0x60, 0x40}) {
			t.Fatalf("DecodeHex(%q) = %x", in, b)
		}
	}
}

func TestDecodeHexOddLengthTyped(t *testing.T) {
	_, err := DecodeHex("0x608")
	var he *HexInputError
	if !errors.As(err, &he) {
		t.Fatalf("error %v (%T), want *HexInputError", err, err)
	}
	if !he.OddLength || he.Offset != -1 {
		t.Fatalf("got %+v, want OddLength with Offset -1", he)
	}
}

func TestDecodeHexInvalidByteTyped(t *testing.T) {
	_, err := DecodeHex("0x60zz")
	var he *HexInputError
	if !errors.As(err, &he) {
		t.Fatalf("error %v (%T), want *HexInputError", err, err)
	}
	if he.OddLength || he.Byte != 'z' || he.Offset != 2 {
		t.Fatalf("got %+v, want Byte 'z' at offset 2", he)
	}
}
