package core

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
	"sigrec/internal/solc"
)

// TestPaperRunningExample reproduces the paper's §4.2 walk-through:
//
//	function test(uint8[] values, address to) public {
//	    to.send(values[0]);
//	}
//
// and checks each observable artifact of the four TASE steps:
// step 1 (coarse): the first parameter is a 1-dim dynamic array in a public
// function (R1, R5, R7) and the second a basic value (R4);
// step 2 (count & order): two parameters, array first;
// step 3 (symbols): the array's items resolve through the CALLDATACOPY
// region back to call-data expressions;
// step 4 (fine): the item masks as uint8 (R11) and the unmasked-no-math
// value refines to address (R16) -- recovering "(uint8[],address)".
func TestPaperRunningExample(t *testing.T) {
	sig, err := abi.ParseSignature("test(uint8[],address)")
	if err != nil {
		t.Fatal(err)
	}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.Public},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}

	// The instruction-level artifacts the paper's Listing 9 names.
	var hasCDL, hasCDC, has20ByteMask, has1ByteMask bool
	for _, ins := range evm.Disassemble(code).Instructions {
		switch ins.Op {
		case evm.CALLDATALOAD:
			hasCDL = true
		case evm.CALLDATACOPY:
			hasCDC = true
		}
		if ins.Op.IsPush() {
			switch len(ins.ArgBytes) {
			case 20:
				has20ByteMask = true // PUSH20 0xff...ff for the address
			case 1:
				if ins.ArgBytes[0] == 0xff {
					has1ByteMask = true // PUSH1 0xff for the uint8 item
				}
			}
		}
	}
	if !hasCDL || !hasCDC || !has20ByteMask || !has1ByteMask {
		t.Fatalf("Listing-9 artifacts missing: CDL=%v CDC=%v mask20=%v mask1=%v",
			hasCDL, hasCDC, has20ByteMask, has1ByteMask)
	}

	// Full recovery.
	rec, stats := RecoverFunction(code, sig.Selector())
	got := abi.Signature{Name: "test", Inputs: rec.Inputs}
	if got.Canonical() != "test(uint8[],address)" {
		t.Fatalf("recovered %s", got.Canonical())
	}

	// Step 1+4 rule applications, per the paper's narrative.
	for _, want := range []RuleID{R1, R5, R7, R4, R11, R16} {
		if stats.Count(want) == 0 {
			t.Errorf("%s did not fire", want)
		}
	}

	// Step 2: order -- the dynamic array's offset slot precedes the address.
	if rec.Inputs[0].Kind != abi.KindSlice || rec.Inputs[1].Kind != abi.KindAddress {
		t.Errorf("parameter order wrong: %s", got.TypeList())
	}

	// Step 3: the trace must contain an AND event whose masked value is a
	// call-data expression resolved through the copy region (the paper's
	// "mark stack top with arg1").
	tr := TraceFunction(evm.Disassemble(code), sig.Selector())
	sawResolvedItem := false
	for _, ev := range tr.Events {
		if ev.Kind != EvOp || ev.Op != evm.AND {
			continue
		}
		for _, a := range ev.Args {
			if a.Kind == KindCData && !a.Args[0].IsConst() {
				// An item load whose offset embeds the array's offset
				// field: the memory taint survived the copy.
				if a.Args[0].ContainsCData() {
					sawResolvedItem = true
				}
			}
		}
	}
	if !sawResolvedItem {
		t.Error("array item taint did not survive the memory round trip")
	}

	// The paper's punchline: the id matches the known selector.
	if rec.Selector.Hex() == "" || rec.Selector != sig.Selector() {
		t.Errorf("selector %s", rec.Selector)
	}
}
