package core

import (
	"testing"

	"sigrec/internal/evm"
)

func TestInternerCanonicalizesConstruction(t *testing.T) {
	it := newInterner()
	defer it.release()

	a := it.constUint(42)
	b := it.constUint(42)
	if a != b {
		t.Fatalf("equal constants interned to distinct nodes")
	}
	if a == it.constUint(43) {
		t.Fatalf("distinct constants interned to the same node")
	}

	off := it.constUint(4)
	cd1 := it.cdata(off)
	cd2 := it.cdata(it.constUint(4))
	if cd1 != cd2 {
		t.Fatalf("equal cd[4] nodes interned to distinct nodes")
	}

	app1 := it.app(evm.AND, cd1, it.constUint(0xff))
	app2 := it.app(evm.AND, cd2, it.constUint(0xff))
	if app1 != app2 {
		t.Fatalf("equal applications interned to distinct nodes")
	}
	if app1 == it.app(evm.AND, it.constUint(0xff), cd1) {
		t.Fatalf("argument order ignored by interning")
	}
	if app1.id == 0 {
		t.Fatalf("interned node has no id")
	}
	if it.hits == 0 || it.misses == 0 {
		t.Fatalf("hit/miss counters not maintained: hits=%d misses=%d", it.hits, it.misses)
	}
}

func TestInternerAppDoesNotAliasScratch(t *testing.T) {
	it := newInterner()
	defer it.release()

	scratch := [3]*Expr{it.constUint(1), it.constUint(2)}
	e := it.appN(evm.ADD, scratch[:2])
	scratch[0], scratch[1] = nil, nil // simulate scratch reuse
	if e.Args[0] == nil || e.Args[1] == nil {
		t.Fatalf("interned node aliases caller scratch space")
	}
}

func TestInternerCanonicalForeignTree(t *testing.T) {
	it := newInterner()
	defer it.release()

	// Build the same structure twice without the interner (the noIntern
	// mode) and check canonicalization converges to one node with one id.
	mk := func() *Expr {
		return NewApp(evm.DIV, NewCData(NewConstUint(0)), NewConstUint(1<<32))
	}
	x, y := mk(), mk()
	if x == y {
		t.Fatalf("test setup: fresh trees must be distinct pointers")
	}
	cx, cy := it.canonical(x), it.canonical(y)
	if cx != cy {
		t.Fatalf("canonical() did not converge structurally equal trees")
	}
	if it.idOf(x) != it.idOf(y) || it.idOf(x) == 0 {
		t.Fatalf("idOf mismatch: %d vs %d", it.idOf(x), it.idOf(y))
	}
	// A structurally different tree must get a different id.
	z := NewApp(evm.DIV, NewCData(NewConstUint(4)), NewConstUint(1<<32))
	if it.idOf(z) == it.idOf(x) {
		t.Fatalf("distinct structures share an id")
	}
	// Interned-built and foreign-built structures converge too.
	built := it.app(evm.DIV, it.cdata(it.constUint(0)), it.constUint(1<<32))
	if built != cx {
		t.Fatalf("interner-built and canonicalized trees diverge")
	}
}

func TestInternerReleaseIsolation(t *testing.T) {
	it := newInterner()
	first := it.constUint(7)
	if it.tableLen() == 0 {
		t.Fatalf("expected a populated table")
	}
	it.release()
	it2 := newInterner()
	defer it2.release()
	if it2.nextID != 0 || it2.hits != 0 || it2.misses != 0 {
		t.Fatalf("pooled interner counters not reset: nextID=%d hits=%d misses=%d",
			it2.nextID, it2.hits, it2.misses)
	}
	// Entries from the previous trace are generation-dead: the same key
	// must come back as a fresh node with a fresh id, not the stale one.
	again := it2.constUint(7)
	if again == first {
		t.Fatalf("stale canonical node leaked across release()")
	}
	if it2.hits != 0 || it2.misses != 1 {
		t.Fatalf("expected a clean miss after release: hits=%d misses=%d", it2.hits, it2.misses)
	}
}
