package core

import (
	"context"
	"testing"
	"time"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

// deepNestedCode compiles an E4-style deep nested-array contract:
// dimension 20, inner widths of width, outer dimension 2 (Fig. 18's sweep
// shape). width 1 recovers fully in well under a millisecond; width 2 is
// pathological (hundreds of milliseconds unbounded).
func deepNestedCode(t testing.TB, width int) ([]byte, abi.Signature) {
	t.Helper()
	ty := abi.Uint(256)
	for d := 0; d < 19; d++ {
		ty = abi.ArrayOf(ty, width)
	}
	ty = abi.ArrayOf(ty, 2)
	sig := abi.Signature{Name: "sweep", Inputs: []abi.Type{ty}}
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	return code, sig
}

func TestStepBudgetTruncatesDeepNestedArray(t *testing.T) {
	code, sig := deepNestedCode(t, 1)

	// A tiny step budget must yield a best-effort result flagged Truncated.
	res, err := RecoverContext(context.Background(), code, Options{StepBudget: 200})
	if err != nil {
		t.Fatalf("tiny budget: %v", err)
	}
	if !res.Truncated {
		t.Error("tiny budget: result not flagged Truncated")
	}

	// The default budget must recover the exact dimension-20 type.
	res, err = RecoverContext(context.Background(), code, Options{})
	if err != nil {
		t.Fatalf("default budget: %v", err)
	}
	if res.Truncated {
		t.Error("default budget: result unexpectedly Truncated")
	}
	if len(res.Functions) != 1 {
		t.Fatalf("default budget: %d functions", len(res.Functions))
	}
	got := abi.Signature{Name: "f", Inputs: res.Functions[0].Inputs}
	if !got.EqualTypes(sig) {
		t.Errorf("default budget: recovered %s", got.TypeList())
	}
}

func TestDeadlineBoundsPathologicalContract(t *testing.T) {
	// Width-2 nesting at dimension 20 runs for hundreds of milliseconds
	// unbounded; under a short deadline the recovery must return promptly
	// (deadline checks fire every few hundred symbolic steps) with a
	// partial, Truncated result instead of stalling a batch.
	code, _ := deepNestedCode(t, 2)
	deadline := 2 * time.Millisecond
	start := time.Now()
	res, err := RecoverContext(context.Background(), code, Options{Deadline: deadline})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline recovery: %v", err)
	}
	if !res.Truncated {
		t.Error("deadline hit but result not flagged Truncated")
	}
	// 10x headroom per the operational target, plus slack for the race
	// detector and loaded CI machines.
	if limit := 20 * deadline; elapsed > limit {
		t.Errorf("recovery took %v, want <= %v", elapsed, limit)
	}
}

func TestContextCancellationStopsRecovery(t *testing.T) {
	code, _ := deepNestedCode(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := RecoverContext(ctx, code, Options{})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled recovery took %v", elapsed)
	}
	// An already-cancelled context stops even the dispatcher walk, so the
	// selector list may be empty (ErrNoFunctions); either way the result
	// must be flagged Truncated.
	if err != nil && err != ErrNoFunctions {
		t.Fatalf("cancelled recovery: %v", err)
	}
	if !res.Truncated {
		t.Error("cancelled recovery not flagged Truncated")
	}
}

func TestMaxPathsBound(t *testing.T) {
	code, _ := deepNestedCode(t, 2)
	res, err := RecoverContext(context.Background(), code, Options{MaxPaths: 2})
	// Two paths may not even clear the dispatcher's range checks, in which
	// case the selector list comes back empty; either way the bound must
	// surface as truncation, never as unbounded exploration.
	if err != nil && err != ErrNoFunctions {
		t.Fatalf("max-paths recovery: %v", err)
	}
	if !res.Truncated {
		t.Error("2-path bound on a forking contract not flagged Truncated")
	}
}

func TestTelemetryCountersAdvance(t *testing.T) {
	code, _ := deepNestedCode(t, 1)
	before := Metrics().Snapshot()
	if _, err := RecoverContext(context.Background(), code, Options{}); err != nil {
		t.Fatal(err)
	}
	after := Metrics().Snapshot()
	for _, name := range []string{
		"sigrec_recoveries_total",
		"sigrec_functions_recovered_total",
		"sigrec_tase_paths_explored_total",
		"sigrec_tase_steps_total",
		"sigrec_tase_events_collected_total",
	} {
		if after.Counters[name] <= before.Counters[name] {
			t.Errorf("%s did not advance (%d -> %d)", name, before.Counters[name], after.Counters[name])
		}
	}
	h := after.Histograms["sigrec_recover_duration_microseconds"]
	if h.Count <= before.Histograms["sigrec_recover_duration_microseconds"].Count {
		t.Error("latency histogram did not record the recovery")
	}
}
