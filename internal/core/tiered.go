package core

// ResultStore is the disk tier under the in-memory LRU: a persistent
// keccak256-keyed map of recovery outcomes (implemented by
// internal/store). Load reports the persisted result and recovery error
// (nil or ErrNoFunctions) for a key; ok=false means not present — or not
// readable, which is the same thing for a cache. Save persists an outcome;
// failures are surfaced as counters, never as recovery errors.
// Implementations must be safe for concurrent use.
type ResultStore interface {
	Load(key [32]byte) (Result, error, bool)
	Save(key [32]byte, res Result, rerr error) error
}

// TieredCache layers a ResultStore under the in-memory LRU: lookups go
// memory → disk → (peer fill) → compute, and every cacheable outcome is
// written through to both tiers. A disk hit is promoted into memory and
// counts as a cache hit — after a restart the memory tier is empty but the
// hit rate stays warm immediately, with no recomputation and no peer
// traffic for anything the store already holds.
type TieredCache struct {
	*Cache
}

// NewTieredCache returns a tiered cache: an LRU bounded to maxEntries
// backed by disk. disk nil degrades to a plain memory cache.
func NewTieredCache(maxEntries int, disk ResultStore) *TieredCache {
	c := NewCache(maxEntries)
	c.disk = disk
	return &TieredCache{Cache: c}
}

// diskLoad consults the disk tier, metering the outcome. Safe on a cache
// with no disk tier.
func (c *Cache) diskLoad(key [32]byte) (Result, error, bool) {
	if c.disk == nil {
		return Result{}, nil, false
	}
	res, rerr, ok := c.disk.Load(key)
	if ok {
		mStoreHits.Inc()
	} else {
		mStoreMisses.Inc()
	}
	return res, rerr, ok
}

// diskSave writes through to the disk tier, metering failures. Safe on a
// cache with no disk tier.
func (c *Cache) diskSave(key [32]byte, res Result, rerr error) {
	if c.disk == nil {
		return
	}
	if err := c.disk.Save(key, res, rerr); err != nil {
		mStoreWriteErrors.Inc()
	}
}
