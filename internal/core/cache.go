package core

import (
	"container/list"
	"sync"

	"sigrec/internal/keccak"
)

// Cache is a size-bounded, concurrency-safe LRU of whole-contract recovery
// results keyed by keccak256 of the runtime bytecode. Deployed bytecode is
// massively duplicated on-chain (the same token/proxy templates deployed
// millions of times), so a fleet scan that dedupes by code hash skips the
// bulk of the symbolic-execution work; hit/miss/eviction counters land in
// the pipeline telemetry.
//
// Only complete results are stored: truncated recoveries depend on the
// budget that produced them and are recomputed. Cached Results are shared
// between callers and must be treated as immutable.
type Cache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[[32]byte]*list.Element
}

type cacheEntry struct {
	key [32]byte
	res Result
	err error
}

// NewCache returns a cache bounded to maxEntries results (minimum 1).
func NewCache(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{max: maxEntries, ll: list.New(), m: make(map[[32]byte]*list.Element)}
}

// Len returns the current number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// lookup returns the cached outcome for the bytecode, if present.
func (c *Cache) lookup(code []byte) (Result, error, bool) {
	key := keccak.Sum256(code)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		mCacheMisses.Inc()
		return Result{}, nil, false
	}
	c.ll.MoveToFront(el)
	mCacheHits.Inc()
	ent := el.Value.(*cacheEntry)
	return ent.res, ent.err, true
}

// store inserts an outcome, evicting the least recently used entry when
// over capacity.
func (c *Cache) store(code []byte, res Result, err error) {
	key := keccak.Sum256(code)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value = &cacheEntry{key: key, res: res, err: err}
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, err: err})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		mCacheEvicted.Inc()
	}
	mCacheEntries.Set(int64(c.ll.Len()))
}
