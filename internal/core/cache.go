package core

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"sigrec/internal/keccak"
)

// Cache is a size-bounded, concurrency-safe LRU of whole-contract recovery
// results keyed by keccak256 of the runtime bytecode. Deployed bytecode is
// massively duplicated on-chain (the same token/proxy templates deployed
// millions of times), so a fleet scan that dedupes by code hash skips the
// bulk of the symbolic-execution work; hit/miss/eviction counters land in
// the pipeline telemetry.
//
// Only complete results are stored: truncated recoveries depend on the
// budget that produced them and are recomputed. Cached Results are shared
// between callers and must be treated as immutable.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	m       map[[32]byte]*list.Element
	flights map[[32]byte]*flight
	// disk, when non-nil, is the persistent tier under the LRU (see
	// TieredCache): consulted on a memory miss before fill/compute,
	// written through on every cacheable store.
	disk ResultStore
}

type cacheEntry struct {
	key [32]byte
	res Result
	err error
}

// flight is one in-progress recovery shared by coalesced GetOrCompute
// callers: the winner computes, everyone else waits on done.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// NewCache returns a cache bounded to maxEntries results (minimum 1).
func NewCache(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		max:     maxEntries,
		ll:      list.New(),
		m:       make(map[[32]byte]*list.Element),
		flights: make(map[[32]byte]*flight),
	}
}

// Len returns the current number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// lookup returns the cached outcome for the bytecode, if present in
// either tier. A disk hit is promoted into the memory LRU and metered as
// a cache hit: a warm store keeps the hit rate high straight through a
// process restart.
func (c *Cache) lookup(code []byte) (Result, error, bool) {
	key := keccak.Sum256(code)
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		mCacheHits.Inc()
		ent := el.Value.(*cacheEntry)
		c.mu.Unlock()
		return ent.res, ent.err, true
	}
	c.mu.Unlock()
	if res, rerr, ok := c.diskLoad(key); ok {
		mCacheHits.Inc()
		c.storeKey(key, res, rerr)
		return res, rerr, true
	}
	mCacheMisses.Inc()
	return Result{}, nil, false
}

// Peek returns the cached outcome for the bytecode without counting a hit
// or a miss. It exists for the cluster peer-fill endpoint, which serves
// another shard's lookup out of the local cache: metering those as local
// hits would distort the shard's own hit rate. A peeked entry is still
// promoted in the LRU — serving it to a peer is a use.
func (c *Cache) Peek(code []byte) (Result, error, bool) {
	key := keccak.Sum256(code)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return Result{}, nil, false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.res, ent.err, true
}

// FillFunc is a cache-fill hook consulted on a miss before compute runs:
// in cluster mode it fetches the result from the shard that owns the
// bytecode's keccak slice, so a hot contract computed once is served
// everywhere without recomputation. ok=false means the fill had nothing
// (not the owner, owner cold, peer unreachable) and compute proceeds.
// ctx is the requesting recovery's context: it bounds the peer call and
// carries the trace/event scope, so the fill hop propagates the request's
// W3C trace context and records a span under the recovery.
type FillFunc func(ctx context.Context, code []byte) (Result, error, bool)

// GetOrCompute returns the cached outcome for the bytecode or runs compute
// once, coalescing concurrent callers for the same bytecode singleflight-
// style: while one caller computes, the others wait and share its outcome
// (a thundering herd on one contract costs one recovery). Complete
// outcomes are stored; truncated ones are returned to every waiter but not
// cached, matching RecoverContext's store policy.
func (c *Cache) GetOrCompute(code []byte, compute func() (Result, error)) (Result, error) {
	return c.GetOrComputeFill(context.Background(), code, nil, compute)
}

// GetOrComputeFill is GetOrCompute with a fill stage: on a miss the
// coalescing winner first consults fill (nil skips straight to compute).
// A filled outcome is stored under the same cacheability policy as a
// computed one and shared with every coalesced waiter; fill returning
// ok=false, or a truncated filled result, falls through to compute. ctx
// is handed to the fill hook only (compute owns its own context via its
// closure), so a coalesced herd's fill runs under the winner's context.
func (c *Cache) GetOrComputeFill(ctx context.Context, code []byte, fill FillFunc, compute func() (Result, error)) (Result, error) {
	key := keccak.Sum256(code)
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.mu.Unlock()
		mCacheHits.Inc()
		return ent.res, ent.err
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		mCacheCoalesced.Inc()
		<-f.done
		return f.res, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	completed := false
	defer func() {
		// On a compute panic, unblock waiters with a zero result before the
		// panic propagates, so no goroutine is stuck on a dead flight.
		if !completed {
			c.retireFlight(key, f)
		}
	}()
	// The disk tier comes before the peer fill: after a restart the local
	// store answers warm traffic without a network hop or a recompute.
	if res, rerr, ok := c.diskLoad(key); ok {
		mCacheHits.Inc()
		f.res, f.err = res, rerr
		completed = true
		c.storeKey(key, res, rerr)
		c.retireFlight(key, f)
		return res, rerr
	}
	mCacheMisses.Inc()
	if fill != nil {
		if res, err, ok := fill(ctx, code); ok && cacheable(res, err) {
			mCacheFillHits.Inc()
			f.res, f.err = res, err
			completed = true
			c.storeKey(key, res, err)
			c.diskSave(key, res, err)
			c.retireFlight(key, f)
			return res, err
		}
		mCacheFillMisses.Inc()
	}
	f.res, f.err = compute()
	completed = true
	if cacheable(f.res, f.err) {
		c.storeKey(key, f.res, f.err)
		c.diskSave(key, f.res, f.err)
	}
	c.retireFlight(key, f)
	return f.res, f.err
}

// retireFlight publishes the flight's outcome and removes it from the
// inflight map so later callers recompute (or hit the cache).
func (c *Cache) retireFlight(key [32]byte, f *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
}

// cacheable reports whether an outcome may be stored: only complete
// results (truncation depends on the budget that produced it) and only
// the definitive no-dispatcher error.
func cacheable(res Result, err error) bool {
	return !res.Truncated && (err == nil || errors.Is(err, ErrNoFunctions))
}

// store inserts an outcome into both tiers, evicting the least recently
// used memory entry when over capacity.
func (c *Cache) store(code []byte, res Result, err error) {
	key := keccak.Sum256(code)
	c.storeKey(key, res, err)
	c.diskSave(key, res, err)
}

func (c *Cache) storeKey(key [32]byte, res Result, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value = &cacheEntry{key: key, res: res, err: err}
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, err: err})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		mCacheEvicted.Inc()
	}
	mCacheEntries.Set(int64(c.ll.Len()))
}
