package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGetOrComputeCoalesces proves the singleflight property: N concurrent
// callers for the same bytecode perform exactly one compute and all share
// its outcome.
func TestGetOrComputeCoalesces(t *testing.T) {
	cache := NewCache(8)
	code := []byte{0x60, 0x80, 0x60, 0x40}
	want := Result{Functions: []RecoveredFunction{{}}}

	var computes atomic.Int32
	release := make(chan struct{})
	start := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := cache.GetOrCompute(code, func() (Result, error) {
				computes.Add(1)
				<-release
				return want, nil
			})
			if err != nil {
				errs[i] = err
				return
			}
			if len(res.Functions) != len(want.Functions) {
				errs[i] = errors.New("wrong result shared")
			}
		}(i)
	}
	close(start)
	// Wait for the winner to enter compute; everyone else either coalesces
	// onto its flight or, if scheduled after it finishes, hits the cache.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1", got)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}

// TestGetOrComputeTruncatedNotCached: truncated outcomes are returned but
// never stored, so the next caller recomputes (matching RecoverContext's
// store policy).
func TestGetOrComputeTruncatedNotCached(t *testing.T) {
	cache := NewCache(8)
	code := []byte{0x01, 0x02}
	var computes int
	for i := 0; i < 2; i++ {
		res, err := cache.GetOrCompute(code, func() (Result, error) {
			computes++
			return Result{Truncated: true}, nil
		})
		if err != nil || !res.Truncated {
			t.Fatalf("call %d: res=%+v err=%v", i, res, err)
		}
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (truncated results must not be cached)", computes)
	}
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries, want 0", cache.Len())
	}
}

// TestGetOrComputeErrNoFunctionsCached: the definitive no-dispatcher error
// is cacheable, like RecoverContext's policy.
func TestGetOrComputeErrNoFunctionsCached(t *testing.T) {
	cache := NewCache(8)
	code := []byte{0xfe}
	var computes int
	for i := 0; i < 2; i++ {
		_, err := cache.GetOrCompute(code, func() (Result, error) {
			computes++
			return Result{}, ErrNoFunctions
		})
		if !errors.Is(err, ErrNoFunctions) {
			t.Fatalf("call %d: err=%v", i, err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (ErrNoFunctions is cacheable)", computes)
	}
}

// TestGetOrComputeTransientErrorNotCached: other errors are shared with
// coalesced waiters but never stored.
func TestGetOrComputeTransientErrorNotCached(t *testing.T) {
	cache := NewCache(8)
	code := []byte{0x03, 0x04}
	boom := errors.New("transient")
	var computes int
	for i := 0; i < 2; i++ {
		_, err := cache.GetOrCompute(code, func() (Result, error) {
			computes++
			return Result{}, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err=%v", i, err)
		}
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (transient errors must not be cached)", computes)
	}
}
