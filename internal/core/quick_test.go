package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

// randomRecoverableType draws from the space where clue-rich recovery is
// provably exact: everything except the documented ambiguities (static
// structs, which flatten by design).
func randomRecoverableType(r *rand.Rand, depth int) abi.Type {
	basic := func() abi.Type {
		switch r.Intn(8) {
		case 0:
			return abi.Uint(8 * (1 + r.Intn(32)))
		case 1:
			return abi.Int(8 * (1 + r.Intn(32)))
		case 2:
			return abi.Address()
		case 3:
			return abi.Bool()
		case 4:
			return abi.FixedBytes(1 + r.Intn(32))
		default:
			return abi.Uint(256)
		}
	}
	if depth <= 0 {
		return basic()
	}
	switch r.Intn(8) {
	case 0:
		return abi.Bytes()
	case 1:
		return abi.String_()
	case 2:
		return abi.SliceOf(basic())
	case 3:
		return abi.ArrayOf(basic(), 1+r.Intn(4))
	case 4:
		// Multi-dimensional static or dynamic.
		inner := abi.ArrayOf(basic(), 1+r.Intn(3))
		if r.Intn(2) == 0 {
			return abi.SliceOf(inner)
		}
		return abi.ArrayOf(inner, 1+r.Intn(3))
	case 5:
		// Nested array.
		return abi.SliceOf(abi.SliceOf(basic()))
	case 6:
		// Dynamic struct (at least one dynamic member keeps it
		// recoverable as a tuple).
		return abi.TupleOf(abi.SliceOf(basic()), basic())
	default:
		return basic()
	}
}

// TestQuickCompileRecoverRoundTrip is the headline invariant as a property:
// for arbitrary supported signatures with clue-rich bodies, recovery is
// exact in both modes.
func TestQuickCompileRecoverRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(3)
		sig := abi.Signature{Name: "q"}
		for i := 0; i < n; i++ {
			sig.Inputs = append(sig.Inputs, randomRecoverableType(rr, 1))
		}
		mode := solc.Public
		if rr.Intn(2) == 0 {
			mode = solc.External
		}
		code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
			{Sig: sig, Mode: mode},
		}}, solc.Config{Version: solc.DefaultVersion(), Optimize: rr.Intn(2) == 0})
		if err != nil {
			t.Logf("seed %d: compile: %v (%s)", seed, err, sig.Canonical())
			return false
		}
		rec, _ := RecoverFunction(code, sig.Selector())
		got := abi.Signature{Name: "q", Inputs: rec.Inputs}
		if !got.EqualTypes(sig) {
			t.Logf("seed %d: %s %s recovered as %s", seed, sig.Canonical(), mode, got.TypeList())
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestRecoverAllNoGoroutineLeak: the batch API's worker pool must fully
// drain.
func TestRecoverAllNoGoroutineLeak(t *testing.T) {
	sig, _ := abi.ParseSignature("f(uint256)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		t.Fatal(err)
	}
	codes := make([][]byte, 32)
	for i := range codes {
		codes[i] = code
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		RecoverAll(codes, 8)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d -> %d", before, after)
	}
}
