package core

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"sigrec/internal/corpus"
	"sigrec/internal/eventlog"
	"sigrec/internal/obs"
)

// parallelDiffCorpus builds the differential corpus: the mixed
// single-function corpus plus a handful of synthesized 10-function
// contracts so the parallel path actually fans out (the fan-out is
// per selector, so multi-selector dispatchers are the interesting case).
func parallelDiffCorpus(t *testing.T) [][]byte {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{
		Seed:           321,
		Solidity:       30,
		Vyper:          8,
		AmbiguityRate:  0.15,
		ConversionRate: 0.05,
		AsmReadRate:    0.05,
		StorageRefRate: 0.05,
		MaxParams:      4,
	})
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	var codes [][]byte
	for _, e := range c.Entries {
		codes = append(codes, e.Code)
	}
	synth, err := corpus.GenerateSynthesized(7)
	if err != nil {
		t.Fatalf("synthesized corpus: %v", err)
	}
	// Entries repeat each contract's code once per function; keep the
	// first 6 distinct 10-function contracts.
	seen := make(map[string]bool)
	for _, e := range synth {
		k := string(e.Code)
		if !seen[k] {
			seen[k] = true
			codes = append(codes, e.Code)
			if len(seen) == 6 {
				break
			}
		}
	}
	return codes
}

// runDiffRecovery runs one traced, event-logged recovery and returns
// everything externally observable: the rendered result + error, the
// rule-fire counter deltas, the normalized wide events, and the span-tree
// structure.
func runDiffRecovery(t *testing.T, code []byte, workers int, dir string) (render, rules, events, spans string) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("events-%d.ndjson", workers))
	w, err := eventlog.New(eventlog.Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.New(obs.Config{})
	ctx, rec := tracer.StartRecovery(context.Background(), fmt.Sprintf("diff-%d", workers))
	before := ruleFireTotals()
	res, rerr := RecoverContext(ctx, code, Options{SelectorWorkers: workers, EventLog: w})
	rec.Finish(res.Truncated, rerr)
	render = renderResult(res) + fmt.Sprintf("err=%v\n", rerr)
	rules = diffRuleFires(before, ruleFireTotals())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	evs, skipped, err := eventlog.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d undecodable event lines", skipped)
	}
	var b strings.Builder
	for _, ev := range evs {
		// Zero the nondeterministic fields (sequence and wall-clock
		// timings); every counter field must match exactly.
		ev.Seq, ev.TS, ev.DurUS, ev.QueueUS = 0, 0, 0, 0
		ev.DisasmUS, ev.DispatchUS, ev.ExploreUS, ev.InferUS = 0, 0, 0, 0
		ev.RequestID = ""
		fmt.Fprintf(&b, "%+v\n", ev)
	}
	events = b.String()
	spans = renderSpanTree(&rec.Root)
	return render, rules, events, spans
}

func ruleFireTotals() map[string]uint64 {
	out := make(map[string]uint64, NumRules)
	for r := 1; r <= NumRules; r++ {
		out[RuleID(r).String()] = mRuleFired[r].Load()
	}
	return out
}

func diffRuleFires(before, after map[string]uint64) string {
	var b strings.Builder
	for r := 1; r <= NumRules; r++ {
		name := RuleID(r).String()
		if d := after[name] - before[name]; d > 0 {
			fmt.Fprintf(&b, "%s=%d ", name, d)
		}
	}
	return b.String()
}

// renderSpanTree serializes span names, order, and attributes — everything
// structural — while ignoring the timestamps, which legitimately differ
// between runs.
func renderSpanTree(s *obs.Span, depth ...int) string {
	d := 0
	if len(depth) > 0 {
		d = depth[0]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s%s", d*2, "", s.Name)
	for _, a := range s.Attrs {
		if a.Str != "" {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Num)
		}
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		b.WriteString(renderSpanTree(c, d+1))
	}
	return b.String()
}

// TestParallelDifferential proves per-selector parallelism is purely an
// optimization: with SelectorWorkers 1 vs 4, recovery must produce
// identical Results, identical rule-fire counter deltas, identical wide
// events (up to timing), and identical span-tree structure over the whole
// corpus. Run under -race this also audits the fan-out for data races.
func TestParallelDifferential(t *testing.T) {
	codes := parallelDiffCorpus(t)
	dir := t.TempDir()
	multi := 0
	for i, code := range codes {
		cdir := filepath.Join(dir, fmt.Sprintf("c%d", i))
		seqRender, seqRules, seqEvents, seqSpans := runDiffRecovery(t, code, 1, t.TempDir())
		parRender, parRules, parEvents, parSpans := runDiffRecovery(t, code, 4, cdir)
		if seqRender != parRender {
			t.Fatalf("contract %d: result diverges\nsequential:\n%s\nparallel:\n%s", i, seqRender, parRender)
		}
		if seqRules != parRules {
			t.Fatalf("contract %d: rule-fire deltas diverge\nsequential: %s\nparallel: %s", i, seqRules, parRules)
		}
		if seqEvents != parEvents {
			t.Fatalf("contract %d: wide events diverge\nsequential:\n%s\nparallel:\n%s", i, seqEvents, parEvents)
		}
		if seqSpans != parSpans {
			t.Fatalf("contract %d: span trees diverge\nsequential:\n%s\nparallel:\n%s", i, seqSpans, parSpans)
		}
		if strings.Count(seqSpans, "explore") >= 4 {
			multi++
		}
	}
	// Guard against the corpus silently degenerating to single-selector
	// contracts, which would leave the fan-out untested.
	if multi < 3 {
		t.Fatalf("only %d contracts had >= 4 selectors; parallel coverage too thin", multi)
	}
}

// TestSelectorWorkersResolution pins the worker-count policy: 0 is auto
// (bounded by GOMAXPROCS and the selector count), negatives degrade to
// sequential, and explicit counts are clamped to the selector count.
func TestSelectorWorkersResolution(t *testing.T) {
	cases := []struct {
		opt, selectors, want int
	}{
		{1, 10, 1},
		{-3, 10, 1},
		{4, 10, 4},
		{4, 2, 2},
		{8, 1, 1},
	}
	for _, c := range cases {
		if got := (Options{SelectorWorkers: c.opt}).selectorWorkers(c.selectors); got != c.want {
			t.Errorf("selectorWorkers(opt=%d, n=%d) = %d, want %d", c.opt, c.selectors, got, c.want)
		}
	}
	// Auto mode never exceeds the selector count.
	if got := (Options{}).selectorWorkers(1); got != 1 {
		t.Errorf("auto selectorWorkers(1) = %d, want 1", got)
	}
	if got := (Options{}).selectorWorkers(1 << 20); got < 1 {
		t.Errorf("auto selectorWorkers(big) = %d, want >= 1", got)
	}
}
