package core

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// HexInputError reports malformed hex bytecode input: either an odd number
// of hex digits or a character outside [0-9a-fA-F]. It is the typed error
// the serving layer maps to HTTP 400 and the CLI prints verbatim, so
// callers can distinguish bad input from recovery failures with errors.As.
type HexInputError struct {
	// OddLength reports an odd number of hex digits.
	OddLength bool
	// Byte is the first non-hex character (meaningful when !OddLength).
	Byte byte
	// Offset is the position of Byte within the digits (after the optional
	// 0x prefix and surrounding whitespace are stripped); -1 for odd
	// length.
	Offset int
}

// Error implements error.
func (e *HexInputError) Error() string {
	if e.OddLength {
		return "core: odd-length hex bytecode"
	}
	return fmt.Sprintf("core: invalid hex byte %q at offset %d", e.Byte, e.Offset)
}

// DecodeHex decodes contract bytecode from a hex string, tolerating an
// optional 0x/0X prefix and surrounding whitespace. Malformed input yields
// a *HexInputError.
func DecodeHex(s string) ([]byte, error) {
	t := strings.TrimSpace(s)
	if len(t) >= 2 && (t[:2] == "0x" || t[:2] == "0X") {
		t = strings.TrimSpace(t[2:])
	}
	b, err := hex.DecodeString(t)
	if err == nil {
		return b, nil
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return nil, &HexInputError{Byte: c, Offset: i}
		}
	}
	return nil, &HexInputError{OddLength: true, Offset: -1}
}
