package core

import (
	"context"
	"encoding/hex"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sigrec/internal/abi"
	"sigrec/internal/eventlog"
	"sigrec/internal/evm"
	"sigrec/internal/obs"
)

// ErrNoFunctions reports bytecode with no recoverable dispatcher.
var ErrNoFunctions = errors.New("core: no public/external functions found")

// Options bounds and instruments one contract recovery. The zero value
// selects the built-in exploration budgets, no deadline, and no cache.
type Options struct {
	// StepBudget caps the symbolic steps of each TASE exploration (the
	// dispatcher walk and each per-function trace). <= 0 selects the
	// built-in default. When the budget runs out the exploration stops
	// forking at JUMPI fan-out points and the result is flagged Truncated.
	StepBudget int
	// MaxPaths caps the number of explored paths per TASE exploration.
	// <= 0 selects the built-in default.
	MaxPaths int
	// Deadline is the per-contract wall-clock budget; all explorations for
	// the contract share it. <= 0 means no deadline. On expiry the
	// recovery returns promptly with whatever was collected, flagged
	// Truncated, rather than erroring.
	Deadline time.Duration
	// Cache, when non-nil, memoizes whole-contract recoveries keyed by
	// keccak256(code). Cached Results are shared; callers must not mutate
	// them.
	Cache *Cache
	// DisableInterning turns off hash-consed expression construction in
	// TASE. Recovery results are identical either way (the differential
	// test enforces it); this exists as an operational escape hatch and
	// for A/B benchmarking.
	DisableInterning bool
	// EventLog, when non-nil, receives one wide event per recovery —
	// including cache hits, which are marked Cache:"hit" — so the durable
	// log's totals line up 1:1 with the recovery counters on /metrics.
	// Emission is asynchronous and never blocks the recovery.
	EventLog *eventlog.Writer
	// SelectorWorkers bounds intra-contract parallelism: each selector is
	// an independent TASE exploration over the immutable Program, so up to
	// SelectorWorkers of them run concurrently. 0 selects
	// min(GOMAXPROCS, number of selectors); 1 (or any negative value)
	// keeps the exploration strictly sequential. Results, rule-fire
	// counter deltas, span trees, and wide-event records are identical to
	// the sequential run regardless of the setting — explorations are
	// merged in selector order (the differential test enforces it).
	SelectorWorkers int
}

// selectorWorkers resolves the worker count for a contract with n
// selectors: never more workers than selectors, never more than
// GOMAXPROCS in auto mode, never less than 1.
func (o Options) selectorWorkers(n int) int {
	w := o.SelectorWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// limits translates caller options into exploration bounds. The deadline
// and cancellation channel are computed once per contract so every
// exploration shares them.
func (o Options) limits(ctx context.Context) limits {
	lim := limits{maxSteps: o.StepBudget, maxPaths: o.MaxPaths, noIntern: o.DisableInterning}
	if o.Deadline > 0 {
		lim.deadline = time.Now().Add(o.Deadline)
	}
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok && (lim.deadline.IsZero() || dl.Before(lim.deadline)) {
			lim.deadline = dl
		}
		lim.done = ctx.Done()
	}
	return lim
}

// RecoveredFunction is one recovered function signature: the id plus the
// inferred parameter type list (names are not recoverable from bytecode).
type RecoveredFunction struct {
	// Selector is the 4-byte function id from the dispatcher.
	Selector abi.Selector
	// Inputs is the recovered parameter type list, in call-data order.
	Inputs []abi.Type
	// ParamRules explains each parameter: the inference rules applied, in
	// order (parallel to Inputs).
	ParamRules [][]RuleID
	// Language is the detected source compiler for this function.
	Language Language
	// Truncated reports that an exploration budget was hit (best-effort
	// result).
	Truncated bool
}

// TypeList formats the recovered parameter list canonically.
func (r RecoveredFunction) TypeList() string {
	sig := abi.Signature{Name: "f", Inputs: r.Inputs}
	return sig.TypeList()
}

// Result is the full recovery output for one contract.
type Result struct {
	Functions []RecoveredFunction
	// Rules aggregates rule usage over all functions (the paper's RQ4).
	Rules RuleStats
	// Truncated reports that some exploration budget or deadline was hit:
	// the function list or the recovered types may be incomplete.
	Truncated bool
}

// Recover runs SigRec on runtime bytecode: disassemble, extract function
// ids from the dispatcher, then run TASE per function and infer parameter
// types with rules R1-R31. It is RecoverContext under the default budgets.
func Recover(code []byte) (Result, error) {
	return RecoverContext(context.Background(), code, Options{})
}

// RecoverContext runs SigRec under caller-supplied resource bounds. A hit
// budget or an expired deadline/context yields a partial Result with
// Truncated set rather than an error, so batch callers always get
// whatever was recovered. Every call is metered into the pipeline
// telemetry (see Metrics).
func RecoverContext(ctx context.Context, code []byte, opts Options) (Result, error) {
	start := time.Now()
	sc := eventlog.ScopeFromContext(ctx)
	var requestID string
	if sc != nil {
		requestID = sc.RequestID
	}
	if opts.Cache != nil {
		if res, err, ok := opts.Cache.lookup(code); ok {
			rec := obs.FromContext(ctx)
			rec.SetStr("cache", "hit")
			mRecoveries.Inc()
			us := uint64(time.Since(start).Microseconds())
			mRecoverUS.ObserveExemplar(us, requestID)
			sRecoverUS.Observe(us)
			if opts.EventLog != nil {
				ev := &eventlog.Event{
					RequestID: requestID,
					DurUS:     int64(us),
					CodeBytes: len(code),
					Functions: len(res.Functions),
					Truncated: res.Truncated,
					Cache:     "hit",
				}
				if sc != nil {
					ev.QueueUS = sc.QueueUS
					ev.TraceID = sc.TraceID
				}
				if err != nil {
					ev.Error = err.Error()
				}
				if seq := opts.EventLog.Emit(ev); seq != 0 {
					rec.SetEventSeq(seq)
				}
			}
			return res, err
		}
	}
	var ev *eventlog.Event
	if opts.EventLog != nil {
		ev = &eventlog.Event{RequestID: requestID, CodeBytes: len(code)}
		if sc != nil {
			ev.QueueUS = sc.QueueUS
			ev.TraceID = sc.TraceID
		}
	}
	res, err := recoverUncached(ctx, code, opts, ev)
	if opts.Cache != nil && cacheable(res, err) {
		opts.Cache.store(code, res, err)
	}
	mRecoveries.Inc()
	if err != nil {
		mRecoverErrors.Inc()
	}
	if res.Truncated {
		mTruncated.Inc()
	}
	mFunctions.Add(uint64(len(res.Functions)))
	us := uint64(time.Since(start).Microseconds())
	mRecoverUS.ObserveExemplar(us, requestID)
	sRecoverUS.Observe(us)
	if ev != nil {
		ev.DurUS = int64(us)
		ev.Functions = len(res.Functions)
		ev.Truncated = res.Truncated
		if err != nil {
			ev.Error = err.Error()
		}
		for r := 1; r <= NumRules; r++ {
			if n := res.Rules[r]; n > 0 {
				if ev.RuleFires == nil {
					ev.RuleFires = make(map[string]uint64, 4)
				}
				ev.RuleFires[RuleID(r).String()] = n
			}
		}
		if seq := opts.EventLog.Emit(ev); seq != 0 {
			obs.FromContext(ctx).SetEventSeq(seq)
		}
	}
	return res, err
}

// hexSelector renders a selector as 0x-prefixed hex in one allocation
// (abi.Selector.Hex costs two); it runs once per traced selector.
func hexSelector(sel [4]byte) string {
	var b [10]byte
	b[0], b[1] = '0', 'x'
	hex.Encode(b[2:], sel[:])
	return string(b[:])
}

func recoverUncached(ctx context.Context, code []byte, opts Options, ev *eventlog.Event) (Result, error) {
	if len(code) == 0 {
		return Result{}, errors.New("core: empty bytecode")
	}
	// rec is nil when the caller didn't arm tracing; every span call below
	// is nil-safe, so the untraced path pays one context lookup.
	rec := obs.FromContext(ctx)
	lim := opts.limits(ctx)

	// Phase boundaries are clocked unconditionally (a handful of monotonic
	// reads against ms-scale phases): the per-phase quantile summaries and
	// the wide event need them whether or not tracing is armed.
	t0 := time.Now()

	// Each phase boundary shares one clock read (NowUS) between the ending
	// span and the starting one, halving the tracer's clock cost.
	dsp := rec.Span("disassemble")
	program := evm.Disassemble(code)
	t1 := time.Now()
	var now int64
	if dsp != nil {
		dsp.SetAttrs(
			obs.Attr{Key: "code_bytes", Num: int64(len(code))},
			obs.Attr{Key: "instructions", Num: int64(len(program.Instructions))},
		)
		now = rec.NowUS()
		dsp.EndAt(now)
	}

	ssp := rec.SpanAt("dispatch", now)
	selectors, dispTrunc := extractSelectorsSpan(program, lim, ssp, ev)
	t2 := time.Now()
	if ssp != nil {
		ssp.SetInt("selectors", int64(len(selectors)))
		now = rec.NowUS()
		ssp.EndAt(now)
	}
	disasmD, dispatchD := t1.Sub(t0), t2.Sub(t1)
	var exploreD, inferD time.Duration
	recordPhases := func() {
		sDisasmUS.Observe(uint64(disasmD.Microseconds()))
		sDispatchUS.Observe(uint64(dispatchD.Microseconds()))
		sExploreUS.Observe(uint64(exploreD.Microseconds()))
		sInferUS.Observe(uint64(inferD.Microseconds()))
		if ev != nil {
			ev.DisasmUS = disasmD.Microseconds()
			ev.DispatchUS = dispatchD.Microseconds()
			ev.ExploreUS = exploreD.Microseconds()
			ev.InferUS = inferD.Microseconds()
			ev.Selectors = len(selectors)
		}
	}
	if len(selectors) == 0 {
		recordPhases()
		return Result{Truncated: dispTrunc}, ErrNoFunctions
	}
	res := Result{Truncated: dispTrunc}
	if workers := opts.selectorWorkers(len(selectors)); workers > 1 {
		recoverSelectorsParallel(&res, program, selectors, lim, workers, rec, ev, &exploreD, &inferD)
		recordPhases()
		return res, nil
	}
	for _, sel := range selectors {
		// Explore and infer are sibling spans per selector, tied together
		// by the selector attribute (one hex string shared by both).
		var selHex string
		if rec != nil {
			selHex = hexSelector(sel)
		}
		p0 := time.Now()
		esp := rec.SpanAt("explore", now)
		tr := traceFunctionSpan(program, sel, lim, esp, selHex, ev)
		p1 := time.Now()
		if esp != nil {
			now = rec.NowUS()
			esp.EndAt(now)
		}
		isp := rec.SpanAt("infer", now)
		d := Infer(tr)
		p2 := time.Now()
		if isp != nil {
			isp.SetAttrs(
				obs.Attr{Key: "selector", Str: selHex},
				obs.Attr{Key: "params", Num: int64(len(d.Types))},
				obs.Attr{Key: "rule_hits", Num: int64(d.Stats.Total())},
			)
			now = rec.NowUS()
			isp.EndAt(now)
		}
		exploreD += p1.Sub(p0)
		inferD += p2.Sub(p1)
		res.Rules.Add(d.Stats)
		res.Functions = append(res.Functions, RecoveredFunction{
			Selector:   abi.Selector(sel),
			Inputs:     d.Types,
			ParamRules: d.ParamRules,
			Language:   d.Language,
			Truncated:  tr.Truncated,
		})
		res.Truncated = res.Truncated || tr.Truncated
	}
	recordPhases()
	return res, nil
}

// selOutcome carries one worker's explore+infer output to the merge loop,
// including the raw timestamps needed to build the explore/infer span pair
// post-hoc with real start/end times.
type selOutcome struct {
	t              *tase
	tr             Trace
	inf            Inferred
	exploreStartUS int64
	exploreEndUS   int64
	inferEndUS     int64
	exploreD       time.Duration
	inferD         time.Duration
}

// recoverSelectorsParallel fans explore+infer out over a bounded worker
// pool, then merges in selector order. Everything a worker touches is
// either goroutine-confined (the TASE engine, its interner, the inference
// pass over its own trace) or already concurrency-safe (telemetry atomics,
// the sync.Pools, obs.Recovery.NowUS). Everything that is order-sensitive
// — span construction, finishTASE's wide-event accumulation and its
// first-wins TruncCause, Functions append, RuleStats totals — happens in
// the merge loop, so the output is indistinguishable from the sequential
// path.
func recoverSelectorsParallel(res *Result, program *Program, selectors [][4]byte, lim limits, workers int, rec *obs.Recovery, ev *eventlog.Event, exploreD, inferD *time.Duration) {
	outs := make([]selOutcome, len(selectors))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selectors) {
					return
				}
				o := &outs[i]
				o.exploreStartUS = rec.NowUS()
				p0 := time.Now()
				o.tr, o.t = traceFunctionEngine(program, selectors[i], lim)
				p1 := time.Now()
				o.exploreEndUS = rec.NowUS()
				o.inf = Infer(o.tr)
				p2 := time.Now()
				o.inferEndUS = rec.NowUS()
				o.exploreD = p1.Sub(p0)
				o.inferD = p2.Sub(p1)
			}
		}()
	}
	wg.Wait()
	for i := range outs {
		o := &outs[i]
		var selHex string
		if rec != nil {
			selHex = hexSelector(selectors[i])
			esp := rec.SpanAt("explore", o.exploreStartUS)
			annotateTASE(esp, o.t, selHex)
			esp.EndAt(o.exploreEndUS)
			isp := rec.SpanAt("infer", o.exploreEndUS)
			isp.SetAttrs(
				obs.Attr{Key: "selector", Str: selHex},
				obs.Attr{Key: "params", Num: int64(len(o.inf.Types))},
				obs.Attr{Key: "rule_hits", Num: int64(o.inf.Stats.Total())},
			)
			isp.EndAt(o.inferEndUS)
		}
		finishTASE(o.t, ev)
		*exploreD += o.exploreD
		*inferD += o.inferD
		res.Rules.Add(o.inf.Stats)
		res.Functions = append(res.Functions, RecoveredFunction{
			Selector:   abi.Selector(selectors[i]),
			Inputs:     o.inf.Types,
			ParamRules: o.inf.ParamRules,
			Language:   o.inf.Language,
			Truncated:  o.tr.Truncated,
		})
		res.Truncated = res.Truncated || o.tr.Truncated
	}
}

// RecoverFunction runs TASE and inference for a single known selector
// under the default budgets. The recovery is metered into the E3-bucket
// latency histogram.
func RecoverFunction(code []byte, selector abi.Selector) (RecoveredFunction, RuleStats) {
	start := time.Now()
	program := evm.Disassemble(code)
	tr := TraceFunction(program, selector)
	d := Infer(tr)
	mRecoverUS.ObserveDuration(time.Since(start))
	return RecoveredFunction{
		Selector:   selector,
		Inputs:     d.Types,
		ParamRules: d.ParamRules,
		Language:   d.Language,
		Truncated:  tr.Truncated,
	}, d.Stats
}

// Explain renders the per-parameter rule trails: "param 1 (uint8): R4 R11".
func (r RecoveredFunction) Explain() []string {
	out := make([]string, 0, len(r.Inputs))
	for i, t := range r.Inputs {
		line := "param " + strconv.Itoa(i+1) + " (" + t.Display() + "):"
		if i < len(r.ParamRules) {
			for _, rule := range r.ParamRules[i] {
				line += " " + rule.String()
			}
		}
		out = append(out, line)
	}
	return out
}
