package core

import (
	"errors"
	"strconv"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// ErrNoFunctions reports bytecode with no recoverable dispatcher.
var ErrNoFunctions = errors.New("core: no public/external functions found")

// RecoveredFunction is one recovered function signature: the id plus the
// inferred parameter type list (names are not recoverable from bytecode).
type RecoveredFunction struct {
	// Selector is the 4-byte function id from the dispatcher.
	Selector abi.Selector
	// Inputs is the recovered parameter type list, in call-data order.
	Inputs []abi.Type
	// ParamRules explains each parameter: the inference rules applied, in
	// order (parallel to Inputs).
	ParamRules [][]RuleID
	// Language is the detected source compiler for this function.
	Language Language
	// Truncated reports that an exploration budget was hit (best-effort
	// result).
	Truncated bool
}

// TypeList formats the recovered parameter list canonically.
func (r RecoveredFunction) TypeList() string {
	sig := abi.Signature{Name: "f", Inputs: r.Inputs}
	return sig.TypeList()
}

// Result is the full recovery output for one contract.
type Result struct {
	Functions []RecoveredFunction
	// Rules aggregates rule usage over all functions (the paper's RQ4).
	Rules RuleStats
}

// Recover runs SigRec on runtime bytecode: disassemble, extract function
// ids from the dispatcher, then run TASE per function and infer parameter
// types with rules R1-R31.
func Recover(code []byte) (Result, error) {
	if len(code) == 0 {
		return Result{}, errors.New("core: empty bytecode")
	}
	program := evm.Disassemble(code)
	selectors := ExtractSelectors(program)
	if len(selectors) == 0 {
		return Result{}, ErrNoFunctions
	}
	var res Result
	for _, sel := range selectors {
		tr := TraceFunction(program, sel)
		d := Infer(tr)
		res.Rules.Add(d.Stats)
		res.Functions = append(res.Functions, RecoveredFunction{
			Selector:   abi.Selector(sel),
			Inputs:     d.Types,
			ParamRules: d.ParamRules,
			Language:   d.Language,
			Truncated:  tr.Truncated,
		})
	}
	return res, nil
}

// RecoverFunction runs TASE and inference for a single known selector.
func RecoverFunction(code []byte, selector abi.Selector) (RecoveredFunction, RuleStats) {
	program := evm.Disassemble(code)
	tr := TraceFunction(program, selector)
	d := Infer(tr)
	return RecoveredFunction{
		Selector:   selector,
		Inputs:     d.Types,
		ParamRules: d.ParamRules,
		Language:   d.Language,
		Truncated:  tr.Truncated,
	}, d.Stats
}

// Explain renders the per-parameter rule trails: "param 1 (uint8): R4 R11".
func (r RecoveredFunction) Explain() []string {
	out := make([]string, 0, len(r.Inputs))
	for i, t := range r.Inputs {
		line := "param " + strconv.Itoa(i+1) + " (" + t.Display() + "):"
		if i < len(r.ParamRules) {
			for _, rule := range r.ParamRules[i] {
				line += " " + rule.String()
			}
		}
		out = append(out, line)
	}
	return out
}
