package core

import (
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

// FuzzRecover: signature recovery must never panic or hang on arbitrary
// bytecode -- the tool's first requirement when pointed at 37M unknown
// contracts.
func FuzzRecover(f *testing.F) {
	// Seeds: a real compiled contract, truncations of it, and junk.
	sig, _ := abi.ParseSignature("transfer(address,uint256)")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.External},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(code)
	f.Add(code[:len(code)/2])
	f.Add([]byte{0x60})
	f.Add([]byte{0xfe, 0xfd, 0x5b, 0x56})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Recover(data) // must not panic
	})
}

// FuzzInferMutatedContract mutates a valid contract byte-wise: recovery
// must stay robust as the structure decays.
func FuzzInferMutatedContract(f *testing.F) {
	sig, _ := abi.ParseSignature("f(uint8[],bytes,(uint256[],bool))")
	code, err := solc.Compile(solc.Contract{Functions: []solc.Function{
		{Sig: sig, Mode: solc.Public},
	}}, solc.Config{Version: solc.DefaultVersion()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(code, uint16(0), byte(0))
	f.Add(code, uint16(10), byte(0xff))
	f.Fuzz(func(t *testing.T, base []byte, pos uint16, val byte) {
		if len(base) == 0 {
			return
		}
		mutated := append([]byte(nil), base...)
		mutated[int(pos)%len(mutated)] = val
		_, _ = Recover(mutated)
	})
}
