package core

import (
	"strconv"

	"sigrec/internal/evm"
)

// RuleID identifies one of the paper's 31 inference rules.
type RuleID int

// The rules, grouped exactly as in §3 of the paper: R1-R4 for CALLDATALOAD,
// R5-R10 and R23 for CALLDATACOPY, and the rest for other instructions.
const (
	R1  RuleID = iota + 1 // two consecutive CDLs: dynamic array/bytes/string
	R2                    // n-dim dynamic array, external
	R3                    // n-dim static array, external
	R4                    // default 32-byte value: uint256
	R5                    // dynamic sequence copied in a public function
	R6                    // 1-dim static array, public
	R7                    // 1-dim dynamic array, public
	R8                    // bytes/string, public (length rounded up to 32)
	R9                    // (n+1)-dim static array, public
	R10                   // (n+1)-dim dynamic array, public
	R11                   // uint(256-8x) via low AND mask
	R12                   // bytes(32-x) via high AND mask
	R13                   // int((x+1)*8) via SIGNEXTEND
	R14                   // bool via double ISZERO
	R15                   // int256 via signed operation
	R16                   // address: 20-byte mask without arithmetic
	R17                   // bytes: individual byte access
	R18                   // bytes32 via BYTE
	R19                   // struct member that is a nested array
	R20                   // Vyper bytecode detection
	R21                   // struct parameter
	R22                   // nested array parameter
	R23                   // Vyper fixed-size byte array/string copy
	R24                   // Vyper fixed-size list
	R25                   // Vyper basic type default
	R26                   // Vyper bytes[maxLen] byte access
	R27                   // Vyper address range check
	R28                   // Vyper int128 range check
	R29                   // Vyper decimal range check
	R30                   // Vyper bool range check
	R31                   // Vyper bytes32 via BYTE
)

// NumRules is the count of defined rules.
const NumRules = 31

// String implements fmt.Stringer.
func (r RuleID) String() string { return "R" + strconv.Itoa(int(r)) }

// RuleStats counts rule applications (the paper's Fig. 19).
type RuleStats [NumRules + 1]uint64

// Add accumulates another stats vector.
func (s *RuleStats) Add(o RuleStats) {
	for i := range s {
		s[i] += o[i]
	}
}

// Count returns the number of applications of a rule.
func (s *RuleStats) Count(r RuleID) uint64 { return s[r] }

// Total returns the sum over all rules.
func (s *RuleStats) Total() uint64 {
	var sum uint64
	for i := 1; i <= NumRules; i++ {
		sum += s[i]
	}
	return sum
}

// hit records one application.
func (s *RuleStats) hit(r RuleID) { s[r]++ }

// Vyper range-check bound constants (§2.3.2). These are what rules R27-R30
// match against.
var (
	boundBool    = evm.WordFromUint64(2)
	boundAddress = evm.OneWord.Shl(evm.WordFromUint64(160))
	int128Min    = evm.OneWord.Shl(evm.WordFromUint64(127)).Neg()
	int128Max    = evm.OneWord.Shl(evm.WordFromUint64(127)).Sub(evm.OneWord)
	decimalScale = evm.WordFromUint64(10_000_000_000)
	decimalMin   = evm.OneWord.Shl(evm.WordFromUint64(127)).Mul(decimalScale).Neg()
	decimalMax   = evm.OneWord.Shl(evm.WordFromUint64(127)).Mul(decimalScale).Sub(evm.OneWord)
)

// profile summarizes the operations applied to one value (a basic parameter
// or an array/struct element); fine-grained inference reads it.
type profile struct {
	maskLowBytes  int  // AND with 2^(8m)-1 -> m
	maskHighBytes int  // AND with high-m-bytes mask -> m
	signExtendK   int  // SIGNEXTEND k -> k, -1 if absent
	doubleISZERO  bool // ISZERO(ISZERO(v))
	byteAccess    bool // BYTE applied
	signedOp      bool // SDIV/SMOD/SLT/SGT involvement
	arithmetic    bool // ADD/SUB/MUL/DIV/EXP involvement
	vyBool        bool // LT against 2
	vyAddress     bool // LT against 2^160
	vyInt128      bool // SLT/SGT against +-2^127
	vyDecimal     bool // SLT/SGT against the decimal bounds
}

func newProfile() profile { return profile{signExtendK: -1} }

// observe folds one op event into the profile, given a predicate that
// recognizes the value's atoms.
func (p *profile) observe(ev Event, isValue func(*Expr) bool) {
	// direct: the operand IS the value (not just derived from it)
	direct := func(e *Expr) bool { return isValue(e) }
	contains := func(e *Expr) bool {
		if isValue(e) {
			return true
		}
		for _, a := range e.CDataAtoms() {
			if isValue(a) {
				return true
			}
		}
		return false
	}
	switch ev.Op {
	case evm.AND:
		c, v := ev.Args[0], ev.Args[1]
		if c.Conc == nil {
			c, v = v, c
		}
		if c.Conc == nil || !direct(v) {
			return
		}
		if m, ok := lowMaskBytes(*c.Conc); ok {
			p.maskLowBytes = m
		} else if m, ok := highMaskBytes(*c.Conc); ok {
			p.maskHighBytes = m
		}
	case evm.SIGNEXTEND:
		k, v := ev.Args[0], ev.Args[1]
		if k.Conc != nil && direct(v) {
			if kv, ok := k.ConstUint(); ok && kv < 31 {
				p.signExtendK = int(kv)
			}
		}
	case evm.ISZERO:
		arg := ev.Args[0]
		if arg.Kind == KindApp && arg.Op == evm.ISZERO && direct(arg.Args[0]) {
			p.doubleISZERO = true
		}
	case evm.BYTE:
		if direct(ev.Args[1]) {
			p.byteAccess = true
		}
	case evm.SDIV, evm.SMOD:
		if contains(ev.Args[0]) || contains(ev.Args[1]) {
			p.signedOp = true
		}
	case evm.SLT, evm.SGT:
		v, b := ev.Args[0], ev.Args[1]
		if !direct(v) || b.Conc == nil {
			if contains(ev.Args[0]) || contains(ev.Args[1]) {
				p.signedOp = true
			}
			return
		}
		switch {
		case b.Conc.Eq(int128Min) || b.Conc.Eq(int128Max):
			p.vyInt128 = true
		case b.Conc.Eq(decimalMin) || b.Conc.Eq(decimalMax):
			p.vyDecimal = true
		default:
			p.signedOp = true
		}
	case evm.LT, evm.GT:
		v, b := ev.Args[0], ev.Args[1]
		if !direct(v) || b.Conc == nil {
			return
		}
		switch {
		case b.Conc.Eq(boundBool):
			p.vyBool = true
		case b.Conc.Eq(boundAddress):
			p.vyAddress = true
		}
	case evm.SHR, evm.SHL:
		// Generalized mask rules (the paper's §7 anti-obfuscation
		// direction): a shift round trip is semantically an AND mask.
		// SHR(s, SHL(s, v)) keeps the low 256-s bits; SHL(s, SHR(s, v))
		// keeps the high 256-s bits.
		outerShift, inner := ev.Args[0], ev.Args[1]
		if outerShift.Conc == nil || inner.Kind != KindApp {
			return
		}
		wantInner := evm.SHL
		if ev.Op == evm.SHL {
			wantInner = evm.SHR
		}
		if inner.Op != wantInner || inner.Args[0].Conc == nil || !direct(inner.Args[1]) {
			return
		}
		s, ok1 := outerShift.ConstUint()
		s2, ok2 := inner.Args[0].ConstUint()
		if !ok1 || !ok2 || s != s2 || s == 0 || s >= 256 || s%8 != 0 {
			return
		}
		m := int(256-s) / 8
		if ev.Op == evm.SHR {
			p.maskLowBytes = m
		} else {
			p.maskHighBytes = m
		}
	case evm.ADD, evm.SUB, evm.MUL, evm.DIV, evm.EXP, evm.MOD:
		// Arithmetic involvement; direct or via a prior mask.
		for _, a := range ev.Args {
			if direct(a) || maskedValue(a, isValue) {
				p.arithmetic = true
			}
		}
	}
}

// maskedValue reports whether e is AND(mask, value) or SIGNEXTEND(k, value)
// over the value, i.e. arithmetic on the masked value still counts as
// arithmetic on the parameter (the uint160-vs-address distinction).
func maskedValue(e *Expr, isValue func(*Expr) bool) bool {
	if e.Kind != KindApp {
		return false
	}
	switch e.Op {
	case evm.AND, evm.SIGNEXTEND:
		for _, a := range e.Args {
			if isValue(a) {
				return true
			}
		}
	}
	return false
}

// lowMaskBytes recognizes 2^(8m)-1 masks, returning m.
func lowMaskBytes(w evm.Word) (int, bool) {
	for m := 1; m <= 32; m++ {
		if w.Eq(evm.LowMask(uint(m * 8))) {
			return m, true
		}
	}
	return 0, false
}

// highMaskBytes recognizes masks with the top m bytes set, returning m.
func highMaskBytes(w evm.Word) (int, bool) {
	for m := 1; m < 32; m++ {
		if w.Eq(evm.HighMask(uint(m * 8))) {
			return m, true
		}
	}
	return 0, false
}

// hasVyperEvidence reports whether the profile carries any Vyper range-check
// signal (rule R20's per-value component).
func (p profile) hasVyperEvidence() bool {
	return p.vyBool || p.vyAddress || p.vyInt128 || p.vyDecimal
}
