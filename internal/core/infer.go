package core

import (
	"cmp"
	"slices"

	"sigrec/internal/abi"
	"sigrec/internal/evm"
)

// Language labels the detected source compiler.
type Language int

// Detected languages.
const (
	LangSolidity Language = iota + 1
	LangVyper
)

// String implements fmt.Stringer.
func (l Language) String() string {
	if l == LangVyper {
		return "vyper"
	}
	return "solidity"
}

// inference runs the coarse and fine type inference (TASE steps 1, 2, 4)
// over one function's trace.
type inference struct {
	events []Event
	stats  RuleStats
	lang   Language

	cdls []Event // CALLDATALOAD events
	cdcs []Event // CALLDATACOPY events
	ops  []Event // tainted instruction events

	// valIndex maps a loaded value's canonical key to the CDL event that
	// produced it. viewBody needs it for every dynamic parameter; it is
	// built once per trace on first use instead of per call.
	valIndex map[string]Event

	// cur accumulates the rules applied while classifying the current
	// parameter (the per-parameter explanation).
	cur []RuleID

	// descMemo caches descOf by node: every parameter's classification
	// re-describes the same copy/load addresses, and descriptors are
	// immutable once built.
	descMemo map[*Expr]memoDesc
}

// hit records a rule application against the global stats, the pipeline's
// per-rule fired counters (sigrec_rule_fired_total{rule=...}), and the
// current parameter's explanation.
func (inf *inference) hit(r RuleID) {
	inf.stats.hit(r)
	mRuleFired[r].Inc()
	inf.cur = append(inf.cur, r)
}

// beginParam starts a fresh explanation and returns the rules applied to
// the previous parameter.
func (inf *inference) beginParam() {
	inf.cur = nil
}

func (inf *inference) takeRules() []RuleID {
	out := inf.cur
	inf.cur = nil
	return out
}

// linParts reduces a Linear to a uint64 constant plus coefficient-1 atom
// keys. It fails for exotic forms (huge constants, non-unit coefficients on
// frame atoms), which the classifier treats as opaque.
type bodyDesc struct {
	c     uint64
	terms map[string]uint64 // atom key -> coefficient
}

func (inf *inference) descOf(e *Expr) (bodyDesc, bool) {
	// Nodes are interned per trace, so the pointer is a sound memo key;
	// classifiers re-describe the same addresses for every parameter, and
	// descriptors are immutable once built, so sharing them is safe. (In
	// the noIntern differential mode duplicate nodes just miss the memo.)
	if m, ok := inf.descMemo[e]; ok {
		return m.d, m.ok
	}
	d, ok := descOfUncached(e)
	if inf.descMemo == nil {
		inf.descMemo = make(map[*Expr]memoDesc)
	}
	inf.descMemo[e] = memoDesc{d: d, ok: ok}
	return d, ok
}

// memoDesc is a cached descOf outcome (negative results are cached too).
type memoDesc struct {
	d  bodyDesc
	ok bool
}

func descOfUncached(e *Expr) (bodyDesc, bool) {
	lin := Linearize(e)
	c, ok := lin.Const.Uint64()
	if !ok {
		return bodyDesc{}, false
	}
	d := bodyDesc{c: c}
	if len(lin.Terms) > 0 {
		d.terms = make(map[string]uint64, len(lin.Terms))
		for _, t := range lin.Terms {
			coeff, ok := t.Coeff.Uint64()
			if !ok {
				return bodyDesc{}, false
			}
			d.terms[t.Atom.String()] += coeff
		}
	}
	return d, true
}

// sameTerms reports whether two descriptors have identical symbolic parts.
func sameTerms(a, b bodyDesc) bool {
	if len(a.terms) != len(b.terms) {
		return false
	}
	for k, v := range a.terms {
		if b.terms[k] != v {
			return false
		}
	}
	return true
}

// extraTerms returns the atom keys in a but not in b (coefficient 1 only).
func extraTerms(a, b bodyDesc) []string {
	var out []string
	for k, v := range a.terms {
		if _, shared := b.terms[k]; !shared && v == 1 {
			out = append(out, k)
		}
	}
	slices.Sort(out)
	return out
}

// headAtomKey is the canonical key for the value loaded from a constant
// head offset. The classifier asks for the same small set of offsets
// (4 + 32k) for every parameter of every function, so the common keys are
// rendered once at init into a read-only table.
func headAtomKey(off uint64) string {
	if off >= 4 && (off-4)%32 == 0 {
		if slot := (off - 4) / 32; slot < uint64(len(headAtomKeys)) {
			return headAtomKeys[slot]
		}
	}
	return NewCData(NewConstUint(off)).String()
}

var headAtomKeys = func() [64]string {
	var keys [64]string
	for i := range keys {
		keys[i] = NewCData(NewConstUint(4 + 32*uint64(i))).String()
	}
	return keys
}()

// Inferred is the full inference output for one function.
type Inferred struct {
	// Types is the recovered parameter list, call-data order.
	Types []abi.Type
	// ParamRules explains each parameter: the rules applied to classify
	// it, in application order (parallel to Types).
	ParamRules [][]RuleID
	// Language is the detected source compiler.
	Language Language
	// Stats aggregates rule usage for the function.
	Stats RuleStats
}

// InferSignature runs type inference over a trace, returning the recovered
// parameter list, the detected language, and the rule-usage statistics.
func InferSignature(tr Trace) ([]abi.Type, Language, RuleStats) {
	d := Infer(tr)
	return d.Types, d.Language, d.Stats
}

// Infer runs type inference with per-parameter rule explanations.
func Infer(tr Trace) Inferred {
	inf := &inference{events: tr.Events, lang: LangSolidity}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case EvCDL:
			inf.cdls = append(inf.cdls, ev)
		case EvCDC:
			inf.cdcs = append(inf.cdcs, ev)
		case EvOp:
			inf.ops = append(inf.ops, ev)
		}
	}
	inf.detectLanguage()
	langRules := inf.takeRules() // R20, when it fired
	types, paramRules := inf.classify()
	if len(langRules) > 0 && len(paramRules) > 0 {
		// Attribute language detection to the first parameter's trail so
		// the explanation reads root-first, as in the decision tree.
		paramRules[0] = append(langRules, paramRules[0]...)
	}
	return Inferred{Types: types, ParamRules: paramRules, Language: inf.lang, Stats: inf.stats}
}

// detectLanguage applies rule R20: Vyper bytecode validates basic values
// with comparisons against type-range constants instead of masks.
func (inf *inference) detectLanguage() {
	for _, ev := range inf.ops {
		var bound *Expr
		switch ev.Op {
		case evm.LT, evm.GT, evm.SLT, evm.SGT:
			bound = ev.Args[1]
		default:
			continue
		}
		if bound.Conc == nil || ev.Args[0].Conc != nil {
			continue
		}
		b := *bound.Conc
		if b.Eq(boundBool) || b.Eq(boundAddress) || b.Eq(int128Min) ||
			b.Eq(int128Max) || b.Eq(decimalMin) || b.Eq(decimalMax) {
			inf.lang = LangVyper
			inf.hit(R20)
			return
		}
	}
	// Bounded byte-array copies are the other Vyper-only signature.
	for _, ev := range inf.cdcs {
		if d, ok := inf.descOf(ev.Src); ok && d.c == 4 && len(d.terms) == 1 {
			if _, isConst := ev.Len.ConstUint(); isConst {
				inf.lang = LangVyper
				inf.hit(R20)
				return
			}
		}
	}
}

// claim is one recovered parameter occupying head bytes [off, off+size).
type claim struct {
	off   uint64
	size  uint64
	typ   abi.Type
	rules []RuleID
}

// classify performs coarse inference (head layout) and then fine inference
// per parameter, returning the types and per-parameter rule trails.
func (inf *inference) classify() ([]abi.Type, [][]RuleID) {
	claimed := make(map[uint64]bool) // head offsets already absorbed
	var claims []claim
	addClaim := func(cl claim) {
		for o := cl.off; o < cl.off+cl.size; o += 32 {
			claimed[o] = true
		}
		claims = append(claims, cl)
	}

	// 1. Dynamic parameters: head slots whose loaded value is dereferenced.
	derefed := inf.derefedHeadSlots()
	for _, off := range derefed {
		inf.beginParam()
		typ := inf.classifyDynamic(off)
		addClaim(claim{off: off, size: 32, typ: typ, rules: inf.takeRules()})
	}

	// 2. Static arrays copied in public mode (constant-source CALLDATACOPY).
	for _, cl := range inf.staticPublicArrays(claimed) {
		addClaim(cl)
	}

	// 3. Static arrays read in external mode (pc-grouped constant loads
	//    under constant bound checks).
	for _, cl := range inf.staticExternalArrays(claimed) {
		addClaim(cl)
	}

	// 4. Remaining constant head reads are basic values.
	for _, cl := range inf.basicClaims(claimed) {
		addClaim(cl)
	}

	slices.SortFunc(claims, func(a, b claim) int { return cmp.Compare(a.off, b.off) })
	types := make([]abi.Type, 0, len(claims))
	rules := make([][]RuleID, 0, len(claims))
	for _, cl := range claims {
		types = append(types, cl.typ)
		rules = append(rules, cl.rules)
	}
	return types, rules
}

// derefedHeadSlots finds constant head offsets whose loaded value is used as
// a base of further call-data reads or copies (offset fields).
func (inf *inference) derefedHeadSlots() []uint64 {
	uses := make(map[string]bool)
	note := func(e *Expr) {
		if d, ok := inf.descOf(e); ok {
			for k := range d.terms {
				uses[k] = true
			}
		}
	}
	for _, ev := range inf.cdls {
		if !ev.Off.IsConst() {
			note(ev.Off)
		}
	}
	for _, ev := range inf.cdcs {
		note(ev.Src)
	}
	seen := make(map[uint64]bool)
	var out []uint64
	for _, ev := range inf.cdls {
		off, ok := ev.Off.ConstUint()
		if !ok || off < 4 || seen[off] {
			continue
		}
		if uses[headAtomKey(off)] {
			seen[off] = true
			out = append(out, off)
		}
	}
	slices.Sort(out)
	return out
}

// loopBound extracts a loop-guard bound from a guard condition of the form
// LT(i, bound) or ISZERO(LT(i, bound)) with a concrete counter i.
func loopBound(g Guard) (*Expr, bool) {
	cond := g.Cond
	if cond.Kind == KindApp && cond.Op == evm.ISZERO {
		cond = cond.Args[0]
	}
	if cond.Kind != KindApp || cond.Op != evm.LT {
		return nil, false
	}
	if cond.Args[0].Conc == nil {
		return nil, false // counter must be concrete; value range checks are not loops
	}
	return cond.Args[1], true
}

// guardDims extracts the loop dimension bounds controlling an event,
// outermost first: constant bounds yield static dimensions, call-data-
// derived bounds dynamic ones (nil entry).
func guardDims(ev Event) (constDims []uint64, dynCount int) {
	seen := make(map[uint64]bool)
	for _, g := range ev.Guards {
		if seen[g.PC] || !g.Controls(ev.PC) {
			continue
		}
		bound, ok := loopBound(g)
		if !ok {
			continue
		}
		seen[g.PC] = true
		if v, isConst := bound.ConstUint(); isConst {
			if v >= 1 && v <= 1<<20 {
				constDims = append(constDims, v)
			}
			continue
		}
		if bound.ContainsCData() {
			dynCount++
		}
	}
	return constDims, dynCount
}

// buildStaticArray nests dims (outermost first) over the element type.
func buildStaticArray(dims []uint64, elem abi.Type) abi.Type {
	t := elem
	for i := len(dims) - 1; i >= 0; i-- {
		t = abi.ArrayOf(t, int(dims[i]))
	}
	return t
}

// staticPublicArrays recognizes rule R6/R9 claims.
func (inf *inference) staticPublicArrays(claimed map[uint64]bool) []claim {
	type group struct {
		minSrc uint64
		ev     Event
	}
	groups := make(map[uint64]*group)
	var order []uint64
	for _, ev := range inf.cdcs {
		src, ok := ev.Src.ConstUint()
		if !ok || src < 4 {
			continue
		}
		g, exists := groups[ev.PC]
		if !exists {
			groups[ev.PC] = &group{minSrc: src, ev: ev}
			order = append(order, ev.PC)
			continue
		}
		if src < g.minSrc {
			g.minSrc = src
			g.ev = ev
		}
	}
	slices.Sort(order)
	var out []claim
	for _, pc := range order {
		g := groups[pc]
		if claimed[g.minSrc] {
			continue
		}
		inf.beginParam()
		rowLen, ok := g.ev.Len.ConstUint()
		if !ok || rowLen == 0 || rowLen%32 != 0 {
			continue
		}
		dims, _ := guardDims(g.ev)
		dims = append(dims, rowLen/32)
		total := uint64(32)
		for _, d := range dims {
			total *= d
		}
		if len(dims) == 1 {
			inf.hit(R6)
		} else {
			inf.hit(R9)
		}
		elem := inf.refineBasic(inf.profileFor(func(a *Expr) bool {
			d, ok2 := inf.descOf(a.Args[0])
			return ok2 && len(d.terms) == 0 && d.c >= g.minSrc && d.c < g.minSrc+total
		}))
		out = append(out, claim{off: g.minSrc, size: total, typ: buildStaticArray(dims, elem), rules: inf.takeRules()})
	}
	return out
}

// staticExternalArrays recognizes rule R3 (and Vyper R24) claims: the same
// CALLDATALOAD instruction observed at multiple constant offsets, guarded by
// constant bound checks.
func (inf *inference) staticExternalArrays(claimed map[uint64]bool) []claim {
	type group struct {
		offs []uint64
		ev   Event
	}
	groups := make(map[uint64]*group)
	var order []uint64
	for _, ev := range inf.cdls {
		off, ok := ev.Off.ConstUint()
		if !ok || off < 4 {
			continue
		}
		g, exists := groups[ev.PC]
		if !exists {
			groups[ev.PC] = &group{offs: []uint64{off}, ev: ev}
			order = append(order, ev.PC)
			continue
		}
		g.offs = append(g.offs, off)
	}
	slices.Sort(order)
	var out []claim
	for _, pc := range order {
		g := groups[pc]
		dims, _ := guardDims(g.ev)
		if len(g.offs) < 2 && len(dims) == 0 {
			// A single unguarded load is a basic value, not an array.
			continue
		}
		slices.Sort(g.offs)
		base := g.offs[0]
		if claimed[base] {
			continue
		}
		inf.beginParam()
		if len(dims) == 0 {
			// No bound checks: treat the distinct offsets as a 1-dim array.
			dims = []uint64{uint64(len(g.offs))}
		}
		total := uint64(32)
		for _, d := range dims {
			total *= d
		}
		if inf.lang == LangVyper {
			inf.hit(R24)
		} else {
			inf.hit(R3)
		}
		elem := inf.refineBasic(inf.profileFor(func(a *Expr) bool {
			d, ok2 := inf.descOf(a.Args[0])
			return ok2 && len(d.terms) == 0 && d.c >= base && d.c < base+total
		}))
		out = append(out, claim{off: base, size: total, typ: buildStaticArray(dims, elem), rules: inf.takeRules()})
	}
	return out
}

// basicClaims turns the remaining constant head reads into basic values
// (rule R4 for Solidity, R25 for Vyper).
func (inf *inference) basicClaims(claimed map[uint64]bool) []claim {
	seen := make(map[uint64]bool)
	var out []claim
	for _, ev := range inf.cdls {
		off, ok := ev.Off.ConstUint()
		if !ok || off < 4 || claimed[off] || seen[off] {
			continue
		}
		seen[off] = true
		inf.beginParam()
		if inf.lang == LangVyper {
			inf.hit(R25)
		} else {
			inf.hit(R4)
		}
		// Match the loaded value by its offset's *descriptor*, not by
		// string identity: loads reached through folded-constant address
		// arithmetic (e.g. base + 32*0) name the same slot.
		slot := off
		typ := inf.refineBasic(inf.profileFor(func(a *Expr) bool {
			d, ok2 := inf.descOf(a.Args[0])
			return ok2 && len(d.terms) == 0 && d.c == slot
		}))
		out = append(out, claim{off: off, size: 32, typ: typ, rules: inf.takeRules()})
	}
	return out
}

// profileFor builds the operation profile of all values whose CData atoms
// match the predicate.
func (inf *inference) profileFor(isValueAtom func(*Expr) bool) profile {
	p := newProfile()
	isValue := func(e *Expr) bool {
		return e.Kind == KindCData && isValueAtom(e)
	}
	for _, ev := range inf.ops {
		p.observe(ev, isValue)
	}
	return p
}

// refineBasic maps a profile to a concrete basic type (rules R11-R18 for
// Solidity, R27-R31 for Vyper).
func (inf *inference) refineBasic(p profile) abi.Type {
	if inf.lang == LangVyper {
		switch {
		case p.vyBool:
			inf.hit(R30)
			return abi.Bool()
		case p.vyAddress:
			inf.hit(R27)
			return abi.Address()
		case p.vyInt128:
			inf.hit(R28)
			return abi.Int(128)
		case p.vyDecimal:
			inf.hit(R29)
			return abi.Decimal()
		case p.byteAccess:
			inf.hit(R31)
			return abi.FixedBytes(32)
		default:
			return abi.Uint(256)
		}
	}
	switch {
	case p.signExtendK >= 0:
		inf.hit(R13)
		return abi.Int((p.signExtendK + 1) * 8)
	case p.maskLowBytes == 20:
		if p.arithmetic {
			inf.hit(R11)
			return abi.Uint(160)
		}
		inf.hit(R16)
		return abi.Address()
	case p.maskLowBytes > 0 && p.maskLowBytes < 32:
		inf.hit(R11)
		return abi.Uint(p.maskLowBytes * 8)
	case p.maskHighBytes > 0 && p.maskHighBytes < 32:
		inf.hit(R12)
		return abi.FixedBytes(p.maskHighBytes)
	case p.doubleISZERO:
		inf.hit(R14)
		return abi.Bool()
	case p.byteAccess:
		inf.hit(R18)
		return abi.FixedBytes(32)
	case p.signedOp:
		inf.hit(R15)
		return abi.Int(256)
	default:
		return abi.Uint(256)
	}
}
