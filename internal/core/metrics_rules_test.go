package core

import (
	"strings"
	"testing"

	"sigrec/internal/solc"
	"sigrec/internal/telemetry"
)

// ruleCounts reads the live sigrec_rule_fired_total family as a RuleID-
// indexed array.
func ruleCounts(t *testing.T) [NumRules + 1]uint64 {
	t.Helper()
	lc, ok := tel.Snapshot().LabeledCounters["sigrec_rule_fired_total"]
	if !ok {
		t.Fatal("sigrec_rule_fired_total not registered")
	}
	if lc.Label != "rule" {
		t.Fatalf("label = %q, want rule", lc.Label)
	}
	var out [NumRules + 1]uint64
	for r := 1; r <= NumRules; r++ {
		v, ok := lc.Values[RuleID(r).String()]
		if !ok {
			t.Fatalf("series for %s missing (all rules must be pre-registered)", RuleID(r))
		}
		out[r] = v
	}
	return out
}

// TestRuleFiredCounters ties the labeled counter family to ground truth
// twice over: the per-recovery deltas must equal the recovery's own
// RuleStats, and a corpus with a-priori-known rule trails (the same
// expectations rules_paths_test.go asserts per parameter) must move
// exactly those series. Core tests run sequentially, so process-global
// counter deltas are race-free here.
func TestRuleFiredCounters(t *testing.T) {
	corpus := []struct {
		sig   string
		mode  solc.Mode
		rules []RuleID // must fire at least once
	}{
		{"f(address)", solc.External, []RuleID{R4, R16}},
		{"f(uint8)", solc.External, []RuleID{R4, R11}},
		{"f(uint256[])", solc.External, []RuleID{R1, R2}},
		{"f(bytes)", solc.Public, []RuleID{R1, R5, R8, R17}},
	}
	before := ruleCounts(t)
	var want RuleStats
	for _, c := range corpus {
		code := compileSol(t, c.sig, c.mode, solc.Config{Version: solc.DefaultVersion()})
		res, err := Recover(code)
		if err != nil {
			t.Fatalf("Recover(%s): %v", c.sig, err)
		}
		want.Add(res.Rules)
		for _, r := range c.rules {
			if res.Rules[r] == 0 {
				t.Errorf("%s: expected rule %s on the trail", c.sig, r)
			}
		}
	}
	after := ruleCounts(t)
	for r := 1; r <= NumRules; r++ {
		if got := after[r] - before[r]; got != uint64(want[r]) {
			t.Errorf("counter delta for %s = %d, want %d (RuleStats)", RuleID(r), got, want[r])
		}
	}
}

// TestRuleSeriesOnExposition checks the /metrics view: all 31 rule series
// are present (zeros included) and the full exposition passes the strict
// text-format linter.
func TestRuleSeriesOnExposition(t *testing.T) {
	out := Metrics().Snapshot().String()
	for r := 1; r <= NumRules; r++ {
		series := `sigrec_rule_fired_total{rule="` + RuleID(r).String() + `"}`
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if errs := telemetry.Lint(out); len(errs) != 0 {
		t.Errorf("core exposition fails lint: %v", errs)
	}
}
