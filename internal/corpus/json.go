package corpus

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"sigrec/internal/abi"
	"sigrec/internal/solc"
)

// jsonEntry is the interchange form of one labeled function (the format
// cmd/corpusgen emits and external datasets can adopt).
type jsonEntry struct {
	Signature string `json:"signature"`
	// Declared carries the source-level spelling when it differs from the
	// canonical form (Vyper bounded types, decimal); readers prefer it so
	// type structure survives the round trip.
	Declared  string `json:"declared,omitempty"`
	Selector  string `json:"selector"`
	Language  string `json:"language"`
	Version   string `json:"version"`
	Optimized bool   `json:"optimized"`
	Mode      string `json:"mode"`
	Flaw      string `json:"flaw,omitempty"`
	Bytecode  string `json:"bytecode"`
}

// WriteJSON serializes entries in the interchange format.
func WriteJSON(w io.Writer, entries []Entry) error {
	out := make([]jsonEntry, 0, len(entries))
	for _, e := range entries {
		sel := e.Sig.Selector()
		declared := ""
		if d := e.Sig.DisplayString(); d != e.Sig.Canonical() {
			declared = d
		}
		out = append(out, jsonEntry{
			Signature: e.Sig.Canonical(),
			Declared:  declared,
			Selector:  sel.Hex(),
			Language:  e.Language.String(),
			Version:   e.Version,
			Optimized: e.Optimized,
			Mode:      e.Mode.String(),
			Flaw:      e.Flaw,
			Bytecode:  "0x" + hex.EncodeToString(e.Code),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON loads entries from the interchange format, validating each
// signature and selector.
func ReadJSON(r io.Reader) ([]Entry, error) {
	var raw []jsonEntry
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("corpus: decode: %w", err)
	}
	out := make([]Entry, 0, len(raw))
	for i, je := range raw {
		src := je.Signature
		if je.Declared != "" {
			src = je.Declared
		}
		sig, err := abi.ParseSignature(src)
		if err != nil {
			return nil, fmt.Errorf("corpus: entry %d: %w", i, err)
		}
		if got := sig.Selector().Hex(); got != je.Selector {
			return nil, fmt.Errorf("corpus: entry %d: selector %s does not match signature (%s)",
				i, je.Selector, got)
		}
		code, err := hex.DecodeString(trimHexPrefix(je.Bytecode))
		if err != nil {
			return nil, fmt.Errorf("corpus: entry %d: bytecode: %w", i, err)
		}
		lang := Solidity
		if je.Language == "vyper" {
			lang = Vyper
		}
		mode := solc.External
		if je.Mode == "public" {
			mode = solc.Public
		}
		out = append(out, Entry{
			Sig:       sig,
			Code:      code,
			Language:  lang,
			Version:   je.Version,
			Optimized: je.Optimized,
			Mode:      mode,
			Flaw:      je.Flaw,
		})
	}
	return out, nil
}

func trimHexPrefix(s string) string {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		return s[2:]
	}
	return s
}
