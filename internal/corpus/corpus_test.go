package corpus

import (
	"bytes"
	"strings"
	"testing"

	"sigrec/internal/abi"
	"sigrec/internal/core"
	"sigrec/internal/evm"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Solidity: 30, Vyper: 10, AmbiguityRate: 0.05}
	c1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Entries) != 40 || len(c2.Entries) != 40 {
		t.Fatalf("entry counts: %d, %d", len(c1.Entries), len(c2.Entries))
	}
	for i := range c1.Entries {
		if c1.Entries[i].Sig.Canonical() != c2.Entries[i].Sig.Canonical() {
			t.Fatalf("entry %d differs between runs", i)
		}
		if string(c1.Entries[i].Code) != string(c2.Entries[i].Code) {
			t.Fatalf("entry %d bytecode differs between runs", i)
		}
	}
}

func TestGeneratedEntriesValid(t *testing.T) {
	c, err := Generate(Config{Seed: 11, Solidity: 60, Vyper: 20, AmbiguityRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range c.Entries {
		if err := e.Sig.Validate(); err != nil {
			t.Errorf("entry %d: invalid signature: %v", i, err)
		}
		if len(e.Code) == 0 {
			t.Errorf("entry %d: empty bytecode", i)
		}
		if e.Version == "" {
			t.Errorf("entry %d: missing version", i)
		}
	}
}

// TestCorpusRecoveryAccuracy is the integration check: SigRec's accuracy on
// a clue-rich corpus must be high, and each flawed entry must fail in the
// expected direction.
func TestCorpusRecoveryAccuracy(t *testing.T) {
	c, err := Generate(Config{Seed: 3, Solidity: 150, Vyper: 40, AmbiguityRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	correct, flawedWrong, cleanWrong := 0, 0, 0
	for _, e := range c.Entries {
		rec, _ := core.RecoverFunction(e.Code, e.Sig.Selector())
		got := abi.Signature{Name: e.Sig.Name, Inputs: rec.Inputs}
		if got.EqualTypes(e.Sig) {
			correct++
			continue
		}
		if e.Flaw != "" {
			flawedWrong++
			continue
		}
		cleanWrong++
		if cleanWrong <= 5 {
			t.Logf("clean miss: %s (%s %s opt=%v %s) -> %s",
				e.Sig.Canonical(), e.Language, e.Version, e.Optimized, e.Mode, got.TypeList())
		}
	}
	if cleanWrong > 0 {
		t.Errorf("%d clue-rich entries recovered wrongly (correct=%d flawed=%d)",
			cleanWrong, correct, flawedWrong)
	}
	if correct == 0 {
		t.Fatal("nothing recovered")
	}
}

func TestSynthesizedDataset(t *testing.T) {
	entries, err := GenerateSynthesized(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1000 {
		t.Fatalf("want 1000 synthesized functions, got %d", len(entries))
	}
	for i, e := range entries {
		if n := len(e.Sig.Inputs); n < 1 || n > 5 {
			t.Errorf("entry %d: %d params", i, n)
		}
		if len(e.Sig.Name) < 5 {
			t.Errorf("entry %d: name %q", i, e.Sig.Name)
		}
	}
	// 10 functions share each contract's bytecode.
	if string(entries[0].Code) != string(entries[9].Code) {
		t.Error("functions 0-9 should share one contract")
	}
	if string(entries[0].Code) == string(entries[10].Code) {
		t.Error("contracts 0 and 1 should differ")
	}
}

// TestFlawedEntriesFailAsDocumented checks that each injected flaw class
// produces the failure the paper describes.
func TestFlawedEntriesFailAsDocumented(t *testing.T) {
	cfg := Config{
		Seed: 77, Solidity: 400, Vyper: 0,
		AmbiguityRate:  0.5, // force plenty of flaws
		ConversionRate: 0.05,
		AsmReadRate:    0.05,
		StorageRefRate: 0.10,
	}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flawKinds := make(map[string]int)
	flawWrong := make(map[string]int)
	for _, e := range c.Entries {
		if e.Flaw == "" {
			continue
		}
		flawKinds[e.Flaw]++
		rec, _ := core.RecoverFunction(e.Code, e.Sig.Selector())
		got := abi.Signature{Name: e.Sig.Name, Inputs: rec.Inputs}
		if !got.EqualTypes(e.Sig) {
			flawWrong[e.Flaw]++
		}
	}
	for _, kind := range []string{
		"inline assembly reads undeclared values",
		"storage-modifier parameter read as slot reference",
		"uint256 accessed as uint8 (type conversion)",
	} {
		if flawKinds[kind] == 0 {
			t.Errorf("flaw %q never generated", kind)
			continue
		}
		if flawWrong[kind] == 0 {
			t.Errorf("flaw %q (%d entries) never caused a recovery error", kind, flawKinds[kind])
		}
	}
}

func TestGenerateDeployed(t *testing.T) {
	dcs, err := GenerateDeployed(DeployedConfig{Seed: 5, Contracts: 12, MinFuncs: 2, MaxFuncs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(dcs) != 12 {
		t.Fatalf("%d contracts", len(dcs))
	}
	for i, dc := range dcs {
		if len(dc.Functions) < 2 || len(dc.Functions) > 4 {
			t.Errorf("contract %d has %d functions", i, len(dc.Functions))
		}
		res, err := core.Recover(dc.Code)
		if err != nil {
			t.Fatalf("contract %d: %v", i, err)
		}
		if len(res.Functions) != len(dc.Functions) {
			t.Errorf("contract %d: recovered %d of %d functions",
				i, len(res.Functions), len(dc.Functions))
		}
		for k, sig := range dc.Functions {
			if k < len(res.Functions) && res.Functions[k].Selector != sig.Selector() {
				t.Errorf("contract %d fn %d: selector mismatch", i, k)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c, err := Generate(Config{Seed: 8, Solidity: 25, Vyper: 8, AmbiguityRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, c.Entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(c.Entries) {
		t.Fatalf("%d entries back, want %d", len(back), len(c.Entries))
	}
	for i := range back {
		if back[i].Sig.Canonical() != c.Entries[i].Sig.Canonical() {
			t.Errorf("entry %d signature differs", i)
		}
		if !bytes.Equal(back[i].Code, c.Entries[i].Code) {
			t.Errorf("entry %d bytecode differs", i)
		}
		if back[i].Language != c.Entries[i].Language || back[i].Mode != c.Entries[i].Mode {
			t.Errorf("entry %d metadata differs", i)
		}
	}
}

func TestReadJSONRejectsTampered(t *testing.T) {
	bad := `[{"signature":"f(uint256)","selector":"0xdeadbeef","language":"solidity","mode":"external","bytecode":"0x00"}]`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("selector mismatch accepted")
	}
	if _, err := ReadJSON(strings.NewReader("junk")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestJSONPreservesVyperTypes(t *testing.T) {
	sig := abi.Signature{Name: "f", Inputs: []abi.Type{
		abi.BoundedBytes(64), abi.Decimal(), abi.BoundedString(32),
	}}
	in := []Entry{{Sig: sig, Code: []byte{0x00}, Language: Vyper, Version: "0.2.8"}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].Sig.EqualTypes(sig) {
		t.Errorf("Vyper type structure lost: %s vs %s",
			back[0].Sig.DisplayString(), sig.DisplayString())
	}
}

// TestGeneratedCodeStackDisciplined: every compiled corpus contract must
// pass the static stack-depth validator (codegen safety net).
func TestGeneratedCodeStackDisciplined(t *testing.T) {
	c, err := Generate(Config{Seed: 19, Solidity: 120, Vyper: 30, AmbiguityRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range c.Entries {
		if err := evm.Disassemble(e.Code).ValidateStackDepth(); err != nil {
			t.Errorf("entry %d (%s %s): %v", i, e.Language, e.Sig.Canonical(), err)
		}
	}
	synth, err := GenerateSynthesized(19)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(synth); i += 10 { // one per contract
		if err := evm.Disassemble(synth[i].Code).ValidateStackDepth(); err != nil {
			t.Errorf("synthesized contract %d: %v", i/10, err)
		}
	}
}
